package smoothscan

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// oracleRows runs the query shape used by the fault property tests on
// a fault-free DB and returns its rows — the ground truth every
// recoverable fault schedule must reproduce byte for byte.
func oracleRows(t *testing.T, opts ScanOptions, lo, hi int64) [][]int64 {
	t.Helper()
	db := buildParallelTestDB(t, 20_000, 5_000, 11)
	return collectScan(t, db, opts, lo, hi)
}

// faultyRows runs the same query with a fault policy attached,
// returning the rows, the final ExecStats and the error (nil when the
// schedule was recoverable).
func faultyRows(t *testing.T, policy *FaultPolicy, onSpace func(db *DB) *FaultPolicy, opts ScanOptions, lo, hi int64) ([][]int64, ExecStats, error) {
	t.Helper()
	db := buildParallelTestDB(t, 20_000, 5_000, 11)
	if onSpace != nil {
		policy = onSpace(db)
	}
	db.SetFaultPolicy(policy)
	rows, err := db.Scan("t", "val", lo, hi, opts)
	if err != nil {
		return nil, ExecStats{}, err
	}
	defer rows.Close()
	var out [][]int64
	for rows.Next() {
		out = append(out, rows.Row())
	}
	st := rows.ExecStats()
	return out, st, rows.Err()
}

// TestFaultRecoverableMatchesOracle: schedules of transient faults,
// corrupted payloads and latency spikes that bounded retry absorbs
// must leave the result set byte-identical to the fault-free oracle,
// across serial and parallel scans and every access path.
func TestFaultRecoverableMatchesOracle(t *testing.T) {
	const lo, hi = 1_000, 2_500
	schedules := []struct {
		name string
		rule FaultRule
	}{
		{"transient", FaultRule{Space: AnySpace, Kind: FaultTransient, Rate: 0.15}},
		{"corrupt", FaultRule{Space: AnySpace, Kind: FaultCorrupt, Rate: 0.15}},
		{"latency", FaultRule{Space: AnySpace, Kind: FaultLatency, Rate: 0.5, ExtraCost: 50}},
	}
	variants := []struct {
		name string
		opts ScanOptions
	}{
		{"smooth", ScanOptions{Path: PathSmooth}},
		{"smooth-ordered", ScanOptions{Path: PathSmooth, Ordered: true}},
		{"index", ScanOptions{Path: PathIndex}},
		{"full", ScanOptions{Path: PathFull}},
		{"parallel-smooth", ScanOptions{Path: PathSmooth, Parallelism: 4}},
	}
	for _, v := range variants {
		want := oracleRows(t, v.opts, lo, hi)
		ordered := v.opts.Ordered
		if !ordered {
			sortRows(want)
		}
		for _, s := range schedules {
			t.Run(v.name+"/"+s.name, func(t *testing.T) {
				rule := s.rule
				if v.opts.Parallelism > 1 && rule.Kind != FaultLatency {
					// Parallel workers share index pages through the
					// buffer pool, where duplicate reads can race; heap
					// shards are disjoint, so scoping the schedule to
					// the table keeps the attempt sequence — and hence
					// the property — interleaving-independent.
					got, st, err := faultyRows(t, nil, func(db *DB) *FaultPolicy {
						sp, serr := db.TableSpace("t")
						if serr != nil {
							t.Fatal(serr)
						}
						r := rule
						r.Space = sp
						return NewFaultPolicy(99, r)
					}, v.opts, lo, hi)
					checkRecovered(t, got, want, st, err, ordered, rule.Kind)
					return
				}
				got, st, err := faultyRows(t, NewFaultPolicy(99, rule), nil, v.opts, lo, hi)
				checkRecovered(t, got, want, st, err, ordered, rule.Kind)
			})
		}
	}
}

func checkRecovered(t *testing.T, got, want [][]int64, st ExecStats, err error, ordered bool, kind FaultKind) {
	t.Helper()
	if err != nil {
		t.Fatalf("recoverable schedule surfaced error: %v", err)
	}
	if !ordered {
		sortRows(got)
	}
	if !rowsEqual(got, want) {
		t.Fatalf("faulty run returned %d rows != oracle %d rows", len(got), len(want))
	}
	if st.FaultsSeen == 0 {
		t.Fatal("schedule injected nothing (FaultsSeen = 0); rate or seed too timid")
	}
	if kind != FaultLatency && st.Retries == 0 {
		t.Fatal("recovery happened without any recorded retry")
	}
	if len(st.Degraded) != 0 {
		t.Fatalf("recoverable schedule degraded the plan: %v", st.Degraded)
	}
}

// TestFaultDeadIndexDegradesToFullScan: a permanently failing index
// space walks the ladder (index → smooth → full) at open time and
// still produces the oracle result, with the fallbacks surfaced in
// ExecStats.Degraded and the Plan header.
func TestFaultDeadIndexDegradesToFullScan(t *testing.T) {
	const lo, hi = 1_000, 2_500
	for _, path := range []AccessPath{PathIndex, PathSmooth, PathSort} {
		t.Run(path.String(), func(t *testing.T) {
			opts := ScanOptions{Path: path}
			want := oracleRows(t, opts, lo, hi)
			sortRows(want)

			db := buildParallelTestDB(t, 20_000, 5_000, 11)
			idx, err := db.IndexSpace("t", "val")
			if err != nil {
				t.Fatal(err)
			}
			db.SetFaultPolicy(NewFaultPolicy(5, FaultRule{
				Space: idx, Kind: FaultPermanent, Rate: 1,
			}))
			rows, err := db.Scan("t", "val", lo, hi, opts)
			if err != nil {
				t.Fatalf("degradation did not rescue the query: %v", err)
			}
			defer rows.Close()
			var got [][]int64
			for rows.Next() {
				got = append(got, rows.Row())
			}
			if rows.Err() != nil {
				t.Fatalf("Err: %v", rows.Err())
			}
			sortRows(got)
			if !rowsEqual(got, want) {
				t.Fatalf("degraded run returned %d rows != oracle %d", len(got), len(want))
			}
			st := rows.ExecStats()
			if len(st.Degraded) == 0 {
				t.Fatal("ExecStats.Degraded empty after fallback")
			}
			last := st.Degraded[len(st.Degraded)-1]
			if !strings.Contains(last, "full scan") {
				t.Fatalf("ladder should end at full scan, got %v", st.Degraded)
			}
			if plan := rows.Plan().String(); !strings.Contains(plan, "degraded on fault") {
				t.Fatalf("Plan missing degradation header:\n%s", plan)
			}
		})
	}
}

// TestFaultParallelDegradesThroughSerial: a parallel scan over a dead
// index space first drops to serial, then falls through the path
// ladder, and still matches the oracle.
func TestFaultParallelDegradesThroughSerial(t *testing.T) {
	const lo, hi = 1_000, 2_500
	opts := ScanOptions{Path: PathSmooth, Parallelism: 4}
	want := oracleRows(t, opts, lo, hi)
	sortRows(want)

	db := buildParallelTestDB(t, 20_000, 5_000, 11)
	idx, err := db.IndexSpace("t", "val")
	if err != nil {
		t.Fatal(err)
	}
	db.SetFaultPolicy(NewFaultPolicy(5, FaultRule{
		Space: idx, Kind: FaultPermanent, Rate: 1,
	}))
	rows, err := db.Scan("t", "val", lo, hi, opts)
	if err != nil {
		t.Fatalf("degradation did not rescue the query: %v", err)
	}
	defer rows.Close()
	var got [][]int64
	for rows.Next() {
		got = append(got, rows.Row())
	}
	if rows.Err() != nil {
		t.Fatalf("Err: %v", rows.Err())
	}
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatalf("degraded run returned %d rows != oracle %d", len(got), len(want))
	}
	st := rows.ExecStats()
	var sawSerial bool
	for _, d := range st.Degraded {
		if strings.Contains(d, "serial") {
			sawSerial = true
		}
	}
	if !sawSerial {
		t.Fatalf("parallel step missing from ladder: %v", st.Degraded)
	}
}

// TestFaultMidStreamDegrade: a fault that surfaces from the first
// NextBatch — after Open succeeded but before any row was delivered —
// is still degraded around. A sort drains its input on first pull, so
// the dead index leaves beyond the root are only discovered then.
func TestFaultMidStreamDegrade(t *testing.T) {
	db := buildParallelTestDB(t, 20_000, 5_000, 11)
	oracle := buildParallelTestDB(t, 20_000, 5_000, 11)

	idx, err := db.IndexSpace("t", "val")
	if err != nil {
		t.Fatal(err)
	}
	// Leaves live at the front of the index space; killing pages from 2
	// up leaves the root walk at Open intact but fails the leaf scan.
	db.SetFaultPolicy(NewFaultPolicy(5, FaultRule{
		Space: idx, PageLo: 2, Kind: FaultPermanent, Rate: 1,
	}))

	run := func(d *DB) ([][]int64, *Rows) {
		rows, err := d.Query("t").Where("val", Between(1_000, 2_500)).
			OrderBy("p1").Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var out [][]int64
		for rows.Next() {
			out = append(out, rows.Row())
		}
		if rows.Err() != nil {
			t.Fatalf("Err: %v", rows.Err())
		}
		return out, rows
	}
	want, wrows := run(oracle)
	wrows.Close()
	got, rows := run(db)
	defer rows.Close()
	if !rowsEqual(got, want) {
		t.Fatalf("mid-stream degraded run returned %d rows != oracle %d", len(got), len(want))
	}
	if st := rows.ExecStats(); len(st.Degraded) == 0 {
		t.Fatal("mid-stream fault recovered without recording degradation")
	}
}

// TestFaultUnrecoverableSurfacesTypedError: permanently dead heap
// pages cannot be degraded around — every access path reads them. The
// failure must surface as a typed error from Rows.Err (never a panic),
// with Close idempotent and every goroutine exited.
func TestFaultUnrecoverableSurfacesTypedError(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(map[int]string{1: "serial", 4: "parallel"}[par], func(t *testing.T) {
			runtime.GC()
			base := runtime.NumGoroutine()

			db := buildParallelTestDB(t, 20_000, 5_000, 11)
			sp, err := db.TableSpace("t")
			if err != nil {
				t.Fatal(err)
			}
			db.SetFaultPolicy(NewFaultPolicy(5, FaultRule{
				Space: sp, Kind: FaultPermanent, Rate: 1,
			}))
			rows, err := db.Scan("t", "val", 1_000, 2_500, ScanOptions{
				Path: PathSmooth, Parallelism: par,
			})
			if err != nil {
				// The whole heap is dead; failing at open is as valid
				// as failing at first Next — but it must be typed.
				if !errors.Is(err, ErrPermanentFault) {
					t.Fatalf("open error %v, want ErrPermanentFault", err)
				}
				return
			}
			for rows.Next() {
				t.Fatal("row delivered from a fully dead heap")
			}
			if !errors.Is(rows.Err(), ErrPermanentFault) {
				t.Fatalf("Err() = %v, want ErrPermanentFault", rows.Err())
			}
			first := rows.Close()
			if again := rows.Close(); !errors.Is(again, first) && again != first {
				t.Fatalf("Close not idempotent: %v then %v", first, again)
			}
			if !errors.Is(rows.Err(), ErrPermanentFault) {
				t.Fatalf("Err() after Close = %v, want ErrPermanentFault", rows.Err())
			}

			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if got := runtime.NumGoroutine(); got > base {
				t.Errorf("%d goroutines alive after failed query (baseline %d)", got, base)
			}
		})
	}
}

// TestFaultUnrecoverableCorruption: rate-1 corruption exhausts the
// bounded retry (every re-read re-corrupts) and surfaces ErrPageCorrupt.
func TestFaultUnrecoverableCorruption(t *testing.T) {
	db := buildParallelTestDB(t, 20_000, 5_000, 11)
	sp, err := db.TableSpace("t")
	if err != nil {
		t.Fatal(err)
	}
	db.SetFaultPolicy(NewFaultPolicy(5, FaultRule{
		Space: sp, Kind: FaultCorrupt, Rate: 1,
	}))
	rows, err := db.Scan("t", "val", 1_000, 2_500, ScanOptions{Path: PathSmooth})
	if err != nil {
		if !errors.Is(err, ErrPageCorrupt) {
			t.Fatalf("open error %v, want ErrPageCorrupt", err)
		}
		return
	}
	defer rows.Close()
	for rows.Next() {
		t.Fatal("row delivered from fully corrupted heap")
	}
	if !errors.Is(rows.Err(), ErrPageCorrupt) {
		t.Fatalf("Err() = %v, want ErrPageCorrupt", rows.Err())
	}
	if st := rows.ExecStats(); st.Retries == 0 {
		t.Fatal("corruption was not retried before surfacing")
	}
}

// TestFaultJoinMatchesOracle: the oracle property holds through a join
// plan, and a join whose right index dies degrades and still answers.
func TestFaultJoinMatchesOracle(t *testing.T) {
	build := func() *DB {
		db := buildParallelTestDB(t, 10_000, 2_000, 13)
		tb, err := db.CreateTable("u", "uval", "tag")
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 2_000; i++ {
			if err := tb.Append(i, i%7); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("u", "uval"); err != nil {
			t.Fatal(err)
		}
		return db
	}
	run := func(db *DB) ([][]int64, *Rows) {
		rows, err := db.Query("t").Where("val", Between(500, 1_500)).
			Join("u", "val", "uval").Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var out [][]int64
		for rows.Next() {
			out = append(out, rows.Row())
		}
		if rows.Err() != nil {
			t.Fatalf("Err: %v", rows.Err())
		}
		return out, rows
	}

	want, worows := run(build())
	worows.Close()
	sortRows(want)

	// Recoverable transient schedule across both tables.
	db := build()
	db.SetFaultPolicy(NewFaultPolicy(21, FaultRule{
		Space: AnySpace, Kind: FaultTransient, Rate: 0.1,
	}))
	got, rows := run(db)
	rows.Close()
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatalf("transient join run: %d rows != oracle %d", len(got), len(want))
	}

	// Dead right-side index: the join input degrades, result unchanged.
	db = build()
	idx, err := db.IndexSpace("u", "uval")
	if err != nil {
		t.Fatal(err)
	}
	db.SetFaultPolicy(NewFaultPolicy(21, FaultRule{
		Space: idx, Kind: FaultPermanent, Rate: 1,
	}))
	got, rows = run(db)
	defer rows.Close()
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatalf("degraded join run: %d rows != oracle %d", len(got), len(want))
	}
	if st := rows.ExecStats(); len(st.Degraded) == 0 {
		t.Fatal("join survived a dead index without recording degradation")
	}
}

// TestFaultLatencyCostsMoreNotWrong: a latency-spike schedule changes
// only the simulated clock, never the answer, and is visible in
// FaultsSeen without any retry.
func TestFaultLatencyCostsMoreNotWrong(t *testing.T) {
	const lo, hi = 1_000, 2_500
	opts := ScanOptions{Path: PathSmooth}

	clean := buildParallelTestDB(t, 20_000, 5_000, 11)
	cleanStart := clean.Stats()
	collectScan(t, clean, opts, lo, hi)
	cleanIO := clean.Stats().Sub(cleanStart).IOTime

	got, st, err := faultyRows(t, NewFaultPolicy(77, FaultRule{
		Space: AnySpace, Kind: FaultLatency, Rate: 1, ExtraCost: 25,
	}), nil, opts, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleRows(t, opts, lo, hi)
	sortRows(got)
	sortRows(want)
	if !rowsEqual(got, want) {
		t.Fatal("latency schedule changed the result")
	}
	if st.Retries != 0 {
		t.Fatalf("latency spikes triggered %d retries", st.Retries)
	}
	if st.FaultsSeen == 0 {
		t.Fatal("latency spikes not counted in FaultsSeen")
	}
	if st.IO.IOTime <= cleanIO {
		t.Fatalf("spiked IOTime %v not above clean %v", st.IO.IOTime, cleanIO)
	}
}

// TestFaultFreeQueriesUntouched: with no policy attached the fault
// counters stay zero and a query behaves exactly as before this
// subsystem existed (the golden-diffed harness depends on it).
func TestFaultFreeQueriesUntouched(t *testing.T) {
	db := buildParallelTestDB(t, 20_000, 5_000, 11)
	rows, err := db.Scan("t", "val", 1_000, 2_500, ScanOptions{Path: PathSmooth})
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	st := rows.ExecStats()
	rows.Close()
	if st.Retries != 0 || st.FaultsSeen != 0 || len(st.Degraded) != 0 {
		t.Fatalf("fault-free query reported fault activity: %+v", st)
	}
	io := st.IO
	if io.Faults != 0 || io.Corruptions != 0 || io.LatencySpikes != 0 || io.Retries != 0 {
		t.Fatalf("fault-free IOStats carry fault counters: %+v", io)
	}
}
