package smoothscan

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"
)

// buildWideDB loads n rows (id, val, cat, payload) with indexes on val
// and cat: val uniform over valDomain, cat uniform over catDomain,
// payload = i%1000.
func buildWideDB(t testing.TB, n, valDomain, catDomain int64) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val", "cat", "payload")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := int64(0); i < n; i++ {
		if err := tb.Append(i, rng.Int63n(valDomain), rng.Int63n(catDomain), i%1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"val", "cat"} {
		if err := db.CreateIndex("t", col); err != nil {
			t.Fatal(err)
		}
	}
	db.ResetStats()
	return db
}

func mustRun(t testing.TB, q *Query) *Rows {
	t.Helper()
	rows, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestQueryMatchesScan proves the Scan wrapper and the builder are the
// same path: identical rows and an identical device-stat delta for the
// same single-predicate query on identically-built databases.
func TestQueryMatchesScan(t *testing.T) {
	gen := func(i int64) int64 { return (i * 7919) % 5000 }
	dbA := buildDB(t, Options{}, 20_000, gen)
	dbB := buildDB(t, Options{}, 20_000, gen)

	rowsA, err := dbA.Scan("t", "val", 100, 900, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotA := collect(t, rowsA)

	rowsB := mustRun(t, dbB.Query("t").Where("val", Between(100, 900)))
	gotB := collect(t, rowsB)

	if len(gotA) != len(gotB) {
		t.Fatalf("Scan returned %d rows, Query %d", len(gotA), len(gotB))
	}
	for i := range gotA {
		for c := range gotA[i] {
			if gotA[i][c] != gotB[i][c] {
				t.Fatalf("row %d differs: %v vs %v", i, gotA[i], gotB[i])
			}
		}
	}
	if a, b := dbA.Stats(), dbB.Stats(); a != b {
		t.Errorf("device stats differ:\nScan  %+v\nQuery %+v", a, b)
	}
	if a, b := rowsA.ExecStats().IO, rowsB.ExecStats().IO; a != b {
		t.Errorf("per-query IO deltas differ: %+v vs %+v", a, b)
	}
}

// TestQueryResidualPushdown checks a multi-predicate conjunction: the
// result equals filtering the single-predicate result by hand, and the
// Explain plan shows the residual inside the scan.
func TestQueryResidualPushdown(t *testing.T) {
	db := buildWideDB(t, 30_000, 10_000, 50)

	base := collect(t, mustRun(t, db.Query("t").Where("val", Between(1000, 4000))))
	var want [][]int64
	for _, r := range base {
		if r[2] >= 5 && r[2] < 20 && r[3] < 500 {
			want = append(want, r)
		}
	}

	q := db.Query("t").
		Where("val", Between(1000, 4000)).
		Where("cat", Between(5, 20)).
		Where("payload", Lt(500))
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.AccessPath != PathSmooth {
		t.Errorf("access path = %v, want smooth", plan.AccessPath)
	}
	got := collect(t, mustRun(t, q))
	if len(got) != len(want) {
		t.Fatalf("conjunction returned %d rows, want %d", len(got), len(want))
	}
	// Residual pushdown changes which pages count as "dense" for the
	// morphing policy, so the unordered emission order may differ from
	// the plain scan's; compare as sets.
	sortRows(got)
	sortRows(want)
	if !rowsEqual(got, want) {
		t.Fatal("conjunction rows differ from hand-filtered rows")
	}
}

// TestQueryDrivingIndexChoice: with statistics, the optimizer drives
// the scan by the more selective indexed conjunct.
func TestQueryDrivingIndexChoice(t *testing.T) {
	db := buildWideDB(t, 30_000, 10_000, 50)
	if err := db.Analyze("t", "val", "cat"); err != nil {
		t.Fatal(err)
	}

	// val window ~30%, cat equality ~2%: cat must drive.
	plan, err := db.Query("t").
		Where("val", Between(1000, 4000)).
		Where("cat", Eq(7)).
		Explain()
	if err != nil {
		t.Fatal(err)
	}
	leaf := plan.Root
	for len(leaf.Children) > 0 {
		leaf = leaf.Children[0]
	}
	if want := "cat=7"; !containsStr(leaf.Detail, want) {
		t.Errorf("leaf detail %q does not show driving pred %q", leaf.Detail, want)
	}
	if !containsStr(leaf.Detail, "residual") || !containsStr(leaf.Detail, "val") {
		t.Errorf("leaf detail %q does not show val as residual", leaf.Detail)
	}

	// Flip the widths: now val must drive.
	plan, err = db.Query("t").
		Where("val", Between(1000, 1050)).
		Where("cat", Between(5, 45)).
		Explain()
	if err != nil {
		t.Fatal(err)
	}
	leaf = plan.Root
	for len(leaf.Children) > 0 {
		leaf = leaf.Children[0]
	}
	if want := "1000<=val<1050"; !containsStr(leaf.Detail, want) {
		t.Errorf("leaf detail %q does not show driving pred %q", leaf.Detail, want)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexStr(s, sub) >= 0)
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestQueryEmptyPredicateSet: no Where at all compiles to a full scan
// returning every row.
func TestQueryEmptyPredicateSet(t *testing.T) {
	db := buildDB(t, Options{}, 5_000, func(i int64) int64 { return i % 100 })
	plan, err := db.Query("t").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.AccessPath != PathFull {
		t.Errorf("empty predicate set chose %v, want full scan", plan.AccessPath)
	}
	got := collect(t, mustRun(t, db.Query("t")))
	if int64(len(got)) != 5_000 {
		t.Errorf("returned %d rows, want 5000", len(got))
	}
}

// TestQueryContradiction: predicates that intersect to an empty range
// short-circuit — empty result, not a single device read.
func TestQueryContradiction(t *testing.T) {
	db := buildDB(t, Options{}, 5_000, func(i int64) int64 { return i % 100 })
	if err := db.ResetStats(); err != nil {
		t.Fatal(err)
	}
	q := db.Query("t").Where("val", Gt(80)).Where("val", Lt(20))
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Name != "empty" {
		t.Errorf("plan root = %q, want empty", plan.Root.Name)
	}
	rows := mustRun(t, q)
	if got := collect(t, rows); len(got) != 0 {
		t.Errorf("contradictory query returned %d rows", len(got))
	}
	if st := db.Stats(); st.PagesRead != 0 || st.Requests != 0 {
		t.Errorf("contradictory query touched the device: %+v", st)
	}
	if io := rows.ExecStats().IO; io.Time() != 0 {
		t.Errorf("contradictory query charged %v cost units", io.Time())
	}
}

// TestQueryDuplicateWhereIntersects: two Where calls on one column act
// as their intersection.
func TestQueryDuplicateWhereIntersects(t *testing.T) {
	db := buildDB(t, Options{}, 10_000, func(i int64) int64 { return (i * 31) % 1000 })
	want := collect(t, mustRun(t, db.Query("t").Where("val", Between(100, 300))))
	got := collect(t, mustRun(t, db.Query("t").Where("val", Ge(100)).Where("val", Lt(300))))
	if len(got) != len(want) {
		t.Fatalf("intersection returned %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestQueryLimit covers Limit(0) (no device reads) and a plain limit.
func TestQueryLimit(t *testing.T) {
	db := buildDB(t, Options{}, 10_000, func(i int64) int64 { return i % 500 })
	if err := db.ResetStats(); err != nil {
		t.Fatal(err)
	}
	rows := mustRun(t, db.Query("t").Where("val", Between(0, 500)).Limit(0))
	if got := collect(t, rows); len(got) != 0 {
		t.Errorf("Limit(0) returned %d rows", len(got))
	}
	if st := db.Stats(); st.PagesRead != 0 {
		t.Errorf("Limit(0) read %d pages", st.PagesRead)
	}

	got := collect(t, mustRun(t, db.Query("t").Where("val", Between(0, 500)).Limit(7)))
	if len(got) != 7 {
		t.Errorf("Limit(7) returned %d rows", len(got))
	}
	if _, err := db.Query("t").Limit(-1).Run(context.Background()); err == nil {
		t.Error("negative limit accepted")
	}
}

// TestQueryGroupByAggregates checks GroupBy with Sum/Count against a
// hand computation, plus group-key ordering and Agg renaming.
func TestQueryGroupByAggregates(t *testing.T) {
	db := buildWideDB(t, 20_000, 1_000, 8)
	base := collect(t, mustRun(t, db.Query("t").Where("val", Between(0, 400))))
	wantSum := map[int64]int64{}
	wantCount := map[int64]int64{}
	for _, r := range base {
		wantSum[r[2]] += r[3]
		wantCount[r[2]]++
	}

	rows := mustRun(t, db.Query("t").
		Where("val", Between(0, 400)).
		Select("cat", "payload").
		GroupBy("cat", Sum("payload"), Count().As("n")).
		OrderBy("cat"))
	var lastCat int64 = -1
	groups := 0
	for rows.Next() {
		cat, err := rows.Column("cat")
		if err != nil {
			t.Fatal(err)
		}
		sum, _ := rows.Col("sum_payload")
		n, _ := rows.Col("n")
		if cat <= lastCat {
			t.Errorf("group keys not ascending: %d after %d", cat, lastCat)
		}
		lastCat = cat
		if sum != wantSum[cat] || n != wantCount[cat] {
			t.Errorf("cat %d: sum=%d count=%d, want sum=%d count=%d", cat, sum, n, wantSum[cat], wantCount[cat])
		}
		groups++
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if groups != len(wantSum) {
		t.Errorf("got %d groups, want %d", groups, len(wantSum))
	}
}

// TestQueryOrderBy: ordering by the driving column uses the scan's
// native order (no sort operator); ordering by another column sorts.
func TestQueryOrderBy(t *testing.T) {
	db := buildWideDB(t, 20_000, 1_000, 8)

	q := db.Query("t").Where("val", Between(100, 300)).OrderBy("val")
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Name == "sort" {
		t.Errorf("ORDER BY driving column added a sort:\n%s", plan)
	}
	got := collect(t, mustRun(t, q))
	for i := 1; i < len(got); i++ {
		if got[i][1] < got[i-1][1] {
			t.Fatalf("output not ordered by val at row %d", i)
		}
	}

	q2 := db.Query("t").Where("val", Between(100, 300)).OrderBy("id")
	plan2, err := q2.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Root.Name != "sort" {
		t.Errorf("ORDER BY non-driving column did not sort:\n%s", plan2)
	}
	got2 := collect(t, mustRun(t, q2))
	if len(got2) != len(got) {
		t.Fatalf("sorted query returned %d rows, want %d", len(got2), len(got))
	}
	for i := 1; i < len(got2); i++ {
		if got2[i][0] < got2[i-1][0] {
			t.Fatalf("output not ordered by id at row %d", i)
		}
	}
}

// TestQuerySelectAndColumnMissReasons: Select narrows the output and
// Rows.Column distinguishes "unknown" from "projected away".
func TestQuerySelectAndColumnMissReasons(t *testing.T) {
	db := buildWideDB(t, 5_000, 1_000, 8)
	rows := mustRun(t, db.Query("t").Where("val", Between(0, 100)).Select("id", "val"))
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no rows")
	}
	if got := rows.Row(); len(got) != 2 {
		t.Fatalf("projected row has %d columns, want 2", len(got))
	}
	if _, ok := rows.Col("cat"); ok {
		t.Error("Col found a projected-away column")
	}
	if _, err := rows.Column("cat"); !errors.Is(err, ErrNotSelected) {
		t.Errorf("Column(cat) = %v, want ErrNotSelected", err)
	}
	if _, err := rows.Column("nope"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("Column(nope) = %v, want ErrUnknownColumn", err)
	}
	if v, err := rows.Column("val"); err != nil || v < 0 || v >= 100 {
		t.Errorf("Column(val) = %d, %v", v, err)
	}
}

// TestQueryExplainTouchesNoDevice: Explain is pure planning.
func TestQueryExplainTouchesNoDevice(t *testing.T) {
	db := buildWideDB(t, 10_000, 1_000, 8)
	if err := db.ResetStats(); err != nil {
		t.Fatal(err)
	}
	q := db.Query("t").Where("val", Between(0, 100)).Where("cat", Eq(3)).
		GroupBy("cat", Count()).OrderBy("cat").Limit(5)
	if _, err := q.Explain(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.PagesRead != 0 || st.Requests != 0 {
		t.Errorf("Explain touched the device: %+v", st)
	}
}

// TestQueryAutoPath: PathAuto still flows through the optimizer and
// reports its choice.
func TestQueryAutoPath(t *testing.T) {
	db := buildDB(t, Options{}, 20_000, func(i int64) int64 { return i % 1000 })
	if err := db.Analyze("t", "val"); err != nil {
		t.Fatal(err)
	}
	rows := mustRun(t, db.Query("t").Where("val", Between(0, 1000)).
		WithOptions(ScanOptions{Path: PathAuto}))
	path, est, ok := rows.Choice()
	if !ok {
		t.Fatal("no optimizer choice recorded")
	}
	if path != "full-scan" {
		t.Errorf("100%% selectivity chose %s, want full-scan", path)
	}
	if est <= 0 {
		t.Errorf("estimate = %d", est)
	}
	collect(t, rows)
}

// TestQueryExecStatsOperators: per-operator counters line up with the
// plan stages and the returned row count.
func TestQueryExecStatsOperators(t *testing.T) {
	db := buildWideDB(t, 20_000, 1_000, 8)
	rows := mustRun(t, db.Query("t").
		Where("val", Between(0, 200)).
		Where("cat", Lt(4)).
		Select("id", "cat").
		Limit(50))
	got := collect(t, rows)
	st := rows.ExecStats()
	if st.RowsReturned != int64(len(got)) {
		t.Errorf("RowsReturned = %d, want %d", st.RowsReturned, len(got))
	}
	if len(st.Operators) < 2 {
		t.Fatalf("operators = %+v", st.Operators)
	}
	last := st.Operators[len(st.Operators)-1]
	if last.Name != "limit" || last.Rows != int64(len(got)) {
		t.Errorf("root operator %+v, want limit with %d rows", last, len(got))
	}
	if !st.HasSmooth {
		t.Error("smooth stats missing")
	}
	if st.IO.PagesRead == 0 {
		t.Error("IO delta empty")
	}
}

// TestQueryUnindexedFallsBackToFullScan: the builder's default path
// degrades to a full scan when the driving column has no index (the
// Scan wrapper keeps the strict historical error).
func TestQueryUnindexedFallsBackToFullScan(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := db.CreateTable("u", "a", "b")
	for i := int64(0); i < 2_000; i++ {
		tb.Append(i, i%10)
	}
	tb.Finish()

	plan, err := db.Query("u").Where("b", Eq(3)).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.AccessPath != PathFull {
		t.Errorf("unindexed builder query chose %v, want full", plan.AccessPath)
	}
	got := collect(t, mustRun(t, db.Query("u").Where("b", Eq(3))))
	if len(got) != 200 {
		t.Errorf("returned %d rows, want 200", len(got))
	}
	if _, err := db.Scan("u", "b", 3, 4, ScanOptions{}); !errors.Is(err, ErrNoIndex) {
		t.Errorf("Scan without index = %v, want ErrNoIndex", err)
	}
}

// TestQueryBuilderErrors: builder mistakes surface from Run/Explain.
func TestQueryBuilderErrors(t *testing.T) {
	db := buildWideDB(t, 1_000, 100, 8)
	cases := map[string]*Query{
		"unknown where column":  db.Query("t").Where("nope", Eq(1)),
		"unknown select column": db.Query("t").Select("nope"),
		"unknown table":         db.Query("missing").Where("val", Eq(1)),
		"group col not selected": db.Query("t").Select("id").
			GroupBy("cat", Count()),
		"order col not in output": db.Query("t").Select("id").OrderBy("val"),
		"select twice":            db.Query("t").Select("id").Select("val"),
		"groupby no aggs":         db.Query("t").GroupBy("cat"),
	}
	for name, q := range cases {
		if _, err := q.Explain(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestScanContextPreCancelled: an already-cancelled context refuses to
// start the scan.
func TestScanContextPreCancelled(t *testing.T) {
	db := buildDB(t, Options{}, 2_000, func(i int64) int64 { return i })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancel()
	if _, err := db.ScanContext(ctx, "t", "val", 0, 100, ScanOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ScanContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestQueryCancellationSerial: cancelling mid-iteration stops a serial
// scan at the next batch refill and surfaces ctx.Err().
func TestQueryCancellationSerial(t *testing.T) {
	db := buildDB(t, Options{}, 50_000, func(i int64) int64 { return i % 100 })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.Query("t").Where("val", Between(0, 100)).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
		if n == 1 {
			cancel()
		}
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", rows.Err())
	}
	if n >= 50_000 {
		t.Errorf("cancelled scan still returned all %d rows", n)
	}
}

// TestQueryCancellationParallelWorkersExit: cancelling a parallel scan
// whose consumer has stopped pulling releases every worker goroutine
// promptly — even the ones parked on a full exchange channel — without
// waiting for Close.
func TestQueryCancellationParallelWorkersExit(t *testing.T) {
	db := buildParallelTestDB(t, 60_000, 10_000, 7)
	runtime.GC()
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.Query("t").Where("val", Between(0, 10_000)).
		WithOptions(ScanOptions{Parallelism: 4}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows before cancel: %v", rows.Err())
	}
	// Stop consuming entirely and cancel: workers must exit on their
	// own (the consumer is not draining the exchange channels).
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Errorf("%d goroutines still alive after cancel (baseline %d)", got, base)
	}
	for rows.Next() {
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", rows.Err())
	}
	if err := rows.Close(); err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("Close() = %v", err)
	}
}

// TestQueryParallelAggregation: a parallel scan under a GroupBy
// produces the serial answer.
func TestQueryParallelAggregation(t *testing.T) {
	db := buildParallelTestDB(t, 30_000, 1_000, 3)
	want := collect(t, mustRun(t, db.Query("t").Where("val", Between(0, 500)).
		GroupBy("val", Count())))
	got := collect(t, mustRun(t, db.Query("t").Where("val", Between(0, 500)).
		WithOptions(ScanOptions{Parallelism: 4}).
		GroupBy("val", Count())))
	if len(got) != len(want) {
		t.Fatalf("parallel agg %d groups, serial %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("group %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestQueryOrderedParallel: OrderBy on the driving column of a
// parallel smooth scan uses the ordered merge, no sort operator.
func TestQueryOrderedParallel(t *testing.T) {
	db := buildParallelTestDB(t, 30_000, 5_000, 11)
	q := db.Query("t").Where("val", Between(0, 5_000)).
		WithOptions(ScanOptions{Parallelism: 4}).OrderBy("val")
	plan, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Name == "sort" {
		t.Errorf("ordered parallel scan added a sort:\n%s", plan)
	}
	got := collect(t, mustRun(t, q))
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i][1] < got[j][1] }) {
		t.Error("parallel ordered output not sorted by val")
	}
	want := collect(t, mustRun(t, db.Query("t").Where("val", Between(0, 5_000)).OrderBy("val")))
	if len(got) != len(want) {
		t.Fatalf("parallel ordered %d rows, serial %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0] != want[i][0] {
			t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}
