package smoothscan

import (
	"fmt"
	"math"
	"strings"

	"smoothscan/internal/tuple"
)

// PlanNode is one operator of an explained plan.
type PlanNode struct {
	// Name is the operator ("smooth-scan", "filter", "hash-agg", ...).
	Name string
	// Detail describes the node's configuration in one line.
	Detail string
	// EstRows is the optimizer's output-cardinality estimate for the
	// node; -1 when the optimizer cannot estimate it (aggregates).
	EstRows int64
	// Children are the node's inputs (at most one in this engine).
	Children []*PlanNode
}

// Plan is the compiled form of a Query, as returned by Query.Explain
// (and retrievable from a running query via Rows.Plan). String renders
// it as an indented tree, one operator per line, leaf last.
type Plan struct {
	// Table is the scanned table.
	Table string
	// AccessPath is the chosen driving access path.
	AccessPath AccessPath
	// EstimatedRows is the estimated scan output cardinality after all
	// pushed-down predicates.
	EstimatedRows int64
	// Parallelism is the scan worker count (1 = serial).
	Parallelism int
	// Root is the plan's root operator node.
	Root *PlanNode
}

// String renders the plan tree, root first.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query(%s) via %s", p.Table, p.AccessPath)
	if p.Parallelism > 1 {
		fmt.Fprintf(&b, " x%d", p.Parallelism)
	}
	b.WriteByte('\n')
	var walk func(n *PlanNode, depth int)
	walk = func(n *PlanNode, depth int) {
		indent := strings.Repeat("   ", depth)
		est := "?"
		if n.EstRows >= 0 {
			est = fmt.Sprintf("%d", n.EstRows)
		}
		line := n.Name
		if n.Detail != "" {
			line += "(" + n.Detail + ")"
		}
		fmt.Fprintf(&b, "%s└─ %-*s est≈%s rows\n", indent, 46-3*depth, line, est)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return b.String()
}

// fmtPred renders a range predicate over a named column compactly,
// eliding open bounds.
func fmtPred(name string, p tuple.RangePred) string {
	openLo := p.Lo == math.MinInt64
	openHi := p.Hi == math.MaxInt64
	switch {
	case openLo && openHi:
		return name + "=*"
	case p.Hi == p.Lo+1:
		return fmt.Sprintf("%s=%d", name, p.Lo)
	case p.Hi <= p.Lo:
		return name + "=∅"
	case openLo:
		return fmt.Sprintf("%s<%d", name, p.Hi)
	case openHi:
		return fmt.Sprintf("%s>=%d", name, p.Lo)
	default:
		return fmt.Sprintf("%d<=%s<%d", p.Lo, name, p.Hi)
	}
}

// plan renders the compiled query as its Explain tree. It mirrors
// build exactly — every operator build constructs gets one node here,
// so the explained plan is the executed plan.
func (cq *compiledQuery) plan() *Plan {
	p := &Plan{
		Table:         cq.table,
		AccessPath:    cq.path,
		EstimatedRows: cq.estScan,
		Parallelism:   cq.par,
	}
	if cq.emptyWhy != "" {
		p.Parallelism = 1
		p.EstimatedRows = 0
		p.Root = &PlanNode{Name: "empty", Detail: cq.emptyWhy + "; no device access", EstRows: 0}
		return p
	}

	// Leaf: the table access.
	var d []string
	d = append(d, cq.table+": "+fmtPred(cq.driving.name, cq.driving.pred))
	if cq.path == PathSmooth {
		d = append(d, "policy="+cq.cfg.Policy.String(), "trigger="+cq.cfg.Trigger.String())
	}
	if cq.choice != nil {
		d = append(d, "chosen-by=optimizer")
	}
	if cq.ordered {
		d = append(d, "ordered")
	}
	if cq.pushed {
		var rs []string
		for _, r := range cq.residual {
			rs = append(rs, fmtPred(r.name, r.pred))
		}
		d = append(d, "residual: "+strings.Join(rs, " and "))
	}
	scanEst := cq.estDriving
	if cq.pushed {
		scanEst = cq.estScan
	}
	node := &PlanNode{Name: cq.path.String() + "-scan", Detail: strings.Join(d, ", "), EstRows: scanEst}
	if cq.par > 1 {
		merge := "unordered fan-in"
		if cq.ordered {
			merge = "ordered merge"
		}
		node = &PlanNode{
			Name:     "parallel",
			Detail:   fmt.Sprintf("%d workers, %s", cq.par, merge),
			EstRows:  scanEst,
			Children: []*PlanNode{node},
		}
	}

	cur := node
	wrap := func(n *PlanNode) {
		n.Children = []*PlanNode{cur}
		cur = n
	}
	if len(cq.residual) > 0 && !cq.pushed {
		var rs []string
		for _, r := range cq.residual {
			rs = append(rs, fmtPred(r.name, r.pred))
		}
		wrap(&PlanNode{Name: "filter", Detail: strings.Join(rs, " and "), EstRows: cq.estScan})
	}
	if cq.selIdx != nil {
		names := make([]string, len(cq.selIdx))
		for i, c := range cq.selIdx {
			names[i] = cq.base.Col(c).Name
		}
		wrap(&PlanNode{Name: "project", Detail: strings.Join(names, ", "), EstRows: cur.EstRows})
	}
	if cq.groupIdx >= 0 {
		var as []string
		for _, sp := range cq.aggSpecs {
			as = append(as, sp.Name)
		}
		wrap(&PlanNode{
			Name:    "hash-agg",
			Detail:  fmt.Sprintf("group by %s: %s", cq.out.Col(0).Name, strings.Join(as, ", ")),
			EstRows: -1,
		})
	}
	if cq.orderIdx >= 0 {
		name := cq.out.Col(cq.orderIdx).Name
		if cq.needSort {
			wrap(&PlanNode{Name: "sort", Detail: "by " + name, EstRows: cur.EstRows})
		} else {
			via := "order-preserving scan"
			if cq.orderVia == "group" {
				via = "group-key order"
			}
			wrap(&PlanNode{Name: "ordered", Detail: "by " + name + " via " + via + ", no sort", EstRows: cur.EstRows})
		}
	}
	if cq.hasLim {
		est := cq.limit
		if cur.EstRows >= 0 && cur.EstRows < est {
			est = cur.EstRows
		}
		wrap(&PlanNode{Name: "limit", Detail: fmt.Sprintf("%d", cq.limit), EstRows: est})
	}
	p.Root = cur
	return p
}
