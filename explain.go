package smoothscan

import (
	"fmt"
	"math"
	"strings"

	"smoothscan/internal/plan"
	"smoothscan/internal/tuple"
)

// PlanNode is one operator of an explained plan.
type PlanNode struct {
	// Name is the operator ("smooth-scan", "filter", "hash-join", ...).
	Name string
	// Detail describes the node's configuration in one line.
	Detail string
	// EstRows is the optimizer's output-cardinality estimate for the
	// node; -1 when the optimizer cannot estimate it (aggregates).
	EstRows int64
	// Children are the node's inputs: one for the streaming stages,
	// two for a join — the left (accumulated) input first, then the
	// right table. Which of the two is the hash build side is in
	// Detail, not the child order.
	Children []*PlanNode
}

// Plan is the compiled form of a Query, as returned by Query.Explain
// (and retrievable from a running query via Rows.Plan). String renders
// it as an indented tree, one operator per line, leaf last.
type Plan struct {
	// Table is the driving (first) table.
	Table string
	// Tables lists every input table of the plan in join order; it has
	// one element for a single-table query.
	Tables []string
	// AccessPath is the driving table's chosen access path.
	AccessPath AccessPath
	// EstimatedRows is the estimated cardinality of the scan/join tree
	// after all pushed-down predicates.
	EstimatedRows int64
	// Parallelism is the driving table's scan worker count (1 = serial).
	Parallelism int
	// Binds lists a prepared execution's parameter bindings
	// ("$lo=1000"), sorted by name; nil for ad-hoc queries.
	Binds []string
	// BindChoices lists the estimate-sensitive decisions the bind
	// phase re-made for a prepared execution — driving conjunct,
	// optimizer path pick, join algorithm and build side, parallelism;
	// nil for ad-hoc queries.
	BindChoices []string
	// Degraded lists the fault-recovery fallbacks the execution applied
	// (parallel to serial, index to smooth, smooth to full, merge join
	// to hash), in the order they were taken; nil for a query that ran
	// as compiled. Only plans retrieved from a Rows can carry entries —
	// Explain never executes, so it never degrades.
	Degraded []string
	// CachedResult reports that the execution was answered from the
	// semantic result-cache tier: the rendered tree below is the plan
	// that *would* have run (and whose earlier run produced the cached
	// entry), but this execution touched no operator and no device.
	// Like Degraded, only plans retrieved from a Rows can carry it.
	CachedResult bool
	// Root is the plan's root operator node.
	Root *PlanNode
}

// String renders the plan tree, root first. Prepared executions get
// two extra header lines: the bound parameter values and the
// re-planned-at-bind decisions.
func (p *Plan) String() string {
	var b strings.Builder
	if len(p.Tables) > 1 {
		fmt.Fprintf(&b, "Query(%s)", strings.Join(p.Tables, " ⋈ "))
	} else {
		fmt.Fprintf(&b, "Query(%s) via %s", p.Table, p.AccessPath)
		if p.Parallelism > 1 {
			fmt.Fprintf(&b, " x%d", p.Parallelism)
		}
	}
	b.WriteByte('\n')
	if len(p.Binds) > 0 {
		fmt.Fprintf(&b, "   bind: %s\n", strings.Join(p.Binds, ", "))
	}
	if len(p.BindChoices) > 0 {
		fmt.Fprintf(&b, "   re-planned at bind: %s\n", strings.Join(p.BindChoices, "; "))
	}
	if len(p.Degraded) > 0 {
		fmt.Fprintf(&b, "   degraded on fault: %s\n", strings.Join(p.Degraded, "; "))
	}
	if p.CachedResult {
		b.WriteString("   served from result cache\n")
	}
	var walk func(n *PlanNode, depth int)
	walk = func(n *PlanNode, depth int) {
		indent := strings.Repeat("   ", depth)
		est := "?"
		if n.EstRows >= 0 {
			est = fmt.Sprintf("%d", n.EstRows)
		}
		line := n.Name
		if n.Detail != "" {
			line += "(" + n.Detail + ")"
		}
		width := 46 - 3*depth
		if width < 0 {
			width = 0
		}
		fmt.Fprintf(&b, "%s└─ %-*s est≈%s rows\n", indent, width, line, est)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return b.String()
}

// ShardPlan is one shard's entry in a sharded query's Explain output:
// its key ownership, whether the planner pruned it (and why), and —
// for shards that run — the shard's own compiled plan.
type ShardPlan struct {
	// Shard is the shard index.
	Shard int
	// Owns describes the shard's key ownership ("[100,200)", "h%4=2").
	Owns string
	// Addr is the shard's network address for a remote shard ("" for
	// in-process shards); it renders as "shard 2 @127.0.0.1:7744".
	Addr string
	// Pruned reports that the shard is excluded from the execution.
	Pruned bool
	// Why is the pruning reason for a pruned shard.
	Why string
	// Plan is the shard's own compiled plan; nil for pruned shards.
	Plan *Plan
}

// ShardedPlan is the compiled form of a ShardedQuery: the scatter
// strategy, the pruning decisions, the gather mode, the coordinator
// stages, and each active shard's plan tree.
type ShardedPlan struct {
	// Table is the driving table.
	Table string
	// Partition describes the driving table's partitioning
	// ("range(val): (-inf,100) [100,200) [200,+inf)").
	Partition string
	// Strategy is "scan", "partition-wise" or "broadcast".
	Strategy string
	// Gather is "unordered fan-in", "ordered merge by <col>", or
	// "none" for an empty plan.
	Gather string
	// Coordinator lists the stages above the gather, in order
	// ("project", "merge-agg", "sort by x", "limit 10").
	Coordinator []string
	// Binds lists a prepared execution's parameter bindings, like
	// Plan.Binds.
	Binds []string
	// CachedResult reports that the execution this plan was taken from
	// was served from the coordinator's result-cache tier: no shard was
	// touched, and the scatter-gather below describes the plan that
	// would have run. Like Plan.CachedResult.
	CachedResult bool
	// EmptyWhy is set when the plan short-circuits to an empty result
	// with no shard touched.
	EmptyWhy string
	// Shards holds one entry per shard, in shard order.
	Shards []ShardPlan
}

// String renders the sharded plan: a header with the scatter-gather
// configuration, then one block per shard — pruned shards as a single
// line with the reason, active shards with their own plan tree
// indented beneath.
func (p *ShardedPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded(%s) strategy=%s partition=%s\n", p.Table, p.Strategy, p.Partition)
	if len(p.Binds) > 0 {
		fmt.Fprintf(&b, "   bind: %s\n", strings.Join(p.Binds, ", "))
	}
	if p.CachedResult {
		b.WriteString("   served from result cache\n")
	}
	if p.EmptyWhy != "" {
		fmt.Fprintf(&b, "   empty: %s; no device access on any shard\n", p.EmptyWhy)
		return b.String()
	}
	fmt.Fprintf(&b, "   gather: %s\n", p.Gather)
	if len(p.Coordinator) > 0 {
		fmt.Fprintf(&b, "   coordinator: %s\n", strings.Join(p.Coordinator, " → "))
	}
	for _, sp := range p.Shards {
		label := fmt.Sprintf("shard %d", sp.Shard)
		if sp.Addr != "" {
			label += " @" + sp.Addr
		}
		if sp.Pruned {
			fmt.Fprintf(&b, "└─ %s %s: pruned — %s\n", label, sp.Owns, sp.Why)
			continue
		}
		fmt.Fprintf(&b, "└─ %s %s:\n", label, sp.Owns)
		for _, line := range strings.Split(strings.TrimRight(sp.Plan.String(), "\n"), "\n") {
			b.WriteString("   ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// shardedPlan assembles the ShardedPlan for a compiled execution;
// perShard supplies each active shard's own Explain tree.
func (s *ShardedDB) shardedPlan(se *shardExec, perShard func(si int) (*Plan, error)) (*ShardedPlan, error) {
	p := &ShardedPlan{
		Table:     se.pt.Inputs[0].Table,
		Partition: se.part.Describe(),
		Strategy:  se.strategy,
		EmptyWhy:  se.emptyWhy,
	}
	if se.cq0.annotate {
		p.Binds = renderBinds(se.cq0.binds)
	}
	p.CachedResult = se.cq0.cacheServed
	if se.emptyWhy != "" {
		p.Gather = "none"
		return p, nil
	}
	if se.ordered {
		p.Gather = fmt.Sprintf("ordered merge by %s", se.gatherSchema.Col(se.keyCol).Name)
	} else {
		p.Gather = "unordered fan-in"
	}
	if se.strategy == strategyBroadcast {
		p.Coordinator = append(p.Coordinator, fmt.Sprintf("broadcast %s (shards %v) into every %s join",
			se.pt.Inputs[se.bcInput].Table, se.bcActive, se.pt.Inputs[se.scanInput].Table))
	}
	if se.selIdx != nil {
		p.Coordinator = append(p.Coordinator, "project")
	}
	if se.aggGroupIdx >= 0 {
		if se.aggMerge {
			p.Coordinator = append(p.Coordinator, "merge-agg")
		} else {
			p.Coordinator = append(p.Coordinator, "hash-agg")
		}
	}
	if se.sortIdx >= 0 {
		p.Coordinator = append(p.Coordinator, "sort by "+se.out.Col(se.sortIdx).Name)
	}
	if se.hasLim {
		p.Coordinator = append(p.Coordinator, fmt.Sprintf("limit %d", se.limit))
	}
	active := make(map[int]bool, len(se.active))
	for _, si := range se.active {
		active[si] = true
	}
	for i := 0; i < len(s.shards); i++ {
		sp := ShardPlan{Shard: i, Owns: se.part.DescribeShard(i), Addr: s.drivers[i].address()}
		if !active[i] {
			sp.Pruned = true
			sp.Why = se.prunedWhy[i]
		} else {
			plan, err := perShard(i)
			if err != nil {
				return nil, err
			}
			sp.Plan = plan
		}
		p.Shards = append(p.Shards, sp)
	}
	return p, nil
}

// fmtPred renders a range predicate over a named column compactly,
// eliding open bounds.
func fmtPred(name string, p tuple.RangePred) string {
	openLo := p.Lo == math.MinInt64
	openHi := p.Hi == math.MaxInt64
	switch {
	case openLo && openHi:
		return name + "=*"
	case p.Hi == p.Lo+1:
		return fmt.Sprintf("%s=%d", name, p.Lo)
	case p.Hi <= p.Lo:
		return name + "=∅"
	case openLo:
		return fmt.Sprintf("%s<%d", name, p.Hi)
	case openHi:
		return fmt.Sprintf("%s>=%d", name, p.Lo)
	default:
		return fmt.Sprintf("%d<=%s<%d", p.Lo, name, p.Hi)
	}
}

// fmtPredMarked is fmtPred for predicates whose bounds came from
// prepared-statement parameters: a parameter-fed bound renders as its
// $name marker (the bound values appear on the plan's "bind:" header
// line instead). loSrc/hiSrc name the parameters ("" = literal bound,
// rendered as its value).
func fmtPredMarked(name string, p tuple.RangePred, loSrc, hiSrc string) string {
	bound := func(v int64, src string) string {
		if src != "" {
			return "$" + src
		}
		return fmt.Sprintf("%d", v)
	}
	openLo := p.Lo == math.MinInt64 && loSrc == ""
	openHi := p.Hi == math.MaxInt64 && hiSrc == ""
	switch {
	case openLo && openHi:
		return name + "=*"
	case p.Hi <= p.Lo:
		return name + "=∅"
	case p.Hi == p.Lo+1 && loSrc == hiSrc && loSrc != "":
		return fmt.Sprintf("%s=$%s", name, loSrc)
	case openLo:
		return fmt.Sprintf("%s<%s", name, bound(p.Hi, hiSrc))
	case openHi:
		return fmt.Sprintf("%s>=%s", name, bound(p.Lo, loSrc))
	default:
		return fmt.Sprintf("%s<=%s<%s", bound(p.Lo, loSrc), name, bound(p.Hi, hiSrc))
	}
}

// inputNode renders one table access (scan leaf, parallel wrapper,
// residual filter) as its Explain subtree — the same operators
// buildInput constructs.
func (cq *compiledQuery) inputNode(a *tableAccess) *PlanNode {
	var d []string
	d = append(d, a.name+": "+a.driving.render())
	if a.path == PathSmooth {
		d = append(d, "policy="+a.cfg.Policy.String(), "trigger="+a.cfg.Trigger.String())
	}
	if a.choice != nil {
		d = append(d, "chosen-by=optimizer")
	}
	if a.ordered {
		d = append(d, "ordered")
	}
	var rs []string
	for _, r := range a.residual {
		rs = append(rs, r.render())
	}
	if a.pushed {
		d = append(d, "residual: "+strings.Join(rs, " and "))
	}
	scanEst := a.estDriving
	if a.pushed {
		scanEst = a.estScan
	}
	node := &PlanNode{Name: a.path.String() + "-scan", Detail: strings.Join(d, ", "), EstRows: scanEst}
	if a.par > 1 {
		merge := "unordered fan-in"
		if a.ordered {
			merge = "ordered merge"
		}
		node = &PlanNode{
			Name:     "parallel",
			Detail:   fmt.Sprintf("%d workers, %s", a.par, merge),
			EstRows:  scanEst,
			Children: []*PlanNode{node},
		}
	}
	if len(a.residual) > 0 && !a.pushed {
		node = &PlanNode{
			Name:     "filter",
			Detail:   strings.Join(rs, " and "),
			EstRows:  a.estScan,
			Children: []*PlanNode{node},
		}
	}
	return node
}

// plan renders the compiled query as its Explain tree. It mirrors
// build exactly — every operator build constructs gets one node here,
// so the explained plan is the executed plan.
func (cq *compiledQuery) plan() *Plan {
	drv := cq.driving()
	p := &Plan{
		Table:         drv.name,
		AccessPath:    drv.path,
		EstimatedRows: cq.estRoot(),
		Parallelism:   drv.par,
	}
	if cq.annotate {
		p.Binds = renderBinds(cq.binds)
		p.BindChoices = cq.renderBindNotes()
	}
	if len(cq.degraded) > 0 {
		p.Degraded = append([]string(nil), cq.degraded...)
	}
	p.CachedResult = cq.cacheServed
	for _, a := range cq.inputs {
		p.Tables = append(p.Tables, a.name)
	}
	if cq.emptyWhy != "" {
		p.Parallelism = 1
		p.EstimatedRows = 0
		p.Root = &PlanNode{Name: "empty", Detail: cq.emptyWhy + "; no device access", EstRows: 0}
		return p
	}

	// The scan/join tree: each input's access subtree, folded left to
	// right through the join stages. leftLabel names the accumulated
	// left side, so chained joins stay self-describing.
	cur := cq.inputNode(drv)
	leftLabel := drv.name
	for k, st := range cq.joins {
		right := cq.inputs[k+1]
		d := fmt.Sprintf("%s = %s.%s", st.leftName, right.name, st.rightName)
		if st.algo == plan.JoinMerge {
			d += ", both inputs key-ordered"
		} else {
			build, probe := right.name, leftLabel
			if st.buildLeft {
				build, probe = probe, build
			}
			d += fmt.Sprintf(", build=%s, probe=%s", build, probe)
		}
		cur = &PlanNode{
			Name:     st.algo.String() + "-join",
			Detail:   d,
			EstRows:  st.estRows,
			Children: []*PlanNode{cur, cq.inputNode(right)},
		}
		leftLabel = "(" + leftLabel + " ⋈ " + right.name + ")"
	}

	wrap := func(n *PlanNode) {
		n.Children = []*PlanNode{cur}
		cur = n
	}
	if cq.selIdx != nil {
		names := make([]string, len(cq.selIdx))
		for i, c := range cq.selIdx {
			names[i] = cq.base.Col(c).Name
		}
		wrap(&PlanNode{Name: "project", Detail: strings.Join(names, ", "), EstRows: cur.EstRows})
	}
	if cq.groupIdx >= 0 {
		var as []string
		for _, sp := range cq.aggSpecs {
			as = append(as, sp.Name)
		}
		wrap(&PlanNode{
			Name:    "hash-agg",
			Detail:  fmt.Sprintf("group by %s: %s", cq.out.Col(0).Name, strings.Join(as, ", ")),
			EstRows: -1,
		})
	}
	if cq.orderIdx >= 0 {
		name := cq.out.Col(cq.orderIdx).Name
		if cq.needSort {
			wrap(&PlanNode{Name: "sort", Detail: "by " + name, EstRows: cur.EstRows})
		} else {
			via := "order-preserving scan"
			if cq.orderVia == "group" {
				via = "group-key order"
			}
			wrap(&PlanNode{Name: "ordered", Detail: "by " + name + " via " + via + ", no sort", EstRows: cur.EstRows})
		}
	}
	if cq.hasLim {
		est := cq.limit
		if cur.EstRows >= 0 && cur.EstRows < est {
			est = cur.EstRows
		}
		wrap(&PlanNode{Name: "limit", Detail: fmt.Sprintf("%d", cq.limit), EstRows: est})
	}
	p.Root = cur
	return p
}
