// Command benchgate is the CI throughput-regression gate: it runs a
// fixed set of wall-clock benchmarks and compares their tuples/s
// metric against a committed baseline, failing on a regression beyond
// the tolerance.
//
//	benchgate -write              # (re)generate testdata/bench_baseline.json
//	benchgate                     # gate against the committed baseline
//
// Design notes. The gated metric is the benchmarks' custom tuples/s
// (not ns/op): it is what the engine's hot-path work is measured in,
// and the per-benchmark best-of -count runs plus a generous default
// tolerance (25%) absorb CI scheduling noise. Absolute throughput is
// machine-dependent — regenerate the baseline (make bench-baseline)
// when the CI runner class changes, and after deliberate performance
// work. The deterministic simulated-cost metrics need no tolerance
// and are pinned separately, byte-identical, by `make equiv`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed throughput reference.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// CPUs records the generating machine's GOMAXPROCS (context for
	// humans comparing baselines, not used by the gate).
	CPUs int `json:"cpus"`
	// ShardMode records where the sharded benchmarks' shards live.
	// The gated benchmarks drive an in-process ShardedDB, so this is
	// "in-process"; remote-shard numbers (ssload -shard-addrs, the
	// multinode smoke) are wall-clock network measurements and are
	// never comparable against this baseline.
	ShardMode string `json:"shard_mode,omitempty"`
	// TuplesPerSec maps benchmark name (sans -N suffix) to the best
	// observed throughput.
	TuplesPerSec map[string]float64 `json:"tuples_per_sec"`
	// Scaling maps a sub-benchmark family (e.g.
	// "BenchmarkShardedScan x4") to its scaling efficiency: best
	// tuples/s at the highest N=/P= parameter divided by best
	// tuples/s at parameter 1. A healthy parallel path keeps this
	// ratio up as shards/workers grow; it is only meaningful — and
	// only enforced — when the machine has more than one processor.
	Scaling map[string]float64 `json:"scaling,omitempty"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "testdata/bench_baseline.json", "baseline JSON path")
		write        = flag.Bool("write", false, "regenerate the baseline instead of gating")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed fractional throughput regression")
		benchRe      = flag.String("bench", "SmoothScanThroughput$|BatchDecode$|HashJoinThroughput$|PreparedExec$|ShardedScan$|ParallelSmoothScan$|ResultCacheHit$", "benchmarks to run (go test -bench regexp)")
		benchtime    = flag.String("benchtime", "300ms", "go test -benchtime (time-based for stable per-run averages)")
		count        = flag.Int("count", 3, "runs per benchmark; the gate takes the best")
		strict       = flag.Bool("strict", false, "fail on regression even when the baseline was generated on a different CPU class")
		dir          = flag.String("dir", ".", "directory whose benchmarks to run (lets CI measure a base-ref worktree with this binary)")
	)
	flag.Parse()

	if err := run(*baselinePath, *write, *tolerance, *benchRe, *benchtime, *count, *strict, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, write bool, tolerance float64, benchRe, benchtime string, count int, strict bool, dir string) error {
	got, err := measure(dir, benchRe, benchtime, count)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmarks matched %q or none reported tuples/s", benchRe)
	}

	if write {
		b := Baseline{
			Note: "throughput baseline for `make bench-gate` (best tuples/s of -count runs); " +
				"regenerate with `make bench-baseline` after deliberate perf changes or a CI runner change",
			CPUs:         runtime.GOMAXPROCS(0),
			ShardMode:    "in-process",
			TuplesPerSec: got,
			Scaling:      scalingRatios(got),
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", baselinePath, len(got))
		return nil
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("%w (run `make bench-baseline` to create it)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	// Absolute throughput only transfers within one machine class. On
	// a different class the comparison is still printed, but it gates
	// only with -strict: a foreign baseline would otherwise either
	// hard-fail every run or silently never bind. Regenerate the
	// baseline on the gating machine class to arm the gate there.
	binding := true
	if base.CPUs != 0 && base.CPUs != runtime.GOMAXPROCS(0) {
		binding = strict
		fmt.Printf("warning: baseline was generated on a %d-CPU machine, this one has %d — absolute throughput is machine-dependent\n", base.CPUs, runtime.GOMAXPROCS(0))
		if !binding {
			fmt.Println("warning: GATE NOT BINDING on this machine class; run `make bench-baseline` here and commit it to arm the gate (or pass -strict)")
		}
	}

	if base.ShardMode != "" {
		fmt.Printf("shard mode: %s (sharded benchmarks; remote-shard numbers never gate here)\n", base.ShardMode)
	}

	names := make([]string, 0, len(base.TuplesPerSec))
	for name := range base.TuplesPerSec {
		names = append(names, name)
	}
	sort.Strings(names)
	var failed bool
	for _, name := range names {
		want := base.TuplesPerSec[name]
		cur, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %-40s missing from run (baseline %.3g tuples/s)\n", name, want)
			failed = true
			continue
		}
		floor := want * (1 - tolerance)
		status := "ok  "
		if cur < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %10.3g tuples/s (baseline %.3g, floor %.3g, %+.1f%%)\n",
			status, name, cur, want, floor, 100*(cur/want-1))
	}
	for name := range got {
		if _, ok := base.TuplesPerSec[name]; !ok {
			fmt.Printf("note %-40s not in baseline; run `make bench-baseline` to add it\n", name)
		}
	}

	// Scaling efficiency: the ratio of a family's highest-parameter
	// throughput to its parameter-1 throughput. Unlike absolute
	// tuples/s this survives runner-speed changes, but it carries no
	// signal on a single processor — shards/workers just time-slice —
	// so there it is reported and never enforced.
	if gotScaling := scalingRatios(got); len(base.Scaling) > 0 || len(gotScaling) > 0 {
		scalingBinding := binding
		if runtime.GOMAXPROCS(0) == 1 {
			scalingBinding = false
			fmt.Println("warning: GOMAXPROCS=1: scaling ratios carry no parallelism signal on one processor; NOT enforced")
		}
		fams := make([]string, 0, len(base.Scaling))
		for fam := range base.Scaling {
			fams = append(fams, fam)
		}
		sort.Strings(fams)
		var scalingFailed bool
		for _, fam := range fams {
			want := base.Scaling[fam]
			cur, ok := gotScaling[fam]
			if !ok {
				fmt.Printf("FAIL %-40s scaling family missing from run (baseline %.2fx)\n", fam, want)
				scalingFailed = true
				continue
			}
			floor := want * (1 - tolerance)
			status := "ok  "
			if cur < floor {
				status = "FAIL"
				scalingFailed = true
			}
			fmt.Printf("%s %-40s %10.2fx scaling (baseline %.2fx, floor %.2fx)\n", status, fam, cur, want, floor)
		}
		for fam := range gotScaling {
			if _, ok := base.Scaling[fam]; !ok {
				fmt.Printf("note %-40s scaling family not in baseline; run `make bench-baseline` to add it\n", fam)
			}
		}
		if scalingFailed && scalingBinding {
			failed = true
		} else if scalingFailed {
			fmt.Println("bench gate: scaling regressions above were NOT enforced (no parallelism signal on this runner)")
		}
	}

	if failed && binding {
		return fmt.Errorf("throughput regressed beyond %.0f%% of the committed baseline", 100*tolerance)
	}
	if failed {
		fmt.Println("bench gate: regressions above were NOT enforced (baseline machine class mismatch; see warning)")
		return nil
	}
	fmt.Println("bench gate passed")
	return nil
}

// subParam matches a parameterized sub-benchmark name like
// "BenchmarkShardedScan/N=4" or "BenchmarkParallelSmoothScan/P=2".
var subParam = regexp.MustCompile(`^(Benchmark\S+?)/[NP]=(\d+)$`)

// scalingRatios derives scaling-efficiency ratios from measured
// throughputs: for each family with N=/P= sub-benchmarks, the best
// tuples/s at the highest parameter over the best at parameter 1,
// keyed "Family xTOP". Families without a parameter-1 member (or with
// no member above 1) produce no ratio.
func scalingRatios(got map[string]float64) map[string]float64 {
	type point struct {
		p int
		v float64
	}
	fams := map[string][]point{}
	for name, v := range got {
		if m := subParam.FindStringSubmatch(name); m != nil {
			p, err := strconv.Atoi(m[2])
			if err != nil {
				continue
			}
			fams[m[1]] = append(fams[m[1]], point{p, v})
		}
	}
	out := map[string]float64{}
	for fam, pts := range fams {
		var base, top point
		for _, pt := range pts {
			if pt.p == 1 {
				base = pt
			}
			if pt.p > top.p {
				top = pt
			}
		}
		if base.p == 1 && base.v > 0 && top.p > 1 {
			out[fmt.Sprintf("%s x%d", fam, top.p)] = top.v / base.v
		}
	}
	return out
}

// benchLine matches one `go test -bench` result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// measure runs the benchmarks in dir and returns the best tuples/s
// per benchmark across the -count runs.
func measure(dir, benchRe, benchtime string, count int) (map[string]float64, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", benchRe,
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		".",
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	best := map[string]float64{}
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			if fields[i+1] != "tuples/s" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if v > best[name] {
				best[name] = v
			}
		}
	}
	return best, nil
}
