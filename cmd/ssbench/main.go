// Command ssbench regenerates the tables and figures of the Smooth
// Scan paper's evaluation on the simulated substrate.
//
// Usage:
//
//	ssbench -list
//	ssbench -exp fig5a
//	ssbench -exp all -micro-rows 400000
//	ssbench -exp all -exclude concurrent -format csv   # CI equivalence diff
//	ssbench -plan "0.02"                               # Explain a builder query
//
// Times are simulated cost units (one sequential 8 KB page read = 1);
// the reproduction targets the paper's shapes, not absolute seconds.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"smoothscan"
	"smoothscan/internal/cacheexp"
	"smoothscan/internal/harness"
	"smoothscan/internal/shardexp"
)

// experimentIDs is the -exp all order: the paper experiments first,
// then the sharded scatter-gather and result-cache sweeps (which live
// outside internal/harness because they drive the public facade).
func experimentIDs() []string {
	return append(harness.IDs(), shardexp.ID, cacheexp.ID)
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		microRows  = flag.Int64("micro-rows", 200_000, "micro-benchmark table rows (paper: 400M)")
		skewRows   = flag.Int64("skew-rows", 400_000, "skewed table rows (paper: 1.5B)")
		tpchOrders = flag.Int64("tpch-orders", 8_000, "TPC-H orders (LINEITEM ~4x; paper: SF10)")
		poolFrac   = flag.Float64("pool", 0.1, "buffer pool size as a fraction of the scanned table")
		seed       = flag.Int64("seed", 42, "generator seed")
		format     = flag.String("format", "table", "output format: table or csv")
		exclude    = flag.String("exclude", "", "comma-separated experiment ids to skip with -exp all (e.g. the wall-clock 'concurrent' for deterministic diffs)")
		planSel    = flag.String("plan", "", "instead of experiments: build the micro table through the public API and print the Explain plan of a builder query at this selectivity (0..1]")
	)
	flag.Parse()

	if *planSel != "" {
		if err := explainDemo(*planSel, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("experiments (paper order):")
		for _, id := range experimentIDs() {
			fmt.Println(" ", id)
		}
		return
	}

	r := harness.New(harness.Config{
		MicroRows:    *microRows,
		SkewRows:     *skewRows,
		TPCHOrders:   *tpchOrders,
		PoolFraction: *poolFrac,
		Seed:         *seed,
	})
	fmt.Printf("smoothscan reproduction harness — config %+v\n\n", r.Config())

	run := func(id string) error {
		start := time.Now()
		var tab *harness.Table
		var err error
		if id == shardexp.ID {
			tab, err = shardexp.Run(shardexp.Config{Seed: *seed})
		} else if id == cacheexp.ID {
			tab, err = cacheexp.Run(cacheexp.Config{Seed: *seed})
		} else {
			tab, err = r.ByID(id)
		}
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", tab.ID, tab.Title)
			if err := tab.WriteCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			return nil
		}
		tab.Print(os.Stdout)
		fmt.Printf("  (%s in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if strings.EqualFold(*exp, "all") {
		skip := map[string]bool{}
		for _, id := range strings.Split(*exclude, ",") {
			if id != "" {
				skip[id] = true
			}
		}
		for _, id := range experimentIDs() {
			if skip[id] {
				continue
			}
			if err := run(id); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// explainDemo shows the composable query surface over the experiment
// substrate: it loads a micro-benchmark-shaped table through the
// public API and prints the optimizer's Explain plan for a
// multi-predicate builder query at the given selectivity, with and
// without ANALYZE statistics.
func explainDemo(selArg string, seed int64) error {
	sel, err := strconv.ParseFloat(selArg, 64)
	if err != nil || sel <= 0 || sel > 1 {
		return fmt.Errorf("-plan wants a selectivity in (0,1], got %q", selArg)
	}
	const rows, domain = 100_000, 100_000
	db, err := smoothscan.Open(smoothscan.Options{})
	if err != nil {
		return err
	}
	tb, err := db.CreateTable("micro", "id", "val", "payload")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := int64(0); i < rows; i++ {
		if err := tb.Append(i, rng.Int63n(domain), rng.Int63n(1000)); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	if err := db.CreateIndex("micro", "val"); err != nil {
		return err
	}
	width := int64(float64(domain) * sel)
	if width < 1 {
		width = 1
	}
	q := func() *smoothscan.Query {
		return db.Query("micro").
			Where("val", smoothscan.Between(0, width)).
			Where("payload", smoothscan.Lt(500)).
			Select("id", "val").
			OrderBy("val").
			WithOptions(smoothscan.ScanOptions{Path: smoothscan.PathAuto})
	}
	plan, err := q().Explain()
	if err != nil {
		return err
	}
	fmt.Printf("selectivity %.4f, no statistics (uniformity assumption):\n%s\n", sel, plan)
	if err := db.Analyze("micro", "val", "payload"); err != nil {
		return err
	}
	plan, err = q().Explain()
	if err != nil {
		return err
	}
	fmt.Printf("after ANALYZE:\n%s", plan)
	return nil
}
