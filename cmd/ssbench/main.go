// Command ssbench regenerates the tables and figures of the Smooth
// Scan paper's evaluation on the simulated substrate.
//
// Usage:
//
//	ssbench -list
//	ssbench -exp fig5a
//	ssbench -exp all -micro-rows 400000
//
// Times are simulated cost units (one sequential 8 KB page read = 1);
// the reproduction targets the paper's shapes, not absolute seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"smoothscan/internal/harness"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		microRows  = flag.Int64("micro-rows", 200_000, "micro-benchmark table rows (paper: 400M)")
		skewRows   = flag.Int64("skew-rows", 400_000, "skewed table rows (paper: 1.5B)")
		tpchOrders = flag.Int64("tpch-orders", 8_000, "TPC-H orders (LINEITEM ~4x; paper: SF10)")
		poolFrac   = flag.Float64("pool", 0.1, "buffer pool size as a fraction of the scanned table")
		seed       = flag.Int64("seed", 42, "generator seed")
		format     = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (paper order):")
		for _, id := range harness.IDs() {
			fmt.Println(" ", id)
		}
		return
	}

	r := harness.New(harness.Config{
		MicroRows:    *microRows,
		SkewRows:     *skewRows,
		TPCHOrders:   *tpchOrders,
		PoolFraction: *poolFrac,
		Seed:         *seed,
	})
	fmt.Printf("smoothscan reproduction harness — config %+v\n\n", r.Config())

	run := func(id string) error {
		start := time.Now()
		tab, err := r.ByID(id)
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", tab.ID, tab.Title)
			if err := tab.WriteCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			return nil
		}
		tab.Print(os.Stdout)
		fmt.Printf("  (%s in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if strings.EqualFold(*exp, "all") {
		for _, id := range harness.IDs() {
			if err := run(id); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
