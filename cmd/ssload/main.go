// Command ssload is a concurrent load driver for the smoothscan
// engine: it bulk-loads a synthetic table, then hammers it from many
// client goroutines sharing one DB, reporting aggregate tuples/s,
// queries/s and p50/p99 query latency. It is the inter-query
// counterpart of ScanOptions.Parallelism (intra-query): both can be
// combined.
//
// Usage:
//
//	ssload -rows 200000 -clients 8 -queries 64 -selectivity 0.01
//	ssload -clients 4 -parallelism 4 -ordered
//	ssload -bench parallel -json BENCH_parallel.json
//	ssload -chaos -clients 4 -queries 64
//
// The -bench parallel mode runs the fixed P=1/2/4/8 intra-query sweep
// of BenchmarkParallelSmoothScan and writes machine-readable JSON, so
// the parallel-scan perf trajectory can be tracked across commits.
// Wall-clock numbers depend on the host (see the reported cpus);
// simulated cost is deterministic up to random/sequential
// classification differences between worker interleavings.
//
// The -chaos mode runs the workload once fault-free to record an
// order-independent result digest, then re-runs it under a sweep of
// injected fault schedules (transient failures, corrupted pages,
// latency spikes). Recovered runs must reproduce the oracle digest
// exactly; the sweep exits non-zero if any run diverged or errored.
//
// A client goroutine never aborts the whole load on a query error: it
// records the error (retrying transient faults a bounded number of
// times first) and moves on, so one poisoned query cannot hide the
// rest of the run. Per-client error and retry counts land in the JSON
// output.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"smoothscan"
)

func main() {
	var (
		rows        = flag.Int64("rows", 200_000, "table rows (10 int64 columns, like the paper's micro table)")
		domain      = flag.Int64("domain", 100_000, "indexed-column value domain")
		clients     = flag.Int("clients", 4, "concurrent client goroutines")
		queries     = flag.Int("queries", 64, "total queries across all clients")
		selectivity = flag.Float64("selectivity", 0.01, "per-query selectivity (0..1]")
		parallelism = flag.Int("parallelism", 1, "ScanOptions.Parallelism per query")
		ordered     = flag.Bool("ordered", false, "request index-key-ordered output")
		policy      = flag.String("policy", "elastic", "morphing policy: elastic, greedy, si")
		path        = flag.String("path", "smooth", "access path: smooth, full, index, sort, switch")
		seed        = flag.Int64("seed", 42, "generator seed")
		pool        = flag.Int("pool", 2048, "buffer pool pages")
		bench       = flag.String("bench", "", "run a fixed benchmark instead: 'parallel' (P=1/2/4/8 sweep)")
		jsonOut     = flag.String("json", "", "also write results as JSON to this file")
		timeout     = flag.Duration("timeout", 0, "deadline for the whole load; in-flight queries are cancelled through their context")
		prepare     = flag.Bool("prepare", false, "prepared-statement mode: all clients share one Stmt and bind per query; reports plan reuse and the latency delta vs an ad-hoc control run")
		adhoc       = flag.Bool("adhoc", true, "with -prepare: run the ad-hoc control load first (disable to measure only the prepared run)")
		chaos       = flag.Bool("chaos", false, "chaos mode: run a fault-free oracle load, then re-run under injected fault schedules and verify the result digests match")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	db, err := buildDB(*rows, *domain, *seed, *pool)
	if err != nil {
		fatal(err)
	}

	if *bench == "parallel" {
		if err := benchParallel(db, *rows, *domain, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *bench != "" {
		fatal(fmt.Errorf("unknown -bench %q (known: parallel)", *bench))
	}

	opts, err := scanOptions(*path, *policy, *ordered, *parallelism)
	if err != nil {
		fatal(err)
	}
	cfg := loadConfig{
		clients:     *clients,
		queries:     *queries,
		selectivity: *selectivity,
		domain:      *domain,
		seed:        *seed,
		opts:        opts,
	}

	if *chaos {
		if err := runChaos(ctx, db, cfg, *seed, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	if *prepare {
		if err := runPrepared(ctx, db, cfg, *adhoc, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	res, err := runLoad(ctx, db, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ssload: %d clients x %d queries, sel=%.4f%%, path=%s, parallelism=%d, ordered=%v, cpus=%d\n",
		*clients, *queries, *selectivity*100, *path, *parallelism, *ordered, runtime.NumCPU())
	res.print(os.Stdout)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fatal(err)
		}
	}
}

// prepareReport is the -prepare JSON document: the prepared run, the
// optional ad-hoc control, the p50/p99 latency deltas (prepared minus
// ad-hoc; negative = prepared faster) and the plan-cache traffic
// attributed per run (counter deltas around each run — Stmt.Run binds
// its own template, so the prepared delta only shows the one Prepare
// miss).
type prepareReport struct {
	AdHoc             *loadResult                `json:"adhoc,omitempty"`
	Prepared          loadResult                 `json:"prepared"`
	P50DeltaMS        float64                    `json:"p50_delta_ms"`
	P99DeltaMS        float64                    `json:"p99_delta_ms"`
	PlanCacheAdHoc    *smoothscan.PlanCacheStats `json:"plan_cache_adhoc,omitempty"`
	PlanCachePrepared smoothscan.PlanCacheStats  `json:"plan_cache_prepared"`
}

// cacheDelta attributes plan-cache counter traffic to one run.
func cacheDelta(before, after smoothscan.PlanCacheStats) smoothscan.PlanCacheStats {
	return smoothscan.PlanCacheStats{
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Evictions: after.Evictions - before.Evictions,
		Entries:   after.Entries,
		Capacity:  after.Capacity,
	}
}

// runPrepared runs the -prepare comparison: an ad-hoc control load
// (every query compiled through the builder — transparently sharing
// templates via the DB plan cache), then the same workload through one
// shared prepared Stmt bound per query from every client.
func runPrepared(ctx context.Context, db *smoothscan.DB, cfg loadConfig, control bool, jsonOut string) error {
	report := prepareReport{}

	if control {
		before := db.PlanCacheStats()
		res, err := runLoad(ctx, db, cfg)
		if err != nil {
			return err
		}
		report.AdHoc = &res
		delta := cacheDelta(before, db.PlanCacheStats())
		report.PlanCacheAdHoc = &delta
		fmt.Printf("ssload -prepare: ad-hoc control (%d clients x %d queries, cpus=%d)\n",
			cfg.clients, cfg.queries, runtime.NumCPU())
		res.print(os.Stdout)
		fmt.Printf("  plan cache %d hits / %d misses this run (%d entries)\n",
			delta.Hits, delta.Misses, delta.Entries)
	}

	before := db.PlanCacheStats()
	stmt, err := db.Prepare(db.Query("t").
		Where("val", smoothscan.Between(smoothscan.Param("lo"), smoothscan.Param("hi"))).
		WithOptions(cfg.opts))
	if err != nil {
		return err
	}
	pcfg := cfg
	pcfg.stmt = stmt
	res, err := runLoad(ctx, db, pcfg)
	if err != nil {
		return err
	}
	report.Prepared = res
	report.PlanCachePrepared = cacheDelta(before, db.PlanCacheStats())
	fmt.Printf("ssload -prepare: shared Stmt (%d clients x %d queries)\n", cfg.clients, cfg.queries)
	res.print(os.Stdout)
	fmt.Printf("  plan cache %d hits / %d misses this run (Stmt binds its own template; expect just the Prepare miss)\n",
		report.PlanCachePrepared.Hits, report.PlanCachePrepared.Misses)

	if report.AdHoc != nil {
		report.P50DeltaMS = res.P50MS - report.AdHoc.P50MS
		report.P99DeltaMS = res.P99MS - report.AdHoc.P99MS
		fmt.Printf("  delta      p50 %+.3f ms, p99 %+.3f ms vs ad-hoc (negative = prepared faster)\n",
			report.P50DeltaMS, report.P99DeltaMS)
	}

	if jsonOut != "" {
		return writeJSON(jsonOut, report)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssload:", err)
	os.Exit(1)
}

// buildDB loads the micro-benchmark-shaped table: c0 dense key, c1
// indexed uniform over the domain, c2..c9 payload.
func buildDB(rows, domain, seed int64, poolPages int) (*smoothscan.DB, error) {
	db, err := smoothscan.Open(smoothscan.Options{PoolPages: poolPages})
	if err != nil {
		return nil, err
	}
	tb, err := db.CreateTable("t", "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, 10)
	for i := int64(0); i < rows; i++ {
		vals[0] = i
		for c := 1; c < len(vals); c++ {
			vals[c] = rng.Int63n(domain)
		}
		if err := tb.Append(vals...); err != nil {
			return nil, err
		}
	}
	if err := tb.Finish(); err != nil {
		return nil, err
	}
	if err := db.CreateIndex("t", "val"); err != nil {
		return nil, err
	}
	return db, nil
}

func scanOptions(path, policy string, ordered bool, parallelism int) (smoothscan.ScanOptions, error) {
	opts := smoothscan.ScanOptions{Ordered: ordered, Parallelism: parallelism}
	switch path {
	case "smooth":
		opts.Path = smoothscan.PathSmooth
	case "full":
		opts.Path = smoothscan.PathFull
	case "index":
		opts.Path = smoothscan.PathIndex
	case "sort":
		opts.Path = smoothscan.PathSort
	case "switch":
		opts.Path = smoothscan.PathSwitch
	default:
		return opts, fmt.Errorf("unknown path %q", path)
	}
	switch policy {
	case "elastic":
		opts.Policy = smoothscan.Elastic
	case "greedy":
		opts.Policy = smoothscan.Greedy
	case "si":
		opts.Policy = smoothscan.SelectivityIncrease
	default:
		return opts, fmt.Errorf("unknown policy %q", policy)
	}
	return opts, nil
}

type loadConfig struct {
	clients     int
	queries     int
	selectivity float64
	domain      int64
	seed        int64
	opts        smoothscan.ScanOptions
	// stmt, when set, routes every query through the shared prepared
	// statement (bound per query) instead of the ad-hoc builder.
	stmt *smoothscan.Stmt
	// retryFaults is the number of application-level re-runs a client
	// gives a query that failed with a transient injected fault, on top
	// of the engine's own bounded page retry. Chaos mode sets it so a
	// recoverable schedule cannot strand a query.
	retryFaults int
}

// clientStat is one client goroutine's tally, reported in the JSON
// output so a sick client is visible instead of averaged away.
type clientStat struct {
	Client  int `json:"client"`
	Queries int `json:"queries"`
	Errors  int `json:"errors"`
	// QueryRetries counts application-level query re-runs (see
	// loadConfig.retryFaults); Retries counts the engine's page-level
	// read retries inside this client's queries.
	QueryRetries int    `json:"query_retries"`
	Retries      int64  `json:"retries"`
	FaultsSeen   int64  `json:"faults_seen"`
	FirstError   string `json:"first_error,omitempty"`
}

// loadResult aggregates a load run; field names feed the JSON output.
type loadResult struct {
	Clients     int     `json:"clients"`
	Queries     int     `json:"queries"`
	Parallelism int     `json:"parallelism"`
	CPUs        int     `json:"cpus"`
	WallMS      float64 `json:"wall_ms"`
	Tuples      int64   `json:"tuples"`
	TuplesPerS  float64 `json:"tuples_per_s"`
	QueriesPerS float64 `json:"queries_per_s"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	SimCost     float64 `json:"simcost"`
	// PlanReuseRate is the fraction of queries that reused a compiled
	// plan template (ExecStats.PlanCacheHit): the DB plan cache for
	// ad-hoc loads, the shared Stmt's template for prepared loads.
	PlanReuseRate float64 `json:"plan_reuse_rate"`
	// Errors counts queries that still failed after any application
	// retries; failed queries are excluded from Queries, the latency
	// percentiles, Tuples and Digest.
	Errors int `json:"errors"`
	// QueryRetries / Retries / FaultsSeen aggregate the per-client
	// fault counters (see clientStat).
	QueryRetries int   `json:"query_retries"`
	Retries      int64 `json:"retries"`
	FaultsSeen   int64 `json:"faults_seen"`
	// Digest is an order-independent checksum of every result row of
	// every successful query (sum of per-row FNV-1a hashes), stable
	// across client scheduling and parallel-worker interleavings. Two
	// runs of the same workload over the same data must agree on it.
	Digest uint64 `json:"digest"`
	// PerClient breaks the run down by client goroutine.
	PerClient []clientStat `json:"per_client,omitempty"`
}

func (r loadResult) print(w *os.File) {
	fmt.Fprintf(w, "  wall       %.1f ms\n", r.WallMS)
	fmt.Fprintf(w, "  tuples     %d (%.2fM tuples/s aggregate)\n", r.Tuples, r.TuplesPerS/1e6)
	fmt.Fprintf(w, "  queries/s  %.1f\n", r.QueriesPerS)
	fmt.Fprintf(w, "  latency    p50 %.2f ms, p99 %.2f ms, max %.2f ms\n", r.P50MS, r.P99MS, r.MaxMS)
	fmt.Fprintf(w, "  simcost    %.1f units (device total for the run)\n", r.SimCost)
	fmt.Fprintf(w, "  plan reuse %.1f%% of queries\n", r.PlanReuseRate*100)
	if r.Errors > 0 {
		fmt.Fprintf(w, "  errors     %d queries failed (excluded from digest and latency)\n", r.Errors)
	}
	if r.FaultsSeen > 0 || r.Retries > 0 || r.QueryRetries > 0 {
		fmt.Fprintf(w, "  faults     %d seen, %d page retries, %d query re-runs\n",
			r.FaultsSeen, r.Retries, r.QueryRetries)
	}
}

// rowHash hashes one result row; per-query and per-run digests are
// wrapping sums of row hashes, making them order-independent.
func rowHash(vals []int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// runLoad fires cfg.queries queries across cfg.clients goroutines
// sharing db and aggregates wall-clock throughput and latency. Every
// query goes through the composable Query builder — the same surface
// the library's users compose — with ctx cancelling in-flight queries
// (and their parallel scan workers) when the -timeout deadline hits.
func runLoad(ctx context.Context, db *smoothscan.DB, cfg loadConfig) (loadResult, error) {
	if cfg.clients < 1 || cfg.queries < 1 {
		return loadResult{}, fmt.Errorf("need at least one client and one query")
	}
	if err := db.ColdCache(); err != nil {
		return loadResult{}, err
	}
	if err := db.ResetStats(); err != nil {
		return loadResult{}, err
	}
	width := int64(float64(cfg.domain) * cfg.selectivity)
	if width < 1 {
		width = 1
	}

	// queryResult is one successful query execution; a failed attempt's
	// partial rows are discarded wholesale so a retried query cannot
	// double-count into the digest.
	type queryResult struct {
		digest  uint64
		tuples  int64
		reused  bool
		retries int64
		faults  int64
	}
	runQuery := func(lo int64) (queryResult, error) {
		var qr queryResult
		var rows *smoothscan.Rows
		var err error
		if cfg.stmt != nil {
			rows, err = cfg.stmt.Run(ctx, smoothscan.Bind{"lo": lo, "hi": lo + width})
		} else {
			rows, err = db.Query("t").
				Where("val", smoothscan.Between(lo, lo+width)).
				WithOptions(cfg.opts).
				Run(ctx)
		}
		if err != nil {
			return qr, err
		}
		for rows.Next() {
			qr.tuples++
			qr.digest += rowHash(rows.Row())
		}
		err = rows.Err()
		if cerr := rows.Close(); err == nil {
			err = cerr
		}
		st := rows.ExecStats()
		qr.reused = st.PlanCacheHit
		qr.retries = st.Retries
		qr.faults = st.FaultsSeen
		return qr, err
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		tuples    int64
		reused    int64
		digest    uint64
		perClient []clientStat
	)
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Distribute exactly cfg.queries across the clients.
			n := cfg.queries / cfg.clients
			if c < cfg.queries%cfg.clients {
				n++
			}
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			stat := clientStat{Client: c}
			var localLat []time.Duration
			var localTuples, localReused int64
			var localDigest uint64
			for q := 0; q < n; q++ {
				lo := int64(0)
				if cfg.domain > width {
					lo = rng.Int63n(cfg.domain - width)
				}
				qStart := time.Now()
				var qr queryResult
				var err error
				for attempt := 0; ; attempt++ {
					var once queryResult
					once, err = runQuery(lo)
					qr.retries += once.retries
					qr.faults += once.faults
					if err == nil {
						qr.digest, qr.tuples, qr.reused = once.digest, once.tuples, once.reused
						break
					}
					if attempt >= cfg.retryFaults || !smoothscan.IsTransientFault(err) || ctx.Err() != nil {
						break
					}
					stat.QueryRetries++
				}
				stat.Retries += qr.retries
				stat.FaultsSeen += qr.faults
				if err != nil {
					// Record the failure and move on: one poisoned
					// query must not hide the rest of this client's
					// work. A cancelled context is the exception —
					// every further query would fail the same way.
					stat.Errors++
					if stat.FirstError == "" {
						stat.FirstError = err.Error()
					}
					if ctx.Err() != nil {
						break
					}
					continue
				}
				stat.Queries++
				if qr.reused {
					localReused++
				}
				localTuples += qr.tuples
				localDigest += qr.digest
				localLat = append(localLat, time.Since(qStart))
			}
			mu.Lock()
			latencies = append(latencies, localLat...)
			tuples += localTuples
			reused += localReused
			digest += localDigest
			perClient = append(perClient, stat)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		return loadResult{}, err
	}

	sort.Slice(perClient, func(i, j int) bool { return perClient[i].Client < perClient[j].Client })
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	reuseRate := 0.0
	if len(latencies) > 0 {
		reuseRate = float64(reused) / float64(len(latencies))
	}
	res := loadResult{
		Clients:       cfg.clients,
		Queries:       len(latencies),
		Parallelism:   cfg.opts.Parallelism,
		CPUs:          runtime.NumCPU(),
		WallMS:        float64(wall) / float64(time.Millisecond),
		Tuples:        tuples,
		TuplesPerS:    float64(tuples) / wall.Seconds(),
		QueriesPerS:   float64(len(latencies)) / wall.Seconds(),
		P50MS:         pct(0.50),
		P99MS:         pct(0.99),
		MaxMS:         pct(1.0),
		SimCost:       db.Stats().Time(),
		PlanReuseRate: reuseRate,
		Digest:        digest,
		PerClient:     perClient,
	}
	for _, st := range perClient {
		res.Errors += st.Errors
		res.QueryRetries += st.QueryRetries
		res.Retries += st.Retries
		res.FaultsSeen += st.FaultsSeen
	}
	return res, nil
}

// chaosRun is one fault schedule of the -chaos sweep.
type chaosRun struct {
	Schedule string     `json:"schedule"`
	Run      loadResult `json:"run"`
	// Match reports whether the run reproduced the fault-free oracle:
	// same digest, same tuple count, zero unrecovered errors.
	Match bool `json:"match"`
}

// chaosReport is the -chaos JSON document.
type chaosReport struct {
	Oracle loadResult `json:"oracle"`
	Runs   []chaosRun `json:"runs"`
}

// chaosQueryRetries is the application-level retry budget chaos mode
// gives each query on top of the engine's page-level retry: transient
// decisions re-roll per attempt, so a recoverable schedule converges.
const chaosQueryRetries = 8

// runChaos verifies end-to-end fault recovery under concurrent load:
// the workload runs once fault-free to record the oracle digest, then
// once per injected fault schedule. Recovered runs must reproduce the
// oracle bit-for-bit; any divergence or unrecovered error fails the
// sweep. Fault decisions are seed-deterministic per (space, page,
// attempt); which attempt a page is at when concurrent clients race
// through the shared pool is scheduling-dependent, which is exactly
// the point — recovery must hold under any interleaving.
func runChaos(ctx context.Context, db *smoothscan.DB, cfg loadConfig, seed int64, jsonOut string) error {
	oracle, err := runLoad(ctx, db, cfg)
	if err != nil {
		return err
	}
	if oracle.Errors > 0 {
		return fmt.Errorf("chaos: fault-free oracle run had %d errors", oracle.Errors)
	}
	fmt.Printf("ssload -chaos: fault-free oracle (%d clients x %d queries, digest %016x)\n",
		cfg.clients, cfg.queries, oracle.Digest)
	oracle.print(os.Stdout)

	schedules := []struct {
		name string
		rule smoothscan.FaultRule
	}{
		{"transient r=0.05", smoothscan.FaultRule{Space: smoothscan.AnySpace, Kind: smoothscan.FaultTransient, Rate: 0.05}},
		{"transient r=0.15", smoothscan.FaultRule{Space: smoothscan.AnySpace, Kind: smoothscan.FaultTransient, Rate: 0.15}},
		{"corrupt r=0.05", smoothscan.FaultRule{Space: smoothscan.AnySpace, Kind: smoothscan.FaultCorrupt, Rate: 0.05}},
		{"latency r=0.50 +50u", smoothscan.FaultRule{Space: smoothscan.AnySpace, Kind: smoothscan.FaultLatency, Rate: 0.50, ExtraCost: 50}},
	}
	ccfg := cfg
	ccfg.retryFaults = chaosQueryRetries
	report := chaosReport{Oracle: oracle}
	failed := 0
	for _, sc := range schedules {
		db.SetFaultPolicy(smoothscan.NewFaultPolicy(seed, sc.rule))
		res, err := runLoad(ctx, db, ccfg)
		db.SetFaultPolicy(nil)
		if err != nil {
			return fmt.Errorf("chaos: schedule %q: %w", sc.name, err)
		}
		match := res.Digest == oracle.Digest && res.Tuples == oracle.Tuples && res.Errors == 0
		if !match {
			failed++
		}
		verdict := "recovered, digest matches oracle"
		if !match {
			verdict = "DIVERGED from oracle"
		}
		fmt.Printf("chaos %-20s %s — %d faults, %d page retries, %d query re-runs, %d errors\n",
			sc.name, verdict, res.FaultsSeen, res.Retries, res.QueryRetries, res.Errors)
		report.Runs = append(report.Runs, chaosRun{Schedule: sc.name, Run: res, Match: match})
	}
	if jsonOut != "" {
		if err := writeJSON(jsonOut, report); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("chaos: %d of %d schedules diverged from the fault-free oracle", failed, len(schedules))
	}
	fmt.Printf("chaos: all %d schedules recovered to the oracle digest\n", len(schedules))
	return nil
}

// parallelBenchResult is one point of the -bench parallel sweep.
type parallelBenchResult struct {
	Parallelism int     `json:"parallelism"`
	WallMS      float64 `json:"wall_ms"`
	TuplesPerS  float64 `json:"tuples_per_s"`
	SpeedupP1   float64 `json:"speedup_vs_p1"`
	SimCost     float64 `json:"simcost"`
	// SimCostDeltaP1 is the simulated-cost delta vs the serial run —
	// by construction purely random/sequential classification and
	// per-worker leaf-walk differences, never different heap pages.
	SimCostDeltaP1 float64 `json:"simcost_delta_vs_p1"`
}

// parallelBenchReport is the BENCH_parallel.json document.
type parallelBenchReport struct {
	Benchmark string                `json:"benchmark"`
	Rows      int64                 `json:"rows"`
	CPUs      int                   `json:"cpus"`
	Results   []parallelBenchResult `json:"results"`
}

// benchParallel runs the P=1/2/4/8 intra-query sweep at 100%
// selectivity (the decode-bound regime) and reports wall-clock
// tuples/s plus the simulated-cost delta vs serial.
func benchParallel(db *smoothscan.DB, rows, domain int64, jsonOut string) error {
	const iters = 5
	report := parallelBenchReport{
		Benchmark: "BenchmarkParallelSmoothScan",
		Rows:      rows,
		CPUs:      runtime.NumCPU(),
	}
	var base parallelBenchResult
	for _, p := range []int{1, 2, 4, 8} {
		best := time.Duration(1<<63 - 1)
		var produced int64
		var simCost float64
		for i := 0; i < iters; i++ {
			if err := db.ColdCache(); err != nil {
				return err
			}
			if err := db.ResetStats(); err != nil {
				return err
			}
			start := time.Now()
			rs, err := db.Scan("t", "val", 0, domain, smoothscan.ScanOptions{Parallelism: p})
			if err != nil {
				return err
			}
			produced = 0
			for rs.Next() {
				produced++
			}
			if rs.Err() != nil {
				rs.Close()
				return rs.Err()
			}
			if err := rs.Close(); err != nil {
				return err
			}
			if d := time.Since(start); d < best {
				best = d
			}
			simCost = db.Stats().Time()
		}
		res := parallelBenchResult{
			Parallelism: p,
			WallMS:      float64(best) / float64(time.Millisecond),
			TuplesPerS:  float64(produced) / best.Seconds(),
			SimCost:     simCost,
		}
		if p == 1 {
			base = res
		}
		if base.WallMS > 0 {
			res.SpeedupP1 = base.WallMS / res.WallMS
		}
		res.SimCostDeltaP1 = res.SimCost - base.SimCost
		report.Results = append(report.Results, res)
		fmt.Printf("P=%d  %8.1f ms  %8.2fM tuples/s  speedup %.2fx  simcost %.0f (Δ%+.0f vs P=1)\n",
			p, res.WallMS, res.TuplesPerS/1e6, res.SpeedupP1, res.SimCost, res.SimCostDeltaP1)
	}
	if report.CPUs == 1 {
		fmt.Println("note: single-CPU host; wall-clock speedup is not expected here, only overhead is visible")
	}
	if jsonOut != "" {
		return writeJSON(jsonOut, report)
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
