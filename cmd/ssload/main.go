// Command ssload is a concurrent load driver for the smoothscan
// engine: it bulk-loads a synthetic table, then hammers it from many
// client goroutines, reporting aggregate tuples/s, queries/s and
// p50/p99 query latency. It is the inter-query counterpart of
// ScanOptions.Parallelism (intra-query): both can be combined.
//
// Usage:
//
//	ssload -rows 200000 -clients 8 -queries 64 -selectivity 0.01
//	ssload -clients 4 -parallelism 4 -ordered
//	ssload -bench parallel -json BENCH_parallel.json
//	ssload -chaos -clients 4 -queries 64
//	ssload -cache -clients 4 -queries 256
//	ssload -addr 127.0.0.1:7744 -clients 8 -queries 64
//
// By default the clients share one in-process DB. With -addr the same
// workload runs against a remote ssserver instead: every client
// goroutine owns one ssclient connection, queries travel the wire
// protocol, and the reported latencies are client-observed (dial,
// frame round trips and result streaming included), directly
// comparable to the in-process numbers from the same flags. The
// -prepare and -chaos modes work remotely too — statements are
// prepared per session, and chaos schedules are installed through the
// fault-administration frame (the server must run with -fault-admin).
// A client whose connection is lost re-dials transparently; reconnect
// counts land in the JSON output next to the retry counters.
//
// The -bench parallel mode runs the fixed P=1/2/4/8 intra-query sweep
// of BenchmarkParallelSmoothScan and writes machine-readable JSON, so
// the parallel-scan perf trajectory can be tracked across commits.
// Wall-clock numbers depend on the host (see the reported cpus);
// simulated cost is deterministic up to random/sequential
// classification differences between worker interleavings.
//
// The -cache mode exercises the semantic result-cache tier
// (Options.ResultCacheBytes; see docs/CACHING.md): a Zipf-skewed
// repeat-query workload runs once with the tier off and once with it
// on — reporting the hit rate and the p50/p99 latency delta — then a
// third time with rows being inserted mid-run, so the write-driven
// invalidation churn (every Insert bumps the table epoch and kills the
// entries that read it) shows up in the counters. The cached run's
// digest must match the tier-off control's exactly: rows served from
// the cache are bit-identical to re-executed ones. Local modes only
// (with -addr the server side of the tier is the server's
// -result-cache-bytes flag); -shards is supported and exercises the
// coordinator-level tier above scatter-gather.
//
// The -chaos mode runs the workload once fault-free to record an
// order-independent result digest, then re-runs it under a sweep of
// injected fault schedules (transient failures, corrupted pages,
// latency spikes). Recovered runs must reproduce the oracle digest
// exactly; the sweep exits non-zero if any run diverged or errored.
//
// A client goroutine never aborts the whole load on a query error: it
// records the error (retrying transient faults a bounded number of
// times first) and moves on, so one poisoned query cannot hide the
// rest of the run. Per-client error and retry counts land in the JSON
// output. -require-clean turns any recorded error into a non-zero
// exit, for smoke tests that must not average failures away.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"smoothscan"
	"smoothscan/internal/loadgen"
	"smoothscan/ssclient"
)

func main() {
	var (
		rows        = flag.Int64("rows", 200_000, "table rows (10 int64 columns, like the paper's micro table); local modes only")
		domain      = flag.Int64("domain", 100_000, "indexed-column value domain (must match the server's with -addr)")
		clients     = flag.Int("clients", 4, "concurrent client goroutines")
		queries     = flag.Int("queries", 64, "total queries across all clients")
		selectivity = flag.Float64("selectivity", 0.01, "per-query selectivity (0..1]")
		parallelism = flag.Int("parallelism", 1, "ScanOptions.Parallelism per query")
		ordered     = flag.Bool("ordered", false, "request index-key-ordered output")
		policy      = flag.String("policy", "elastic", "morphing policy: elastic, greedy, si")
		path        = flag.String("path", "smooth", "access path: smooth, full, index, sort, switch")
		seed        = flag.Int64("seed", 42, "generator seed")
		pool        = flag.Int("pool", 2048, "buffer pool pages; local modes only")
		bench       = flag.String("bench", "", "run a fixed benchmark instead: 'parallel' (P=1/2/4/8 sweep)")
		jsonOut     = flag.String("json", "", "also write results as JSON to this file")
		timeout     = flag.Duration("timeout", 0, "deadline for the whole load; in-flight queries are cancelled through their context")
		prepare     = flag.Bool("prepare", false, "prepared-statement mode: clients bind and execute a prepared Stmt per query; reports plan reuse and the latency delta vs an ad-hoc control run")
		adhoc       = flag.Bool("adhoc", true, "with -prepare: run the ad-hoc control load first (disable to measure only the prepared run)")
		chaos       = flag.Bool("chaos", false, "chaos mode: run a fault-free oracle load, then re-run under injected fault schedules and verify the result digests match")
		addr        = flag.String("addr", "", "run against a remote ssserver at this address instead of in-process (the server owns the data; use matching -domain/-seed flags on both sides)")
		shards      = flag.Int("shards", 0, "range-partition the table across N in-process shards and run the load through the scatter-gather engine (0 = unsharded); local modes only")
		shardAddrs  = flag.String("shard-addrs", "", "comma-separated ssserver addresses, one per shard (each server started with -shard-id I -shard-count N and matching -rows/-domain/-seed); runs the load through the scatter-gather engine with remote shard drivers")
		cache       = flag.Bool("cache", false, "result-cache mode: a Zipf-skewed repeat-query workload with the tier on vs off (hit rate, p50/p99 delta), then re-run under interleaved Inserts to show invalidation churn; local modes only")
		rcBytes     = flag.Int64("result-cache-bytes", 0, "result-cache tier byte budget for local modes (0 disables the tier; -cache mode defaults it to 16 MiB)")
		rcTTL       = flag.Duration("result-cache-ttl", 0, "result-cache entry time-to-live for local modes (0 = no expiry)")
		clean       = flag.Bool("require-clean", false, "exit non-zero if any query failed")
	)
	flag.Parse()

	if *shards < 0 {
		fatal(fmt.Errorf("-shards %d (want >= 0)", *shards))
	}
	if *shards > 0 && *addr != "" {
		fatal(fmt.Errorf("-shards needs the in-process engine (drop -addr)"))
	}
	if *shards > 0 && *bench != "" {
		fatal(fmt.Errorf("-shards does not combine with -bench"))
	}
	if *shardAddrs != "" && (*addr != "" || *shards > 0 || *bench != "") {
		fatal(fmt.Errorf("-shard-addrs does not combine with -addr, -shards or -bench"))
	}
	if *cache {
		if *addr != "" || *shardAddrs != "" {
			fatal(fmt.Errorf("-cache needs the in-process engine (the server's -result-cache-bytes owns the tier remotely)"))
		}
		if *bench != "" || *chaos || *prepare {
			fatal(fmt.Errorf("-cache does not combine with -bench, -chaos or -prepare"))
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *bench != "" {
		if *addr != "" {
			fatal(fmt.Errorf("-bench needs the in-process engine (drop -addr)"))
		}
		if *bench != "parallel" {
			fatal(fmt.Errorf("unknown -bench %q (known: parallel)", *bench))
		}
		db, err := loadgen.BuildDB(*rows, *domain, *seed, smoothscan.Options{PoolPages: *pool})
		if err != nil {
			fatal(err)
		}
		if err := benchParallel(db, *rows, *domain, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	if *cache {
		sopts, err := scanOptions(*path, *policy, *ordered, *parallelism)
		if err != nil {
			fatal(err)
		}
		ccfg := cacheCompareConfig{
			rows: *rows, domain: *domain, seed: *seed,
			pool: *pool, shards: *shards,
			budget: *rcBytes, ttl: *rcTTL,
			load: loadConfig{
				clients:     *clients,
				queries:     *queries,
				selectivity: *selectivity,
				domain:      *domain,
				seed:        *seed,
				opts:        sopts,
			},
		}
		report, err := runCacheCompare(ctx, ccfg, *jsonOut)
		if err != nil {
			fatal(err)
		}
		if *clean && report.errors() > 0 {
			fatal(fmt.Errorf("-require-clean: %d queries failed", report.errors()))
		}
		return
	}

	var h harness
	switch {
	case *shardAddrs != "":
		rh, err := newRemoteShardedHarness(strings.Split(*shardAddrs, ","), *domain)
		if err != nil {
			fatal(fmt.Errorf("shard-addrs %s: %w", *shardAddrs, err))
		}
		h = rh
	case *addr != "":
		rh, err := newRemoteHarness(*addr)
		if err != nil {
			fatal(fmt.Errorf("dial %s: %w", *addr, err))
		}
		h = rh
	case *shards > 0:
		s, err := loadgen.BuildShardedDB(*rows, *domain, *seed, *shards,
			smoothscan.Options{PoolPages: *pool, ResultCacheBytes: *rcBytes, ResultCacheTTL: *rcTTL})
		if err != nil {
			fatal(err)
		}
		h = &shardedHarness{s: s}
	default:
		db, err := loadgen.BuildDB(*rows, *domain, *seed,
			smoothscan.Options{PoolPages: *pool, ResultCacheBytes: *rcBytes, ResultCacheTTL: *rcTTL})
		if err != nil {
			fatal(err)
		}
		h = &localHarness{db: db}
	}
	defer h.close()

	opts, err := scanOptions(*path, *policy, *ordered, *parallelism)
	if err != nil {
		fatal(err)
	}
	cfg := loadConfig{
		clients:     *clients,
		queries:     *queries,
		selectivity: *selectivity,
		domain:      *domain,
		seed:        *seed,
		opts:        opts,
	}

	if *chaos {
		// Chaos is clean by construction: any unrecovered error fails it.
		if err := runChaos(ctx, h, cfg, *seed, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	if *prepare {
		report, err := runPrepared(ctx, h, cfg, *adhoc, *jsonOut)
		if err != nil {
			fatal(err)
		}
		errors := report.Prepared.Errors
		if report.AdHoc != nil {
			errors += report.AdHoc.Errors
		}
		if *clean && errors > 0 {
			fatal(fmt.Errorf("-require-clean: %d queries failed", errors))
		}
		return
	}

	res, err := runLoad(ctx, h, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ssload: %d clients x %d queries, sel=%.4f%%, path=%s, parallelism=%d, ordered=%v, mode=%s, cpus=%d\n",
		*clients, *queries, *selectivity*100, *path, *parallelism, *ordered, h.mode(), runtime.NumCPU())
	res.print(os.Stdout)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fatal(err)
		}
	}
	if *clean && res.Errors > 0 {
		fatal(fmt.Errorf("-require-clean: %d queries failed", res.Errors))
	}
}

// prepareReport is the -prepare JSON document: the prepared run, the
// optional ad-hoc control, the p50/p99 latency deltas (prepared minus
// ad-hoc; negative = prepared faster) and the plan-cache traffic
// attributed per run (counter deltas around each run — Stmt.Run binds
// its own template, so the prepared delta only shows the Prepare
// misses: one for a local shared Stmt, one per session remotely with
// the rest hitting the server's shared plan cache).
type prepareReport struct {
	AdHoc             *loadResult                `json:"adhoc,omitempty"`
	Prepared          loadResult                 `json:"prepared"`
	P50DeltaMS        float64                    `json:"p50_delta_ms"`
	P99DeltaMS        float64                    `json:"p99_delta_ms"`
	PlanCacheAdHoc    *smoothscan.PlanCacheStats `json:"plan_cache_adhoc,omitempty"`
	PlanCachePrepared smoothscan.PlanCacheStats  `json:"plan_cache_prepared"`
}

// cacheDelta attributes plan-cache counter traffic to one run.
func cacheDelta(before, after smoothscan.PlanCacheStats) smoothscan.PlanCacheStats {
	return smoothscan.PlanCacheStats{
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Evictions: after.Evictions - before.Evictions,
		Entries:   after.Entries,
		Capacity:  after.Capacity,
	}
}

// runPrepared runs the -prepare comparison: an ad-hoc control load
// (every query compiled through the builder — transparently sharing
// templates via the DB plan cache), then the same workload through
// prepared statements bound per query — one Stmt shared by every
// client locally, one Stmt per session remotely.
func runPrepared(ctx context.Context, h harness, cfg loadConfig, control bool, jsonOut string) (prepareReport, error) {
	report := prepareReport{}

	if control {
		before, err := h.planCache()
		if err != nil {
			return report, err
		}
		res, err := runLoad(ctx, h, cfg)
		if err != nil {
			return report, err
		}
		after, err := h.planCache()
		if err != nil {
			return report, err
		}
		report.AdHoc = &res
		delta := cacheDelta(before, after)
		report.PlanCacheAdHoc = &delta
		fmt.Printf("ssload -prepare: ad-hoc control (%d clients x %d queries, mode=%s, cpus=%d)\n",
			cfg.clients, cfg.queries, h.mode(), runtime.NumCPU())
		res.print(os.Stdout)
		fmt.Printf("  plan cache %d hits / %d misses this run\n", delta.Hits, delta.Misses)
	}

	before, err := h.planCache()
	if err != nil {
		return report, err
	}
	pcfg := cfg
	pcfg.prepared = true
	res, err := runLoad(ctx, h, pcfg)
	if err != nil {
		return report, err
	}
	after, err := h.planCache()
	if err != nil {
		return report, err
	}
	report.Prepared = res
	report.PlanCachePrepared = cacheDelta(before, after)
	fmt.Printf("ssload -prepare: prepared Stmt (%d clients x %d queries, mode=%s)\n",
		cfg.clients, cfg.queries, h.mode())
	res.print(os.Stdout)
	fmt.Printf("  plan cache %d hits / %d misses this run (Stmt binds its own template; expect only the Prepare traffic)\n",
		report.PlanCachePrepared.Hits, report.PlanCachePrepared.Misses)

	if report.AdHoc != nil {
		report.P50DeltaMS = res.P50MS - report.AdHoc.P50MS
		report.P99DeltaMS = res.P99MS - report.AdHoc.P99MS
		fmt.Printf("  delta      p50 %+.3f ms, p99 %+.3f ms vs ad-hoc (negative = prepared faster)\n",
			report.P50DeltaMS, report.P99DeltaMS)
	}

	if jsonOut != "" {
		if err := writeJSON(jsonOut, report); err != nil {
			return report, err
		}
	}
	return report, nil
}

// cacheTemplateCount is the -cache mode's predicate-range pool size:
// enough distinct shapes that the tail stays cold, few enough that the
// Zipf head repeats within even a small -queries budget.
const cacheTemplateCount = 32

// cacheCompareConfig carries the -cache mode's build and load knobs.
type cacheCompareConfig struct {
	rows, domain, seed int64
	pool, shards       int
	// budget/ttl configure the cached backend's result-cache tier
	// (budget 0 defaults to 16 MiB; the control backend runs tier-off).
	budget int64
	ttl    time.Duration
	load   loadConfig
}

// cacheReport is the -cache JSON document: the tier-off control run,
// the tier-on run of the identical workload (same Zipf range stream),
// their p50/p99 deltas, and a third tier-on run under interleaved
// Inserts showing the write-driven invalidation churn.
type cacheReport struct {
	Control    loadResult `json:"control"`
	Cached     loadResult `json:"cached"`
	P50DeltaMS float64    `json:"p50_delta_ms"`
	P99DeltaMS float64    `json:"p99_delta_ms"`
	// DigestMatch reports whether the cached run reproduced the control
	// run's result digest — served-from-cache rows must be bit-identical
	// to re-executed ones. (The churn run's digest is not comparable:
	// its Inserts land inside queried ranges by design.)
	DigestMatch  bool       `json:"digest_match"`
	Churn        loadResult `json:"churn"`
	ChurnInserts int64      `json:"churn_inserts"`
}

func (r cacheReport) errors() int {
	return r.Control.Errors + r.Cached.Errors + r.Churn.Errors
}

// runCacheCompare runs the -cache comparison. Three runs of the same
// Zipf-skewed repeat-query workload: tier off (control), tier on (the
// hit-rate and latency-delta measurement), and tier on with a
// background writer inserting rows mid-run — every Insert bumps the
// table's epoch, so hot entries keep getting invalidated and re-cached,
// which is the churn the third run's counters make visible.
func runCacheCompare(ctx context.Context, ccfg cacheCompareConfig, jsonOut string) (cacheReport, error) {
	report := cacheReport{}
	cfg := ccfg.load
	cfg.cacheTemplates = cacheTemplateCount
	cfg.reportCache = true

	budget := ccfg.budget
	if budget <= 0 {
		budget = 16 << 20
	}
	// build constructs one backend (sharded when -shards is set) with
	// the tier on or off, returning its harness and an insert closure
	// for the churn writer.
	build := func(tierOn bool) (harness, func(vals ...int64) error, error) {
		opts := smoothscan.Options{PoolPages: ccfg.pool}
		if tierOn {
			opts.ResultCacheBytes = budget
			opts.ResultCacheTTL = ccfg.ttl
		}
		if ccfg.shards > 0 {
			s, err := loadgen.BuildShardedDB(ccfg.rows, ccfg.domain, ccfg.seed, ccfg.shards, opts)
			if err != nil {
				return nil, nil, err
			}
			return &shardedHarness{s: s}, func(vals ...int64) error {
				return s.Insert(loadgen.Table, vals...)
			}, nil
		}
		db, err := loadgen.BuildDB(ccfg.rows, ccfg.domain, ccfg.seed, opts)
		if err != nil {
			return nil, nil, err
		}
		return &localHarness{db: db}, func(vals ...int64) error {
			return db.Insert(loadgen.Table, vals...)
		}, nil
	}

	control, _, err := build(false)
	if err != nil {
		return report, err
	}
	defer control.close()
	res, err := runLoad(ctx, control, cfg)
	if err != nil {
		return report, err
	}
	report.Control = res
	fmt.Printf("ssload -cache: control, tier off (%d clients x %d queries over %d Zipf ranges, mode=%s, cpus=%d)\n",
		cfg.clients, cfg.queries, cacheTemplateCount, control.mode(), runtime.NumCPU())
	res.print(os.Stdout)

	cached, insert, err := build(true)
	if err != nil {
		return report, err
	}
	defer cached.close()
	res, err = runLoad(ctx, cached, cfg)
	if err != nil {
		return report, err
	}
	report.Cached = res
	report.P50DeltaMS = res.P50MS - report.Control.P50MS
	report.P99DeltaMS = res.P99MS - report.Control.P99MS
	report.DigestMatch = res.Digest == report.Control.Digest && res.Tuples == report.Control.Tuples
	fmt.Printf("ssload -cache: tier on, %d byte budget (same workload)\n", budget)
	res.print(os.Stdout)
	fmt.Printf("  delta      p50 %+.3f ms, p99 %+.3f ms vs tier-off control (negative = cached faster)\n",
		report.P50DeltaMS, report.P99DeltaMS)
	if !report.DigestMatch {
		return report, fmt.Errorf("cache: cached run diverged from control (digest %016x vs %016x, %d vs %d tuples)",
			res.Digest, report.Control.Digest, res.Tuples, report.Control.Tuples)
	}
	fmt.Println("  digest     matches the tier-off control (cached rows are bit-identical)")

	// Churn run: the same workload on the same cached backend while a
	// writer inserts rows. Every Insert bumps the table epoch, so each
	// hot entry serves only until the next write lands, then misses,
	// re-executes and re-caches — invalidation churn under load, with
	// pre-write entries never served (the -race tests pin that; here the
	// counters make it visible at workload scale).
	var (
		churnInserts int64
		stopChurn    = make(chan struct{})
		churnDone    = make(chan error, 1)
	)
	go func() {
		wrng := rand.New(rand.NewSource(ccfg.seed * 104729))
		vals := make([]int64, 10)
		id := ccfg.rows
		for {
			select {
			case <-stopChurn:
				churnDone <- nil
				return
			default:
			}
			vals[0] = id
			id++
			for c := 1; c < len(vals); c++ {
				vals[c] = wrng.Int63n(ccfg.domain)
			}
			if err := insert(vals...); err != nil {
				churnDone <- err
				return
			}
			churnInserts++
			time.Sleep(500 * time.Microsecond)
		}
	}()
	res, err = runLoad(ctx, cached, cfg)
	close(stopChurn)
	werr := <-churnDone
	if err == nil {
		err = werr
	}
	if err != nil {
		return report, err
	}
	report.Churn = res
	report.ChurnInserts = churnInserts
	fmt.Printf("ssload -cache: tier on under churn (%d rows inserted mid-run)\n", churnInserts)
	res.print(os.Stdout)

	if jsonOut != "" {
		if err := writeJSON(jsonOut, report); err != nil {
			return report, err
		}
	}
	return report, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssload:", err)
	os.Exit(1)
}

func scanOptions(path, policy string, ordered bool, parallelism int) (smoothscan.ScanOptions, error) {
	opts := smoothscan.ScanOptions{Ordered: ordered, Parallelism: parallelism}
	switch path {
	case "smooth":
		opts.Path = smoothscan.PathSmooth
	case "full":
		opts.Path = smoothscan.PathFull
	case "index":
		opts.Path = smoothscan.PathIndex
	case "sort":
		opts.Path = smoothscan.PathSort
	case "switch":
		opts.Path = smoothscan.PathSwitch
	default:
		return opts, fmt.Errorf("unknown path %q", path)
	}
	switch policy {
	case "elastic":
		opts.Policy = smoothscan.Elastic
	case "greedy":
		opts.Policy = smoothscan.Greedy
	case "si":
		opts.Policy = smoothscan.SelectivityIncrease
	default:
		return opts, fmt.Errorf("unknown policy %q", policy)
	}
	return opts, nil
}

type loadConfig struct {
	clients     int
	queries     int
	selectivity float64
	domain      int64
	seed        int64
	opts        smoothscan.ScanOptions
	// prepared routes every query through a prepared statement (bound
	// per query) instead of the ad-hoc builder.
	prepared bool
	// retryFaults is the number of application-level re-runs a client
	// gives a query that failed with a transient injected fault, on top
	// of the engine's own bounded page retry. Chaos mode sets it so a
	// recoverable schedule cannot strand a query.
	retryFaults int
	// cacheTemplates > 0 replaces the uniform random predicate ranges
	// with a Zipf-skewed draw over this many precomputed ranges, so the
	// workload repeats queries the way a result cache wants: a few hot
	// shapes dominate, a long tail stays cold. The ranges are derived
	// from seed, so control and cached runs see the same stream.
	cacheTemplates int
	// reportCache attaches the result-cache tier's counter deltas and
	// the per-query hit rate to the loadResult.
	reportCache bool
}

// queryResult is one successful query execution; a failed attempt's
// partial rows are discarded wholesale so a retried query cannot
// double-count into the digest.
type queryResult struct {
	digest   uint64
	tuples   int64
	reused   bool
	cacheHit bool
	retries  int64
	faults   int64
}

// runner executes one client goroutine's queries against a backend;
// it is owned by that goroutine and never shared.
type runner interface {
	runQuery(ctx context.Context, lo, hi int64) (queryResult, error)
	// reconnects reports how many times the runner had to re-dial a
	// lost connection (always 0 for the in-process backend).
	reconnects() int
	close()
}

// harness abstracts where the workload runs: the in-process engine or
// a remote ssserver over the wire protocol. The load loop, the
// latency accounting and the digest are identical either way — that
// symmetry is what makes local and remote numbers comparable.
type harness interface {
	mode() string
	// mark starts a measurement window: the local backend cold-starts
	// the cache and zeroes device stats; the remote backend snapshots
	// the server counters so simCost can report a delta.
	mark() error
	// simCost is the simulated device cost attributed to the window
	// opened by mark.
	simCost() (float64, error)
	planCache() (smoothscan.PlanCacheStats, error)
	// resultCache snapshots the result-cache tier's counters: the
	// query-boundary tier(s) the backend owns, summed across shards or
	// nodes. All zero when the tier is disabled.
	resultCache() (smoothscan.ResultCacheStats, error)
	newRunner(cfg loadConfig, client int) (runner, error)
	// setFault installs a fault-injection schedule (nil clears it).
	setFault(seed int64, rule *smoothscan.FaultRule) error
	close()
}

// loadTemplate is the workload's one query shape, composed through
// the Engine interface so every backend — in-process, sharded,
// remote — compiles exactly the same builder calls.
func loadTemplate(e smoothscan.Engine, opts smoothscan.ScanOptions) smoothscan.Builder {
	return e.Table(loadgen.Table).
		Where(loadgen.IndexedCol, smoothscan.Between(smoothscan.Param("lo"), smoothscan.Param("hi"))).
		WithOptions(opts)
}

// engineRunner is the single runner for every backend: it drives a
// smoothscan.Engine and drains the uniform Cursor, so the measured
// query path is literally the same code local and remote. Only the
// remote backends set redial (an in-process engine cannot lose its
// connection).
type engineRunner struct {
	cfg  loadConfig
	eng  smoothscan.Engine
	stmt smoothscan.PreparedQuery
	// ownsEngine: close eng with the runner (per-client remote
	// sessions); shared engines are closed by their harness.
	ownsEngine bool
	// broken reports whether the current engine's connection is dead;
	// redial replaces it (and the prepared statement). Both nil for
	// in-process engines.
	broken func(smoothscan.Engine) bool
	redial func() (smoothscan.Engine, smoothscan.PreparedQuery, error)
	recon  int
}

func (r *engineRunner) runQuery(ctx context.Context, lo, hi int64) (queryResult, error) {
	var qr queryResult
	if r.broken != nil && r.broken(r.eng) {
		// Transparent re-dial on a lost connection; the count lands in
		// the per-client JSON so flapping is visible, not averaged away.
		eng, stmt, err := r.redial()
		if err != nil {
			return qr, err
		}
		r.eng, r.stmt = eng, stmt
		r.recon++
	}
	var cur smoothscan.Cursor
	var err error
	if r.cfg.prepared {
		cur, err = r.stmt.Run(ctx, smoothscan.Bind{"lo": lo, "hi": hi})
	} else {
		cur, err = r.eng.Table(loadgen.Table).
			Where(loadgen.IndexedCol, smoothscan.Between(lo, hi)).
			WithOptions(r.cfg.opts).
			Run(ctx)
	}
	if err != nil {
		return qr, err
	}
	for cur.Next() {
		qr.tuples++
		qr.digest += rowHash(cur.Row())
	}
	err = cur.Err()
	if cerr := cur.Close(); err == nil {
		err = cerr
	}
	// ExecStats is complete after the drain on every backend (a remote
	// cursor's statistics arrive with the server's closing summary).
	st := cur.ExecStats()
	qr.reused = st.PlanCacheHit
	qr.cacheHit = st.ResultCache.Hit
	qr.retries = st.Retries
	qr.faults = st.FaultsSeen
	return qr, err
}

func (r *engineRunner) reconnects() int { return r.recon }

func (r *engineRunner) close() {
	if r.stmt != nil && r.ownsEngine {
		r.stmt.Close()
	}
	if r.ownsEngine {
		r.eng.Close()
	}
}

// localHarness runs the workload against an in-process DB shared by
// all clients.
type localHarness struct {
	db   *smoothscan.DB
	stmt smoothscan.PreparedQuery // shared prepared statement, created lazily
}

func (h *localHarness) mode() string { return "local" }

func (h *localHarness) mark() error {
	if err := h.db.ColdCache(); err != nil {
		return err
	}
	return h.db.ResetStats()
}

func (h *localHarness) simCost() (float64, error) { return h.db.Stats().Time(), nil }

func (h *localHarness) planCache() (smoothscan.PlanCacheStats, error) {
	return h.db.PlanCacheStats(), nil
}

func (h *localHarness) resultCache() (smoothscan.ResultCacheStats, error) {
	return h.db.ResultCacheStats(), nil
}

func (h *localHarness) newRunner(cfg loadConfig, _ int) (runner, error) {
	if cfg.prepared && h.stmt == nil {
		stmt, err := h.db.PrepareQuery(loadTemplate(h.db, cfg.opts))
		if err != nil {
			return nil, err
		}
		h.stmt = stmt
	}
	return &engineRunner{cfg: cfg, eng: h.db, stmt: h.stmt}, nil
}

func (h *localHarness) setFault(seed int64, rule *smoothscan.FaultRule) error {
	if rule == nil {
		h.db.SetFaultPolicy(nil)
		return nil
	}
	h.db.SetFaultPolicy(smoothscan.NewFaultPolicy(seed, *rule))
	return nil
}

func (h *localHarness) close() {}

// shardedHarness runs the workload against an in-process ShardedDB:
// the same query surface, scattered to the owning shards and gathered
// through the exchange. Digests stay comparable to the unsharded
// harness because the row stream (and thus every predicate's result
// multiset) is identical — only the placement differs.
type shardedHarness struct {
	s    *smoothscan.ShardedDB
	stmt smoothscan.PreparedQuery // shared prepared statement, created lazily
}

func (h *shardedHarness) mode() string { return fmt.Sprintf("sharded[%d]", h.s.NumShards()) }

func (h *shardedHarness) mark() error {
	if err := h.s.ColdCache(); err != nil {
		return err
	}
	return h.s.ResetStats()
}

func (h *shardedHarness) simCost() (float64, error) { return h.s.Stats().Time(), nil }

func (h *shardedHarness) planCache() (smoothscan.PlanCacheStats, error) {
	// Each shard owns a plan cache; the run-level counters are their sum
	// (sizing fields are per shard and reported from shard 0).
	var total smoothscan.PlanCacheStats
	for i := 0; i < h.s.NumShards(); i++ {
		st := h.s.Shard(i).PlanCacheStats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		if i == 0 {
			total.Entries, total.Capacity = st.Entries, st.Capacity
		}
	}
	return total, nil
}

func (h *shardedHarness) resultCache() (smoothscan.ResultCacheStats, error) {
	// The coordinator tier serves whole sharded queries; each shard's
	// own tier would only see direct single-shard executions. Both are
	// this backend's cache traffic, so the counters are their sum
	// (sizing fields stay the coordinator's).
	total := h.s.ResultCacheStats()
	for i := 0; i < h.s.NumShards(); i++ {
		st := h.s.Shard(i).ResultCacheStats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Stores += st.Stores
		total.StoreSkips += st.StoreSkips
		total.InvalidatedStale += st.InvalidatedStale
		total.Evicted += st.Evicted
		total.Expired += st.Expired
		total.Entries += st.Entries
		total.Bytes += st.Bytes
	}
	return total, nil
}

func (h *shardedHarness) newRunner(cfg loadConfig, _ int) (runner, error) {
	if cfg.prepared && h.stmt == nil {
		stmt, err := h.s.PrepareQuery(loadTemplate(h.s, cfg.opts))
		if err != nil {
			return nil, err
		}
		h.stmt = stmt
	}
	return &engineRunner{cfg: cfg, eng: h.s, stmt: h.stmt}, nil
}

func (h *shardedHarness) setFault(seed int64, rule *smoothscan.FaultRule) error {
	for i := 0; i < h.s.NumShards(); i++ {
		if rule == nil {
			h.s.Shard(i).SetFaultPolicy(nil)
			continue
		}
		// One independent policy per shard device, same seed: decisions
		// stay deterministic per (shard, space, page, attempt).
		h.s.Shard(i).SetFaultPolicy(smoothscan.NewFaultPolicy(seed, *rule))
	}
	return nil
}

func (h *shardedHarness) close() {}

func (h *shardedHarness) shardMode() string { return "in-process" }

// shardBalance reports the per-shard row and device-cost balance of a
// sharded run (see loadResult.Shards).
func (h *shardedHarness) shardBalance() []shardBalance {
	rows, err := h.s.ShardRows(loadgen.Table)
	if err != nil {
		return nil
	}
	per := h.s.ShardIOStats()
	out := make([]shardBalance, len(per))
	for i := range per {
		out[i] = shardBalance{
			Shard:     i,
			Rows:      rows[i],
			SimCost:   per[i].Time(),
			PagesRead: per[i].PagesRead,
		}
	}
	return out
}

// remoteHarness runs the workload against an ssserver: one control
// connection for stats and fault administration, plus one connection
// per client goroutine (an ssclient.Client is single-goroutine by
// contract).
type remoteHarness struct {
	addr string
	ctl  *ssclient.Client
	base ssclient.ServerStats
	// noCold is set once the server refuses cache administration;
	// later windows measure warm instead of failing the run.
	noCold bool
}

func newRemoteHarness(addr string) (*remoteHarness, error) {
	ctl, err := ssclient.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &remoteHarness{addr: addr, ctl: ctl}, nil
}

func (h *remoteHarness) mode() string { return "remote" }

func (h *remoteHarness) mark() error {
	if !h.noCold {
		// Match the local harness's cold-start semantics when the
		// server allows it (ssserver -fault-admin); a refusal just
		// means this window measures a warm pool.
		if err := h.ctl.ColdCache(); err != nil {
			var re *ssclient.RemoteError
			if !errors.As(err, &re) {
				return err
			}
			h.noCold = true
		}
	}
	st, err := h.ctl.ServerStats()
	if err != nil {
		return err
	}
	h.base = st
	return nil
}

func (h *remoteHarness) simCost() (float64, error) {
	st, err := h.ctl.ServerStats()
	if err != nil {
		return 0, err
	}
	return st.DeviceSimCost - h.base.DeviceSimCost, nil
}

func (h *remoteHarness) planCache() (smoothscan.PlanCacheStats, error) {
	st, err := h.ctl.ServerStats()
	if err != nil {
		return smoothscan.PlanCacheStats{}, err
	}
	// The wire stats carry the hit/miss counters; sizing fields stay
	// zero, and cacheDelta only reports differences anyway.
	return smoothscan.PlanCacheStats{
		Hits:   uint64(st.PlanCacheHits),
		Misses: uint64(st.PlanCacheMisses),
	}, nil
}

func (h *remoteHarness) resultCache() (smoothscan.ResultCacheStats, error) {
	st, err := h.ctl.ServerStats()
	if err != nil {
		return smoothscan.ResultCacheStats{}, err
	}
	// The wire stats carry the counters a comparison needs; the sizing
	// fields the server does not export stay zero.
	return smoothscan.ResultCacheStats{
		Hits:             st.ResultCacheHits,
		Misses:           st.ResultCacheMisses,
		InvalidatedStale: st.ResultCacheInvalidated,
		Entries:          int(st.ResultCacheEntries),
		Bytes:            st.ResultCacheBytes,
	}, nil
}

func (h *remoteHarness) newRunner(cfg loadConfig, _ int) (runner, error) {
	// Each client dials a fresh session; in prepared mode it prepares
	// this session's statement (handles are per session, so each
	// client owns one; the compiled template is still shared through
	// the server's plan cache).
	redial := func() (smoothscan.Engine, smoothscan.PreparedQuery, error) {
		c, err := ssclient.Dial(h.addr)
		if err != nil {
			return nil, nil, err
		}
		var stmt smoothscan.PreparedQuery
		if cfg.prepared {
			stmt, err = c.PrepareQuery(loadTemplate(c, cfg.opts))
			if err != nil {
				c.Close()
				return nil, nil, err
			}
		}
		return c, stmt, nil
	}
	eng, stmt, err := redial()
	if err != nil {
		return nil, err
	}
	return &engineRunner{
		cfg:        cfg,
		eng:        eng,
		stmt:       stmt,
		ownsEngine: true,
		broken:     func(e smoothscan.Engine) bool { return e.(*ssclient.Conn).Broken() },
		redial:     redial,
	}, nil
}

func (h *remoteHarness) setFault(seed int64, rule *smoothscan.FaultRule) error {
	if rule == nil {
		return h.ctl.ClearFaultPolicy()
	}
	err := h.ctl.SetFaultPolicy(seed, ssclient.FaultRule{
		Kind:      rule.Kind,
		Rate:      rule.Rate,
		ExtraCost: rule.ExtraCost,
	})
	if err != nil {
		return fmt.Errorf("%w (remote fault schedules need ssserver -fault-admin)", err)
	}
	return nil
}

func (h *remoteHarness) close() { h.ctl.Close() }

// remoteShardedHarness runs the workload through the scatter-gather
// engine backed by remote shard drivers: one ssserver per shard, each
// serving its BuildShardSlice, gathered by an in-process coordinator.
// The query path is the shared engineRunner over the ShardedDB
// engine; this harness only adds per-node administration — one
// control connection per shard for stats snapshots and fault
// schedules (an ssclient session is single-goroutine, so the
// coordinator's own pooled connections cannot double as controls).
type remoteShardedHarness struct {
	s     *smoothscan.ShardedDB
	stmt  smoothscan.PreparedQuery // shared prepared statement, created lazily
	addrs []string
	ctls  []*ssclient.Client
	base  []ssclient.ServerStats
	// noCold is set once a server refuses cache administration; later
	// windows measure warm instead of failing the run.
	noCold bool
}

func newRemoteShardedHarness(addrs []string, domain int64) (*remoteShardedHarness, error) {
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
		if addrs[i] == "" {
			return nil, fmt.Errorf("empty shard address at position %d", i)
		}
	}
	placements := make([]smoothscan.Placement, len(addrs))
	for i, a := range addrs {
		placements[i] = smoothscan.Placement{Addr: a}
	}
	parts := map[string]smoothscan.Partitioning{
		loadgen.Table: loadgen.ShardParts(domain, len(addrs)),
	}
	s, err := smoothscan.OpenShardedRemote(placements, parts, smoothscan.Options{PoolPages: 64})
	if err != nil {
		return nil, err
	}
	h := &remoteShardedHarness{s: s, addrs: addrs, base: make([]ssclient.ServerStats, len(addrs))}
	for _, a := range addrs {
		ctl, err := ssclient.Dial(a)
		if err != nil {
			h.close()
			return nil, fmt.Errorf("control dial %s: %w", a, err)
		}
		h.ctls = append(h.ctls, ctl)
	}
	return h, nil
}

func (h *remoteShardedHarness) mode() string {
	return fmt.Sprintf("remote-sharded[%d]", len(h.addrs))
}

func (h *remoteShardedHarness) mark() error {
	if !h.noCold {
		// ShardedDB.ColdCache forwards to every node; a refusal (no
		// -fault-admin on the servers) downgrades to warm windows.
		if err := h.s.ColdCache(); err != nil {
			var re *ssclient.RemoteError
			if !errors.As(err, &re) {
				return err
			}
			h.noCold = true
		}
	}
	for i, ctl := range h.ctls {
		st, err := ctl.ServerStats()
		if err != nil {
			return err
		}
		h.base[i] = st
	}
	return nil
}

func (h *remoteShardedHarness) simCost() (float64, error) {
	total := 0.0
	for i, ctl := range h.ctls {
		st, err := ctl.ServerStats()
		if err != nil {
			return 0, err
		}
		total += st.DeviceSimCost - h.base[i].DeviceSimCost
	}
	return total, nil
}

func (h *remoteShardedHarness) planCache() (smoothscan.PlanCacheStats, error) {
	var total smoothscan.PlanCacheStats
	for _, ctl := range h.ctls {
		st, err := ctl.ServerStats()
		if err != nil {
			return smoothscan.PlanCacheStats{}, err
		}
		total.Hits += uint64(st.PlanCacheHits)
		total.Misses += uint64(st.PlanCacheMisses)
	}
	return total, nil
}

func (h *remoteShardedHarness) resultCache() (smoothscan.ResultCacheStats, error) {
	// The coordinator's own tier plus each node's server-side tier.
	total := h.s.ResultCacheStats()
	for _, ctl := range h.ctls {
		st, err := ctl.ServerStats()
		if err != nil {
			return smoothscan.ResultCacheStats{}, err
		}
		total.Hits += st.ResultCacheHits
		total.Misses += st.ResultCacheMisses
		total.InvalidatedStale += st.ResultCacheInvalidated
		total.Entries += int(st.ResultCacheEntries)
		total.Bytes += st.ResultCacheBytes
	}
	return total, nil
}

func (h *remoteShardedHarness) newRunner(cfg loadConfig, _ int) (runner, error) {
	if cfg.prepared && h.stmt == nil {
		stmt, err := h.s.PrepareQuery(loadTemplate(h.s, cfg.opts))
		if err != nil {
			return nil, err
		}
		h.stmt = stmt
	}
	// The coordinator is safe for concurrent queries (each shard driver
	// pools its connections), so every client shares the one engine.
	return &engineRunner{cfg: cfg, eng: h.s, stmt: h.stmt}, nil
}

func (h *remoteShardedHarness) setFault(seed int64, rule *smoothscan.FaultRule) error {
	// One independent policy per shard node, same seed — the remote
	// mirror of shardedHarness.setFault.
	for _, ctl := range h.ctls {
		if rule == nil {
			if err := ctl.ClearFaultPolicy(); err != nil {
				return err
			}
			continue
		}
		err := ctl.SetFaultPolicy(seed, ssclient.FaultRule{
			Kind:      rule.Kind,
			Rate:      rule.Rate,
			ExtraCost: rule.ExtraCost,
		})
		if err != nil {
			return fmt.Errorf("%w (remote fault schedules need ssserver -fault-admin)", err)
		}
	}
	return nil
}

func (h *remoteShardedHarness) close() {
	for _, ctl := range h.ctls {
		ctl.Close()
	}
	h.s.Close()
}

// shardBalance reports each node's static row count and this window's
// simulated-cost delta. PagesRead stays zero: the server counters do
// not break pages out per window (per-query page counts do travel in
// ExecStats.Shards, but the load loop does not accumulate them).
func (h *remoteShardedHarness) shardBalance() []shardBalance {
	rows, err := h.s.ShardRows(loadgen.Table)
	if err != nil {
		return nil
	}
	out := make([]shardBalance, len(h.ctls))
	for i, ctl := range h.ctls {
		st, err := ctl.ServerStats()
		if err != nil {
			return nil
		}
		out[i] = shardBalance{
			Shard:   i,
			Rows:    rows[i],
			SimCost: st.DeviceSimCost - h.base[i].DeviceSimCost,
		}
	}
	return out
}

func (h *remoteShardedHarness) shardMode() string { return "remote" }

// clientStat is one client goroutine's tally, reported in the JSON
// output so a sick client is visible instead of averaged away.
type clientStat struct {
	Client  int `json:"client"`
	Queries int `json:"queries"`
	Errors  int `json:"errors"`
	// QueryRetries counts application-level query re-runs (see
	// loadConfig.retryFaults); Retries counts the engine's page-level
	// read retries inside this client's queries; Reconnects counts
	// re-dials of a lost remote connection.
	QueryRetries int    `json:"query_retries"`
	Retries      int64  `json:"retries"`
	FaultsSeen   int64  `json:"faults_seen"`
	Reconnects   int    `json:"reconnects,omitempty"`
	FirstError   string `json:"first_error,omitempty"`
}

// loadResult aggregates a load run; field names feed the JSON output.
type loadResult struct {
	Mode        string  `json:"mode"`
	Clients     int     `json:"clients"`
	Queries     int     `json:"queries"`
	Parallelism int     `json:"parallelism"`
	CPUs        int     `json:"cpus"`
	WallMS      float64 `json:"wall_ms"`
	Tuples      int64   `json:"tuples"`
	TuplesPerS  float64 `json:"tuples_per_s"`
	QueriesPerS float64 `json:"queries_per_s"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	SimCost     float64 `json:"simcost"`
	// PlanReuseRate is the fraction of queries that reused a compiled
	// plan template (ExecStats.PlanCacheHit): the DB plan cache for
	// ad-hoc loads, the Stmt's template for prepared loads.
	PlanReuseRate float64 `json:"plan_reuse_rate"`
	// Errors counts queries that still failed after any application
	// retries; failed queries are excluded from Queries, the latency
	// percentiles, Tuples and Digest.
	Errors int `json:"errors"`
	// QueryRetries / Retries / FaultsSeen / Reconnects aggregate the
	// per-client fault counters (see clientStat).
	QueryRetries int   `json:"query_retries"`
	Retries      int64 `json:"retries"`
	FaultsSeen   int64 `json:"faults_seen"`
	Reconnects   int   `json:"reconnects"`
	// ShardMode labels a sharded run's topology: "in-process" for
	// -shards N, "remote" for -shard-addrs; omitted for unsharded
	// runs. Digests are comparable across the two (and against an
	// unsharded run) — only the placement differs.
	ShardMode string `json:"shard_mode,omitempty"`
	// Shards reports the per-shard row and device-cost balance of a
	// sharded run (-shards N or -shard-addrs), in shard order; omitted
	// otherwise. Rows is static placement; SimCost and PagesRead are
	// this run's deltas, showing whether pruning and the uniform
	// predicate stream spread the work evenly (remote nodes report
	// SimCost only; their PagesRead stays zero).
	Shards []shardBalance `json:"shards,omitempty"`
	// ResultCache reports the result-cache tier's traffic attributed to
	// this run (counter deltas around it) plus the per-query hit rate;
	// set only when loadConfig.reportCache is on (the -cache mode).
	ResultCache *resultCacheBlock `json:"result_cache,omitempty"`
	// Digest is an order-independent checksum of every result row of
	// every successful query (sum of per-row FNV-1a hashes), stable
	// across client scheduling and parallel-worker interleavings. Two
	// runs of the same workload over the same data must agree on it —
	// including one local and one remote run, since results cross the
	// wire bit-exact.
	Digest uint64 `json:"digest"`
	// PerClient breaks the run down by client goroutine.
	PerClient []clientStat `json:"per_client,omitempty"`
}

// resultCacheBlock is one run's result-cache attribution: HitRate is
// the fraction of successful queries whose ExecStats reported a
// result-cache hit; the counters are tier-side deltas for the run's
// measurement window (Entries/Bytes are the resident population at the
// end of it). Invalidated is the write-driven churn — entries dropped
// because a table epoch moved past their snapshot.
type resultCacheBlock struct {
	HitRate     float64 `json:"hit_rate"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Stores      int64   `json:"stores"`
	StoreSkips  int64   `json:"store_skips"`
	Invalidated int64   `json:"invalidated"`
	Evicted     int64   `json:"evicted"`
	Expired     int64   `json:"expired"`
	Entries     int     `json:"entries"`
	Bytes       int64   `json:"bytes"`
}

// shardBalance is one shard's slice of a sharded run.
type shardBalance struct {
	Shard     int     `json:"shard"`
	Rows      int64   `json:"rows"`
	SimCost   float64 `json:"simcost"`
	PagesRead int64   `json:"pages_read"`
}

// shardReporter is implemented by harnesses that can break a run down
// per shard.
type shardReporter interface {
	shardBalance() []shardBalance
	// shardMode labels where the shards live: "in-process" (-shards)
	// or "remote" (-shard-addrs).
	shardMode() string
}

func (r loadResult) print(w *os.File) {
	fmt.Fprintf(w, "  wall       %.1f ms\n", r.WallMS)
	fmt.Fprintf(w, "  tuples     %d (%.2fM tuples/s aggregate)\n", r.Tuples, r.TuplesPerS/1e6)
	fmt.Fprintf(w, "  queries/s  %.1f\n", r.QueriesPerS)
	fmt.Fprintf(w, "  latency    p50 %.2f ms, p99 %.2f ms, max %.2f ms\n", r.P50MS, r.P99MS, r.MaxMS)
	fmt.Fprintf(w, "  simcost    %.1f units (device total for the run)\n", r.SimCost)
	fmt.Fprintf(w, "  plan reuse %.1f%% of queries\n", r.PlanReuseRate*100)
	if r.Errors > 0 {
		fmt.Fprintf(w, "  errors     %d queries failed (excluded from digest and latency)\n", r.Errors)
	}
	if r.FaultsSeen > 0 || r.Retries > 0 || r.QueryRetries > 0 {
		fmt.Fprintf(w, "  faults     %d seen, %d page retries, %d query re-runs\n",
			r.FaultsSeen, r.Retries, r.QueryRetries)
	}
	if r.Reconnects > 0 {
		fmt.Fprintf(w, "  reconnects %d lost connections re-dialed\n", r.Reconnects)
	}
	if rc := r.ResultCache; rc != nil {
		fmt.Fprintf(w, "  result cache %.1f%% of queries served (%d hits / %d misses, %d stores, %d invalidated, %d evicted)\n",
			rc.HitRate*100, rc.Hits, rc.Misses, rc.Stores, rc.Invalidated, rc.Evicted)
		fmt.Fprintf(w, "               %d entries / %d bytes resident after the run\n", rc.Entries, rc.Bytes)
	}
	for _, sb := range r.Shards {
		fmt.Fprintf(w, "  shard %-4d %8d rows, %10.1f simcost, %8d pages read\n",
			sb.Shard, sb.Rows, sb.SimCost, sb.PagesRead)
	}
}

// rowHash hashes one result row; per-query and per-run digests are
// wrapping sums of row hashes, making them order-independent.
func rowHash(vals []int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// runLoad fires cfg.queries queries across cfg.clients goroutines and
// aggregates wall-clock throughput and latency. Every query goes
// through the composable Query builder — the same surface the
// library's users compose, local or remote — with ctx cancelling
// in-flight queries (and their parallel scan workers, on either side
// of the wire) when the -timeout deadline hits.
func runLoad(ctx context.Context, h harness, cfg loadConfig) (loadResult, error) {
	if cfg.clients < 1 || cfg.queries < 1 {
		return loadResult{}, fmt.Errorf("need at least one client and one query")
	}
	if err := h.mark(); err != nil {
		return loadResult{}, err
	}
	width := int64(float64(cfg.domain) * cfg.selectivity)
	if width < 1 {
		width = 1
	}
	// With cacheTemplates set, clients draw their predicate range from a
	// fixed Zipf-skewed pool instead of uniformly: the same few hot
	// ranges recur across clients, which is the regime a semantic result
	// cache exists for. The pool depends only on seed/domain/width, so a
	// control run and a cached run replay the same candidate ranges.
	var templates [][2]int64
	if cfg.cacheTemplates > 0 {
		trng := rand.New(rand.NewSource(cfg.seed*7919 + 17))
		templates = make([][2]int64, cfg.cacheTemplates)
		for i := range templates {
			lo := int64(0)
			if cfg.domain > width {
				lo = trng.Int63n(cfg.domain - width)
			}
			templates[i] = [2]int64{lo, lo + width}
		}
	}
	var rcBefore smoothscan.ResultCacheStats
	if cfg.reportCache {
		var err error
		if rcBefore, err = h.resultCache(); err != nil {
			return loadResult{}, err
		}
	}

	// Runners are created up front so a backend that cannot serve the
	// run at all (bad prepare, unreachable server) fails it cleanly
	// instead of being tallied as per-query errors.
	runners := make([]runner, cfg.clients)
	for c := range runners {
		r, err := h.newRunner(cfg, c)
		if err != nil {
			for _, prev := range runners[:c] {
				prev.close()
			}
			return loadResult{}, fmt.Errorf("client %d: %w", c, err)
		}
		runners[c] = r
	}
	defer func() {
		for _, r := range runners {
			r.close()
		}
	}()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		tuples    int64
		reused    int64
		cacheHits int64
		digest    uint64
		perClient []clientStat
	)
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int, run runner) {
			defer wg.Done()
			// Distribute exactly cfg.queries across the clients.
			n := cfg.queries / cfg.clients
			if c < cfg.queries%cfg.clients {
				n++
			}
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			var zipf *rand.Zipf
			if len(templates) > 1 {
				zipf = rand.NewZipf(rng, 1.3, 1, uint64(len(templates)-1))
			}
			stat := clientStat{Client: c}
			var localLat []time.Duration
			var localTuples, localReused, localCacheHits int64
			var localDigest uint64
			for q := 0; q < n; q++ {
				lo := int64(0)
				switch {
				case zipf != nil:
					lo = templates[zipf.Uint64()][0]
				case len(templates) == 1:
					lo = templates[0][0]
				case cfg.domain > width:
					lo = rng.Int63n(cfg.domain - width)
				}
				qStart := time.Now()
				var qr queryResult
				var err error
				for attempt := 0; ; attempt++ {
					var once queryResult
					once, err = run.runQuery(ctx, lo, lo+width)
					qr.retries += once.retries
					qr.faults += once.faults
					if err == nil {
						qr.digest, qr.tuples, qr.reused = once.digest, once.tuples, once.reused
						qr.cacheHit = once.cacheHit
						break
					}
					if attempt >= cfg.retryFaults || !smoothscan.IsTransientFault(err) || ctx.Err() != nil {
						break
					}
					stat.QueryRetries++
				}
				stat.Retries += qr.retries
				stat.FaultsSeen += qr.faults
				if err != nil {
					// Record the failure and move on: one poisoned
					// query must not hide the rest of this client's
					// work. A cancelled context is the exception —
					// every further query would fail the same way.
					stat.Errors++
					if stat.FirstError == "" {
						stat.FirstError = err.Error()
					}
					if ctx.Err() != nil {
						break
					}
					continue
				}
				stat.Queries++
				if qr.reused {
					localReused++
				}
				if qr.cacheHit {
					localCacheHits++
				}
				localTuples += qr.tuples
				localDigest += qr.digest
				localLat = append(localLat, time.Since(qStart))
			}
			stat.Reconnects = run.reconnects()
			mu.Lock()
			latencies = append(latencies, localLat...)
			tuples += localTuples
			reused += localReused
			cacheHits += localCacheHits
			digest += localDigest
			perClient = append(perClient, stat)
			mu.Unlock()
		}(c, runners[c])
	}
	wg.Wait()
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		return loadResult{}, err
	}
	simCost, err := h.simCost()
	if err != nil {
		return loadResult{}, err
	}
	var shardBal []shardBalance
	shardMode := ""
	if sr, ok := h.(shardReporter); ok {
		shardBal = sr.shardBalance()
		shardMode = sr.shardMode()
	}

	sort.Slice(perClient, func(i, j int) bool { return perClient[i].Client < perClient[j].Client })
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	reuseRate := 0.0
	if len(latencies) > 0 {
		reuseRate = float64(reused) / float64(len(latencies))
	}
	res := loadResult{
		Mode:          h.mode(),
		Clients:       cfg.clients,
		Queries:       len(latencies),
		Parallelism:   cfg.opts.Parallelism,
		CPUs:          runtime.NumCPU(),
		WallMS:        float64(wall) / float64(time.Millisecond),
		Tuples:        tuples,
		TuplesPerS:    float64(tuples) / wall.Seconds(),
		QueriesPerS:   float64(len(latencies)) / wall.Seconds(),
		P50MS:         pct(0.50),
		P99MS:         pct(0.99),
		MaxMS:         pct(1.0),
		SimCost:       simCost,
		PlanReuseRate: reuseRate,
		ShardMode:     shardMode,
		Shards:        shardBal,
		Digest:        digest,
		PerClient:     perClient,
	}
	for _, st := range perClient {
		res.Errors += st.Errors
		res.QueryRetries += st.QueryRetries
		res.Retries += st.Retries
		res.FaultsSeen += st.FaultsSeen
		res.Reconnects += st.Reconnects
	}
	if cfg.reportCache {
		rcAfter, err := h.resultCache()
		if err != nil {
			return loadResult{}, err
		}
		blk := &resultCacheBlock{
			Hits:        rcAfter.Hits - rcBefore.Hits,
			Misses:      rcAfter.Misses - rcBefore.Misses,
			Stores:      rcAfter.Stores - rcBefore.Stores,
			StoreSkips:  rcAfter.StoreSkips - rcBefore.StoreSkips,
			Invalidated: rcAfter.InvalidatedStale - rcBefore.InvalidatedStale,
			Evicted:     rcAfter.Evicted - rcBefore.Evicted,
			Expired:     rcAfter.Expired - rcBefore.Expired,
			Entries:     rcAfter.Entries,
			Bytes:       rcAfter.Bytes,
		}
		if len(latencies) > 0 {
			blk.HitRate = float64(cacheHits) / float64(len(latencies))
		}
		res.ResultCache = blk
	}
	return res, nil
}

// chaosRun is one fault schedule of the -chaos sweep.
type chaosRun struct {
	Schedule string     `json:"schedule"`
	Run      loadResult `json:"run"`
	// Match reports whether the run reproduced the fault-free oracle:
	// same digest, same tuple count, zero unrecovered errors.
	Match bool `json:"match"`
}

// chaosReport is the -chaos JSON document.
type chaosReport struct {
	Oracle loadResult `json:"oracle"`
	Runs   []chaosRun `json:"runs"`
}

// chaosQueryRetries is the application-level retry budget chaos mode
// gives each query on top of the engine's page-level retry: transient
// decisions re-roll per attempt, so a recoverable schedule converges.
const chaosQueryRetries = 8

// runChaos verifies end-to-end fault recovery under concurrent load:
// the workload runs once fault-free to record the oracle digest, then
// once per injected fault schedule. Recovered runs must reproduce the
// oracle bit-for-bit; any divergence or unrecovered error fails the
// sweep. Fault decisions are seed-deterministic per (space, page,
// attempt); which attempt a page is at when concurrent clients race
// through the shared pool is scheduling-dependent, which is exactly
// the point — recovery must hold under any interleaving. Remotely the
// same holds with the wire in the loop: schedules are installed via
// fault administration, typed fault errors drive the same client-side
// retries, and the digest must still match the remote oracle.
func runChaos(ctx context.Context, h harness, cfg loadConfig, seed int64, jsonOut string) error {
	oracle, err := runLoad(ctx, h, cfg)
	if err != nil {
		return err
	}
	if oracle.Errors > 0 {
		return fmt.Errorf("chaos: fault-free oracle run had %d errors", oracle.Errors)
	}
	fmt.Printf("ssload -chaos: fault-free oracle (%d clients x %d queries, mode=%s, digest %016x)\n",
		cfg.clients, cfg.queries, h.mode(), oracle.Digest)
	oracle.print(os.Stdout)

	schedules := []struct {
		name string
		rule smoothscan.FaultRule
	}{
		{"transient r=0.05", smoothscan.FaultRule{Space: smoothscan.AnySpace, Kind: smoothscan.FaultTransient, Rate: 0.05}},
		{"transient r=0.15", smoothscan.FaultRule{Space: smoothscan.AnySpace, Kind: smoothscan.FaultTransient, Rate: 0.15}},
		{"corrupt r=0.05", smoothscan.FaultRule{Space: smoothscan.AnySpace, Kind: smoothscan.FaultCorrupt, Rate: 0.05}},
		{"latency r=0.50 +50u", smoothscan.FaultRule{Space: smoothscan.AnySpace, Kind: smoothscan.FaultLatency, Rate: 0.50, ExtraCost: 50}},
	}
	ccfg := cfg
	ccfg.retryFaults = chaosQueryRetries
	report := chaosReport{Oracle: oracle}
	failed := 0
	for _, sc := range schedules {
		if err := h.setFault(seed, &sc.rule); err != nil {
			return fmt.Errorf("chaos: installing schedule %q: %w", sc.name, err)
		}
		res, err := runLoad(ctx, h, ccfg)
		if cerr := h.setFault(0, nil); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("chaos: schedule %q: %w", sc.name, err)
		}
		match := res.Digest == oracle.Digest && res.Tuples == oracle.Tuples && res.Errors == 0
		if !match {
			failed++
		}
		verdict := "recovered, digest matches oracle"
		if !match {
			verdict = "DIVERGED from oracle"
		}
		fmt.Printf("chaos %-20s %s — %d faults, %d page retries, %d query re-runs, %d errors\n",
			sc.name, verdict, res.FaultsSeen, res.Retries, res.QueryRetries, res.Errors)
		report.Runs = append(report.Runs, chaosRun{Schedule: sc.name, Run: res, Match: match})
	}
	if jsonOut != "" {
		if err := writeJSON(jsonOut, report); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("chaos: %d of %d schedules diverged from the fault-free oracle", failed, len(schedules))
	}
	fmt.Printf("chaos: all %d schedules recovered to the oracle digest\n", len(schedules))
	return nil
}

// parallelBenchResult is one point of the -bench parallel sweep.
type parallelBenchResult struct {
	Parallelism int     `json:"parallelism"`
	WallMS      float64 `json:"wall_ms"`
	TuplesPerS  float64 `json:"tuples_per_s"`
	SpeedupP1   float64 `json:"speedup_vs_p1"`
	SimCost     float64 `json:"simcost"`
	// SimCostDeltaP1 is the simulated-cost delta vs the serial run —
	// by construction purely random/sequential classification and
	// per-worker leaf-walk differences, never different heap pages.
	SimCostDeltaP1 float64 `json:"simcost_delta_vs_p1"`
}

// parallelBenchReport is the BENCH_parallel.json document.
type parallelBenchReport struct {
	Benchmark string `json:"benchmark"`
	Rows      int64  `json:"rows"`
	CPUs      int    `json:"cpus"`
	// Warning flags runs whose wall-clock numbers cannot show parallel
	// speedup (GOMAXPROCS=1: workers time-slice one processor), so a
	// downstream reader does not mistake flat scaling for a regression.
	Warning string                `json:"warning,omitempty"`
	Results []parallelBenchResult `json:"results"`
}

// benchParallel runs the P=1/2/4/8 intra-query sweep at 100%
// selectivity (the decode-bound regime) and reports wall-clock
// tuples/s plus the simulated-cost delta vs serial.
func benchParallel(db *smoothscan.DB, rows, domain int64, jsonOut string) error {
	const iters = 5
	report := parallelBenchReport{
		Benchmark: "BenchmarkParallelSmoothScan",
		Rows:      rows,
		CPUs:      runtime.NumCPU(),
	}
	if runtime.GOMAXPROCS(0) == 1 {
		report.Warning = "GOMAXPROCS=1: wall-clock speedup is not measurable on one processor; read simcost deltas only"
	}
	var base parallelBenchResult
	for _, p := range []int{1, 2, 4, 8} {
		best := time.Duration(1<<63 - 1)
		var produced int64
		var simCost float64
		for i := 0; i < iters; i++ {
			if err := db.ColdCache(); err != nil {
				return err
			}
			if err := db.ResetStats(); err != nil {
				return err
			}
			start := time.Now()
			rs, err := db.Scan("t", "val", 0, domain, smoothscan.ScanOptions{Parallelism: p})
			if err != nil {
				return err
			}
			produced = 0
			for rs.Next() {
				produced++
			}
			if rs.Err() != nil {
				rs.Close()
				return rs.Err()
			}
			if err := rs.Close(); err != nil {
				return err
			}
			if d := time.Since(start); d < best {
				best = d
			}
			simCost = db.Stats().Time()
		}
		res := parallelBenchResult{
			Parallelism: p,
			WallMS:      float64(best) / float64(time.Millisecond),
			TuplesPerS:  float64(produced) / best.Seconds(),
			SimCost:     simCost,
		}
		if p == 1 {
			base = res
		}
		if base.WallMS > 0 {
			res.SpeedupP1 = base.WallMS / res.WallMS
		}
		res.SimCostDeltaP1 = res.SimCost - base.SimCost
		report.Results = append(report.Results, res)
		fmt.Printf("P=%d  %8.1f ms  %8.2fM tuples/s  speedup %.2fx  simcost %.0f (Δ%+.0f vs P=1)\n",
			p, res.WallMS, res.TuplesPerS/1e6, res.SpeedupP1, res.SimCost, res.SimCostDeltaP1)
	}
	if report.CPUs == 1 {
		fmt.Println("note: single-CPU host; wall-clock speedup is not expected here, only overhead is visible")
	}
	if jsonOut != "" {
		return writeJSON(jsonOut, report)
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
