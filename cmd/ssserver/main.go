// Command ssserver serves a smoothscan engine over the wire protocol
// (see docs/PROTOCOL.md): it bulk-loads the same synthetic table
// ssload generates locally, then accepts ssclient sessions with
// prepared-statement lifecycle, admission control and fault
// injection.
//
// Usage:
//
//	ssserver -addr :7744 -rows 200000
//	ssserver -addr :7744 -fault-rate 0.05 -fault-seed 7
//	ssserver -addr :7744 -fault-admin   # let ssload -chaos drive faults
//
// The data generator is shared with ssload (internal/loadgen), so a
// remote run against the same -rows/-domain/-seed serves exactly the
// rows an in-process run would see — the remote-equivalence property
// the test suite checks end to end.
//
// Admission control has two layers: connections beyond -max-conns are
// rejected at accept time with an overloaded error frame (a client's
// Dial fails typed, it never hangs), and queries beyond -max-inflight
// queue up to -queue-deadline before being shed the same way.
// Sessions silent longer than -idle-timeout are closed server-side
// with a typed session-closed error.
//
// With -fault-rate > 0 the server's simulated device starts with a
// deterministic fault-injection policy attached, so remote clients
// observe the engine's degradation ladders and typed error classes
// over the wire. -fault-admin additionally lets clients install and
// clear fault schedules themselves (ssload -chaos -addr needs it);
// leave it off outside test rigs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smoothscan"
	"smoothscan/internal/loadgen"
	"smoothscan/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7744", "listen address (host:port, :0 for an ephemeral port)")
		rows          = flag.Int64("rows", 200_000, "table rows (10 int64 columns, like the paper's micro table)")
		domain        = flag.Int64("domain", 100_000, "indexed-column value domain")
		seed          = flag.Int64("seed", 42, "generator seed")
		pool          = flag.Int("pool", 2048, "buffer pool pages")
		maxConns      = flag.Int("max-conns", 64, "max concurrently open sessions; more are rejected typed at accept")
		maxStmts      = flag.Int("max-stmts", 32, "per-session statement-table capacity (LRU eviction beyond it)")
		maxInflight   = flag.Int("max-inflight", 16, "max queries executing at once across all sessions")
		queueDeadline = flag.Duration("queue-deadline", 2*time.Second, "how long a query may wait for an admission slot before a typed overloaded reject")
		idleTimeout   = flag.Duration("idle-timeout", 0, "close sessions silent longer than this (0 disables)")
		faultSeed     = flag.Int64("fault-seed", 1, "fault-injection decision seed (with -fault-rate)")
		faultRate     = flag.Float64("fault-rate", 0, "attach a fault policy with this per-read fault probability (0 disables)")
		faultKind     = flag.String("fault-kind", "transient", "injected fault kind: transient, permanent, latency, corrupt")
		faultExtra    = flag.Float64("fault-extra-cost", 50, "extra simulated cost per latency fault (with -fault-kind latency)")
		faultAdmin    = flag.Bool("fault-admin", false, "allow clients to install/clear fault policies over the wire (ssload -chaos -addr needs this)")
		shardID       = flag.Int("shard-id", -1, "serve only shard N of a -shard-count-way placement instead of the whole table (pair with ssload -shard-addrs; -1 = unsharded)")
		shardCount    = flag.Int("shard-count", 0, "total shards in the placement (with -shard-id)")
		resCacheBytes = flag.Int64("result-cache-bytes", 0, "result-cache tier byte budget (0 disables; repeated queries are then served with zero device I/O)")
		resCacheTTL   = flag.Duration("result-cache-ttl", 0, "result-cache entry time-to-live (0 = no expiry; with -result-cache-bytes)")
		verbose       = flag.Bool("v", false, "log session lifecycle events")
	)
	flag.Parse()

	sharded := *shardID >= 0
	if sharded && *shardCount < 1 {
		fatal(fmt.Errorf("-shard-id %d needs -shard-count >= 1", *shardID))
	}
	if sharded && *shardID >= *shardCount {
		fatal(fmt.Errorf("-shard-id %d out of range [0, %d)", *shardID, *shardCount))
	}
	if !sharded && *shardCount > 0 {
		fatal(fmt.Errorf("-shard-count needs -shard-id"))
	}

	opts := smoothscan.Options{
		PoolPages:        *pool,
		ResultCacheBytes: *resCacheBytes,
		ResultCacheTTL:   *resCacheTTL,
	}
	var db *smoothscan.DB
	var err error
	if sharded {
		// This node owns one horizontal slice of the shared generator's
		// table; a remote-sharded coordinator (ssload -shard-addrs, or
		// smoothscan.OpenShardedRemote) gathers the slices back into the
		// whole table.
		db, err = loadgen.BuildShardSlice(*rows, *domain, *seed, *shardID, *shardCount, opts)
	} else {
		db, err = loadgen.BuildDB(*rows, *domain, *seed, opts)
	}
	if err != nil {
		fatal(err)
	}
	if *faultRate > 0 {
		kind, err := parseFaultKind(*faultKind)
		if err != nil {
			fatal(err)
		}
		db.SetFaultPolicy(smoothscan.NewFaultPolicy(*faultSeed, smoothscan.FaultRule{
			Space:     smoothscan.AnySpace,
			Kind:      kind,
			Rate:      *faultRate,
			ExtraCost: *faultExtra,
		}))
		fmt.Printf("ssserver: fault policy attached (%s r=%.3f seed=%d)\n", *faultKind, *faultRate, *faultSeed)
	}

	cfg := server.Config{
		MaxConns:           *maxConns,
		MaxStmtsPerSession: *maxStmts,
		MaxInFlight:        *maxInflight,
		QueueDeadline:      *queueDeadline,
		IdleTimeout:        *idleTimeout,
		FaultAdmin:         *faultAdmin,
	}
	if *verbose {
		cfg.Logf = log.New(os.Stderr, "ssserver: ", log.LstdFlags).Printf
	}
	srv := server.New(db, cfg)
	if err := srv.Start(*addr); err != nil {
		fatal(err)
	}
	if sharded {
		fmt.Printf("ssserver: serving shard %d/%d of table %q (%d rows total, domain %d) on %s\n",
			*shardID, *shardCount, loadgen.Table, *rows, *domain, srv.Addr())
	} else {
		fmt.Printf("ssserver: serving table %q (%d rows, domain %d) on %s\n",
			loadgen.Table, *rows, *domain, srv.Addr())
	}
	fmt.Printf("ssserver: limits: %d conns, %d stmts/session, %d in flight (queue %s), idle timeout %s, fault admin %v\n",
		*maxConns, *maxStmts, *maxInflight, *queueDeadline, *idleTimeout, *faultAdmin)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ssserver: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("ssserver: served %d sessions, %d queries (%d failed, %d shed), %d rows in %d batches\n",
		st.SessionsTotal, st.QueriesServed, st.QueriesFailed, st.QueriesRejected, st.RowsSent, st.BatchesSent)
	fmt.Printf("ssserver: %d stmts prepared (%d evicted, %d closed), %d cancels, %d idle closes, %d conns rejected, simcost %.1f\n",
		st.StmtsPrepared, st.StmtsEvicted, st.StmtsClosed, st.Cancels, st.IdleCloses, st.ConnsRejected, st.DeviceSimCost)
	if *resCacheBytes > 0 {
		fmt.Printf("ssserver: result cache: %d hits, %d misses, %d invalidated, %d entries / %d bytes resident\n",
			st.ResultCacheHits, st.ResultCacheMisses, st.ResultCacheInvalidated, st.ResultCacheEntries, st.ResultCacheBytes)
	}
}

func parseFaultKind(s string) (smoothscan.FaultKind, error) {
	switch s {
	case "transient":
		return smoothscan.FaultTransient, nil
	case "permanent":
		return smoothscan.FaultPermanent, nil
	case "latency":
		return smoothscan.FaultLatency, nil
	case "corrupt":
		return smoothscan.FaultCorrupt, nil
	}
	return 0, fmt.Errorf("unknown -fault-kind %q (known: transient, permanent, latency, corrupt)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssserver:", err)
	os.Exit(1)
}
