// Command ssdemo is a guided walk-through of the Smooth Scan library:
// it loads a table, runs the same query under every access path and
// narrates what the morphing operator did.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Smooth Scan demo — statistics-oblivious access paths")
	fmt.Println()

	db, err := smoothscan.Open(smoothscan.Options{Disk: smoothscan.HDD, PoolPages: 512})
	if err != nil {
		return err
	}
	const n = 100_000
	fmt.Printf("loading %d rows (10 int columns, secondary index on c2)...\n", n)
	tb, err := db.CreateTable("events", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < n; i++ {
		if err := tb.Append(i, rng.Int63n(100_000), 0, 0, 0, 0, 0, 0, 0, 0); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	if err := db.CreateIndex("events", "c2"); err != nil {
		return err
	}
	pages, _ := db.NumPages("events")
	fmt.Printf("table occupies %d heap pages\n\n", pages)

	// The paper's stress query at two selectivities: a point-ish query
	// and a half-table query. The optimizer would need accurate
	// statistics to choose correctly; Smooth Scan needs nothing.
	for _, q := range []struct {
		label  string
		lo, hi int64
	}{
		{"0.1% selectivity (c2 < 100)", 0, 100},
		{"50% selectivity (c2 < 50000)", 0, 50_000},
	} {
		fmt.Printf("--- query: %s ---\n", q.label)
		for _, p := range []smoothscan.AccessPath{
			smoothscan.PathFull, smoothscan.PathIndex, smoothscan.PathSort, smoothscan.PathSmooth,
		} {
			db.ColdCache()
			db.ResetStats()
			rows, err := db.Scan("events", "c2", q.lo, q.hi, smoothscan.ScanOptions{Path: p})
			if err != nil {
				return err
			}
			count := 0
			for rows.Next() {
				count++
			}
			if rows.Err() != nil {
				return rows.Err()
			}
			st := db.Stats()
			fmt.Printf("%-8s %7d rows  time=%8.1f  (io=%8.1f cpu=%6.1f rand=%6d seq=%7d)\n",
				p, count, st.Time(), st.IOTime, st.CPUTime, st.RandomAccesses, st.SeqAccesses)
			if ss, ok := rows.SmoothStats(); ok {
				fmt.Printf("         smooth: fetched %d pages (%d with results), skipped %d leaf ptrs, "+
					"region peaked at %d pages (%d expansions, %d shrinks)\n",
					ss.PagesFetched, ss.PagesWithResults, ss.LeafPointersSkipped,
					ss.PeakRegionPages, ss.Expansions, ss.Shrinks)
			}
			rows.Close()
		}
		fmt.Println()
	}
	fmt.Println("note how the index scan wins at 0.1% but collapses at 50%, while")
	fmt.Println("smooth scan stays near the best alternative at both extremes —")
	fmt.Println("without any cardinality estimate.")
	return nil
}
