package smoothscan

import (
	"context"
	"fmt"
)

// Engine is the execution-surface every smoothscan backend exposes: a
// single-node *DB, a scatter-gather *ShardedDB (in-process or remote
// shards alike) and a remote *ssclient.Conn all implement it. Code
// written against Engine — a test harness, a load driver, an
// application — moves between deployments by swapping the constructor
// and nothing else.
//
//	var e smoothscan.Engine = db // or sharded, or ssclient.Dial(...)
//	cur, err := e.Table("t").Where("val", smoothscan.Between(lo, hi)).Run(ctx)
//
// The interface is the intersection of the three surfaces, not their
// union. Backend-specific capability stays on the concrete types:
// mutation and administration (CreateTable, Insert, Analyze,
// SetFaultPolicy), local-only introspection (Rows.Plan,
// Rows.SmoothStats, ShardedRows.Plan), wire-level control
// (Conn.SetFetchRows, Conn.Broken, Conn.ServerStats) and
// Explain-before-execute. ExecStats is the one diagnostic rich enough
// to keep: every backend fills IO, RowsReturned, PlanCacheHit and the
// fault counters, and the sharded backends add per-shard breakdowns.
type Engine interface {
	// Table starts a composable query over the named table. The
	// builder records errors internally and reports them from Run (or
	// PrepareQuery), like the concrete builders it wraps.
	Table(name string) Builder
	// PrepareQuery compiles a builder made by this engine's Table into
	// a reusable prepared statement. Passing a Builder from a
	// different Engine is an error.
	PrepareQuery(b Builder) (PreparedQuery, error)
	// Close releases the engine: remote connections hang up, sharded
	// engines close their shard drivers, a single-node DB is a no-op.
	Close() error
}

// Builder is the composable query surface shared by every Engine. The
// methods mirror Query/ShardedQuery/ssclient.Query exactly; each call
// mutates the underlying builder and returns the same Builder for
// chaining.
type Builder interface {
	Where(col string, p Pred) Builder
	Join(table, leftCol, rightCol string) Builder
	JoinWithOptions(table, leftCol, rightCol string, opts ScanOptions) Builder
	Select(cols ...string) Builder
	GroupBy(col string, aggs ...Agg) Builder
	OrderBy(col string) Builder
	Limit(n any) Builder
	WithOptions(opts ScanOptions) Builder
	// Run executes the query and opens a cursor over the results.
	Run(ctx context.Context) (Cursor, error)
}

// Cursor iterates a result stream: the uniform subset of *Rows,
// *ShardedRows and *ssclient.Rows, which all satisfy it directly.
// ExecStats is fully populated once the stream is drained; a remote
// cursor's statistics arrive with the server's closing summary, so
// mid-stream reads return the zero value there.
type Cursor interface {
	Next() bool
	Row() []int64
	Columns() []string
	Err() error
	ExecStats() ExecStats
	Close() error
}

// PreparedQuery is a reusable compiled statement: bind parameters,
// run, repeat. Close releases any backend resources (a server-side
// statement handle remotely; nothing locally).
type PreparedQuery interface {
	Params() []string
	Run(ctx context.Context, b Bind) (Cursor, error)
	Close() error
}

// Compile-time checks that the concrete row types satisfy Cursor and
// the engines satisfy Engine.
var (
	_ Cursor = (*Rows)(nil)
	_ Cursor = (*ShardedRows)(nil)
	_ Engine = (*DB)(nil)
	_ Engine = (*ShardedDB)(nil)
)

// queryBuilder adapts *Query to Builder.
type queryBuilder struct{ q *Query }

func (b queryBuilder) Where(col string, p Pred) Builder { b.q.Where(col, p); return b }
func (b queryBuilder) Join(table, leftCol, rightCol string) Builder {
	b.q.Join(table, leftCol, rightCol)
	return b
}
func (b queryBuilder) JoinWithOptions(table, leftCol, rightCol string, opts ScanOptions) Builder {
	b.q.JoinWithOptions(table, leftCol, rightCol, opts)
	return b
}
func (b queryBuilder) Select(cols ...string) Builder           { b.q.Select(cols...); return b }
func (b queryBuilder) GroupBy(col string, aggs ...Agg) Builder { b.q.GroupBy(col, aggs...); return b }
func (b queryBuilder) OrderBy(col string) Builder              { b.q.OrderBy(col); return b }
func (b queryBuilder) Limit(n any) Builder                     { b.q.Limit(n); return b }
func (b queryBuilder) WithOptions(opts ScanOptions) Builder    { b.q.WithOptions(opts); return b }
func (b queryBuilder) Run(ctx context.Context) (Cursor, error) {
	r, err := b.q.Run(ctx)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// shardedBuilder adapts *ShardedQuery to Builder.
type shardedBuilder struct{ sq *ShardedQuery }

func (b shardedBuilder) Where(col string, p Pred) Builder { b.sq.Where(col, p); return b }
func (b shardedBuilder) Join(table, leftCol, rightCol string) Builder {
	b.sq.Join(table, leftCol, rightCol)
	return b
}
func (b shardedBuilder) JoinWithOptions(table, leftCol, rightCol string, opts ScanOptions) Builder {
	b.sq.JoinWithOptions(table, leftCol, rightCol, opts)
	return b
}
func (b shardedBuilder) Select(cols ...string) Builder { b.sq.Select(cols...); return b }
func (b shardedBuilder) GroupBy(col string, aggs ...Agg) Builder {
	b.sq.GroupBy(col, aggs...)
	return b
}
func (b shardedBuilder) OrderBy(col string) Builder           { b.sq.OrderBy(col); return b }
func (b shardedBuilder) Limit(n any) Builder                  { b.sq.Limit(n); return b }
func (b shardedBuilder) WithOptions(opts ScanOptions) Builder { b.sq.WithOptions(opts); return b }
func (b shardedBuilder) Run(ctx context.Context) (Cursor, error) {
	r, err := b.sq.Run(ctx)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// stmtPrepared adapts *Stmt to PreparedQuery.
type stmtPrepared struct{ st *Stmt }

func (p stmtPrepared) Params() []string { return p.st.Params() }
func (p stmtPrepared) Run(ctx context.Context, b Bind) (Cursor, error) {
	r, err := p.st.Run(ctx, b)
	if err != nil {
		return nil, err
	}
	return r, nil
}
func (p stmtPrepared) Close() error { return p.st.Close() }

// shardedPrepared adapts *ShardedStmt to PreparedQuery.
type shardedPrepared struct{ st *ShardedStmt }

func (p shardedPrepared) Params() []string { return p.st.Params() }
func (p shardedPrepared) Run(ctx context.Context, b Bind) (Cursor, error) {
	r, err := p.st.Run(ctx, b)
	if err != nil {
		return nil, err
	}
	return r, nil
}
func (p shardedPrepared) Close() error { return p.st.Close() }

// Table implements Engine.
func (db *DB) Table(name string) Builder { return queryBuilder{q: db.Query(name)} }

// PrepareQuery implements Engine; the Builder must come from this
// DB's Table.
func (db *DB) PrepareQuery(b Builder) (PreparedQuery, error) {
	qb, ok := b.(queryBuilder)
	if !ok || qb.q.db != db {
		return nil, errForeignBuilder(b)
	}
	st, err := db.Prepare(qb.q)
	if err != nil {
		return nil, err
	}
	return stmtPrepared{st: st}, nil
}

// Close implements Engine. A DB holds no resources beyond its own
// memory, so Close is a no-op kept for surface uniformity — code
// written against Engine can defer e.Close() unconditionally.
func (db *DB) Close() error { return nil }

// Table implements Engine.
func (s *ShardedDB) Table(name string) Builder { return shardedBuilder{sq: s.Query(name)} }

// PrepareQuery implements Engine; the Builder must come from this
// ShardedDB's Table.
func (s *ShardedDB) PrepareQuery(b Builder) (PreparedQuery, error) {
	sb, ok := b.(shardedBuilder)
	if !ok || sb.sq.s != s {
		return nil, errForeignBuilder(b)
	}
	st, err := s.Prepare(sb.sq)
	if err != nil {
		return nil, err
	}
	return shardedPrepared{st: st}, nil
}

func errForeignBuilder(b Builder) error {
	return fmt.Errorf("smoothscan: PrepareQuery: builder %T was not created by this engine's Table", b)
}
