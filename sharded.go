package smoothscan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"smoothscan/internal/exec"
	"smoothscan/internal/parallel"
	"smoothscan/internal/plan"
	"smoothscan/internal/rescache"
	"smoothscan/internal/shard"
	"smoothscan/internal/tuple"
)

// Partitioning describes how a sharded table's rows distribute across
// the shard set: the partition column, a Hash or Range scheme, and the
// shard count. Build one with HashPartitioning or RangePartitioning.
type Partitioning = shard.Partitioning

// HashPartitioning splits a table across n shards by a full-avalanche
// hash of the named column — balanced under any insert order, but
// range predicates wider than a few values fan out to every shard.
func HashPartitioning(column string, n int) Partitioning {
	return Partitioning{Column: column, Scheme: shard.Hash, N: n}
}

// RangePartitioning splits a table by contiguous value ranges of the
// named column: shard 0 owns (-inf, bounds[0]), shard i owns
// [bounds[i-1], bounds[i]), the last shard owns [bounds[n-2], +inf).
// Range predicates on the column prune to the owning shards.
func RangePartitioning(column string, bounds ...int64) Partitioning {
	return Partitioning{Column: column, Scheme: shard.Range, N: len(bounds) + 1, Bounds: bounds}
}

// EqualWidthBounds computes n-1 split points dividing [lo, hi) into n
// near-equal ranges, for RangePartitioning over uniform domains.
func EqualWidthBounds(lo, hi int64, n int) []int64 { return shard.EqualWidthBounds(lo, hi, n) }

// ErrNotSharded is returned (wrapped) when a sharded query touches a
// table that was not created through CreateShardedTable — the planner
// has no Partitioning to route or prune by.
var ErrNotSharded = errors.New("smoothscan: table is not sharded")

// ErrShardJoin is returned when a join cannot execute under sharding:
// more than one join stage where the inputs are not co-partitioned on
// the join keys (a single non-co-partitioned join broadcasts the
// smaller side instead).
var ErrShardJoin = errors.New("smoothscan: join cannot be sharded")

// ShardedDB presents N in-process DB shards behind the one-database
// query API: tables are horizontally partitioned at load time, queries
// scatter to the owning shards (each shard planning — and morphing —
// its access path independently) and gather through an unordered
// fan-in or a k-way ordered merge. With N=1 every query executes
// byte-identically to the unsharded engine, which is what the
// equivalence suite pins.
//
// Concurrency follows DB: any number of queries may run concurrently;
// a ShardedRows is owned by one goroutine.
type ShardedDB struct {
	// shards holds each shard's planning DB: the shard's own embedded
	// engine for in-process topologies, a schema-only catalog mirror
	// for remote ones. The coordinator compiles, prunes and explains
	// against these; drivers decide where execution actually happens.
	shards []*DB
	// drivers execute the per-shard slices, one per shard.
	drivers []ShardDriver
	// remote marks a topology opened with OpenShardedRemote: shards
	// are schema-only mirrors, data lives on the nodes, and load-time
	// mutators are refused.
	remote bool
	// resCache is the coordinator-level result-cache tier: repeated
	// sharded queries are served above scatter-gather with zero shard
	// traffic. nil when Options.ResultCacheBytes leaves the tier
	// disabled. See sharded_rescache.go.
	resCache *rescache.Cache
	mu       sync.RWMutex // guards parts
	parts    map[string]shard.Partitioning
}

// errRemoteMutation explains a refused load-time mutator on a remote
// topology.
func errRemoteMutation(op string) error {
	return fmt.Errorf("smoothscan: %s on a remote sharded database (load data on the shard nodes; the coordinator's catalog is read-only)", op)
}

// OpenSharded creates n empty shards, each on its own fresh simulated
// device with its own buffer pool and plan cache (opts applies to
// every shard; PoolPages is per shard).
func OpenSharded(n int, opts Options) (*ShardedDB, error) {
	if n < 1 {
		return nil, fmt.Errorf("smoothscan: shard count %d (want >= 1)", n)
	}
	s := &ShardedDB{parts: map[string]shard.Partitioning{}}
	s.initResultCache(opts)
	for i := 0; i < n; i++ {
		db, err := Open(opts)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, db)
		s.drivers = append(s.drivers, &localDriver{db: db})
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *ShardedDB) NumShards() int { return len(s.shards) }

// Driver returns the i-th shard's driver — for topology inspection
// (ShardDriver carries the shard's kind and address).
func (s *ShardedDB) Driver(i int) ShardDriver { return s.drivers[i] }

// Close releases every shard driver. In-process shards hold no
// external resources (Close is then a no-op); remote shards close
// their server connections. The database is unusable afterwards.
func (s *ShardedDB) Close() error {
	var first error
	for _, d := range s.drivers {
		if err := d.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shard returns the i-th underlying DB — for per-shard inspection
// (stats, fault injection) in tests and tools.
func (s *ShardedDB) Shard(i int) *DB { return s.shards[i] }

// Partitioning returns the named table's partitioning.
func (s *ShardedDB) Partitioning(table string) (Partitioning, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.parts[table]
	if !ok {
		return Partitioning{}, fmt.Errorf("%w: %q", ErrNotSharded, table)
	}
	return p, nil
}

// ShardedTableBuilder loads rows into a sharded table, routing each
// row to its owning shard by the partition column.
type ShardedTableBuilder struct {
	builders []*TableBuilder
	colIdx   int
	part     shard.Partitioning
}

// CreateShardedTable creates the table on every shard and registers
// its partitioning. The partitioning's shard count must equal the
// database's, and its column must be one of the table's columns.
func (s *ShardedDB) CreateShardedTable(name string, p Partitioning, columns ...string) (*ShardedTableBuilder, error) {
	if s.remote {
		return nil, errRemoteMutation("CreateShardedTable")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.N != len(s.shards) {
		return nil, fmt.Errorf("smoothscan: partitioning over %d shards on a %d-shard database", p.N, len(s.shards))
	}
	colIdx := -1
	for i, c := range columns {
		if c == p.Column {
			colIdx = i
		}
	}
	if colIdx < 0 {
		return nil, fmt.Errorf("smoothscan: partition column %q is not among the table's columns", p.Column)
	}
	builders := make([]*TableBuilder, len(s.shards))
	for i, db := range s.shards {
		tb, err := db.CreateTable(name, columns...)
		if err != nil {
			return nil, err
		}
		builders[i] = tb
	}
	s.mu.Lock()
	s.parts[name] = p
	s.mu.Unlock()
	return &ShardedTableBuilder{builders: builders, colIdx: colIdx, part: p}, nil
}

// Append routes one row to its owning shard.
func (b *ShardedTableBuilder) Append(vals ...int64) error {
	if len(vals) != 0 && b.colIdx >= len(vals) {
		return fmt.Errorf("smoothscan: %d values, partition column at %d", len(vals), b.colIdx)
	}
	if len(vals) == 0 {
		return fmt.Errorf("smoothscan: empty row")
	}
	return b.builders[b.part.Route(vals[b.colIdx])].Append(vals...)
}

// Finish flushes the load on every shard.
func (b *ShardedTableBuilder) Finish() error {
	for _, tb := range b.builders {
		if err := tb.Finish(); err != nil {
			return err
		}
	}
	return nil
}

// CreateIndex builds the index on every shard.
func (s *ShardedDB) CreateIndex(table, column string) error {
	if s.remote {
		return errRemoteMutation("CreateIndex")
	}
	for _, db := range s.shards {
		if err := db.CreateIndex(table, column); err != nil {
			return err
		}
	}
	return nil
}

// Analyze collects statistics on every shard — each shard's optimizer
// sees its own local histograms, so access paths can differ per shard.
func (s *ShardedDB) Analyze(table string, columns ...string) error {
	if s.remote {
		return errRemoteMutation("Analyze")
	}
	for _, db := range s.shards {
		if err := db.Analyze(table, columns...); err != nil {
			return err
		}
	}
	return nil
}

// Insert routes one row to its owning shard.
func (s *ShardedDB) Insert(table string, vals ...int64) error {
	if s.remote {
		return errRemoteMutation("Insert")
	}
	s.mu.RLock()
	p, ok := s.parts[table]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotSharded, table)
	}
	t, err := s.shards[0].table(table)
	if err != nil {
		return err
	}
	col := t.file.Schema().ColIndex(p.Column)
	if col < 0 || col >= len(vals) {
		return fmt.Errorf("smoothscan: %d values for table %q", len(vals), table)
	}
	return s.shards[p.Route(vals[col])].Insert(table, vals...)
}

// Compact compacts every shard's indexes on the table.
func (s *ShardedDB) Compact(table string) error {
	if s.remote {
		return errRemoteMutation("Compact")
	}
	for _, db := range s.shards {
		if err := db.Compact(table); err != nil {
			return err
		}
	}
	return nil
}

// NumRows sums the table's row count across shards. On a remote
// topology the counts are the nodes' catalog snapshots from open time.
func (s *ShardedDB) NumRows(table string) (int64, error) {
	counts, err := s.ShardRows(table)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// ShardRows returns the per-shard row counts of a table, in shard
// order — the load balance ssload reports. On a remote topology the
// counts come from each node's catalog snapshot (the planning mirrors
// hold no rows).
func (s *ShardedDB) ShardRows(table string) ([]int64, error) {
	out := make([]int64, len(s.shards))
	for i, db := range s.shards {
		if rd, ok := s.drivers[i].(*remoteDriver); ok {
			n, known := rd.rows[table]
			if !known {
				return nil, fmt.Errorf("smoothscan: unknown table %q", table)
			}
			out[i] = n
			continue
		}
		n, err := db.NumRows(table)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// Stats sums the device counters across shards.
func (s *ShardedDB) Stats() IOStats {
	var total IOStats
	for _, db := range s.shards {
		total = addIO(total, db.Stats())
	}
	return total
}

// ShardIOStats returns each shard's device counters, in shard order.
func (s *ShardedDB) ShardIOStats() []IOStats {
	out := make([]IOStats, len(s.shards))
	for i, db := range s.shards {
		out[i] = db.Stats()
	}
	return out
}

// ResetStats zeroes every shard's device counters (refused while any
// shard has open scans, like DB.ResetStats).
func (s *ShardedDB) ResetStats() error {
	for _, db := range s.shards {
		if err := db.ResetStats(); err != nil {
			return err
		}
	}
	return nil
}

// ColdCache empties every shard's buffer pool and purges the
// coordinator's result-cache tier (each shard purges its own tier
// inside DB.ColdCache). On a remote topology the request is forwarded
// to each node (the server must run with fault administration enabled,
// as for ssclient's ColdCache).
func (s *ShardedDB) ColdCache() error {
	s.resCache.Purge()
	for i, db := range s.shards {
		if rd, ok := s.drivers[i].(*remoteDriver); ok {
			if err := rd.coldCache(); err != nil {
				return err
			}
			continue
		}
		if err := db.ColdCache(); err != nil {
			return err
		}
	}
	return nil
}

// addIO sums two device-counter snapshots field-wise (shards have
// independent devices, so query deltas across them add).
func addIO(a, b IOStats) IOStats {
	a.Requests += b.Requests
	a.RandomAccesses += b.RandomAccesses
	a.SeqAccesses += b.SeqAccesses
	a.SkippedPages += b.SkippedPages
	a.PagesRead += b.PagesRead
	a.PagesWritten += b.PagesWritten
	a.BytesRead += b.BytesRead
	a.IOTime += b.IOTime
	a.CPUTime += b.CPUTime
	a.Faults += b.Faults
	a.Corruptions += b.Corruptions
	a.LatencySpikes += b.LatencySpikes
	a.Retries += b.Retries
	return a
}

// ShardedQuery is the Query builder over a ShardedDB: the same
// Where/Join/Select/GroupBy/OrderBy/Limit surface, compiled into a
// scatter-gather plan. Builder methods record the first error, like
// Query.
type ShardedQuery struct {
	s        *ShardedDB
	table    string
	conds    []cond
	joins    []joinClause
	sel      []string
	hasSel   bool
	group    string
	aggs     []Agg
	hasAgg   bool
	order    string
	hasOrd   bool
	limitArg Arg
	hasLim   bool
	opts     ScanOptions
	err      error
}

// Query starts a composable query over the named sharded table.
func (s *ShardedDB) Query(table string) *ShardedQuery {
	return &ShardedQuery{s: s, table: table}
}

func (sq *ShardedQuery) fail(err error) *ShardedQuery {
	if sq.err == nil {
		sq.err = err
	}
	return sq
}

// Where adds a conjunctive predicate on a column; predicates on the
// partition column additionally prune shards.
func (sq *ShardedQuery) Where(col string, p Pred) *ShardedQuery {
	if p.err != nil {
		return sq.fail(fmt.Errorf("Where(%q): %w", col, p.err))
	}
	sq.conds = append(sq.conds, cond{col: col, p: p})
	return sq
}

// Join adds an inner equi-join with another sharded table. When the
// two tables are co-partitioned on the join keys the join runs
// partition-wise (shard i joins shard i); otherwise the smaller
// estimated side is broadcast to every shard of the other.
func (sq *ShardedQuery) Join(table, leftCol, rightCol string) *ShardedQuery {
	sq.joins = append(sq.joins, joinClause{table: table, leftCol: leftCol, rightCol: rightCol})
	return sq
}

// JoinWithOptions is Join with explicit ScanOptions for the joined
// table's per-shard access path.
func (sq *ShardedQuery) JoinWithOptions(table, leftCol, rightCol string, opts ScanOptions) *ShardedQuery {
	sq.joins = append(sq.joins, joinClause{table: table, leftCol: leftCol, rightCol: rightCol, opts: opts})
	return sq
}

// Select projects the output onto the named columns.
func (sq *ShardedQuery) Select(cols ...string) *ShardedQuery {
	if sq.hasSel {
		return sq.fail(fmt.Errorf("smoothscan: Select set twice"))
	}
	if len(cols) == 0 {
		return sq.fail(fmt.Errorf("smoothscan: Select requires at least one column"))
	}
	sq.sel = append([]string(nil), cols...)
	sq.hasSel = true
	return sq
}

// GroupBy groups rows by a column and computes the aggregates per
// group: each shard aggregates its local rows, the coordinator merges
// the partials (COUNT partials sum; SUM/MIN/MAX merge with their own
// function), so raw rows never cross the gather for an aggregate
// query.
func (sq *ShardedQuery) GroupBy(col string, aggs ...Agg) *ShardedQuery {
	if sq.hasAgg {
		return sq.fail(fmt.Errorf("smoothscan: GroupBy set twice"))
	}
	if len(aggs) == 0 {
		return sq.fail(fmt.Errorf("smoothscan: GroupBy requires at least one aggregate"))
	}
	sq.group = col
	sq.aggs = append([]Agg(nil), aggs...)
	sq.hasAgg = true
	return sq
}

// OrderBy orders the output by the named column, ascending. Without
// aggregation, each shard delivers its slice ordered and the gather
// runs a k-way ordered merge; with aggregation the coordinator orders
// the merged groups.
func (sq *ShardedQuery) OrderBy(col string) *ShardedQuery {
	if sq.hasOrd {
		return sq.fail(fmt.Errorf("smoothscan: OrderBy set twice"))
	}
	sq.order = col
	sq.hasOrd = true
	return sq
}

// Limit caps the number of output rows. Without aggregation it also
// pushes into every shard (no shard delivers more than n rows).
func (sq *ShardedQuery) Limit(n any) *ShardedQuery {
	a := asArg(n)
	if a.err != nil {
		return sq.fail(fmt.Errorf("Limit: %w", a.err))
	}
	if a.param == "" && a.lit < 0 {
		return sq.fail(fmt.Errorf("smoothscan: negative limit %d", a.lit))
	}
	sq.limitArg = a
	sq.hasLim = true
	return sq
}

// WithOptions applies ScanOptions to every shard's driving-table
// access (each shard still plans — and morphs — independently).
func (sq *ShardedQuery) WithOptions(opts ScanOptions) *ShardedQuery {
	sq.opts = opts
	return sq
}

// snapshot deep-copies the builder state (a prepared ShardedStmt must
// not alias slices the caller keeps appending to).
func (sq *ShardedQuery) snapshot() *ShardedQuery {
	cp := *sq
	cp.conds = append([]cond(nil), sq.conds...)
	cp.joins = append([]joinClause(nil), sq.joins...)
	cp.sel = append([]string(nil), sq.sel...)
	cp.aggs = append([]Agg(nil), sq.aggs...)
	return &cp
}

// fullQuery rebuilds the whole query against one shard DB — the
// validation and template source (shard 0), and the per-shard plan of
// the scan and partition-wise strategies before pushdown pruning.
func (sq *ShardedQuery) fullQuery(db *DB) *Query {
	return &Query{
		db:       db,
		table:    sq.table,
		conds:    sq.conds,
		joins:    sq.joins,
		sel:      sq.sel,
		hasSel:   sq.hasSel,
		group:    sq.group,
		aggs:     sq.aggs,
		hasAgg:   sq.hasAgg,
		order:    sq.order,
		hasOrd:   sq.hasOrd,
		limitArg: sq.limitArg,
		hasLim:   sq.hasLim,
		opts:     sq.opts,
		err:      sq.err,
	}
}

// perShardQuery is the query each shard runs under the scan and
// partition-wise strategies. Aggregate queries drop OrderBy and Limit
// — shards emit partial groups, and ordering/limiting only make sense
// after the coordinator merges them; everything else (including
// OrderBy and a pushed Limit) runs as-is per shard.
func (sq *ShardedQuery) perShardQuery(db *DB) *Query {
	q := sq.fullQuery(db)
	if sq.hasAgg {
		q.order = ""
		q.hasOrd = false
		q.limitArg = Arg{}
		q.hasLim = false
	}
	return q
}

// splitConds routes the Where conjuncts to the one input whose schema
// has the column, mirroring buildTemplate's routing (ambiguity was
// already rejected there).
func (sq *ShardedQuery) splitConds(pt *plan.Template) [][]cond {
	out := make([][]cond, len(pt.Inputs))
	for _, c := range sq.conds {
		for i := range pt.Inputs {
			if pt.Inputs[i].Schema.ColIndex(c.col) >= 0 {
				out[i] = append(out[i], c)
				break
			}
		}
	}
	return out
}

// sideQuery builds the single-table query for one side of a broadcast
// join: that table, its routed conjuncts, its ScanOptions — no
// projection, ordering or limit (those happen above the join).
func (sq *ShardedQuery) sideQuery(db *DB, input int, pt *plan.Template) *Query {
	opts := sq.opts
	if input > 0 {
		opts = sq.joins[input-1].opts
	}
	return &Query{
		db:    db,
		table: pt.Inputs[input].Table,
		conds: sq.splitConds(pt)[input],
		opts:  opts,
		err:   sq.err,
	}
}

// resolveArg resolves a predicate argument against a bind set; false
// when it names an unbound parameter.
func resolveArg(a Arg, b Bind) (int64, bool) {
	if a.param != "" {
		v, ok := b[a.param]
		return v, ok
	}
	return a.lit, true
}

// foldCondsRange folds the conjuncts on one column into a single
// half-open range, for shard pruning. Conjuncts with unresolvable
// parameters are skipped — pruning just gets more conservative.
func foldCondsRange(conds []cond, col string, b Bind) tuple.RangePred {
	pr := tuple.RangePred{Lo: math.MinInt64, Hi: math.MaxInt64}
	for _, c := range conds {
		if c.col != col {
			continue
		}
		kind, aArg, bArg := canonPred(c.p)
		av, ok := resolveArg(aArg, b)
		if !ok {
			continue
		}
		var bv int64
		if kind == plan.KindBetween {
			if bv, ok = resolveArg(bArg, b); !ok {
				continue
			}
		}
		lo, hi := plan.FoldRange(kind, av, bv)
		pr = pr.Intersect(tuple.RangePred{Lo: lo, Hi: hi})
	}
	return pr
}

// mergeSpecs derives the coordinator's merge aggregates from the
// per-shard partials: partial COUNTs sum, SUM/MIN/MAX merge with
// their own function. Input column i+1 is aggregate i of the partial
// row (column 0 is the group key).
func mergeSpecs(specs []exec.AggSpec) []exec.AggSpec {
	out := make([]exec.AggSpec, len(specs))
	for i, sp := range specs {
		kind := sp.Kind
		if kind == exec.AggCount {
			kind = exec.AggSum
		}
		out[i] = exec.AggSpec{Name: sp.Name, Col: i + 1, Kind: kind}
	}
	return out
}

// Scatter-gather strategies.
const (
	strategyScan      = "scan"           // no joins: every shard scans its slice
	strategyPartition = "partition-wise" // co-partitioned joins: shard i joins shard i
	strategyBroadcast = "broadcast"      // one join, smaller side replicated to every shard
)

// shardExec is a compiled scatter-gather execution: which shards run,
// why the others don't, what each worker produces, and the coordinator
// stages above the gather.
type shardExec struct {
	pt       *plan.Template
	cq0      *compiledQuery // shard-0 binding: limit, emptyWhy, annotations
	part     shard.Partitioning
	strategy string

	active    []int    // shard indexes that run, ascending
	prunedWhy []string // per shard; "" for active shards

	// Broadcast-join configuration (strategyBroadcast only).
	bcInput    int // the replicated side (0 or 1)
	scanInput  int
	bcPart     shard.Partitioning
	bcActive   []int // broadcast-side shards to read
	scanSchema *tuple.Schema
	bcSchema   *tuple.Schema

	gatherSchema *tuple.Schema
	ordered      bool
	keyCol       int

	// Coordinator stages, in order: project, aggregate, sort, limit.
	selIdx      []int
	aggGroupIdx int
	aggName     string
	aggSpecs    []exec.AggSpec
	aggMerge    bool // merging per-shard partials vs aggregating raw rows
	sortIdx     int
	limit       int64
	hasLim      bool

	out      *tuple.Schema
	emptyWhy string
}

// strategyFor decides the scatter strategy structurally: scan for
// single-table queries; partition-wise when every join stage's keys
// are the partition columns of co-partitioned tables (any join is
// trivially partition-wise at N=1); broadcast for exactly one
// non-co-partitioned join; ErrShardJoin otherwise. Every table must
// be sharded.
func (s *ShardedDB) strategyFor(pt *plan.Template, part shard.Partitioning) (strategy string, parts []shard.Partitioning, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	parts = make([]shard.Partitioning, len(pt.Inputs))
	parts[0] = part
	for i := 1; i < len(pt.Inputs); i++ {
		p, ok := s.parts[pt.Inputs[i].Table]
		if !ok {
			return "", nil, fmt.Errorf("%w: %q", ErrNotSharded, pt.Inputs[i].Table)
		}
		parts[i] = p
	}
	if len(pt.Joins) == 0 {
		return strategyScan, parts, nil
	}
	aligned := map[string]bool{part.Column: true}
	allPW := true
	leftWidth := pt.Inputs[0].Schema.NumCols()
	for k := range pt.Joins {
		jt := &pt.Joins[k]
		rp := parts[k+1]
		rightSchema := pt.Inputs[k+1].Schema
		pw := part.CoPartitioned(rp) &&
			(part.N == 1 || (aligned[jt.LeftName] && jt.RightName == rp.Column))
		if !pw {
			allPW = false
		}
		// The right partition column survives into the joined schema
		// (possibly "r."-prefixed); track it as an aligned key.
		if pw {
			rc := rightSchema.ColIndex(rp.Column)
			if rc >= 0 {
				aligned[jt.Joined.Col(leftWidth+rc).Name] = true
			}
		}
		leftWidth = jt.Joined.NumCols()
	}
	if allPW {
		return strategyPartition, parts, nil
	}
	if len(pt.Joins) == 1 {
		return strategyBroadcast, parts, nil
	}
	return "", nil, fmt.Errorf("%w: %d join stages with non-co-partitioned inputs (broadcast handles one)", ErrShardJoin, len(pt.Joins))
}

// sideEstimate sums one input's post-predicate cardinality estimate
// across shards — the broadcast strategy replicates the smaller side.
func (s *ShardedDB) sideEstimate(qt *qtemplate, input int, lits []int64, b Bind) (int64, error) {
	at := &qt.pt.Inputs[input]
	var total int64
	for _, db := range s.shards {
		db.mu.RLock()
		t, err := db.tableLocked(at.Table)
		if err != nil {
			db.mu.RUnlock()
			return 0, err
		}
		merged := make([]resolvedPred, len(at.Merged))
		for g, group := range at.Merged {
			if merged[g], err = foldGroup(at, group, lits, b); err != nil {
				db.mu.RUnlock()
				return 0, err
			}
		}
		a, err := bindAccess(db, at.Table, t, merged, qt.optsPer[input], "", false)
		db.mu.RUnlock()
		if err != nil {
			return 0, err
		}
		total += a.estScan
	}
	return total, nil
}

// compileShardExec binds a sharded execution: shard-0 template
// binding (constants, limit, contradiction short-circuits), strategy,
// partition pruning from the folded Where conjuncts, and the gather /
// coordinator configuration.
func (s *ShardedDB) compileShardExec(sq *ShardedQuery, qt *qtemplate, lits []int64, b Bind, annotate bool) (*shardExec, error) {
	pt := qt.pt
	s.mu.RLock()
	part, ok := s.parts[sq.table]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotSharded, sq.table)
	}

	shard0 := s.shards[0]
	shard0.mu.RLock()
	cq0, err := shard0.bindTemplate(qt, lits, b, annotate)
	shard0.mu.RUnlock()
	if err != nil {
		return nil, err
	}

	strategy, parts, err := s.strategyFor(pt, part)
	if err != nil {
		return nil, err
	}

	se := &shardExec{
		pt:          pt,
		cq0:         cq0,
		part:        part,
		strategy:    strategy,
		prunedWhy:   make([]string, len(s.shards)),
		keyCol:      -1,
		aggGroupIdx: -1,
		sortIdx:     -1,
		limit:       cq0.limit,
		hasLim:      cq0.hasLim,
		out:         pt.Out,
		emptyWhy:    cq0.emptyWhy,
	}

	condsPer := sq.splitConds(pt)

	// Broadcast side selection: replicate the smaller estimated input.
	if strategy == strategyBroadcast {
		est0, err := s.sideEstimate(qt, 0, lits, b)
		if err != nil {
			return nil, err
		}
		est1, err := s.sideEstimate(qt, 1, lits, b)
		if err != nil {
			return nil, err
		}
		se.bcInput, se.scanInput = 1, 0
		if est0 < est1 {
			se.bcInput, se.scanInput = 0, 1
		}
		se.bcPart = parts[se.bcInput]
		se.scanSchema = pt.Inputs[se.scanInput].Schema
		se.bcSchema = pt.Inputs[se.bcInput].Schema
	}

	// Partition pruning: fold each input's conjuncts on its partition
	// column and keep only the shards that can hold matching rows.
	prune := func(p shard.Partitioning, conds []cond) {
		pr := foldCondsRange(conds, p.Column, b)
		if pr.Lo == math.MinInt64 && pr.Hi == math.MaxInt64 {
			return
		}
		keep := make(map[int]bool, p.N)
		for _, i := range p.Prune(pr.Lo, pr.Hi) {
			keep[i] = true
		}
		next := se.active[:0]
		for _, i := range se.active {
			if keep[i] {
				next = append(next, i)
			} else if se.prunedWhy[i] == "" {
				se.prunedWhy[i] = fmt.Sprintf("%s excludes %s", fmtPred(p.Column, pr), p.DescribeShard(i))
			}
		}
		se.active = next
	}

	if se.emptyWhy == "" {
		se.active = make([]int, len(s.shards))
		for i := range se.active {
			se.active[i] = i
		}
		switch strategy {
		case strategyScan:
			prune(part, condsPer[0])
		case strategyPartition:
			// Co-partitioned: a shard excluded by any input's partition
			// predicate produces no join output there.
			for i := range pt.Inputs {
				prune(parts[i], condsPer[i])
			}
		case strategyBroadcast:
			prune(parts[se.scanInput], condsPer[se.scanInput])
			bcPr := foldCondsRange(condsPer[se.bcInput], se.bcPart.Column, b)
			se.bcActive = se.bcPart.Prune(bcPr.Lo, bcPr.Hi)
			if len(se.bcActive) == 0 {
				se.emptyWhy = fmt.Sprintf("broadcast side %q fully pruned", pt.Inputs[se.bcInput].Table)
			}
		}
		if len(se.active) == 0 && se.emptyWhy == "" {
			se.emptyWhy = fmt.Sprintf("every shard pruned by %s predicates", part.Column)
		}
	}
	if se.emptyWhy != "" {
		se.active = nil
		for i := range se.prunedWhy {
			if se.prunedWhy[i] == "" {
				se.prunedWhy[i] = se.emptyWhy
			}
		}
		return se, nil
	}

	// Gather and coordinator configuration.
	hasAgg := pt.GroupIdx >= 0
	switch strategy {
	case strategyScan, strategyPartition:
		if hasAgg {
			// Shards emit partial groups (pt.AggSchema); the coordinator
			// merges them, then orders/limits.
			se.gatherSchema = pt.AggSchema
			se.aggGroupIdx = 0
			se.aggName = pt.AggSchema.Col(0).Name
			se.aggSpecs = mergeSpecs(pt.AggSpecs)
			se.aggMerge = true
			if pt.OrderIdx >= 0 && pt.OrderName != se.aggName {
				se.sortIdx = pt.OrderIdx
			}
		} else {
			// Shards emit final rows (projected, ordered, limited); the
			// coordinator merges and re-limits.
			se.gatherSchema = pt.Out
			if pt.OrderIdx >= 0 {
				se.ordered = true
				se.keyCol = pt.OrderIdx
			}
		}
	case strategyBroadcast:
		// Shards emit raw join output; projection, aggregation and
		// ordering all happen at the coordinator (a join output's
		// per-shard ordering is not usable for a merge).
		se.gatherSchema = pt.Joins[0].Joined
		se.selIdx = pt.SelIdx
		if hasAgg {
			se.aggGroupIdx = pt.GroupIdx
			se.aggName = pt.AggSchema.Col(0).Name
			se.aggSpecs = pt.AggSpecs
			if pt.OrderIdx >= 0 && pt.OrderName != se.aggName {
				se.sortIdx = pt.OrderIdx
			}
		} else if pt.OrderIdx >= 0 {
			se.sortIdx = pt.OrderIdx
		}
	}
	return se, nil
}

// shardRowsOp adapts one shard's cursor to the batched operator
// protocol, so the parallel gather can drive it as a worker. start is
// deferred to Open — pruned or never-opened shards never construct a
// cursor, hence never touch their device (or network). The op records
// whether its shard failed as unavailable, for ExecStats.Shards.
type shardRowsOp struct {
	schema      *tuple.Schema
	start       func() (shardCursor, error)
	cur         shardCursor
	unavailable bool
}

func (o *shardRowsOp) Schema() *tuple.Schema { return o.schema }

func (o *shardRowsOp) Open() error {
	cur, err := o.start()
	if err != nil {
		return o.noteErr(err)
	}
	o.cur = cur
	return nil
}

func (o *shardRowsOp) NextBatch(b *tuple.Batch) (int, error) {
	n, err := o.cur.fill(b)
	return n, o.noteErr(err)
}

func (o *shardRowsOp) Next() (tuple.Row, bool, error) {
	row, ok, err := o.cur.next()
	return row, ok, o.noteErr(err)
}

// noteErr flags a shard-unavailable failure on its way out. The flag
// is written by the worker goroutine driving this op and read only
// after the gather has quiesced, the same discipline as the cursor's
// stats.
func (o *shardRowsOp) noteErr(err error) error {
	if err != nil && errors.Is(err, ErrShardUnavailable) {
		o.unavailable = true
	}
	return err
}

func (o *shardRowsOp) Close() error {
	if o.cur == nil {
		return nil
	}
	return o.cur.close()
}

// runnerset supplies the per-shard executions of one run: ad-hoc
// queries or prepared statements, per shard (and per broadcast side).
type runnerset struct {
	planCached bool
	shard      func(ctx context.Context, si int) (shardCursor, error)
	side       func(ctx context.Context, input, si int) (shardCursor, error)
}

// startSharded builds and opens the gather tree: one worker per
// active shard feeding the parallel exchange, coordinator stages above
// it. The broadcast side, when present, is drained first and
// replicated into every worker's join.
func (s *ShardedDB) startSharded(ctx context.Context, se *shardExec, run runnerset) (*ShardedRows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sr := &ShardedRows{
		s:          s,
		se:         se,
		schema:     se.out,
		ctx:        ctx,
		planCached: run.planCached,
	}
	sr.ioStart = make([]IOStats, len(s.shards))
	for i, db := range s.shards {
		sr.ioStart[i] = db.dev.Stats()
	}
	count := func(name string, op exec.Operator) exec.Operator {
		c := &opCounter{name: name}
		sr.counters = append(sr.counters, c)
		return &countedOp{inner: op, c: c}
	}

	var cur exec.Operator
	if se.emptyWhy != "" {
		cur = count("empty", exec.NewValues(se.out, nil))
	} else {
		// Broadcast side: drain the replicated input's active shards
		// into memory once, before the workers start.
		var bcRows []tuple.Row
		if se.strategy == strategyBroadcast {
			for _, si := range se.bcActive {
				cur, err := run.side(ctx, se.bcInput, si)
				if err != nil {
					return nil, err
				}
				for {
					row, ok, rerr := cur.next()
					if rerr != nil || !ok {
						err = rerr
						break
					}
					bcRows = append(bcRows, row.Clone())
				}
				if cerr := cur.close(); err == nil {
					err = cerr
				}
				if err != nil {
					return nil, err
				}
			}
		}

		workers := make([]parallel.Worker, 0, len(se.active))
		for _, si := range se.active {
			si := si
			var op exec.BatchOperator
			if se.strategy == strategyBroadcast {
				scanOp := &shardRowsOp{
					schema: se.scanSchema,
					start:  func() (shardCursor, error) { return run.side(ctx, se.scanInput, si) },
				}
				sr.adapters = append(sr.adapters, scanOp)
				vals := exec.NewValues(se.bcSchema, bcRows)
				spec := plan.JoinSpec{
					LeftCol:  se.pt.Joins[0].LeftCol,
					RightCol: se.pt.Joins[0].RightCol,
					Algo:     plan.JoinHash,
					Dev:      s.shards[si].dev,
				}
				if se.bcInput == 0 {
					spec.Left, spec.Right, spec.BuildLeft = vals, exec.Operator(scanOp), true
				} else {
					spec.Left, spec.Right = scanOp, vals
				}
				j, err := plan.BuildJoin(spec)
				if err != nil {
					return nil, err
				}
				op = j
			} else {
				a := &shardRowsOp{
					schema: se.gatherSchema,
					start:  func() (shardCursor, error) { return run.shard(ctx, si) },
				}
				sr.adapters = append(sr.adapters, a)
				op = a
			}
			workers = append(workers, parallel.Worker{Op: op})
		}
		g, err := parallel.NewScan(workers, parallel.Options{
			Schema:  se.gatherSchema,
			Ordered: se.ordered,
			KeyCol:  se.keyCol,
			Ctx:     ctx,
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("gather[%d]", len(workers))
		if se.ordered {
			name = fmt.Sprintf("gather-merge[%d]", len(workers))
		}
		cur = count(name, g)
		cur = &ctxGuard{inner: cur, ctx: ctx}
		if se.selIdx != nil {
			p, err := exec.NewColProject(cur, se.selIdx)
			if err != nil {
				return nil, err
			}
			cur = count("project", p)
		}
		if se.aggGroupIdx >= 0 {
			name := "hash-agg"
			if se.aggMerge {
				name = "merge-agg"
			}
			// Coordinator stages run on no device: the per-shard work is
			// already charged to the shard devices, and merging partials
			// is host-side bookkeeping.
			cur = count(name, exec.NewHashAggNamed(cur, nil, se.aggGroupIdx, se.aggName, se.aggSpecs))
		}
		if se.sortIdx >= 0 {
			cur = count("sort", exec.NewSort(cur, nil, se.sortIdx))
		}
		if se.hasLim {
			cur = count("limit", exec.NewLimit(cur, se.limit))
		}
	}

	sr.op = cur
	if err := cur.Open(); err != nil {
		// Blocking coordinator stages already closed the gather beneath
		// them on failure; this sweeps up pass-through stages. Close is
		// idempotent everywhere in the tree.
		_ = cur.Close()
		return nil, err
	}
	return sr, nil
}

// Run compiles and starts the sharded query: scatter to the unpruned
// shards, gather through the exchange. As with Query.Run, always
// Close the returned rows; ctx cancellation propagates to every
// shard's scan.
func (sq *ShardedQuery) Run(ctx context.Context) (*ShardedRows, error) {
	if sq.s == nil {
		return nil, fmt.Errorf("smoothscan: query has no database")
	}
	s := sq.s
	shard0 := s.shards[0]
	shard0.mu.RLock()
	qt, lits, hit, err := shard0.templateFor(sq.fullQuery(shard0))
	shard0.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	se, err := s.compileShardExec(sq, qt, lits, nil, false)
	if err != nil {
		return nil, err
	}
	planFn := func() (*ShardedPlan, error) {
		return s.shardedPlan(se, func(si int) (*Plan, error) {
			if se.strategy == strategyBroadcast {
				return sq.sideQuery(s.shards[si], se.scanInput, qt.pt).Explain()
			}
			return sq.perShardQuery(s.shards[si]).Explain()
		})
	}
	// Coordinator result-cache tier: a hit serves the materialized
	// result with every shard untouched; a miss captures the epochs
	// now — before any shard worker starts — so a write interleaving
	// with the gather fails the store-time re-check.
	cache := s.cacheableSharded(se)
	if cache {
		if v, ok := s.resCache.Lookup(se.cq0.resKey, s.epochOf); ok {
			sr := s.serveShardedCached(ctx, se, v, hit)
			sr.planFn = planFn
			return sr, nil
		}
	}
	var eps map[string]uint64
	if cache {
		eps = s.epochsFor(se.cq0)
	}
	run := runnerset{
		planCached: hit,
		shard: func(ctx context.Context, si int) (shardCursor, error) {
			return s.drivers[si].run(ctx, sq.perShardQuery(s.shards[si]))
		},
		side: func(ctx context.Context, input, si int) (shardCursor, error) {
			return s.drivers[si].run(ctx, sq.sideQuery(s.shards[si], input, qt.pt))
		},
	}
	sr, err := s.startSharded(ctx, se, run)
	if err != nil {
		return nil, err
	}
	if cache {
		sr.acc = newResAccum(se.cq0.resKey, eps, s.resCache.EntryCap(), se.out.NumCols())
	}
	sr.planFn = planFn
	return sr, nil
}

// Explain compiles the sharded query without executing it: the
// strategy, the pruning decisions, the gather mode, the coordinator
// stages, and each active shard's own compiled plan.
func (sq *ShardedQuery) Explain() (*ShardedPlan, error) {
	if sq.s == nil {
		return nil, fmt.Errorf("smoothscan: query has no database")
	}
	s := sq.s
	shard0 := s.shards[0]
	shard0.mu.RLock()
	qt, lits, _, err := shard0.templateFor(sq.fullQuery(shard0))
	shard0.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	se, err := s.compileShardExec(sq, qt, lits, nil, false)
	if err != nil {
		return nil, err
	}
	return s.shardedPlan(se, func(si int) (*Plan, error) {
		if se.strategy == strategyBroadcast {
			return sq.sideQuery(s.shards[si], se.scanInput, qt.pt).Explain()
		}
		return sq.perShardQuery(s.shards[si]).Explain()
	})
}

// ShardedRows iterates a sharded query result, mirroring Rows: a
// batched drain of the coordinator tree, one owning goroutine, always
// Close it. Per-shard fault degradation happens inside each shard's
// own Rows (one shard's fault degrades that shard, not the query).
type ShardedRows struct {
	s          *ShardedDB
	se         *shardExec
	op         exec.Operator
	schema     *tuple.Schema
	ctx        context.Context
	batch      *tuple.Batch
	pos        int
	cur        tuple.Row
	err        error
	adapters   []*shardRowsOp
	counters   []*opCounter
	ioStart    []IOStats
	ioDelta    []IOStats
	planCached bool
	planFn     func() (*ShardedPlan, error)
	plan       *ShardedPlan
	done       bool
	closed     bool
	closeErr   error

	// Coordinator result-cache tier state: acc tees delivered batches
	// toward a store-on-Close; the cache* fields describe a served hit
	// (see sharded_rescache.go).
	acc        *resAccum
	cacheHit   bool
	cacheBytes int64
	cacheAge   time.Duration
}

// Next advances to the next row; false at end-of-stream or on error
// (check Err).
func (r *ShardedRows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	if r.batch == nil {
		r.batch = tuple.NewBatchFor(r.schema, exec.DefaultBatchSize)
	}
	for r.pos >= r.batch.Len() {
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				r.err = err
				r.done = true
				return false
			}
		}
		n, err := exec.NextBatch(r.op, r.batch)
		if err != nil {
			r.err = err
			r.done = true
			return false
		}
		if n == 0 {
			r.done = true
			return false
		}
		if r.acc != nil {
			r.acc.addBatch(r.batch, n)
		}
		r.pos = 0
	}
	r.cur = r.batch.Row(r.pos)
	r.pos++
	return true
}

// Row returns the current row's values.
func (r *ShardedRows) Row() []int64 {
	out := make([]int64, len(r.cur))
	for i := range r.cur {
		out[i] = r.cur.Int(i)
	}
	return out
}

// CopyRow copies the current row into dst without allocating.
func (r *ShardedRows) CopyRow(dst []int64) int {
	n := len(r.cur)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.cur.Int(i)
	}
	return n
}

// Columns returns the result column names in output order.
func (r *ShardedRows) Columns() []string {
	out := make([]string, r.schema.NumCols())
	for i := range out {
		out[i] = r.schema.Col(i).Name
	}
	return out
}

// Col returns the current row's value for the named column.
func (r *ShardedRows) Col(name string) (int64, bool) {
	i := r.schema.ColIndex(name)
	if i < 0 {
		return 0, false
	}
	return r.cur.Int(i), true
}

// Column is Col with distinguished miss reasons (ErrUnknownColumn vs
// ErrNotSelected), like Rows.Column.
func (r *ShardedRows) Column(name string) (int64, error) {
	if i := r.schema.ColIndex(name); i >= 0 {
		return r.cur.Int(i), nil
	}
	if r.se != nil && r.se.pt.Base.ColIndex(name) >= 0 {
		return 0, fmt.Errorf("%w: %q (use Select/GroupBy to include it)", ErrNotSelected, name)
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownColumn, name)
}

// Err returns the first error encountered.
func (r *ShardedRows) Err() error { return r.err }

// Close releases the gather (stopping the shard workers) and freezes
// the per-shard I/O deltas. Idempotent, like Rows.Close.
func (r *ShardedRows) Close() error {
	if r.closed {
		return r.closeErr
	}
	r.closed = true
	r.closeErr = r.op.Close()
	// Workers close their shard Rows before their stream shuts down;
	// this sweep only matters when the gather never opened.
	for _, a := range r.adapters {
		if err := a.Close(); err != nil && r.closeErr == nil {
			r.closeErr = err
		}
	}
	if r.err == nil && r.closeErr != nil {
		r.err = r.closeErr
	}
	r.ioDelta = make([]IOStats, len(r.s.shards))
	for i, db := range r.s.shards {
		r.ioDelta[i] = db.dev.Stats().Sub(r.ioStart[i])
	}
	if r.acc != nil && r.storeEligible() {
		r.s.storeShardedResult(r.acc)
	}
	return r.closeErr
}

// Plan returns the compiled scatter-gather plan, rendered lazily on
// first call.
func (r *ShardedRows) Plan() (*ShardedPlan, error) {
	if r.plan == nil && r.planFn != nil {
		p, err := r.planFn()
		if err != nil {
			return nil, err
		}
		r.plan = p
	}
	return r.plan, nil
}

// ShardedStmt is a prepared sharded statement: the structural template
// compiles once (per shard, against each shard's own plan cache); each
// Run re-binds and re-prunes from the bound parameter values, so the
// same statement can touch one shard for a narrow bind and all of them
// for a wide one.
type ShardedStmt struct {
	s         *ShardedDB
	sq        *ShardedQuery
	qt        *qtemplate
	lits      []int64
	params    []string
	strategy  string
	pstmts    []shardStmt
	sideStmts [2][]shardStmt
}

// Prepare validates and compiles the sharded query's structure into
// per-shard prepared statements plus the scatter template.
func (s *ShardedDB) Prepare(sq *ShardedQuery) (*ShardedStmt, error) {
	if sq == nil || sq.s == nil {
		return nil, fmt.Errorf("smoothscan: Prepare of a nil or detached query")
	}
	if sq.s != s {
		return nil, fmt.Errorf("smoothscan: Prepare of a query built on a different database")
	}
	snap := sq.snapshot()
	shard0 := s.shards[0]
	shard0.mu.RLock()
	qt, lits, _, err := shard0.templateFor(snap.fullQuery(shard0))
	shard0.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	part, ok := s.parts[snap.table]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotSharded, snap.table)
	}
	strategy, _, err := s.strategyFor(qt.pt, part)
	if err != nil {
		return nil, err
	}
	st := &ShardedStmt{s: s, sq: snap, qt: qt, lits: lits, params: qt.pt.Params, strategy: strategy}
	if strategy == strategyBroadcast {
		for input := 0; input < 2; input++ {
			for si, db := range s.shards {
				ps, err := s.drivers[si].prepare(snap.sideQuery(db, input, qt.pt))
				if err != nil {
					return nil, err
				}
				st.sideStmts[input] = append(st.sideStmts[input], ps)
			}
		}
	} else {
		for si, db := range s.shards {
			ps, err := s.drivers[si].prepare(snap.perShardQuery(db))
			if err != nil {
				return nil, err
			}
			st.pstmts = append(st.pstmts, ps)
		}
	}
	return st, nil
}

// Params returns the statement's parameter names in first-use order.
func (st *ShardedStmt) Params() []string {
	return append([]string(nil), st.params...)
}

// checkBind rejects bind sets naming parameters the statement does
// not have, mirroring Stmt.checkBind.
func (st *ShardedStmt) checkBind(b Bind) error {
	proxy := &Stmt{qt: st.qt, params: st.params}
	return proxy.checkBind(b)
}

// filterBind keeps only the bindings a per-shard statement's own
// parameters use — pushdown drops Limit/OrderBy for aggregates, so a
// sub-statement may have fewer parameters than the full query.
func filterBind(ps *Stmt, b Bind) Bind {
	if len(b) == 0 {
		return nil
	}
	out := make(Bind, len(ps.params))
	for _, p := range ps.params {
		if v, ok := b[p]; ok {
			out[p] = v
		}
	}
	return out
}

// Run binds the parameters, re-prunes the shard set from the bound
// predicate values, and executes. Safe for concurrent use; always
// Close the returned rows.
func (st *ShardedStmt) Run(ctx context.Context, b Bind) (*ShardedRows, error) {
	if err := st.checkBind(b); err != nil {
		return nil, err
	}
	se, err := st.s.compileShardExec(st.sq, st.qt, st.lits, b, true)
	if err != nil {
		return nil, err
	}
	// Coordinator result-cache tier, as in ShardedQuery.Run: prepared
	// executions share entries with ad-hoc ones (the key is the
	// canonical shape plus the resolved values).
	cache := st.s.cacheableSharded(se)
	if cache {
		if v, ok := st.s.resCache.Lookup(se.cq0.resKey, st.s.epochOf); ok {
			sr := st.s.serveShardedCached(ctx, se, v, true)
			sr.planFn = func() (*ShardedPlan, error) { return st.explainWith(se, b) }
			return sr, nil
		}
	}
	var eps map[string]uint64
	if cache {
		eps = st.s.epochsFor(se.cq0)
	}
	run := runnerset{
		planCached: true,
		shard: func(ctx context.Context, si int) (shardCursor, error) {
			return st.pstmts[si].run(ctx, b)
		},
		side: func(ctx context.Context, input, si int) (shardCursor, error) {
			return st.sideStmts[input][si].run(ctx, b)
		},
	}
	sr, err := st.s.startSharded(ctx, se, run)
	if err != nil {
		return nil, err
	}
	if cache {
		sr.acc = newResAccum(se.cq0.resKey, eps, st.s.resCache.EntryCap(), se.out.NumCols())
	}
	sr.planFn = func() (*ShardedPlan, error) { return st.explainWith(se, b) }
	return sr, nil
}

// Explain binds the parameters and renders the scatter-gather plan
// this execution would run, without touching any device.
func (st *ShardedStmt) Explain(b Bind) (*ShardedPlan, error) {
	if err := st.checkBind(b); err != nil {
		return nil, err
	}
	se, err := st.s.compileShardExec(st.sq, st.qt, st.lits, b, true)
	if err != nil {
		return nil, err
	}
	return st.explainWith(se, b)
}

func (st *ShardedStmt) explainWith(se *shardExec, b Bind) (*ShardedPlan, error) {
	return st.s.shardedPlan(se, func(si int) (*Plan, error) {
		if se.strategy == strategyBroadcast {
			return st.sideStmts[se.scanInput][si].explain(b)
		}
		return st.pstmts[si].explain(b)
	})
}

// Close releases the per-shard prepared statements. In-process
// statements hold no external resources; remote ones release their
// server-side handles. Idempotent in effect — closing twice re-closes
// already-released handles harmlessly.
func (st *ShardedStmt) Close() error {
	var first error
	note := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, ps := range st.pstmts {
		note(ps.close())
	}
	for input := 0; input < 2; input++ {
		for _, ps := range st.sideStmts[input] {
			note(ps.close())
		}
	}
	return first
}
