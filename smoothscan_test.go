package smoothscan

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildDB loads n rows (id, val) with val = gen(i) and an index on
// "val".
func buildDB(t testing.TB, opts Options, n int64, gen func(i int64) int64) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := tb.Append(i, gen(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", "val"); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	return db
}

func collect(t testing.TB, rows *Rows) [][]int64 {
	t.Helper()
	var out [][]int64
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{PoolPages: -5}); err == nil {
		t.Error("negative pool accepted")
	}
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().PagesRead != 0 {
		t.Error("fresh db has I/O")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db, _ := Open(Options{})
	if _, err := db.CreateTable("t"); err == nil {
		t.Error("zero columns accepted")
	}
	if _, err := db.CreateTable("t", "a", "a"); err == nil {
		t.Error("duplicate columns accepted")
	}
	if _, err := db.CreateTable("t", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", "b"); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestLoadLifecycle(t *testing.T) {
	db, _ := Open(Options{})
	tb, err := db.CreateTable("t", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tb.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	// Querying before Finish fails.
	if _, err := db.NumRows("t"); err == nil {
		t.Error("query before Finish succeeded")
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(3, 4); err == nil {
		t.Error("append after Finish accepted")
	}
	n, err := db.NumRows("t")
	if err != nil || n != 1 {
		t.Errorf("NumRows = %d, %v", n, err)
	}
	if err := tb.Finish(); err != nil {
		t.Errorf("double Finish: %v", err)
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	db := buildDB(t, Options{}, 10, func(i int64) int64 { return i })
	if _, err := db.Scan("missing", "val", 0, 1, ScanOptions{}); !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v", err)
	}
	if _, err := db.Scan("t", "missing", 0, 1, ScanOptions{}); err == nil {
		t.Error("unknown column accepted")
	}
	if err := db.CreateIndex("t", "missing"); err == nil {
		t.Error("index on unknown column accepted")
	}
	if err := db.Analyze("t", "missing"); err == nil {
		t.Error("analyze of unknown column accepted")
	}
	// Smooth scan on a column without an index.
	if _, err := db.Scan("t", "id", 0, 1, ScanOptions{}); !errors.Is(err, ErrNoIndex) {
		t.Errorf("err = %v, want ErrNoIndex", err)
	}
}

func TestScanPathsAgree(t *testing.T) {
	const n = 3000
	rng := rand.New(rand.NewSource(5))
	db := buildDB(t, Options{PoolPages: 128}, n, func(i int64) int64 { return rng.Int63n(500) })
	want := map[AccessPath][][]int64{}
	paths := []AccessPath{PathFull, PathIndex, PathSort, PathSwitch, PathSmooth, PathAuto}
	for _, p := range paths {
		db.ColdCache()
		rows, err := db.Scan("t", "val", 100, 300, ScanOptions{Path: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got := collect(t, rows)
		sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
		want[p] = got
	}
	base := want[PathFull]
	if len(base) == 0 {
		t.Fatal("no results")
	}
	for _, p := range paths[1:] {
		got := want[p]
		if len(got) != len(base) {
			t.Fatalf("%v returned %d rows, full scan %d", p, len(got), len(base))
		}
		for i := range got {
			if got[i][0] != base[i][0] || got[i][1] != base[i][1] {
				t.Fatalf("%v row %d mismatch", p, i)
			}
		}
	}
}

func TestOrderedSmoothScan(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := buildDB(t, Options{PoolPages: 128}, 2000, func(i int64) int64 { return rng.Int63n(400) })
	rows, err := db.Scan("t", "val", 0, 400, ScanOptions{Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, rows)
	if len(got) != 2000 {
		t.Fatalf("rows = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i][1] < got[i-1][1] {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestOrderedRejectedForFullAndSwitch(t *testing.T) {
	db := buildDB(t, Options{}, 100, func(i int64) int64 { return i })
	if _, err := db.Scan("t", "val", 0, 10, ScanOptions{Path: PathFull, Ordered: true}); err == nil {
		t.Error("ordered full scan accepted")
	}
	if _, err := db.Scan("t", "val", 0, 10, ScanOptions{Path: PathSwitch, Ordered: true}); err == nil {
		t.Error("ordered switch scan accepted")
	}
}

func TestSmoothStatsExposed(t *testing.T) {
	db := buildDB(t, Options{PoolPages: 128}, 2000, func(i int64) int64 { return (i * 7919) % 2000 })
	rows, err := db.Scan("t", "val", 0, 2000, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, rows)
	st, ok := rows.SmoothStats()
	if !ok {
		t.Fatal("SmoothStats unavailable for smooth scan")
	}
	if st.Produced != 2000 || st.PagesFetched == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Non-smooth scans expose no smooth stats.
	rows2, err := db.Scan("t", "val", 0, 10, ScanOptions{Path: PathIndex})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, rows2)
	if _, ok := rows2.SmoothStats(); ok {
		t.Error("SmoothStats present for index scan")
	}
}

func TestAutoPathUsesStatistics(t *testing.T) {
	// Without Analyze the optimizer falls back to a magic-constant
	// selectivity (1/3) and picks a full scan for what is actually a
	// 0.5%-selectivity point query; with real statistics the estimate
	// collapses and an index-based path wins.
	// The table must be large enough that an index probe can beat a
	// full scan at all (a handful of random accesses vs ~400 pages).
	db := buildDB(t, Options{PoolPages: 256}, 200_000, func(i int64) int64 { return i })
	rows, err := db.Scan("t", "val", 0, 5, ScanOptions{Path: PathAuto})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, rows)
	pathBefore, estBefore, ok := rows.Choice()
	if !ok {
		t.Fatal("no choice exposed")
	}
	if pathBefore != "full-scan" {
		t.Errorf("magic-constant estimate (%d) should force a full scan, got %s", estBefore, pathBefore)
	}
	if err := db.Analyze("t", "val"); err != nil {
		t.Fatal(err)
	}
	rows2, err := db.Scan("t", "val", 0, 5, ScanOptions{Path: PathAuto})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, rows2)
	pathAfter, estAfter, _ := rows2.Choice()
	if estAfter*10 >= estBefore {
		t.Errorf("analyze did not shrink the estimate: before=%d after=%d", estBefore, estAfter)
	}
	if pathAfter == "full-scan" {
		t.Errorf("with true stats (est %d) the optimizer still full-scans", estAfter)
	}
}

func TestSLAScan(t *testing.T) {
	// A realistic-width table (10 columns, 80-byte tuples) so the
	// heap dominates the index, as in the paper's workloads; SLA-
	// bounded scans on tiny tables are dominated by fixed seek costs
	// the bound cannot amortise.
	db, err := Open(Options{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10")
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	for i := int64(0); i < n; i++ {
		if err := tb.Append(i, (i*7919)%n, 0, 0, 0, 0, 0, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", "c2"); err != nil {
		t.Fatal(err)
	}
	fs, err := db.FullScanCost("t")
	if err != nil {
		t.Fatal(err)
	}
	db.ColdCache()
	db.ResetStats()
	rows, err := db.Scan("t", "c2", 0, n, ScanOptions{
		Policy:   Greedy,
		Trigger:  SLADriven,
		SLABound: 2.5 * fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, rows)
	if len(got) != n {
		t.Fatalf("rows = %d", len(got))
	}
	if io := db.Stats().IOTime; io > 2.5*fs*1.15 {
		t.Errorf("I/O %v exceeded SLA %v", io, 2.5*fs)
	}
}

func TestColAccessor(t *testing.T) {
	db := buildDB(t, Options{}, 10, func(i int64) int64 { return i * 2 })
	rows, err := db.Scan("t", "val", 4, 5, ScanOptions{Path: PathIndex})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no row")
	}
	v, ok := rows.Col("val")
	if !ok || v != 4 {
		t.Errorf("Col(val) = %d, %v", v, ok)
	}
	if _, ok := rows.Col("missing"); ok {
		t.Error("unknown column resolved")
	}
	rows.Close()
}

func TestColdCacheMatters(t *testing.T) {
	db := buildDB(t, Options{PoolPages: 4096}, 3000, func(i int64) int64 { return i })
	run := func() float64 {
		db.ResetStats()
		rows, err := db.Scan("t", "val", 0, 3000, ScanOptions{Path: PathFull})
		if err != nil {
			t.Fatal(err)
		}
		collect(t, rows)
		return db.Stats().IOTime
	}
	cold := run()
	warm := run() // pool retains everything
	if warm != 0 {
		t.Errorf("warm run did I/O: %v", warm)
	}
	db.ColdCache()
	again := run()
	if again != cold {
		t.Errorf("cold run after ColdCache = %v, want %v", again, cold)
	}
}

// Property: for random data and ranges, the default smooth scan equals
// the full scan result.
func TestPublicAPIEquivalenceProperty(t *testing.T) {
	f := func(seed int64, loRaw, width uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		db := buildDB(t, Options{PoolPages: 64}, 800, func(i int64) int64 { return rng.Int63n(1000) })
		lo := int64(loRaw) % 1100
		hi := lo + int64(width)%400
		full, err := db.Scan("t", "val", lo, hi, ScanOptions{Path: PathFull})
		if err != nil {
			return false
		}
		a := collect(t, full)
		smooth, err := db.Scan("t", "val", lo, hi, ScanOptions{Ordered: true})
		if err != nil {
			return false
		}
		b := collect(t, smooth)
		if len(a) != len(b) {
			return false
		}
		sort.Slice(b, func(i, j int) bool { return b[i][0] < b[j][0] })
		for i := range a {
			if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInsertAndCompact(t *testing.T) {
	db := buildDB(t, Options{PoolPages: 128}, 1000, func(i int64) int64 { return i % 100 })
	// Incremental inserts become visible to every access path.
	for i := int64(0); i < 50; i++ {
		if err := db.Insert("t", 1000+i, 55); err != nil {
			t.Fatal(err)
		}
	}
	count := func(path AccessPath) int {
		db.ColdCache()
		rows, err := db.Scan("t", "val", 55, 56, ScanOptions{Path: path})
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		if rows.Err() != nil {
			t.Fatal(rows.Err())
		}
		return n
	}
	want := 10 + 50 // 10 bulk-loaded rows with val=55 plus 50 inserts
	for _, p := range []AccessPath{PathFull, PathIndex, PathSort, PathSmooth} {
		if got := count(p); got != want {
			t.Errorf("%v sees %d rows after insert, want %d", p, got, want)
		}
	}
	// Compaction preserves visibility.
	if err := db.Compact("t"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []AccessPath{PathIndex, PathSmooth} {
		if got := count(p); got != want {
			t.Errorf("%v sees %d rows after compact, want %d", p, got, want)
		}
	}
	n, _ := db.NumRows("t")
	if n != 1050 {
		t.Errorf("NumRows = %d", n)
	}
	// Arity and unknown-table validation.
	if err := db.Insert("t", 1); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := db.Insert("missing", 1, 2); err == nil {
		t.Error("unknown table accepted")
	}
	if err := db.Compact("missing"); err == nil {
		t.Error("compact of unknown table accepted")
	}
}

func TestInsertOrderedScanSeesDelta(t *testing.T) {
	db := buildDB(t, Options{PoolPages: 128}, 500, func(i int64) int64 { return i * 2 }) // even vals
	for i := int64(0); i < 20; i++ {
		if err := db.Insert("t", 10_000+i, i*2+1); err != nil { // odd vals interleave
			t.Fatal(err)
		}
	}
	rows, err := db.Scan("t", "val", 0, 40, ScanOptions{Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var prev int64 = -1
	n := 0
	for rows.Next() {
		v, _ := rows.Col("val")
		if v < prev {
			t.Fatalf("order violation: %d after %d", v, prev)
		}
		prev = v
		n++
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if n != 40 { // 20 even (0..38) + 20 odd (1..39)
		t.Errorf("rows = %d, want 40", n)
	}
}
