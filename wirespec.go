package smoothscan

import (
	"fmt"

	"smoothscan/internal/exec"
	"smoothscan/internal/plan"
	"smoothscan/internal/qbridge"
	"smoothscan/internal/wire"
)

// Conversion of a builder Query into its wire.QuerySpec — the shape
// shipped to a remote server by ssclient and by the remote shard
// driver. The builder is the single source of truth for query
// structure: ssclient composes real *Query values (via NewQuery) and
// converts them here through the qbridge hook, so the local and remote
// surfaces cannot drift apart.

func init() {
	qbridge.Spec = func(q any) (wire.QuerySpec, error) {
		qq, ok := q.(*Query)
		if !ok {
			return wire.QuerySpec{}, fmt.Errorf("smoothscan: qbridge.Spec: %T is not a *Query", q)
		}
		return qq.wireSpec()
	}
}

// NewQuery starts a composable query that is not attached to any
// engine. Detached queries are the portable currency of the remote
// surfaces — ssclient and the remote shard driver serialise them to
// the wire — and of Engine implementations; running one directly
// fails, since there is no database to run against.
func NewQuery(table string) *Query {
	return &Query{table: table}
}

// wireSpec converts the builder state to the wire spec. It rejects a
// query the spec cannot express (the DB.Scan compat shape) and
// propagates any builder error.
func (q *Query) wireSpec() (wire.QuerySpec, error) {
	if q.err != nil {
		return wire.QuerySpec{}, q.err
	}
	if q.compat {
		return wire.QuerySpec{}, fmt.Errorf("smoothscan: a DB.Scan compat query cannot be serialised; use the Query builder")
	}
	spec := wire.QuerySpec{Table: q.table, Opts: optsSpec(q.opts)}
	for _, c := range q.conds {
		ps, err := predSpec(c.col, c.p)
		if err != nil {
			return wire.QuerySpec{}, err
		}
		spec.Preds = append(spec.Preds, ps)
	}
	for _, j := range q.joins {
		spec.Joins = append(spec.Joins, wire.JoinSpec{
			Table: j.table, LeftCol: j.leftCol, RightCol: j.rightCol, Opts: optsSpec(j.opts)})
	}
	if q.hasSel {
		spec.Select = append([]string(nil), q.sel...)
		spec.HasSel = true
	}
	if q.hasAgg {
		spec.GroupCol = q.group
		for _, a := range q.aggs {
			as, err := aggSpec(a)
			if err != nil {
				return wire.QuerySpec{}, err
			}
			spec.Aggs = append(spec.Aggs, as)
		}
		spec.HasAgg = true
	}
	if q.hasOrd {
		spec.OrderCol = q.order
		spec.HasOrd = true
	}
	if q.hasLim {
		spec.Limit = wireArg(q.limitArg)
		spec.HasLim = true
	}
	return spec, nil
}

// predSpec converts one conjunct. The planner's and the wire's kind
// numberings are decoupled on purpose; the switch is the mapping.
func predSpec(col string, p Pred) (wire.PredSpec, error) {
	if p.err != nil {
		return wire.PredSpec{}, p.err
	}
	var kind byte
	switch p.kind {
	case plan.KindBetween:
		kind = wire.PredBetween
	case plan.KindEq:
		kind = wire.PredEq
	case plan.KindLt:
		kind = wire.PredLt
	case plan.KindLe:
		kind = wire.PredLe
	case plan.KindGt:
		kind = wire.PredGt
	case plan.KindGe:
		kind = wire.PredGe
	default:
		return wire.PredSpec{}, fmt.Errorf("smoothscan: predicate kind %d has no wire encoding", p.kind)
	}
	return wire.PredSpec{Col: col, Kind: kind, A: wireArg(p.a), B: wireArg(p.b)}, nil
}

// aggSpec converts one aggregate. The output name always travels as
// As, so a server-side rebuild reproduces the exact column name even
// for defaulted ones ("sum_col", "count", ...).
func aggSpec(a Agg) (wire.AggSpec, error) {
	var kind byte
	switch a.kind {
	case exec.AggSum:
		kind = wire.AggSum
	case exec.AggCount:
		kind = wire.AggCount
	case exec.AggMin:
		kind = wire.AggMin
	case exec.AggMax:
		kind = wire.AggMax
	default:
		return wire.AggSpec{}, fmt.Errorf("smoothscan: aggregate kind %d has no wire encoding", a.kind)
	}
	return wire.AggSpec{Kind: kind, Col: a.col, As: a.name}, nil
}

// wireArg converts a literal-or-param argument.
func wireArg(a Arg) wire.ArgSpec {
	return wire.ArgSpec{Param: a.param, Lit: a.lit}
}

// optsSpec converts ScanOptions for the wire.
func optsSpec(o ScanOptions) wire.OptsSpec {
	return wire.OptsSpec{
		Path:              byte(o.Path),
		Policy:            byte(o.Policy),
		Trigger:           byte(o.Trigger),
		Ordered:           o.Ordered,
		EstimatedRows:     o.EstimatedRows,
		SLABound:          o.SLABound,
		MaxRegionPages:    o.MaxRegionPages,
		ResultCacheBudget: o.ResultCacheBudget,
		Parallelism:       int32(o.Parallelism),
	}
}
