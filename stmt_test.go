package smoothscan

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildWideDBWith is buildWideDB with explicit Options (plan-cache
// configuration) — same data, same indexes.
func buildWideDBWith(t testing.TB, opts Options, n, valDomain, catDomain int64) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val", "cat", "payload")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := tb.Append(i, (i*7919)%valDomain, (i*104729)%catDomain, i%1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"val", "cat"} {
		if err := db.CreateIndex("t", col); err != nil {
			t.Fatal(err)
		}
	}
	db.ResetStats()
	return db
}

// TestStmtRunMatchesLiteralQuery is the equivalence property test:
// across predicate shapes, access paths, parallelism, grouping,
// ordering, limits and joins, executing a prepared statement with
// bound constants returns exactly the rows and charges exactly the
// simulated device cost of the equivalent literal ad-hoc query (run
// on an identically built second DB).
func TestStmtRunMatchesLiteralQuery(t *testing.T) {
	type qcase struct {
		name    string
		literal func(db *DB) *Query
		param   func(db *DB) *Query
		bind    Bind
		// parallel relaxes the device-stat comparison: a parallel
		// scan's random/sequential classification depends on worker
		// interleaving (the pages read stay identical).
		parallel bool
	}
	cases := []qcase{
		{
			name:    "between",
			literal: func(db *DB) *Query { return db.Query("t").Where("val", Between(100, 900)) },
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(Param("lo"), Param("hi")))
			},
			bind: Bind{"lo": 100, "hi": 900},
		},
		{
			name: "multi-conjunct driving pick",
			literal: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(1000, 4000)).Where("cat", Eq(7)).Where("payload", Lt(500))
			},
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(Param("vlo"), Param("vhi"))).
					Where("cat", Eq(Param("c"))).Where("payload", Lt(500))
			},
			bind: Bind{"vlo": 1000, "vhi": 4000, "c": 7},
		},
		{
			name: "comparison kinds intersect",
			literal: func(db *DB) *Query {
				return db.Query("t").Where("val", Ge(200)).Where("val", Le(800)).Where("val", Gt(199))
			},
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Ge(Param("a"))).Where("val", Le(Param("b"))).Where("val", Gt(199))
			},
			bind: Bind{"a": 200, "b": 800},
		},
		{
			name: "ordered parallel",
			literal: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(0, 5000)).
					WithOptions(ScanOptions{Parallelism: 4}).OrderBy("val")
			},
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(Param("lo"), Param("hi"))).
					WithOptions(ScanOptions{Parallelism: 4}).OrderBy("val")
			},
			bind:     Bind{"lo": 0, "hi": 5000},
			parallel: true,
		},
		{
			name: "group-agg-order-limit",
			literal: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(0, 3000)).Select("cat", "payload").
					GroupBy("cat", Sum("payload"), Count()).OrderBy("cat").Limit(9)
			},
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(Param("lo"), Param("hi"))).Select("cat", "payload").
					GroupBy("cat", Sum("payload"), Count()).OrderBy("cat").Limit(Param("n"))
			},
			bind: Bind{"lo": 0, "hi": 3000, "n": 9},
		},
		{
			name: "forced paths",
			literal: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(500, 600)).
					WithOptions(ScanOptions{Path: PathIndex})
			},
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(Param("lo"), Param("hi"))).
					WithOptions(ScanOptions{Path: PathIndex})
			},
			bind: Bind{"lo": 500, "hi": 600},
		},
		{
			name: "auto path with stats",
			literal: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(0, 9000)).
					WithOptions(ScanOptions{Path: PathAuto})
			},
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(Param("lo"), Param("hi"))).
					WithOptions(ScanOptions{Path: PathAuto})
			},
			bind: Bind{"lo": 0, "hi": 9000},
		},
		{
			name:    "contradiction short-circuit",
			literal: func(db *DB) *Query { return db.Query("t").Where("val", Gt(800)).Where("val", Lt(20)) },
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Gt(Param("a"))).Where("val", Lt(Param("b")))
			},
			bind: Bind{"a": 800, "b": 20},
		},
		{
			name:    "limit zero",
			literal: func(db *DB) *Query { return db.Query("t").Where("val", Between(0, 500)).Limit(0) },
			param: func(db *DB) *Query {
				return db.Query("t").Where("val", Between(0, 500)).Limit(Param("n"))
			},
			bind: Bind{"n": 0},
		},
	}
	build := func() *DB {
		db := buildWideDBWith(t, Options{}, 30_000, 10_000, 50)
		if err := db.Analyze("t", "val", "cat"); err != nil {
			t.Fatal(err)
		}
		db.ResetStats()
		return db
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dbA, dbB := build(), build()

			want := collect(t, mustRun(t, c.literal(dbA)))

			stmt, err := dbB.Prepare(c.param(dbB))
			if err != nil {
				t.Fatal(err)
			}
			rows, err := stmt.Run(context.Background(), c.bind)
			if err != nil {
				t.Fatal(err)
			}
			got := collect(t, rows)

			if len(got) != len(want) {
				t.Fatalf("prepared returned %d rows, literal %d", len(got), len(want))
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
					}
				}
			}
			a, b := dbA.Stats(), dbB.Stats()
			if c.parallel {
				if a.PagesRead != b.PagesRead || a.Requests != b.Requests {
					t.Errorf("parallel page traffic differs:\nliteral  %+v\nprepared %+v", a, b)
				}
			} else if a != b {
				t.Errorf("simulated cost differs:\nliteral  %+v\nprepared %+v", a, b)
			}
			if !rows.ExecStats().PlanCacheHit {
				t.Error("Stmt.Run did not report a plan reuse")
			}
		})
	}
}

// TestStmtJoinMatchesLiteral: the equivalence property across a join,
// with per-input predicate pushdown and bind-time build-side choice.
func TestStmtJoinMatchesLiteral(t *testing.T) {
	build := func() *DB {
		db, err := Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		it, _ := db.CreateTable("items", "i_order", "i_price", "i_date")
		for i := int64(0); i < 20_000; i++ {
			it.Append(i%4_000, (i*37)%1_000, i%2_000)
		}
		it.Finish()
		ot, _ := db.CreateTable("orders", "o_id", "o_date")
		for i := int64(0); i < 4_000; i++ {
			ot.Append(i, (i*13)%2_000)
		}
		ot.Finish()
		for _, ix := range [][2]string{{"items", "i_date"}, {"orders", "o_date"}} {
			if err := db.CreateIndex(ix[0], ix[1]); err != nil {
				t.Fatal(err)
			}
		}
		db.ResetStats()
		return db
	}
	dbA, dbB := build(), build()

	want := collect(t, mustRun(t, dbA.Query("items").
		Where("i_date", Lt(400)).
		Join("orders", "i_order", "o_id").
		Where("o_date", Lt(1_200))))

	stmt, err := dbB.Prepare(dbB.Query("items").
		Where("i_date", Lt(Param("idate"))).
		Join("orders", "i_order", "o_id").
		Where("o_date", Lt(Param("odate"))))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Run(context.Background(), Bind{"idate": 400, "odate": 1_200})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, rows)
	if len(got) != len(want) {
		t.Fatalf("prepared join returned %d rows, literal %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
	if a, b := dbA.Stats(), dbB.Stats(); a != b {
		t.Errorf("simulated cost differs:\nliteral  %+v\nprepared %+v", a, b)
	}
	if len(rows.ExecStats().Joins) != 1 {
		t.Errorf("join stats = %+v", rows.ExecStats().Joins)
	}
}

// TestStmtDrivingIndexFlip: the same prepared statement picks a
// different driving index per bind set — the bind-time re-planning the
// API redesign is for.
func TestStmtDrivingIndexFlip(t *testing.T) {
	db := buildWideDB(t, 30_000, 10_000, 50)
	if err := db.Analyze("t", "val", "cat"); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(db.Query("t").
		Where("val", Between(Param("vlo"), Param("vhi"))).
		Where("cat", Between(Param("clo"), Param("chi"))))
	if err != nil {
		t.Fatal(err)
	}

	leaf := func(p *Plan) *PlanNode {
		n := p.Root
		for len(n.Children) > 0 {
			n = n.Children[0]
		}
		return n
	}

	// Wide val window, narrow cat: cat drives.
	p1, err := stmt.Explain(Bind{"vlo": 1000, "vhi": 4000, "clo": 7, "chi": 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := leaf(p1).Detail; !strings.Contains(d, "$clo<=cat<$chi") {
		t.Errorf("bind set 1 leaf %q, want cat driving with markers", d)
	}
	// Narrow val window, wide cat: val drives.
	p2, err := stmt.Explain(Bind{"vlo": 1000, "vhi": 1050, "clo": 5, "chi": 45})
	if err != nil {
		t.Fatal(err)
	}
	if d := leaf(p2).Detail; !strings.Contains(d, "$vlo<=val<$vhi") {
		t.Errorf("bind set 2 leaf %q, want val driving with markers", d)
	}
	for _, p := range []*Plan{p1, p2} {
		if len(p.Binds) != 4 {
			t.Errorf("Binds = %v", p.Binds)
		}
		if len(p.BindChoices) == 0 {
			t.Errorf("no re-planned-at-bind annotation")
		}
	}
}

// TestStmtParamErrors covers the parameter error paths: unbound,
// unknown, type mismatches, bad parameter names, negative bound limit,
// and ad-hoc execution of a parameterized query.
func TestStmtParamErrors(t *testing.T) {
	db := buildWideDB(t, 2_000, 1_000, 8)
	q := func() *Query { return db.Query("t").Where("val", Between(Param("lo"), Param("hi"))) }

	// Ad-hoc Run/Explain of a parameterized query: unbound.
	if _, err := q().Run(context.Background()); !errors.Is(err, ErrUnboundParam) {
		t.Errorf("ad-hoc Run = %v, want ErrUnboundParam", err)
	}
	if _, err := q().Explain(); !errors.Is(err, ErrUnboundParam) {
		t.Errorf("ad-hoc Explain = %v, want ErrUnboundParam", err)
	}

	stmt, err := db.Prepare(q())
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.Params(); len(got) != 2 || got[0] != "lo" || got[1] != "hi" {
		t.Errorf("Params() = %v", got)
	}
	// Missing one parameter.
	if _, err := stmt.Run(context.Background(), Bind{"lo": 1}); !errors.Is(err, ErrUnboundParam) {
		t.Errorf("partial bind = %v, want ErrUnboundParam", err)
	}
	// Unknown parameter name.
	if _, err := stmt.Run(context.Background(), Bind{"lo": 1, "hi": 2, "typo": 3}); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("extra bind = %v, want ErrUnknownParam", err)
	}
	if _, err := stmt.Explain(Bind{"nope": 1}); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("Explain extra bind = %v, want ErrUnknownParam", err)
	}

	// Type mismatches are recorded at construction and surface from
	// Run/Explain/Prepare.
	if _, err := db.Query("t").Where("val", Eq("five")).Run(context.Background()); !errors.Is(err, ErrArgType) {
		t.Errorf("Eq(string) = %v, want ErrArgType", err)
	}
	if _, err := db.Query("t").Limit(3.5).Explain(); !errors.Is(err, ErrArgType) {
		t.Errorf("Limit(float) = %v, want ErrArgType", err)
	}
	if _, err := db.Prepare(db.Query("t").Where("val", Gt(uint64(1)<<63))); !errors.Is(err, ErrArgType) {
		t.Errorf("overflowing uint64 = %v, want ErrArgType", err)
	}

	// Bad parameter names.
	if _, err := db.Prepare(db.Query("t").Where("val", Eq(Param("")))); err == nil {
		t.Error("empty parameter name accepted")
	}
	if _, err := db.Prepare(db.Query("t").Where("val", Eq(Param("a|b")))); err == nil {
		t.Error("parameter name with separator accepted")
	}

	// Negative limit bound at bind time.
	ls, err := db.Prepare(db.Query("t").Where("val", Between(0, 10)).Limit(Param("n")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Run(context.Background(), Bind{"n": -1}); err == nil {
		t.Error("negative bound limit accepted")
	}

	// Prepare on a foreign or detached query.
	other := buildWideDB(t, 100, 10, 4)
	if _, err := db.Prepare(other.Query("t")); err == nil {
		t.Error("Prepare of a query from another DB accepted")
	}
	if _, err := db.Prepare(nil); err == nil {
		t.Error("Prepare(nil) accepted")
	}
}

// TestStmtZeroParams: preparing a literal-only query works; it binds
// with nil and rejects any bind name.
func TestStmtZeroParams(t *testing.T) {
	db := buildWideDB(t, 5_000, 1_000, 8)
	stmt, err := db.Prepare(db.Query("t").Where("val", Between(0, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.Params(); len(got) != 0 {
		t.Errorf("Params() = %v", got)
	}
	rows, err := stmt.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(collect(t, rows))
	want := len(collect(t, mustRun(t, db.Query("t").Where("val", Between(0, 100)))))
	if n != want {
		t.Errorf("prepared returned %d rows, literal %d", n, want)
	}
	if _, err := stmt.Run(context.Background(), Bind{"x": 1}); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("bind on zero-param stmt = %v, want ErrUnknownParam", err)
	}
}

// TestStmtConcurrentReuse hammers one Stmt from many goroutines with
// differing bind sets — the concurrency contract of the prepared API
// (run under -race by `make race`).
func TestStmtConcurrentReuse(t *testing.T) {
	db := buildWideDB(t, 20_000, 1_000, 8)
	stmt, err := db.Prepare(db.Query("t").
		Where("val", Between(Param("lo"), Param("hi"))).
		Where("payload", Lt(Param("p"))))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lo := int64((g*perG + i) * 3 % 900)
				b := Bind{"lo": lo, "hi": lo + 100, "p": int64(500 + i)}
				rows, err := stmt.Run(context.Background(), b)
				if err != nil {
					errs <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
				for rows.Next() {
					if v, _ := rows.Col("val"); v < lo || v >= lo+100 {
						errs <- fmt.Errorf("g%d i%d: val %d outside [%d,%d)", g, i, v, lo, lo+100)
						rows.Close()
						return
					}
				}
				err = rows.Err()
				rows.Close()
				if err != nil {
					errs <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPlanCacheAdHoc: ad-hoc queries transparently share templates
// through the DB-wide cache — same shape hits, different literals
// still hit, different shape misses; eviction and the disabled mode
// behave; ExecStats reports the per-query flag.
func TestPlanCacheAdHoc(t *testing.T) {
	db := buildWideDB(t, 5_000, 1_000, 8)

	rows := mustRun(t, db.Query("t").Where("val", Between(0, 100)))
	collect(t, rows)
	if rows.ExecStats().PlanCacheHit {
		t.Error("first execution of a shape reported a cache hit")
	}
	// Different literals, same shape: hit.
	rows = mustRun(t, db.Query("t").Where("val", Between(200, 300)))
	collect(t, rows)
	if !rows.ExecStats().PlanCacheHit {
		t.Error("same-shape query missed the plan cache")
	}
	// Different shape (extra conjunct): miss.
	rows = mustRun(t, db.Query("t").Where("val", Between(0, 100)).Where("cat", Eq(1)))
	collect(t, rows)
	if rows.ExecStats().PlanCacheHit {
		t.Error("different-shape query hit the plan cache")
	}
	st := db.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("cache stats = %+v", st)
	}

	// Eq(x) and Between(x, x+1) canonicalise to the same folded shape.
	collect(t, mustRun(t, db.Query("t").Where("cat", Eq(3))))
	r2 := mustRun(t, db.Query("t").Where("cat", Between(3, 4)))
	collect(t, r2)
	if !r2.ExecStats().PlanCacheHit {
		t.Error("Eq/Between same-range queries did not share a template")
	}

	// Prepare registers in the same cache: an ad-hoc query of the same
	// canonical shape (different literal) hits the prepared template.
	if _, err := db.Prepare(db.Query("t").Where("payload", Lt(500))); err != nil {
		t.Fatal(err)
	}
	r3 := mustRun(t, db.Query("t").Where("payload", Lt(700)))
	collect(t, r3)
	if !r3.ExecStats().PlanCacheHit {
		t.Error("ad-hoc query did not hit the template Prepare registered")
	}
}

// TestPlanCacheEvictionAndDisable: a capacity-1 cache evicts, a
// negative Options.PlanCache disables caching entirely.
func TestPlanCacheEvictionAndDisable(t *testing.T) {
	db := buildWideDBWith(t, Options{PlanCache: 1}, 2_000, 1_000, 8)
	collect(t, mustRun(t, db.Query("t").Where("val", Between(0, 10))))
	collect(t, mustRun(t, db.Query("t").Where("cat", Eq(1))))    // evicts the first
	r := mustRun(t, db.Query("t").Where("val", Between(20, 30))) // miss again
	collect(t, r)
	if r.ExecStats().PlanCacheHit {
		t.Error("evicted shape still hit")
	}
	if st := db.PlanCacheStats(); st.Evictions == 0 || st.Capacity != 1 {
		t.Errorf("cache stats = %+v", st)
	}

	off := buildWideDBWith(t, Options{PlanCache: -1}, 2_000, 1_000, 8)
	collect(t, mustRun(t, off.Query("t").Where("val", Between(0, 10))))
	r = mustRun(t, off.Query("t").Where("val", Between(0, 10)))
	collect(t, r)
	if r.ExecStats().PlanCacheHit {
		t.Error("disabled cache reported a hit")
	}
	if st := off.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Errorf("disabled cache stats = %+v", st)
	}
	// Prepared statements still work without the cache.
	stmt, err := off.Prepare(off.Query("t").Where("val", Eq(Param("x"))))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Run(context.Background(), Bind{"x": 5})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, rows)
	if !rows.ExecStats().PlanCacheHit {
		t.Error("stmt run without cache did not report template reuse")
	}
}

// TestPreparedBindAllocs: the bind phase allocates less than half of
// what a full structural compile does — the point of splitting the
// lifecycle (the acceptance floor is 50%; the split is far below it).
func TestPreparedBindAllocs(t *testing.T) {
	db := buildWideDBWith(t, Options{PlanCache: -1}, 10_000, 1_000, 50)
	if err := db.Analyze("t", "val", "cat"); err != nil {
		t.Fatal(err)
	}
	q := func() *Query {
		return db.Query("t").
			Where("val", Between(Param("lo"), Param("hi"))).
			Where("cat", Eq(Param("c"))).
			Select("id", "val", "cat").
			OrderBy("val").
			Limit(100)
	}
	stmt, err := db.Prepare(q())
	if err != nil {
		t.Fatal(err)
	}
	b := Bind{"lo": 100, "hi": 400, "c": 7}

	lq := db.Query("t").
		Where("val", Between(100, 400)).
		Where("cat", Eq(7)).
		Select("id", "val", "cat").
		OrderBy("val").
		Limit(100)

	compileAllocs := testing.AllocsPerRun(200, func() {
		db.mu.RLock()
		if _, err := lq.compile(); err != nil {
			t.Fatal(err)
		}
		db.mu.RUnlock()
	})
	// annotate=true is what Stmt.Run actually passes, so the enforced
	// budget covers the real per-execution path (annotation strings
	// are rendered lazily in plan(), not here).
	bindAllocs := testing.AllocsPerRun(200, func() {
		db.mu.RLock()
		if _, err := db.bindTemplate(stmt.qt, stmt.lits, b, true); err != nil {
			t.Fatal(err)
		}
		db.mu.RUnlock()
	})
	t.Logf("full compile: %.1f allocs/query, bind phase: %.1f allocs/query (%.0f%%)",
		compileAllocs, bindAllocs, 100*bindAllocs/compileAllocs)
	if bindAllocs > compileAllocs*0.5 {
		t.Errorf("bind phase allocates %.1f, more than 50%% of the %.1f a full compile does",
			bindAllocs, compileAllocs)
	}
}

// TestStmtExplainGolden pins the parameterized Explain rendering —
// bind markers, bind header, re-planned-at-bind annotations — against
// committed goldens. Regenerate with UPDATE_GOLDEN=1 go test -run
// StmtExplainGolden .
func TestStmtExplainGolden(t *testing.T) {
	db := buildWideDB(t, 30_000, 10_000, 50)
	if err := db.Analyze("t", "val", "cat"); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(db.Query("t").
		Where("val", Between(Param("vlo"), Param("vhi"))).
		Where("cat", Between(Param("clo"), Param("chi"))).
		Select("id", "val", "cat").
		OrderBy("val").
		Limit(Param("n")))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		golden string
		bind   Bind
	}{
		{"explain_prepared_cat_drives.golden", Bind{"vlo": 1000, "vhi": 4000, "clo": 7, "chi": 8, "n": 10}},
		{"explain_prepared_val_drives.golden", Bind{"vlo": 1000, "vhi": 1050, "clo": 5, "chi": 45, "n": 10}},
	}
	for _, c := range cases {
		p, err := stmt.Explain(c.bind)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, c.golden, p.String())
	}

	// A parameterized merge-join plan with mixed literal/param bounds.
	jdb, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	it, _ := jdb.CreateTable("items", "i_order", "i_price")
	for i := int64(0); i < 8_000; i++ {
		it.Append(i%2_000, (i*37)%1_000)
	}
	it.Finish()
	ot, _ := jdb.CreateTable("orders", "o_id", "o_prio")
	for i := int64(0); i < 2_000; i++ {
		ot.Append(i, i%10)
	}
	ot.Finish()
	if err := jdb.CreateIndex("items", "i_price"); err != nil {
		t.Fatal(err)
	}
	js, err := jdb.Prepare(jdb.Query("items").
		Where("i_price", Ge(Param("minprice"))).
		Join("orders", "i_order", "o_id").
		Where("o_prio", Lt(5)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := js.Explain(Bind{"minprice": 900})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_prepared_join.golden", p.String())
}

// checkGolden compares got against testdata/<name>, regenerating the
// file when UPDATE_GOLDEN is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (set UPDATE_GOLDEN=1 to generate)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}
