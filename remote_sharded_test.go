package smoothscan_test

// Remote-sharded equivalence and failover tests: the same sharded
// query surface, backed once by in-process shards and once by remote
// shard drivers speaking the wire protocol to per-shard ssserver
// instances loaded with identical data. Row results must match exactly
// (in sequence when the gather is ordered); error classes must survive
// the wire; a killed shard node must surface a typed
// ErrShardUnavailable without hanging or leaking goroutines.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"smoothscan"
	"smoothscan/internal/server"
	"smoothscan/ssclient"
)

const (
	rsRowCount = 6000
	rsDomain   = 2000
)

// rsTableRows generates the deterministic fixture: id (dense, unique),
// val (uniform, indexed, the partition column), g (low cardinality),
// p (payload).
func rsTableRows() [][]int64 {
	rng := rand.New(rand.NewSource(211))
	rows := make([][]int64, rsRowCount)
	for i := range rows {
		val := rng.Int63n(rsDomain)
		rows[i] = []int64{int64(i), val, val % 16, rng.Int63n(1_000_000)}
	}
	return rows
}

// rsDimRows is a dimension table keyed by a dense id, partitioned on a
// non-join column when the broadcast strategy is wanted.
func rsDimRows() [][]int64 {
	rng := rand.New(rand.NewSource(223))
	rows := make([][]int64, 500)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i) % 8, rng.Int63n(100)}
	}
	return rows
}

func rsPartitioning(scheme string, n int) smoothscan.Partitioning {
	if scheme == "hash" {
		return smoothscan.HashPartitioning("val", n)
	}
	return smoothscan.RangePartitioning("val", smoothscan.EqualWidthBounds(0, rsDomain, n)...)
}

// loadRemoteShardedTables loads the fixture tables into a sharded DB.
// The fact table "t" partitions by the given scheme; the dimension "d"
// partitions by a non-join column, so t⋈d always broadcasts.
func loadRemoteShardedTables(t *testing.T, s *smoothscan.ShardedDB, parts map[string]smoothscan.Partitioning) {
	t.Helper()
	tb, err := s.CreateShardedTable("t", parts["t"], "id", "val", "g", "p")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rsTableRows() {
		if err := tb.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("t", "val"); err != nil {
		t.Fatal(err)
	}
	db, err := s.CreateShardedTable("d", parts["d"], "d_id", "d_cat", "d_w")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rsDimRows() {
		if err := db.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("d", "d_id"); err != nil {
		t.Fatal(err)
	}
}

// remoteShardedFixture pairs an in-process sharded baseline with a
// remote-backed twin over identical data, plus the per-shard servers
// so failover tests can kill them.
type remoteShardedFixture struct {
	local  *smoothscan.ShardedDB
	remote *smoothscan.ShardedDB
	// backing holds the server-side per-shard DBs, in shard order.
	backing []*smoothscan.DB
	srvs    []*server.Server
	addrs   []string
	parts   map[string]smoothscan.Partitioning
}

func rsParts(scheme string, n int) map[string]smoothscan.Partitioning {
	return map[string]smoothscan.Partitioning{
		"t": rsPartitioning(scheme, n),
		// Partitioned on a non-join column: a t⋈d join broadcasts.
		"d": smoothscan.HashPartitioning("d_w", n),
	}
}

func buildRemoteSharded(t *testing.T, n int, scheme string) *remoteShardedFixture {
	t.Helper()
	parts := rsParts(scheme, n)
	local, err := smoothscan.OpenSharded(n, smoothscan.Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	loadRemoteShardedTables(t, local, parts)

	// The remote topology serves a second, identically-loaded shard
	// set: one ssserver per shard.
	nodes, err := smoothscan.OpenSharded(n, smoothscan.Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	loadRemoteShardedTables(t, nodes, parts)
	fx := &remoteShardedFixture{local: local, parts: parts}
	var placements []smoothscan.Placement
	for i := 0; i < n; i++ {
		db := nodes.Shard(i)
		srv := server.New(db, server.Config{FaultAdmin: true})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		fx.backing = append(fx.backing, db)
		fx.srvs = append(fx.srvs, srv)
		fx.addrs = append(fx.addrs, srv.Addr().String())
		placements = append(placements, smoothscan.Placement{Addr: srv.Addr().String()})
	}
	remote, err := smoothscan.OpenShardedRemote(placements, parts, smoothscan.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	fx.remote = remote
	return fx
}

func drainSharded(t *testing.T, rows *smoothscan.ShardedRows, err error) [][]int64 {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]int64
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func runDrain(t *testing.T, q *smoothscan.ShardedQuery, ctx context.Context) [][]int64 {
	t.Helper()
	rows, err := q.Run(ctx)
	return drainSharded(t, rows, err)
}

func stmtDrain(t *testing.T, st *smoothscan.ShardedStmt, ctx context.Context, b smoothscan.Bind) [][]int64 {
	t.Helper()
	rows, err := st.Run(ctx, b)
	return drainSharded(t, rows, err)
}

// rsCase is one query shape, expressed once (both engines are
// *ShardedDB). exact cases compare row sequences; the rest compare
// multisets.
type rsCase struct {
	name  string
	exact bool
	q     func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery
}

func rsCases() []rsCase {
	return []rsCase{
		{"scan", false, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Where("val", smoothscan.Between(600, 1200))
		}},
		{"index", false, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Where("val", smoothscan.Between(100, 220)).
				WithOptions(smoothscan.ScanOptions{Path: smoothscan.PathIndex})
		}},
		{"ordered", true, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Where("val", smoothscan.Between(600, 1200)).OrderBy("id")
		}},
		{"select", false, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Select("val", "p").Where("val", smoothscan.Ge(1500))
		}},
		{"agg", true, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").GroupBy("g", smoothscan.Count(), smoothscan.Sum("p"), smoothscan.Min("val"), smoothscan.Max("val"))
		}},
		{"agg-where-ord", true, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Where("val", smoothscan.Between(300, 1700)).
				GroupBy("g", smoothscan.Sum("p")).OrderBy("g")
		}},
		{"topn", true, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Where("val", smoothscan.Ge(800)).OrderBy("id").Limit(53)
		}},
		{"join-broadcast", false, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Join("d", "g", "d_cat").Where("val", smoothscan.Between(200, 500))
		}},
		{"join-agg", true, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Join("d", "g", "d_cat").GroupBy("g", smoothscan.Count(), smoothscan.Sum("d_w"))
		}},
		{"empty-range", true, func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
			return s.Query("t").Where("val", smoothscan.Between(500, 500))
		}},
	}
}

func TestRemoteShardedEquivalenceGrid(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{1, 2, 4} {
		for _, scheme := range []string{"range", "hash"} {
			fx := buildRemoteSharded(t, n, scheme)
			for _, c := range rsCases() {
				c := c
				t.Run(strings.Join([]string{scheme, "N" + strconv.Itoa(n), c.name}, "/"), func(t *testing.T) {
					lrows, lerr := c.q(fx.local).Run(ctx)
					want := drainSharded(t, lrows, lerr)
					rrows, rerr := c.q(fx.remote).Run(ctx)
					got := drainSharded(t, rrows, rerr)
					requireSameRows(t, want, got, c.exact)
				})
			}
		}
	}
}

func TestRemoteShardedPrepared(t *testing.T) {
	ctx := context.Background()
	fx := buildRemoteSharded(t, 4, "range")
	build := func(s *smoothscan.ShardedDB) *smoothscan.ShardedQuery {
		return s.Query("t").
			Where("val", smoothscan.Between(smoothscan.Param("lo"), smoothscan.Param("hi"))).
			OrderBy("id")
	}
	lst, err := fx.local.Prepare(build(fx.local))
	if err != nil {
		t.Fatal(err)
	}
	rst, err := fx.remote.Prepare(build(fx.remote))
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	if lp, rp := lst.Params(), rst.Params(); strings.Join(lp, ",") != strings.Join(rp, ",") {
		t.Fatalf("params differ: local %v, remote %v", lp, rp)
	}
	// Narrow binds prune to a shard subset; wide ones touch all —
	// re-binding the same statements each time.
	for _, b := range []smoothscan.Bind{
		{"lo": 0, "hi": 400},
		{"lo": 900, "hi": 1100},
		{"lo": 0, "hi": rsDomain},
		{"lo": 1700, "hi": 1600}, // empty
	} {
		lrows, lerr := lst.Run(ctx, b)
		want := drainSharded(t, lrows, lerr)
		rrows, rerr := rst.Run(ctx, b)
		got := drainSharded(t, rrows, rerr)
		requireSameRows(t, want, got, true)
	}
}

// TestRemoteShardedStats: the per-shard breakdown of a remote
// execution carries each node's address, its I/O summary shipped over
// the wire, and the shard row counts from the catalog.
func TestRemoteShardedStats(t *testing.T) {
	ctx := context.Background()
	fx := buildRemoteSharded(t, 2, "range")
	rows, err := fx.remote.Query("t").Where("val", smoothscan.Between(0, rsDomain)).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	st := rows.ExecStats()
	if len(st.Shards) != 2 {
		t.Fatalf("want 2 shard stats, got %d", len(st.Shards))
	}
	var totalRows int64
	for i, sh := range st.Shards {
		if sh.Addr != fx.addrs[i] {
			t.Errorf("shard %d: addr %q, want %q", i, sh.Addr, fx.addrs[i])
		}
		if sh.Pruned {
			t.Errorf("shard %d unexpectedly pruned", i)
			continue
		}
		if sh.IO.PagesRead == 0 {
			t.Errorf("shard %d: no pages read in remote I/O summary", i)
		}
		if sh.Unavailable {
			t.Errorf("shard %d flagged unavailable on a healthy run", i)
		}
		totalRows += sh.Rows
	}
	if totalRows != st.RowsReturned || totalRows == 0 {
		t.Errorf("per-shard rows %d != returned %d", totalRows, st.RowsReturned)
	}
	if st.IO.PagesRead == 0 {
		t.Error("summed IO empty")
	}

	counts, err := fx.remote.ShardRows("t")
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	if n != rsRowCount {
		t.Errorf("ShardRows sums to %d, want %d", n, rsRowCount)
	}

	// The plan names the nodes.
	p, err := fx.remote.Query("t").Where("val", smoothscan.Between(0, 100)).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "@"+fx.addrs[0]) {
		t.Errorf("plan does not name shard 0's node:\n%s", p.String())
	}
}

// TestRemoteShardedErrorParity: a typed engine fault injected on one
// node crosses the wire with its error class intact, exactly as for an
// unsharded remote query.
func TestRemoteShardedErrorParity(t *testing.T) {
	ctx := context.Background()
	fx := buildRemoteSharded(t, 2, "range")
	// Rate-1 permanent faults on node 0's device.
	ctl, err := ssclient.Dial(fx.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.SetFaultPolicy(7, ssclient.FaultRule{Kind: smoothscan.FaultPermanent, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	defer ctl.ClearFaultPolicy()
	if err := fx.remote.ColdCache(); err != nil {
		t.Fatal(err)
	}
	rows, err := fx.remote.Query("t").Where("val", smoothscan.Between(0, rsDomain)).Run(ctx)
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if err == nil {
		t.Fatal("rate-1 permanent faults did not surface an error")
	}
	if !smoothscan.IsFaultError(err) {
		t.Fatalf("error lost its fault class over the wire: %v", err)
	}
	if smoothscan.IsTransientFault(err) {
		t.Fatalf("permanent fault classified transient: %v", err)
	}
	if errors.Is(err, smoothscan.ErrShardUnavailable) {
		t.Fatalf("engine fault misclassified as shard unavailability: %v", err)
	}
}

// waitGoroutines polls until the goroutine count returns to the
// baseline or the deadline passes.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Errorf("%d goroutines alive after failure (baseline %d)", got, base)
	}
}

// TestRemoteShardedFailover: killing a shard node surfaces a typed
// ErrShardUnavailable — before a query (dial retry exhaustion) and
// mid-query (stream death) — flags the shard in ExecStats, leaks no
// goroutines, and recovers once a node is back on the address.
func TestRemoteShardedFailover(t *testing.T) {
	ctx := context.Background()
	fx := buildRemoteSharded(t, 2, "range")
	query := func() *smoothscan.ShardedQuery {
		return fx.remote.Query("t").Where("val", smoothscan.Between(0, rsDomain))
	}
	// Healthy baseline.
	want := runDrain(t, query(), ctx)

	runtime.GC()
	base := runtime.NumGoroutine()

	// Kill node 1 and run: whether the failure lands at open (fresh
	// dial refused) or mid-stream (pooled connection dead), the error
	// must be ErrShardUnavailable.
	fx.srvs[1].Close()
	rows, err := query().Run(ctx)
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		if cerr := rows.Close(); err == nil {
			err = cerr
		}
		if err != nil && errors.Is(err, smoothscan.ErrShardUnavailable) {
			st := rows.ExecStats()
			if len(st.Shards) == 2 && !st.Shards[1].Unavailable {
				t.Error("dead shard not flagged Unavailable in ExecStats")
			}
		}
	}
	if err == nil {
		t.Fatal("query against a dead shard node succeeded")
	}
	if !errors.Is(err, smoothscan.ErrShardUnavailable) {
		t.Fatalf("want ErrShardUnavailable, got: %v", err)
	}
	waitGoroutines(t, base)

	// Restart a server for the same backing shard on the same address:
	// the driver re-dials and the query heals.
	srv := server.New(fx.backing[1], server.Config{FaultAdmin: true})
	var serr error
	for attempt := 0; attempt < 50; attempt++ {
		if serr = srv.Start(fx.addrs[1]); serr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if serr != nil {
		t.Fatalf("rebind %s: %v", fx.addrs[1], serr)
	}
	t.Cleanup(func() { srv.Close() })
	got := runDrain(t, query(), ctx)
	requireSameRows(t, want, got, false)
}

// TestRemoteShardedFailoverPrepared: a shard node dying between a
// statement's runs surfaces ErrShardUnavailable from Run, and the
// statement heals when the node returns (fresh connections re-prepare
// lazily).
func TestRemoteShardedFailoverPrepared(t *testing.T) {
	ctx := context.Background()
	fx := buildRemoteSharded(t, 2, "range")
	st, err := fx.remote.Prepare(fx.remote.Query("t").
		Where("val", smoothscan.Between(smoothscan.Param("lo"), smoothscan.Param("hi"))))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bind := smoothscan.Bind{"lo": 0, "hi": rsDomain}
	want := stmtDrain(t, st, ctx, bind)

	runtime.GC()
	base := runtime.NumGoroutine()

	fx.srvs[0].Close()
	rows, err := st.Run(ctx, bind)
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		if cerr := rows.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		t.Fatal("prepared run against a dead shard node succeeded")
	}
	if !errors.Is(err, smoothscan.ErrShardUnavailable) {
		t.Fatalf("want ErrShardUnavailable, got: %v", err)
	}
	waitGoroutines(t, base)

	srv := server.New(fx.backing[0], server.Config{FaultAdmin: true})
	var serr error
	for attempt := 0; attempt < 50; attempt++ {
		if serr = srv.Start(fx.addrs[0]); serr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if serr != nil {
		t.Fatalf("rebind %s: %v", fx.addrs[0], serr)
	}
	t.Cleanup(func() { srv.Close() })
	got := stmtDrain(t, st, ctx, bind)
	requireSameRows(t, want, got, false)
}

// TestRemoteShardedReadOnly: load-time mutators are refused on a
// remote topology — data lives on the nodes.
func TestRemoteShardedReadOnly(t *testing.T) {
	fx := buildRemoteSharded(t, 2, "range")
	if _, err := fx.remote.CreateShardedTable("x", smoothscan.HashPartitioning("a", 2), "a"); err == nil {
		t.Error("CreateShardedTable succeeded on a remote topology")
	}
	if err := fx.remote.Insert("t", 1, 2, 3, 4); err == nil {
		t.Error("Insert succeeded on a remote topology")
	}
	if err := fx.remote.CreateIndex("t", "p"); err == nil {
		t.Error("CreateIndex succeeded on a remote topology")
	}
	if err := fx.remote.Analyze("t", "val"); err == nil {
		t.Error("Analyze succeeded on a remote topology")
	}
}
