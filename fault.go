package smoothscan

import (
	"context"
	"fmt"

	"smoothscan/internal/disk"
	"smoothscan/internal/plan"
)

// Fault injection.
//
// A FaultPolicy attached to a DB's device makes reads fail, slow down
// or return corrupted bytes according to deterministic seed-driven
// rules — the chaos harness behind the robustness experiments. Every
// decision is a pure hash of (seed, rule, space, page, attempt), so a
// schedule replays identically across runs and goroutine interleavings,
// which is what lets the property tests compare a faulty run against a
// fault-free oracle byte for byte.
//
// The engine's recovery layers, bottom up:
//
//   - the buffer pool retries transient read faults (including checksum
//     mismatches from corrupted payloads) up to bufferpool.MaxReadRetries
//     times, charging simulated backoff I/O time per retry;
//   - permanent faults are never retried; they surface to the planner,
//     which degrades the plan one step at a time — parallel scans drop
//     to serial, index-driven paths (index, sort, switch) fall back to
//     Smooth Scan, Smooth Scan falls back to a full scan — re-opening
//     the query after each step;
//   - what cannot be recovered or degraded around surfaces as a typed
//     error from Run/Next/Err, never as a panic, with every worker
//     goroutine exited.
//
// Recovery is visible, not silent: ExecStats carries Retries, FaultsSeen
// and Degraded, and the Explain plan of a degraded Rows is annotated
// with each fallback taken.

// FaultPolicy is a deterministic fault-injection schedule (see
// disk.FaultPolicy). Attach one with DB.SetFaultPolicy.
type FaultPolicy = disk.FaultPolicy

// FaultRule scopes one kind of fault to a space and page range at a
// given rate.
type FaultRule = disk.FaultRule

// FaultKind selects what a matching rule injects.
type FaultKind = disk.FaultKind

// Fault kinds, re-exported from internal/disk.
const (
	// FaultTransient fails the read with ErrTransientFault; a retry
	// re-rolls the decision, so bounded retry recovers unless Rate is 1.
	FaultTransient = disk.FaultTransient
	// FaultPermanent fails the read with ErrPermanentFault on every
	// attempt; recovery happens by plan degradation, not retry.
	FaultPermanent = disk.FaultPermanent
	// FaultLatency lets the read succeed but charges ExtraCost extra
	// simulated I/O time (a latency spike, not an error).
	FaultLatency = disk.FaultLatency
	// FaultCorrupt returns a bit-flipped copy of the page; checksum
	// verification turns it into ErrPageCorrupt and a retry re-reads
	// the intact device page.
	FaultCorrupt = disk.FaultCorrupt
)

// SpaceID identifies a disk space (one table's heap or one index's
// run). Obtain concrete IDs from TableSpace and IndexSpace.
type SpaceID = disk.SpaceID

// AnySpace in a FaultRule matches every space.
const AnySpace = disk.AnySpace

// Typed fault errors, matchable with errors.Is through every layer.
var (
	// ErrTransientFault marks an injected transient read failure.
	ErrTransientFault = disk.ErrInjected
	// ErrPermanentFault marks an injected permanent read failure.
	ErrPermanentFault = disk.ErrPermanentFault
	// ErrPageCorrupt marks a page whose checksum did not verify.
	ErrPageCorrupt = disk.ErrPageCorrupt
)

// NewFaultPolicy builds a policy from a seed and rules. Rules are
// evaluated in order per page read; the first error-kind match wins,
// while latency and corruption effects accumulate.
func NewFaultPolicy(seed int64, rules ...FaultRule) *FaultPolicy {
	return disk.NewFaultPolicy(seed, rules...)
}

// IsFaultError reports whether err (or anything it wraps) is an
// injected fault or a checksum failure — the error class the planner
// degrades around.
func IsFaultError(err error) bool { return disk.IsFault(err) }

// IsTransientFault reports whether err is a retryable injected fault —
// a transient failure or a detected corruption, but not a permanent
// fault. Clients that re-run failed queries (application-level retry
// above the engine's own bounded page retry) should gate on this: a
// transient schedule re-rolls per attempt, so a fresh run can succeed,
// while retrying a permanent fault fails identically every time.
func IsTransientFault(err error) bool { return disk.IsTransient(err) }

// SetFaultPolicy attaches a fault policy to the database's device, or
// detaches it when p is nil. With no policy attached every fault path
// is dormant: reads skip checksum verification and retry entirely, and
// the fault counters in IOStats stay zero.
//
// Attaching a policy while scans are open affects their subsequent
// reads; for reproducible schedules attach the policy before starting
// the query.
func (db *DB) SetFaultPolicy(p *FaultPolicy) { db.dev.SetFaultPolicy(p) }

// FaultPolicyAttached returns the currently attached policy, or nil.
func (db *DB) FaultPolicyAttached() *FaultPolicy { return db.dev.FaultPolicy() }

// TableSpace returns the disk space holding the named table's heap
// pages, for targeting FaultRules.
func (db *DB) TableSpace(name string) (SpaceID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t.file.Space(), nil
}

// IndexSpace returns the disk space holding the named table's index on
// col, for targeting FaultRules.
func (db *DB) IndexSpace(tableName, col string) (SpaceID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	tree, ok := t.indexes[col]
	if !ok {
		return 0, fmt.Errorf("%w: %q.%q", ErrNoIndex, tableName, col)
	}
	return tree.Space(), nil
}

// clone copies the compiled query one level deep: the inputs and join
// stages the degradation ladder mutates are duplicated, everything else
// (schemas, predicates, estimates) is shared immutably.
func (cq *compiledQuery) clone() *compiledQuery {
	c := *cq
	c.inputs = make([]*tableAccess, len(cq.inputs))
	for i, a := range cq.inputs {
		aa := *a
		c.inputs[i] = &aa
	}
	c.joins = make([]*joinStage, len(cq.joins))
	for i, st := range cq.joins {
		ss := *st
		c.joins[i] = &ss
	}
	c.degraded = append([]string(nil), cq.degraded...)
	return &c
}

// degradeOnFault returns a copy of the compiled query one step further
// down the degradation ladder, or nil when nothing is left to degrade.
// The ladder, in order:
//
//  1. a parallel input drops to serial (a failing worker stops taking
//     the siblings down with it);
//  2. an index-driven path (index, sort, switch) falls back to Smooth
//     Scan — same index, but morphing tolerates regions of the heap
//     being re-read;
//  3. Smooth Scan falls back to a full heap scan, which touches no
//     index space at all.
//
// Each step preserves the query's result contract: an input whose
// order feeds a merge join stays order-delivering (or the join flips
// to hash), a plan-level ORDER BY satisfied by scan order regains it
// through a posterior sort, and a scan-level Ordered contract that a
// full scan cannot honour blocks step 3 for that input. The caller
// loops: a degraded plan that still hits the fault degrades again, so
// multi-input queries converge even when the ladder picks a healthy
// input first.
func (cq *compiledQuery) degradeOnFault() *compiledQuery {
	if cq.emptyWhy != "" {
		return nil
	}
	mergeFed := func(c *compiledQuery, i int) bool {
		return i <= 1 && len(c.joins) > 0 && c.joins[0].algo == plan.JoinMerge
	}
	// Step 1: drop parallelism.
	for i, a := range cq.inputs {
		if a.par > 1 {
			next := cq.clone()
			na := next.inputs[i]
			next.degraded = append(next.degraded,
				fmt.Sprintf("%s: parallel[%d] -> serial (fault)", a.name, a.par))
			na.par = 1
			return next
		}
	}
	// Step 2: index-driven paths fall back to Smooth Scan.
	for i, a := range cq.inputs {
		switch a.path {
		case PathIndex, PathSort, PathSwitch:
			next := cq.clone()
			na := next.inputs[i]
			next.degraded = append(next.degraded,
				fmt.Sprintf("%s: %s scan -> smooth scan (fault)", a.name, a.path))
			na.path = PathSmooth
			na.choice = nil // the optimizer's pick no longer describes the plan
			if mergeFed(next, i) {
				// An index scan delivers order even without the ordered
				// flag; the smooth replacement must opt in to keep the
				// merge join's input contract.
				na.ordered = true
			}
			na.cfg.Ordered = na.ordered
			na.pushed = len(na.residual) > 0 && !na.ordered
			return next
		}
	}
	// Step 3: Smooth Scan falls back to a full scan.
	for i, a := range cq.inputs {
		if a.path != PathSmooth {
			continue
		}
		next := cq.clone()
		na := next.inputs[i]
		if na.ordered {
			switch {
			case i == 0 && next.orderVia == "scan":
				// Plan-level ORDER BY rode the scan order; a posterior
				// sort restores it.
				next.orderVia = ""
				next.needSort = true
				next.degraded = append(next.degraded,
					fmt.Sprintf("order by %s: scan order -> posterior sort (fault)",
						na.driving.name))
			case mergeFed(next, i):
				// Order only fed the merge join; the flip below removes
				// the need for it.
			default:
				// A scan-level Ordered contract cannot survive a full
				// scan; leave this input alone.
				continue
			}
			na.ordered = false
			na.cfg.Ordered = false
		}
		if mergeFed(next, i) {
			st := next.joins[0]
			st.algo = plan.JoinHash
			st.buildLeft = next.inputs[0].estScan < next.inputs[1].estScan
			next.degraded = append(next.degraded,
				fmt.Sprintf("%s=%s: merge join -> hash join (fault)",
					st.leftName, st.rightName))
		}
		next.degraded = append(next.degraded,
			fmt.Sprintf("%s: smooth scan -> full scan (fault)", a.name))
		na.path = PathFull
		na.choice = nil
		na.pushed = len(na.residual) > 0
		return next
	}
	return nil
}

// degradeAndReopen walks the degradation ladder until a plan opens
// cleanly, returning the degraded compiled query and its opened
// operator tree. When the ladder is exhausted (or a step fails with a
// non-fault error) it returns the last error; the caller reports that
// to the user. The caller holds db.mu (read).
func (db *DB) degradeAndReopen(ctx context.Context, cq *compiledQuery, cause error) (*compiledQuery, *builtQuery, error) {
	err := cause
	for IsFaultError(err) {
		next := cq.degradeOnFault()
		if next == nil {
			return cq, nil, err
		}
		cq = next
		bq, berr := cq.build(db, ctx)
		if berr != nil {
			return cq, nil, berr
		}
		if err = bq.root.Open(); err == nil {
			return cq, bq, nil
		}
	}
	return cq, nil, err
}

// tryDegrade attempts mid-stream recovery after a fault surfaced from
// NextBatch: only before any row has been delivered (afterwards a
// restart would replay rows), and only for fault-classed errors. On
// success the Rows transparently switches to the degraded plan's
// operator tree and reports the fallbacks via ExecStats.Degraded.
func (r *Rows) tryDegrade(err error) bool {
	if r.delivered || r.closed || r.db == nil || r.compiled == nil || !IsFaultError(err) {
		return false
	}
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	cq, bq, derr := r.db.degradeAndReopen(r.ctx, r.compiled, err)
	if derr != nil {
		return false
	}
	// The failed tree is closed only after its replacement opened, so a
	// failure above leaves the Rows exactly as it was (Close still
	// closes the original operator once).
	_ = r.op.Close()
	r.op = bq.root
	r.compiled = cq
	r.counters = bq.counters
	r.smooth = bq.smooth
	r.smoothAll = bq.workers
	r.joins = bq.joins
	r.choice = cq.driving().choice
	r.plan = nil // re-render: the plan now carries degradation notes
	if r.batch != nil {
		r.batch.Reset()
	}
	r.pos = 0
	return true
}
