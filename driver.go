package smoothscan

import (
	"context"
	"errors"

	"smoothscan/internal/tuple"
)

// ErrShardUnavailable is returned (wrapped) when a shard cannot serve
// its slice of a sharded query: a remote shard node is unreachable, or
// its connection died mid-stream and the bounded reconnect budget was
// exhausted. The failing shard is identified in the wrapping message
// and flagged in ExecStats.Shards ([ShardStats].Unavailable); the
// other shards' work is cancelled cleanly, never leaked.
var ErrShardUnavailable = errors.New("smoothscan: shard unavailable")

// ShardDriver executes one shard's slice of a sharded query. ShardedDB
// holds one driver per shard: the in-process driver runs against the
// shard's own embedded DB; the remote driver ships the query over the
// wire to an ssserver instance. The interface is deliberately narrow —
// run a query, prepare a statement, identify yourself — so the
// scatter-gather machinery above it is identical for both.
//
// The methods are unexported: drivers are constructed only by
// OpenSharded (in-process) and OpenShardedRemote (remote); the type is
// exported so topology-aware callers can name it.
type ShardDriver interface {
	// describe labels the driver kind ("in-process", "remote <addr>")
	// for stats and plan rendering.
	describe() string
	// address is the shard's network address; "" for in-process shards.
	address() string
	// run executes q — a per-shard query built against the shard's
	// planning DB — and opens its cursor.
	run(ctx context.Context, q *Query) (shardCursor, error)
	// prepare compiles q into a per-shard prepared statement.
	prepare(q *Query) (shardStmt, error)
	// close releases the driver's resources (remote: its connections).
	close() error
}

// shardCursor is one shard's result stream, the driver-neutral face of
// a *Rows (in-process) or a wire stream (remote). The gather exchange
// drives it through the batched operator protocol via shardRowsOp.
type shardCursor interface {
	// fill appends rows into b, returning the count; 0 means
	// end-of-stream or error.
	fill(b *tuple.Batch) (int, error)
	// next is the row-at-a-time protocol used by the broadcast drain:
	// (row, true, nil) per row, (nil, false, err) at end (err nil on a
	// clean end-of-stream).
	next() (tuple.Row, bool, error)
	// execStats reports the shard execution's statistics; ok is false
	// while a remote stream has not yet received its closing summary.
	execStats() (ExecStats, bool)
	// ioStats reports the shard's I/O delta when the cursor itself is
	// the authority (remote: the summary shipped over the wire); ok is
	// false for in-process cursors, whose I/O is read from the shard
	// device directly.
	ioStats() (IOStats, bool)
	// close releases the stream. Idempotent.
	close() error
}

// shardStmt is one shard's prepared statement. run and explain take
// the full sharded bind set and filter it down to the statement's own
// parameters (pushdown drops Limit/OrderBy for aggregates, so a
// sub-statement may use fewer parameters than the full query).
type shardStmt interface {
	run(ctx context.Context, b Bind) (shardCursor, error)
	explain(b Bind) (*Plan, error)
	close() error
}

// localDriver runs a shard's queries against its in-process DB — the
// only driver kind before remote topologies, and still the N=1
// equivalence baseline: its cursor forwards fillBatch/Next/Err/Close
// verbatim, so a local sharded execution is byte-identical to the
// pre-driver engine.
type localDriver struct {
	db *DB
}

func (d *localDriver) describe() string { return "in-process" }
func (d *localDriver) address() string  { return "" }

func (d *localDriver) run(ctx context.Context, q *Query) (shardCursor, error) {
	rows, err := q.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &localCursor{rows: rows}, nil
}

func (d *localDriver) prepare(q *Query) (shardStmt, error) {
	st, err := d.db.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &localStmt{st: st}, nil
}

func (d *localDriver) close() error { return nil }

// localCursor adapts a *Rows to the shardCursor protocol.
type localCursor struct {
	rows *Rows
}

func (c *localCursor) fill(b *tuple.Batch) (int, error) { return c.rows.fillBatch(b) }

func (c *localCursor) next() (tuple.Row, bool, error) {
	if c.rows.Next() {
		return c.rows.cur, true, nil
	}
	return nil, false, c.rows.Err()
}

func (c *localCursor) execStats() (ExecStats, bool) { return c.rows.ExecStats(), true }

// ioStats defers to the shard device: an in-process shard's I/O delta
// is read off the device counters by the coordinator, exactly as the
// unsharded engine does.
func (c *localCursor) ioStats() (IOStats, bool) { return IOStats{}, false }

func (c *localCursor) close() error { return c.rows.Close() }

// localStmt adapts a *Stmt to the shardStmt protocol.
type localStmt struct {
	st *Stmt
}

func (s *localStmt) run(ctx context.Context, b Bind) (shardCursor, error) {
	rows, err := s.st.Run(ctx, filterBind(s.st, b))
	if err != nil {
		return nil, err
	}
	return &localCursor{rows: rows}, nil
}

func (s *localStmt) explain(b Bind) (*Plan, error) {
	return s.st.Explain(filterBind(s.st, b))
}

func (s *localStmt) close() error { return s.st.Close() }
