#!/usr/bin/env bash
# Multinode smoke: boot N race-instrumented ssserver shard nodes (each
# serving its BuildShardSlice of the shared generator's table) and
# drive them with a remote-sharded ssload (-shard-addrs), plain and
# prepared. Both runs must finish with zero failed queries, report
# shard_mode "remote" with a per-shard balance, and — the actual
# equivalence proof — reproduce the exact result digest of an
# in-process run of the same workload, sharded and unsharded. The
# digest is an order-independent checksum over every result row, so a
# match means the scatter-gather over real processes returned exactly
# the rows the embedded engine does.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
SHARDS=${SHARDS:-2}
TMP="$(mktemp -d)"
SRV_PIDS=()
cleanup() {
	for pid in "${SRV_PIDS[@]}"; do
		if kill -0 "$pid" 2>/dev/null; then
			kill "$pid" 2>/dev/null || true
			wait "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "multinode-smoke: building race-instrumented binaries"
$GO build -race -o "$TMP/ssserver" ./cmd/ssserver
$GO build -race -o "$TMP/ssload" ./cmd/ssload

ROWS=40000 DOMAIN=20000 SEED=7

echo "multinode-smoke: booting $SHARDS shard nodes"
for i in $(seq 0 $((SHARDS - 1))); do
	"$TMP/ssserver" -addr 127.0.0.1:0 -rows "$ROWS" -domain "$DOMAIN" -seed "$SEED" \
		-pool 512 -fault-admin -shard-id "$i" -shard-count "$SHARDS" \
		>"$TMP/server$i.log" 2>&1 &
	SRV_PIDS+=($!)
done

# Each node prints "... on 127.0.0.1:<port>" once listening; scrape
# the ephemeral ports rather than racing for fixed ones.
ADDRS=
for i in $(seq 0 $((SHARDS - 1))); do
	ADDR=
	for _ in $(seq 1 100); do
		ADDR="$(sed -n 's/.* on \(127\.0\.0\.1:[0-9][0-9]*\)$/\1/p' "$TMP/server$i.log" | head -n 1)"
		[ -n "$ADDR" ] && break
		if ! kill -0 "${SRV_PIDS[$i]}" 2>/dev/null; then
			cat "$TMP/server$i.log" >&2
			echo "multinode-smoke: shard $i died during startup" >&2
			exit 1
		fi
		sleep 0.1
	done
	if [ -z "$ADDR" ]; then
		cat "$TMP/server$i.log" >&2
		echo "multinode-smoke: shard $i never reported a listen address" >&2
		exit 1
	fi
	ADDRS="${ADDRS:+$ADDRS,}$ADDR"
done
echo "multinode-smoke: shard nodes up on $ADDRS"

LOAD_FLAGS=(-domain "$DOMAIN" -seed "$SEED" -clients 4 -queries 24 -selectivity 0.02)

echo "multinode-smoke: remote-sharded load"
"$TMP/ssload" -shard-addrs "$ADDRS" "${LOAD_FLAGS[@]}" \
	-require-clean -json "$TMP/remote.json"

grep -q '"shard_mode": *"remote"' "$TMP/remote.json" || {
	echo "multinode-smoke: run did not report shard_mode remote" >&2
	exit 1
}
grep -q '"shards": *\[' "$TMP/remote.json" || {
	echo "multinode-smoke: run did not report a per-shard balance" >&2
	exit 1
}

echo "multinode-smoke: remote-sharded prepared load"
"$TMP/ssload" -shard-addrs "$ADDRS" "${LOAD_FLAGS[@]}" -prepare \
	-require-clean -json "$TMP/prepared.json"

echo "multinode-smoke: in-process reference runs"
"$TMP/ssload" -rows "$ROWS" -shards "$SHARDS" "${LOAD_FLAGS[@]}" \
	-require-clean -json "$TMP/local_sharded.json" >/dev/null
"$TMP/ssload" -rows "$ROWS" "${LOAD_FLAGS[@]}" \
	-require-clean -json "$TMP/local.json" >/dev/null

digest() {
	sed -n 's/.*"digest": *\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}
D_REMOTE="$(digest "$TMP/remote.json")"
D_SHARDED="$(digest "$TMP/local_sharded.json")"
D_LOCAL="$(digest "$TMP/local.json")"
if [ -z "$D_REMOTE" ] || [ "$D_REMOTE" != "$D_SHARDED" ] || [ "$D_REMOTE" != "$D_LOCAL" ]; then
	echo "multinode-smoke: digests diverged: remote=$D_REMOTE sharded=$D_SHARDED local=$D_LOCAL" >&2
	exit 1
fi
echo "multinode-smoke: digest $D_REMOTE identical across remote-sharded, in-process sharded and unsharded"

for pid in "${SRV_PIDS[@]}"; do
	kill -TERM "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
done
SRV_PIDS=()
for i in $(seq 0 $((SHARDS - 1))); do
	echo "multinode-smoke: shard $i summary:"
	grep '^ssserver: served' "$TMP/server$i.log" || cat "$TMP/server$i.log"
done
echo "multinode-smoke: OK"
