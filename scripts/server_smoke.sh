#!/usr/bin/env bash
# Server smoke: boot ssserver on an ephemeral port and drive it with
# ssload -addr, both race-instrumented. Three remote runs — plain,
# prepared-statement and chaos — must finish with zero failed queries
# (-require-clean) and the plain run must report nonzero
# client-observed throughput. This is the CI proof that the wire path
# works end to end as processes, not just in-process test harnesses.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
TMP="$(mktemp -d)"
SRV_PID=
cleanup() {
	if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
		kill "$SRV_PID" 2>/dev/null || true
		wait "$SRV_PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "server-smoke: building race-instrumented binaries"
$GO build -race -o "$TMP/ssserver" ./cmd/ssserver
$GO build -race -o "$TMP/ssload" ./cmd/ssload

ROWS=40000 DOMAIN=20000 SEED=7
# -fault-admin so the remote harness can cold-start the pool between
# measurement windows and the chaos run can install fault schedules.
"$TMP/ssserver" -addr 127.0.0.1:0 -rows "$ROWS" -domain "$DOMAIN" -seed "$SEED" \
	-pool 512 -fault-admin >"$TMP/server.log" 2>&1 &
SRV_PID=$!

# The server prints "... on 127.0.0.1:<port>" once listening; scrape
# the ephemeral port from its log rather than racing for a fixed one.
ADDR=
for _ in $(seq 1 100); do
	ADDR="$(sed -n 's/.* on \(127\.0\.0\.1:[0-9][0-9]*\)$/\1/p' "$TMP/server.log" | head -n 1)"
	[ -n "$ADDR" ] && break
	if ! kill -0 "$SRV_PID" 2>/dev/null; then
		cat "$TMP/server.log" >&2
		echo "server-smoke: ssserver died during startup" >&2
		exit 1
	fi
	sleep 0.1
done
if [ -z "$ADDR" ]; then
	cat "$TMP/server.log" >&2
	echo "server-smoke: ssserver never reported a listen address" >&2
	exit 1
fi
echo "server-smoke: ssserver up on $ADDR"

echo "server-smoke: plain remote load"
"$TMP/ssload" -addr "$ADDR" -domain "$DOMAIN" -seed "$SEED" \
	-clients 4 -queries 24 -selectivity 0.02 \
	-require-clean -json "$TMP/plain.json"

grep -q '"mode": *"remote"' "$TMP/plain.json" || {
	echo "server-smoke: plain run did not report remote mode" >&2
	exit 1
}
TPS="$(tr ',{}' '\n' <"$TMP/plain.json" | sed -n 's/.*"tuples_per_s": *\([0-9.eE+-]*\).*/\1/p' | head -n 1)"
awk -v t="${TPS:-0}" 'BEGIN { exit (t + 0 > 0) ? 0 : 1 }' || {
	echo "server-smoke: remote throughput is zero (tuples_per_s=$TPS)" >&2
	exit 1
}
echo "server-smoke: remote throughput $TPS tuples/s"

echo "server-smoke: prepared-statement remote load"
"$TMP/ssload" -addr "$ADDR" -domain "$DOMAIN" -seed "$SEED" \
	-clients 4 -queries 24 -selectivity 0.02 -prepare \
	-require-clean -json "$TMP/prepared.json"

echo "server-smoke: chaos remote load (typed faults over the wire)"
"$TMP/ssload" -addr "$ADDR" -domain "$DOMAIN" -seed "$SEED" \
	-clients 2 -queries 12 -selectivity 0.02 -chaos \
	-require-clean -json "$TMP/chaos.json"

kill -TERM "$SRV_PID"
wait "$SRV_PID" || true
SRV_PID=
echo "server-smoke: server summary:"
grep '^ssserver: served\|^ssserver: .*stmts prepared' "$TMP/server.log" || cat "$TMP/server.log"
echo "server-smoke: OK"
