#!/bin/sh
# equivcheck.sh — the facade-compatibility gate: regenerates every
# deterministic experiment table of the reproduction harness and diffs
# it byte-for-byte against the committed golden. The 'concurrent'
# experiment is excluded because it measures wall-clock time.
#
# If this diff fails, a change altered the engine's simulated I/O or
# CPU accounting (or result shapes). That is only acceptable when the
# paper-reproduction numbers are *supposed* to change; regenerate the
# golden deliberately with:
#
#   go run ./cmd/ssbench -exp all -exclude concurrent -format csv > testdata/ssbench_golden.csv
set -eu
cd "$(dirname "$0")/.."
out="$(mktemp)"
trap 'rm -f "$out"' EXIT
go run ./cmd/ssbench -exp all -exclude concurrent -format csv > "$out"
if ! diff -u testdata/ssbench_golden.csv "$out"; then
    echo "equivcheck: ssbench output drifted from testdata/ssbench_golden.csv" >&2
    exit 1
fi
echo "equivcheck: ssbench output byte-identical to the committed golden"
