package smoothscan

import (
	"context"

	"smoothscan/internal/exec"
	"smoothscan/internal/rescache"
	"smoothscan/internal/tuple"
)

// Result-cache tier glue: how the semantic query-result cache
// (internal/rescache) plugs into the execute path.
//
// Lookup happens in startRows, under the same db.mu read lock the
// compile/bind phases hold, so the epoch revalidation sees a view
// consistent with the bind-time capture: any Insert either completed
// before the lock (its epoch bump fails the revalidation) or waits
// until after the serve. A hit builds a Rows over cachedOp — a pure
// in-memory operator — so the execution performs zero device I/O.
//
// The store path is a passive tee: a cacheable miss gets a resAccum
// that copies every delivered batch; Close admits the accumulated
// result only when the stream drained completely, error-free and
// undegraded, and only after re-checking the captured epochs (a write
// that interleaved with the scan — open-scan interference — makes the
// re-check fail and the store is skipped).
//
// Bypass rules (no lookup, no store): tier disabled, compat (DB.Scan)
// queries, plans short-circuited to empty, executions with a fault
// policy attached, and fault-degraded runs. ColdCache purges the tier
// wholesale so cold measurements stay cold.

// resAccum accumulates one execution's result stream for a
// store-on-Close, bounded by the cache's per-entry byte cap.
type resAccum struct {
	key    string
	epochs map[string]uint64
	width  int
	flat   []uint64
	rows   int
	// overflow marks a result past the per-entry cap: accumulation
	// stops and Close will not store.
	overflow bool
	capVals  int // flat length bound derived from the entry cap
}

// newResAccum sizes an accumulator for the compiled query's output.
func newResAccum(key string, epochs map[string]uint64, entryCap int64, width int) *resAccum {
	capVals := int(entryCap / 8)
	return &resAccum{key: key, epochs: epochs, width: width, capVals: capVals}
}

// addBatch copies the first n rows of b into the accumulator.
func (a *resAccum) addBatch(b *tuple.Batch, n int) {
	if a.overflow {
		return
	}
	if len(a.flat)+n*a.width > a.capVals {
		a.overflow = true
		a.flat = nil
		return
	}
	for i := 0; i < n; i++ {
		a.flat = append(a.flat, b.Row(i)...)
	}
	a.rows += n
}

// storeResult admits a drained execution's accumulated result into the
// cache — unless the result overflowed the entry cap, or a write moved
// any referenced table's epoch since bind time (the entry would be
// born stale).
func (db *DB) storeResult(a *resAccum) {
	if a.overflow || db.resCache == nil {
		return
	}
	db.mu.RLock()
	fresh := true
	for name, ep := range a.epochs {
		if db.epochOfLocked(name) != ep {
			fresh = false
			break
		}
	}
	db.mu.RUnlock()
	if !fresh {
		return
	}
	db.resCache.Store(a.key, a.flat, a.rows, a.width, a.epochs)
}

// cachedOp is the leaf operator serving a materialized result set: a
// read-only view over the cache entry's flat row data. It touches no
// device and charges no simulated cost — the entire point of the tier.
type cachedOp struct {
	schema *tuple.Schema
	flat   []uint64
	width  int
	rows   int
	pos    int
	open   bool
}

func newCachedOp(schema *tuple.Schema, v rescache.View) *cachedOp {
	return &cachedOp{schema: schema, flat: v.Flat, width: v.Width, rows: v.Rows}
}

func (c *cachedOp) Schema() *tuple.Schema { return c.schema }
func (c *cachedOp) Open() error           { c.pos = 0; c.open = true; return nil }
func (c *cachedOp) Close() error          { c.open = false; return nil }

func (c *cachedOp) Next() (tuple.Row, bool, error) {
	if !c.open {
		return nil, false, exec.ErrClosed
	}
	if c.pos >= c.rows {
		return nil, false, nil
	}
	i := c.pos
	c.pos++
	return tuple.Row(c.flat[i*c.width : (i+1)*c.width : (i+1)*c.width]), true, nil
}

func (c *cachedOp) NextBatch(out *tuple.Batch) (int, error) {
	if !c.open {
		return 0, exec.ErrClosed
	}
	out.Reset()
	for c.pos < c.rows {
		slot := out.AppendSlotRaw()
		if slot == nil {
			break
		}
		copy(slot, c.flat[c.pos*c.width:(c.pos+1)*c.width])
		c.pos++
	}
	return out.Len(), nil
}

// cacheable reports whether this execution participates in the result
// cache at all, and is the single place the bypass rules live.
func (db *DB) cacheable(cq *compiledQuery) bool {
	return db.resCache != nil && cq.resKey != "" && db.dev.FaultPolicy() == nil
}

// serveCached opens a Rows over a cache hit. The caller holds db.mu
// (read).
func (db *DB) serveCached(ctx context.Context, cq *compiledQuery, v rescache.View) *Rows {
	cq.cacheServed = true
	c := &opCounter{name: "result-cache"}
	op := &countedOp{inner: newCachedOp(cq.out, v), c: c}
	_ = op.Open() // cachedOp.Open cannot fail
	rows := &Rows{
		db:         db,
		op:         op,
		schema:     cq.out,
		baseSchema: cq.base,
		ctx:        ctx,
		counters:   []*opCounter{c},
		compiled:   cq,
		planCached: cq.planCached,
		ioStart:    db.dev.Stats(),
		cacheHit:   true,
		cacheBytes: v.Bytes,
		cacheAge:   v.Age,
	}
	db.openScans.Add(1)
	return rows
}
