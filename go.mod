module smoothscan

go 1.23
