module smoothscan

go 1.24
