// Package smoothscan is a from-scratch Go reproduction of "Smooth
// Scan: Statistics-Oblivious Access Paths" (Borovica-Gajic et al.,
// ICDE 2015): a storage engine whose table scans morph continuously
// between index look-ups and full table scans at run time, delivering
// near-optimal performance at every selectivity without requiring
// accurate optimizer statistics.
//
// The package is the public facade over the engine:
//
//	db, _ := smoothscan.Open(smoothscan.Options{})
//	tb, _ := db.CreateTable("t", "id", "val")
//	tb.Append(1, 42)
//	tb.Finish()
//	db.CreateIndex("t", "val")
//	rows, _ := db.Query("t").Where("val", smoothscan.Between(0, 100)).Run(ctx)
//	for rows.Next() { use(rows.Row()) }
//
// Scans default to the adaptive Smooth Scan path (Elastic policy,
// Eager trigger — the paper's recommendation); ScanOptions selects the
// traditional paths, other morphing policies and triggers, and
// order-preserving delivery. Device-level I/O accounting (simulated
// time, random vs sequential accesses) is available through Stats,
// mirroring the measurements of the paper's evaluation.
package smoothscan

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/costmodel"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/heap"
	"smoothscan/internal/optimizer"
	"smoothscan/internal/plan"
	"smoothscan/internal/rescache"
	"smoothscan/internal/tuple"
)

// Profile describes a simulated storage device.
type Profile = disk.Profile

// Device profiles matching the paper's hardware assumptions.
var (
	// HDD: random access 10x slower than sequential.
	HDD = disk.HDD
	// SSD: random access 2x slower than sequential.
	SSD = disk.SSD
)

// IOStats are device-level counters (simulated time in cost units,
// where one sequential 8 KB page read costs 1).
type IOStats = disk.Stats

// Policy selects how the morphing region evolves (paper Section III-B).
type Policy = core.Policy

// Morphing policies.
const (
	// Greedy doubles the region after every probe.
	Greedy = core.Greedy
	// SelectivityIncrease grows when local density reaches the global
	// average and never shrinks.
	SelectivityIncrease = core.SelectivityIncrease
	// Elastic grows in dense regions and shrinks in sparse ones; the
	// paper's recommended default.
	Elastic = core.Elastic
)

// Trigger selects when morphing starts (paper Section III-C).
type Trigger = core.Trigger

// Morphing triggers.
const (
	// Eager morphs from the first tuple; the paper's default.
	Eager = core.Eager
	// OptimizerDriven morphs when the optimizer's cardinality
	// estimate is exceeded.
	OptimizerDriven = core.OptimizerDriven
	// SLADriven morphs at the cost-model point beyond which a
	// worst-case completion would violate the SLA bound.
	SLADriven = core.SLADriven
)

// SmoothStats exposes the Smooth Scan operator's run-time counters.
type SmoothStats = core.Stats

// AccessPath selects the scan implementation.
type AccessPath int

// Access paths available to Scan.
const (
	// PathSmooth is the adaptive Smooth Scan (default).
	PathSmooth AccessPath = iota
	// PathAuto lets the cost-based optimizer pick among the
	// traditional paths using whatever statistics exist — the
	// baseline whose fragility the paper demonstrates.
	PathAuto
	// PathFull forces a full table scan.
	PathFull
	// PathIndex forces a classic non-clustered index scan.
	PathIndex
	// PathSort forces a sort scan (bitmap heap scan).
	PathSort
	// PathSwitch forces the binary-switching adaptive baseline.
	PathSwitch
)

func (p AccessPath) String() string {
	switch p {
	case PathSmooth:
		return "smooth"
	case PathAuto:
		return "auto"
	case PathFull:
		return "full"
	case PathIndex:
		return "index"
	case PathSort:
		return "sort"
	case PathSwitch:
		return "switch"
	default:
		return fmt.Sprintf("AccessPath(%d)", int(p))
	}
}

// Options configures a database.
type Options struct {
	// Disk is the device profile (default HDD).
	Disk Profile
	// PoolPages is the buffer pool capacity in pages (default 1024).
	PoolPages int
	// PlanCache bounds the DB-wide plan-template cache in entries
	// (default 128). Ad-hoc queries whose canonical shape is cached
	// skip the structural compile and pay only the bind phase, exactly
	// like a prepared Stmt. Negative disables the cache; prepared
	// statements still reuse their own template.
	PlanCache int
	// ResultCacheBytes bounds the semantic query-result cache tier in
	// bytes: repeated queries of the same canonical shape and constant
	// values are served their materialized result set from memory with
	// zero device I/O, invalidated by per-table write epochs (see
	// docs/CACHING.md). The tier is opt-in: zero (the default) and
	// negative both disable it, keeping execution byte-identical to an
	// engine without the tier (pinned by `make equiv`).
	//
	// Not to be confused with ScanOptions.ResultCacheBudget, which
	// bounds the scan-internal Result Cache of one ordered Smooth Scan
	// (paper Section IV-A) and has no cross-query effect.
	ResultCacheBytes int64
	// ResultCacheTTL expires result-cache entries this long after
	// creation, purged in batch sweeps; zero = no expiry. Ignored
	// unless ResultCacheBytes is positive.
	ResultCacheTTL time.Duration
}

// DB is an embedded, read-optimised database: bulk-load tables, build
// secondary indexes, scan with any access path.
//
// Concurrency: a DB is safe to share across goroutines for reads —
// any number of Scans (serial or parallel) may run concurrently, each
// returning its own Rows. A Rows is NOT safe to share: exactly one
// goroutine may drive it. Mutating operations (CreateTable,
// CreateIndex, Analyze, Insert, Compact) are mutually serialized but
// must not run while scans are open; so ColdCache and ResetStats,
// which would corrupt in-flight iterators, return ErrScansOpen while
// any Rows is open.
type DB struct {
	dev    *disk.Device
	pool   *bufferpool.Pool
	mu     sync.RWMutex // guards tables
	tables map[string]*table

	// planCache holds compiled plan templates keyed by canonical query
	// shape; nil when Options.PlanCache is negative.
	planCache *plan.Cache

	// resCache is the semantic query-result cache tier; nil unless
	// Options.ResultCacheBytes is positive.
	resCache *rescache.Cache

	// openScans counts Rows handed out and not yet closed; it gates
	// the cache/stats reset entry points.
	openScans atomic.Int64
}

type table struct {
	file    *heap.File
	builder *heap.Builder // nil once finished
	indexes map[string]*btree.Tree
	stats   *optimizer.TableStats // nil until Analyze

	// epoch counts the writes the table has taken since creation
	// (guarded by db.mu). Result-cache entries capture the epochs of
	// every table they read and revalidate them at lookup, so a cached
	// result can never outlive a write to its inputs.
	epoch uint64
}

// Open creates an empty database on a fresh simulated device.
func Open(opts Options) (*DB, error) {
	if opts.Disk.PageSize == 0 {
		opts.Disk = HDD
	}
	if opts.Disk.PageSize < 0 {
		return nil, fmt.Errorf("smoothscan: negative page size %d", opts.Disk.PageSize)
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 1024
	}
	if opts.PoolPages < 1 {
		return nil, fmt.Errorf("smoothscan: PoolPages %d", opts.PoolPages)
	}
	if opts.PlanCache == 0 {
		opts.PlanCache = 128
	}
	dev := disk.NewDevice(opts.Disk)
	db := &DB{
		dev:    dev,
		pool:   bufferpool.New(dev, opts.PoolPages),
		tables: make(map[string]*table),
	}
	if opts.PlanCache > 0 {
		db.planCache = plan.NewCache(opts.PlanCache)
	}
	db.resCache = rescache.New(opts.ResultCacheBytes, opts.ResultCacheTTL)
	return db, nil
}

// PlanCacheStats is a snapshot of the DB-wide plan-template cache:
// hit/miss/eviction counters and the current population. All zero
// when the cache is disabled (Options.PlanCache < 0).
type PlanCacheStats = plan.CacheStats

// PlanCacheStats snapshots the plan-template cache counters. Every
// ad-hoc Query.Run or Explain counts one hit or miss; Stmt executions
// bind their own template and touch the cache only at Prepare.
func (db *DB) PlanCacheStats() PlanCacheStats {
	if db.planCache == nil {
		return PlanCacheStats{}
	}
	return db.planCache.Stats()
}

// ResultCacheStats is a snapshot of the semantic query-result cache
// tier: lookup/store/invalidation/eviction counters and the current
// population. All zero when the tier is disabled (the default).
type ResultCacheStats = rescache.Stats

// ResultCacheStats snapshots the result-cache counters. Hits count
// executions served a materialized result with zero device I/O;
// InvalidatedStale counts entries dropped because a write moved a
// referenced table's epoch past the entry's snapshot.
func (db *DB) ResultCacheStats() ResultCacheStats { return db.resCache.Stats() }

// ResultCacheSweepExpired runs the result cache's TTL batch-purge
// sweep immediately and returns the number of entries removed. The
// cache also runs the sweep on its own every few dozen stores; this
// entry point exists for maintenance windows and tests.
func (db *DB) ResultCacheSweepExpired() int { return db.resCache.SweepExpired() }

// epochOfLocked returns the named table's write epoch; the caller
// holds db.mu (read). Unknown tables report epoch 0 — they cannot be
// referenced by a cache entry in the first place, since tables are
// never dropped.
func (db *DB) epochOfLocked(name string) uint64 {
	if t, ok := db.tables[name]; ok {
		return t.epoch
	}
	return 0
}

// ErrNoTable is returned for operations on unknown tables.
var ErrNoTable = errors.New("smoothscan: no such table")

// ErrNoIndex is returned when a scan needs an index that does not
// exist.
var ErrNoIndex = errors.New("smoothscan: no index on column")

// ErrScansOpen is returned by ColdCache and ResetStats while Rows are
// open: resetting the buffer pool or the device counters under an
// in-flight iterator would silently corrupt its results, so the
// operation is refused instead. Close every Rows first.
var ErrScansOpen = errors.New("smoothscan: operation unsafe while scans are open")

// TableBuilder loads rows into a new table. All columns are int64.
type TableBuilder struct {
	tab  *table
	cols int
}

// CreateTable creates a table with the named int64 columns and returns
// its loader. Call Finish before querying or indexing.
func (db *DB) CreateTable(name string, columns ...string) (*TableBuilder, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("smoothscan: table %q exists", name)
	}
	cols := make([]tuple.Column, len(columns))
	for i, c := range columns {
		cols[i] = tuple.Column{Name: c, Type: tuple.Int64}
	}
	schema, err := tuple.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	file, err := heap.Create(db.dev, schema)
	if err != nil {
		return nil, err
	}
	t := &table{file: file, builder: file.NewBuilder(), indexes: map[string]*btree.Tree{}}
	db.tables[name] = t
	return &TableBuilder{tab: t, cols: len(columns)}, nil
}

// Append adds one row; values must match the column count.
func (b *TableBuilder) Append(vals ...int64) error {
	if b.tab.builder == nil {
		return fmt.Errorf("smoothscan: table already finished")
	}
	if len(vals) != b.cols {
		return fmt.Errorf("smoothscan: %d values for %d columns", len(vals), b.cols)
	}
	return b.tab.builder.Append(tuple.IntsRow(vals...))
}

// Finish flushes the load. The table becomes queryable; further
// Appends fail.
func (b *TableBuilder) Finish() error {
	if b.tab.builder == nil {
		return nil
	}
	err := b.tab.builder.Flush()
	b.tab.builder = nil
	return err
}

// table looks a finished table up under the read lock.
func (db *DB) table(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableLocked(name)
}

// tableLocked is table for callers already holding db.mu.
func (db *DB) tableLocked(name string) (*table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	if t.builder != nil {
		return nil, fmt.Errorf("smoothscan: table %q is still loading (call Finish)", name)
	}
	return t, nil
}

// CreateIndex builds a non-clustered B+-tree index on the column.
func (db *DB) CreateIndex(tableName, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(tableName)
	if err != nil {
		return err
	}
	col := t.file.Schema().ColIndex(column)
	if col < 0 {
		return fmt.Errorf("smoothscan: table %q has no column %q", tableName, column)
	}
	tree, err := btree.BuildOnColumn(db.dev, t.file, col)
	if err != nil {
		return err
	}
	t.indexes[column] = tree
	return nil
}

// Analyze collects accurate statistics (histograms) for the given
// columns — what a DBA's ANALYZE run does. Scans with PathAuto use
// them; without Analyze the optimizer falls back to uniformity
// assumptions, the paper's recipe for misestimation.
func (db *DB) Analyze(tableName string, columns ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(tableName)
	if err != nil {
		return err
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		cols[i] = t.file.Schema().ColIndex(c)
		if cols[i] < 0 {
			return fmt.Errorf("smoothscan: table %q has no column %q", tableName, c)
		}
	}
	stats, err := optimizer.CollectStats(t.file, func(p int64) ([]byte, error) {
		return db.dev.ReadPage(t.file.Space(), p)
	}, cols, 64)
	if err != nil {
		return err
	}
	t.stats = stats
	return nil
}

// Insert appends one row to a finished table and updates every index
// on it incrementally (new entries live in an in-memory index delta
// until Compact merges them; scans see them immediately). Statistics
// collected by Analyze become stale; re-run Analyze after bulk
// ingestion.
func (db *DB) Insert(tableName string, vals ...int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(tableName)
	if err != nil {
		return err
	}
	if len(vals) != t.file.Schema().NumCols() {
		return fmt.Errorf("smoothscan: %d values for %d columns", len(vals), t.file.Schema().NumCols())
	}
	row := tuple.IntsRow(vals...)
	tid, err := t.file.Insert(row)
	if err != nil {
		return err
	}
	db.pool.InvalidatePage(t.file.Space(), tid.Page)
	for column, tree := range t.indexes {
		col := t.file.Schema().ColIndex(column)
		tree.Insert(btree.Entry{Key: row.Int(col), TID: tid})
	}
	// The write invalidates every cached result that read this table:
	// bumping the epoch makes their lookup revalidation fail.
	t.epoch++
	return nil
}

// Compact merges every index's insert delta into its on-disk run,
// restoring the contiguous-leaf layout that makes index traversals
// sequential. A maintenance operation, like the original index build.
func (db *DB) Compact(tableName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(tableName)
	if err != nil {
		return err
	}
	for _, tree := range t.indexes {
		if err := tree.Compact(db.dev, db.pool); err != nil {
			return err
		}
	}
	return nil
}

// NumRows returns the row count of a table.
func (db *DB) NumRows(tableName string) (int64, error) {
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	return t.file.NumTuples(), nil
}

// NumPages returns the heap page count of a table.
func (db *DB) NumPages(tableName string) (int64, error) {
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	return t.file.NumPages(), nil
}

// TableInfo describes one table: name, column order, which columns are
// indexed, and the loaded row count. It is the catalog projection a
// sharding coordinator needs to mirror a remote shard's schema.
type TableInfo struct {
	Name    string
	Columns []string
	Indexed []string
	Rows    int64
}

// Tables returns the catalog: every finished table, sorted by name.
func (db *DB) Tables() []TableInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TableInfo, 0, len(names))
	for _, name := range names {
		t := db.tables[name]
		if t.builder != nil {
			continue // still loading; not queryable yet
		}
		info := TableInfo{Name: name, Rows: t.file.NumTuples()}
		for _, c := range t.file.Schema().Columns() {
			info.Columns = append(info.Columns, c.Name)
		}
		for col := range t.indexes {
			info.Indexed = append(info.Indexed, col)
		}
		sort.Strings(info.Indexed)
		out = append(out, info)
	}
	return out
}

// Stats returns the device counters accumulated so far.
func (db *DB) Stats() IOStats { return db.dev.Stats() }

// ResetStats zeroes the device counters. It is refused with
// ErrScansOpen while any Rows is open: in-flight scans are still
// charging the counters, and zeroing them mid-query would corrupt
// both the query's and the device's accounting. The check excludes
// concurrent Scan calls (both hold db.mu), so a scan is either fully
// registered and refused here, or starts after the reset.
func (db *DB) ResetStats() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n := db.openScans.Load(); n > 0 {
		return fmt.Errorf("%w: ResetStats with %d open", ErrScansOpen, n)
	}
	db.dev.ResetStats()
	return nil
}

// ColdCache empties the buffer pool (and resets its counters), putting
// the system in the cold state the paper measures. It is refused with
// ErrScansOpen while any Rows is open: evicting every frame under an
// in-flight iterator would silently change what that scan reads and
// pays for. Like ResetStats, it excludes concurrent Scan calls.
func (db *DB) ColdCache() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n := db.openScans.Load(); n > 0 {
		return fmt.Errorf("%w: ColdCache with %d open", ErrScansOpen, n)
	}
	db.pool.Reset()
	// A cold-state measurement must not be served a warm materialized
	// result either: the result-cache tier empties with the pool.
	db.resCache.Purge()
	return nil
}

// ScanOptions configures a Scan.
type ScanOptions struct {
	// Path selects the access path (default PathSmooth).
	Path AccessPath
	// Policy is the Smooth Scan morphing policy (default Elastic).
	Policy Policy
	// Trigger is the Smooth Scan morphing trigger (default Eager).
	Trigger Trigger
	// Ordered requests output in index-key order. Smooth, index and
	// sort scans deliver it natively (sort scan via a posterior
	// sort); full and switch scans return an error when Ordered is
	// set, as they cannot.
	Ordered bool
	// EstimatedRows is the optimizer's cardinality estimate, used by
	// the OptimizerDriven trigger and the PathSwitch threshold. When
	// zero, the estimate comes from table statistics (Analyze) or the
	// uniformity assumption.
	EstimatedRows int64
	// SLABound is the operator cost bound for the SLADriven trigger,
	// in cost units.
	SLABound float64
	// MaxRegionPages caps the Smooth Scan morphing region (default
	// 2048 pages = 16 MB, the paper's optimum).
	MaxRegionPages int64
	// ResultCacheBudget bounds the ordered Smooth Scan's Result Cache
	// resident memory in bytes; beyond it, far partitions spill to
	// overflow files (charged as sequential I/O). Zero = unlimited.
	// A parallel scan splits the budget evenly across its workers.
	ResultCacheBudget int64
	// Parallelism is the number of scan workers. Values <= 1 select
	// the classic serial operator. For PathSmooth and PathFull the
	// table's heap pages are partitioned into that many disjoint
	// shards, one independently-morphing worker each, merged through
	// an unordered fan-in (or a key-ordered merge when Ordered is
	// set); the result rows are exactly those of the serial scan. The
	// other access paths ignore the knob and run serially. The value
	// is clamped to the table's page count and to MaxParallelism.
	Parallelism int
}

// MaxParallelism caps ScanOptions.Parallelism.
const MaxParallelism = 64

// Rows iterates a scan result. Internally it drains the operator tree
// through the batched (vectorized) protocol: Next refills a private
// row batch once per exec.DefaultBatchSize rows and then serves views
// into it, so the per-row cost of the public iterator is a bounds
// check and a slice header.
//
// A Rows is owned by a single goroutine — share the DB, not the Rows.
// Always Close a Rows when done with it; open Rows block ColdCache
// and ResetStats.
type Rows struct {
	db         *DB
	op         exec.Operator
	schema     *tuple.Schema
	baseSchema *tuple.Schema // scanned table's schema (Column miss reasons)
	ctx        context.Context
	batch      *tuple.Batch
	pos        int
	cur        tuple.Row
	err        error
	smooth     *core.SmoothScan
	smoothAll  []*core.SmoothScan // parallel workers (PathSmooth)
	joins      []exec.JoinStatser // batched join operators, leaf-most first
	choice     *optimizer.Choice
	counters   []*opCounter
	compiled   *compiledQuery // replaced wholesale on fault degradation; renders Plan lazily
	plan       *Plan          // cached Plan() result
	ioStart    IOStats
	ioDelta    IOStats // device delta frozen at Close
	planCached bool    // template reused (plan cache hit or prepared Stmt)
	delivered  bool    // at least one row handed out (blocks mid-stream degradation)
	done       bool
	closed     bool
	closeErr   error // first Close error, replayed by idempotent re-Close

	// Result-cache tier state: acc accumulates the stream for a
	// store-on-Close when the execution is cacheable; the cache*
	// fields describe a served hit (surfaced via ExecStats.ResultCache).
	acc        *resAccum
	cacheHit   bool
	cacheBytes int64
	cacheAge   time.Duration
}

// Next advances to the next row; it returns false at the end of the
// scan or on error (check Err).
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	if r.batch == nil {
		r.batch = tuple.NewBatchFor(r.schema, exec.DefaultBatchSize)
	}
	for r.pos >= r.batch.Len() {
		// Cancellation is checked once per batch refill, never per
		// tuple, to keep the hot path a bounds check.
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				r.err = err
				r.done = true
				return false
			}
		}
		n, err := exec.NextBatch(r.op, r.batch)
		if err != nil {
			// A fault surfacing before any row was delivered can still
			// be degraded around (tryDegrade swaps in a fallback plan
			// and the loop refills from it); afterwards it is final.
			if r.tryDegrade(err) {
				continue
			}
			r.err = err
			r.done = true
			return false
		}
		if n == 0 {
			r.done = true
			return false
		}
		if r.acc != nil {
			r.acc.addBatch(r.batch, n)
		}
		r.pos = 0
	}
	r.cur = r.batch.Row(r.pos)
	r.pos++
	r.delivered = true
	return true
}

// fillBatch drains the scan batch-at-a-time into a caller-owned batch
// — the hook the sharded gather's worker adapter drives, keeping the
// shard-to-exchange hop zero-copy per row. It shares Next's semantics
// (per-batch cancellation check, open-stream fault degradation) but
// bypasses the Rows' own iteration state; callers use either fillBatch
// or Next on a given Rows, never both.
func (r *Rows) fillBatch(b *tuple.Batch) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.done {
		return 0, nil
	}
	for {
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				r.err = err
				r.done = true
				return 0, err
			}
		}
		n, err := exec.NextBatch(r.op, b)
		if err != nil {
			if r.tryDegrade(err) {
				continue
			}
			r.err = err
			r.done = true
			return 0, err
		}
		if n == 0 {
			r.done = true
			return 0, nil
		}
		if r.acc != nil {
			r.acc.addBatch(b, n)
		}
		r.delivered = true
		return n, nil
	}
}

// Row returns the current row's values. The slice is valid until the
// next call to Next.
func (r *Rows) Row() []int64 {
	out := make([]int64, len(r.cur))
	for i := range r.cur {
		out[i] = r.cur.Int(i)
	}
	return out
}

// CopyRow copies the current row's values into dst and returns the
// number of values copied (the smaller of the row width and len(dst)).
// Unlike Row it allocates nothing, so streaming consumers — the wire
// server's result encoder is the canonical one — can drain a scan into
// a reused buffer.
func (r *Rows) CopyRow(dst []int64) int {
	n := len(r.cur)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.cur.Int(i)
	}
	return n
}

// Columns returns the names of the result columns, in output order —
// the schema Select/GroupBy produced, or the table's columns when the
// query projected nothing away.
func (r *Rows) Columns() []string {
	out := make([]string, r.schema.NumCols())
	for i := range out {
		out[i] = r.schema.Col(i).Name
	}
	return out
}

// Col returns the current row's value for the named column, reporting
// false when the name does not resolve in the row schema. The false
// return folds two distinct situations together — a column the table
// never had, and one the query projected away via Select or GroupBy;
// use Column when the miss reason matters.
func (r *Rows) Col(name string) (int64, bool) {
	i := r.schema.ColIndex(name)
	if i < 0 {
		return 0, false
	}
	return r.cur.Int(i), true
}

// Err returns the first error encountered.
func (r *Rows) Err() error { return r.err }

// Close releases the scan (stopping any parallel workers still
// running) and freezes the query's ExecStats. Closing an
// already-closed Rows is idempotent: the first call's error (if any)
// is recorded and returned again by every later call, and is also
// surfaced through Err when iteration itself saw no earlier error.
func (r *Rows) Close() error {
	if r.closed {
		return r.closeErr
	}
	r.closed = true
	r.closeErr = r.op.Close()
	if r.err == nil && r.closeErr != nil {
		r.err = r.closeErr
	}
	if r.db != nil {
		// Workers have quiesced and flushed their deferred CPU charges
		// by the time op.Close returns, so the delta is complete.
		r.ioDelta = r.db.dev.Stats().Sub(r.ioStart)
		r.db.openScans.Add(-1)
	}
	// A fully drained, error-free, non-degraded stream feeds the
	// result cache (no device access; epochs re-checked inside).
	if r.acc != nil && r.done && r.err == nil &&
		(r.compiled == nil || len(r.compiled.degraded) == 0) {
		r.db.storeResult(r.acc)
	}
	return r.closeErr
}

// Plan returns the compiled plan the query executed — the same tree
// Query.Explain renders. The tree is rendered lazily on first call,
// so queries that never ask for it pay nothing.
func (r *Rows) Plan() *Plan {
	if r.plan == nil && r.compiled != nil {
		r.plan = r.compiled.plan()
	}
	return r.plan
}

// SmoothStats returns the Smooth Scan operator counters when the scan
// used PathSmooth. For a parallel scan it returns the per-worker
// counters aggregated into query totals (core.AggregateStats); read it
// after draining or closing the scan, when the workers have quiesced.
func (r *Rows) SmoothStats() (SmoothStats, bool) {
	if r.smooth != nil {
		return r.smooth.Stats(), true
	}
	if len(r.smoothAll) > 0 {
		return aggregateWorkers(r.smoothAll), true
	}
	return SmoothStats{}, false
}

// Choice returns the optimizer's decision when the scan used PathAuto.
func (r *Rows) Choice() (path string, estimatedRows int64, ok bool) {
	if r.choice == nil {
		return "", 0, false
	}
	return r.choice.Path.String(), r.choice.EstimatedCard, true
}

// Scan returns the rows of tableName whose column value v satisfies
// lo <= v < hi, using the configured access path. All paths except
// PathFull require an index on the column (CreateIndex).
//
// Scan is a thin wrapper over the Query builder —
// db.Query(table).Where(column, Between(lo, hi)).WithOptions(opts) —
// kept for compatibility: it compiles through the same
// plan-construction step, produces byte-identical results and
// simulated costs to the pre-builder implementation (the harness's
// `ssbench -exp all` output is diffed against a committed golden in
// CI), and preserves the historical strictness the builder relaxes
// (a missing index is an error rather than a full-scan fallback, and
// an empty range still walks the index).
//
// Scan is effectively deprecated for new code: prefer the Query
// builder (db.Query, or the backend-neutral Engine.Table), which
// composes with joins, grouping, prepared statements and every Engine
// backend — sharded and remote included. Scan remains supported and
// the golden-diffed harness pins its behaviour, but it gains no new
// capability. (The comment deliberately avoids the machine-readable
// "Deprecated:" marker so existing callers stay lint-clean.)
func (db *DB) Scan(tableName, column string, lo, hi int64, opts ScanOptions) (*Rows, error) {
	return db.ScanContext(context.Background(), tableName, column, lo, hi, opts)
}

// ScanContext is Scan with cancellation: ctx deadlines and cancels
// propagate to the returned Rows (checked once per batch refill) and
// to any parallel scan workers, which observe cancellation between
// batches and exit promptly.
func (db *DB) ScanContext(ctx context.Context, tableName, column string, lo, hi int64, opts ScanOptions) (*Rows, error) {
	q := db.Query(tableName).Where(column, Between(lo, hi)).WithOptions(opts)
	q.compat = true
	return q.Run(ctx)
}

// costParams derives Section V cost-model parameters for a table.
func (db *DB) costParams(t *table) costmodel.Params {
	return costmodel.Params{
		TupleSize: t.file.Schema().TupleSize(),
		PageSize:  db.dev.PageSize(),
		KeySize:   8,
		NumTuples: t.file.NumTuples(),
		RandCost:  db.dev.Profile().RandCost,
		SeqCost:   db.dev.Profile().SeqCost,
	}
}

// FullScanCost returns the cost-model estimate of a full scan of the
// table, useful for expressing SLA bounds ("two full scans").
func (db *DB) FullScanCost(tableName string) (float64, error) {
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	return db.costParams(t).FullScanCost(), nil
}
