package smoothscan

import (
	"context"
	"fmt"
	"time"

	"smoothscan/internal/core"
	"smoothscan/internal/exec"
	"smoothscan/internal/tuple"
)

// ResultCacheExec describes one execution's interaction with the
// semantic result-cache tier (zero value when the tier is disabled or
// the execution bypassed it).
type ResultCacheExec struct {
	// Hit reports that the execution was served a materialized result
	// from the cache, with zero device I/O.
	Hit bool
	// Bytes is the served entry's accounted size; zero on a miss.
	Bytes int64
	// Age is how long ago the served entry was created; zero on a miss.
	Age time.Duration
}

// JoinStats exposes one batched join operator's counters: rows
// consumed from each input, hash build size, output rows, and — for a
// hash join — the device I/O delta accrued while the build input was
// drained. For a single join, the probe side's I/O is the query's IO
// total minus BuildIO; in a chain, a later stage building on the
// accumulated left side measures a window that contains the earlier
// stages' I/O, so per-stage deltas nest rather than sum.
type JoinStats = exec.JoinStats

// OperatorStats counts one plan operator's output.
type OperatorStats struct {
	// Name identifies the operator ("smooth", "filter", "hash-agg", ...).
	Name string
	// Rows is the number of rows the operator produced.
	Rows int64
	// Batches is the number of non-empty batches it produced.
	Batches int64
}

// ExecStats unifies a query's observability in one place: the device
// I/O delta, the Smooth Scan morphing counters (aggregated across
// parallel workers and individually per worker), and per-operator
// row/batch counts. Retrieve it from a Rows — the numbers are complete
// once the Rows is closed (parallel workers have quiesced and flushed
// their deferred CPU charges by then).
type ExecStats struct {
	// IO is the device-counter delta between the query's start and the
	// moment the stats were taken (Close time, for a closed Rows). On
	// a DB running concurrent scans the delta includes their traffic
	// too — the device is shared; single-query accounting is exact
	// when the query runs alone, the way the harness measures.
	IO IOStats
	// HasSmooth reports whether the driving table's access path was a
	// Smooth Scan, i.e. whether Smooth (and, when parallel, Workers)
	// is set. For a join query this covers the first (driving) input;
	// the join inputs' row counts are in Joins and Operators.
	HasSmooth bool
	// Smooth holds the morphing counters: the operator's own for a
	// serial scan, the core.AggregateStats roll-up for a parallel one.
	// For a parallel scan still running, the roll-up is zero — worker
	// counters are only read once the workers have quiesced (the scan
	// drained to end-of-stream or closed), because reading them while
	// worker goroutines still mutate them would race.
	Smooth SmoothStats
	// Workers holds per-worker morphing counters for a parallel Smooth
	// Scan, in shard (heap page) order; nil otherwise (including while
	// a parallel scan is still running, see Smooth).
	Workers []SmoothStats
	// Joins holds the join operators' build/probe counters, in
	// leaf-to-root order of the left-deep join tree; nil for
	// single-table queries.
	Joins []JoinStats
	// Operators counts rows and batches per plan operator, leaf first.
	Operators []OperatorStats
	// RowsReturned is the number of rows the root operator delivered
	// to the caller so far.
	RowsReturned int64
	// PlanCacheHit reports whether this execution reused a compiled
	// plan template instead of compiling the query structure afresh:
	// true for every Stmt.Run, and for an ad-hoc Query.Run whose
	// canonical shape was in the DB-wide plan cache.
	PlanCacheHit bool
	// ResultCache reports whether (and what) the semantic result-cache
	// tier served this execution. Distinct from PlanCacheHit: the plan
	// cache skips recompiling the query's structure, the result cache
	// skips executing it at all.
	ResultCache ResultCacheExec
	// Retries is the number of bounded device-read retries the query
	// window saw (IO.Retries): transient faults and corrupted pages the
	// buffer pool recovered by re-reading. Zero without a FaultPolicy.
	Retries int64
	// FaultsSeen totals the injected-fault events in the query window:
	// failed reads (transient and permanent), corrupted pages served,
	// and latency spikes charged. Zero without a FaultPolicy.
	FaultsSeen int64
	// Degraded lists the fault-recovery plan fallbacks this execution
	// applied, in order (see Plan.Degraded); nil when the query ran as
	// compiled. For a sharded query the entries are prefixed with the
	// degrading shard ("shard 2: ...").
	Degraded []string
	// Shards is the per-shard breakdown of a sharded query — pruning
	// decisions, per-shard I/O, rows and morphing counters — in shard
	// order; nil for unsharded queries.
	Shards []ShardStats
}

// ExecStats returns the query's unified execution statistics. It may
// be called while the scan is still running (counters are then
// partial); after Close the snapshot is final, including the I/O
// delta frozen at Close time.
func (r *Rows) ExecStats() ExecStats {
	st := ExecStats{}
	if r.closed {
		st.IO = r.ioDelta
	} else if r.db != nil {
		st.IO = r.db.dev.Stats().Sub(r.ioStart)
	}
	switch {
	case r.smooth != nil:
		// Serial: the operator runs on the caller's goroutine, so a
		// live snapshot is safe.
		st.HasSmooth = true
		st.Smooth = r.smooth.Stats()
	case len(r.smoothAll) > 0:
		st.HasSmooth = true
		if r.closed || r.done {
			// Workers have quiesced; their counters are stable.
			st.Smooth = aggregateWorkers(r.smoothAll)
			st.Workers = make([]SmoothStats, len(r.smoothAll))
			for i, w := range r.smoothAll {
				st.Workers[i] = w.Stats()
			}
		}
	}
	for _, j := range r.joins {
		st.Joins = append(st.Joins, j.JoinStats())
	}
	for _, c := range r.counters {
		st.Operators = append(st.Operators, OperatorStats{Name: c.name, Rows: c.rows, Batches: c.batches})
	}
	if n := len(r.counters); n > 0 {
		st.RowsReturned = r.counters[n-1].rows
	}
	st.PlanCacheHit = r.planCached
	st.ResultCache = ResultCacheExec{Hit: r.cacheHit, Bytes: r.cacheBytes, Age: r.cacheAge}
	st.Retries = st.IO.Retries
	st.FaultsSeen = st.IO.Faults + st.IO.Corruptions + st.IO.LatencySpikes
	if r.compiled != nil && len(r.compiled.degraded) > 0 {
		st.Degraded = append([]string(nil), r.compiled.degraded...)
	}
	return st
}

// ShardStats is one shard's slice of a sharded query's execution:
// whether (and why) the planner pruned it, its device I/O delta, and
// — for shards that ran — the rows it delivered and its own morphing
// and degradation state.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Owns describes the shard's key ownership ("[100,200)", "h%4=2").
	Owns string
	// Addr is the shard's network address for a remote shard; "" for
	// in-process shards.
	Addr string
	// Unavailable reports that the shard failed as unreachable during
	// this execution (errors.Is(err, ErrShardUnavailable)): the node
	// was down, or its connection died and reconnection was exhausted.
	Unavailable bool
	// Pruned reports that the planner excluded the shard — it ran no
	// operator and performed zero device I/O.
	Pruned bool
	// PrunedWhy is the pruning (or empty-plan) reason for a pruned
	// shard; "" for shards that ran.
	PrunedWhy string
	// IO is the shard device's counter delta over the query window
	// (zero for pruned shards when the query ran alone).
	IO IOStats
	// Rows is the number of rows the shard's slice delivered into the
	// gather; filled once the query has drained or closed.
	Rows int64
	// PlanCacheHit reports whether the shard's own execution reused a
	// compiled template.
	PlanCacheHit bool
	// HasSmooth / Smooth expose the shard's Smooth Scan morphing
	// counters, like ExecStats.HasSmooth/Smooth.
	HasSmooth bool
	Smooth    SmoothStats
	// Degraded lists the fault-recovery fallbacks this shard applied;
	// one shard degrading never touches the others' plans.
	Degraded []string
}

// ExecStats returns the sharded query's unified statistics: summed
// device deltas, coordinator operator counts, and the per-shard
// breakdown. Per-shard scan internals (rows, morphing counters,
// degradations) are filled once the query has drained or closed —
// before that the workers may still be running and only the I/O
// deltas are read.
func (r *ShardedRows) ExecStats() ExecStats {
	st := ExecStats{}
	quiesced := r.closed || r.done
	shards := make([]ShardStats, len(r.s.shards))
	for i := range shards {
		shards[i] = ShardStats{
			Shard:     i,
			Owns:      r.se.part.DescribeShard(i),
			Addr:      r.s.drivers[i].address(),
			Pruned:    true,
			PrunedWhy: r.se.prunedWhy[i],
		}
		if r.closed {
			shards[i].IO = r.ioDelta[i]
		} else {
			shards[i].IO = r.s.shards[i].dev.Stats().Sub(r.ioStart[i])
		}
	}
	for k, si := range r.se.active {
		sh := &shards[si]
		sh.Pruned = false
		sh.PrunedWhy = ""
		if !quiesced || k >= len(r.adapters) {
			continue
		}
		a := r.adapters[k]
		sh.Unavailable = a.unavailable
		if a.cur == nil {
			continue
		}
		// A remote cursor is the authority for its shard's I/O (the
		// summary ships over the wire); an in-process shard's delta was
		// already read off its device above.
		if io, ok := a.cur.ioStats(); ok {
			sh.IO = io
		}
		sub, ok := a.cur.execStats()
		if !ok {
			continue
		}
		sh.Rows = sub.RowsReturned
		sh.PlanCacheHit = sub.PlanCacheHit
		sh.HasSmooth = sub.HasSmooth
		sh.Smooth = sub.Smooth
		sh.Degraded = sub.Degraded
		for _, d := range sub.Degraded {
			st.Degraded = append(st.Degraded, fmt.Sprintf("shard %d: %s", si, d))
		}
	}
	for i := range shards {
		st.IO = addIO(st.IO, shards[i].IO)
	}
	st.Shards = shards
	for _, c := range r.counters {
		st.Operators = append(st.Operators, OperatorStats{Name: c.name, Rows: c.rows, Batches: c.batches})
	}
	if n := len(r.counters); n > 0 {
		st.RowsReturned = r.counters[n-1].rows
	}
	st.PlanCacheHit = r.planCached
	st.ResultCache = ResultCacheExec{Hit: r.cacheHit, Bytes: r.cacheBytes, Age: r.cacheAge}
	st.Retries = st.IO.Retries
	st.FaultsSeen = st.IO.Faults + st.IO.Corruptions + st.IO.LatencySpikes
	return st
}

// Column returns the current row's value for the named column,
// distinguishing the two miss reasons that Col folds into one false:
// a column the table never had (ErrUnknownColumn) and a column the
// query projected away via Select or GroupBy (ErrNotSelected).
func (r *Rows) Column(name string) (int64, error) {
	if i := r.schema.ColIndex(name); i >= 0 {
		return r.cur.Int(i), nil
	}
	if r.baseSchema != nil && r.baseSchema.ColIndex(name) >= 0 {
		return 0, fmt.Errorf("%w: %q (use Select/GroupBy to include it)", ErrNotSelected, name)
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownColumn, name)
}

// opCounter accumulates one operator's output counts. It is written
// only by the goroutine driving the Rows, so no synchronisation is
// needed.
type opCounter struct {
	name    string
	rows    int64
	batches int64
}

// countedOp decorates an operator with row/batch counting. It adds no
// simulated cost — the counters are host-side observability — and
// forwards the batched protocol, so decoration never changes the
// operator tree's I/O schedule or CPU charge sequence.
type countedOp struct {
	inner exec.Operator
	c     *opCounter
}

func (o *countedOp) Schema() *tuple.Schema { return o.inner.Schema() }
func (o *countedOp) Open() error           { return o.inner.Open() }
func (o *countedOp) Close() error          { return o.inner.Close() }

func (o *countedOp) Next() (tuple.Row, bool, error) {
	row, ok, err := o.inner.Next()
	if ok {
		o.c.rows++
	}
	return row, ok, err
}

func (o *countedOp) NextBatch(b *tuple.Batch) (int, error) {
	n, err := exec.NextBatch(o.inner, b)
	if n > 0 {
		o.c.rows += int64(n)
		o.c.batches++
	}
	return n, err
}

// ctxGuard checks context cancellation once per batch (never per
// tuple) on behalf of whatever drains it — the Rows iterator or a
// blocking operator (sort, aggregation) consuming the scan.
type ctxGuard struct {
	inner exec.Operator
	ctx   context.Context
}

func (g *ctxGuard) Schema() *tuple.Schema { return g.inner.Schema() }
func (g *ctxGuard) Open() error           { return g.inner.Open() }
func (g *ctxGuard) Close() error          { return g.inner.Close() }

func (g *ctxGuard) Next() (tuple.Row, bool, error) {
	if err := g.ctx.Err(); err != nil {
		return nil, false, err
	}
	return g.inner.Next()
}

func (g *ctxGuard) NextBatch(b *tuple.Batch) (int, error) {
	if err := g.ctx.Err(); err != nil {
		return 0, err
	}
	return exec.NextBatch(g.inner, b)
}

// aggregateWorkers folds per-worker smooth stats into query totals.
func aggregateWorkers(workers []*core.SmoothScan) SmoothStats {
	parts := make([]core.Stats, len(workers))
	for i, ss := range workers {
		parts[i] = ss.Stats()
	}
	return core.AggregateStats(parts)
}
