package parallel

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"smoothscan/internal/exec"
	"smoothscan/internal/tuple"
)

func testSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Column{Name: "k", Type: tuple.Int64},
		tuple.Column{Name: "v", Type: tuple.Int64},
	)
}

func rowsOf(pairs ...[2]int64) []tuple.Row {
	out := make([]tuple.Row, len(pairs))
	for i, p := range pairs {
		out[i] = tuple.IntsRow(p[0], p[1])
	}
	return out
}

func TestPartitionPages(t *testing.T) {
	cases := []struct {
		pages int64
		p     int
		want  int
	}{
		{100, 4, 4},
		{7, 4, 4},
		{3, 8, 3},  // clamped to page count
		{0, 4, 1},  // single empty shard
		{10, 0, 1}, // p < 1 behaves like serial
	}
	for _, c := range cases {
		shards := PartitionPages(c.pages, c.p)
		if len(shards) != c.want {
			t.Errorf("PartitionPages(%d, %d) = %d shards, want %d", c.pages, c.p, len(shards), c.want)
			continue
		}
		// Shards must tile [0, pages) contiguously and disjointly.
		var lo int64
		for i, sh := range shards {
			if sh.Index != i {
				t.Errorf("shard %d has Index %d", i, sh.Index)
			}
			if sh.PageLo != lo {
				t.Errorf("shard %d starts at %d, want %d", i, sh.PageLo, lo)
			}
			if sh.PageHi < sh.PageLo {
				t.Errorf("shard %d inverted: [%d,%d)", i, sh.PageLo, sh.PageHi)
			}
			if c.pages > 0 && sh.PageHi == sh.PageLo {
				t.Errorf("shard %d empty with %d pages to split", i, c.pages)
			}
			lo = sh.PageHi
		}
		if lo != c.pages {
			t.Errorf("shards cover [0,%d), want [0,%d)", lo, c.pages)
		}
		// Near-equal: sizes differ by at most one page.
		var minSz, maxSz int64 = 1 << 62, -1
		for _, sh := range shards {
			sz := sh.PageHi - sh.PageLo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if c.pages > 0 && maxSz-minSz > 1 {
			t.Errorf("PartitionPages(%d, %d): shard sizes range [%d,%d]", c.pages, c.p, minSz, maxSz)
		}
	}
}

// drainPairs drains a Scan and returns the (k, v) pairs it produced.
func drainPairs(t *testing.T, s *Scan) [][2]int64 {
	t.Helper()
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got [][2]int64
	b := tuple.NewBatchFor(s.Schema(), 7) // deliberately small, forces partial copies
	for {
		n, err := s.NextBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return got
		}
		for i := 0; i < n; i++ {
			r := b.Row(i)
			got = append(got, [2]int64{r.Int(0), r.Int(1)})
		}
	}
}

func TestUnorderedFanIn(t *testing.T) {
	schema := testSchema()
	var workers []Worker
	want := map[[2]int64]int{}
	for w := 0; w < 4; w++ {
		var rows []tuple.Row
		for i := 0; i < 100; i++ {
			pair := [2]int64{int64(w*1000 + i), int64(w)}
			want[pair]++
			rows = append(rows, tuple.IntsRow(pair[0], pair[1]))
		}
		workers = append(workers, Worker{Op: exec.NewValues(schema, rows)})
	}
	s, err := NewScan(workers, Options{Schema: schema, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	got := drainPairs(t, s)
	if len(got) != 400 {
		t.Fatalf("drained %d rows, want 400", len(got))
	}
	for _, pair := range got {
		want[pair]--
		if want[pair] < 0 {
			t.Fatalf("row %v duplicated or unexpected", pair)
		}
	}
	for pair, n := range want {
		if n != 0 {
			t.Errorf("row %v missing", pair)
		}
	}
}

func TestOrderedMergeReproducesSerialOrder(t *testing.T) {
	schema := testSchema()
	// Duplicate keys across workers: ties must resolve in worker-index
	// order (the shard page order), reproducing a serial (key, TID)
	// scan over increasing page ranges.
	w0 := rowsOf([2]int64{1, 0}, [2]int64{5, 0}, [2]int64{5, 0}, [2]int64{9, 0})
	w1 := rowsOf([2]int64{2, 1}, [2]int64{5, 1}, [2]int64{9, 1})
	w2 := rowsOf([2]int64{5, 2}, [2]int64{6, 2})
	s, err := NewScan([]Worker{
		{Op: exec.NewValues(schema, w0)},
		{Op: exec.NewValues(schema, w1)},
		{Op: exec.NewValues(schema, w2)},
	}, Options{Schema: schema, Ordered: true, KeyCol: 0, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := drainPairs(t, s)
	want := [][2]int64{
		{1, 0}, {2, 1}, {5, 0}, {5, 0}, {5, 1}, {5, 2}, {6, 2}, {9, 0}, {9, 1},
	}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i][0] < got[j][0] }) {
		t.Error("merge output not key-sorted")
	}
}

// failOp errors after producing a few rows.
type failOp struct {
	exec.Operator
	left int
}

func (f *failOp) NextBatch(b *tuple.Batch) (int, error) {
	b.Reset()
	if f.left <= 0 {
		return 0, errors.New("boom")
	}
	f.left--
	b.Append(tuple.IntsRow(1, 1))
	return 1, nil
}

func newFailOp(schema *tuple.Schema, rowsBeforeFailure int) *failOp {
	return &failOp{Operator: exec.NewValues(schema, nil), left: rowsBeforeFailure}
}

func TestWorkerErrorPropagates(t *testing.T) {
	schema := testSchema()
	for _, ordered := range []bool{false, true} {
		t.Run(fmt.Sprintf("ordered=%v", ordered), func(t *testing.T) {
			var rows []tuple.Row
			for i := 0; i < 5000; i++ {
				rows = append(rows, tuple.IntsRow(int64(i), 0))
			}
			s, err := NewScan([]Worker{
				{Op: exec.NewValues(schema, rows)},
				{Op: newFailOp(schema, 3)},
			}, Options{Schema: schema, Ordered: ordered, KeyCol: 0, BatchSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Open(); err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			b := tuple.NewBatchFor(schema, 8)
			var sawErr error
			for i := 0; i < 10000; i++ {
				n, err := s.NextBatch(b)
				if err != nil {
					sawErr = err
					break
				}
				if n == 0 {
					break
				}
			}
			if sawErr == nil || sawErr.Error() != "boom" {
				t.Fatalf("worker error not propagated, got %v", sawErr)
			}
		})
	}
}

func TestCloseEarlyStopsWorkers(t *testing.T) {
	schema := testSchema()
	var workers []Worker
	for w := 0; w < 4; w++ {
		var rows []tuple.Row
		for i := 0; i < 50_000; i++ {
			rows = append(rows, tuple.IntsRow(int64(i), int64(w)))
		}
		workers = append(workers, Worker{Op: exec.NewValues(schema, rows)})
	}
	s, err := NewScan(workers, Options{Schema: schema, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	b := tuple.NewBatchFor(schema, 64)
	if _, err := s.NextBatch(b); err != nil {
		t.Fatal(err)
	}
	// Close with workers mid-flight; must not hang (test timeout guards).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and fully drain: the operator contract allows reopening.
	got := drainPairs(t, s)
	if len(got) != 4*50_000 {
		t.Fatalf("reopened drain got %d rows, want %d", len(got), 4*50_000)
	}
	if _, err := s.NextBatch(b); !errors.Is(err, ErrClosed) {
		t.Fatalf("NextBatch after Close = %v, want ErrClosed", err)
	}
}

func TestPerTupleAdapter(t *testing.T) {
	schema := testSchema()
	s, err := NewScan([]Worker{
		{Op: exec.NewValues(schema, rowsOf([2]int64{3, 0}, [2]int64{1, 0}))},
	}, Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got []int64
	for {
		row, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, row.Int(0))
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("per-tuple drain = %v", got)
	}
}
