// Package parallel implements intra-query parallel scans: a table's
// heap page range is partitioned into P disjoint shards, one
// independently-morphing scan worker runs per shard over the batched
// NextBatch protocol, and the shard streams are merged back into a
// single operator — an unordered fan-in, or a k-way ordered merge when
// the plan needs index-key order.
//
// # Exactly-once
//
// Shards never share heap pages (PartitionPages produces disjoint,
// contiguous page ranges), and a shard worker produces only tuples
// living on its own pages: core.SmoothScan skips index entries whose
// TID falls outside its shard and clamps morphing regions to the shard
// boundary, and access.FullScan simply walks its page subrange. Every
// qualifying tuple therefore belongs to exactly one worker, and the
// per-worker exactly-once guarantees (Page ID / Tuple ID caches)
// compose into a global exactly-once guarantee with no cross-worker
// coordination.
//
// # Ordering
//
// Each ordered Smooth Scan worker emits its shard's tuples in
// (key, TID) order. Because shard page ranges increase with worker
// index, merging streams by key — breaking ties in favour of the
// lowest worker index — reproduces exactly the (key, TID) total order
// of the serial ordered scan.
//
// # Cost accounting
//
// Each worker reads through its own bufferpool view (a private
// disk.Channel), so its sequential shard traversal is classified
// sequential regardless of how the scheduler interleaves workers, and
// its per-tuple CPU charges accumulate locally, off the device mutex,
// until the worker flushes on completion. Device totals after the scan
// are the sum of the per-worker contributions. Relative to a serial
// scan the totals can differ in random-vs-sequential classification
// (each worker pays its own initial seek, and index leaf pages are
// walked once per worker rather than once), never in which heap pages
// are analysed.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"smoothscan/internal/exec"
	"smoothscan/internal/tuple"
)

// ErrClosed is returned by Next/NextBatch before Open or after Close.
var ErrClosed = errors.New("parallel: scan is not open")

// Shard is one worker's disjoint heap page range [PageLo, PageHi).
type Shard struct {
	Index  int
	PageLo int64
	PageHi int64
}

// PartitionPages splits [0, numPages) into min(p, numPages) contiguous,
// disjoint, non-empty shards of near-equal size, in increasing page
// order. With numPages == 0 it returns a single empty shard.
func PartitionPages(numPages int64, p int) []Shard {
	if p < 1 {
		p = 1
	}
	if int64(p) > numPages {
		p = int(numPages)
		if p < 1 {
			p = 1
		}
	}
	shards := make([]Shard, 0, p)
	base, rem := numPages/int64(p), numPages%int64(p)
	lo := int64(0)
	for i := 0; i < p; i++ {
		size := base
		if int64(i) < rem {
			size++
		}
		shards = append(shards, Shard{Index: i, PageLo: lo, PageHi: lo + size})
		lo += size
	}
	return shards
}

// Worker is one shard's scan operator plus its completion hook.
type Worker struct {
	// Op is the shard scan; it is Opened, drained via NextBatch and
	// Closed entirely on the worker's goroutine.
	Op exec.BatchOperator
	// Flush, when non-nil, runs on the worker goroutine after Op is
	// closed — typically the bufferpool view's FlushCPU, folding the
	// worker's deferred simulated-CPU charges into the device totals.
	Flush func()
}

// Options configures a parallel Scan.
type Options struct {
	// Schema describes the rows every worker produces.
	Schema *tuple.Schema
	// Ordered selects the k-way ordered merge (workers must each emit
	// key-ordered rows); false selects the unordered fan-in.
	Ordered bool
	// KeyCol is the merge key column (Ordered only).
	KeyCol int
	// BatchSize is the per-batch row capacity exchanged between
	// workers and the merger (default exec.DefaultBatchSize).
	BatchSize int
	// Ctx, when non-nil, cancels the scan: workers observe
	// cancellation between batches (and while parked on an exchange
	// channel, even with the consumer gone) and exit promptly, and
	// NextBatch returns ctx.Err(). Nil means no cancellation.
	Ctx context.Context
}

// Scan is the merged parallel scan operator. It implements the
// Volcano protocol and the batched fast path; drain it through
// NextBatch (mixing Next and NextBatch on the same Scan is not
// supported — rows buffered by one protocol are invisible to the
// other).
//
// A Scan (like any operator) must be driven by a single goroutine; the
// parallelism lives behind it.
type Scan struct {
	workers []Worker
	opts    Options

	open bool
	quit chan struct{}
	done <-chan struct{} // opts.Ctx.Done(), nil when no context
	// fail is closed (once) by the first worker that hits an error, so
	// sibling workers parked on an exchange channel stop promptly
	// instead of filling their pipes with results nobody will read —
	// errgroup-style first-error propagation.
	fail     chan struct{}
	failOnce *sync.Once
	// wg is allocated fresh per Open: the fan-in closer goroutine of a
	// previous generation may still be inside Wait when the scan is
	// reopened, and a WaitGroup must not see a new Add concurrently
	// with an old Wait.
	wg   *sync.WaitGroup
	errs chan error
	err  error
	eos  bool

	// Unordered fan-in.
	results chan *tuple.Batch
	free    chan *tuple.Batch
	cur     *tuple.Batch // partially-copied received batch
	curPos  int

	// Ordered k-way merge.
	streams []*stream

	// Per-tuple adapter state.
	scratch    *tuple.Batch
	scratchPos int
}

// stream is one worker's bounded pipe into the ordered merge.
type stream struct {
	ch   chan *tuple.Batch
	free chan *tuple.Batch
	cur  *tuple.Batch
	pos  int
	done bool
}

// NewScan builds a parallel scan over the shard workers. Workers must
// be listed in increasing shard page order for ordered merges to
// reproduce the serial (key, TID) order.
func NewScan(workers []Worker, opts Options) (*Scan, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("parallel: no workers")
	}
	if opts.Schema == nil {
		return nil, fmt.Errorf("parallel: options require a schema")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = exec.DefaultBatchSize
	}
	if opts.Ordered && (opts.KeyCol < 0 || opts.KeyCol >= opts.Schema.NumCols()) {
		return nil, fmt.Errorf("parallel: merge key column %d out of range", opts.KeyCol)
	}
	return &Scan{workers: workers, opts: opts}, nil
}

// Schema returns the row schema.
func (s *Scan) Schema() *tuple.Schema { return s.opts.Schema }

// Parallelism returns the worker count.
func (s *Scan) Parallelism() int { return len(s.workers) }

// newBatch allocates one exchange batch.
func (s *Scan) newBatch() *tuple.Batch {
	return tuple.NewBatchFor(s.opts.Schema, s.opts.BatchSize)
}

// Open opens every shard operator — concurrently, but Open does not
// return until all have opened or one has failed. An open-time fault
// (a dead index root, say) therefore surfaces from Open itself, where
// the planner's degradation ladder can still rebuild the query; only
// mid-scan and close errors surface later, from NextBatch or Close.
// On an open failure every already-opened operator is closed again and
// no goroutine is left behind.
func (s *Scan) Open() error {
	if s.open {
		return fmt.Errorf("parallel: scan already open")
	}
	p := len(s.workers)
	s.quit = make(chan struct{})
	s.fail = make(chan struct{})
	s.failOnce = &sync.Once{}
	s.done = nil
	if s.opts.Ctx != nil {
		s.done = s.opts.Ctx.Done()
	}
	s.wg = &sync.WaitGroup{}
	s.errs = make(chan error, p)
	s.err = nil
	s.eos = false
	s.cur = nil
	s.curPos = 0
	s.scratch = nil
	s.scratchPos = 0

	openErrs := make([]error, p)
	opened := make([]bool, p)
	var owg sync.WaitGroup
	for i := range s.workers {
		owg.Add(1)
		go func(i int) {
			defer owg.Done()
			if err := s.workers[i].Op.Open(); err != nil {
				openErrs[i] = err
			} else {
				opened[i] = true
			}
		}(i)
	}
	owg.Wait()
	for _, openErr := range openErrs {
		if openErr == nil {
			continue
		}
		for i, ok := range opened {
			if ok {
				_ = s.workers[i].Op.Close()
			}
			if s.workers[i].Flush != nil {
				s.workers[i].Flush()
			}
		}
		return openErr
	}

	if s.opts.Ordered {
		s.streams = make([]*stream, p)
		for i := range s.workers {
			st := &stream{
				ch:   make(chan *tuple.Batch, 2),
				free: make(chan *tuple.Batch, 3),
			}
			for j := 0; j < cap(st.free); j++ {
				st.free <- s.newBatch()
			}
			s.streams[i] = st
			s.wg.Add(1)
			go s.runWorker(s.workers[i], s.wg, s.quit, st.free, st.ch, true)
		}
	} else {
		s.results = make(chan *tuple.Batch, 2*p)
		s.free = make(chan *tuple.Batch, 2*p+1)
		for j := 0; j < cap(s.free); j++ {
			s.free <- s.newBatch()
		}
		for i := range s.workers {
			s.wg.Add(1)
			go s.runWorker(s.workers[i], s.wg, s.quit, s.free, s.results, false)
		}
		// Single closer: the fan-in channel has many senders.
		results, wg := s.results, s.wg
		go func() {
			wg.Wait()
			close(results)
		}()
	}
	s.open = true
	return nil
}

// runWorker drains one already-opened shard operator into out,
// recycling batches through free. With ownsOut (ordered mode: out has
// a single sender) the channel is closed when the worker finishes. The
// WaitGroup, quit and fail channels and error sink are passed
// explicitly (or captured before any blocking) so the goroutine stays
// bound to the generation of the Open that spawned it even if the scan
// is closed and reopened.
func (s *Scan) runWorker(w Worker, wg *sync.WaitGroup, quit <-chan struct{}, free <-chan *tuple.Batch, out chan<- *tuple.Batch, ownsOut bool) {
	errs := s.errs
	done := s.done
	fail := s.fail
	failOnce := s.failOnce
	report := func(err error) {
		errs <- err
		failOnce.Do(func() { close(fail) })
	}
	defer wg.Done()
	if w.Flush != nil {
		defer w.Flush()
	}
	if ownsOut {
		defer close(out)
	}
	defer func() {
		if err := w.Op.Close(); err != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}()
	for {
		// Cancellation is checked once per batch (never per tuple): a
		// non-blocking poll here, plus the done/fail arms below that
		// unblock a worker parked on an exchange channel after the
		// consumer has abandoned the scan or a sibling has failed.
		select {
		case <-done:
			return
		case <-fail:
			return
		default:
		}
		var b *tuple.Batch
		select {
		case b = <-free:
		case <-quit:
			return
		case <-done:
			return
		case <-fail:
			return
		}
		n, err := w.Op.NextBatch(b)
		if err != nil {
			report(err)
			return
		}
		if n == 0 {
			return
		}
		select {
		case out <- b:
		case <-quit:
			return
		case <-done:
			return
		case <-fail:
			return
		}
	}
}

// firstErr returns a pending worker error without blocking.
func (s *Scan) firstErr() error {
	select {
	case err := <-s.errs:
		return err
	default:
		return nil
	}
}

// NextBatch fills out with the next merged rows; 0 at end of stream.
func (s *Scan) NextBatch(out *tuple.Batch) (int, error) {
	if !s.open {
		return 0, ErrClosed
	}
	out.Reset()
	if s.err != nil {
		return 0, s.err
	}
	if s.opts.Ctx != nil {
		if err := s.opts.Ctx.Err(); err != nil {
			s.err = err
			return 0, err
		}
	}
	if s.eos {
		return 0, nil
	}
	if err := s.firstErr(); err != nil {
		s.err = err
		return 0, err
	}
	if s.opts.Ordered {
		return s.nextBatchOrdered(out)
	}
	return s.nextBatchUnordered(out)
}

// nextBatchUnordered hands the caller the next worker batch: swapped
// in O(1) when the caller's batch can take it whole, copied flat (and
// possibly split across calls) otherwise.
func (s *Scan) nextBatchUnordered(out *tuple.Batch) (int, error) {
	for {
		if s.cur != nil {
			n := out.AppendRows(s.cur, s.curPos, s.cur.Len()-s.curPos)
			s.curPos += n
			if s.curPos >= s.cur.Len() {
				s.free <- s.cur
				s.cur = nil
			}
			if out.Len() > 0 {
				return out.Len(), nil
			}
		}
		b, ok := <-s.results
		if !ok {
			s.eos = true
			if err := s.firstErr(); err != nil {
				s.err = err
				return 0, err
			}
			return out.Len(), nil
		}
		if out.Len() == 0 && out.TrySwap(b) {
			s.free <- b
			return out.Len(), nil
		}
		s.cur, s.curPos = b, 0
	}
}

// nextBatchOrdered merges the worker streams by key, breaking ties by
// worker index (= shard page order), which reproduces the serial
// ordered scan's (key, TID) order exactly.
func (s *Scan) nextBatchOrdered(out *tuple.Batch) (int, error) {
	for !out.Full() {
		best := -1
		var bestKey int64
		for i, st := range s.streams {
			if err := s.ensure(st); err != nil {
				s.err = err
				return 0, err
			}
			if st.done {
				continue
			}
			k := st.cur.Row(st.pos).Int(s.opts.KeyCol)
			if best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			s.eos = true
			break
		}
		st := s.streams[best]
		out.Append(st.cur.Row(st.pos))
		st.pos++
	}
	return out.Len(), nil
}

// ensure gives the stream a current row (or marks it done), recycling
// drained batches.
func (s *Scan) ensure(st *stream) error {
	for !st.done && (st.cur == nil || st.pos >= st.cur.Len()) {
		if st.cur != nil {
			st.free <- st.cur
			st.cur = nil
		}
		b, ok := <-st.ch
		if !ok {
			st.done = true
			return s.firstErr()
		}
		st.cur, st.pos = b, 0
	}
	return nil
}

// Next returns the next merged row through an internal batch adapter.
// The returned row is owned by the caller.
func (s *Scan) Next() (tuple.Row, bool, error) {
	if !s.open {
		return nil, false, ErrClosed
	}
	if s.scratch == nil {
		s.scratch = s.newBatch()
		s.scratchPos = 0
	}
	if s.scratchPos >= s.scratch.Len() {
		n, err := s.NextBatch(s.scratch)
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		s.scratchPos = 0
	}
	row := s.scratch.Row(s.scratchPos).Clone()
	s.scratchPos++
	return row, true, nil
}

// Close stops the workers (cancelling any still running), waits for
// them to finish and releases the exchange buffers. It returns the
// first worker error not yet surfaced through NextBatch, so a failed
// scan closed before being fully drained still reports its failure.
// The scan may be reopened.
func (s *Scan) Close() error {
	if !s.open {
		return nil
	}
	s.open = false
	close(s.quit)
	// Unblock workers parked on a full results/stream channel: the
	// select on quit in runWorker releases them; nothing to drain.
	s.wg.Wait()
	if err := s.firstErr(); err != nil && s.err == nil {
		s.err = err
	}
	s.results = nil
	s.free = nil
	s.streams = nil
	s.cur = nil
	s.scratch = nil
	return s.err
}
