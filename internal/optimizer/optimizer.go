// Package optimizer implements the slice of a query optimizer the
// paper's experiments exercise: per-column statistics (equi-width
// histograms), cardinality estimation for range predicates, and
// cost-based access-path selection between Full Scan, Index Scan and
// Sort Scan using the Section V cost model.
//
// Because the whole point of the paper is what happens when statistics
// are missing or stale, the package also provides the two classic ways
// estimates go wrong: default statistics (the uniformity and
// independence assumptions commercial systems fall back on) and stale
// statistics (built before the data changed). The Figure 1 experiment
// feeds these into access-path selection to reproduce tuning-induced
// regressions.
package optimizer

import (
	"fmt"
	"math"

	"smoothscan/internal/costmodel"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// Histogram is an equi-width histogram over an integer column.
type Histogram struct {
	lo, hi  int64 // value domain [lo, hi]
	buckets []int64
	total   int64
}

// NewHistogram creates an empty histogram with the given bucket count
// over [lo, hi].
func NewHistogram(lo, hi int64, buckets int) (*Histogram, error) {
	if hi < lo {
		return nil, fmt.Errorf("optimizer: histogram domain [%d,%d] inverted", lo, hi)
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("optimizer: %d buckets", buckets)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, buckets)}, nil
}

// Add records one value.
func (h *Histogram) Add(v int64) {
	h.buckets[h.bucketOf(v)]++
	h.total++
}

func (h *Histogram) bucketOf(v int64) int {
	if v < h.lo {
		return 0
	}
	if v > h.hi {
		return len(h.buckets) - 1
	}
	span := h.hi - h.lo + 1
	idx := int((v - h.lo) * int64(len(h.buckets)) / span)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	return idx
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 { return h.total }

// EstimateRange estimates the selectivity of lo <= v < hi, assuming
// uniformity within buckets.
func (h *Histogram) EstimateRange(lo, hi int64) float64 {
	if h.total == 0 || hi <= lo {
		return 0
	}
	span := h.hi - h.lo + 1
	bucketWidth := float64(span) / float64(len(h.buckets))
	var count float64
	for i, c := range h.buckets {
		bLo := float64(h.lo) + float64(i)*bucketWidth
		bHi := bLo + bucketWidth
		// Overlap of [lo, hi) with [bLo, bHi).
		oLo := math.Max(float64(lo), bLo)
		oHi := math.Min(float64(hi), bHi)
		if oHi <= oLo {
			continue
		}
		count += float64(c) * (oHi - oLo) / bucketWidth
	}
	sel := count / float64(h.total)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// TableStats carries the optimizer's knowledge of one table.
type TableStats struct {
	// NumTuples and NumPages as the optimizer believes them.
	NumTuples int64
	NumPages  int64
	// Histograms per column index; a missing column falls back to the
	// uniformity assumption over the domain recorded in Domains.
	Histograms map[int]*Histogram
	// Domains records assumed [lo, hi] per column for the fallback.
	Domains map[int][2]int64
}

// CollectStats scans the heap file (a maintenance operation, not part
// of any measured query) and builds accurate statistics with the given
// histogram resolution.
func CollectStats(file *heap.File, read func(pageNo int64) ([]byte, error), cols []int, buckets int) (*TableStats, error) {
	// First pass: domains.
	mins := map[int]int64{}
	maxs := map[int]int64{}
	for _, c := range cols {
		mins[c] = math.MaxInt64
		maxs[c] = math.MinInt64
	}
	row := tuple.NewRow(file.Schema())
	var pages [][]byte
	for pageNo := int64(0); pageNo < file.NumPages(); pageNo++ {
		page, err := read(pageNo)
		if err != nil {
			return nil, err
		}
		pages = append(pages, page)
		n := heap.PageTupleCount(page)
		for s := 0; s < n; s++ {
			row = file.DecodeRow(page, s, row)
			for _, c := range cols {
				v := row.Int(c)
				if v < mins[c] {
					mins[c] = v
				}
				if v > maxs[c] {
					maxs[c] = v
				}
			}
		}
	}
	stats := &TableStats{
		NumTuples:  file.NumTuples(),
		NumPages:   file.NumPages(),
		Histograms: map[int]*Histogram{},
		Domains:    map[int][2]int64{},
	}
	for _, c := range cols {
		lo, hi := mins[c], maxs[c]
		if file.NumTuples() == 0 {
			lo, hi = 0, 0
		}
		h, err := NewHistogram(lo, hi, buckets)
		if err != nil {
			return nil, err
		}
		stats.Histograms[c] = h
		stats.Domains[c] = [2]int64{lo, hi}
	}
	for _, page := range pages {
		n := heap.PageTupleCount(page)
		for s := 0; s < n; s++ {
			row = file.DecodeRow(page, s, row)
			for _, c := range cols {
				stats.Histograms[c].Add(row.Int(c))
			}
		}
	}
	return stats, nil
}

// DefaultStats returns the statistics a system falls back on with no
// ANALYZE run: the declared tuple count and a uniformity assumption
// over the declared column domains — no histograms at all.
func DefaultStats(numTuples, numPages int64, domains map[int][2]int64) *TableStats {
	return &TableStats{
		NumTuples:  numTuples,
		NumPages:   numPages,
		Histograms: map[int]*Histogram{},
		Domains:    domains,
	}
}

// EstimateSelectivity estimates the fraction of tuples matching the
// predicate, using the column histogram when present and the
// uniformity assumption otherwise.
func (s *TableStats) EstimateSelectivity(pred tuple.RangePred) float64 {
	if h, ok := s.Histograms[pred.Col]; ok {
		return h.EstimateRange(pred.Lo, pred.Hi)
	}
	dom, ok := s.Domains[pred.Col]
	if !ok || dom[1] < dom[0] {
		// Nothing known: the classic magic constant for a range
		// predicate (System R used 1/3; PostgreSQL uses similar
		// defaults).
		return 1.0 / 3
	}
	span := float64(dom[1]-dom[0]) + 1
	lo := math.Max(float64(pred.Lo), float64(dom[0]))
	hi := math.Min(float64(pred.Hi), float64(dom[1])+1)
	if hi <= lo {
		return 0
	}
	return (hi - lo) / span
}

// EstimateCard returns the estimated result cardinality.
func (s *TableStats) EstimateCard(pred tuple.RangePred) int64 {
	return int64(math.Round(s.EstimateSelectivity(pred) * float64(s.NumTuples)))
}

// AccessPath enumerates the optimizer's choices.
type AccessPath int

// The traditional access paths the optimizer chooses between.
const (
	PathFullScan AccessPath = iota
	PathIndexScan
	PathSortScan
)

func (p AccessPath) String() string {
	switch p {
	case PathFullScan:
		return "full-scan"
	case PathIndexScan:
		return "index-scan"
	case PathSortScan:
		return "sort-scan"
	default:
		return fmt.Sprintf("AccessPath(%d)", int(p))
	}
}

// Choice is the optimizer's decision for one table access.
type Choice struct {
	Path AccessPath
	// EstimatedCard is the cardinality estimate that drove the
	// decision — the value the OptimizerDriven Smooth Scan trigger
	// monitors.
	EstimatedCard int64
	// EstimatedCost in I/O cost units.
	EstimatedCost float64
}

// ChooseAccessPath picks the cheapest access path for the predicate
// under the Section V cost model and the (possibly wrong) statistics.
// hasIndex reports whether pred.Col has a secondary index; ordered
// requires index-key output order, adding a posterior sort penalty to
// the paths that do not deliver it.
func ChooseAccessPath(params costmodel.Params, stats *TableStats, pred tuple.RangePred, hasIndex, ordered bool) Choice {
	card := stats.EstimateCard(pred)
	// Sort penalty for paths that destroy the interesting order,
	// charged in CPU-equivalent cost units (n log2 n comparisons).
	sortPenalty := 0.0
	if ordered && card > 1 {
		sortPenalty = float64(card) * math.Log2(float64(card)) * 0.0002
	}
	best := Choice{Path: PathFullScan, EstimatedCard: card, EstimatedCost: params.FullScanCost() + sortPenalty}
	if hasIndex {
		if c := params.IndexScanCost(card); c < best.EstimatedCost {
			best = Choice{Path: PathIndexScan, EstimatedCard: card, EstimatedCost: c}
		}
		if c := params.SortScanCost(card) + sortPenalty; c < best.EstimatedCost {
			best = Choice{Path: PathSortScan, EstimatedCard: card, EstimatedCost: c}
		}
	}
	return best
}
