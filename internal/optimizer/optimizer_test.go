package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"smoothscan/internal/costmodel"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(10, 5, 4); err == nil {
		t.Error("inverted domain accepted")
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestHistogramUniformEstimates(t *testing.T) {
	h, err := NewHistogram(0, 99, 10)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		lo, hi int64
		want   float64
	}{
		{0, 100, 1.0},
		{0, 50, 0.5},
		{25, 75, 0.5},
		{0, 10, 0.1},
		{90, 200, 0.1}, // clipped at domain top
		{50, 50, 0},
		{-100, 0, 0},
	}
	for _, c := range cases {
		got := h.EstimateRange(c.lo, c.hi)
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("EstimateRange(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestHistogramSkewedEstimates(t *testing.T) {
	h, err := NewHistogram(0, 99, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 90% of the mass in [0,10).
	for i := 0; i < 900; i++ {
		h.Add(int64(i % 10))
	}
	for i := 0; i < 100; i++ {
		h.Add(int64(10 + i%90))
	}
	if got := h.EstimateRange(0, 10); math.Abs(got-0.9) > 0.05 {
		t.Errorf("dense bucket estimate = %v, want ~0.9", got)
	}
	if got := h.EstimateRange(50, 60); got > 0.05 {
		t.Errorf("sparse range estimate = %v, want small", got)
	}
}

func TestHistogramOutOfDomainValues(t *testing.T) {
	h, err := NewHistogram(0, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-5) // clamped into first bucket
	h.Add(50) // clamped into last bucket
	if h.Total() != 2 {
		t.Errorf("Total = %d", h.Total())
	}
}

func loadFile(t *testing.T, gen func(i int64) int64, n int64) (*heap.File, *disk.Device) {
	t.Helper()
	dev := disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 256})
	file, err := heap.Create(dev, tuple.Ints(2))
	if err != nil {
		t.Fatal(err)
	}
	b := file.NewBuilder()
	for i := int64(0); i < n; i++ {
		if err := b.Append(tuple.IntsRow(i, gen(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return file, dev
}

func TestCollectStats(t *testing.T) {
	file, dev := loadFile(t, func(i int64) int64 { return i % 100 }, 1000)
	stats, err := CollectStats(file, func(p int64) ([]byte, error) { return dev.ReadPage(file.Space(), p) }, []int{1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumTuples != 1000 || stats.NumPages != file.NumPages() {
		t.Errorf("counts: %+v", stats)
	}
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 10}
	if got := stats.EstimateSelectivity(pred); math.Abs(got-0.1) > 0.02 {
		t.Errorf("selectivity = %v, want ~0.1", got)
	}
	if got := stats.EstimateCard(pred); got < 80 || got > 120 {
		t.Errorf("card = %d, want ~100", got)
	}
}

func TestDefaultStatsUniformityAssumption(t *testing.T) {
	stats := DefaultStats(1000, 10, map[int][2]int64{1: {0, 99}})
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 50}
	if got := stats.EstimateSelectivity(pred); math.Abs(got-0.5) > 0.01 {
		t.Errorf("uniform estimate = %v, want 0.5", got)
	}
	// Unknown column: magic constant.
	if got := stats.EstimateSelectivity(tuple.RangePred{Col: 0, Lo: 0, Hi: 1}); got != 1.0/3 {
		t.Errorf("magic constant = %v, want 1/3", got)
	}
}

func TestDefaultStatsWrongOnSkew(t *testing.T) {
	// The motivation of the whole paper: with skew, the uniformity
	// assumption is badly wrong.
	file, dev := loadFile(t, func(i int64) int64 {
		if i < 900 {
			return 0
		}
		return i % 100
	}, 1000)
	real, err := CollectStats(file, func(p int64) ([]byte, error) { return dev.ReadPage(file.Space(), p) }, []int{1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	fake := DefaultStats(1000, file.NumPages(), map[int][2]int64{1: {0, 99}})
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 5}
	realSel := real.EstimateSelectivity(pred)
	fakeSel := fake.EstimateSelectivity(pred)
	if realSel < 0.85 {
		t.Errorf("real stats missed the skew: %v", realSel)
	}
	if fakeSel > 0.1 {
		t.Errorf("default stats should underestimate: %v", fakeSel)
	}
}

func params(n int64) costmodel.Params {
	return costmodel.Params{TupleSize: 80, PageSize: 8192, KeySize: 8, NumTuples: n, RandCost: 10, SeqCost: 1}
}

func TestChooseAccessPathLowSelectivity(t *testing.T) {
	stats := DefaultStats(10_000_000, 98040, map[int][2]int64{1: {0, 100_000}})
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 1} // ~0.001% estimated
	c := ChooseAccessPath(params(10_000_000), stats, pred, true, false)
	if c.Path == PathFullScan {
		t.Errorf("full scan chosen at 0.001%% selectivity")
	}
	if c.EstimatedCard <= 0 {
		t.Errorf("estimated card = %d", c.EstimatedCard)
	}
}

func TestChooseAccessPathHighSelectivity(t *testing.T) {
	stats := DefaultStats(10_000_000, 98040, map[int][2]int64{1: {0, 100_000}})
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 50_000} // ~50%
	c := ChooseAccessPath(params(10_000_000), stats, pred, true, false)
	if c.Path != PathFullScan {
		t.Errorf("path = %v, want full-scan at 50%%", c.Path)
	}
}

func TestChooseAccessPathNoIndex(t *testing.T) {
	stats := DefaultStats(10_000_000, 98040, map[int][2]int64{1: {0, 100_000}})
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 1}
	c := ChooseAccessPath(params(10_000_000), stats, pred, false, false)
	if c.Path != PathFullScan {
		t.Errorf("path = %v without an index", c.Path)
	}
}

func TestMisestimationFlipsDecision(t *testing.T) {
	// The Figure 1 mechanism: the data is skewed so the true
	// cardinality is huge, but default stats estimate it tiny, so the
	// optimizer picks an index scan whose true cost is catastrophic.
	p := params(10_000_000)
	fake := DefaultStats(10_000_000, p.Pages(), map[int][2]int64{1: {0, 10_000_000}})
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 100} // est. 0.001%, true (say) 50%
	c := ChooseAccessPath(p, fake, pred, true, false)
	if c.Path == PathFullScan {
		t.Fatalf("misestimate did not flip the choice")
	}
	trueCard := p.Card(0.5)
	trueCost := p.IndexScanCost(trueCard)
	if trueCost < 20*p.FullScanCost() {
		t.Errorf("regression factor only %v", trueCost/p.FullScanCost())
	}
}

// Property: equi-width histogram error is bounded by the mass of the
// two buckets the range boundaries fall into (within-bucket uniformity
// is the only approximation).
func TestHistogramAccuracyProperty(t *testing.T) {
	const buckets = 16
	f := func(vals []uint16, loRaw, width uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h, err := NewHistogram(0, 255, buckets)
		if err != nil {
			return false
		}
		trueCount := 0
		boundary := map[int]bool{}
		lo := int64(loRaw)
		hi := lo + int64(width)
		boundary[h.bucketOf(lo)] = true
		if hi <= 255 {
			boundary[h.bucketOf(hi)] = true
		}
		boundaryMass := 0
		for _, v := range vals {
			x := int64(v % 256)
			h.Add(x)
			if x >= lo && x < hi {
				trueCount++
			}
			if boundary[h.bucketOf(x)] {
				boundaryMass++
			}
		}
		got := h.EstimateRange(lo, hi)
		want := float64(trueCount) / float64(len(vals))
		bound := float64(boundaryMass)/float64(len(vals)) + 1e-9
		return math.Abs(got-want) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
