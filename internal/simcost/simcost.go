// Package simcost centralises the CPU cost constants of the
// simulation, expressed in the same units as disk I/O costs (one
// sequential 8 KB page read = 1 unit).
//
// The paper's premise (Section III-A, citing Graefe) is that one I/O
// corresponds to about a million CPU instructions, so per-tuple CPU
// work is orders of magnitude cheaper than a page fetch: Smooth Scan
// "invests CPU cycles for reading additional tuples from each page
// with minimal CPU overhead". The constants keep that ratio: scanning
// all ~100 tuples of a page costs ~0.1 units against 1–10 units for
// fetching it.
package simcost

const (
	// Tuple is the cost of decoding one tuple and evaluating a simple
	// predicate on it.
	Tuple = 0.001
	// Compare is the cost of one comparison during sorting.
	Compare = 0.0002
	// Hash is the cost of hashing a tuple into a hash table (build or
	// probe side).
	Hash = 0.0005
	// Aggregate is the cost of folding one tuple into an aggregate.
	Aggregate = 0.0003
)

// SortCost returns the CPU cost of sorting n items: n·log2(n)
// comparisons at Compare units each.
func SortCost(n int) float64 {
	if n < 2 {
		return 0
	}
	log2 := 0
	for v := n; v > 1; v >>= 1 {
		log2++
	}
	return float64(n) * float64(log2) * Compare
}
