package simcost

import "testing"

func TestSortCost(t *testing.T) {
	if SortCost(0) != 0 || SortCost(1) != 0 {
		t.Error("trivial sorts should cost nothing")
	}
	// 8 items, log2 = 3: 8*3*Compare.
	if got, want := SortCost(8), 8*3*Compare; got < want*0.999 || got > want*1.001 {
		t.Errorf("SortCost(8) = %v, want ~%v", got, want)
	}
	if SortCost(1000) <= SortCost(100) {
		t.Error("SortCost not increasing")
	}
}

func TestTupleCostRatio(t *testing.T) {
	// Scanning a full page of ~100 tuples must stay well below the
	// cost of one sequential page read (1 unit), preserving the
	// paper's CPU-vs-I/O premise.
	if 102*Tuple >= 0.5 {
		t.Errorf("per-page CPU cost %v too close to I/O cost", 102*Tuple)
	}
}
