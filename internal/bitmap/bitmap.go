// Package bitmap provides the dense bit sets Smooth Scan uses for its
// bookkeeping structures: the Page ID cache (one bit per heap page)
// and the Tuple ID cache (one bit per tuple), both described in
// Section IV-A of the paper. Their defining property — a few MB for
// hundreds of GB of data — follows from the dense representation.
package bitmap

import "fmt"

// Bitmap is a fixed-size dense bit set.
type Bitmap struct {
	words []uint64
	n     int64
	count int64
}

// New creates a bitmap of n bits, all clear.
//
// The size and index panics here are invariant guards, not error
// returns: every caller sizes bitmaps from a heap file's page or tuple
// count and indexes them with TIDs from that same file, so negative or
// out-of-range values indicate engine corruption that must not be
// silently absorbed.
func New(n int64) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", n))
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap size in bits.
func (b *Bitmap) Len() int64 { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 { return b.count }

// MemoryBytes returns the memory footprint of the bit array, the
// number the paper quotes when arguing the caches are small (140 KB
// for a 1M-page table).
func (b *Bitmap) MemoryBytes() int64 { return int64(len(b.words)) * 8 }

func (b *Bitmap) check(i int64) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, b.n))
	}
}

// Set sets bit i and reports whether it was previously clear.
func (b *Bitmap) Set(i int64) bool {
	b.check(i)
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int64) bool {
	b.check(i)
	return b.words[i/64]&(uint64(1)<<(uint(i)%64)) != 0
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int64) {
	b.check(i)
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.count--
	}
}

// Reset clears all bits.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}
