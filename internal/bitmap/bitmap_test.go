package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int64{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Errorf("fresh bit %d set", i)
		}
		if !b.Set(i) {
			t.Errorf("Set(%d) reported already set", i)
		}
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		if b.Set(i) {
			t.Errorf("second Set(%d) reported newly set", i)
		}
	}
	if b.Count() != 8 {
		t.Errorf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 7 {
		t.Errorf("Clear failed: get=%v count=%d", b.Get(64), b.Count())
	}
	b.Clear(64) // double clear is a no-op
	if b.Count() != 7 {
		t.Errorf("double Clear changed count: %d", b.Count())
	}
	b.Reset()
	if b.Count() != 0 || b.Get(0) {
		t.Error("Reset did not clear")
	}
}

func TestBounds(t *testing.T) {
	b := New(10)
	for _, i := range []int64{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("access to bit %d did not panic", i)
				}
			}()
			b.Get(i)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(-1) did not panic")
			}
		}()
		New(-1)
	}()
}

func TestMemoryBytes(t *testing.T) {
	// The paper's example: 1M pages -> 140 KB ballpark; a dense
	// bitmap needs 1M/8 = 125 KB.
	b := New(1_000_000)
	if got := b.MemoryBytes(); got != 125_000 {
		t.Errorf("MemoryBytes = %d, want 125000", got)
	}
	if New(0).MemoryBytes() != 0 {
		t.Error("empty bitmap has nonzero memory")
	}
	if New(1).MemoryBytes() != 8 {
		t.Error("1-bit bitmap should round up to one word")
	}
}

// Property: a bitmap behaves exactly like a map[int64]bool.
func TestBitmapMatchesMapProperty(t *testing.T) {
	const n = 256
	f := func(ops []uint16) bool {
		b := New(n)
		ref := make(map[int64]bool)
		for _, op := range ops {
			i := int64(op) % n
			switch (op / n) % 3 {
			case 0:
				wasNew := !ref[i]
				if b.Set(i) != wasNew {
					return false
				}
				ref[i] = true
			case 1:
				b.Clear(i)
				delete(ref, i)
			case 2:
				if b.Get(i) != ref[i] {
					return false
				}
			}
		}
		if int(b.Count()) != len(ref) {
			return false
		}
		for i := int64(0); i < n; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
