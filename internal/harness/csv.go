package harness

import (
	"fmt"
	"io"
	"strings"
)

// WriteCSV renders the table as RFC-4180-ish CSV (comma-separated,
// quoted only when needed), one header row followed by data rows.
// Notes are emitted as trailing comment lines prefixed with '#'.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
