package harness

import (
	"fmt"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/tpch"
)

func (r *Runner) tpchDB() (*tpch.DB, error) {
	dev := disk.NewDevice(disk.HDD)
	return tpch.Gen(dev, tpch.Config{NumOrders: r.cfg.TPCHOrders, Seed: r.cfg.Seed})
}

func (r *Runner) tpchPool(db *tpch.DB) *bufferpool.Pool {
	return r.poolFor(db.Dev, db.Lineitem.File.NumPages())
}

// Fig1 reproduces Figure 1: the motivating DBMS-X experiment. A
// 19-query TPC-H-like workload runs twice: "original" (no indexes:
// every query scans LINEITEM fully) and "tuned" (the advisor created
// the l_shipdate index and the optimizer — armed only with default
// uniformity statistics over a stale, much wider date domain —
// re-picks access paths). Misestimated queries flip to index scans
// and regress by orders of magnitude; well-estimated ones improve.
// The table reports tuned time normalised to original time (log-scale
// in the paper).
func (r *Runner) Fig1() (*Table, error) {
	db, err := r.tpchDB()
	if err != nil {
		return nil, err
	}
	pool := r.tpchPool(db)
	params := r.microParams(db.Dev, db.Lineitem.File.NumTuples())
	params.TupleSize = db.Lineitem.File.Schema().TupleSize()

	// The 19 TPC-H queries, reduced to their LINEITEM access with the
	// paper's approximate true selectivities. estFactor is the
	// multiplicative error of the tuned optimizer's estimate (stale
	// domain statistics): estFactor < 1 underestimates, the Figure 1
	// failure mode.
	queries := []struct {
		name      string
		trueSel   float64
		estFactor float64
	}{
		{"Q1", 0.98, 1.0},
		{"Q2", 0.0008, 1.0},
		{"Q3", 0.03, 0.01}, // mild under-estimate: small regression
		{"Q4", 0.65, 1.0},
		{"Q5", 0.20, 1.0},
		{"Q6", 0.02, 1.0},
		{"Q7", 0.30, 1.0},
		{"Q8", 0.03, 1.0},
		{"Q9", 0.10, 1.0},
		{"Q10", 0.25, 1.0},
		{"Q11", 0.0005, 1.0},
		{"Q12", 0.60, 0.001}, // the paper's 400x regression
		{"Q13", 0.95, 1.0},
		{"Q14", 0.01, 1.0},
		{"Q16", 0.002, 1.0},
		{"Q18", 0.05, 0.01},  // mild under-estimate
		{"Q19", 0.12, 0.002}, // the paper's 20x regression
		{"Q21", 0.06, 0.01},  // mild under-estimate
		{"Q22", 0.001, 1.0},
	}

	var rows [][]string
	var worstName string
	var worstRatio float64
	for _, q := range queries {
		pred := db.ShipdatePred(q.trueSel)
		estCard := int64(q.trueSel * q.estFactor * float64(db.Lineitem.File.NumTuples()))
		if estCard < 1 {
			estCard = 1
		}
		// Tuned plan: cheapest path under the (mis)estimate. DBMS-X's
		// regressions are index look-ups ("table look-up", Section
		// VI-B), so the simulated advisor chooses between full scan
		// and index scan, preferring the pipelined index at low
		// estimates as commercial optimizers do.
		tunedPath := tpch.PathFull
		if params.IndexScanCost(estCard) < params.FullScanCost() {
			tunedPath = tpch.PathIndex
		}

		runScan := func(path tpch.Path) (float64, error) {
			op, err := db.ScanLineitem(pool, pred, tpch.ScanSpec{Path: path})
			if err != nil {
				return 0, err
			}
			st, _, err := measure(db.Dev, pool, op)
			return st.Time(), err
		}
		original, err := runScan(tpch.PathFull)
		if err != nil {
			return nil, err
		}
		tuned, err := runScan(tunedPath)
		if err != nil {
			return nil, err
		}
		ratio := tuned / original
		if ratio > worstRatio {
			worstRatio, worstName = ratio, q.name
		}
		rows = append(rows, []string{
			q.name,
			fmt.Sprintf("%.3f", q.trueSel),
			fmt.Sprintf("%d", estCard),
			tunedPath.String(),
			fmtRatio(ratio),
		})
	}
	return &Table{
		ID:     "fig1",
		Title:  "Tuning-induced regressions under stale statistics (tuned / original, log-scale in paper)",
		Header: []string{"query", "true-sel", "est-card", "tuned-path", "normalized-time"},
		Rows:   rows,
		Notes: []string{
			"paper: Q12 regresses ~400x, Q19 ~20x, Q3/Q18/Q21 smaller; overall workload 22x worse.",
			fmt.Sprintf("measured worst: %s at %.0fx", worstName, worstRatio),
		},
	}, nil
}

// Fig1Q12 is the plan-level companion to Fig1: it executes the actual
// Q12 join under the original (hash join), tuned (index-scan-driven
// INLJ) and Smooth-Scan-rescued physical plans, reproducing the
// paper's minute-to-eleven-hours mechanism and showing that swapping
// only the access path (plus the §IV-B morphing inner) undoes it
// without re-optimization.
func (r *Runner) Fig1Q12() (*Table, error) {
	db, err := r.tpchDB()
	if err != nil {
		return nil, err
	}
	pool := r.tpchPool(db)
	var rows [][]string
	var original float64
	for _, plan := range []tpch.Q12Plan{tpch.Q12PlanHash, tpch.Q12PlanTunedINLJ, tpch.Q12PlanSmooth} {
		pool.Reset()
		db.Dev.ResetStats()
		res, err := db.Q12(pool, plan)
		if err != nil {
			return nil, err
		}
		st := db.Dev.Stats()
		if plan == tpch.Q12PlanHash {
			original = st.Time()
		}
		rows = append(rows, []string{
			plan.String(),
			fmtTime(st.Time()),
			fmtRatio(st.Time() / original),
			fmt.Sprintf("%d", st.Requests),
			fmt.Sprintf("%d", res.Rows),
		})
	}
	return &Table{
		ID:     "fig1-q12",
		Title:  "Figure 1 detail: Q12 plan-level regression and Smooth Scan rescue",
		Header: []string{"plan", "time", "vs original", "io-requests", "rows"},
		Rows:   rows,
		Notes: []string{
			"paper: tuned Q12 went from a minute to 11 hours (~400x); the only plan change",
			"needed to undo it is the access path (plus the morphing INLJ inner).",
		},
	}, nil
}

// Fig4 reproduces Figure 4: the five TPC-H queries under plain
// PostgreSQL's chosen plans versus the same plans with Smooth Scan as
// the LINEITEM access path, with the CPU-vs-I/O breakdown.
func (r *Runner) Fig4() (*Table, error) {
	db, err := r.tpchDB()
	if err != nil {
		return nil, err
	}
	pool := r.tpchPool(db)
	plans := tpch.PaperPlans()
	var rows [][]string
	for _, q := range db.Queries() {
		for _, variant := range []struct {
			label string
			spec  tpch.ScanSpec
		}{
			{"pSQL", tpch.ScanSpec{Path: plans[q.Name]}},
			{"pSQL+SS", tpch.ScanSpec{Path: tpch.PathSmooth, Smooth: tpch.DefaultSmooth()}},
		} {
			pool.Reset()
			db.Dev.ResetStats()
			res, err := q.Run(pool, variant.spec)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.Name, variant.label, err)
			}
			st := db.Dev.Stats()
			rows = append(rows, []string{
				fmt.Sprintf("%s (%.0f%%)", q.Name, q.Selectivity*100),
				variant.label,
				variant.spec.Path.String(),
				fmtTime(st.Time()),
				fmtTime(st.CPUTime),
				fmtTime(st.IOTime),
				fmt.Sprintf("%d", res.Rows),
			})
		}
	}
	return &Table{
		ID:     "fig4",
		Title:  "TPC-H with and without Smooth Scan (simulated time; CPU vs I/O-wait breakdown)",
		Header: []string{"query", "variant", "lineitem-path", "time", "cpu", "io-wait", "rows"},
		Rows:   rows,
		Notes: []string{
			"paper: SS prevents 10x (Q6), 7x (Q7), 8x (Q14) degradations; adds 14% on Q1 and <1% on Q4.",
		},
	}, nil
}

// Table2 reproduces Table II: the number of I/O requests and the data
// volume transferred per query, plain plans vs Smooth Scan.
func (r *Runner) Table2() (*Table, error) {
	db, err := r.tpchDB()
	if err != nil {
		return nil, err
	}
	pool := r.tpchPool(db)
	plans := tpch.PaperPlans()
	var rows [][]string
	for _, q := range db.Queries() {
		cells := []string{q.Name}
		for _, spec := range []tpch.ScanSpec{
			{Path: plans[q.Name]},
			{Path: tpch.PathSmooth, Smooth: tpch.DefaultSmooth()},
		} {
			pool.Reset()
			db.Dev.ResetStats()
			if _, err := q.Run(pool, spec); err != nil {
				return nil, err
			}
			st := db.Dev.Stats()
			cells = append(cells,
				fmt.Sprintf("%.1fK", float64(st.Requests)/1000),
				fmt.Sprintf("%.1fMB", float64(st.BytesRead)/(1<<20)),
			)
		}
		rows = append(rows, cells)
	}
	return &Table{
		ID:     "tab2",
		Title:  "I/O analysis: requests and data read, pSQL vs Smooth Scan",
		Header: []string{"query", "pSQL req", "pSQL read", "SS req", "SS read"},
		Rows:   rows,
		Notes: []string{
			"paper: SS may transfer more data but issues far fewer I/O requests",
			"(Q6: 566K -> 95K; Q14: 416K -> 87K), exploiting access locality.",
		},
	}, nil
}

// CompetitiveRatios reproduces the Section V-A summary: closed-form
// worst-case competitive ratios, the numeric adversarial scan, and the
// Greedy growth that disqualifies it.
func (r *Runner) CompetitiveRatios() (*Table, error) {
	var rows [][]string
	for _, prof := range []disk.Profile{disk.HDD, disk.SSD} {
		p := r.microParams(disk.NewDevice(prof), 10_000_000)
		worst, atK := p.MaxAdversarialCR(64)
		rows = append(rows, []string{
			prof.Name,
			fmt.Sprintf("%.1f:%.0f", prof.RandCost, prof.SeqCost),
			fmtRatio(p.ElasticWorstCaseCR()),
			fmtRatio(p.TheoreticalCRBound()),
			fmt.Sprintf("%s (k=%d)", fmtRatio(worst), atK),
			fmtRatio(p.GreedyCRForCard(20)),
		})
	}
	return &Table{
		ID:     "tab-cr",
		Title:  "Competitive analysis (Section V-A)",
		Header: []string{"device", "rand:seq", "elastic CR (r+1)/2", "bound r+1", "numeric worst CR", "greedy CR @card=20"},
		Rows:   rows,
		Notes: []string{
			"paper: elastic CR 5.5 (HDD) with bound 11; SSD quoted as 3/6 (corresponds to r=5;",
			"the measured SSD ratio r=2 gives 1.5/3). Empirically the paper observes CR ~2.",
		},
	}, nil
}

// All runs every experiment in paper order.
func (r *Runner) All() ([]*Table, error) {
	type expFn func() (*Table, error)
	fns := []expFn{
		r.Fig1, r.Fig1Q12, r.Fig4, r.Table2,
		r.Fig5a, r.Fig5b, r.Fig6, r.Fig7a, r.Fig7b,
		r.Fig8, r.Fig9, r.Fig10, r.Fig11,
		r.CompetitiveRatios, r.ModelAccuracy, r.JoinExp, r.Concurrent,
		r.FaultExp,
	}
	out := make([]*Table, 0, len(fns))
	for _, fn := range fns {
		t, err := fn()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ByID runs one experiment by identifier.
func (r *Runner) ByID(id string) (*Table, error) {
	m := map[string]func() (*Table, error){
		"fig1":       r.Fig1,
		"fig1-q12":   r.Fig1Q12,
		"fig4":       r.Fig4,
		"tab2":       r.Table2,
		"fig5a":      r.Fig5a,
		"fig5b":      r.Fig5b,
		"fig6":       r.Fig6,
		"fig7a":      r.Fig7a,
		"fig7b":      r.Fig7b,
		"fig8":       r.Fig8,
		"fig9":       r.Fig9,
		"fig10":      r.Fig10,
		"fig11":      r.Fig11,
		"tab-cr":     r.CompetitiveRatios,
		"model":      r.ModelAccuracy,
		"join":       r.JoinExp,
		"concurrent": r.Concurrent,
		"fault":      r.FaultExp,
	}
	fn, ok := m[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, IDs())
	}
	return fn()
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{"fig1", "fig1-q12", "fig4", "tab2", "fig5a", "fig5b", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11", "tab-cr", "model", "join", "concurrent", "fault"}
}
