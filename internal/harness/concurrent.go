package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"smoothscan/internal/exec"
	"smoothscan/internal/plan"
	"smoothscan/internal/tuple"
)

// Concurrent exercises the engine's two concurrency axes on one table:
// inter-query (C client goroutines sharing the buffer pool, each
// running serial Smooth Scans through its own pool view) and
// intra-query (one client, P page-sharded Smooth Scan workers merged
// by the parallel subsystem). It reports wall-clock throughput and
// latency percentiles — the one experiment in the harness where wall
// time, not simulated cost, is the measurement, because concurrency is
// a property of the engine rather than of the paper's cost model. The
// result-row counts double as a live exactly-once check.
func (r *Runner) Concurrent() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	pool := r.poolFor(dev, tab.File.NumPages())

	var rows [][]string
	serialWant := int64(-1)

	// Inter-query axis: C clients, each running Q serial 1% scans over
	// shifted ranges. All clients share ONE validated scan template —
	// the plan layer's compile-once/bind-many lifecycle behind the
	// public prepared-statement API — and bind their predicate per
	// query through their own buffer-pool view.
	const perClientQueries = 8
	selWidth := tab.Domain / 100
	tmpl, err := plan.NewScanTemplate(plan.ScanSpec{
		File: tab.File,
		Tree: tab.Index,
		Path: plan.PathSmooth,
	})
	if err != nil {
		return nil, err
	}
	for _, clients := range []int{1, 2, 4, 8} {
		// Every configuration starts cold, so the rows compare
		// concurrency scaling rather than cache warm-up.
		pool.Reset()
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			lats     []time.Duration
			tuples   int64
			firstErr error
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				view := pool.View()
				defer view.FlushCPU()
				var local []time.Duration
				var localTuples int64
				for q := 0; q < perClientQueries; q++ {
					lo := (int64(c*perClientQueries+q) * 131) % (tab.Domain - selWidth)
					pred := tuple.RangePred{Col: tab.IndexCol, Lo: lo, Hi: lo + selWidth}
					built, err := tmpl.BindOn(view, pred)
					if err == nil {
						qStart := time.Now()
						var n int64
						n, err = exec.Count(built.Op)
						local = append(local, time.Since(qStart))
						localTuples += n
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
				mu.Lock()
				lats = append(lats, local...)
				tuples += localTuples
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		wall := time.Since(start)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rows = append(rows, []string{
			"clients",
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.0f", float64(len(lats))/wall.Seconds()),
			fmt.Sprintf("%.2f", float64(tuples)/wall.Seconds()/1e6),
			fmt.Sprintf("%.2f", ms(lats[len(lats)/2])),
			fmt.Sprintf("%.2f", ms(lats[(len(lats)*99)/100])),
		})
	}

	// Intra-query axis: one 100%-selectivity scan split across P
	// page-sharded workers, built through the shared plan layer (the
	// same constructor behind ScanOptions.Parallelism).
	pred := tuple.RangePred{Col: tab.IndexCol, Lo: 0, Hi: tab.Domain}
	for _, p := range []int{1, 2, 4, 8} {
		built, err := plan.Build(plan.ScanSpec{
			File:        tab.File,
			Pool:        pool,
			Tree:        tab.Index,
			Pred:        pred,
			Path:        plan.PathSmooth,
			Parallelism: p,
		})
		if err != nil {
			return nil, err
		}
		pool.Reset()
		start := time.Now()
		n, err := exec.Count(built.Op)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		if serialWant < 0 {
			serialWant = n
		}
		if n != serialWant {
			return nil, fmt.Errorf("harness: parallel P=%d produced %d tuples, serial %d (exactly-once violated)", p, n, serialWant)
		}
		rows = append(rows, []string{
			"workers",
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
			"1",
			fmt.Sprintf("%.2f", float64(n)/wall.Seconds()/1e6),
			fmt.Sprintf("%.2f", ms(wall)),
			fmt.Sprintf("%.2f", ms(wall)),
		})
	}

	return &Table{
		ID:     "concurrent",
		Title:  fmt.Sprintf("Concurrent load: clients (inter-query) and workers (intra-query), %d CPUs", runtime.NumCPU()),
		Header: []string{"axis", "n", "wall(ms)", "q/s", "Mtuples/s", "p50(ms)", "p99(ms)"},
		Rows:   rows,
		Notes: []string{
			"Wall-clock measurements (not simulated cost): the only experiment where",
			"the host's core count matters. All rows scan the same table; every",
			"parallel configuration is checked to produce exactly the serial tuple",
			"count. 'clients' rows run 8 serial 1%-selectivity scans per client over",
			"one shared buffer pool; 'workers' rows split one 100% scan across",
			"page-sharded Smooth Scan workers (ScanOptions.Parallelism).",
		},
	}, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
