package harness

import (
	"fmt"

	"smoothscan/internal/access"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/workload"
)

// microPath identifies one access-path series in a sweep.
type microPath struct {
	name string
	// build constructs the operator for the predicate at sel (as a
	// fraction); ordered requests index-key order from paths that can
	// deliver it and adds a posterior sort to those that cannot.
	build func(tab *workload.Table, dev *disk.Device, pool *bufferpool.Pool, sel float64, ordered bool) (exec.Operator, error)
}

// poolBytes is the memory budget query operators get for sorting: the
// same budget the buffer pool has, as in a real server where work_mem
// and shared buffers compete for the same RAM.
func poolBytes(pool *bufferpool.Pool, dev *disk.Device) int64 {
	return int64(pool.Capacity()) * int64(dev.PageSize())
}

func fullScanPath() microPath {
	return microPath{name: "FullScan", build: func(tab *workload.Table, dev *disk.Device, pool *bufferpool.Pool, sel float64, ordered bool) (exec.Operator, error) {
		var op exec.Operator = access.NewFullScan(tab.File, pool, tab.PredForSelectivity(sel))
		if ordered {
			op = exec.NewExternalSort(op, dev, tab.IndexCol, poolBytes(pool, dev))
		}
		return op, nil
	}}
}

func indexScanPath() microPath {
	return microPath{name: "IndexScan", build: func(tab *workload.Table, dev *disk.Device, pool *bufferpool.Pool, sel float64, ordered bool) (exec.Operator, error) {
		return access.NewIndexScan(tab.File, pool, tab.Index, tab.PredForSelectivity(sel)), nil
	}}
}

func sortScanPath() microPath {
	return microPath{name: "SortScan", build: func(tab *workload.Table, dev *disk.Device, pool *bufferpool.Pool, sel float64, ordered bool) (exec.Operator, error) {
		ss := access.NewSortScan(tab.File, pool, tab.Index, tab.PredForSelectivity(sel), ordered)
		ss.SetMemoryBudget(poolBytes(pool, dev))
		return ss, nil
	}}
}

func smoothPath(name string, cfg core.Config) microPath {
	return microPath{name: name, build: func(tab *workload.Table, dev *disk.Device, pool *bufferpool.Pool, sel float64, ordered bool) (exec.Operator, error) {
		c := cfg
		c.Ordered = ordered
		return core.NewSmoothScan(tab.File, pool, tab.Index, tab.PredForSelectivity(sel), c)
	}}
}

func switchPath(threshold int64) microPath {
	return microPath{name: "SwitchScan", build: func(tab *workload.Table, dev *disk.Device, pool *bufferpool.Pool, sel float64, ordered bool) (exec.Operator, error) {
		return access.NewSwitchScan(tab.File, pool, tab.Index, tab.PredForSelectivity(sel), threshold), nil
	}}
}

// sweep measures every path over the selectivity grid (percentages)
// and returns one row per grid point: sel, then total simulated time
// per path.
func (r *Runner) sweep(tab *workload.Table, dev *disk.Device, grid []float64, ordered bool, paths []microPath) ([][]string, error) {
	pool := r.poolFor(dev, tab.File.NumPages())
	rows := make([][]string, 0, len(grid))
	for _, pct := range grid {
		row := []string{fmtSel(pct)}
		for _, p := range paths {
			op, err := p.build(tab, dev, pool, pct/100, ordered)
			if err != nil {
				return nil, fmt.Errorf("%s at %v%%: %w", p.name, pct, err)
			}
			st, _, err := measure(dev, pool, op)
			if err != nil {
				return nil, fmt.Errorf("%s at %v%%: %w", p.name, pct, err)
			}
			row = append(row, fmtTime(st.Time()))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func sweepHeader(paths []microPath) []string {
	h := []string{"sel(%)"}
	for _, p := range paths {
		h = append(h, p.name)
	}
	return h
}

// Fig5a reproduces Figure 5a: Smooth Scan vs the traditional access
// paths across the selectivity range, with an ORDER BY on the indexed
// column. Paths without an interesting order pay a posterior sort.
func (r *Runner) Fig5a() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	paths := []microPath{fullScanPath(), indexScanPath(), sortScanPath(),
		smoothPath("SmoothScan", core.Config{Policy: core.Elastic})}
	rows, err := r.sweep(tab, dev, selGrid, true, paths)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: "fig5a", Title: "Smooth Scan vs alternatives WITH order by (HDD, simulated time units)",
		Header: sweepHeader(paths), Rows: rows,
		Notes: []string{
			"paper: IndexScan degrades 10x by 0.1% sel and >100x at 100%; SortScan best below 1%;",
			"SmoothScan best above ~2.5% because it avoids the posterior sort.",
		},
	}, nil
}

// Fig5b reproduces Figure 5b: the same sweep without the ORDER BY.
func (r *Runner) Fig5b() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	paths := []microPath{fullScanPath(), indexScanPath(), sortScanPath(),
		smoothPath("SmoothScan", core.Config{Policy: core.Elastic})}
	rows, err := r.sweep(tab, dev, selGrid, false, paths)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: "fig5b", Title: "Smooth Scan vs alternatives WITHOUT order by (HDD)",
		Header: sweepHeader(paths), Rows: rows,
		Notes: []string{
			"paper: FullScan best above ~2.5%; SmoothScan within ~20% of FullScan at 100%",
			"(here the gap includes the index leaf walk, shrinking with table size).",
		},
	}, nil
}

// Fig6 reproduces Figure 6: sensitivity to the morphing modes —
// Smooth Scan capped at Mode 1 (Entire Page Probe) vs full Mode 2+
// (Flattening Access), against Full and Index Scan.
func (r *Runner) Fig6() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	grid := []float64{0, 0.001, 0.01, 0.1, 1, 5, 20, 50, 75, 100}
	paths := []microPath{
		fullScanPath(),
		indexScanPath(),
		smoothPath("SS(EntirePage)", core.Config{Policy: core.Elastic, MaxMode: core.ModeEntirePage}),
		smoothPath("SS(Flattening)", core.Config{Policy: core.Elastic}),
	}
	rows, err := r.sweep(tab, dev, grid, false, paths)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: "fig6", Title: "Sensitivity to Smooth Scan modes (HDD)",
		Header: sweepHeader(paths), Rows: rows,
		Notes: []string{
			"paper: EntirePage-only beats IndexScan 10x at 100% but stays ~14x over FullScan;",
			"Flattening closes the gap to ~1.2x of FullScan.",
		},
	}, nil
}

// Fig7a reproduces Figure 7a: the impact of the morphing policy
// (Greedy vs Selectivity-Increase vs Elastic) with the Eager trigger.
func (r *Runner) Fig7a() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	paths := []microPath{
		smoothPath("Greedy", core.Config{Policy: core.Greedy}),
		smoothPath("SelIncrease", core.Config{Policy: core.SelectivityIncrease}),
		smoothPath("Elastic", core.Config{Policy: core.Elastic}),
	}
	rows, err := r.sweep(tab, dev, fineGrid, false, paths)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: "fig7a", Title: "Impact of morphing policies (HDD)",
		Header: sweepHeader(paths), Rows: rows,
		Notes: []string{
			"paper: Greedy converges fastest and over-reads at low selectivity;",
			"Elastic adapts best and is the paper's default.",
		},
	}, nil
}

// Fig7b reproduces Figure 7b: the impact of the morphing trigger —
// Eager vs Optimizer-driven (morph after the optimizer's estimate is
// violated) vs SLA-driven (morph at the cost-model trigger point for
// an SLA of two full scans). The SLA bound row mirrors the dotted
// line of the paper's plot.
func (r *Runner) Fig7b() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	params := r.microParams(dev, tab.File.NumTuples())
	slaBound := 2 * params.FullScanCost()
	// The paper's optimizer estimate is 15K tuples of 400M; scale it.
	estimate := int64(15000.0 * float64(r.cfg.MicroRows) / 400_000_000)
	if estimate < 2 {
		estimate = 2
	}
	paths := []microPath{
		smoothPath("Eager", core.Config{Policy: core.Elastic}),
		smoothPath("OptDriven", core.Config{
			Policy:        core.SelectivityIncrease, // per the paper: SI after the shift
			Trigger:       core.OptimizerDriven,
			EstimatedCard: estimate,
		}),
		smoothPath("SLADriven", core.Config{
			Policy:     core.Greedy, // per the paper: Greedy after the SLA switch
			Trigger:    core.SLADriven,
			SLABound:   slaBound,
			CostParams: params,
		}),
	}
	rows, err := r.sweep(tab, dev, fineGrid, false, paths)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i] = append(rows[i], fmtTime(slaBound))
	}
	return &Table{
		ID: "fig7b", Title: "Impact of morphing triggers (HDD)",
		Header: append(sweepHeader(paths), "SLA-bound"),
		Rows:   rows,
		Notes: []string{
			fmt.Sprintf("optimizer estimate (scaled) = %d tuples; SLA = 2 full scans = %s units; cost-model trigger card = %d",
				estimate, fmtTime(slaBound), params.SLATriggerCard(slaBound)),
			"paper: Eager is smooth everywhere; the other triggers show a cliff where they morph",
			"but stay below the SLA bound at 100% selectivity.",
		},
	}, nil
}

// Fig9 reproduces Figure 9: the auxiliary-structure analysis — Result
// Cache overhead and hit rate (9a), morphing accuracy (9b) — on the
// ordered micro-benchmark query.
func (r *Runner) Fig9() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	pool := r.poolFor(dev, tab.File.NumPages())
	grid := []float64{0.001, 0.1, 1, 2.5, 20, 50, 75, 100}
	var rows [][]string
	for _, pct := range grid {
		pred := tab.PredForSelectivity(pct / 100)
		// Ordered run (uses the Result Cache).
		sOrd, err := core.NewSmoothScan(tab.File, pool, tab.Index, pred, core.Config{Policy: core.Elastic, Ordered: true})
		if err != nil {
			return nil, err
		}
		stOrd, _, err := measure(dev, pool, sOrd)
		if err != nil {
			return nil, err
		}
		// Unordered run (no Result Cache) to isolate the overhead.
		sUn, err := core.NewSmoothScan(tab.File, pool, tab.Index, pred, core.Config{Policy: core.Elastic})
		if err != nil {
			return nil, err
		}
		stUn, _, err := measure(dev, pool, sUn)
		if err != nil {
			return nil, err
		}
		overhead := 0.0
		if stUn.Time() > 0 {
			overhead = (stOrd.Time() - stUn.Time()) / stUn.Time()
			if overhead < 0 {
				overhead = 0
			}
		}
		ss := sOrd.Stats()
		rows = append(rows, []string{
			fmtSel(pct),
			fmtPct(overhead),
			fmtPct(ss.CacheHitRate()),
			fmtPct(ss.MorphingAccuracy()),
			fmt.Sprintf("%d", ss.CachePeakTuples),
			fmt.Sprintf("%.1fKB", float64(ss.CachePeakBytes)/1024),
		})
	}
	return &Table{
		ID: "fig9", Title: "Auxiliary data structures: Result Cache and morphing accuracy",
		Header: []string{"sel(%)", "cache-overhead", "cache-hit-rate", "morph-accuracy", "peak-tuples", "peak-bytes"},
		Rows:   rows,
		Notes: []string{
			"paper: cache overhead <= 14%; hit rate reaches 100% by 1% sel;",
			"morphing accuracy reaches 100% by 2.5% sel.",
		},
	}, nil
}

// Fig10 reproduces Figure 10: the Figure 5b sweep on the SSD profile
// (random:sequential = 2:1).
func (r *Runner) Fig10() (*Table, error) {
	tab, dev, err := r.microSSD()
	if err != nil {
		return nil, err
	}
	paths := []microPath{fullScanPath(), indexScanPath(), sortScanPath(),
		smoothPath("SmoothScan", core.Config{Policy: core.Elastic})}
	rows, err := r.sweep(tab, dev, selGrid, false, paths)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: "fig10", Title: "Smooth Scan on SSD (rand:seq = 2:1)",
		Header: sweepHeader(paths), Rows: rows,
		Notes: []string{
			"paper: the index-beneficial region extends to ~0.1% on SSD (vs 0.01% on HDD);",
			"SmoothScan beats SortScan above 0.1% and is within ~10% of FullScan at 100%.",
		},
	}, nil
}

// Fig11 reproduces Figure 11: the Switch Scan performance cliff. The
// threshold plays the optimizer's 32K-tuple estimate, scaled to the
// table size so that the cliff lands at the paper's ~0.009%
// selectivity.
func (r *Runner) Fig11() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	threshold := int64(0.00009 * float64(r.cfg.MicroRows)) // 0.009% of rows
	if threshold < 4 {
		threshold = 4
	}
	grid := []float64{0.001, 0.004, 0.008, 0.009, 0.01, 0.02, 0.05, 0.1, 1, 10, 100}
	paths := []microPath{
		fullScanPath(),
		switchPath(threshold),
		smoothPath("SmoothScan", core.Config{Policy: core.Elastic}),
	}
	rows, err := r.sweep(tab, dev, grid, false, paths)
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: "fig11", Title: fmt.Sprintf("Switch Scan cliff (threshold = %d tuples = 0.009%% sel)", threshold),
		Header: sweepHeader(paths), Rows: rows,
		Notes: []string{
			"paper: Switch Scan jumps by a full-scan's worth of time the moment the",
			"threshold is crossed, then tracks FullScan; SmoothScan degrades smoothly.",
		},
	}, nil
}
