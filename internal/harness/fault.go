package harness

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/tuple"
)

// FaultExp is the chaos experiment: the same 10%-selectivity Smooth
// Scan re-run under deterministic injected fault schedules. Recoverable
// schedules (transient failures, corrupted pages caught by checksum,
// latency spikes) must produce a result digest byte-identical to the
// fault-free oracle — the retry layer hides the faults and only the
// simulated time moves. A permanent schedule must surface as a typed
// error, never a panic or a wrong answer. Everything is simulated cost
// under fixed seeds, so the table is deterministic and lives in the
// ssbench golden like any other experiment.
func (r *Runner) FaultExp() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	pool := r.poolFor(dev, tab.File.NumPages())

	run := func(policy *disk.FaultPolicy) (uint64, int64, disk.Stats, error) {
		dev.SetFaultPolicy(policy)
		defer dev.SetFaultPolicy(nil)
		pool.Reset()
		dev.ResetStats()
		op, err := core.NewSmoothScan(tab.File, pool, tab.Index, tab.PredForSelectivity(0.10), core.Config{})
		if err != nil {
			return 0, 0, disk.Stats{}, err
		}
		rows, err := exec.Drain(op)
		if err != nil {
			return 0, 0, dev.Stats(), err
		}
		return digestRows(rows), int64(len(rows)), dev.Stats(), nil
	}

	oracle, oracleN, oracleSt, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("harness: fault-free oracle failed: %w", err)
	}

	type scenario struct {
		name   string
		policy *disk.FaultPolicy
	}
	seed := r.cfg.Seed
	scenarios := []scenario{
		{"clean", nil},
		{"transient r=0.05", disk.NewFaultPolicy(seed, disk.FaultRule{
			Space: disk.AnySpace, Kind: disk.FaultTransient, Rate: 0.05})},
		{"transient r=0.15", disk.NewFaultPolicy(seed, disk.FaultRule{
			Space: disk.AnySpace, Kind: disk.FaultTransient, Rate: 0.15})},
		{"corrupt r=0.05", disk.NewFaultPolicy(seed, disk.FaultRule{
			Space: disk.AnySpace, Kind: disk.FaultCorrupt, Rate: 0.05})},
		{"latency r=0.50 +50u", disk.NewFaultPolicy(seed, disk.FaultRule{
			Space: disk.AnySpace, Kind: disk.FaultLatency, Rate: 0.50, ExtraCost: 50})},
		{"permanent heap r=1", disk.NewFaultPolicy(seed, disk.FaultRule{
			Space: tab.File.Space(), Kind: disk.FaultPermanent, Rate: 1})},
	}

	rows := make([][]string, 0, len(scenarios))
	for _, sc := range scenarios {
		digest, n, st, err := run(sc.policy)
		result := "match oracle"
		switch {
		case err != nil:
			switch {
			case errors.Is(err, disk.ErrPermanentFault):
				result = "typed error (permanent)"
			case disk.IsFault(err):
				result = "typed error (fault)"
			default:
				return nil, fmt.Errorf("harness: scenario %q: unexpected error %w", sc.name, err)
			}
			n = 0
		case digest != oracle || n != oracleN:
			result = "MISMATCH"
		}
		rows = append(rows, []string{
			sc.name,
			fmt.Sprintf("%d", n),
			result,
			fmt.Sprintf("%d", st.Faults+st.Corruptions+st.LatencySpikes),
			fmt.Sprintf("%d", st.Retries),
			fmtTime(st.Time()),
			fmt.Sprintf("%.2fx", st.Time()/oracleSt.Time()),
		})
	}

	return &Table{
		ID:     "fault",
		Title:  "Fault injection: Smooth Scan under deterministic fault schedules (HDD, 10% sel)",
		Header: []string{"schedule", "rows", "result", "faults", "retries", "time", "vs clean"},
		Rows:   rows,
		Notes: []string{
			"Recoverable schedules (transient, corrupt, latency) must match the fault-free",
			"oracle digest exactly: checksums catch corruption before it enters the buffer",
			"pool and page-granular retry re-reads the flaky page, so only simulated time",
			"moves. The permanent schedule must surface a typed error, never a panic.",
		},
	}, nil
}

// digestRows hashes drained rows into one order-sensitive digest.
func digestRows(rows []tuple.Row) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, row := range rows {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}
