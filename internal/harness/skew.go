package harness

import (
	"fmt"

	"smoothscan/internal/access"
	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/workload"
)

// Fig8 reproduces Figure 8 (Handling Skew): a table whose first 1% of
// rows all match the predicate (a dense head) plus a 0.001% sprinkle
// of matches across the rest (the sparse tail) — overall selectivity
// just above 1%. It reports execution time (8a) and pages read (8b)
// for Full Scan, Index Scan, Selectivity-Increase Smooth Scan and
// Elastic Smooth Scan.
func (r *Runner) Fig8() (*Table, error) {
	dev := disk.NewDevice(disk.HDD)
	// The tail sprinkle scales with the table so roughly 20 sparse
	// matches exist at any scale (the paper's 1.5B-row instance uses
	// one in 100K; proportions are preserved, absolute counts are
	// not meaningful at laptop scale).
	sparseEvery := r.cfg.SkewRows / 20
	if sparseEvery < 50 {
		sparseEvery = 50
	}
	cfg := workload.SkewConfig{
		NumRows:     r.cfg.SkewRows,
		DenseRows:   r.cfg.SkewRows / 100,
		SparseEvery: sparseEvery,
		Seed:        r.cfg.Seed,
	}
	tab, err := workload.BuildSkewed(dev, cfg)
	if err != nil {
		return nil, err
	}
	pool := r.poolFor(dev, tab.File.NumPages())
	pred := tab.PredForSelectivity(0) // c2 == 0 only: [0, 0) is empty, build directly
	pred.Hi = 1                       // c2 in [0,1): the skewed match value

	type variant struct {
		name   string
		smooth *core.Config
	}
	variants := []variant{
		{name: "FullScan"},
		{name: "IndexScan"},
		{name: "SI Smooth", smooth: &core.Config{Policy: core.SelectivityIncrease}},
		{name: "Elastic Smooth", smooth: &core.Config{Policy: core.Elastic}},
	}
	var rows [][]string
	var elasticPages, siPages int64
	for _, v := range variants {
		var st disk.Stats
		var n int64
		var fetched string
		switch {
		case v.name == "FullScan":
			s, got, err := measure(dev, pool, access.NewFullScan(tab.File, pool, pred))
			if err != nil {
				return nil, err
			}
			st, n = s, got
			fetched = fmt.Sprintf("%d", st.PagesRead)
		case v.name == "IndexScan":
			s, got, err := measure(dev, pool, access.NewIndexScan(tab.File, pool, tab.Index, pred))
			if err != nil {
				return nil, err
			}
			st, n = s, got
			fetched = fmt.Sprintf("%d", st.PagesRead)
		default:
			ss, err := core.NewSmoothScan(tab.File, pool, tab.Index, pred, *v.smooth)
			if err != nil {
				return nil, err
			}
			s, got, err := measure(dev, pool, ss)
			if err != nil {
				return nil, err
			}
			st, n = s, got
			fetched = fmt.Sprintf("%d", ss.Stats().PagesFetched)
			if v.name == "SI Smooth" {
				siPages = ss.Stats().PagesFetched
			} else {
				elasticPages = ss.Stats().PagesFetched
			}
		}
		rows = append(rows, []string{v.name, fmtTime(st.Time()), fetched, fmt.Sprintf("%d", n)})
	}
	notes := []string{
		"paper: SI fetches 56x more pages than Elastic (8.8M vs 150K) and is 5x slower;",
		"Elastic shrinks its region through the sparse tail and stays near-optimal.",
	}
	if elasticPages > 0 {
		notes = append(notes, fmt.Sprintf("measured: SI fetched %.1fx the pages of Elastic", float64(siPages)/float64(elasticPages)))
	}
	return &Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("Handling skew: dense head (%d rows) + sparse tail (every %dth)", cfg.DenseRows, cfg.SparseEvery),
		Header: []string{"access path", "time", "pages read", "results"},
		Rows:   rows,
		Notes:  notes,
	}, nil
}
