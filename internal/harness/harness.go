// Package harness regenerates every table and figure of the paper's
// evaluation (Section VI) on the simulated substrate. Each experiment
// is a method on Runner returning a Table of the same rows/series the
// paper plots; cmd/ssbench prints them and bench_test.go wraps them as
// Go benchmarks.
//
// Absolute numbers are simulated cost units (1 unit = one sequential
// 8 KB page read), not seconds; the object of the reproduction is the
// shape: who wins, by what factor, and where the crossovers fall.
package harness

import (
	"fmt"
	"io"
	"strings"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/costmodel"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/workload"
)

// Config holds the scale knobs. The zero value is usable: Defaults
// fills laptop-scale sizes that preserve the paper's structure
// (the paper's tables are 400M–1.5B rows; these default to hundreds of
// thousands).
type Config struct {
	// MicroRows sizes the Section VI-C micro-benchmark table.
	MicroRows int64
	// SkewRows sizes the Section VI-D skewed table.
	SkewRows int64
	// TPCHOrders sizes the TPC-H-like database (LINEITEM ≈ 4×).
	TPCHOrders int64
	// PoolFraction sizes the buffer pool relative to the scanned
	// table (the paper keeps the cache cold and small).
	PoolFraction float64
	// Seed drives all generators.
	Seed int64
}

// Defaults fills unset fields.
func (c *Config) Defaults() {
	if c.MicroRows == 0 {
		c.MicroRows = 200_000
	}
	if c.SkewRows == 0 {
		c.SkewRows = 400_000
	}
	if c.TPCHOrders == 0 {
		c.TPCHOrders = 8_000
	}
	if c.PoolFraction == 0 {
		c.PoolFraction = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Runner executes experiments.
type Runner struct {
	cfg Config
}

// New creates a Runner, applying defaults to the config.
func New(cfg Config) *Runner {
	cfg.Defaults()
	return &Runner{cfg: cfg}
}

// Config returns the effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier ("fig5a", "tab2", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes carries per-experiment commentary (paper-vs-measured).
	Notes []string
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	printRow(dashes(widths))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// poolFor sizes a buffer pool for a table of numPages pages.
func (r *Runner) poolFor(dev *disk.Device, numPages int64) *bufferpool.Pool {
	n := int(float64(numPages) * r.cfg.PoolFraction)
	if n < 64 {
		n = 64
	}
	return bufferpool.New(dev, n)
}

// microHDD builds the micro-benchmark table on an HDD profile.
func (r *Runner) microHDD() (*workload.Table, *disk.Device, error) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: r.cfg.MicroRows, Seed: r.cfg.Seed})
	return tab, dev, err
}

// microSSD builds the micro-benchmark table on an SSD profile.
func (r *Runner) microSSD() (*workload.Table, *disk.Device, error) {
	dev := disk.NewDevice(disk.SSD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: r.cfg.MicroRows, Seed: r.cfg.Seed})
	return tab, dev, err
}

// microParams returns Section V cost-model parameters matching the
// micro table geometry.
func (r *Runner) microParams(dev *disk.Device, numTuples int64) costmodel.Params {
	return costmodel.Params{
		TupleSize: 80,
		PageSize:  dev.PageSize(),
		KeySize:   8,
		NumTuples: numTuples,
		RandCost:  dev.Profile().RandCost,
		SeqCost:   dev.Profile().SeqCost,
	}
}

// measure runs op cold (pool reset, stats reset) and returns the
// device stats delta and produced rows.
func measure(dev *disk.Device, pool *bufferpool.Pool, op exec.Operator) (disk.Stats, int64, error) {
	pool.Reset()
	dev.ResetStats()
	n, err := exec.Count(op)
	if err != nil {
		return disk.Stats{}, 0, err
	}
	return dev.Stats(), n, nil
}

// selGrid is the paper's Figure 5/6/10 selectivity grid, in percent.
var selGrid = []float64{0, 0.001, 0.01, 0.1, 1, 20, 50, 75, 100}

// fineGrid is the Figure 7 grid: a fine region at the low end plus
// coarse coverage.
var fineGrid = []float64{0, 0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009, 0.01, 5, 10, 20, 30, 40, 50, 75, 100}

func fmtSel(pct float64) string {
	if pct == 0 {
		return "0.0"
	}
	if pct < 0.01 {
		return fmt.Sprintf("%.3f", pct)
	}
	if pct < 1 {
		return fmt.Sprintf("%.2f", pct)
	}
	return fmt.Sprintf("%.0f", pct)
}

func fmtTime(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func fmtRatio(v float64) string { return fmt.Sprintf("%.2f", v) }

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
