package harness

import (
	"fmt"

	"smoothscan/internal/access"
	"smoothscan/internal/core"
	"smoothscan/internal/simcost"
)

// ModelAccuracy validates the Section V cost model (with the CPU
// extension) against the engine: for each selectivity it compares the
// model's predicted total cost with the measured simulated time for
// Full Scan, Index Scan and Smooth Scan. The paper states the model's
// accuracy "is corroborated in experiments" in its technical report;
// this is that experiment. A ratio near 1.00 means the analytical
// model predicts the engine.
func (r *Runner) ModelAccuracy() (*Table, error) {
	tab, dev, err := r.microHDD()
	if err != nil {
		return nil, err
	}
	pool := r.poolFor(dev, tab.File.NumPages())
	params := r.microParams(dev, tab.File.NumTuples()).WithCPU(simcost.Tuple, simcost.Compare)

	grid := []float64{0.001, 0.01, 0.1, 1, 10, 50, 100}
	var rows [][]string
	for _, pct := range grid {
		pred := tab.PredForSelectivity(pct / 100)
		card := int64(float64(tab.File.NumTuples()) * pct / 100)

		fsStats, _, err := measure(dev, pool, access.NewFullScan(tab.File, pool, pred))
		if err != nil {
			return nil, err
		}
		isStats, isRows, err := measure(dev, pool, access.NewIndexScan(tab.File, pool, tab.Index, pred))
		if err != nil {
			return nil, err
		}
		ss, err := core.NewSmoothScan(tab.File, pool, tab.Index, pred, core.Config{Policy: core.Elastic})
		if err != nil {
			return nil, err
		}
		ssStats, _, err := measure(dev, pool, ss)
		if err != nil {
			return nil, err
		}
		// Predictions use the measured cardinality (the model takes
		// card as input; its accuracy is about costs, not estimates).
		card = isRows
		rows = append(rows, []string{
			fmtSel(pct),
			fmt.Sprintf("%d", card),
			fmtRatio(params.FullScanTotalCost() / fsStats.Time()),
			fmtRatio(params.IndexScanTotalCost(card) / isStats.Time()),
			fmtRatio(params.SmoothScanTotalCost(card) / ssStats.Time()),
		})
	}
	return &Table{
		ID:     "model",
		Title:  "Cost-model validation: predicted / measured total cost",
		Header: []string{"sel(%)", "card", "FullScan", "IndexScan", "SmoothScan"},
		Rows:   rows,
		Notes: []string{
			"1.00 = perfect prediction. FullScan is exact by construction. IndexScan",
			"over-predicts slightly where the buffer pool absorbs repeated accesses.",
			"SmoothScan uses Eq. 23's flattened pattern (log2 jumps, Eq. 20); at",
			"mid-low selectivity the Elastic engine pays closer to one seek per result",
			"page — the Eq. 21 regime the paper notes ('could at worst be equal to the",
			"number of pages that contain the results') — so the model under-predicts",
			"there and converges above ~10% selectivity.",
		},
	}, nil
}
