package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// smallRunner keeps experiment tests fast while preserving shape.
func smallRunner() *Runner {
	return New(Config{
		MicroRows:  60_000,
		SkewRows:   80_000,
		TPCHOrders: 3_000,
		Seed:       7,
	})
}

func cell(t *testing.T, tab *Table, row int, col int) float64 {
	t.Helper()
	s := tab.Rows[row][col]
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

// colIndex finds a header column.
func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, h := range tab.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, tab.Header)
	return -1
}

func TestDefaults(t *testing.T) {
	r := New(Config{})
	cfg := r.Config()
	if cfg.MicroRows == 0 || cfg.PoolFraction == 0 || cfg.Seed == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	r := smallRunner()
	if _, err := r.ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if len(IDs()) != 18 {
		t.Errorf("IDs() = %v", IDs())
	}
}

func TestFig1Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 19 {
		t.Fatalf("rows = %d, want 19 queries", len(tab.Rows))
	}
	norm := colIndex(t, tab, "normalized-time")
	byName := map[string]float64{}
	for i, row := range tab.Rows {
		byName[row[0]] = cell(t, tab, i, norm)
	}
	// The paper's headline regressions must appear, Q12 the worst.
	if byName["Q12"] < 20 {
		t.Errorf("Q12 regression = %v, want large", byName["Q12"])
	}
	if byName["Q19"] < 3 {
		t.Errorf("Q19 regression = %v, want >3", byName["Q19"])
	}
	if byName["Q12"] <= byName["Q19"] {
		t.Errorf("Q12 (%v) should regress more than Q19 (%v)", byName["Q12"], byName["Q19"])
	}
	// Well-estimated low-selectivity queries should improve (< 1).
	if byName["Q2"] >= 1 {
		t.Errorf("Q2 should benefit from tuning: %v", byName["Q2"])
	}
}

func TestFig1Q12Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig1Q12()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	vs := colIndex(t, tab, "vs original")
	tuned := cell(t, tab, 1, vs)
	smooth := cell(t, tab, 2, vs)
	if tuned < 10 {
		t.Errorf("tuned regression = %vx, want large", tuned)
	}
	if smooth > 4 {
		t.Errorf("smooth rescue = %vx of original, want small", smooth)
	}
	// All plans return the same result rows.
	rowsCol := colIndex(t, tab, "rows")
	for i := 1; i < 3; i++ {
		if tab.Rows[i][rowsCol] != tab.Rows[0][rowsCol] {
			t.Error("plans disagree on results")
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "b,c"},
		Rows:   [][]string{{"1", `say "hi"`}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,\"b,c\"\n1,\"say \"\"hi\"\"\"\n# a note\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFig4Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 5 queries x 2 variants
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	timeCol := colIndex(t, tab, "time")
	rowsCol := colIndex(t, tab, "rows")
	for i := 0; i < len(tab.Rows); i += 2 {
		name := tab.Rows[i][0]
		pSQL := cell(t, tab, i, timeCol)
		ss := cell(t, tab, i+1, timeCol)
		if cell(t, tab, i, rowsCol) != cell(t, tab, i+1, rowsCol) {
			t.Errorf("%s: result rows differ between variants", name)
		}
		switch {
		case strings.HasPrefix(name, "Q6"), strings.HasPrefix(name, "Q7"), strings.HasPrefix(name, "Q14"):
			if ss >= pSQL {
				t.Errorf("%s: smooth scan (%v) should beat the index plan (%v)", name, ss, pSQL)
			}
		case strings.HasPrefix(name, "Q1 "), strings.HasPrefix(name, "Q4"):
			if ss > pSQL*1.8 {
				t.Errorf("%s: smooth scan overhead too large: %v vs %v", name, ss, pSQL)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Q6: SS must issue fewer requests than the index plan.
	for _, row := range tab.Rows {
		if row[0] != "Q6" {
			continue
		}
		pReq := parseK(t, row[1])
		sReq := parseK(t, row[3])
		if sReq >= pReq {
			t.Errorf("Q6: SS requests %v >= pSQL %v", sReq, pReq)
		}
	}
}

func parseK(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "K"), 64)
	if err != nil {
		t.Fatalf("bad K cell %q", s)
	}
	return v
}

func TestFig5Shapes(t *testing.T) {
	r := smallRunner()
	for _, mk := range []func() (*Table, error){r.Fig5a, r.Fig5b} {
		tab, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != len(selGrid) {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
		is := colIndex(t, tab, "IndexScan")
		fs := colIndex(t, tab, "FullScan")
		ss := colIndex(t, tab, "SmoothScan")
		last := len(tab.Rows) - 1 // 100% selectivity
		// Index scan blows up at 100%; smooth scan must be within a
		// small factor of full scan.
		if cell(t, tab, last, is) < 5*cell(t, tab, last, fs) {
			t.Errorf("%s: index scan at 100%% not catastrophic", tab.ID)
		}
		if cell(t, tab, last, ss) > 2.2*cell(t, tab, last, fs) {
			t.Errorf("%s: smooth scan at 100%% = %v vs full %v", tab.ID,
				cell(t, tab, last, ss), cell(t, tab, last, fs))
		}
		// At the lowest non-zero selectivity smooth must crush full scan.
		if cell(t, tab, 1, ss) > cell(t, tab, 1, fs)/3 {
			t.Errorf("%s: smooth scan at 0.001%% = %v vs full %v", tab.ID,
				cell(t, tab, 1, ss), cell(t, tab, 1, fs))
		}
	}
}

func TestFig5aOrderByAdvantage(t *testing.T) {
	// With ORDER BY, at high selectivity Smooth Scan must beat Full
	// Scan (which pays the posterior sort).
	r := smallRunner()
	tab, err := r.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	fs := colIndex(t, tab, "FullScan")
	ss := colIndex(t, tab, "SmoothScan")
	last := len(tab.Rows) - 1
	if cell(t, tab, last, ss) >= cell(t, tab, last, fs) {
		t.Errorf("ordered: smooth scan %v should beat full scan + sort %v",
			cell(t, tab, last, ss), cell(t, tab, last, fs))
	}
}

func TestFig6Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	epp := colIndex(t, tab, "SS(EntirePage)")
	fl := colIndex(t, tab, "SS(Flattening)")
	is := colIndex(t, tab, "IndexScan")
	last := len(tab.Rows) - 1
	// Entire-page-only beats the index scan but flattening beats both.
	if cell(t, tab, last, epp) >= cell(t, tab, last, is) {
		t.Error("entire-page probe did not beat index scan at 100%")
	}
	if cell(t, tab, last, fl) >= cell(t, tab, last, epp)/2 {
		t.Errorf("flattening (%v) should be far below entire-page (%v)",
			cell(t, tab, last, fl), cell(t, tab, last, epp))
	}
}

func TestFig7aShape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	greedy := colIndex(t, tab, "Greedy")
	elastic := colIndex(t, tab, "Elastic")
	// At a low-but-nonzero selectivity, Greedy must cost more.
	var checked bool
	for i, row := range tab.Rows {
		if row[0] == "0.005" {
			if cell(t, tab, i, greedy) <= cell(t, tab, i, elastic) {
				t.Errorf("greedy (%v) should over-read vs elastic (%v) at 0.005%%",
					cell(t, tab, i, greedy), cell(t, tab, i, elastic))
			}
			checked = true
		}
	}
	if !checked {
		t.Fatal("0.005% grid point missing")
	}
}

func TestFig7bShape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	sla := colIndex(t, tab, "SLADriven")
	bound := colIndex(t, tab, "SLA-bound")
	last := len(tab.Rows) - 1
	// At 100% selectivity the SLA-driven run must respect the bound
	// (small modelling slack allowed).
	if cell(t, tab, last, sla) > cell(t, tab, last, bound)*1.15 {
		t.Errorf("SLA run %v exceeds bound %v", cell(t, tab, last, sla), cell(t, tab, last, bound))
	}
}

func TestFig8Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	vals := map[string][2]float64{}
	for i, row := range tab.Rows {
		vals[row[0]] = [2]float64{cell(t, tab, i, 1), cell(t, tab, i, 2)}
	}
	// All variants agree on result count (checked in column 3).
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][3] != tab.Rows[0][3] {
			t.Errorf("result counts differ: %v vs %v", tab.Rows[i][3], tab.Rows[0][3])
		}
	}
	if vals["SI Smooth"][1] < 2*vals["Elastic Smooth"][1] {
		t.Errorf("SI pages %v vs elastic %v: expected a large gap",
			vals["SI Smooth"][1], vals["Elastic Smooth"][1])
	}
	if vals["Elastic Smooth"][0] >= vals["FullScan"][0] {
		t.Errorf("elastic (%v) should beat full scan (%v) at ~1%% skewed selectivity",
			vals["Elastic Smooth"][0], vals["FullScan"][0])
	}
}

func TestFig9Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	hit := colIndex(t, tab, "cache-hit-rate")
	acc := colIndex(t, tab, "morph-accuracy")
	last := len(tab.Rows) - 1
	if cell(t, tab, last, hit) < 90 {
		t.Errorf("hit rate at 100%% = %v%%, want ~100", cell(t, tab, last, hit))
	}
	if cell(t, tab, last, acc) < 99 {
		t.Errorf("morphing accuracy at 100%% = %v%%", cell(t, tab, last, acc))
	}
	if cell(t, tab, 0, hit) > cell(t, tab, last, hit) {
		t.Error("hit rate should improve with selectivity")
	}
}

func TestFig10Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	fs := colIndex(t, tab, "FullScan")
	ss := colIndex(t, tab, "SmoothScan")
	last := len(tab.Rows) - 1
	// On SSD the 100%-selectivity gap to full scan is smaller than on
	// HDD (the paper: within 10%; here bounded looser for scale).
	if cell(t, tab, last, ss) > 1.8*cell(t, tab, last, fs) {
		t.Errorf("SSD: smooth %v vs full %v", cell(t, tab, last, ss), cell(t, tab, last, fs))
	}
}

func TestFig11Cliff(t *testing.T) {
	r := smallRunner()
	tab, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	sw := colIndex(t, tab, "SwitchScan")
	ss := colIndex(t, tab, "SmoothScan")
	// Find the largest jump between adjacent grid points for each.
	maxJump := func(col int) float64 {
		worst := 1.0
		for i := 1; i < len(tab.Rows); i++ {
			prev, cur := cell(t, tab, i-1, col), cell(t, tab, i, col)
			if prev > 0 && cur/prev > worst {
				worst = cur / prev
			}
		}
		return worst
	}
	if maxJump(sw) < 3 {
		t.Errorf("switch scan shows no cliff: max jump %v", maxJump(sw))
	}
	if maxJump(ss) > maxJump(sw)/1.5 {
		t.Errorf("smooth scan jump %v not clearly smoother than switch %v", maxJump(ss), maxJump(sw))
	}
}

func TestCompetitiveRatios(t *testing.T) {
	r := smallRunner()
	tab, err := r.CompetitiveRatios()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][2] != "5.50" || tab.Rows[0][3] != "11.00" {
		t.Errorf("HDD closed forms: %v", tab.Rows[0])
	}
	if tab.Rows[1][2] != "1.50" || tab.Rows[1][3] != "3.00" {
		t.Errorf("SSD closed forms: %v", tab.Rows[1])
	}
}

func TestModelAccuracyShape(t *testing.T) {
	r := smallRunner()
	tab, err := r.ModelAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	fs := colIndex(t, tab, "FullScan")
	is := colIndex(t, tab, "IndexScan")
	ssCol := colIndex(t, tab, "SmoothScan")
	last := len(tab.Rows) - 1
	for i := range tab.Rows {
		if v := cell(t, tab, i, fs); v < 0.8 || v > 1.25 {
			t.Errorf("row %d: full-scan prediction ratio %v", i, v)
		}
		if v := cell(t, tab, i, is); v < 0.7 || v > 1.6 {
			t.Errorf("row %d: index-scan prediction ratio %v", i, v)
		}
		// Smooth Scan: Eq. 23 is the flattened best case; the engine
		// sits between it and the Eq. 21 seek-per-result-page regime
		// at mid-low selectivity.
		if v := cell(t, tab, i, ssCol); v < 0.15 || v > 2.0 {
			t.Errorf("row %d: smooth-scan prediction ratio %v", i, v)
		}
	}
	// Where flattening dominates (>=10% selectivity) the prediction
	// must be tight.
	if v := cell(t, tab, last, ssCol); v < 0.75 || v > 1.3 {
		t.Errorf("100%%: smooth-scan prediction ratio %v, want near 1", v)
	}
}

func TestConcurrentShape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Concurrent()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 4 client counts + 4 worker counts
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	tput := colIndex(t, tab, "Mtuples/s")
	for i := range tab.Rows {
		if cell(t, tab, i, tput) <= 0 {
			t.Errorf("row %d: non-positive throughput", i)
		}
	}
	// Concurrent() itself fails if any parallel configuration produces
	// a tuple count different from serial, so reaching here also
	// asserts exactly-once under both concurrency axes.
}

func TestAllRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := smallRunner()
	tabs, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(IDs()) {
		t.Errorf("All returned %d tables, want %d", len(tabs), len(IDs()))
	}
	var buf bytes.Buffer
	for _, tab := range tabs {
		tab.Print(&buf)
	}
	if buf.Len() == 0 {
		t.Error("nothing printed")
	}
}

func TestFaultExpRecoversOrTypes(t *testing.T) {
	r := smallRunner()
	tab, err := r.FaultExp()
	if err != nil {
		t.Fatal(err)
	}
	res := colIndex(t, tab, "result")
	retries := colIndex(t, tab, "retries")
	for _, row := range tab.Rows {
		switch row[0] {
		case "permanent heap r=1":
			if row[res] != "typed error (permanent)" {
				t.Errorf("%s: result = %q, want typed permanent error", row[0], row[res])
			}
		default:
			if row[res] != "match oracle" {
				t.Errorf("%s: result = %q, want oracle match", row[0], row[res])
			}
		}
		if strings.HasPrefix(row[0], "transient") && row[retries] == "0" {
			t.Errorf("%s: recovery reported zero retries", row[0])
		}
	}
}
