package harness

import (
	"fmt"

	"smoothscan/internal/tpch"
)

// JoinExp sweeps the TPC-H Q3-style hash join (LINEITEM probe x
// ORDERS build, internal/tpch.Q3) over selectivity on *both* join
// inputs and over the probe side's access path. This is the
// join-workload counterpart of the Figure 5 sweeps: the worst
// cardinality misestimates in real workloads come from join inputs,
// and the experiment shows the same full/index crossover — and Smooth
// Scan's robustness to it — when the scan feeds a join instead of an
// aggregate. Simulated cost units, fully deterministic (pinned by the
// ssbench golden).
func (r *Runner) JoinExp() (*Table, error) {
	db, err := r.tpchDB()
	if err != nil {
		return nil, err
	}
	pool := r.tpchPool(db)

	lineGrid := []float64{0.01, 0.10, 0.50}
	orderGrid := []float64{0.10, 0.50, 1.00}
	paths := []tpch.Path{tpch.PathFull, tpch.PathIndex, tpch.PathSmooth}

	var rows [][]string
	for _, lsel := range lineGrid {
		for _, osel := range orderGrid {
			row := []string{
				fmt.Sprintf("%.0f", lsel*100),
				fmt.Sprintf("%.0f", osel*100),
			}
			var joined, build, probe int64
			for i, p := range paths {
				pool.Reset()
				db.Dev.ResetStats()
				_, js, err := db.Q3(pool, tpch.ScanSpec{Path: p, Smooth: tpch.DefaultSmooth()}, lsel, osel)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					joined, build, probe = js.OutputRows, js.RightRows, js.LeftRows
				} else if js.OutputRows != joined || js.RightRows != build || js.LeftRows != probe {
					// The paths may only differ in *how* LINEITEM is
					// read; diverging join counters mean one of them
					// produced wrong rows.
					return nil, fmt.Errorf("join: %s counters (out=%d build=%d probe=%d) diverge from %s (out=%d build=%d probe=%d) at sel_l=%.2f sel_o=%.2f",
						p, js.OutputRows, js.RightRows, js.LeftRows, paths[0], joined, build, probe, lsel, osel)
				}
				row = append(row, fmtTime(db.Dev.Stats().Time()))
			}
			row = append(row,
				fmt.Sprintf("%d", build),
				fmt.Sprintf("%d", probe),
				fmt.Sprintf("%d", joined),
			)
			rows = append(rows, row)
		}
	}
	return &Table{
		ID:     "join",
		Title:  "Q3-style hash join: LINEITEM probe path sweep over both input selectivities (simulated cost units)",
		Header: []string{"sel_l(%)", "sel_o(%)", "full", "index", "smooth", "build", "probe", "joined"},
		Rows:   rows,
		Notes: []string{
			"build/probe/joined are the hash join's input and output row counts (identical",
			"across probe paths; the paths differ only in how LINEITEM is read). The",
			"full/index crossover in the probe column mirrors Figure 5; smooth tracks the",
			"winner on both sides of it without statistics.",
		},
	}, nil
}
