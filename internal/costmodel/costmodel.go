// Package costmodel implements the analytical cost model of Section V
// of the Smooth Scan paper: Equations 3–23, expressed in units of disk
// I/O cost (random and sequential page accesses), plus the
// competitive-ratio analysis summarised in Section V-A.
//
// The model is used three ways, mirroring the paper:
//   - to predict access-path costs (the optimizer's costing),
//   - to compute the SLA-driven morphing trigger (Section III-C), and
//   - to bound worst-case suboptimality (competitive analysis).
package costmodel

import (
	"fmt"
	"math"
)

// Params are the inputs of Table I.
type Params struct {
	// TupleSize is TS: tuple size in bytes, including overhead.
	TupleSize int
	// PageSize is PS in bytes; heap and index pages share it.
	PageSize int
	// KeySize is KS: indexing key size in bytes.
	KeySize int
	// NumTuples is #T.
	NumTuples int64
	// RandCost and SeqCost are the per-page access costs.
	RandCost float64
	SeqCost  float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.TupleSize <= 0 || p.PageSize <= 0 || p.KeySize <= 0:
		return fmt.Errorf("costmodel: sizes must be positive: %+v", p)
	case p.TupleSize > p.PageSize:
		return fmt.Errorf("costmodel: tuple size %d exceeds page size %d", p.TupleSize, p.PageSize)
	case p.NumTuples < 0:
		return fmt.Errorf("costmodel: negative tuple count %d", p.NumTuples)
	case p.RandCost <= 0 || p.SeqCost <= 0:
		return fmt.Errorf("costmodel: costs must be positive: %+v", p)
	}
	return nil
}

// TuplesPerPage is Eq. 3: #TP = floor(PS/TS).
func (p Params) TuplesPerPage() int64 { return int64(p.PageSize / p.TupleSize) }

// Pages is Eq. 4: #P = ceil(#T / #TP).
func (p Params) Pages() int64 {
	tp := p.TuplesPerPage()
	if tp == 0 || p.NumTuples == 0 {
		return 0
	}
	return (p.NumTuples + tp - 1) / tp
}

// Fanout is Eq. 5: fanout = floor(PS / (1.2*KS)) — 20% extra space per
// key for the child pointer.
func (p Params) Fanout() int64 { return int64(float64(p.PageSize) / (1.2 * float64(p.KeySize))) }

// Leaves is Eq. 6: #leaves = ceil(#T / fanout).
func (p Params) Leaves() int64 {
	f := p.Fanout()
	if f == 0 || p.NumTuples == 0 {
		return 0
	}
	return (p.NumTuples + f - 1) / f
}

// Height is Eq. 7: height = ceil(log_fanout(#leaves)) + 1.
func (p Params) Height() int64 {
	leaves := p.Leaves()
	if leaves <= 1 {
		return 1
	}
	f := float64(p.Fanout())
	return int64(math.Ceil(math.Log(float64(leaves))/math.Log(f))) + 1
}

// Card is Eq. 8: card = sel × #T, with sel in [0,1].
func (p Params) Card(sel float64) int64 {
	return int64(math.Round(sel * float64(p.NumTuples)))
}

// LeavesRes is Eq. 9: #leaves_res = ceil(card / fanout).
func (p Params) LeavesRes(card int64) int64 {
	f := p.Fanout()
	if f == 0 || card == 0 {
		return 0
	}
	return (card + f - 1) / f
}

// PagesWithResults is Eq. 13: #P_res = min(card, #P) — worst case
// (uniform spread), every result tuple on a distinct page.
func (p Params) PagesWithResults(card int64) int64 {
	return min64(card, p.Pages())
}

// FullScanCost is Eq. 10: all pages, sequentially.
func (p Params) FullScanCost() float64 {
	return float64(p.Pages()) * p.SeqCost
}

// IndexScanCost is Eq. 11: one tree descent plus one random heap
// access per result tuple, plus a sequential walk of the result
// leaves.
func (p Params) IndexScanCost(card int64) float64 {
	if card < 0 {
		card = 0
	}
	return float64(p.Height()+card)*p.RandCost + float64(p.LeavesRes(card))*p.SeqCost
}

// SortScanCost models the paper's Sort Scan (bitmap heap scan): the
// index leaves holding results are walked sequentially after one
// descent, qualifying TIDs are sorted (CPU, not modelled here), and
// the result pages are fetched in increasing page order — a nearly
// sequential pattern charged one random (initial seek) plus sequential
// transfers. The paper gives no closed formula for Sort Scan; this
// extension follows its description in Section II.
func (p Params) SortScanCost(card int64) float64 {
	if card <= 0 {
		return float64(p.Height()) * p.RandCost
	}
	pres := p.PagesWithResults(card)
	leafWalk := float64(p.Height())*p.RandCost + float64(p.LeavesRes(card)-1)*p.SeqCost
	// Fetching p_res pages in increasing page order, spread (worst
	// case, uniform) over the whole table: the device either seeks to
	// each result page or streams across the span, whichever is
	// cheaper — the page-ordered pattern lets the prefetcher pick.
	seekAll := float64(pres) * p.RandCost
	stream := p.RandCost + float64(p.Pages()-1)*p.SeqCost
	return leafWalk + math.Min(seekAll, stream)
}

// SmoothScanCost is Eq. 23: total cost given how the result
// cardinality is split across modes (Eq. 12). cardM0 tuples are
// produced with a classic index scan before morphing (Mode 0), cardM1
// with Entire Page Probe, cardM2 with Flattening Access.
func (p Params) SmoothScanCost(cardM0, cardM1, cardM2 int64) float64 {
	return p.Mode0Cost(cardM0) + p.Mode1Cost(cardM1) + p.Mode2Cost(cardM1, cardM2)
}

// Mode0Cost: identical to the index scan for the same cardinality
// (Section V, "Mode 0").
func (p Params) Mode0Cost(cardM0 int64) float64 {
	if cardM0 <= 0 {
		return 0
	}
	return p.IndexScanCost(cardM0)
}

// Mode1Cost is Eqs. 14–15: #P_m1 = min(card_m1, #P) pages, each a
// random access (worst case: one qualifying tuple per page).
func (p Params) Mode1Cost(cardM1 int64) float64 {
	if cardM1 <= 0 {
		return 0
	}
	return float64(min64(cardM1, p.Pages())) * p.RandCost
}

// Mode2Pages is Eq. 16: #P_m2 = min(card_m2, #P − #P_m1).
func (p Params) Mode2Pages(cardM1, cardM2 int64) int64 {
	if cardM2 <= 0 {
		return 0
	}
	pm1 := min64(max64(cardM1, 0), p.Pages())
	return min64(cardM2, p.Pages()-pm1)
}

// Mode2RandIOMin is Eq. 20: the minimum number of random jumps needed
// to fetch #P_m2 pages under doubling expansion, log2(#P_m2 + 1).
func Mode2RandIOMin(pm2 int64) int64 {
	if pm2 <= 0 {
		return 0
	}
	return int64(math.Ceil(math.Log2(float64(pm2 + 1))))
}

// Mode2RandIOMax is Eq. 21: min(#P_m2, log2(#P + 1)) — the paper notes
// both bounds converge to log2(#P+1), which callers typically use.
func (p Params) Mode2RandIOMax(pm2 int64) int64 {
	if pm2 <= 0 {
		return 0
	}
	bound := int64(math.Ceil(math.Log2(float64(p.Pages() + 1))))
	return min64(pm2, bound)
}

// Mode2Cost is Eq. 22: jumps at random cost, the rest sequential.
func (p Params) Mode2Cost(cardM1, cardM2 int64) float64 {
	pm2 := p.Mode2Pages(cardM1, cardM2)
	if pm2 == 0 {
		return 0
	}
	randio := Mode2RandIOMin(pm2)
	return float64(randio)*p.RandCost + float64(pm2-randio)*p.SeqCost
}

// WorstCaseSmoothScanCost is the upper bound used by the SLA trigger:
// the remaining cost of a Smooth Scan that must still fetch every heap
// page (selectivity 100%) after cardM0 tuples were produced with the
// traditional index. On top of the Eq. 23 terms it accounts for two
// costs Section V leaves out but a real execution pays: walking the
// remaining index leaves (the scan is still driven by leaf pointers)
// and the head movement between index and heap around each morphing
// expansion (two seeks per expansion, at most ~log2(#P) expansions).
func (p Params) WorstCaseSmoothScanCost(cardM0 int64) float64 {
	rest := p.NumTuples - max64(cardM0, 0)
	if rest < 0 {
		rest = 0
	}
	// After the morph every page not yet seen is fetched with the
	// flattening pattern; Mode 1 covers only the first page probe.
	eq23 := p.SmoothScanCost(cardM0, min64(rest, 1), rest-min64(rest, 1))
	leafWalk := float64(p.LeavesRes(rest)) * p.SeqCost
	bounces := 2 * float64(Mode2RandIOMin(p.Pages())) * p.RandCost
	return eq23 + leafWalk + bounces
}

// SLATriggerCard computes the morphing trigger for the SLA-driven
// strategy (Section III-C): the largest cardinality that may be
// produced with a traditional index scan such that, should selectivity
// turn out to be 100%, morphing at that point still completes within
// slaBound cost units. Returns 0 when even immediate morphing cannot
// meet the bound.
func (p Params) SLATriggerCard(slaBound float64) int64 {
	lo, hi := int64(0), p.NumTuples
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.Mode0Cost(mid)+p.WorstCaseSmoothScanCost(mid) <= slaBound {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// OptimalCost returns the cheapest of the traditional alternatives
// (full scan, index scan, sort scan) for the cardinality — the
// denominator of the competitive ratio.
func (p Params) OptimalCost(card int64) float64 {
	return math.Min(p.FullScanCost(), math.Min(p.IndexScanCost(card), p.SortScanCost(card)))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
