package costmodel

import "testing"

func cpuParams(n int64) CPUParams {
	return paperParams(n).WithCPU(0.001, 0.0002)
}

func TestCPUTermsAreAdditive(t *testing.T) {
	c := cpuParams(1_000_000)
	if c.FullScanTotalCost() <= c.FullScanCost() {
		t.Error("full scan CPU term missing")
	}
	card := c.Card(0.01)
	if c.IndexScanTotalCost(card) <= c.IndexScanCost(card) {
		t.Error("index scan CPU term missing")
	}
	if c.SortScanTotalCost(card) <= c.SortScanCost(card) {
		t.Error("sort scan CPU terms missing")
	}
}

func TestFullScanCPUShareMatchesPremise(t *testing.T) {
	// The paper's premise: scanning tuples costs an order of
	// magnitude less than fetching their pages. With 102 tuples/page
	// the CPU share of a full scan must stay near 10%.
	c := cpuParams(1_000_000)
	cpu := c.FullScanTotalCost() - c.FullScanCost()
	if share := cpu / c.FullScanTotalCost(); share < 0.05 || share > 0.2 {
		t.Errorf("full-scan CPU share = %v, want ~0.1", share)
	}
}

func TestSmoothScanTotalCostShape(t *testing.T) {
	c := cpuParams(1_000_000)
	// Degenerate: no results -> just the descent.
	if got := c.SmoothScanTotalCost(0); got != float64(c.Height())*c.RandCost {
		t.Errorf("zero-card cost = %v", got)
	}
	// Low cardinality: far below a full scan.
	low := c.SmoothScanTotalCost(10)
	if low >= c.FullScanTotalCost()/10 {
		t.Errorf("low-card smooth cost %v too close to full scan %v", low, c.FullScanTotalCost())
	}
	// Full selectivity: within a modest factor of the full scan
	// (leaf walk + expansion seeks + same CPU).
	high := c.SmoothScanTotalCost(c.NumTuples)
	fs := c.FullScanTotalCost()
	if high < fs || high > 1.6*fs {
		t.Errorf("full-selectivity smooth cost %v vs full scan %v", high, fs)
	}
	// Monotone in cardinality.
	prev := 0.0
	for _, sel := range []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1} {
		got := c.SmoothScanTotalCost(c.Card(sel))
		if got < prev {
			t.Errorf("not monotone at sel %v: %v < %v", sel, got, prev)
		}
		prev = got
	}
}

func TestSortCPU(t *testing.T) {
	if sortCPU(0, 1) != 0 || sortCPU(1, 1) != 0 {
		t.Error("trivial sorts should cost 0")
	}
	if sortCPU(1024, 0.0002) <= sortCPU(512, 0.0002) {
		t.Error("sort CPU not increasing")
	}
}
