package costmodel

import "math"

// This file implements the competitive analysis summarised in
// Section V-A of the paper. The full derivation lives in the paper's
// technical report; the closed forms below reproduce the numbers the
// paper states: with r = rand_cost/seq_cost, the worst case for the
// Elastic policy is an access pattern where every second page holds
// exactly one match — local selectivity never rises above global
// selectivity, so Smooth Scan never morphs further and pays one random
// jump plus one (partly wasted) sequential read per two pages, against
// a full scan paying one sequential read per page:
//
//	CR_elastic = (r + 1) / 2
//
// and the theoretical bound (region size pinned at one page, every
// probe a random access plus a wasted adjacent read) is
//
//	CR_bound = r + 1.
//
// For the paper's HDD (r = 10) these give 5.5 and 11, matching
// Section V-A. The paper quotes 3 and 6 for SSDs, which correspond to
// r = 5; its Section VI-E measurement of the SSD used in experiments
// is r = 2, for which the formulas give 1.5 and 3. We report the
// formula value for whatever profile is supplied.

// ElasticWorstCaseCR is the closed-form worst-case competitive ratio
// of the Elastic policy versus the optimal access path: (r+1)/2.
func (p Params) ElasticWorstCaseCR() float64 {
	r := p.RandCost / p.SeqCost
	return (r + 1) / 2
}

// TheoreticalCRBound is the hard upper bound of Section V-A: r + 1.
func (p Params) TheoreticalCRBound() float64 {
	return p.RandCost/p.SeqCost + 1
}

// EveryKthPageCR computes, numerically, the competitive ratio of an
// Elastic Smooth Scan over the adversarial family "exactly one match
// every k-th page" (k >= 1). For k = 1 consecutive probes are
// physically sequential and the ratio approaches 1; k = 2 is the
// paper's worst case; large k approaches the index-scan regime where
// Smooth Scan is itself near-optimal.
func (p Params) EveryKthPageCR(k int64) float64 {
	if k < 1 {
		k = 1
	}
	pages := p.Pages()
	if pages == 0 {
		return 1
	}
	card := pages / k
	if card == 0 {
		card = 1
	}
	var ssCost float64
	if k == 1 {
		// Adjacent probes: after the first random access the head
		// stays in place; every subsequent page is sequential.
		ssCost = float64(p.Height())*p.RandCost + p.RandCost + float64(pages-1)*p.SeqCost
	} else {
		// Each probe jumps k pages ahead (random) and the region
		// (stuck at <= 2 pages) adds one sequential read; leaf
		// pointers are consumed from a sequential leaf walk.
		probes := card
		regionSeq := minf(2, float64(k)) - 1
		ssCost = float64(p.Height())*p.RandCost +
			float64(p.LeavesRes(card))*p.SeqCost +
			float64(probes)*(p.RandCost+regionSeq*p.SeqCost)
	}
	return ssCost / p.OptimalCost(card)
}

// MaxAdversarialCR scans the every-k-th-page family for the worst
// ratio, the numeric counterpart of ElasticWorstCaseCR.
func (p Params) MaxAdversarialCR(maxK int64) (worst float64, atK int64) {
	for k := int64(1); k <= maxK; k++ {
		if cr := p.EveryKthPageCR(k); cr > worst {
			worst, atK = cr, k
		}
	}
	return worst, atK
}

// GreedyLowSelectivityCR computes the competitive ratio of the Greedy
// policy at a given (low) selectivity: Greedy doubles the morphing
// region on every probe, so after n probes it has read about 2^n
// pages regardless of whether they contain results. Section V-A notes
// this yields a CR that grows (sublinearly) with the table size, which
// is why Greedy is rejected.
func (p Params) GreedyLowSelectivityCR(sel float64) float64 {
	return p.GreedyCRForCard(p.Card(sel))
}

// GreedyCRForCard is GreedyLowSelectivityCR for an explicit result
// cardinality, which makes the growth-with-table-size effect directly
// comparable across table sizes.
func (p Params) GreedyCRForCard(card int64) float64 {
	if card == 0 {
		return 1
	}
	pages := p.Pages()
	// Pages fetched by doubling until card probes happened or the
	// table is exhausted: 2^card - 1, capped at #P.
	var fetched int64
	if card >= 63 {
		fetched = pages
	} else {
		fetched = min64((int64(1)<<uint(card))-1, pages)
	}
	jumps := min64(card, Mode2RandIOMin(fetched)+1)
	ssCost := float64(p.Height())*p.RandCost +
		float64(jumps)*p.RandCost + float64(fetched-jumps)*p.SeqCost
	return ssCost / p.OptimalCost(card)
}

func minf(a, b float64) float64 { return math.Min(a, b) }
