package costmodel

import "math"

// CPU-inclusive cost model.
//
// Section V models I/O only and notes that "a detailed cost model
// including the CPU costs can be found in [the technical report]".
// This file supplies that extension: per-tuple processing and per-
// comparison sort costs on top of the I/O terms, using the same cost
// constants the simulation charges (internal/simcost), so predictions
// are directly comparable with measured engine time.

// CPUParams extends Params with CPU cost rates (cost units per
// operation; one sequential page read = 1 unit).
type CPUParams struct {
	Params
	// TupleCPU is the cost of decoding one tuple and evaluating the
	// predicate on it.
	TupleCPU float64
	// CompareCPU is the cost of one comparison during sorting.
	CompareCPU float64
}

// WithCPU attaches the default simulation CPU rates to I/O parameters.
func (p Params) WithCPU(tupleCPU, compareCPU float64) CPUParams {
	return CPUParams{Params: p, TupleCPU: tupleCPU, CompareCPU: compareCPU}
}

// FullScanTotalCost is the full scan's I/O plus examining every tuple.
func (c CPUParams) FullScanTotalCost() float64 {
	return c.FullScanCost() + float64(c.NumTuples)*c.TupleCPU
}

// IndexScanTotalCost is the index scan's I/O plus per-result decoding.
func (c CPUParams) IndexScanTotalCost(card int64) float64 {
	return c.IndexScanCost(card) + float64(card)*c.TupleCPU
}

// SortScanTotalCost adds the TID pre-sort and per-result decoding to
// the sort scan's I/O.
func (c CPUParams) SortScanTotalCost(card int64) float64 {
	return c.SortScanCost(card) + sortCPU(card, c.CompareCPU) + float64(card)*c.TupleCPU
}

// SmoothScanTotalCost predicts an Eager smooth scan at the given
// result cardinality over a uniformly spread table: Eq. 23 I/O for the
// mode split (one page in Mode 1, the rest flattened), plus the
// engine-visible terms Section V leaves out (result-leaf walk,
// expansion seeks) and the CPU to analyse every tuple of every fetched
// page (the Entire-Page-Probe trade of CPU for I/O).
func (c CPUParams) SmoothScanTotalCost(card int64) float64 {
	if card <= 0 {
		return float64(c.Height()) * c.RandCost
	}
	m1 := min64(card, 1)
	io := c.SmoothScanCost(0, m1, card-m1)
	io += float64(c.LeavesRes(card)) * c.SeqCost
	io += 2 * float64(Mode2RandIOMin(c.PagesWithResults(card))) * c.RandCost
	pagesFetched := c.Mode2Pages(m1, card-m1) + m1
	examined := pagesFetched * c.TuplesPerPage()
	return io + float64(examined)*c.TupleCPU
}

func sortCPU(n int64, perCompare float64) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n)) * perCompare
}
