package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// paperParams mirrors the paper's micro-benchmark: 80-byte tuples
// (10 int columns) in 8 KB pages, 8-byte keys, HDD cost ratio 10:1.
func paperParams(numTuples int64) Params {
	return Params{
		TupleSize: 80,
		PageSize:  8192,
		KeySize:   8,
		NumTuples: numTuples,
		RandCost:  10,
		SeqCost:   1,
	}
}

func TestValidate(t *testing.T) {
	if err := paperParams(1000).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{TupleSize: 0, PageSize: 8192, KeySize: 8, RandCost: 1, SeqCost: 1},
		{TupleSize: 9000, PageSize: 8192, KeySize: 8, RandCost: 1, SeqCost: 1},
		{TupleSize: 80, PageSize: 8192, KeySize: 8, NumTuples: -1, RandCost: 1, SeqCost: 1},
		{TupleSize: 80, PageSize: 8192, KeySize: 8, RandCost: 0, SeqCost: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestBaseFormulas(t *testing.T) {
	p := paperParams(400_000)
	if got := p.TuplesPerPage(); got != 102 { // floor(8192/80)
		t.Errorf("TuplesPerPage = %d, want 102", got)
	}
	if got := p.Pages(); got != 3922 { // ceil(400000/102)
		t.Errorf("Pages = %d, want 3922", got)
	}
	if got := p.Fanout(); got != 853 { // floor(8192/9.6)
		t.Errorf("Fanout = %d, want 853", got)
	}
	if got := p.Leaves(); got != 469 { // ceil(400000/853)
		t.Errorf("Leaves = %d, want 469", got)
	}
	if got := p.Height(); got != 2 { // ceil(log853(469)) + 1
		t.Errorf("Height = %d, want 2", got)
	}
	if got := p.Card(0.01); got != 4000 {
		t.Errorf("Card(1%%) = %d, want 4000", got)
	}
	if got := p.LeavesRes(4000); got != 5 { // ceil(4000/853)
		t.Errorf("LeavesRes = %d, want 5", got)
	}
}

func TestDegenerateParams(t *testing.T) {
	p := paperParams(0)
	if p.Pages() != 0 || p.Leaves() != 0 || p.Height() != 1 {
		t.Errorf("empty table: pages=%d leaves=%d height=%d", p.Pages(), p.Leaves(), p.Height())
	}
	if p.FullScanCost() != 0 {
		t.Errorf("FullScanCost of empty table = %v", p.FullScanCost())
	}
	if p.LeavesRes(0) != 0 {
		t.Errorf("LeavesRes(0) = %d", p.LeavesRes(0))
	}
}

func TestFullScanCostConstantInSelectivity(t *testing.T) {
	p := paperParams(1_000_000)
	c := p.FullScanCost()
	if c != float64(p.Pages()) {
		t.Errorf("FullScanCost = %v, want %v", c, float64(p.Pages()))
	}
}

func TestIndexScanCostGrowsLinearly(t *testing.T) {
	p := paperParams(1_000_000)
	c1 := p.IndexScanCost(p.Card(0.001))
	c2 := p.IndexScanCost(p.Card(0.01))
	c3 := p.IndexScanCost(p.Card(0.1))
	if !(c1 < c2 && c2 < c3) {
		t.Errorf("index scan cost not increasing: %v %v %v", c1, c2, c3)
	}
	// The dominant term is card × rand_cost.
	card := p.Card(0.01)
	if got := p.IndexScanCost(card); got < float64(card)*p.RandCost {
		t.Errorf("IndexScanCost(%d) = %v below card×rand", card, got)
	}
}

// The crossover between index scan and full scan should fall at a
// fraction of a percent selectivity on HDD — the paper places the
// index-beneficial region below 0.01% (Section VI-E).
func TestHDDCrossoverBelowOnePercent(t *testing.T) {
	p := paperParams(10_000_000)
	fs := p.FullScanCost()
	if p.IndexScanCost(p.Card(0.0001)) >= fs {
		t.Errorf("index scan at 0.01%% should beat full scan: %v vs %v",
			p.IndexScanCost(p.Card(0.0001)), fs)
	}
	if p.IndexScanCost(p.Card(0.02)) <= fs {
		t.Errorf("index scan at 2%% should lose to full scan: %v vs %v",
			p.IndexScanCost(p.Card(0.02)), fs)
	}
}

func TestSSDExtendsIndexRange(t *testing.T) {
	hdd := paperParams(10_000_000)
	ssd := hdd
	ssd.RandCost = 2
	// Find the highest selectivity (over a grid) where the index scan
	// still beats the full scan, per device.
	cross := func(p Params) float64 {
		last := 0.0
		for _, sel := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
			if p.IndexScanCost(p.Card(sel)) < p.FullScanCost() {
				last = sel
			}
		}
		return last
	}
	if cross(ssd) <= cross(hdd) {
		t.Errorf("SSD crossover (%v) should exceed HDD crossover (%v)", cross(ssd), cross(hdd))
	}
}

func TestMode2Recurrence(t *testing.T) {
	// Eq. 18: after n doublings the region sums to 2^n - 1 pages
	// fetched with n random jumps; Eq. 20 inverts that.
	cases := []struct {
		pm2  int64
		want int64
	}{{0, 0}, {1, 1}, {3, 2}, {7, 3}, {8, 4}, {15, 4}, {16, 5}}
	for _, c := range cases {
		if got := Mode2RandIOMin(c.pm2); got != c.want {
			t.Errorf("Mode2RandIOMin(%d) = %d, want %d", c.pm2, got, c.want)
		}
	}
}

func TestMode2RandIOMax(t *testing.T) {
	p := paperParams(1_000_000) // 9804 pages
	bound := int64(math.Ceil(math.Log2(float64(p.Pages() + 1))))
	if got := p.Mode2RandIOMax(5); got != 5 {
		t.Errorf("small pm2: got %d, want 5", got)
	}
	if got := p.Mode2RandIOMax(1 << 40); got != bound {
		t.Errorf("large pm2: got %d, want bound %d", got, bound)
	}
}

func TestSmoothScanCostComposition(t *testing.T) {
	p := paperParams(1_000_000)
	// All-mode-2 cost of a full-selectivity scan should be close to a
	// full scan: log2(#P) random jumps instead of one initial seek.
	ss := p.SmoothScanCost(0, 0, p.NumTuples)
	fs := p.FullScanCost()
	if ss < fs {
		t.Errorf("smooth scan cheaper than full scan: %v < %v", ss, fs)
	}
	if ss > fs*1.2 {
		t.Errorf("smooth scan at 100%% selectivity should be within 20%% of full scan: %v vs %v", ss, fs)
	}
	// Mode 1 only: every tuple a random page access — close to the
	// index scan but without repeated accesses.
	m1 := p.SmoothScanCost(0, p.Card(0.01), 0)
	is := p.IndexScanCost(p.Card(0.01))
	if m1 > is {
		t.Errorf("mode-1 cost should not exceed index scan: %v vs %v", m1, is)
	}
}

func TestMode2PagesSkipsMode1Pages(t *testing.T) {
	p := paperParams(1_000_000)
	pages := p.Pages()
	if got := p.Mode2Pages(100, p.NumTuples); got != pages-100 {
		t.Errorf("Mode2Pages = %d, want %d", got, pages-100)
	}
	if got := p.Mode2Pages(0, 50); got != 50 {
		t.Errorf("Mode2Pages small card = %d, want 50", got)
	}
	if got := p.Mode2Pages(0, 0); got != 0 {
		t.Errorf("Mode2Pages(0,0) = %d", got)
	}
}

func TestSLATriggerCard(t *testing.T) {
	p := paperParams(1_000_000)
	// SLA of two full scans (the paper's Figure 7b setting).
	sla := 2 * p.FullScanCost()
	trigger := p.SLATriggerCard(sla)
	if trigger <= 0 {
		t.Fatalf("trigger = %d, want positive", trigger)
	}
	// At the trigger the worst-case completion must fit the bound...
	cost := p.Mode0Cost(trigger) + p.WorstCaseSmoothScanCost(trigger)
	if cost > sla {
		t.Errorf("cost at trigger %v exceeds SLA %v", cost, sla)
	}
	// ...and one more tuple must not.
	cost2 := p.Mode0Cost(trigger+1) + p.WorstCaseSmoothScanCost(trigger+1)
	if cost2 <= sla {
		t.Errorf("trigger not maximal: %d", trigger)
	}
	// An impossible SLA yields trigger 0.
	if got := p.SLATriggerCard(0); got != 0 {
		t.Errorf("impossible SLA trigger = %d", got)
	}
}

func TestCompetitiveRatioClosedForms(t *testing.T) {
	p := paperParams(1_000_000)
	if got := p.ElasticWorstCaseCR(); got != 5.5 {
		t.Errorf("HDD ElasticWorstCaseCR = %v, want 5.5", got)
	}
	if got := p.TheoreticalCRBound(); got != 11 {
		t.Errorf("HDD TheoreticalCRBound = %v, want 11", got)
	}
	ssd := p
	ssd.RandCost = 2
	if got := ssd.ElasticWorstCaseCR(); got != 1.5 {
		t.Errorf("SSD ElasticWorstCaseCR = %v, want 1.5", got)
	}
	if got := ssd.TheoreticalCRBound(); got != 3 {
		t.Errorf("SSD TheoreticalCRBound = %v, want 3", got)
	}
}

func TestAdversarialCRNearClosedForm(t *testing.T) {
	p := paperParams(10_000_000)
	worst, atK := p.MaxAdversarialCR(64)
	if atK != 2 {
		t.Errorf("worst adversarial k = %d, want 2 (every second page)", atK)
	}
	// The numeric worst case should be near (r+1)/2 = 5.5 (leaf-walk
	// and descent terms shift it slightly).
	if worst < 4.5 || worst > 6.5 {
		t.Errorf("numeric worst CR = %v, want ≈5.5", worst)
	}
	// k = 1 (every page) is nearly optimal thanks to sequential heads.
	if cr := p.EveryKthPageCR(1); cr > 1.2 {
		t.Errorf("every-page CR = %v, want ≈1", cr)
	}
}

func TestGreedyCRGrowsWithTableSize(t *testing.T) {
	small := paperParams(100_000)
	big := paperParams(10_000_000)
	// Fixed low cardinality: Greedy's doubling covers both tables
	// entirely (2^20 pages >> #P), so its wasted work scales with the
	// table while the optimal (index) cost stays fixed.
	const card = 20
	crSmall := small.GreedyCRForCard(card)
	crBig := big.GreedyCRForCard(card)
	if crBig <= crSmall {
		t.Errorf("greedy CR should grow with table size: small=%v big=%v", crSmall, crBig)
	}
	if crSmall <= 1 {
		t.Errorf("greedy CR at low selectivity should exceed 1: %v", crSmall)
	}
	if crSmall2 := small.GreedyLowSelectivityCR(float64(card) / 100_000); crSmall2 != crSmall {
		t.Errorf("GreedyLowSelectivityCR = %v, want %v", crSmall2, crSmall)
	}
}

// Property: smooth scan cost is monotone in each mode's cardinality,
// and never negative.
func TestSmoothScanCostMonotoneProperty(t *testing.T) {
	p := paperParams(1_000_000)
	f := func(a, b uint32, delta uint16) bool {
		m1, m2 := int64(a)%p.NumTuples, int64(b)%p.NumTuples
		base := p.SmoothScanCost(0, m1, m2)
		if base < 0 {
			return false
		}
		return p.SmoothScanCost(0, m1+int64(delta), m2) >= base &&
			p.SmoothScanCost(0, m1, m2+int64(delta)) >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the SLA trigger is monotone in the SLA bound.
func TestSLATriggerMonotoneProperty(t *testing.T) {
	p := paperParams(200_000)
	f := func(a, b uint16) bool {
		la, lb := float64(a), float64(b)
		if la > lb {
			la, lb = lb, la
		}
		return p.SLATriggerCard(la*100) <= p.SLATriggerCard(lb*100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
