// Package qbridge bridges the root package's query builder to the
// wire codec without an import cycle: ssclient composes queries with
// the real smoothscan.Query builder (so the two surfaces cannot
// drift), and converts them to wire.QuerySpec through the hook the
// root package installs at init. The hook traffics in `any` because
// this package can name neither smoothscan.Query (cycle) nor anything
// beyond the wire types.
package qbridge

import "smoothscan/internal/wire"

// Spec converts a *smoothscan.Query (passed as any) into its wire
// spec. Installed by the root package's init; always non-nil once
// smoothscan is linked in, which any importer of ssclient guarantees.
var Spec func(q any) (wire.QuerySpec, error)
