// Package integration_test exercises the engine across module
// boundaries: every access path over every workload shape, cold and
// warm caches, both device profiles, failure injection through whole
// plans, and operator re-open semantics.
package integration_test

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"smoothscan/internal/access"
	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/tpch"
	"smoothscan/internal/tuple"
	"smoothscan/internal/workload"
)

// buildScan constructs any access path over a workload table.
func buildScan(tab *workload.Table, pool *bufferpool.Pool, pred tuple.RangePred, kind string) (exec.Operator, error) {
	switch kind {
	case "full":
		return access.NewFullScan(tab.File, pool, pred), nil
	case "index":
		return access.NewIndexScan(tab.File, pool, tab.Index, pred), nil
	case "sort":
		return access.NewSortScan(tab.File, pool, tab.Index, pred, false), nil
	case "switch":
		return access.NewSwitchScan(tab.File, pool, tab.Index, pred, 64), nil
	case "smooth-elastic":
		return core.NewSmoothScan(tab.File, pool, tab.Index, pred, core.Config{Policy: core.Elastic})
	case "smooth-greedy":
		return core.NewSmoothScan(tab.File, pool, tab.Index, pred, core.Config{Policy: core.Greedy})
	case "smooth-si-ordered":
		return core.NewSmoothScan(tab.File, pool, tab.Index, pred, core.Config{Policy: core.SelectivityIncrease, Ordered: true})
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

var allKinds = []string{"full", "index", "sort", "switch", "smooth-elastic", "smooth-greedy", "smooth-si-ordered"}

func normalise(rows []tuple.Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func rowsEqual(a, b []tuple.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestMatrixAllPathsAllWorkloads is the big cross-product: every
// access path returns the identical multiset over uniform and skewed
// tables at several selectivities, with a deliberately small buffer
// pool forcing evictions.
func TestMatrixAllPathsAllWorkloads(t *testing.T) {
	type wl struct {
		name  string
		build func(dev *disk.Device) (*workload.Table, error)
	}
	workloads := []wl{
		{"uniform", func(dev *disk.Device) (*workload.Table, error) {
			return workload.BuildMicro(dev, workload.MicroConfig{NumRows: 20_000, Seed: 9})
		}},
		{"skewed", func(dev *disk.Device) (*workload.Table, error) {
			return workload.BuildSkewed(dev, workload.SkewConfig{
				NumRows: 20_000, DenseRows: 400, SparseEvery: 1_000, Seed: 9,
			})
		}},
	}
	sels := []float64{0, 0.0005, 0.01, 0.5, 1}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			dev := disk.NewDevice(disk.HDD)
			tab, err := w.build(dev)
			if err != nil {
				t.Fatal(err)
			}
			pool := bufferpool.New(dev, 24) // tiny: heavy eviction
			for _, sel := range sels {
				pred := tab.PredForSelectivity(sel)
				var want []tuple.Row
				for i, kind := range allKinds {
					pool.Reset()
					op, err := buildScan(tab, pool, pred, kind)
					if err != nil {
						t.Fatal(err)
					}
					got, err := exec.Drain(op)
					if err != nil {
						t.Fatalf("%s sel=%v: %v", kind, sel, err)
					}
					normalise(got)
					if i == 0 {
						want = got
						continue
					}
					if !rowsEqual(got, want) {
						t.Fatalf("%s sel=%v: %d rows, reference %d", kind, sel, len(got), len(want))
					}
				}
			}
		})
	}
}

// TestSmoothScanStatsInvariants checks the operator's counters against
// ground truth on a mid-selectivity scan.
func TestSmoothScanStatsInvariants(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 30_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, 64)
	pred := tab.PredForSelectivity(0.3)
	ss, err := core.NewSmoothScan(tab.File, pool, tab.Index, pred, core.Config{Policy: core.Elastic, Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(ss)
	if err != nil {
		t.Fatal(err)
	}
	st := ss.Stats()
	if st.Produced != int64(len(rows)) {
		t.Errorf("Produced = %d, drained %d", st.Produced, len(rows))
	}
	if st.PagesFetched > tab.File.NumPages() {
		t.Errorf("PagesFetched %d > table pages %d", st.PagesFetched, tab.File.NumPages())
	}
	if st.PagesWithResults > st.PagesFetched {
		t.Error("PagesWithResults > PagesFetched")
	}
	// Every produced tuple is either a direct return or a cache hit.
	if st.DirectReturns+st.CacheHits != st.Produced {
		t.Errorf("direct %d + hits %d != produced %d", st.DirectReturns, st.CacheHits, st.Produced)
	}
	// Every cached tuple was eventually consumed.
	if st.CacheInserts != st.CacheHits {
		t.Errorf("inserts %d != hits %d (cache must drain on a full range)", st.CacheInserts, st.CacheHits)
	}
	if st.PeakRegionPages < 1 || st.PeakRegionPages > core.DefaultMaxRegionPages {
		t.Errorf("PeakRegionPages = %d", st.PeakRegionPages)
	}
}

// TestColdVsWarm: a warm second run must be strictly cheaper for every
// path, and free when the pool holds the whole table.
func TestColdVsWarm(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 10_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pool bigger than heap + index.
	pool := bufferpool.New(dev, 4096)
	pred := tab.PredForSelectivity(0.2)
	for _, kind := range []string{"full", "index", "smooth-elastic"} {
		pool.Reset()
		dev.ResetStats()
		op, _ := buildScan(tab, pool, pred, kind)
		if _, err := exec.Drain(op); err != nil {
			t.Fatal(err)
		}
		cold := dev.Stats().IOTime
		dev.ResetStats()
		op2, _ := buildScan(tab, pool, pred, kind)
		if _, err := exec.Drain(op2); err != nil {
			t.Fatal(err)
		}
		warm := dev.Stats().IOTime
		if warm != 0 {
			t.Errorf("%s: warm run cost %v I/O with an all-covering pool", kind, warm)
		}
		if cold == 0 {
			t.Errorf("%s: cold run cost nothing", kind)
		}
	}
}

// TestSSDNeverSlowerThanHDD: identical scans cost at most the HDD time
// on the SSD profile (random accesses are cheaper, sequential equal).
func TestSSDNeverSlowerThanHDD(t *testing.T) {
	run := func(profile disk.Profile) float64 {
		dev := disk.NewDevice(profile)
		tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 15_000, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		pool := bufferpool.New(dev, 32)
		var total float64
		for _, sel := range []float64{0.001, 0.05, 0.7} {
			for _, kind := range []string{"full", "index", "smooth-elastic"} {
				pool.Reset()
				dev.ResetStats()
				op, _ := buildScan(tab, pool, tab.PredForSelectivity(sel), kind)
				if _, err := exec.Drain(op); err != nil {
					t.Fatal(err)
				}
				total += dev.Stats().IOTime
			}
		}
		return total
	}
	hdd := run(disk.HDD)
	ssd := run(disk.SSD)
	if ssd > hdd {
		t.Errorf("SSD total %v > HDD total %v", ssd, hdd)
	}
}

// TestOperatorReopen: every access path can be closed and reopened,
// returning the same result set.
func TestOperatorReopen(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 5_000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, 64)
	pred := tab.PredForSelectivity(0.1)
	for _, kind := range allKinds {
		op, err := buildScan(tab, pool, pred, kind)
		if err != nil {
			t.Fatal(err)
		}
		first, err := exec.Drain(op)
		if err != nil {
			t.Fatalf("%s first run: %v", kind, err)
		}
		second, err := exec.Drain(op) // Drain re-opens
		if err != nil {
			t.Fatalf("%s second run: %v", kind, err)
		}
		normalise(first)
		normalise(second)
		if !rowsEqual(first, second) {
			t.Errorf("%s: reopen changed the result (%d vs %d rows)", kind, len(first), len(second))
		}
	}
}

// TestFailureInjectionThroughJoinPlans: an I/O error under a smooth
// scan feeding a hash join must surface as ErrInjected, not a wrong
// result.
func TestFailureInjectionThroughJoinPlans(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	db, err := tpch.Gen(dev, tpch.Config{NumOrders: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, 64)
	for _, q := range db.Queries() {
		pool.Reset()
		dev.FailAfter(3)
		_, err := q.Run(pool, tpch.ScanSpec{Path: tpch.PathSmooth, Smooth: tpch.DefaultSmooth()})
		if !errors.Is(err, disk.ErrInjected) {
			t.Errorf("%s: err = %v, want ErrInjected", q.Name, err)
		}
		dev.FailAfter(-1)
		// And the same query must succeed afterwards (no poisoned
		// state).
		pool.Reset()
		if _, err := q.Run(pool, tpch.ScanSpec{Path: tpch.PathSmooth, Smooth: tpch.DefaultSmooth()}); err != nil {
			t.Errorf("%s after recovery: %v", q.Name, err)
		}
	}
}

// TestDeterminism: identical seeds yield identical device statistics
// for an identical scan sequence — the property the whole benchmark
// harness rests on.
func TestDeterminism(t *testing.T) {
	run := func() disk.Stats {
		dev := disk.NewDevice(disk.HDD)
		tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 12_000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		pool := bufferpool.New(dev, 48)
		for _, sel := range []float64{0.01, 0.3} {
			for _, kind := range []string{"index", "smooth-elastic", "sort"} {
				pool.Reset()
				op, _ := buildScan(tab, pool, tab.PredForSelectivity(sel), kind)
				if _, err := exec.Drain(op); err != nil {
					t.Fatal(err)
				}
			}
		}
		return dev.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic stats:\n a=%+v\n b=%+v", a, b)
	}
}

// TestMergeJoinOverOrderedSmoothScans: the ordered Smooth Scan variant
// feeds a merge join directly — the "interesting order" use case that
// motivates the Result Cache.
func TestMergeJoinOverOrderedSmoothScans(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	mkTable := func(seed int64) *workload.Table {
		tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 4_000, Domain: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	left := mkTable(1)
	right := mkTable(2)
	pool := bufferpool.New(dev, 256)
	pred := tuple.RangePred{Col: 1, Lo: 100, Hi: 200}

	lScan, err := core.NewSmoothScan(left.File, pool, left.Index, pred, core.Config{Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	rScan, err := core.NewSmoothScan(right.File, pool, right.Index, pred, core.Config{Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	mj := exec.NewMergeJoin(lScan, rScan, dev, 1, 1)
	nMerge, err := exec.Count(mj)
	if err != nil {
		t.Fatalf("merge join over smooth scans: %v", err)
	}

	// Reference: hash join over full scans.
	pool.Reset()
	hj := exec.NewHashJoin(
		access.NewFullScan(left.File, pool, pred),
		access.NewFullScan(right.File, pool, pred),
		dev, 1, 1,
	)
	nHash, err := exec.Count(hj)
	if err != nil {
		t.Fatal(err)
	}
	if nMerge != nHash {
		t.Errorf("merge join %d rows, hash join %d", nMerge, nHash)
	}
	if nMerge == 0 {
		t.Error("empty join result; fixture too sparse")
	}
}

// TestHeapAndIndexConsistency: every index entry points at a tuple
// whose indexed column equals the key — across the whole micro table.
func TestHeapAndIndexConsistency(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 8_000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, 512)
	it, err := tab.Index.SeekGE(pool, -1)
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	var last btree.Entry
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if count > 0 {
			if e.Key < last.Key || (e.Key == last.Key && !last.TID.Less(e.TID)) {
				t.Fatalf("index order violation at entry %d", count)
			}
		}
		row, err := tab.File.RowAt(pool, e.TID)
		if err != nil {
			t.Fatal(err)
		}
		if row.Int(tab.IndexCol) != e.Key {
			t.Fatalf("entry key %d points at tuple with %d", e.Key, row.Int(tab.IndexCol))
		}
		last = e
		count++
	}
	if count != tab.File.NumTuples() {
		t.Errorf("index has %d entries for %d tuples", count, tab.File.NumTuples())
	}
}
