// Package loadgen builds the synthetic micro-benchmark table the load
// tooling shares. ssload (local mode) and ssserver generate the same
// data from the same flags, so a digest computed over the wire is
// comparable to one computed in-process — the remote-equivalence
// property the harness checks rides on this single generator.
package loadgen

import (
	"math/rand"

	"smoothscan"
)

// Table is the generated table's name.
const Table = "t"

// IndexedCol is the indexed query column.
const IndexedCol = "val"

// BuildDB loads the micro-benchmark-shaped table: id dense key, val
// indexed uniform over the domain, p1..p8 payload.
func BuildDB(rows, domain, seed int64, poolPages int) (*smoothscan.DB, error) {
	db, err := smoothscan.Open(smoothscan.Options{PoolPages: poolPages})
	if err != nil {
		return nil, err
	}
	tb, err := db.CreateTable(Table, "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, 10)
	for i := int64(0); i < rows; i++ {
		vals[0] = i
		for c := 1; c < len(vals); c++ {
			vals[c] = rng.Int63n(domain)
		}
		if err := tb.Append(vals...); err != nil {
			return nil, err
		}
	}
	if err := tb.Finish(); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(Table, IndexedCol); err != nil {
		return nil, err
	}
	return db, nil
}

// BuildShardedDB loads the same table range-partitioned on the indexed
// column across n shards (equal-width bounds over the domain, so a
// uniform load balances). The row stream is identical to BuildDB's —
// only the placement differs — so digests over the same predicate
// ranges are comparable between sharded and unsharded runs.
func BuildShardedDB(rows, domain, seed int64, poolPages, n int) (*smoothscan.ShardedDB, error) {
	s, err := smoothscan.OpenSharded(n, smoothscan.Options{PoolPages: poolPages})
	if err != nil {
		return nil, err
	}
	part := smoothscan.RangePartitioning(IndexedCol, smoothscan.EqualWidthBounds(0, domain, n)...)
	tb, err := s.CreateShardedTable(Table, part, "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, 10)
	for i := int64(0); i < rows; i++ {
		vals[0] = i
		for c := 1; c < len(vals); c++ {
			vals[c] = rng.Int63n(domain)
		}
		if err := tb.Append(vals...); err != nil {
			return nil, err
		}
	}
	if err := tb.Finish(); err != nil {
		return nil, err
	}
	if err := s.CreateIndex(Table, IndexedCol); err != nil {
		return nil, err
	}
	return s, nil
}
