// Package loadgen builds the synthetic micro-benchmark table the load
// tooling shares. ssload (local mode) and ssserver generate the same
// data from the same flags, so a digest computed over the wire is
// comparable to one computed in-process — the remote-equivalence
// property the harness checks rides on this single generator.
package loadgen

import (
	"fmt"
	"math/rand"

	"smoothscan"
)

// Table is the generated table's name.
const Table = "t"

// IndexedCol is the indexed query column.
const IndexedCol = "val"

// BuildDB loads the micro-benchmark-shaped table: id dense key, val
// indexed uniform over the domain, p1..p8 payload.
func BuildDB(rows, domain, seed int64, opts smoothscan.Options) (*smoothscan.DB, error) {
	db, err := smoothscan.Open(opts)
	if err != nil {
		return nil, err
	}
	tb, err := db.CreateTable(Table, "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, 10)
	for i := int64(0); i < rows; i++ {
		vals[0] = i
		for c := 1; c < len(vals); c++ {
			vals[c] = rng.Int63n(domain)
		}
		if err := tb.Append(vals...); err != nil {
			return nil, err
		}
	}
	if err := tb.Finish(); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(Table, IndexedCol); err != nil {
		return nil, err
	}
	return db, nil
}

// ShardParts is the partitioning every sharded topology of the
// generated table agrees on: range partitioning of the indexed column
// with equal-width bounds over the domain. ssload -shards, ssload
// -shard-addrs and ssserver -shard-id must all derive placement from
// this one function, or rows would land on (or be looked for at) the
// wrong shard.
func ShardParts(domain int64, n int) smoothscan.Partitioning {
	return smoothscan.RangePartitioning(IndexedCol, smoothscan.EqualWidthBounds(0, domain, n)...)
}

// BuildShardSlice loads shard shardID's slice of the n-way sharded
// table as a standalone DB: the generator consumes the identical rng
// stream as BuildDB/BuildShardedDB (so the global row multiset is
// byte-identical) and keeps only the rows ShardParts routes to this
// shard. N ssserver processes each serving their BuildShardSlice are
// collectively the same table BuildShardedDB holds in one process.
func BuildShardSlice(rows, domain, seed int64, shardID, n int, opts smoothscan.Options) (*smoothscan.DB, error) {
	if shardID < 0 || shardID >= n {
		return nil, fmt.Errorf("loadgen: shard id %d out of range [0, %d)", shardID, n)
	}
	part := ShardParts(domain, n)
	db, err := smoothscan.Open(opts)
	if err != nil {
		return nil, err
	}
	tb, err := db.CreateTable(Table, "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, 10)
	for i := int64(0); i < rows; i++ {
		vals[0] = i
		for c := 1; c < len(vals); c++ {
			vals[c] = rng.Int63n(domain)
		}
		if part.Route(vals[1]) != shardID {
			continue
		}
		if err := tb.Append(vals...); err != nil {
			return nil, err
		}
	}
	if err := tb.Finish(); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(Table, IndexedCol); err != nil {
		return nil, err
	}
	return db, nil
}

// BuildShardedDB loads the same table range-partitioned on the indexed
// column across n shards (equal-width bounds over the domain, so a
// uniform load balances). The row stream is identical to BuildDB's —
// only the placement differs — so digests over the same predicate
// ranges are comparable between sharded and unsharded runs.
func BuildShardedDB(rows, domain, seed int64, n int, opts smoothscan.Options) (*smoothscan.ShardedDB, error) {
	s, err := smoothscan.OpenSharded(n, opts)
	if err != nil {
		return nil, err
	}
	part := smoothscan.RangePartitioning(IndexedCol, smoothscan.EqualWidthBounds(0, domain, n)...)
	tb, err := s.CreateShardedTable(Table, part, "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, 10)
	for i := int64(0); i < rows; i++ {
		vals[0] = i
		for c := 1; c < len(vals); c++ {
			vals[c] = rng.Int63n(domain)
		}
		if err := tb.Append(vals...); err != nil {
			return nil, err
		}
	}
	if err := tb.Finish(); err != nil {
		return nil, err
	}
	if err := s.CreateIndex(Table, IndexedCol); err != nil {
		return nil, err
	}
	return s, nil
}
