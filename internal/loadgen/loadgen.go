// Package loadgen builds the synthetic micro-benchmark table the load
// tooling shares. ssload (local mode) and ssserver generate the same
// data from the same flags, so a digest computed over the wire is
// comparable to one computed in-process — the remote-equivalence
// property the harness checks rides on this single generator.
package loadgen

import (
	"math/rand"

	"smoothscan"
)

// Table is the generated table's name.
const Table = "t"

// IndexedCol is the indexed query column.
const IndexedCol = "val"

// BuildDB loads the micro-benchmark-shaped table: id dense key, val
// indexed uniform over the domain, p1..p8 payload.
func BuildDB(rows, domain, seed int64, poolPages int) (*smoothscan.DB, error) {
	db, err := smoothscan.Open(smoothscan.Options{PoolPages: poolPages})
	if err != nil {
		return nil, err
	}
	tb, err := db.CreateTable(Table, "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, 10)
	for i := int64(0); i < rows; i++ {
		vals[0] = i
		for c := 1; c < len(vals); c++ {
			vals[c] = rng.Int63n(domain)
		}
		if err := tb.Append(vals...); err != nil {
			return nil, err
		}
	}
	if err := tb.Finish(); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(Table, IndexedCol); err != nil {
		return nil, err
	}
	return db, nil
}
