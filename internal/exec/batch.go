package exec

import (
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// DefaultBatchSize is the row capacity of the batches the executor's
// drain helpers allocate: large enough to amortise per-batch overhead
// across many pages of tuples, small enough to stay cache-resident
// (1024 rows × 10 columns × 8 B = 80 KB).
const DefaultBatchSize = 1024

// Simulation invariance: every batch implementation preserves the I/O
// request schedule and the per-tuple CPU charge counts of its
// per-tuple twin exactly. Within one operator the charge *sequence* is
// also preserved (see disk.ChargeCPUN), so pure scan pipelines — the
// paper-figure experiments — produce bit-identical simulated costs.
// Across operator boundaries batching groups charges (a Filter charges
// its whole input batch before the consumer charges any of it), so a
// pipeline mixing different cost constants (e.g. HashAgg's Aggregate
// over Filter's Tuple) accumulates the same terms in a different
// order; CPUTime then agrees only to floating-point reassociation
// (ULPs), which is invisible at any reported precision.

// BatchOperator is the vectorized fast path of the operator protocol.
// NextBatch resets b and fills it with up to b.Cap() rows, returning
// the number appended; 0 means end of stream (a batch operator never
// returns an empty batch mid-stream). The rows in b are views into the
// batch and remain valid until the next NextBatch call on the same
// batch; callers that retain rows must copy them.
//
// Every BatchOperator also implements the per-tuple protocol, and the
// two may be interleaved: both drain the same underlying cursor.
type BatchOperator interface {
	Operator
	NextBatch(b *tuple.Batch) (int, error)
}

// NextBatch fills b from op: directly when op implements BatchOperator,
// otherwise by looping the per-tuple protocol and copying rows in. It
// is the bridge that lets batch-aware consumers drain any operator.
func NextBatch(op Operator, b *tuple.Batch) (int, error) {
	if bo, ok := op.(BatchOperator); ok {
		return bo.NextBatch(b)
	}
	b.Reset()
	for !b.Full() {
		row, ok, err := op.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		b.Append(row)
	}
	return b.Len(), nil
}

// newScratchFor returns a scratch batch sized for op's schema.
func newScratchFor(op Operator) *tuple.Batch {
	return tuple.NewBatchFor(op.Schema(), DefaultBatchSize)
}

// NextBatch fills out with the next block of in-memory rows.
func (v *Values) NextBatch(out *tuple.Batch) (int, error) {
	if !v.open {
		return 0, ErrClosed
	}
	out.Reset()
	for v.pos < len(v.rows) && out.Append(v.rows[v.pos]) {
		v.pos++
	}
	return out.Len(), nil
}

// NextBatch fills out with the next rows matching the predicate. The
// child's batch is filtered by in-place compaction, so a dense filter
// moves almost no data.
func (f *Filter) NextBatch(out *tuple.Batch) (int, error) {
	if !f.open {
		return 0, ErrClosed
	}
	for {
		n, err := NextBatch(f.child, out)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		if f.dev != nil {
			f.dev.ChargeCPUN(simcost.Tuple, int64(n))
		}
		out.Filter(f.pred)
		if out.Len() > 0 {
			return out.Len(), nil
		}
	}
}

// NextBatch fills out with the next block of projected rows.
func (p *Project) NextBatch(out *tuple.Batch) (int, error) {
	if !p.open {
		return 0, ErrClosed
	}
	if p.scratch == nil {
		p.scratch = newScratchFor(p.child)
	}
	// Pull no more child rows than out can take, so no projected row is
	// ever dropped on the floor.
	p.scratch.SetFillLimit(out.FillCap())
	n, err := NextBatch(p.child, p.scratch)
	if err != nil {
		return 0, err
	}
	out.Reset()
	for i := 0; i < n; i++ {
		out.Append(p.fn(p.scratch.Row(i)))
	}
	return out.Len(), nil
}

// NextBatch fills out with the next block of column-projected rows,
// copying the selected columns batch-to-batch with no per-row
// allocation.
func (p *ColProject) NextBatch(out *tuple.Batch) (int, error) {
	if !p.open {
		return 0, ErrClosed
	}
	if p.scratch == nil {
		p.scratch = newScratchFor(p.child)
	}
	// Pull no more child rows than out can take, so no projected row is
	// ever dropped on the floor.
	p.scratch.SetFillLimit(out.FillCap())
	n, err := NextBatch(p.child, p.scratch)
	if err != nil {
		return 0, err
	}
	out.Reset()
	for i := 0; i < n; i++ {
		row := p.scratch.Row(i)
		slot := out.AppendSlotRaw()
		for j, c := range p.cols {
			slot[j] = row[c]
		}
	}
	return out.Len(), nil
}

// NextBatch fills out with the next rows while under the limit. The
// batch's fill limit stops the child from producing (and paying for)
// rows beyond the limit, exactly as the per-tuple protocol would.
func (l *Limit) NextBatch(out *tuple.Batch) (int, error) {
	if !l.open {
		return 0, ErrClosed
	}
	remaining := l.n - l.seen
	if remaining <= 0 {
		out.Reset()
		return 0, nil
	}
	if fc := out.FillCap(); fc == 0 || remaining < int64(fc) {
		prev := out.FillLimit()
		out.SetFillLimit(int(remaining))
		defer out.SetFillLimit(prev)
	}
	n, err := NextBatch(l.child, out)
	if err != nil {
		return 0, err
	}
	l.seen += int64(n)
	return n, nil
}

// NextBatch streams the sorted rows in blocks.
func (s *SortOp) NextBatch(out *tuple.Batch) (int, error) {
	if !s.open {
		return 0, ErrClosed
	}
	out.Reset()
	for s.pos < len(s.rows) && out.Append(s.rows[s.pos]) {
		s.pos++
	}
	return out.Len(), nil
}

// NextBatch streams the per-group aggregate results in blocks.
func (h *HashAgg) NextBatch(out *tuple.Batch) (int, error) {
	if !h.open {
		return 0, ErrClosed
	}
	out.Reset()
	for h.pos < len(h.out) && out.Append(h.out[h.pos]) {
		h.pos++
	}
	return out.Len(), nil
}
