package exec

import (
	"testing"

	"smoothscan/internal/disk"
	"smoothscan/internal/tuple"
)

func intRows(vals ...int64) []tuple.Row {
	rows := make([]tuple.Row, len(vals))
	for i, v := range vals {
		rows[i] = tuple.IntsRow(v)
	}
	return rows
}

// drainBatched runs op to completion through the batch protocol with
// the given batch capacity.
func drainBatched(t *testing.T, op Operator, batchCap int) []tuple.Row {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	b := tuple.NewBatchFor(op.Schema(), batchCap)
	var out []tuple.Row
	for {
		n, err := NextBatch(op, b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		for i := 0; i < n; i++ {
			out = append(out, b.Row(i).Clone())
		}
	}
}

func wantRows(t *testing.T, got []tuple.Row, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Int(0) != want[i] {
			t.Errorf("row %d = %d, want %d", i, got[i].Int(0), want[i])
		}
	}
}

func TestValuesNextBatch(t *testing.T) {
	v := NewValues(tuple.Ints(1), intRows(1, 2, 3, 4, 5))
	wantRows(t, drainBatched(t, v, 2), 1, 2, 3, 4, 5)
}

func TestFilterNextBatch(t *testing.T) {
	v := NewValues(tuple.Ints(1), intRows(1, 2, 3, 4, 5, 6, 7, 8))
	f := NewFilter(v, nil, func(r tuple.Row) bool { return r.Int(0)%2 == 0 })
	wantRows(t, drainBatched(t, f, 3), 2, 4, 6, 8)
}

// TestFilterNextBatchSparse checks that a filter rejecting whole child
// batches keeps pulling instead of signalling a spurious end of stream.
func TestFilterNextBatchSparse(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	v := NewValues(tuple.Ints(1), intRows(vals...))
	f := NewFilter(v, nil, func(r tuple.Row) bool { return r.Int(0) == 97 })
	wantRows(t, drainBatched(t, f, 8), 97)
}

func TestProjectNextBatch(t *testing.T) {
	v := NewValues(tuple.Ints(1), intRows(1, 2, 3))
	p := NewProject(v, tuple.Ints(1), func(r tuple.Row) tuple.Row {
		return tuple.IntsRow(r.Int(0) * 10)
	})
	wantRows(t, drainBatched(t, p, 2), 10, 20, 30)
}

func TestLimitNextBatch(t *testing.T) {
	v := NewValues(tuple.Ints(1), intRows(1, 2, 3, 4, 5, 6, 7))
	l := NewLimit(v, 4)
	wantRows(t, drainBatched(t, l, 3), 1, 2, 3, 4)
}

// TestLimitNextBatchDoesNotOverpull verifies the fill-limit contract:
// the child must not produce (or be charged for) rows past the limit.
// A Values child tracks its cursor, so overpulling would advance pos.
func TestLimitNextBatchDoesNotOverpull(t *testing.T) {
	v := NewValues(tuple.Ints(1), intRows(1, 2, 3, 4, 5, 6, 7, 8, 9))
	l := NewLimit(v, 2)
	if err := l.Open(); err != nil {
		t.Fatal(err)
	}
	b := tuple.NewBatch(1, 8)
	n, err := l.NextBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("limit batch returned %d rows, want 2", n)
	}
	if v.pos != 2 {
		t.Errorf("child consumed %d rows, want 2 (no overpull)", v.pos)
	}
	if b.Cap() != 8 || b.Full() {
		t.Errorf("fill limit not restored: cap=%d full=%v", b.Cap(), b.Full())
	}
	l.Close()
}

// TestHashAggBatchInput checks HashAgg over the batched input path and
// that per-tuple and batched children agree.
func TestHashAggBatchInput(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	mk := func() *HashAgg {
		rows := []tuple.Row{
			tuple.IntsRow(1, 10), tuple.IntsRow(2, 20), tuple.IntsRow(1, 5),
			tuple.IntsRow(3, 7), tuple.IntsRow(2, 1),
		}
		return NewHashAgg(NewValues(tuple.Ints(2), rows), dev, 0, []AggSpec{
			{Name: "sum", Col: 1, Kind: AggSum},
			{Name: "cnt", Col: 1, Kind: AggCount},
		})
	}
	got, err := Drain(mk())
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]int64{{1, 15, 2}, {2, 21, 2}, {3, 7, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Int(0) != w[0] || got[i].Int(1) != w[1] || got[i].Int(2) != w[2] {
			t.Errorf("group %d = (%d,%d,%d), want %v", i, got[i].Int(0), got[i].Int(1), got[i].Int(2), w)
		}
	}
}

// TestNextBatchAdapterFallback drains a per-tuple-only operator through
// the adapter. Wrapping *Values in a struct that embeds only the
// Operator interface hides its NextBatch, forcing the fallback.
func TestNextBatchAdapterFallback(t *testing.T) {
	var iface Operator = struct{ Operator }{NewValues(tuple.Ints(1), intRows(4, 5, 6))}
	if err := iface.Open(); err != nil {
		t.Fatal(err)
	}
	b := tuple.NewBatch(1, 2)
	n, err := NextBatch(iface, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || b.Row(0).Int(0) != 4 || b.Row(1).Int(0) != 5 {
		t.Fatalf("adapter batch = %d rows (%v), want 2 rows starting at 4", n, b)
	}
	n, err = NextBatch(iface, b)
	if err != nil || n != 1 || b.Row(0).Int(0) != 6 {
		t.Fatalf("adapter second batch = %d rows, err %v", n, err)
	}
	n, err = NextBatch(iface, b)
	if err != nil || n != 0 {
		t.Fatalf("adapter at EOS = %d rows, err %v", n, err)
	}
}
