package exec

import (
	"fmt"
	"math"

	"smoothscan/internal/disk"
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// JoinStats exposes a batched join operator's run-time counters: how
// many rows each input delivered, how large the hash build was, and —
// for a hash join — the device I/O delta accrued while the build input
// was drained. For one join the probe side's I/O is the query total
// minus this; when a join builds on an input that itself contains
// joins, its build window contains theirs, so deltas nest rather than
// sum.
type JoinStats struct {
	// Algo is "hash" or "merge".
	Algo string
	// BuildLeft reports which input a hash join drained into its table
	// (false = right, the classic build side). Meaningless for merge.
	BuildLeft bool
	// LeftRows / RightRows count the rows consumed from each input.
	// A merge join may pre-fetch (and count) a trailing batch on one
	// side after the other reached end of stream.
	LeftRows  int64
	RightRows int64
	// BuildKeys is the hash table's distinct join-key count.
	BuildKeys int64
	// OutputRows counts joined rows produced so far.
	OutputRows int64
	// BuildIO is the device-counter delta while the hash build input
	// was drained (Open time). Zero for merge joins and nil devices.
	BuildIO disk.Stats
}

// JoinStatser is implemented by the batched join operators; the facade
// uses it to surface JoinStats through Rows.ExecStats.
type JoinStatser interface {
	JoinStats() JoinStats
}

// HashJoinBatch is the batched equi-join of the vectorized pipeline:
// it drains the build input once into a flat row arena plus a
// key→row-index table (blocking, at Open), then joins the probe input
// batch-at-a-time. Output batches are filled in place through
// AppendSlotRaw, so the steady-state probe loop allocates nothing.
//
// Unlike the per-tuple HashJoin (which always builds on the right),
// the planner chooses the build side; the output schema is always
// left ++ right regardless of that choice.
type HashJoinBatch struct {
	left, right       Operator
	leftCol, rightCol int
	buildLeft         bool
	dev               *disk.Device
	schema            *tuple.Schema
	lw                int

	arena    *tuple.Batch      // growable flat copy of the build input
	table    map[int64][]int32 // join key -> row indices into arena
	buildCol int
	probe    Operator
	probeCol int
	pb       *tuple.Batch // probe scratch batch
	pn, pi   int          // probe fill count and cursor
	matches  []int32      // pending build matches for probe row pi
	mi       int
	stats    JoinStats
	tup      *tuple.Batch // per-tuple protocol scratch (capacity 1)
	open     bool
	probing  bool // probe input opened (false when the build was empty)
}

// NewHashJoinBatch joins left.leftCol = right.rightCol, draining the
// side selected by buildLeft into the hash table and streaming the
// other. dev may be nil to skip CPU accounting.
func NewHashJoinBatch(left, right Operator, dev *disk.Device, leftCol, rightCol int, buildLeft bool) *HashJoinBatch {
	return &HashJoinBatch{
		left: left, right: right,
		leftCol: leftCol, rightCol: rightCol,
		buildLeft: buildLeft,
		dev:       dev,
		schema:    left.Schema().Concat(right.Schema()),
		lw:        left.Schema().NumCols(),
	}
}

// Schema returns the concatenated left ++ right schema.
func (j *HashJoinBatch) Schema() *tuple.Schema { return j.schema }

// JoinStats returns the operator's counters; final once the join has
// drained (the build-side counters are final after Open).
func (j *HashJoinBatch) JoinStats() JoinStats { return j.stats }

// Open drains the build input into the hash table (blocking), then
// opens the probe input.
func (j *HashJoinBatch) Open() error {
	build, probe := j.right, j.left
	j.buildCol, j.probeCol = j.rightCol, j.leftCol
	if j.buildLeft {
		build, probe = j.left, j.right
		j.buildCol, j.probeCol = j.leftCol, j.rightCol
	}
	j.probe = probe
	j.stats = JoinStats{Algo: "hash", BuildLeft: j.buildLeft}

	var ioStart disk.Stats
	if j.dev != nil {
		ioStart = j.dev.Stats()
	}
	if err := build.Open(); err != nil {
		return err
	}
	if j.arena == nil {
		j.arena = tuple.NewGrowableBatch(build.Schema().NumCols())
	} else {
		j.arena.Reset()
	}
	j.table = make(map[int64][]int32)
	scratch := newScratchFor(build)
	for {
		n, err := NextBatch(build, scratch)
		if err != nil {
			build.Close()
			return err
		}
		if n == 0 {
			break
		}
		if j.dev != nil {
			j.dev.ChargeCPUN(simcost.Hash, int64(n))
		}
		for i := 0; i < n; i++ {
			row := scratch.Row(i)
			idx := j.arena.Len()
			if idx > math.MaxInt32 {
				build.Close()
				return fmt.Errorf("hash join: build side exceeds %d rows", math.MaxInt32)
			}
			j.arena.Append(row)
			k := row.Int(j.buildCol)
			j.table[k] = append(j.table[k], int32(idx))
		}
	}
	if err := build.Close(); err != nil {
		return err
	}
	j.stats.BuildKeys = int64(len(j.table))
	if j.buildLeft {
		j.stats.LeftRows = int64(j.arena.Len())
	} else {
		j.stats.RightRows = int64(j.arena.Len())
	}
	if j.dev != nil {
		j.stats.BuildIO = j.dev.Stats().Sub(ioStart)
	}

	// An empty build side means no probe row can match: skip the
	// probe entirely — its whole scan (I/O and CPU charges) would buy
	// nothing. This deliberately diverges from the per-tuple HashJoin,
	// which still drains its probe input.
	j.probing = len(j.table) > 0
	if j.probing {
		if err := probe.Open(); err != nil {
			return err
		}
	}
	j.pn, j.pi, j.matches, j.mi = 0, 0, nil, 0
	j.open = true
	return nil
}

// emit fills one output slot from the current probe row and the build
// row at arena index b, in left ++ right column order.
func (j *HashJoinBatch) emit(slot tuple.Row, probeRow tuple.Row, b int32) {
	buildRow := j.arena.Row(int(b))
	if j.buildLeft {
		copy(slot[:j.lw], buildRow)
		copy(slot[j.lw:], probeRow)
	} else {
		copy(slot[:j.lw], probeRow)
		copy(slot[j.lw:], buildRow)
	}
}

// NextBatch fills out with joined rows until it is full or the probe
// input ends; a return of 0 is end of stream.
func (j *HashJoinBatch) NextBatch(out *tuple.Batch) (int, error) {
	if !j.open {
		return 0, ErrClosed
	}
	out.Reset()
	if !j.probing {
		return 0, nil
	}
	for {
		// Finish the current probe row's pending matches.
		if j.mi < len(j.matches) {
			probeRow := j.pb.Row(j.pi)
			for j.mi < len(j.matches) {
				slot := out.AppendSlotRaw()
				if slot == nil {
					return out.Len(), nil
				}
				j.emit(slot, probeRow, j.matches[j.mi])
				j.mi++
				j.stats.OutputRows++
			}
		}
		if j.matches != nil {
			j.matches = nil
			j.pi++
		}
		// Advance to the next probe row with matches, refilling the
		// probe batch as needed.
		for {
			if j.pi >= j.pn {
				if j.pb == nil {
					j.pb = newScratchFor(j.probe)
				}
				n, err := NextBatch(j.probe, j.pb)
				if err != nil {
					return 0, err
				}
				if n == 0 {
					return out.Len(), nil
				}
				if j.dev != nil {
					j.dev.ChargeCPUN(simcost.Hash, int64(n))
				}
				if j.buildLeft {
					j.stats.RightRows += int64(n)
				} else {
					j.stats.LeftRows += int64(n)
				}
				j.pn, j.pi = n, 0
			}
			if m := j.table[j.pb.Row(j.pi).Int(j.probeCol)]; len(m) > 0 {
				j.matches, j.mi = m, 0
				break
			}
			j.pi++
		}
	}
}

// Next serves the per-tuple protocol through a one-row batch, so
// interleaving Next and NextBatch drains the same cursor.
func (j *HashJoinBatch) Next() (tuple.Row, bool, error) {
	return nextViaBatch(j, &j.tup, j.schema)
}

// Close closes the probe input and drops the table. The build input
// was closed at the end of Open.
func (j *HashJoinBatch) Close() error {
	wasProbing := j.open && j.probing
	j.open = false
	j.probing = false
	j.table = nil
	j.matches = nil
	if !wasProbing {
		return nil
	}
	return j.probe.Close()
}

// nextViaBatch implements the per-tuple protocol on top of a batch
// operator using a persistent one-row scratch batch, keeping the two
// protocols on one cursor.
func nextViaBatch(op BatchOperator, tup **tuple.Batch, schema *tuple.Schema) (tuple.Row, bool, error) {
	if *tup == nil {
		*tup = tuple.NewBatchFor(schema, 1)
	}
	n, err := op.NextBatch(*tup)
	if err != nil {
		return nil, false, err
	}
	if n == 0 {
		return nil, false, nil
	}
	return (*tup).Row(0), true, nil
}

// MergeJoinBatch is the batched merge equi-join: both inputs must
// arrive sorted ascending on their join columns (verified at run
// time, as in the per-tuple MergeJoin), the case when both sides come
// key-ordered from index / sort / ordered-smooth access paths. It
// handles duplicate keys on both sides by materialising the right
// side's current key group in a reusable growable batch.
type MergeJoinBatch struct {
	left, right       Operator
	leftCol, rightCol int
	dev               *disk.Device
	schema            *tuple.Schema
	lw, rw            int

	lb, rb              *tuple.Batch
	ln, li              int
	rn, ri              int
	leftEOS, rightEOS   bool
	haveL, haveR        bool
	lastLeft, lastRight int64

	group    *tuple.Batch // right rows sharing the current key
	groupKey int64
	gi       int
	inGroup  bool

	stats JoinStats
	tup   *tuple.Batch
	open  bool
}

// NewMergeJoinBatch joins left.leftCol = right.rightCol over inputs
// sorted ascending on those columns. dev may be nil to skip CPU
// accounting.
func NewMergeJoinBatch(left, right Operator, dev *disk.Device, leftCol, rightCol int) *MergeJoinBatch {
	return &MergeJoinBatch{
		left: left, right: right,
		leftCol: leftCol, rightCol: rightCol,
		dev:    dev,
		schema: left.Schema().Concat(right.Schema()),
		lw:     left.Schema().NumCols(),
		rw:     right.Schema().NumCols(),
	}
}

// Schema returns the concatenated left ++ right schema.
func (j *MergeJoinBatch) Schema() *tuple.Schema { return j.schema }

// JoinStats returns the operator's counters.
func (j *MergeJoinBatch) JoinStats() JoinStats { return j.stats }

// Open opens both inputs and resets the cursors.
func (j *MergeJoinBatch) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		j.left.Close()
		return err
	}
	if j.lb == nil {
		j.lb = newScratchFor(j.left)
		j.rb = newScratchFor(j.right)
		j.group = tuple.NewGrowableBatch(j.rw)
	}
	j.ln, j.li, j.rn, j.ri = 0, 0, 0, 0
	j.leftEOS, j.rightEOS = false, false
	j.haveL, j.haveR = false, false
	j.group.Reset()
	j.inGroup = false
	j.stats = JoinStats{Algo: "merge"}
	j.open = true
	return nil
}

// fillLeft ensures a current left row exists (li < ln) or marks EOS,
// verifying sort order across each refilled batch.
func (j *MergeJoinBatch) fillLeft() error {
	for !j.leftEOS && j.li >= j.ln {
		n, err := NextBatch(j.left, j.lb)
		if err != nil {
			return err
		}
		if n == 0 {
			j.leftEOS = true
			return nil
		}
		if j.dev != nil {
			j.dev.ChargeCPUN(simcost.Compare, int64(n))
		}
		j.stats.LeftRows += int64(n)
		for i := 0; i < n; i++ {
			k := j.lb.Row(i).Int(j.leftCol)
			if j.haveL && k < j.lastLeft {
				return fmt.Errorf("merge join: left input not sorted (%d after %d)", k, j.lastLeft)
			}
			j.lastLeft = k
			j.haveL = true
		}
		j.ln, j.li = n, 0
	}
	return nil
}

// fillRight is fillLeft for the right input.
func (j *MergeJoinBatch) fillRight() error {
	for !j.rightEOS && j.ri >= j.rn {
		n, err := NextBatch(j.right, j.rb)
		if err != nil {
			return err
		}
		if n == 0 {
			j.rightEOS = true
			return nil
		}
		if j.dev != nil {
			j.dev.ChargeCPUN(simcost.Compare, int64(n))
		}
		j.stats.RightRows += int64(n)
		for i := 0; i < n; i++ {
			k := j.rb.Row(i).Int(j.rightCol)
			if j.haveR && k < j.lastRight {
				return fmt.Errorf("merge join: right input not sorted (%d after %d)", k, j.lastRight)
			}
			j.lastRight = k
			j.haveR = true
		}
		j.rn, j.ri = n, 0
	}
	return nil
}

// NextBatch fills out with joined rows until it is full or a side
// ends; a return of 0 is end of stream.
func (j *MergeJoinBatch) NextBatch(out *tuple.Batch) (int, error) {
	if !j.open {
		return 0, ErrClosed
	}
	out.Reset()
	for {
		if j.inGroup {
			// Emit (current left row) x (right group), then advance the
			// left cursor; an unchanged key replays the group.
			if j.gi < j.group.Len() {
				slot := out.AppendSlotRaw()
				if slot == nil {
					return out.Len(), nil
				}
				copy(slot[:j.lw], j.lb.Row(j.li))
				copy(slot[j.lw:], j.group.Row(j.gi))
				j.gi++
				j.stats.OutputRows++
				continue
			}
			j.li++
			if err := j.fillLeft(); err != nil {
				return 0, err
			}
			j.gi = 0
			if j.leftEOS || j.lb.Row(j.li).Int(j.leftCol) != j.groupKey {
				j.inGroup = false
				j.group.Reset()
			}
			continue
		}
		if err := j.fillLeft(); err != nil {
			return 0, err
		}
		if err := j.fillRight(); err != nil {
			return 0, err
		}
		if j.leftEOS || j.rightEOS {
			return out.Len(), nil
		}
		lk := j.lb.Row(j.li).Int(j.leftCol)
		rk := j.rb.Row(j.ri).Int(j.rightCol)
		switch {
		case lk < rk:
			j.li++
		case lk > rk:
			j.ri++
		default:
			// Materialise the right group for this key; group rows are
			// copies, so they survive right-batch refills.
			j.groupKey = rk
			j.group.Reset()
			for {
				j.group.Append(j.rb.Row(j.ri))
				j.ri++
				if err := j.fillRight(); err != nil {
					return 0, err
				}
				if j.rightEOS || j.rb.Row(j.ri).Int(j.rightCol) != rk {
					break
				}
			}
			j.gi, j.inGroup = 0, true
		}
	}
}

// Next serves the per-tuple protocol through a one-row batch.
func (j *MergeJoinBatch) Next() (tuple.Row, bool, error) {
	return nextViaBatch(j, &j.tup, j.schema)
}

// Close closes both inputs.
func (j *MergeJoinBatch) Close() error {
	wasOpen := j.open
	j.open = false
	if !wasOpen {
		return nil
	}
	errL := j.left.Close()
	errR := j.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
