package exec

import (
	"smoothscan/internal/bitmap"
	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// This file implements the join-level morphing Section IV-B sketches
// as the natural extension of Smooth Scan's philosophy:
//
//   - MorphingLookup: "by performing caching of additional
//     (qualifying) tuples from the inner input found along the way
//     (i.e., for each page we fetch, we put the remaining tuples in
//     the cache), INLJ morphs into a variant of Hash Join (HJ) over
//     time, with the index used only when a tuple is not found in the
//     cache."
//   - SymmetricHashJoin: "MJ morphs into a symmetric Hash Join,
//     frequently used in data streaming environments due to its
//     pipelining nature."
//
// The paper leaves these as future work and does not use them in its
// evaluation; they are provided (and tested) as documented extensions.

// MorphingLookup is an INLJ inner input that morphs toward a hash
// join: every heap page it fetches is analysed completely and all its
// tuples enter an in-memory hash table on the join column. A probe
// first consults the hash table; the index (and heap) is touched only
// for keys whose TIDs lie on pages not yet seen. Under repeated
// probing the lookup converges to pure hash-join behaviour with zero
// I/O per probe.
type MorphingLookup struct {
	file    *heap.File
	pool    *bufferpool.Pool
	tree    *btree.Tree
	joinCol int

	pageSeen *bitmap.Bitmap
	cache    map[int64][]tuple.Row

	// Instrumentation.
	probes     int64
	hashHits   int64
	pagesRead  int64
	cacheBytes int64
}

// NewMorphingLookup creates the morphing inner. joinCol is the column
// the tree indexes (and the join equi-column).
func NewMorphingLookup(file *heap.File, pool *bufferpool.Pool, tree *btree.Tree, joinCol int) *MorphingLookup {
	return &MorphingLookup{
		file:     file,
		pool:     pool,
		tree:     tree,
		joinCol:  joinCol,
		pageSeen: bitmap.New(file.NumPages()),
		cache:    make(map[int64][]tuple.Row),
	}
}

// Schema returns the table schema.
func (l *MorphingLookup) Schema() *tuple.Schema { return l.file.Schema() }

// MorphingLookupStats reports how far the operator has morphed toward
// a hash join.
type MorphingLookupStats struct {
	// Probes is the number of Find calls.
	Probes int64
	// HashHits counts probes served without any index or heap access.
	HashHits int64
	// PagesRead counts heap pages fetched (each at most once).
	PagesRead int64
	// CachedBytes estimates the hash-table memory.
	CachedBytes int64
	// PageCoverage is the fraction of heap pages analysed so far.
	PageCoverage float64
}

// Stats returns a snapshot.
func (l *MorphingLookup) Stats() MorphingLookupStats {
	cov := 0.0
	if l.file.NumPages() > 0 {
		cov = float64(l.pageSeen.Count()) / float64(l.file.NumPages())
	}
	return MorphingLookupStats{
		Probes:       l.probes,
		HashHits:     l.hashHits,
		PagesRead:    l.pagesRead,
		CachedBytes:  l.cacheBytes,
		PageCoverage: cov,
	}
}

// Find returns all rows whose join column equals key.
//
// Correctness: a key's rows are served from the hash table alone only
// when every TID the index lists for the key lies on an analysed page
// — in that case each of those rows was inserted when its page was
// analysed. The index walk that establishes this is cheap (internal
// nodes and leaves are hot in the buffer pool); the savings are the
// random heap accesses.
func (l *MorphingLookup) Find(key int64) ([]tuple.Row, error) {
	l.probes++
	dev := l.pool.Device()
	it, err := l.tree.SeekGE(l.pool, key)
	if err != nil {
		return nil, err
	}
	var tids []heap.TID
	allSeen := true
	for {
		e, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok || e.Key != key {
			break
		}
		tids = append(tids, e.TID)
		if !l.pageSeen.Get(e.TID.Page) {
			allSeen = false
		}
	}
	if len(tids) == 0 {
		return nil, nil
	}
	dev.ChargeCPU(simcost.Hash)
	if allSeen {
		l.hashHits++
		return l.cache[key], nil
	}
	// Analyse every unseen page holding a TID for this key; all their
	// tuples — whatever their key — enter the cache (the hash-join
	// morph).
	for _, tid := range tids {
		if l.pageSeen.Get(tid.Page) {
			continue
		}
		page, err := l.file.GetPage(l.pool, tid.Page)
		if err != nil {
			return nil, err
		}
		l.pageSeen.Set(tid.Page)
		l.pagesRead++
		count := heap.PageTupleCount(page)
		for s := 0; s < count; s++ {
			row := l.file.DecodeRow(page, s, nil)
			dev.ChargeCPU(simcost.Tuple + simcost.Hash)
			k := row.Int(l.joinCol)
			l.cache[k] = append(l.cache[k], row)
			l.cacheBytes += int64(len(row) * 8)
		}
	}
	return l.cache[key], nil
}

// SymmetricHashJoin is the pipelined equi-join the paper names as the
// morphing target for merge joins: both inputs are consumed
// incrementally, each row is inserted into its side's hash table and
// immediately probed against the other side's, so results stream out
// without any blocking phase and without requiring sorted inputs.
type SymmetricHashJoin struct {
	left, right       Operator
	leftCol, rightCol int
	dev               *disk.Device
	schema            *tuple.Schema

	leftTable  map[int64][]tuple.Row
	rightTable map[int64][]tuple.Row
	leftDone   bool
	rightDone  bool
	turn       bool // false: pull left next, true: pull right next
	pending    []tuple.Row
	pendingIdx int
	open       bool
}

// NewSymmetricHashJoin joins left.leftCol = right.rightCol with
// symmetric, fully pipelined execution. dev may be nil.
func NewSymmetricHashJoin(left, right Operator, dev *disk.Device, leftCol, rightCol int) *SymmetricHashJoin {
	return &SymmetricHashJoin{
		left: left, right: right,
		leftCol: leftCol, rightCol: rightCol,
		dev:    dev,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema returns the concatenated schema.
func (j *SymmetricHashJoin) Schema() *tuple.Schema { return j.schema }

// Open opens both inputs.
func (j *SymmetricHashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.leftTable = map[int64][]tuple.Row{}
	j.rightTable = map[int64][]tuple.Row{}
	j.leftDone, j.rightDone = false, false
	j.turn = false
	j.pending = nil
	j.pendingIdx = 0
	j.open = true
	return nil
}

// Next returns the next joined row, alternating pulls between the two
// inputs.
func (j *SymmetricHashJoin) Next() (tuple.Row, bool, error) {
	if !j.open {
		return nil, false, ErrClosed
	}
	for {
		if j.pendingIdx < len(j.pending) {
			r := j.pending[j.pendingIdx]
			j.pendingIdx++
			return r, true, nil
		}
		if j.leftDone && j.rightDone {
			return nil, false, nil
		}
		// Alternate sides; skip a finished side.
		pullLeft := !j.turn
		j.turn = !j.turn
		if pullLeft && j.leftDone {
			pullLeft = false
		}
		if !pullLeft && j.rightDone {
			pullLeft = true
		}
		j.pending = j.pending[:0]
		j.pendingIdx = 0
		if pullLeft {
			row, ok, err := j.left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.leftDone = true
				continue
			}
			if j.dev != nil {
				j.dev.ChargeCPU(simcost.Hash)
			}
			k := row.Int(j.leftCol)
			j.leftTable[k] = append(j.leftTable[k], row)
			for _, r := range j.rightTable[k] {
				j.pending = append(j.pending, row.Concat(r))
			}
		} else {
			row, ok, err := j.right.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.rightDone = true
				continue
			}
			if j.dev != nil {
				j.dev.ChargeCPU(simcost.Hash)
			}
			k := row.Int(j.rightCol)
			j.rightTable[k] = append(j.rightTable[k], row)
			for _, l := range j.leftTable[k] {
				j.pending = append(j.pending, l.Concat(row))
			}
		}
	}
}

// Close closes both inputs and drops the tables.
func (j *SymmetricHashJoin) Close() error {
	j.open = false
	j.leftTable, j.rightTable = nil, nil
	j.pending = nil
	errL := j.left.Close()
	errR := j.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
