package exec

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

func intsValues(vals ...[]int64) *Values {
	if len(vals) == 0 {
		return NewValues(tuple.Ints(1), nil)
	}
	schema := tuple.Ints(len(vals[0]))
	rows := make([]tuple.Row, len(vals))
	for i, v := range vals {
		rows[i] = tuple.IntsRow(v...)
	}
	return NewValues(schema, rows)
}

func TestValuesAndDrain(t *testing.T) {
	v := intsValues([]int64{1, 2}, []int64{3, 4})
	rows, err := Drain(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Int(1) != 4 {
		t.Errorf("Drain = %v", rows)
	}
	// Reopenable.
	n, err := Count(v)
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestOperatorsRejectNextBeforeOpen(t *testing.T) {
	v := intsValues([]int64{1})
	ops := []Operator{
		v,
		NewFilter(v, nil, func(tuple.Row) bool { return true }),
		NewProject(v, tuple.Ints(1), func(r tuple.Row) tuple.Row { return r }),
		NewLimit(v, 1),
		NewSort(v, nil, 0),
		NewHashAgg(v, nil, -1, []AggSpec{{Name: "n", Kind: AggCount}}),
		NewHashJoin(v, v, nil, 0, 0),
		NewMergeJoin(v, v, nil, 0, 0),
		NewNestedLoopJoin(v, v, nil, func(l, r tuple.Row) bool { return true }),
	}
	for i, op := range ops {
		if _, _, err := op.Next(); !errors.Is(err, ErrClosed) {
			t.Errorf("op %d: err = %v, want ErrClosed", i, err)
		}
	}
}

func TestFilter(t *testing.T) {
	v := intsValues([]int64{1}, []int64{2}, []int64{3}, []int64{4})
	f := NewFilter(v, nil, func(r tuple.Row) bool { return r.Int(0)%2 == 0 })
	rows, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Int(0) != 2 || rows[1].Int(0) != 4 {
		t.Errorf("Filter = %v", rows)
	}
}

func TestProject(t *testing.T) {
	v := intsValues([]int64{1, 10}, []int64{2, 20})
	p := NewProject(v, tuple.Ints(1), func(r tuple.Row) tuple.Row {
		return tuple.IntsRow(r.Int(0) + r.Int(1))
	})
	rows, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Int(0) != 11 || rows[1].Int(0) != 22 {
		t.Errorf("Project = %v", rows)
	}
	if p.Schema().NumCols() != 1 {
		t.Errorf("schema = %v", p.Schema())
	}
}

func TestLimit(t *testing.T) {
	v := intsValues([]int64{1}, []int64{2}, []int64{3})
	rows, err := Drain(NewLimit(v, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("Limit = %v", rows)
	}
	rows, err = Drain(NewLimit(v, 0))
	if err != nil || len(rows) != 0 {
		t.Errorf("Limit 0 = %v, %v", rows, err)
	}
}

func TestSortOp(t *testing.T) {
	v := intsValues([]int64{3, 0}, []int64{1, 1}, []int64{2, 2}, []int64{1, 3})
	rows, err := Drain(NewSort(v, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 2, 3}
	for i, w := range want {
		if rows[i].Int(0) != w {
			t.Fatalf("sorted[%d] = %d, want %d", i, rows[i].Int(0), w)
		}
	}
	// Stability: the two key-1 rows keep input order.
	if rows[0].Int(1) != 1 || rows[1].Int(1) != 3 {
		t.Error("sort not stable")
	}
}

func TestSortChargesCPU(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	var rows []tuple.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, tuple.IntsRow(int64(1000-i)))
	}
	v := NewValues(tuple.Ints(1), rows)
	if _, err := Drain(NewSort(v, dev, 0)); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().CPUTime <= 0 {
		t.Error("sort charged no CPU")
	}
}

func TestHashAggGlobal(t *testing.T) {
	v := intsValues([]int64{5}, []int64{7}, []int64{3})
	agg := NewHashAgg(v, nil, -1, []AggSpec{
		{Name: "n", Kind: AggCount},
		{Name: "sum", Col: 0, Kind: AggSum},
		{Name: "min", Col: 0, Kind: AggMin},
		{Name: "max", Col: 0, Kind: AggMax},
	})
	rows, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r.Int(0) != 3 || r.Int(1) != 15 || r.Int(2) != 3 || r.Int(3) != 7 {
		t.Errorf("agg = %v", r)
	}
}

func TestHashAggGrouped(t *testing.T) {
	v := intsValues([]int64{1, 10}, []int64{2, 20}, []int64{1, 30}, []int64{2, 5})
	agg := NewHashAgg(v, nil, 0, []AggSpec{
		{Name: "sum", Col: 1, Kind: AggSum},
		{Name: "n", Kind: AggCount},
	})
	rows, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	// Groups are emitted in ascending key order.
	if rows[0].Int(0) != 1 || rows[0].Int(1) != 40 || rows[0].Int(2) != 2 {
		t.Errorf("group 1 = %v", rows[0])
	}
	if rows[1].Int(0) != 2 || rows[1].Int(1) != 25 || rows[1].Int(2) != 2 {
		t.Errorf("group 2 = %v", rows[1])
	}
	if agg.Schema().NumCols() != 3 {
		t.Errorf("schema = %v", agg.Schema())
	}
	if agg.Schema().ColIndex("group") != 0 {
		t.Errorf("schema = %v", agg.Schema())
	}
}

func TestHashAggEmptyInput(t *testing.T) {
	v := NewValues(tuple.Ints(1), nil)
	rows, err := Drain(NewHashAgg(v, nil, 0, []AggSpec{{Name: "n", Kind: AggCount}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("grouped agg of empty input = %v", rows)
	}
}

// referenceJoin computes the expected equi-join result.
func referenceJoin(left, right []tuple.Row, lc, rc int) []tuple.Row {
	var out []tuple.Row
	for _, l := range left {
		for _, r := range right {
			if l.Int(lc) == r.Int(rc) {
				out = append(out, l.Concat(r))
			}
		}
	}
	return out
}

func normalise(rows []tuple.Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func joinRowsEqual(a, b []tuple.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestHashJoin(t *testing.T) {
	left := []tuple.Row{tuple.IntsRow(1, 100), tuple.IntsRow(2, 200), tuple.IntsRow(3, 300)}
	right := []tuple.Row{tuple.IntsRow(2, 7), tuple.IntsRow(2, 8), tuple.IntsRow(4, 9)}
	j := NewHashJoin(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceJoin(left, right, 0, 0)
	normalise(got)
	normalise(want)
	if !joinRowsEqual(got, want) {
		t.Errorf("hash join = %v, want %v", got, want)
	}
	if j.Schema().NumCols() != 4 {
		t.Errorf("schema = %v", j.Schema())
	}
}

func TestMergeJoinWithDuplicates(t *testing.T) {
	left := []tuple.Row{tuple.IntsRow(1, 0), tuple.IntsRow(2, 1), tuple.IntsRow(2, 2), tuple.IntsRow(5, 3)}
	right := []tuple.Row{tuple.IntsRow(2, 10), tuple.IntsRow(2, 11), tuple.IntsRow(3, 12), tuple.IntsRow(5, 13)}
	j := NewMergeJoin(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceJoin(left, right, 0, 0) // 2x2 for key 2 + 1 for key 5
	normalise(got)
	normalise(want)
	if !joinRowsEqual(got, want) {
		t.Errorf("merge join = %v, want %v", got, want)
	}
}

func TestMergeJoinDetectsUnsortedInput(t *testing.T) {
	left := []tuple.Row{tuple.IntsRow(3), tuple.IntsRow(1), tuple.IntsRow(3)}
	right := []tuple.Row{tuple.IntsRow(1), tuple.IntsRow(3)}
	j := NewMergeJoin(NewValues(tuple.Ints(1), left), NewValues(tuple.Ints(1), right), nil, 0, 0)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	var err error
	for err == nil {
		var ok bool
		_, ok, err = j.Next()
		if !ok && err == nil {
			t.Fatal("unsorted input not detected")
		}
	}
}

func TestNestedLoopJoinThetaPredicate(t *testing.T) {
	left := []tuple.Row{tuple.IntsRow(1), tuple.IntsRow(5)}
	right := []tuple.Row{tuple.IntsRow(3), tuple.IntsRow(4)}
	j := NewNestedLoopJoin(
		NewValues(tuple.Ints(1), left),
		NewValues(tuple.Ints(1), right),
		nil,
		func(l, r tuple.Row) bool { return l.Int(0) < r.Int(0) },
	)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // (1,3), (1,4)
		t.Errorf("theta join = %v", got)
	}
}

// Property: hash join, merge join (over sorted inputs) and nested-loop
// join agree with the reference equi-join for random inputs.
func TestJoinEquivalenceProperty(t *testing.T) {
	f := func(lraw, rraw []uint8) bool {
		left := make([]tuple.Row, len(lraw))
		for i, v := range lraw {
			left[i] = tuple.IntsRow(int64(v)%16, int64(i))
		}
		right := make([]tuple.Row, len(rraw))
		for i, v := range rraw {
			right[i] = tuple.IntsRow(int64(v)%16, int64(i)+100)
		}
		want := referenceJoin(left, right, 0, 0)
		normalise(want)

		hj, err := Drain(NewHashJoin(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0))
		if err != nil {
			return false
		}
		normalise(hj)
		if !joinRowsEqual(hj, want) {
			return false
		}

		sl := append([]tuple.Row(nil), left...)
		sr := append([]tuple.Row(nil), right...)
		sort.SliceStable(sl, func(i, j int) bool { return sl[i].Int(0) < sl[j].Int(0) })
		sort.SliceStable(sr, func(i, j int) bool { return sr[i].Int(0) < sr[j].Int(0) })
		mj, err := Drain(NewMergeJoin(NewValues(tuple.Ints(2), sl), NewValues(tuple.Ints(2), sr), nil, 0, 0))
		if err != nil {
			return false
		}
		normalise(mj)
		if !joinRowsEqual(mj, want) {
			return false
		}

		nl, err := Drain(NewNestedLoopJoin(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil,
			func(l, r tuple.Row) bool { return l.Int(0) == r.Int(0) }))
		if err != nil {
			return false
		}
		normalise(nl)
		return joinRowsEqual(nl, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// lookupFixture builds a heap table with duplicates on the indexed
// column for Lookup tests.
func lookupFixture(t *testing.T) (*heap.File, *bufferpool.Pool, *btree.Tree, *disk.Device, []tuple.Row) {
	t.Helper()
	dev := disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 256})
	file, err := heap.Create(dev, tuple.Ints(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	b := file.NewBuilder()
	var rows []tuple.Row
	for i := int64(0); i < 900; i++ {
		r := tuple.IntsRow(i, rng.Int63n(30), i%5) // ~30 matches per key
		rows = append(rows, r)
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	tree, err := btree.BuildOnColumn(dev, file, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	return file, bufferpool.New(dev, 64), tree, dev, rows
}

func TestLookupsReturnAllMatches(t *testing.T) {
	file, pool, tree, _, rows := lookupFixture(t)
	for _, mk := range []func() Lookup{
		func() Lookup { return NewIndexLookup(file, pool, tree) },
		func() Lookup { return NewSmoothLookup(file, pool, tree) },
	} {
		lk := mk()
		for key := int64(-1); key < 32; key++ {
			got, err := lk.Find(key)
			if err != nil {
				t.Fatal(err)
			}
			var want int
			for _, r := range rows {
				if r.Int(1) == key {
					want++
				}
			}
			if len(got) != want {
				t.Errorf("%T Find(%d) = %d rows, want %d", lk, key, len(got), want)
			}
			for _, r := range got {
				if r.Int(1) != key {
					t.Errorf("%T Find(%d) returned row with key %d", lk, key, r.Int(1))
				}
			}
		}
	}
}

func TestSmoothLookupUsesFewerRequests(t *testing.T) {
	// For keys with many matches spread over the heap, the per-key
	// morphing variant groups accesses and issues fewer I/O requests
	// than one-at-a-time look-ups (Section IV-B).
	file, pool, tree, dev, _ := lookupFixture(t)

	pool.Reset()
	dev.ResetStats()
	il := NewIndexLookup(file, pool, tree)
	for key := int64(0); key < 30; key++ {
		if _, err := il.Find(key); err != nil {
			t.Fatal(err)
		}
	}
	plain := dev.Stats()

	pool.Reset()
	dev.ResetStats()
	sl := NewSmoothLookup(file, pool, tree)
	for key := int64(0); key < 30; key++ {
		if _, err := sl.Find(key); err != nil {
			t.Fatal(err)
		}
	}
	smooth := dev.Stats()

	if smooth.Requests >= plain.Requests {
		t.Errorf("smooth lookup requests = %d, plain = %d", smooth.Requests, plain.Requests)
	}
	if smooth.IOTime >= plain.IOTime {
		t.Errorf("smooth lookup I/O = %v, plain = %v", smooth.IOTime, plain.IOTime)
	}
}

func TestIndexNestedLoopJoin(t *testing.T) {
	file, pool, tree, dev, rows := lookupFixture(t)
	// Outer: 10 rows with keys 0..9 in column 0.
	var outer []tuple.Row
	for i := int64(0); i < 10; i++ {
		outer = append(outer, tuple.IntsRow(i, i*1000))
	}
	j := NewIndexNestedLoopJoin(
		NewValues(tuple.Ints(2), outer),
		NewSmoothLookup(file, pool, tree),
		dev, 0,
	)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if r.Int(1) < 10 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("INLJ produced %d rows, want %d", len(got), want)
	}
	if j.Schema().NumCols() != 5 {
		t.Errorf("schema = %v", j.Schema())
	}
}

func TestErrorPropagationThroughPlan(t *testing.T) {
	file, pool, tree, dev, _ := lookupFixture(t)
	_ = tree
	// A filter over a full scan over a failing device.
	scan := NewValues(tuple.Ints(3), nil)
	_ = scan
	fs := newHeapScan(file, pool)
	plan := NewFilter(fs, dev, func(r tuple.Row) bool { return true })
	if err := plan.Open(); err != nil {
		t.Fatal(err)
	}
	dev.FailAfter(2)
	var err error
	for err == nil {
		var ok bool
		_, ok, err = plan.Next()
		if !ok && err == nil {
			t.Fatal("plan completed despite injected failure")
		}
	}
	if !errors.Is(err, disk.ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
	dev.FailAfter(-1)
}

// newHeapScan is a minimal heap reader used to test error propagation
// without importing package access (which would create an import
// cycle in tests only, but keep layering clean).
type heapScan struct {
	file *heap.File
	pool *bufferpool.Pool
	page int64
	slot int
	open bool
}

func newHeapScan(file *heap.File, pool *bufferpool.Pool) *heapScan {
	return &heapScan{file: file, pool: pool}
}

func (h *heapScan) Schema() *tuple.Schema { return h.file.Schema() }
func (h *heapScan) Open() error           { h.page, h.slot, h.open = 0, 0, true; return nil }
func (h *heapScan) Close() error          { h.open = false; return nil }

func (h *heapScan) Next() (tuple.Row, bool, error) {
	if !h.open {
		return nil, false, ErrClosed
	}
	for {
		if h.page >= h.file.NumPages() {
			return nil, false, nil
		}
		page, err := h.file.GetPage(h.pool, h.page)
		if err != nil {
			return nil, false, err
		}
		if h.slot >= heap.PageTupleCount(page) {
			h.page++
			h.slot = 0
			continue
		}
		row := h.file.DecodeRow(page, h.slot, nil)
		h.slot++
		return row, true, nil
	}
}
