package exec

import (
	"math/rand"
	"testing"

	"smoothscan/internal/tuple"
)

func TestHashJoinBatchMatchesReference(t *testing.T) {
	left := []tuple.Row{tuple.IntsRow(1, 100), tuple.IntsRow(2, 200), tuple.IntsRow(2, 201), tuple.IntsRow(3, 300)}
	right := []tuple.Row{tuple.IntsRow(2, 7), tuple.IntsRow(2, 8), tuple.IntsRow(4, 9)}
	for _, buildLeft := range []bool{false, true} {
		j := NewHashJoinBatch(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0, buildLeft)
		got, err := Drain(j)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceJoin(left, right, 0, 0)
		normalise(got)
		normalise(want)
		if !joinRowsEqual(got, want) {
			t.Errorf("buildLeft=%v: hash join batch = %v, want %v", buildLeft, got, want)
		}
		if j.Schema().NumCols() != 4 {
			t.Errorf("schema = %v", j.Schema())
		}
	}
}

func TestHashJoinBatchEmptyBuildSide(t *testing.T) {
	left := []tuple.Row{tuple.IntsRow(1), tuple.IntsRow(2)}
	for _, buildLeft := range []bool{false, true} {
		var l, r []tuple.Row
		if buildLeft {
			r = left // probe non-empty, build empty
		} else {
			l = left
		}
		j := NewHashJoinBatch(NewValues(tuple.Ints(1), l), NewValues(tuple.Ints(1), r), nil, 0, 0, buildLeft)
		got, err := Drain(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("buildLeft=%v: join with empty build side = %v", buildLeft, got)
		}
		st := j.JoinStats()
		if st.BuildKeys != 0 || st.OutputRows != 0 {
			t.Errorf("stats = %+v", st)
		}
		// The probe input must not have been drained at all: an empty
		// build short-circuits the whole probe scan.
		if st.LeftRows != 0 || st.RightRows != 0 {
			t.Errorf("empty build still drained the probe: %+v", st)
		}
	}
}

func TestHashJoinBatchEmptyProbeSide(t *testing.T) {
	right := []tuple.Row{tuple.IntsRow(1), tuple.IntsRow(2)}
	j := NewHashJoinBatch(NewValues(tuple.Ints(1), nil), NewValues(tuple.Ints(1), right), nil, 0, 0, false)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("join with empty probe side = %v", got)
	}
}

// TestHashJoinBatchTinyOutputBatches forces the output batch to fill
// mid-match-list (capacity 1 and 3 against duplicate keys), exercising
// the cross-call resume state.
func TestHashJoinBatchTinyOutputBatches(t *testing.T) {
	var left, right []tuple.Row
	for i := int64(0); i < 40; i++ {
		left = append(left, tuple.IntsRow(i%4, i))
	}
	for i := int64(0); i < 12; i++ {
		right = append(right, tuple.IntsRow(i%4, 1000+i))
	}
	want := referenceJoin(left, right, 0, 0)
	normalise(want)
	for _, capacity := range []int{1, 3, 7} {
		j := NewHashJoinBatch(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0, false)
		got := drainBatched(t, j, capacity)
		normalise(got)
		if !joinRowsEqual(got, want) {
			t.Errorf("capacity %d: %d rows, want %d", capacity, len(got), len(want))
		}
	}
}

// TestHashJoinBatchPerTupleProtocol interleaves Next with NextBatch:
// both must drain the same cursor without loss or duplication.
func TestHashJoinBatchPerTupleProtocol(t *testing.T) {
	var left, right []tuple.Row
	for i := int64(0); i < 30; i++ {
		left = append(left, tuple.IntsRow(i%5, i))
	}
	for i := int64(0); i < 10; i++ {
		right = append(right, tuple.IntsRow(i%5, 100+i))
	}
	j := NewHashJoinBatch(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0, false)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var got []tuple.Row
	b := tuple.NewBatchFor(j.Schema(), 4)
	for step := 0; ; step++ {
		if step%2 == 0 {
			row, ok, err := j.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, row.Clone())
			continue
		}
		n, err := j.NextBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			got = append(got, b.Row(i).Clone())
		}
	}
	want := referenceJoin(left, right, 0, 0)
	normalise(got)
	normalise(want)
	if !joinRowsEqual(got, want) {
		t.Errorf("interleaved drain = %d rows, want %d", len(got), len(want))
	}
}

func TestMergeJoinBatchDuplicatesBothSides(t *testing.T) {
	left := []tuple.Row{tuple.IntsRow(1, 0), tuple.IntsRow(2, 1), tuple.IntsRow(2, 2), tuple.IntsRow(2, 3), tuple.IntsRow(5, 4)}
	right := []tuple.Row{tuple.IntsRow(2, 10), tuple.IntsRow(2, 11), tuple.IntsRow(3, 12), tuple.IntsRow(5, 13), tuple.IntsRow(5, 14)}
	j := NewMergeJoinBatch(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceJoin(left, right, 0, 0) // 3x2 for key 2 + 1x2 for key 5
	normalise(got)
	normalise(want)
	if !joinRowsEqual(got, want) {
		t.Errorf("merge join batch = %v, want %v", got, want)
	}
}

func TestMergeJoinBatchDetectsUnsortedInput(t *testing.T) {
	sorted := []tuple.Row{tuple.IntsRow(1), tuple.IntsRow(3)}
	unsorted := []tuple.Row{tuple.IntsRow(3), tuple.IntsRow(1), tuple.IntsRow(3)}
	for name, pair := range map[string][2][]tuple.Row{
		"left":  {unsorted, sorted},
		"right": {sorted, unsorted},
	} {
		j := NewMergeJoinBatch(NewValues(tuple.Ints(1), pair[0]), NewValues(tuple.Ints(1), pair[1]), nil, 0, 0)
		if _, err := Drain(j); err == nil {
			t.Errorf("%s unsorted input not detected", name)
		}
	}
}

func TestMergeJoinBatchEmptySides(t *testing.T) {
	rows := []tuple.Row{tuple.IntsRow(1), tuple.IntsRow(2)}
	for name, pair := range map[string][2][]tuple.Row{
		"left-empty":  {nil, rows},
		"right-empty": {rows, nil},
		"both-empty":  {nil, nil},
	} {
		j := NewMergeJoinBatch(NewValues(tuple.Ints(1), pair[0]), NewValues(tuple.Ints(1), pair[1]), nil, 0, 0)
		got, err := Drain(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("%s: joined %v", name, got)
		}
	}
}

// Property: the batched hash and merge joins agree with referenceJoin
// (and with each other) for random inputs across key densities, under
// both build sides and small output batches.
func TestJoinBatchEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nl, nr := rng.Intn(200), rng.Intn(200)
		dom := int64(1 + rng.Intn(32))
		left := make([]tuple.Row, nl)
		for i := range left {
			left[i] = tuple.IntsRow(rng.Int63n(dom), int64(i))
		}
		right := make([]tuple.Row, nr)
		for i := range right {
			right[i] = tuple.IntsRow(rng.Int63n(dom), int64(i)+10_000)
		}
		want := referenceJoin(left, right, 0, 0)
		normalise(want)

		for _, buildLeft := range []bool{false, true} {
			hj := NewHashJoinBatch(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0, buildLeft)
			got := drainBatched(t, hj, 1+rng.Intn(8))
			normalise(got)
			if !joinRowsEqual(got, want) {
				t.Fatalf("trial %d buildLeft=%v: hash join %d rows, want %d", trial, buildLeft, len(got), len(want))
			}
			st := hj.JoinStats()
			if st.OutputRows != int64(len(want)) || st.LeftRows != int64(nl) || st.RightRows != int64(nr) {
				t.Fatalf("trial %d: stats %+v (want out=%d l=%d r=%d)", trial, st, len(want), nl, nr)
			}
		}

		sl := append([]tuple.Row(nil), left...)
		sr := append([]tuple.Row(nil), right...)
		sortRowsByCol(sl, 0)
		sortRowsByCol(sr, 0)
		wantSorted := referenceJoin(sl, sr, 0, 0)
		normalise(wantSorted)
		mj := NewMergeJoinBatch(NewValues(tuple.Ints(2), sl), NewValues(tuple.Ints(2), sr), nil, 0, 0)
		got := drainBatched(t, mj, 1+rng.Intn(8))
		normalise(got)
		if !joinRowsEqual(got, wantSorted) {
			t.Fatalf("trial %d: merge join %d rows, want %d", trial, len(got), len(wantSorted))
		}
	}
}

func sortRowsByCol(rows []tuple.Row, col int) {
	for i := 1; i < len(rows); i++ {
		for k := i; k > 0 && rows[k].Int(col) < rows[k-1].Int(col); k-- {
			rows[k], rows[k-1] = rows[k-1], rows[k]
		}
	}
}

// TestHashJoinBatchAgreesWithPerTupleTwin proves the batched operator
// and the classic HashJoin produce the same multiset of rows.
func TestHashJoinBatchAgreesWithPerTupleTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var left, right []tuple.Row
	for i := 0; i < 500; i++ {
		left = append(left, tuple.IntsRow(rng.Int63n(64), int64(i)))
	}
	for i := 0; i < 300; i++ {
		right = append(right, tuple.IntsRow(rng.Int63n(64), int64(i)+5_000))
	}
	twin, err := Drain(NewHashJoin(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Drain(NewHashJoinBatch(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	normalise(twin)
	normalise(batched)
	if !joinRowsEqual(twin, batched) {
		t.Errorf("batched join diverges from per-tuple twin: %d vs %d rows", len(batched), len(twin))
	}
}
