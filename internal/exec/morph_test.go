package exec

import (
	"sort"
	"testing"
	"testing/quick"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/tuple"
)

func TestMorphingLookupMatchesPlainLookup(t *testing.T) {
	file, pool, tree, _, rows := lookupFixture(t)
	ml := NewMorphingLookup(file, pool, tree, 1)
	for key := int64(-1); key < 32; key++ {
		got, err := ml.Find(key)
		if err != nil {
			t.Fatal(err)
		}
		var want int
		for _, r := range rows {
			if r.Int(1) == key {
				want++
			}
		}
		if len(got) != want {
			t.Errorf("Find(%d) = %d rows, want %d", key, len(got), want)
		}
		for _, r := range got {
			if r.Int(1) != key {
				t.Errorf("Find(%d) returned key %d", key, r.Int(1))
			}
		}
	}
}

func TestMorphingLookupConvergesToHashJoin(t *testing.T) {
	file, _, tree, dev, _ := lookupFixture(t)
	// A pool large enough to keep the index hot, so the second sweep
	// isolates heap behaviour.
	pool := bufferpool.New(dev, 512)
	ml := NewMorphingLookup(file, pool, tree, 1)
	// First sweep over all keys: pages get analysed and cached.
	for key := int64(0); key < 30; key++ {
		if _, err := ml.Find(key); err != nil {
			t.Fatal(err)
		}
	}
	first := ml.Stats()
	if first.PagesRead == 0 {
		t.Fatal("first sweep read no pages")
	}
	if first.PageCoverage < 0.9 {
		t.Errorf("coverage after full-key sweep = %v, want ~1", first.PageCoverage)
	}
	// Second sweep: everything must be served from the hash table
	// with no further heap I/O.
	dev.ResetStats()
	for key := int64(0); key < 30; key++ {
		if _, err := ml.Find(key); err != nil {
			t.Fatal(err)
		}
	}
	second := ml.Stats()
	if second.PagesRead != first.PagesRead {
		t.Errorf("second sweep read %d more pages", second.PagesRead-first.PagesRead)
	}
	if hits := second.HashHits - first.HashHits; hits != 30 {
		t.Errorf("hash hits on second sweep = %d, want 30", hits)
	}
	// Heap space sees no reads (index pages may still be touched).
	if ds := dev.Stats(); ds.PagesRead > 10 {
		t.Errorf("second sweep caused %d page reads", ds.PagesRead)
	}
}

func TestMorphingLookupNeverRereadsPages(t *testing.T) {
	file, pool, tree, _, _ := lookupFixture(t)
	ml := NewMorphingLookup(file, pool, tree, 1)
	for round := 0; round < 3; round++ {
		for key := int64(0); key < 30; key += 3 {
			if _, err := ml.Find(key); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := ml.Stats()
	if st.PagesRead > file.NumPages() {
		t.Errorf("read %d pages, table has %d", st.PagesRead, file.NumPages())
	}
}

func TestMorphingLookupInINLJ(t *testing.T) {
	file, pool, tree, dev, rows := lookupFixture(t)
	var outer []tuple.Row
	for i := int64(0); i < 60; i++ {
		outer = append(outer, tuple.IntsRow(i%30)) // keys repeat: morphing pays off
	}
	j := NewIndexNestedLoopJoin(
		NewValues(tuple.Ints(1), outer),
		NewMorphingLookup(file, pool, tree, 1),
		dev, 0,
	)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if r.Int(1) < 30 {
			want += 2 // each key probed twice
		}
	}
	if len(got) != want {
		t.Errorf("INLJ rows = %d, want %d", len(got), want)
	}
}

func TestSymmetricHashJoinMatchesReference(t *testing.T) {
	left := []tuple.Row{tuple.IntsRow(1, 0), tuple.IntsRow(2, 1), tuple.IntsRow(2, 2)}
	right := []tuple.Row{tuple.IntsRow(2, 10), tuple.IntsRow(3, 11), tuple.IntsRow(2, 12)}
	j := NewSymmetricHashJoin(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceJoin(left, right, 0, 0)
	normalise(got)
	normalise(want)
	if !joinRowsEqual(got, want) {
		t.Errorf("symmetric hash join = %v, want %v", got, want)
	}
	if j.Schema().NumCols() != 4 {
		t.Errorf("schema = %v", j.Schema())
	}
}

func TestSymmetricHashJoinIsPipelined(t *testing.T) {
	// The join must produce its first result before either input is
	// exhausted — the property that lets it replace a blocking sort +
	// merge join.
	left := make([]tuple.Row, 1000)
	right := make([]tuple.Row, 1000)
	for i := range left {
		left[i] = tuple.IntsRow(int64(i), 0)
		right[i] = tuple.IntsRow(int64(i), 1)
	}
	lv := NewValues(tuple.Ints(2), left)
	rv := NewValues(tuple.Ints(2), right)
	j := NewSymmetricHashJoin(lv, rv, nil, 0, 0)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := j.Next(); err != nil || !ok {
		t.Fatalf("no first row: %v %v", ok, err)
	}
	// Values tracks position; after one result at most a handful of
	// rows were pulled from each side.
	if lv.pos > 5 || rv.pos > 5 {
		t.Errorf("join buffered inputs before first result: left=%d right=%d", lv.pos, rv.pos)
	}
	j.Close()
}

func TestSymmetricHashJoinUnevenInputs(t *testing.T) {
	// One side much longer than the other; the alternation must drain
	// the longer side after the shorter finishes.
	var left, right []tuple.Row
	for i := int64(0); i < 5; i++ {
		left = append(left, tuple.IntsRow(i))
	}
	for i := int64(0); i < 500; i++ {
		right = append(right, tuple.IntsRow(i%10))
	}
	j := NewSymmetricHashJoin(NewValues(tuple.Ints(1), left), NewValues(tuple.Ints(1), right), nil, 0, 0)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceJoin(left, right, 0, 0)
	if len(got) != len(want) {
		t.Errorf("rows = %d, want %d", len(got), len(want))
	}
}

// Property: symmetric hash join ≡ hash join ≡ reference, with
// duplicate keys on both sides.
func TestSymmetricHashJoinEquivalenceProperty(t *testing.T) {
	f := func(lraw, rraw []uint8) bool {
		left := make([]tuple.Row, len(lraw))
		for i, v := range lraw {
			left[i] = tuple.IntsRow(int64(v)%8, int64(i))
		}
		right := make([]tuple.Row, len(rraw))
		for i, v := range rraw {
			right[i] = tuple.IntsRow(int64(v)%8, int64(i)+100)
		}
		want := referenceJoin(left, right, 0, 0)
		normalise(want)
		got, err := Drain(NewSymmetricHashJoin(NewValues(tuple.Ints(2), left), NewValues(tuple.Ints(2), right), nil, 0, 0))
		if err != nil {
			return false
		}
		normalise(got)
		return joinRowsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// sortedJoinKeys is a helper verifying normalise orders deterministically.
func TestNormaliseHelper(t *testing.T) {
	rows := []tuple.Row{tuple.IntsRow(2, 1), tuple.IntsRow(1, 9), tuple.IntsRow(1, 2)}
	normalise(rows)
	if !sort.SliceIsSorted(rows, func(i, j int) bool {
		if rows[i][0] != rows[j][0] {
			return rows[i][0] < rows[j][0]
		}
		return rows[i][1] < rows[j][1]
	}) {
		t.Errorf("normalise did not sort: %v", rows)
	}
}
