package exec

import (
	"fmt"

	"smoothscan/internal/disk"
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// HashJoin is an equi-join: it builds a hash table on the right
// (build) input and probes it with the left (probe) input. Blocking on
// the build side, pipelined on the probe side.
type HashJoin struct {
	left, right       Operator
	leftCol, rightCol int
	dev               *disk.Device
	schema            *tuple.Schema
	table             map[int64][]tuple.Row
	pending           []tuple.Row
	pendingLeft       tuple.Row
	pendingIdx        int
	open              bool
}

// NewHashJoin joins left.leftCol = right.rightCol.
func NewHashJoin(left, right Operator, dev *disk.Device, leftCol, rightCol int) *HashJoin {
	return &HashJoin{
		left: left, right: right,
		leftCol: leftCol, rightCol: rightCol,
		dev:    dev,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema returns the concatenated schema.
func (j *HashJoin) Schema() *tuple.Schema { return j.schema }

// Open builds the hash table from the right input.
func (j *HashJoin) Open() error {
	rows, err := Drain(j.right)
	if err != nil {
		return err
	}
	j.table = make(map[int64][]tuple.Row, len(rows))
	for _, r := range rows {
		if j.dev != nil {
			j.dev.ChargeCPU(simcost.Hash)
		}
		k := r.Int(j.rightCol)
		j.table[k] = append(j.table[k], r)
	}
	if err := j.left.Open(); err != nil {
		return err
	}
	j.pending = nil
	j.open = true
	return nil
}

// Next returns the next joined row.
func (j *HashJoin) Next() (tuple.Row, bool, error) {
	if !j.open {
		return nil, false, ErrClosed
	}
	for {
		if j.pendingIdx < len(j.pending) {
			r := j.pendingLeft.Concat(j.pending[j.pendingIdx])
			j.pendingIdx++
			return r, true, nil
		}
		row, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if j.dev != nil {
			j.dev.ChargeCPU(simcost.Hash)
		}
		j.pending = j.table[row.Int(j.leftCol)]
		j.pendingLeft = row
		j.pendingIdx = 0
	}
}

// Close closes both inputs and drops the table.
func (j *HashJoin) Close() error {
	j.open = false
	j.table = nil
	j.pending = nil
	return j.left.Close()
}

// Lookup is a parameterised inner input for index-nested-loop joins:
// given a join key, it returns the matching rows. Implementations
// decide the access strategy (plain index look-up, or the per-key
// morphing Smooth Scan variant of Section IV-B).
type Lookup interface {
	// Schema describes the rows Find returns.
	Schema() *tuple.Schema
	// Find returns all rows whose join column equals key.
	Find(key int64) ([]tuple.Row, error)
}

// IndexNestedLoopJoin probes a Lookup for each outer row — the INLJ of
// the paper's TPC-H plans, where the inner is a primary-key look-up or
// a per-key Smooth Scan.
type IndexNestedLoopJoin struct {
	outer    Operator
	inner    Lookup
	outerCol int
	dev      *disk.Device
	schema   *tuple.Schema

	pending    []tuple.Row
	pendingRow tuple.Row
	pendingIdx int
	open       bool
}

// NewIndexNestedLoopJoin joins outer.outerCol = inner key.
func NewIndexNestedLoopJoin(outer Operator, inner Lookup, dev *disk.Device, outerCol int) *IndexNestedLoopJoin {
	return &IndexNestedLoopJoin{
		outer: outer, inner: inner, outerCol: outerCol, dev: dev,
		schema: outer.Schema().Concat(inner.Schema()),
	}
}

// Schema returns the concatenated schema.
func (j *IndexNestedLoopJoin) Schema() *tuple.Schema { return j.schema }

// Open opens the outer input.
func (j *IndexNestedLoopJoin) Open() error {
	if err := j.outer.Open(); err != nil {
		return err
	}
	j.pending = nil
	j.open = true
	return nil
}

// Next returns the next joined row.
func (j *IndexNestedLoopJoin) Next() (tuple.Row, bool, error) {
	if !j.open {
		return nil, false, ErrClosed
	}
	for {
		if j.pendingIdx < len(j.pending) {
			r := j.pendingRow.Concat(j.pending[j.pendingIdx])
			j.pendingIdx++
			return r, true, nil
		}
		row, ok, err := j.outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matches, err := j.inner.Find(row.Int(j.outerCol))
		if err != nil {
			return nil, false, fmt.Errorf("inlj: %w", err)
		}
		j.pending = matches
		j.pendingRow = row
		j.pendingIdx = 0
	}
}

// Close closes the outer input.
func (j *IndexNestedLoopJoin) Close() error {
	j.open = false
	j.pending = nil
	return j.outer.Close()
}

// MergeJoin equi-joins two inputs that are already ordered by their
// join columns — the operator whose "interesting order" requirement
// motivates the ordered (Result Cache) variant of Smooth Scan
// (Section IV-B). It handles duplicate keys on both sides.
type MergeJoin struct {
	left, right       Operator
	leftCol, rightCol int
	dev               *disk.Device
	schema            *tuple.Schema

	leftRow   tuple.Row
	leftOK    bool
	rightRow  tuple.Row
	rightOK   bool
	group     []tuple.Row // right rows sharing the current key
	groupKey  int64
	leftInGrp bool
	grpIdx    int
	started   bool
	lastLeft  int64
	lastRight int64
	open      bool
}

// NewMergeJoin joins left.leftCol = right.rightCol; both inputs must
// be sorted ascending on those columns (verified at run time).
func NewMergeJoin(left, right Operator, dev *disk.Device, leftCol, rightCol int) *MergeJoin {
	return &MergeJoin{
		left: left, right: right,
		leftCol: leftCol, rightCol: rightCol, dev: dev,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema returns the concatenated schema.
func (j *MergeJoin) Schema() *tuple.Schema { return j.schema }

// Open opens both inputs and primes the cursors.
func (j *MergeJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	var err error
	if j.leftRow, j.leftOK, err = j.nextLeft(); err != nil {
		return err
	}
	if j.rightRow, j.rightOK, err = j.nextRight(); err != nil {
		return err
	}
	j.group = nil
	j.leftInGrp = false
	j.open = true
	return nil
}

func (j *MergeJoin) nextLeft() (tuple.Row, bool, error) {
	row, ok, err := j.left.Next()
	if err != nil || !ok {
		return nil, ok, err
	}
	if j.dev != nil {
		j.dev.ChargeCPU(simcost.Compare)
	}
	k := row.Int(j.leftCol)
	if j.started && k < j.lastLeft {
		return nil, false, fmt.Errorf("merge join: left input not sorted (%d after %d)", k, j.lastLeft)
	}
	j.lastLeft = k
	return row, true, nil
}

func (j *MergeJoin) nextRight() (tuple.Row, bool, error) {
	row, ok, err := j.right.Next()
	if err != nil || !ok {
		return nil, ok, err
	}
	if j.dev != nil {
		j.dev.ChargeCPU(simcost.Compare)
	}
	k := row.Int(j.rightCol)
	if j.started && k < j.lastRight {
		return nil, false, fmt.Errorf("merge join: right input not sorted (%d after %d)", k, j.lastRight)
	}
	j.lastRight = k
	return row, true, nil
}

// Next returns the next joined row.
func (j *MergeJoin) Next() (tuple.Row, bool, error) {
	if !j.open {
		return nil, false, ErrClosed
	}
	j.started = true
	for {
		// Emit from the current (leftRow × right group) block.
		if j.leftInGrp {
			if j.grpIdx < len(j.group) {
				r := j.leftRow.Concat(j.group[j.grpIdx])
				j.grpIdx++
				return r, true, nil
			}
			// Advance left; if the key is unchanged, replay the group.
			var err error
			j.leftRow, j.leftOK, err = j.nextLeft()
			if err != nil {
				return nil, false, err
			}
			j.grpIdx = 0
			if !j.leftOK || j.leftRow.Int(j.leftCol) != j.groupKey {
				j.leftInGrp = false
				j.group = nil
			}
			continue
		}
		if !j.leftOK || !j.rightOK {
			return nil, false, nil
		}
		lk, rk := j.leftRow.Int(j.leftCol), j.rightRow.Int(j.rightCol)
		switch {
		case lk < rk:
			var err error
			if j.leftRow, j.leftOK, err = j.nextLeft(); err != nil {
				return nil, false, err
			}
		case lk > rk:
			var err error
			if j.rightRow, j.rightOK, err = j.nextRight(); err != nil {
				return nil, false, err
			}
		default:
			// Materialise the right group for this key.
			j.groupKey = rk
			j.group = j.group[:0]
			for j.rightOK && j.rightRow.Int(j.rightCol) == rk {
				j.group = append(j.group, j.rightRow)
				var err error
				if j.rightRow, j.rightOK, err = j.nextRight(); err != nil {
					return nil, false, err
				}
			}
			j.grpIdx = 0
			j.leftInGrp = true
		}
	}
}

// Close closes both inputs.
func (j *MergeJoin) Close() error {
	j.open = false
	j.group = nil
	errL := j.left.Close()
	errR := j.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// NestedLoopJoin is the naive θ-join: for every outer row it rescans
// the inner input. Used as a baseline and for non-equi predicates.
type NestedLoopJoin struct {
	outer, inner Operator
	on           func(l, r tuple.Row) bool
	dev          *disk.Device
	schema       *tuple.Schema

	outerRow tuple.Row
	haveOut  bool
	open     bool
}

// NewNestedLoopJoin joins with an arbitrary predicate.
func NewNestedLoopJoin(outer, inner Operator, dev *disk.Device, on func(l, r tuple.Row) bool) *NestedLoopJoin {
	return &NestedLoopJoin{
		outer: outer, inner: inner, on: on, dev: dev,
		schema: outer.Schema().Concat(inner.Schema()),
	}
}

// Schema returns the concatenated schema.
func (j *NestedLoopJoin) Schema() *tuple.Schema { return j.schema }

// Open opens the outer input.
func (j *NestedLoopJoin) Open() error {
	if err := j.outer.Open(); err != nil {
		return err
	}
	j.haveOut = false
	j.open = true
	return nil
}

// Next returns the next joined row.
func (j *NestedLoopJoin) Next() (tuple.Row, bool, error) {
	if !j.open {
		return nil, false, ErrClosed
	}
	for {
		if !j.haveOut {
			row, ok, err := j.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.outerRow = row
			j.haveOut = true
			if err := j.inner.Open(); err != nil {
				return nil, false, err
			}
		}
		for {
			row, ok, err := j.inner.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			if j.dev != nil {
				j.dev.ChargeCPU(simcost.Compare)
			}
			if j.on(j.outerRow, row) {
				return j.outerRow.Concat(row), true, nil
			}
		}
		if err := j.inner.Close(); err != nil {
			return nil, false, err
		}
		j.haveOut = false
	}
}

// Close closes both inputs.
func (j *NestedLoopJoin) Close() error {
	j.open = false
	return j.outer.Close()
}
