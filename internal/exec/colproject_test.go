package exec

import (
	"testing"

	"smoothscan/internal/tuple"
)

func colProjectInput() (*Values, []tuple.Row) {
	schema := tuple.MustSchema(
		tuple.Column{Name: "a", Type: tuple.Int64},
		tuple.Column{Name: "b", Type: tuple.Int64},
		tuple.Column{Name: "c", Type: tuple.Int64},
	)
	var rows []tuple.Row
	for i := int64(0); i < 2500; i++ {
		rows = append(rows, tuple.IntsRow(i, i*2, i*3))
	}
	return NewValues(schema, rows), rows
}

func TestColProject(t *testing.T) {
	in, rows := colProjectInput()
	p, err := NewColProject(in, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Schema().String(); got != "(c int64, a int64)" {
		t.Errorf("schema = %s", got)
	}
	out, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows) {
		t.Fatalf("projected %d rows, want %d", len(out), len(rows))
	}
	for i, r := range out {
		if r.Int(0) != rows[i].Int(2) || r.Int(1) != rows[i].Int(0) {
			t.Fatalf("row %d = %v, want [%d %d]", i, r, rows[i].Int(2), rows[i].Int(0))
		}
	}
}

func TestColProjectPerTupleAgrees(t *testing.T) {
	in, _ := colProjectInput()
	p, err := NewColProject(in, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Open(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	n := int64(0)
	for {
		row, ok, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if row.Int(0) != n*2 {
			t.Fatalf("row %d = %v", n, row)
		}
		n++
	}
	if n != 2500 {
		t.Errorf("per-tuple drain produced %d rows", n)
	}
}

func TestColProjectValidatesColumns(t *testing.T) {
	in, _ := colProjectInput()
	if _, err := NewColProject(in, []int{3}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := NewColProject(in, []int{-1}); err == nil {
		t.Error("negative column accepted")
	}
}

func TestHashAggNamed(t *testing.T) {
	schema := tuple.Ints(2)
	rows := []tuple.Row{
		tuple.IntsRow(1, 10),
		tuple.IntsRow(2, 20),
		tuple.IntsRow(1, 30),
	}
	agg := NewHashAggNamed(NewValues(schema, rows), nil, 0, "bucket", []AggSpec{
		{Name: "total", Col: 1, Kind: AggSum},
	})
	if got := agg.Schema().String(); got != "(bucket int64, total int64)" {
		t.Errorf("schema = %s", got)
	}
	out, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Int(1) != 40 || out[1].Int(1) != 20 {
		t.Errorf("groups = %v", out)
	}
}
