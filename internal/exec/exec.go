// Package exec implements a Volcano-style query executor: pipelined
// operators composed into trees, the substrate the paper's TPC-H
// experiments run on (Section VI-B). Access paths (package access and
// the Smooth Scan of package core) plug in as leaves; this package
// provides selection, projection, sorting, aggregation, limits and the
// joins the TPC-H plans use (nested-loop, index-nested-loop, hash and
// merge join).
//
// All per-tuple work charges simulated CPU time on the device so the
// harness can reproduce the paper's CPU-vs-I/O breakdowns.
package exec

import (
	"errors"
	"fmt"
	"sort"

	"smoothscan/internal/disk"
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// Operator is the Volcano iterator contract shared by every node of a
// plan, including the access paths of packages access and core.
type Operator interface {
	// Schema describes the rows Next returns.
	Schema() *tuple.Schema
	// Open prepares the operator (and its children).
	Open() error
	// Next returns the next row; ok is false at end of stream.
	Next() (row tuple.Row, ok bool, err error)
	// Close releases resources; the operator may be reopened.
	Close() error
}

// ErrClosed is returned by Next before Open or after Close.
var ErrClosed = errors.New("exec: operator is not open")

// Drain runs an operator to completion and returns all rows. It pulls
// through the batched protocol, cloning each row out of the batch (the
// returned rows are owned by the caller).
func Drain(op Operator) ([]tuple.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []tuple.Row
	b := newScratchFor(op)
	for {
		n, err := NextBatch(op, b)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		for i := 0; i < n; i++ {
			out = append(out, b.Row(i).Clone())
		}
	}
}

// Count runs an operator to completion, discarding rows, and returns
// the row count. It drains through the batched protocol, so counting a
// scan moves no per-tuple allocations at all (benchmarks).
func Count(op Operator) (int64, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	var n int64
	b := newScratchFor(op)
	for {
		k, err := NextBatch(op, b)
		if err != nil {
			return n, err
		}
		if k == 0 {
			return n, nil
		}
		n += int64(k)
	}
}

// Values is a leaf operator over in-memory rows; used in tests and as
// the output of blocking phases.
type Values struct {
	schema *tuple.Schema
	rows   []tuple.Row
	pos    int
	open   bool
}

// NewValues creates a Values leaf. Rows are not copied.
func NewValues(schema *tuple.Schema, rows []tuple.Row) *Values {
	return &Values{schema: schema, rows: rows}
}

// Schema returns the row schema.
func (v *Values) Schema() *tuple.Schema { return v.schema }

// Open rewinds the operator.
func (v *Values) Open() error { v.pos = 0; v.open = true; return nil }

// Next returns the next row.
func (v *Values) Next() (tuple.Row, bool, error) {
	if !v.open {
		return nil, false, ErrClosed
	}
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	r := v.rows[v.pos]
	v.pos++
	return r, true, nil
}

// Close marks the operator closed.
func (v *Values) Close() error { v.open = false; return nil }

// Predicate decides whether a row passes a filter.
type Predicate func(tuple.Row) bool

// Filter passes through rows matching the predicate.
type Filter struct {
	child Operator
	pred  Predicate
	dev   *disk.Device
	open  bool
}

// NewFilter wraps child with a row predicate; dev may be nil to skip
// CPU accounting.
func NewFilter(child Operator, dev *disk.Device, pred Predicate) *Filter {
	return &Filter{child: child, pred: pred, dev: dev}
}

// Schema returns the child schema.
func (f *Filter) Schema() *tuple.Schema { return f.child.Schema() }

// Open opens the child.
func (f *Filter) Open() error {
	if err := f.child.Open(); err != nil {
		return err
	}
	f.open = true
	return nil
}

// Next returns the next row matching the predicate.
func (f *Filter) Next() (tuple.Row, bool, error) {
	if !f.open {
		return nil, false, ErrClosed
	}
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.dev != nil {
			f.dev.ChargeCPU(simcost.Tuple)
		}
		if f.pred(row) {
			return row, true, nil
		}
	}
}

// Close closes the child.
func (f *Filter) Close() error { f.open = false; return f.child.Close() }

// Project maps each input row through a function.
type Project struct {
	child   Operator
	schema  *tuple.Schema
	fn      func(tuple.Row) tuple.Row
	scratch *tuple.Batch // lazily allocated by NextBatch
	open    bool
}

// NewProject wraps child with a row transform producing rows of the
// given schema.
func NewProject(child Operator, schema *tuple.Schema, fn func(tuple.Row) tuple.Row) *Project {
	return &Project{child: child, schema: schema, fn: fn}
}

// Schema returns the projected schema.
func (p *Project) Schema() *tuple.Schema { return p.schema }

// Open opens the child.
func (p *Project) Open() error {
	if err := p.child.Open(); err != nil {
		return err
	}
	p.open = true
	return nil
}

// Next returns the next projected row.
func (p *Project) Next() (tuple.Row, bool, error) {
	if !p.open {
		return nil, false, ErrClosed
	}
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return p.fn(row), true, nil
}

// Close closes the child.
func (p *Project) Close() error { p.open = false; return p.child.Close() }

// ColProject projects its input onto a subset of columns, identified
// by index. Unlike the general Project it needs no per-row closure and
// its batched path copies column values straight between batches, so a
// builder-generated SELECT list costs no per-tuple allocation.
type ColProject struct {
	child   Operator
	cols    []int
	schema  *tuple.Schema
	scratch *tuple.Batch // lazily allocated by NextBatch
	row     tuple.Row    // per-tuple protocol scratch
	open    bool
}

// NewColProject wraps child with a projection onto the child-schema
// column indices cols (in output order). Column indices must be valid
// for the child schema.
func NewColProject(child Operator, cols []int) (*ColProject, error) {
	in := child.Schema()
	out := make([]tuple.Column, len(cols))
	for i, c := range cols {
		if c < 0 || c >= in.NumCols() {
			return nil, fmt.Errorf("exec: projected column %d outside schema %s", c, in)
		}
		out[i] = in.Col(c)
	}
	schema, err := tuple.NewSchema(out...)
	if err != nil {
		return nil, err
	}
	return &ColProject{child: child, cols: append([]int(nil), cols...), schema: schema}, nil
}

// Schema returns the projected schema.
func (p *ColProject) Schema() *tuple.Schema { return p.schema }

// Open opens the child.
func (p *ColProject) Open() error {
	if err := p.child.Open(); err != nil {
		return err
	}
	p.open = true
	return nil
}

// Next returns the next projected row.
func (p *ColProject) Next() (tuple.Row, bool, error) {
	if !p.open {
		return nil, false, ErrClosed
	}
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(tuple.Row, len(p.cols))
	for i, c := range p.cols {
		out[i] = row[c]
	}
	return out, true, nil
}

// Close closes the child.
func (p *ColProject) Close() error { p.open = false; return p.child.Close() }

// Limit passes through at most n rows.
type Limit struct {
	child Operator
	n     int64
	seen  int64
	open  bool
}

// NewLimit wraps child with a row limit.
func NewLimit(child Operator, n int64) *Limit { return &Limit{child: child, n: n} }

// Schema returns the child schema.
func (l *Limit) Schema() *tuple.Schema { return l.child.Schema() }

// Open opens the child and resets the count.
func (l *Limit) Open() error {
	if err := l.child.Open(); err != nil {
		return err
	}
	l.seen = 0
	l.open = true
	return nil
}

// Next returns the next row while under the limit.
func (l *Limit) Next() (tuple.Row, bool, error) {
	if !l.open {
		return nil, false, ErrClosed
	}
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close closes the child.
func (l *Limit) Close() error { l.open = false; return l.child.Close() }

// SortOp materialises and sorts its input by an integer column — the
// posterior sort a plan needs when its access path does not deliver an
// interesting order (the handicap of Full Scan and Sort Scan in
// Figure 5a).
type SortOp struct {
	child    Operator
	col      int
	dev      *disk.Device
	memBytes int64 // 0 = unlimited (pure in-memory sort)
	rows     []tuple.Row
	pos      int
	open     bool
}

// NewSort sorts child's output by column col ascending, assuming the
// whole input fits in memory.
func NewSort(child Operator, dev *disk.Device, col int) *SortOp {
	return &SortOp{child: child, col: col, dev: dev}
}

// NewExternalSort is NewSort with a memory budget: when the
// materialised input exceeds memBytes, the sort spills — one
// sequential write pass and one sequential read pass over the data,
// as a two-pass external merge sort does. This is what makes a
// posterior ORDER BY expensive at high selectivity (Figure 5a).
func NewExternalSort(child Operator, dev *disk.Device, col int, memBytes int64) *SortOp {
	return &SortOp{child: child, col: col, dev: dev, memBytes: memBytes}
}

// chargeSpillIfNeeded charges the external-sort passes when dataBytes
// exceeds the budget.
func chargeSpillIfNeeded(dev *disk.Device, memBytes, dataBytes int64) {
	if dev == nil || memBytes <= 0 || dataBytes <= memBytes {
		return
	}
	pages := (dataBytes + int64(dev.PageSize()) - 1) / int64(dev.PageSize())
	dev.ChargeSpill(pages)
}

// Schema returns the child schema.
func (s *SortOp) Schema() *tuple.Schema { return s.child.Schema() }

// Open drains and sorts the child (blocking).
func (s *SortOp) Open() error {
	rows, err := Drain(s.child)
	if err != nil {
		return err
	}
	if s.dev != nil {
		s.dev.ChargeCPU(simcost.SortCost(len(rows)))
		var dataBytes int64
		for _, r := range rows {
			dataBytes += int64(len(r) * 8)
		}
		chargeSpillIfNeeded(s.dev, s.memBytes, dataBytes)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Int(s.col) < rows[j].Int(s.col) })
	s.rows = rows
	s.pos = 0
	s.open = true
	return nil
}

// Next streams the sorted rows.
func (s *SortOp) Next() (tuple.Row, bool, error) {
	if !s.open {
		return nil, false, ErrClosed
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close releases the buffered rows.
func (s *SortOp) Close() error { s.open = false; s.rows = nil; return nil }

// AggSpec describes one aggregate over an input column.
type AggSpec struct {
	// Name labels the output column.
	Name string
	// Col is the input column (ignored for COUNT).
	Col int
	// Kind selects the aggregate function.
	Kind AggKind
}

// AggKind enumerates supported aggregates.
type AggKind int

// Supported aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// HashAgg groups by an optional integer column and computes aggregates
// per group (blocking). A negative group column aggregates everything
// into one group.
type HashAgg struct {
	child    Operator
	groupCol int
	specs    []AggSpec
	dev      *disk.Device
	schema   *tuple.Schema

	out  []tuple.Row
	pos  int
	open bool
}

// NewHashAgg creates a grouped aggregation; groupCol < 0 means a
// single global group. The group key output column is named "group";
// use NewHashAggNamed to control it.
func NewHashAgg(child Operator, dev *disk.Device, groupCol int, specs []AggSpec) *HashAgg {
	return NewHashAggNamed(child, dev, groupCol, "group", specs)
}

// NewHashAggNamed is NewHashAgg with an explicit name for the group
// key output column, so builder-generated plans can keep the user's
// column name addressable in the result schema.
func NewHashAggNamed(child Operator, dev *disk.Device, groupCol int, groupName string, specs []AggSpec) *HashAgg {
	cols := []tuple.Column{}
	if groupCol >= 0 {
		cols = append(cols, tuple.Column{Name: groupName, Type: tuple.Int64})
	}
	for _, sp := range specs {
		cols = append(cols, tuple.Column{Name: sp.Name, Type: tuple.Int64})
	}
	return &HashAgg{
		child:    child,
		groupCol: groupCol,
		specs:    specs,
		dev:      dev,
		schema:   tuple.MustSchema(cols...),
	}
}

// Schema returns one column per group key (if any) followed by one per
// aggregate.
func (h *HashAgg) Schema() *tuple.Schema { return h.schema }

type aggState struct {
	count int64
	sum   []int64
	min   []int64
	max   []int64
	seen  bool
}

// Open drains the child and computes the aggregates (blocking).
func (h *HashAgg) Open() error {
	if err := h.child.Open(); err != nil {
		return err
	}
	defer h.child.Close()
	groups := map[int64]*aggState{}
	var order []int64
	in := newScratchFor(h.child)
	for {
		n, err := NextBatch(h.child, in)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		if h.dev != nil {
			h.dev.ChargeCPUN(simcost.Aggregate, int64(n))
		}
		for r := 0; r < n; r++ {
			row := in.Row(r)
			key := int64(0)
			if h.groupCol >= 0 {
				key = row.Int(h.groupCol)
			}
			st := groups[key]
			if st == nil {
				st = &aggState{
					sum: make([]int64, len(h.specs)),
					min: make([]int64, len(h.specs)),
					max: make([]int64, len(h.specs)),
				}
				groups[key] = st
				order = append(order, key)
			}
			st.count++
			for i, sp := range h.specs {
				v := row.Int(sp.Col)
				st.sum[i] += v
				if !st.seen || v < st.min[i] {
					st.min[i] = v
				}
				if !st.seen || v > st.max[i] {
					st.max[i] = v
				}
			}
			st.seen = true
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	h.out = h.out[:0]
	for _, key := range order {
		st := groups[key]
		var row tuple.Row
		if h.groupCol >= 0 {
			row = append(row, uint64(key))
		}
		for i, sp := range h.specs {
			switch sp.Kind {
			case AggCount:
				row = append(row, uint64(st.count))
			case AggSum:
				row = append(row, uint64(st.sum[i]))
			case AggMin:
				row = append(row, uint64(st.min[i]))
			case AggMax:
				row = append(row, uint64(st.max[i]))
			default:
				return fmt.Errorf("exec: unknown aggregate kind %d", sp.Kind)
			}
		}
		h.out = append(h.out, row)
	}
	h.pos = 0
	h.open = true
	return nil
}

// Next streams the per-group results, ordered by group key.
func (h *HashAgg) Next() (tuple.Row, bool, error) {
	if !h.open {
		return nil, false, ErrClosed
	}
	if h.pos >= len(h.out) {
		return nil, false, nil
	}
	r := h.out[h.pos]
	h.pos++
	return r, true, nil
}

// Close releases the buffered groups.
func (h *HashAgg) Close() error { h.open = false; h.out = nil; return nil }
