package exec

import (
	"fmt"
	"sort"

	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/heap"
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// IndexLookup is the classic parameterised inner input of an INLJ: one
// index probe per key, one (potentially random) heap access per match.
type IndexLookup struct {
	file *heap.File
	pool *bufferpool.Pool
	tree *btree.Tree
}

// NewIndexLookup creates a per-key index look-up on the column tree
// indexes.
func NewIndexLookup(file *heap.File, pool *bufferpool.Pool, tree *btree.Tree) *IndexLookup {
	return &IndexLookup{file: file, pool: pool, tree: tree}
}

// Schema returns the table schema.
func (l *IndexLookup) Schema() *tuple.Schema { return l.file.Schema() }

// Find returns all rows with the given key, fetching each by TID.
func (l *IndexLookup) Find(key int64) ([]tuple.Row, error) {
	it, err := l.tree.SeekGE(l.pool, key)
	if err != nil {
		return nil, err
	}
	var out []tuple.Row
	for {
		e, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok || e.Key != key {
			return out, nil
		}
		row, err := l.file.RowAt(l.pool, e.TID)
		if err != nil {
			return nil, err
		}
		l.pool.Device().ChargeCPU(simcost.Tuple)
		out = append(out, row)
	}
}

// SmoothLookup is the per-key morphing variant of Section IV-B: when
// Smooth Scan serves as the inner (parameterised) input of an INLJ,
// result order per key is irrelevant, so for each key it collects the
// matching TIDs, sorts them in heap-page order and fetches them as
// grouped runs — turning the repeated random accesses of a multi-match
// key into a flattened pattern.
type SmoothLookup struct {
	file *heap.File
	pool *bufferpool.Pool
	tree *btree.Tree
}

// NewSmoothLookup creates the per-key morphing look-up.
func NewSmoothLookup(file *heap.File, pool *bufferpool.Pool, tree *btree.Tree) *SmoothLookup {
	return &SmoothLookup{file: file, pool: pool, tree: tree}
}

// Schema returns the table schema.
func (l *SmoothLookup) Schema() *tuple.Schema { return l.file.Schema() }

// Find returns all rows with the given key using page-grouped fetches.
func (l *SmoothLookup) Find(key int64) ([]tuple.Row, error) {
	it, err := l.tree.SeekGE(l.pool, key)
	if err != nil {
		return nil, err
	}
	var tids []heap.TID
	for {
		e, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok || e.Key != key {
			break
		}
		tids = append(tids, e.TID)
	}
	if len(tids) == 0 {
		return nil, nil
	}
	l.pool.Device().ChargeCPU(simcost.SortCost(len(tids)))
	sort.Slice(tids, func(i, j int) bool { return tids[i].Less(tids[j]) })

	out := make([]tuple.Row, 0, len(tids))
	for i := 0; i < len(tids); {
		runStart := tids[i].Page
		runEnd := runStart + 1
		j := i
		for j < len(tids) && tids[j].Page < runEnd+1 {
			if tids[j].Page >= runEnd {
				runEnd = tids[j].Page + 1
			}
			j++
		}
		pages, err := l.file.GetRun(l.pool, runStart, runEnd-runStart, nil)
		if err != nil {
			return nil, fmt.Errorf("smooth lookup: %w", err)
		}
		for ; i < j; i++ {
			page := pages[tids[i].Page-runStart]
			l.pool.Device().ChargeCPU(simcost.Tuple)
			out = append(out, l.file.DecodeRow(page, int(tids[i].Slot), nil))
		}
	}
	return out, nil
}
