package core

import (
	"fmt"
	"testing"

	"smoothscan/internal/tuple"
)

// drainPerTuple runs the scan tuple at a time.
func drainPerTuple(t *testing.T, s *SmoothScan) []tuple.Row {
	t.Helper()
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var out []tuple.Row
	for {
		row, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

// drainBatched runs the scan through NextBatch with the given batch
// capacity, cloning rows out of the batch.
func drainBatched(t *testing.T, s *SmoothScan, batchCap int) []tuple.Row {
	t.Helper()
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := tuple.NewBatchFor(s.Schema(), batchCap)
	var out []tuple.Row
	for {
		n, err := s.NextBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		for i := 0; i < n; i++ {
			out = append(out, b.Row(i).Clone())
		}
	}
}

// TestBatchedSmoothScanEquivalence is the batching acceptance test: for
// every morphing policy, ordered and unordered delivery, and a spread
// of selectivities, the batched execution must produce exactly the rows
// of tuple-at-a-time execution in the same order, AND leave the
// simulated device in a bit-identical state — same I/O request counts,
// same random/sequential split, same simulated I/O and CPU time.
// Batching changes CPU wall-clock work, not the simulated schedule.
func TestBatchedSmoothScanEquivalence(t *testing.T) {
	const numRows = 600
	gen := func(i int64) int64 { return (i * 131) % numRows } // scattered values
	selPreds := map[string]tuple.RangePred{
		"sel1pct":   {Col: 1, Lo: 0, Hi: 6},
		"sel20pct":  {Col: 1, Lo: 100, Hi: 220},
		"sel100pct": {Col: 1, Lo: 0, Hi: numRows},
	}
	for _, policy := range []Policy{Elastic, Greedy, SelectivityIncrease} {
		for _, ordered := range []bool{false, true} {
			for selName, pred := range selPreds {
				for _, batchCap := range []int{1, 7, 256} {
					name := fmt.Sprintf("%v/ordered=%v/%s/batch=%d", policy, ordered, selName, batchCap)
					t.Run(name, func(t *testing.T) {
						cfg := Config{Policy: policy, Ordered: ordered, MaxRegionPages: 8}

						fxA := newFixture(t, numRows, 32, gen)
						ssA, err := NewSmoothScan(fxA.file, fxA.pool, fxA.tree, pred, cfg)
						if err != nil {
							t.Fatal(err)
						}
						want := drainPerTuple(t, ssA)

						fxB := newFixture(t, numRows, 32, gen)
						ssB, err := NewSmoothScan(fxB.file, fxB.pool, fxB.tree, pred, cfg)
						if err != nil {
							t.Fatal(err)
						}
						got := drainBatched(t, ssB, batchCap)

						if !rowsEqual(want, got) {
							t.Fatalf("batched rows differ: per-tuple %d rows, batched %d rows", len(want), len(got))
						}
						if sa, sb := fxA.dev.Stats(), fxB.dev.Stats(); sa != sb {
							t.Errorf("device stats differ:\n per-tuple: %+v\n batched:   %+v", sa, sb)
						}
						if sa, sb := ssA.Stats(), ssB.Stats(); sa != sb {
							t.Errorf("operator stats differ:\n per-tuple: %+v\n batched:   %+v", sa, sb)
						}
					})
				}
			}
		}
	}
}

// TestBatchedSmoothScanTriggersAndModes covers the non-eager triggers
// (which exercise the Tuple ID cache inside the batched analysePage)
// and the Entire-Page-Probe-only mode cap.
func TestBatchedSmoothScanTriggersAndModes(t *testing.T) {
	const numRows = 600
	gen := func(i int64) int64 { return (i * 131) % numRows }
	pred := tuple.RangePred{Col: 1, Lo: 50, Hi: 350}
	cfgs := map[string]Config{
		"optimizer-trigger": {Trigger: OptimizerDriven, EstimatedCard: 40},
		"optimizer-ordered": {Trigger: OptimizerDriven, EstimatedCard: 40, Ordered: true},
		"entire-page-only":  {MaxMode: ModeEntirePage},
	}
	for name, cfg := range cfgs {
		cfg := cfg
		cfg.MaxRegionPages = 8
		t.Run(name, func(t *testing.T) {
			fxA := newFixture(t, numRows, 32, gen)
			ssA, err := NewSmoothScan(fxA.file, fxA.pool, fxA.tree, pred, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := drainPerTuple(t, ssA)

			fxB := newFixture(t, numRows, 32, gen)
			ssB, err := NewSmoothScan(fxB.file, fxB.pool, fxB.tree, pred, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := drainBatched(t, ssB, 64)

			if !rowsEqual(want, got) {
				t.Fatalf("batched rows differ: per-tuple %d rows, batched %d rows", len(want), len(got))
			}
			if sa, sb := fxA.dev.Stats(), fxB.dev.Stats(); sa != sb {
				t.Errorf("device stats differ:\n per-tuple: %+v\n batched:   %+v", sa, sb)
			}
		})
	}
}

// TestSmoothScanMixedProtocol interleaves per-tuple and batched pulls
// on one operator; both drain the same cursor.
func TestSmoothScanMixedProtocol(t *testing.T) {
	const numRows = 400
	gen := func(i int64) int64 { return (i * 37) % numRows }
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: numRows}

	fxA := newFixture(t, numRows, 32, gen)
	ssA, err := NewSmoothScan(fxA.file, fxA.pool, fxA.tree, pred, Config{MaxRegionPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := drainPerTuple(t, ssA)

	fxB := newFixture(t, numRows, 32, gen)
	ssB, err := NewSmoothScan(fxB.file, fxB.pool, fxB.tree, pred, Config{MaxRegionPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ssB.Open(); err != nil {
		t.Fatal(err)
	}
	defer ssB.Close()
	b := tuple.NewBatchFor(ssB.Schema(), 32)
	var got []tuple.Row
	for i := 0; ; i++ {
		if i%2 == 0 {
			row, ok, err := ssB.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, row)
			continue
		}
		n, err := ssB.NextBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		for j := 0; j < n; j++ {
			got = append(got, b.Row(j).Clone())
		}
	}
	if !rowsEqual(want, got) {
		t.Fatalf("mixed protocol: %d rows, want %d", len(got), len(want))
	}
	if sa, sb := fxA.dev.Stats(), fxB.dev.Stats(); sa != sb {
		t.Errorf("device stats differ:\n per-tuple: %+v\n mixed:     %+v", sa, sb)
	}
}
