package core

import (
	"fmt"

	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// This file implements Result Cache spilling, the overflow mechanism
// Section IV-A sketches: "If memory becomes scarce, cache spilling
// could be employed by using overflow files. Caches containing the
// ranges the furthest from the current key range are spilled into the
// overflow files that are read upon reaching the range keys belong
// to."
//
// A spilled partition keeps its tuples in memory (the simulation has
// no real files) but the I/O a real system would pay is charged on the
// device: a sequential write of the partition at spill time and a
// sequential read at reload time. Spilling therefore changes measured
// cost exactly the way an overflow file would, while preserving
// correctness trivially.

// spillPolicy bounds the in-memory Result Cache. Spill I/O is charged
// through the operator's disk channel so a parallel worker's overflow
// traffic invalidates its own head position, not another stream's.
type spillPolicy struct {
	// memBudget is the maximum resident bytes before spilling kicks
	// in; 0 disables spilling.
	memBudget int64
	ch        *disk.Channel
	pageSize  int64
}

// partState tracks whether a partition is resident or spilled.
type partState uint8

const (
	partResident partState = iota
	partSpilled
)

// spillingCache wraps resultCache with overflow-file behaviour.
type spillingCache struct {
	*resultCache
	policy spillPolicy
	state  []partState

	// Instrumentation.
	spills      int64
	reloads     int64
	spillBytes  int64
	reloadBytes int64
}

// newSpillingCache wraps a fresh resultCache. memBudget == 0 means
// never spill.
func newSpillingCache(rc *resultCache, ch *disk.Channel, memBudget int64) *spillingCache {
	return &spillingCache{
		resultCache: rc,
		policy:      spillPolicy{memBudget: memBudget, ch: ch, pageSize: int64(ch.Device().PageSize())},
		state:       make([]partState, len(rc.parts)),
	}
}

// residentBytes returns the bytes held by resident partitions.
func (c *spillingCache) residentBytes() int64 {
	var total int64
	for i, p := range c.parts {
		if c.state[i] == partResident {
			total += int64(len(p)) * c.rowBytes
		}
	}
	return total
}

// insert stores a tuple and spills the furthest partitions if the
// memory budget is exceeded. The tuple's own partition is reloaded
// first if it happens to be spilled (insertion into an overflow file
// would be an append; reloading keeps the simulation simple and is
// charged the same way).
func (c *spillingCache) insert(key int64, tid heap.TID, row tuple.Row) {
	idx := c.partFor(key)
	if c.state[idx] == partSpilled {
		c.reload(idx)
	}
	c.resultCache.insert(key, tid, row)
	c.maybeSpill(idx)
}

// take fetches (and removes) a tuple, reloading its partition from the
// overflow file when necessary — "read upon reaching the range keys
// belong to".
func (c *spillingCache) take(key int64, tid heap.TID) (tuple.Row, bool) {
	idx := c.partFor(key)
	if c.state[idx] == partSpilled {
		c.reload(idx)
	}
	return c.resultCache.take(key, tid)
}

// dropBelow discards passed partitions (spilled ones are simply
// forgotten: their overflow file would be unlinked, costing nothing).
func (c *spillingCache) dropBelow(key int64) {
	// Count partitions that will be dropped to shift state in sync
	// with resultCache.dropBelow.
	i := 0
	for i < len(c.hi)-1 && c.hi[i] <= key {
		i++
	}
	if i == 0 {
		return
	}
	c.resultCache.dropBelow(key)
	c.state = c.state[i:]
}

// maybeSpill spills the partitions furthest from the current one until
// the resident set fits the budget.
func (c *spillingCache) maybeSpill(current int) {
	if c.policy.memBudget <= 0 {
		return
	}
	resident := c.residentBytes()
	// Spill from the far end of the key space towards the current
	// partition, never spilling the current one.
	for i := len(c.parts) - 1; i > current && resident > c.policy.memBudget; i-- {
		if c.state[i] != partResident || len(c.parts[i]) == 0 {
			continue
		}
		bytes := int64(len(c.parts[i])) * c.rowBytes
		c.spillPartition(i, bytes)
		resident -= bytes
	}
}

func (c *spillingCache) spillPartition(i int, bytes int64) {
	pages := (bytes + c.policy.pageSize - 1) / c.policy.pageSize
	if pages <= 0 {
		pages = 1
	}
	// ChargeSpill models the full overflow round trip (sequential
	// write now, sequential read at reload); charging it here keeps
	// the accounting in one place. Partitions that are dropped before
	// reload are slightly overcharged, which is the conservative
	// direction.
	c.policy.ch.ChargeSpill(pages)
	c.state[i] = partSpilled
	c.spills++
	c.spillBytes += bytes
}

func (c *spillingCache) reload(i int) {
	bytes := int64(len(c.parts[i])) * c.rowBytes
	c.state[i] = partResident
	c.reloads++
	c.reloadBytes += bytes
}

// SpillStats reports overflow-file activity for instrumentation.
type SpillStats struct {
	Spills      int64
	Reloads     int64
	SpillBytes  int64
	ReloadBytes int64
}

func (c *spillingCache) stats() SpillStats {
	return SpillStats{Spills: c.spills, Reloads: c.reloads, SpillBytes: c.spillBytes, ReloadBytes: c.reloadBytes}
}

func (c *spillingCache) validate() error {
	if len(c.state) != len(c.parts) {
		return fmt.Errorf("core: spill state out of sync: %d states for %d partitions", len(c.state), len(c.parts))
	}
	return nil
}
