// Package core implements Smooth Scan, the paper's contribution: a
// statistics-oblivious access path that morphs continuously between a
// non-clustered index look-up and a full table scan as its run-time
// understanding of the operator's selectivity evolves (Section III).
//
// The operator follows the index leaf entries in key order, like an
// index scan, but instead of fetching single tuples it analyses whole
// heap pages (Mode 1, Entire Page Probe) and, as observed selectivity
// grows, whole morphing regions of adjacent pages (Mode 2+, Flattening
// Access) whose size expands and — under the Elastic policy — shrinks
// with the local result density. Bookkeeping structures (Page ID
// cache, Tuple ID cache, Result Cache) guarantee every qualifying
// tuple is produced exactly once, and in index-key order when the plan
// requires it.
package core

import (
	"errors"
	"fmt"

	"smoothscan/internal/bitmap"
	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/costmodel"
	"smoothscan/internal/heap"
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// Policy selects how the morphing region evolves (Section III-B).
type Policy int

const (
	// Elastic morphs two ways: it doubles in dense regions and halves
	// in sparse ones, exploiting skew as an opportunity. It is the
	// paper's recommended policy and therefore the zero value.
	Elastic Policy = iota
	// Greedy doubles the morphing region after every index probe,
	// converging to a full scan as fast as possible.
	Greedy
	// SelectivityIncrease doubles the region when the local
	// selectivity of the last region reaches the global selectivity,
	// and otherwise keeps the current size (a ratchet).
	SelectivityIncrease
)

func (p Policy) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case SelectivityIncrease:
		return "selectivity-increase"
	case Elastic:
		return "elastic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Trigger selects when morphing starts (Section III-C).
type Trigger int

const (
	// Eager replaces the access path entirely: Smooth Scan behaviour
	// from the very first tuple. The paper's default.
	Eager Trigger = iota
	// OptimizerDriven starts as a classic index scan and morphs once
	// the produced cardinality exceeds the optimizer's estimate.
	OptimizerDriven
	// SLADriven starts as a classic index scan and morphs at the
	// cardinality beyond which, per the Section V cost model, a
	// worst-case (100% selectivity) completion could no longer meet
	// the configured SLA bound.
	SLADriven
)

func (t Trigger) String() string {
	switch t {
	case Eager:
		return "eager"
	case OptimizerDriven:
		return "optimizer-driven"
	case SLADriven:
		return "sla-driven"
	default:
		return fmt.Sprintf("Trigger(%d)", int(t))
	}
}

// Mode identifies the operator's execution mode (Section III-A).
type Mode int

const (
	// ModeIndex (Mode 0) is classic index-scan behaviour before a
	// non-eager trigger fires.
	ModeIndex Mode = iota
	// ModeEntirePage (Mode 1) analyses every record of each heap page
	// it loads.
	ModeEntirePage
	// ModeFlattening (Mode 2+) additionally fetches an expanding
	// region of adjacent pages per probe.
	ModeFlattening
)

func (m Mode) String() string {
	switch m {
	case ModeIndex:
		return "index(0)"
	case ModeEntirePage:
		return "entire-page-probe(1)"
	case ModeFlattening:
		return "flattening(2+)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultMaxRegionPages caps the morphing region at 2K pages (16 MB of
// 8 KB pages) — the value the paper's sensitivity analysis found
// optimal (Section VI-D).
const DefaultMaxRegionPages = 2048

// Config configures a SmoothScan.
type Config struct {
	// Policy is the morphing policy; the paper favours Elastic.
	Policy Policy
	// Trigger is the morphing trigger; the paper favours Eager.
	Trigger Trigger
	// Ordered preserves index-key output order using the Result
	// Cache. Leave false when no operator upstream needs the order;
	// extra qualifying tuples are then emitted as soon as found.
	Ordered bool
	// MaxRegionPages caps the morphing region (default 2048).
	MaxRegionPages int64
	// MaxMode caps morphing: ModeEntirePage reproduces the paper's
	// "Entire Page Probe only" sensitivity configuration (Figure 6).
	// Zero value means no cap (ModeFlattening).
	MaxMode Mode
	// EstimatedCard is the optimizer's cardinality estimate, used by
	// the OptimizerDriven trigger.
	EstimatedCard int64
	// SLABound is the operator cost bound (in I/O cost units) for the
	// SLADriven trigger.
	SLABound float64
	// CostParams parameterises the Section V cost model for the
	// SLADriven trigger. Required when Trigger == SLADriven.
	CostParams costmodel.Params
	// ResultCacheBudget bounds the ordered variant's Result Cache
	// resident memory in bytes; beyond it, the partitions furthest
	// from the current key range spill to simulated overflow files
	// (Section IV-A). Zero means unlimited.
	ResultCacheBudget int64
	// Residual holds extra conjunctive predicates pushed into page
	// analysis (heap.DecodeBatchMatching and the Mode 0 probes): tuples
	// failing any of them are examined but never produced, so a
	// multi-predicate plan materialises only its final matches.
	// Residual conjuncts must not reference the indexed column (fold
	// those into Pred instead) and are incompatible with Ordered — the
	// ordered Result Cache's invariants assume every index entry in the
	// key range is eventually produced.
	Residual []tuple.RangePred
	// PageLo/PageHi restrict the scan to the heap pages [PageLo,
	// PageHi): index entries pointing outside the range are skipped and
	// morphing regions never extend past PageHi. A parallel scan gives
	// each worker one disjoint page shard, so every heap page is
	// analysed by exactly one worker and the exactly-once guarantee
	// holds across workers by construction. Both zero means the whole
	// file.
	PageLo int64
	PageHi int64
}

// Stats exposes the operator's run-time counters, the raw material of
// Figures 6–9.
type Stats struct {
	// Produced is the number of result tuples returned.
	Produced int64
	// PagesFetched counts heap pages fetched and analysed by the
	// morphing modes (each exactly once, thanks to the Page ID cache).
	PagesFetched int64
	// PagesWithResults counts fetched pages that contained at least
	// one qualifying tuple; PagesWithResults/PagesFetched is the
	// morphing accuracy of Figure 9b.
	PagesWithResults int64
	// LeafPointersSkipped counts index entries skipped because their
	// page had already been analysed (the ✕ marks of Figure 3).
	LeafPointersSkipped int64
	// Expansions and Shrinks count morphing-region size changes.
	Expansions int64
	Shrinks    int64
	// PeakRegionPages is the largest morphing region used.
	PeakRegionPages int64
	// TriggeredAt is the produced-cardinality at which morphing began
	// (0 for Eager; -1 if a non-eager trigger never fired).
	TriggeredAt int64
	// CacheHits / CacheInserts / DirectReturns instrument the Result
	// Cache (ordered mode): hit rate = CacheHits / (CacheHits +
	// DirectReturns), Figure 9a.
	CacheHits     int64
	CacheInserts  int64
	DirectReturns int64
	// CachePeakTuples / CachePeakBytes are the Result Cache high-water
	// marks (the "couple of MB" discussion of Section IV-A).
	CachePeakTuples int64
	CachePeakBytes  int64
	// Spill instruments Result Cache overflow-file activity when a
	// ResultCacheBudget is configured.
	Spill SpillStats
	// PageCacheBytes and TupleCacheBytes are the bitmap footprints.
	PageCacheBytes  int64
	TupleCacheBytes int64
}

// AggregateStats combines per-worker Smooth Scan stats into query
// totals: counters are summed, peaks are summed for the Result Cache
// (workers' caches coexist) but maxed for the morphing region (regions
// are per-worker), and TriggeredAt is the earliest worker trigger (-1
// when no worker's trigger fired).
func AggregateStats(parts []Stats) Stats {
	out := Stats{TriggeredAt: -1}
	for _, p := range parts {
		out.Produced += p.Produced
		out.PagesFetched += p.PagesFetched
		out.PagesWithResults += p.PagesWithResults
		out.LeafPointersSkipped += p.LeafPointersSkipped
		out.Expansions += p.Expansions
		out.Shrinks += p.Shrinks
		if p.PeakRegionPages > out.PeakRegionPages {
			out.PeakRegionPages = p.PeakRegionPages
		}
		if p.TriggeredAt >= 0 && (out.TriggeredAt < 0 || p.TriggeredAt < out.TriggeredAt) {
			out.TriggeredAt = p.TriggeredAt
		}
		out.CacheHits += p.CacheHits
		out.CacheInserts += p.CacheInserts
		out.DirectReturns += p.DirectReturns
		out.CachePeakTuples += p.CachePeakTuples
		out.CachePeakBytes += p.CachePeakBytes
		out.Spill.Spills += p.Spill.Spills
		out.Spill.Reloads += p.Spill.Reloads
		out.Spill.SpillBytes += p.Spill.SpillBytes
		out.Spill.ReloadBytes += p.Spill.ReloadBytes
		out.PageCacheBytes += p.PageCacheBytes
		out.TupleCacheBytes += p.TupleCacheBytes
	}
	return out
}

// MorphingAccuracy returns PagesWithResults/PagesFetched (Figure 9b),
// or 0 when nothing was fetched.
func (s Stats) MorphingAccuracy() float64 {
	if s.PagesFetched == 0 {
		return 0
	}
	return float64(s.PagesWithResults) / float64(s.PagesFetched)
}

// CacheHitRate returns the Result Cache hit rate (Figure 9a).
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.DirectReturns
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// ErrClosed is returned by Next before Open or after Close.
var ErrClosed = errors.New("core: smooth scan is not open")

// SmoothScan is the morphing access-path operator. It produces exactly
// the tuples of its table matching the range predicate on the indexed
// column, each exactly once, in index-key order when Ordered is set.
type SmoothScan struct {
	file *heap.File
	pool *bufferpool.Pool
	tree *btree.Tree
	pred tuple.RangePred
	cfg  Config

	open     bool
	done     bool // index exhausted or key bound passed; latched
	sharded  bool // page shard narrower than the file (parallel worker)
	mode     Mode
	it       *btree.Iter
	pageSeen *bitmap.Bitmap // Page ID cache
	tupSeen  *bitmap.Bitmap // Tuple ID cache (non-eager triggers only)
	cache    *spillingCache // ordered mode only
	queue    *tuple.Batch   // unordered mode: pending region tuples, flat
	queuePos int
	runBuf   [][]byte  // GetRun scratch, reused across regions
	scratch  tuple.Row // per-slot decode scratch (ordered/tupSeen paths)

	regionPages int64 // current morphing region size
	triggerCard int64 // produced-count threshold for non-eager triggers

	// Policy state: global counters exclude the current region.
	globalPagesSeen    int64
	globalPagesWithRes int64

	stats Stats
}

// NewSmoothScan creates a Smooth Scan over file using the secondary
// index tree, which must index pred.Col.
func NewSmoothScan(file *heap.File, pool *bufferpool.Pool, tree *btree.Tree, pred tuple.RangePred, cfg Config) (*SmoothScan, error) {
	if cfg.MaxRegionPages == 0 {
		cfg.MaxRegionPages = DefaultMaxRegionPages
	}
	if cfg.MaxRegionPages < 1 {
		return nil, fmt.Errorf("core: MaxRegionPages %d < 1", cfg.MaxRegionPages)
	}
	if cfg.PageLo == 0 && cfg.PageHi == 0 {
		cfg.PageHi = file.NumPages()
	}
	if cfg.PageLo < 0 || cfg.PageLo > cfg.PageHi || cfg.PageHi > file.NumPages() {
		return nil, fmt.Errorf("core: page shard [%d,%d) outside file of %d pages",
			cfg.PageLo, cfg.PageHi, file.NumPages())
	}
	sharded := cfg.PageLo > 0 || cfg.PageHi < file.NumPages()
	if cfg.Ordered && len(cfg.Residual) > 0 {
		return nil, fmt.Errorf("core: residual predicates are incompatible with ordered delivery; filter above the scan instead")
	}
	if cfg.MaxMode == ModeIndex {
		cfg.MaxMode = ModeFlattening
	}
	switch cfg.Policy {
	case Elastic, Greedy, SelectivityIncrease:
	default:
		return nil, fmt.Errorf("core: unknown policy %d", cfg.Policy)
	}
	switch cfg.Trigger {
	case Eager:
	case OptimizerDriven:
		if cfg.EstimatedCard < 0 {
			return nil, fmt.Errorf("core: negative cardinality estimate")
		}
	case SLADriven:
		if err := cfg.CostParams.Validate(); err != nil {
			return nil, fmt.Errorf("core: SLA trigger: %w", err)
		}
		if cfg.SLABound <= 0 {
			return nil, fmt.Errorf("core: SLA trigger requires a positive bound")
		}
	default:
		return nil, fmt.Errorf("core: unknown trigger %d", cfg.Trigger)
	}
	return &SmoothScan{file: file, pool: pool, tree: tree, pred: pred, cfg: cfg, sharded: sharded}, nil
}

// Schema returns the table schema.
func (s *SmoothScan) Schema() *tuple.Schema { return s.file.Schema() }

// Stats returns a snapshot of the operator counters.
func (s *SmoothScan) Stats() Stats {
	st := s.stats
	if s.cache != nil {
		st.CachePeakTuples = s.cache.peakTuples
		st.CachePeakBytes = s.cache.peakBytes
		st.Spill = s.cache.stats()
	}
	return st
}

// CurrentMode returns the operator's current execution mode.
func (s *SmoothScan) CurrentMode() Mode { return s.mode }

// RegionPages returns the current morphing-region size in pages.
func (s *SmoothScan) RegionPages() int64 { return s.regionPages }

// Open positions the scan at the first qualifying index entry.
func (s *SmoothScan) Open() error {
	it, err := s.tree.SeekGE(s.pool, s.pred.Lo)
	if err != nil {
		return fmt.Errorf("smooth scan: %w", err)
	}
	s.it = it
	s.done = false
	s.stats = Stats{TriggeredAt: -1}
	s.pageSeen = bitmap.New(s.file.NumPages())
	s.stats.PageCacheBytes = s.pageSeen.MemoryBytes()
	s.regionPages = 1
	if s.queue == nil {
		s.queue = tuple.NewGrowableBatch(s.file.Schema().NumCols())
	}
	s.queue.Reset()
	s.queuePos = 0
	s.scratch = tuple.NewRow(s.file.Schema())
	s.globalPagesSeen = 0
	s.globalPagesWithRes = 0

	switch s.cfg.Trigger {
	case Eager:
		s.mode = ModeEntirePage
		s.triggerCard = 0
		s.stats.TriggeredAt = 0
	case OptimizerDriven:
		s.mode = ModeIndex
		s.triggerCard = s.cfg.EstimatedCard
	case SLADriven:
		s.mode = ModeIndex
		s.triggerCard = s.cfg.CostParams.SLATriggerCard(s.cfg.SLABound)
	}
	if s.mode == ModeIndex {
		s.tupSeen = bitmap.New(s.file.NumTuples())
		s.stats.TupleCacheBytes = s.tupSeen.MemoryBytes()
	}
	if s.cfg.Ordered {
		bounds, err := s.tree.RootKeys(s.pool)
		if err != nil {
			return fmt.Errorf("smooth scan: %w", err)
		}
		rc := newResultCache(bounds, s.file.Schema().NumCols())
		s.cache = newSpillingCache(rc, s.pool.Channel(), s.cfg.ResultCacheBudget)
	}
	s.open = true
	return nil
}

// Close releases the scan. Statistics (including Result Cache peaks)
// remain readable after Close; the region queue's buffer is kept for
// reuse by a later Open.
func (s *SmoothScan) Close() error {
	s.open = false
	s.it = nil
	return nil
}

func (s *SmoothScan) tidBit(tid heap.TID) int64 {
	return tid.Page*int64(s.file.TuplesPerPage()) + int64(tid.Slot)
}

// Next returns the next qualifying tuple. The returned row is owned by
// the caller.
func (s *SmoothScan) Next() (tuple.Row, bool, error) {
	if !s.open {
		return nil, false, ErrClosed
	}
	// Unordered mode: drain pending tuples from the last region. The
	// queue is a reused flat buffer, so hand out a copy.
	if s.queuePos < s.queue.Len() {
		row := s.queue.Row(s.queuePos).Clone()
		s.queuePos++
		s.stats.Produced++
		return row, true, nil
	}
	row, ok, err := s.advance()
	if err != nil || !ok {
		return nil, false, err
	}
	if row == nil {
		// advance refilled the queue.
		row = s.queue.Row(s.queuePos).Clone()
		s.queuePos++
	}
	s.stats.Produced++
	return row, true, nil
}

// NextBatch fills out with the next qualifying tuples. Whole regions
// flow from the queue into the caller's batch as flat copies, so the
// morphing fast path allocates nothing per tuple.
func (s *SmoothScan) NextBatch(out *tuple.Batch) (int, error) {
	if !s.open {
		return 0, ErrClosed
	}
	out.Reset()
	for !out.Full() {
		if s.queuePos < s.queue.Len() {
			n := out.AppendRows(s.queue, s.queuePos, s.queue.Len()-s.queuePos)
			s.queuePos += n
			s.stats.Produced += int64(n)
			continue
		}
		row, ok, err := s.advance()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		if row != nil {
			out.Append(row)
			s.stats.Produced++
		}
	}
	return out.Len(), nil
}

// advance runs the morphing loop until it produces a direct row (mode-0
// probe, ordered direct return or cache hit — returned non-nil), refills
// the unordered queue (returned nil, true), or exhausts the index
// (false). The caller accounts Produced.
func (s *SmoothScan) advance() (tuple.Row, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		// A sharded (parallel) worker pulls only the index entries
		// pointing into its own heap pages, filtered inside the leaf
		// scan; the serial path keeps the classic entry stream.
		var e btree.Entry
		var ok bool
		var err error
		if s.sharded {
			e, ok, err = s.it.NextInRange(s.pred.Hi, s.cfg.PageLo, s.cfg.PageHi)
		} else {
			e, ok, err = s.it.Next()
			if ok && e.Key >= s.pred.Hi {
				ok = false
			}
		}
		if err != nil {
			return nil, false, fmt.Errorf("smooth scan: %w", err)
		}
		if !ok {
			s.done = true
			return nil, false, nil
		}
		// Morphing trigger check (non-eager strategies).
		if s.mode == ModeIndex && s.stats.Produced >= s.triggerCard {
			s.mode = ModeEntirePage
			s.stats.TriggeredAt = s.stats.Produced
		}
		if s.mode == ModeIndex {
			// Mode 0: classic index-scan probe.
			row, err := s.file.RowAt(s.pool, e.TID)
			if err != nil {
				return nil, false, fmt.Errorf("smooth scan: %w", err)
			}
			s.pool.ChargeCPU(simcost.Tuple)
			s.tupSeen.Set(s.tidBit(e.TID))
			if !tuple.MatchesAll(s.cfg.Residual, row) {
				continue
			}
			return row, true, nil
		}

		if s.cfg.Ordered {
			s.cache.dropBelow(e.Key)
		}
		if s.pageSeen.Get(e.TID.Page) {
			// Leaf pointer to an already-analysed page (✕ in Fig. 3).
			s.stats.LeafPointersSkipped++
			if !s.cfg.Ordered {
				continue // tuple was already emitted from the queue
			}
			if s.tupSeen != nil && s.tupSeen.Get(s.tidBit(e.TID)) {
				continue // produced during Mode 0
			}
			s.pool.ChargeCPU(simcost.Hash)
			row, ok := s.cache.take(e.Key, e.TID)
			if !ok {
				return nil, false, fmt.Errorf("smooth scan: result cache miss for key %d tid %v (invariant violation)", e.Key, e.TID)
			}
			s.stats.CacheHits++
			return row, true, nil
		}

		// Unseen page: analyse a whole morphing region around it.
		direct, err := s.processRegion(e)
		if err != nil {
			return nil, false, err
		}
		if s.cfg.Ordered {
			s.stats.DirectReturns++
			return direct, true, nil
		}
		if s.queuePos < s.queue.Len() {
			return nil, true, nil
		}
		// The probed page must contain the probed tuple, so the queue
		// cannot be empty here unless every region tuple was already
		// produced in Mode 0; loop to the next entry in that case.
	}
}

// processRegion fetches and analyses the morphing region starting at
// the probed entry's page, records qualifying tuples, updates the Page
// ID cache and lets the policy adjust the region size. In ordered mode
// it returns the probed tuple; in unordered mode it fills the queue.
func (s *SmoothScan) processRegion(probe btree.Entry) (tuple.Row, error) {
	start := probe.TID.Page
	end := min64(start+s.regionPages, s.cfg.PageHi)

	var direct tuple.Row
	s.queue.Reset()
	s.queuePos = 0
	regionSeen := int64(0)
	regionWithRes := int64(0)

	// Fetch maximal unseen sub-runs of [start, end).
	for p := start; p < end; {
		if s.pageSeen.Get(p) {
			p++
			continue
		}
		runEnd := p + 1
		for runEnd < end && !s.pageSeen.Get(runEnd) {
			runEnd++
		}
		pages, err := s.file.GetRun(s.pool, p, runEnd-p, s.runBuf)
		if err != nil {
			return nil, fmt.Errorf("smooth scan: %w", err)
		}
		s.runBuf = pages
		for i, page := range pages {
			pageNo := p + int64(i)
			s.pageSeen.Set(pageNo)
			s.stats.PagesFetched++
			regionSeen++
			if s.analysePage(page, pageNo, probe, &direct) {
				s.stats.PagesWithResults++
				regionWithRes++
			}
		}
		p = runEnd
	}

	s.updatePolicy(regionSeen, regionWithRes)

	if s.cfg.Ordered {
		if direct == nil {
			return nil, fmt.Errorf("smooth scan: probed tuple %v not found on page %d (invariant violation)", probe.TID, probe.TID.Page)
		}
		return direct, nil
	}
	return nil, nil
}

// analysePage scans every record of the page (Entire Page Probe),
// dispatching qualifying tuples; reports whether any qualified.
//
// The hot configuration (unordered, eager trigger) decodes matching
// rows straight into the flat region queue, reading only the predicate
// column of non-matching slots and allocating nothing per tuple. Other
// configurations take the general path below. Per-tuple CPU charges
// are accumulated and flushed in runs (ChargeCPUN), preserving the
// exact sequence of cost additions of tuple-at-a-time execution.
func (s *SmoothScan) analysePage(page []byte, pageNo int64, probe btree.Entry, direct *tuple.Row) bool {
	count := heap.PageTupleCount(page)
	if !s.cfg.Ordered && s.tupSeen == nil {
		before := s.queue.Len()
		_, examined := s.file.DecodeBatchMatching(page, 0, count, s.pred, s.cfg.Residual, nil, s.queue)
		s.pool.ChargeCPUN(simcost.Tuple, int64(examined))
		return s.queue.Len() > before
	}
	found := false
	pendingTuples := int64(0) // accumulated simcost.Tuple charges
	for slot := 0; slot < count; slot++ {
		pendingTuples++
		v := s.file.ColInt(page, slot, s.pred.Col)
		if v < s.pred.Lo || v >= s.pred.Hi {
			continue
		}
		if !s.slotMatchesResidual(page, slot) {
			continue
		}
		found = true
		tid := heap.TID{Page: pageNo, Slot: int32(slot)}
		if s.tupSeen != nil && s.tupSeen.Get(s.tidBit(tid)) {
			continue // already produced in Mode 0
		}
		if s.cfg.Ordered {
			row := s.file.DecodeRow(page, slot, s.scratch)
			if tid == probe.TID {
				*direct = row.Clone()
			} else {
				s.pool.ChargeCPUN(simcost.Tuple, pendingTuples)
				pendingTuples = 0
				s.pool.ChargeCPU(simcost.Hash)
				s.cache.insert(row.Int(s.pred.Col), tid, row.Clone())
				s.stats.CacheInserts++
			}
		} else {
			s.file.DecodeRow(page, slot, s.queue.AppendSlotRaw())
		}
	}
	s.pool.ChargeCPUN(simcost.Tuple, pendingTuples)
	return found
}

// slotMatchesResidual evaluates the residual conjunction against a
// slot, reading only the referenced columns.
func (s *SmoothScan) slotMatchesResidual(page []byte, slot int) bool {
	for _, p := range s.cfg.Residual {
		v := s.file.ColInt(page, slot, p.Col)
		if v < p.Lo || v >= p.Hi {
			return false
		}
	}
	return true
}

// updatePolicy adjusts the morphing region after a region was
// processed, comparing the region's page-level result density (Eq. 1)
// against the global density over all previously seen pages (Eq. 2).
// Ties count as "dense": a region exactly as dense as the global
// average is evidence the data keeps qualifying, so the scan keeps
// flattening — this is what lets Smooth Scan converge to sequential
// behaviour at 100% selectivity (Figures 5 and 6).
func (s *SmoothScan) updatePolicy(regionSeen, regionWithRes int64) {
	if regionSeen == 0 {
		return
	}
	defer func() {
		s.globalPagesSeen += regionSeen
		s.globalPagesWithRes += regionWithRes
		if s.regionPages > s.stats.PeakRegionPages {
			s.stats.PeakRegionPages = s.regionPages
		}
	}()
	if s.cfg.MaxMode == ModeEntirePage {
		s.regionPages = 1
		return
	}
	grow := func() {
		if s.regionPages < s.cfg.MaxRegionPages {
			s.regionPages = min64(s.regionPages*2, s.cfg.MaxRegionPages)
			s.stats.Expansions++
			s.mode = ModeFlattening
		}
	}
	shrink := func() {
		if s.regionPages > 1 {
			s.regionPages /= 2
			s.stats.Shrinks++
		}
	}
	// local >= global  ⇔  regionWithRes/regionSeen >= globalWithRes/globalSeen,
	// compared without division. Before any page was seen, any result
	// counts as an increase.
	denser := regionWithRes*max64(s.globalPagesSeen, 1) >= s.globalPagesWithRes*regionSeen
	if s.globalPagesSeen == 0 {
		denser = regionWithRes > 0
	}
	switch s.cfg.Policy {
	case Greedy:
		grow()
	case SelectivityIncrease:
		if denser {
			grow()
		}
	case Elastic:
		if denser {
			grow()
		} else {
			shrink()
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
