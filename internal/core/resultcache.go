package core

import (
	"sort"

	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// resultCache implements the Result Cache of Section IV-A: when Smooth
// Scan must respect the index order (ORDER BY / merge-join input), the
// extra qualifying tuples discovered while analysing whole pages are
// parked here until the leaf traversal reaches their index entries.
//
// Naming note: this is the *scan-internal* result cache — it lives and
// dies inside one ordered Smooth Scan, bounded by
// ScanOptions.ResultCacheBudget, and backs that option since the
// ordered-delivery work. It is unrelated to the *semantic* query-result
// cache (internal/rescache, Options.ResultCacheBytes), which caches
// materialized result sets across executions at the query boundary.
// docs/CACHING.md disambiguates the two.
//
// The cache is partitioned by key range, with partition bounds taken
// from the separator keys of the index root page ("the root page is a
// good indicator of the key value distributions"). Once the scan's
// current key passes a partition's upper bound, every tuple in it must
// already have been produced, so the whole partition is discarded in
// one step — the bulk deletion the paper describes.
type resultCache struct {
	// parts[i] covers keys < hi[i] (and >= hi[i-1]); hi[len-1] is
	// +inf, represented by the sentinel below.
	hi    []int64
	parts []map[heap.TID]tuple.Row

	rowBytes int64 // memory estimate per cached tuple

	curTuples  int64
	curBytes   int64
	peakTuples int64
	peakBytes  int64
	inserts    int64
	hits       int64
}

const keySentinel = int64(^uint64(0) >> 1) // MaxInt64

// newResultCache builds a cache partitioned at the given ascending
// bounds (may be nil: a single partition covering all keys). rowCols
// sizes the per-tuple memory estimate.
func newResultCache(bounds []int64, rowCols int) *resultCache {
	hi := make([]int64, 0, len(bounds)+1)
	hi = append(hi, bounds...)
	hi = append(hi, keySentinel)
	parts := make([]map[heap.TID]tuple.Row, len(hi))
	for i := range parts {
		parts[i] = make(map[heap.TID]tuple.Row)
	}
	return &resultCache{
		hi:    hi,
		parts: parts,
		// 8 bytes per column plus TID key and map overhead.
		rowBytes: int64(8*rowCols) + 24,
	}
}

func (c *resultCache) partFor(key int64) int {
	return sort.Search(len(c.hi), func(i int) bool { return key < c.hi[i] })
}

// insert parks a qualifying tuple under its key and TID.
func (c *resultCache) insert(key int64, tid heap.TID, row tuple.Row) {
	c.parts[c.partFor(key)][tid] = row
	c.inserts++
	c.curTuples++
	c.curBytes += c.rowBytes
	if c.curTuples > c.peakTuples {
		c.peakTuples = c.curTuples
	}
	if c.curBytes > c.peakBytes {
		c.peakBytes = c.curBytes
	}
}

// take removes and returns the tuple cached under (key, tid).
func (c *resultCache) take(key int64, tid heap.TID) (tuple.Row, bool) {
	p := c.parts[c.partFor(key)]
	row, ok := p[tid]
	if !ok {
		return nil, false
	}
	delete(p, tid)
	c.hits++
	c.curTuples--
	c.curBytes -= c.rowBytes
	return row, true
}

// dropBelow discards every partition whose key range lies entirely
// below key. The scan calls it as its current key advances.
func (c *resultCache) dropBelow(key int64) {
	i := 0
	for i < len(c.hi)-1 && c.hi[i] <= key {
		i++
	}
	if i == 0 {
		return
	}
	for j := 0; j < i; j++ {
		c.curTuples -= int64(len(c.parts[j]))
		c.curBytes -= int64(len(c.parts[j])) * c.rowBytes
	}
	c.hi = c.hi[i:]
	c.parts = c.parts[i:]
}

// size returns the current number of cached tuples.
func (c *resultCache) size() int64 { return c.curTuples }
