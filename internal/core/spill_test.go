package core

import (
	"testing"

	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

func newSpillFixture(budget int64) (*spillingCache, *disk.Device) {
	dev := disk.NewDevice(disk.HDD)
	rc := newResultCache([]int64{100, 200, 300}, 4) // 4 partitions
	return newSpillingCache(rc, dev.DefaultChannel(), budget), dev
}

func fill(c *spillingCache, key int64, n int) {
	for i := 0; i < n; i++ {
		c.insert(key, heap.TID{Page: key, Slot: int32(i)}, tuple.IntsRow(key, 0, 0, 0))
	}
}

func TestSpillDisabledByDefault(t *testing.T) {
	c, dev := newSpillFixture(0)
	fill(c, 50, 1000)
	fill(c, 350, 1000)
	if c.stats().Spills != 0 {
		t.Errorf("spilled with no budget: %+v", c.stats())
	}
	if dev.Stats().IOTime != 0 {
		t.Errorf("charged I/O with no budget")
	}
}

func TestSpillFurthestPartitionFirst(t *testing.T) {
	// Budget fits ~one partition; inserting into partition 0 while
	// partitions 2 and 3 hold data must spill the far ones, not the
	// current one.
	c, dev := newSpillFixture(0)          // fill without budget first
	fill(c, 250, 100)                     // partition 2
	fill(c, 350, 100)                     // partition 3
	c.policy.memBudget = 100 * c.rowBytes // now tighten the budget
	fill(c, 50, 100)                      // partition 0 (current)

	if c.state[0] != partResident {
		t.Error("current partition was spilled")
	}
	if c.stats().Spills == 0 {
		t.Fatal("no partition spilled despite exceeding budget")
	}
	if c.state[3] != partSpilled {
		t.Error("furthest partition not spilled first")
	}
	if dev.Stats().PagesWritten == 0 {
		t.Error("spill charged no I/O")
	}
	if err := c.validate(); err != nil {
		t.Error(err)
	}
}

func TestSpillReloadOnTake(t *testing.T) {
	c, _ := newSpillFixture(0)
	fill(c, 350, 50)
	c.policy.memBudget = 1 // force spill on next insert
	fill(c, 50, 1)
	if c.state[3] != partSpilled {
		t.Fatal("partition 3 not spilled")
	}
	// Taking from the spilled partition reloads it transparently.
	row, ok := c.take(350, heap.TID{Page: 350, Slot: 0})
	if !ok || row.Int(0) != 350 {
		t.Fatalf("take from spilled partition: %v %v", row, ok)
	}
	if c.state[3] != partResident {
		t.Error("partition not marked resident after reload")
	}
	if c.stats().Reloads != 1 {
		t.Errorf("reloads = %d", c.stats().Reloads)
	}
}

func TestSpillDropBelowKeepsStateAligned(t *testing.T) {
	c, _ := newSpillFixture(0)
	fill(c, 50, 10)  // p0
	fill(c, 150, 10) // p1
	fill(c, 350, 10) // p3
	c.policy.memBudget = 1
	fill(c, 50, 1)   // triggers spill of p3 (and possibly p1/p2)
	c.dropBelow(200) // drops p0, p1
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	// p3 (now index 1) still reachable.
	if _, ok := c.take(350, heap.TID{Page: 350, Slot: 0}); !ok {
		t.Error("tuple lost across dropBelow with spilled partitions")
	}
}

func TestSmoothScanWithCacheBudgetStaysCorrect(t *testing.T) {
	// An ordered scan with a tiny Result Cache budget must return the
	// identical (ordered) result, just with extra overflow I/O.
	fx := newFixture(t, 1500, 256, func(i int64) int64 { return (i * 37) % 300 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 300}

	sBig, wantRows := fx.scan(t, pred, Config{Policy: Elastic, Ordered: true})
	noSpill := sBig.Stats()
	if noSpill.Spill.Spills != 0 {
		t.Fatalf("unlimited budget spilled: %+v", noSpill.Spill)
	}
	fx.pool.Reset()
	sSmall, gotRows := fx.scan(t, pred, Config{
		Policy:            Elastic,
		Ordered:           true,
		ResultCacheBudget: 2048, // a few dozen tuples
	})
	if !rowsEqual(gotRows, wantRows) {
		t.Fatal("budgeted scan returned different rows")
	}
	st := sSmall.Stats()
	if st.Spill.Spills == 0 {
		t.Error("tiny budget never spilled")
	}
	if st.Spill.Reloads == 0 {
		t.Error("spilled partitions never reloaded")
	}
}

func TestSpillChargesMeasurableIO(t *testing.T) {
	fx := newFixture(t, 1500, 256, func(i int64) int64 { return (i * 37) % 300 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 300}
	run := func(budget int64) float64 {
		fx.pool.Reset()
		fx.dev.ResetStats()
		fx.scan(t, pred, Config{Policy: Elastic, Ordered: true, ResultCacheBudget: budget})
		return fx.dev.Stats().IOTime
	}
	unlimited := run(0)
	tight := run(2048)
	if tight <= unlimited {
		t.Errorf("spilling should cost I/O: unlimited=%v tight=%v", unlimited, tight)
	}
}
