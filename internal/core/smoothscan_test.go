package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/costmodel"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// fixture is a loaded 3-column table (c1 = row number, c2 = gen(i),
// c3 = i%3) with a secondary index on c2, on 256-byte pages (10
// tuples/page).
type fixture struct {
	dev  *disk.Device
	pool *bufferpool.Pool
	file *heap.File
	tree *btree.Tree
	rows []tuple.Row
}

func newFixture(t testing.TB, numRows int64, poolPages int, gen func(i int64) int64) *fixture {
	t.Helper()
	dev := disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 256})
	file, err := heap.Create(dev, tuple.Ints(3))
	if err != nil {
		t.Fatal(err)
	}
	b := file.NewBuilder()
	var rows []tuple.Row
	for i := int64(0); i < numRows; i++ {
		r := tuple.IntsRow(i, gen(i), i%3)
		rows = append(rows, r)
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	tree, err := btree.BuildOnColumn(dev, file, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	return &fixture{dev: dev, pool: bufferpool.New(dev, poolPages), file: file, tree: tree, rows: rows}
}

// newBigFixture loads a table with the paper's real geometry: 8 KB
// pages, 10 integer columns (80-byte tuples, 102 per page), HDD costs.
func newBigFixture(t testing.TB, numRows int64, gen func(i int64) int64) *fixture {
	t.Helper()
	dev := disk.NewDevice(disk.HDD)
	file, err := heap.Create(dev, tuple.Ints(10))
	if err != nil {
		t.Fatal(err)
	}
	b := file.NewBuilder()
	var rows []tuple.Row
	for i := int64(0); i < numRows; i++ {
		r := tuple.IntsRow(i, gen(i), 0, 0, 0, 0, 0, 0, 0, 0)
		rows = append(rows, r)
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	tree, err := btree.BuildOnColumn(dev, file, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	pool := bufferpool.New(dev, int(file.NumPages()/10)+100)
	return &fixture{dev: dev, pool: pool, file: file, tree: tree, rows: rows}
}

func (fx *fixture) scan(t testing.TB, pred tuple.RangePred, cfg Config) (*SmoothScan, []tuple.Row) {
	t.Helper()
	s, err := NewSmoothScan(fx.file, fx.pool, fx.tree, pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	var out []tuple.Row
	for {
		row, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, row)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return s, out
}

func expected(rows []tuple.Row, pred tuple.RangePred) []tuple.Row {
	var out []tuple.Row
	for _, r := range rows {
		if pred.Matches(r) {
			out = append(out, r)
		}
	}
	return out
}

func sortByKeyThenTID(rows []tuple.Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Int(1) != rows[j].Int(1) {
			return rows[i].Int(1) < rows[j].Int(1)
		}
		return rows[i].Int(0) < rows[j].Int(0)
	})
}

func rowsEqual(a, b []tuple.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestConfigValidation(t *testing.T) {
	fx := newFixture(t, 50, 16, func(i int64) int64 { return i })
	pred := tuple.All(1)
	bad := []Config{
		{Policy: Policy(9)},
		{Trigger: Trigger(9)},
		{MaxRegionPages: -1},
		{Trigger: OptimizerDriven, EstimatedCard: -1},
		{Trigger: SLADriven}, // missing bound and params
	}
	for i, cfg := range bad {
		if _, err := NewSmoothScan(fx.file, fx.pool, fx.tree, pred, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewSmoothScan(fx.file, fx.pool, fx.tree, pred, Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNextBeforeOpen(t *testing.T) {
	fx := newFixture(t, 50, 16, func(i int64) int64 { return i })
	s, err := NewSmoothScan(fx.file, fx.pool, fx.tree, tuple.All(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Next(); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestOrderedOutputIsKeyOrdered(t *testing.T) {
	fx := newFixture(t, 800, 64, func(i int64) int64 { return (i * 37) % 200 })
	pred := tuple.RangePred{Col: 1, Lo: 20, Hi: 180}
	_, got := fx.scan(t, pred, Config{Policy: Elastic, Ordered: true})
	want := expected(fx.rows, pred)
	sortByKeyThenTID(want)
	if !rowsEqual(got, want) {
		t.Fatalf("ordered smooth scan: %d rows, want %d (or order mismatch)", len(got), len(want))
	}
}

func TestUnorderedOutputIsCorrectMultiset(t *testing.T) {
	fx := newFixture(t, 800, 64, func(i int64) int64 { return (i * 37) % 200 })
	pred := tuple.RangePred{Col: 1, Lo: 20, Hi: 180}
	_, got := fx.scan(t, pred, Config{Policy: Elastic})
	want := expected(fx.rows, pred)
	sortByKeyThenTID(got)
	sortByKeyThenTID(want)
	if !rowsEqual(got, want) {
		t.Fatalf("unordered smooth scan multiset mismatch: %d vs %d", len(got), len(want))
	}
}

func TestEveryPageFetchedAtMostOnce(t *testing.T) {
	// Full selectivity: the defining guarantee of the Eager strategy
	// is that page accesses never exceed the number of heap pages.
	fx := newFixture(t, 2000, 512, func(i int64) int64 { return (i * 7919) % 2000 })
	s, got := fx.scan(t, tuple.All(1), Config{Policy: Elastic})
	if int64(len(got)) != fx.file.NumTuples() {
		t.Fatalf("produced %d of %d tuples", len(got), fx.file.NumTuples())
	}
	if s.Stats().PagesFetched != fx.file.NumPages() {
		t.Errorf("PagesFetched = %d, want %d", s.Stats().PagesFetched, fx.file.NumPages())
	}
	// Device-level heap reads must equal the page count (pool is big
	// enough that nothing is re-read after eviction).
	// Index pages add a little on top.
	ds := fx.dev.Stats()
	if ds.PagesRead > fx.file.NumPages()+fx.tree.NumLeaves()+10 {
		t.Errorf("device read %d pages for %d heap + %d leaves", ds.PagesRead, fx.file.NumPages(), fx.tree.NumLeaves())
	}
}

func TestConvergesToSequentialAtFullSelectivity(t *testing.T) {
	fx := newBigFixture(t, 50_000, func(i int64) int64 { return (i * 7919) % 50_000 })
	fx.scan(t, tuple.All(1), Config{Policy: Elastic})
	s := fx.dev.Stats()
	// The morphing region doubles towards the max; random jumps must
	// be a tiny fraction of total page accesses.
	if s.RandomAccesses*20 > s.PagesRead {
		t.Errorf("too many random accesses: %d of %d pages", s.RandomAccesses, s.PagesRead)
	}
	// Intrinsic overhead over a full scan: the index-leaf walk (~25%
	// at this tuple/entry geometry, shrinking with table size) plus a
	// handful of expansion seeks. The paper reports ~20% at 400M
	// rows; at 50K rows we allow 80%.
	fsIO := float64(fx.file.NumPages()) // full scan cost
	if got := s.IOTime; got > fsIO*1.8 {
		t.Errorf("smooth scan I/O %v vs full scan %v: not near-sequential", got, fsIO)
	}
}

func TestLowSelectivityStaysNearIndexScan(t *testing.T) {
	fx := newFixture(t, 4000, 256, func(i int64) int64 { return (i * 7919) % 4000 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 4} // 4 tuples of 4000
	s, got := fx.scan(t, pred, Config{Policy: Elastic, Ordered: true})
	if len(got) != 4 {
		t.Fatalf("produced %d rows, want 4", len(got))
	}
	st := s.Stats()
	// Elastic oscillates between 1 and 2 pages per probe: the scan
	// must fetch O(card) pages, not O(table).
	if st.PagesFetched > 16 {
		t.Errorf("PagesFetched = %d for 4 results", st.PagesFetched)
	}
}

func TestEntirePageProbeCapKeepsRegionAtOne(t *testing.T) {
	fx := newFixture(t, 1000, 256, func(i int64) int64 { return (i * 7919) % 1000 })
	s, _ := fx.scan(t, tuple.All(1), Config{Policy: Elastic, MaxMode: ModeEntirePage})
	st := s.Stats()
	if st.Expansions != 0 || st.PeakRegionPages > 1 {
		t.Errorf("mode cap violated: expansions=%d peak=%d", st.Expansions, st.PeakRegionPages)
	}
	if s.CurrentMode() != ModeEntirePage {
		t.Errorf("mode = %v, want entire-page-probe", s.CurrentMode())
	}
	// Every page is fetched exactly once but randomly: I/O ≈ P × rand.
	ds := fx.dev.Stats()
	if ds.RandomAccesses < fx.file.NumPages()/2 {
		t.Errorf("entire-page probe should be mostly random: %d random of %d pages", ds.RandomAccesses, fx.file.NumPages())
	}
}

func TestMaxRegionPagesCap(t *testing.T) {
	fx := newFixture(t, 2000, 512, func(i int64) int64 { return (i * 7919) % 2000 })
	s, _ := fx.scan(t, tuple.All(1), Config{Policy: Greedy, MaxRegionPages: 8})
	if st := s.Stats(); st.PeakRegionPages > 8 {
		t.Errorf("PeakRegionPages = %d, cap was 8", st.PeakRegionPages)
	}
}

func TestGreedyConvergesFasterThanElastic(t *testing.T) {
	gen := func(i int64) int64 { return (i * 7919) % 8000 }
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 40} // low selectivity

	fxG := newFixture(t, 8000, 512, gen)
	sg, _ := fxG.scan(t, pred, Config{Policy: Greedy})
	fxE := newFixture(t, 8000, 512, gen)
	se, _ := fxE.scan(t, pred, Config{Policy: Elastic})

	if sg.Stats().PagesFetched <= se.Stats().PagesFetched {
		t.Errorf("greedy fetched %d pages, elastic %d: greedy should over-read at low selectivity",
			sg.Stats().PagesFetched, se.Stats().PagesFetched)
	}
}

func TestElasticAdaptsToSkew(t *testing.T) {
	// Dense head (rows 0..999 all match) plus sparse tail — the
	// Figure 8 scenario. Elastic must fetch far fewer pages than
	// Selectivity-Increase, which never shrinks its region.
	const n = 8000
	gen := func(i int64) int64 {
		if i < 1000 {
			return 0
		}
		if i%500 == 0 {
			return 0 // sparse extra matches
		}
		return 1 + i%100
	}
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 1}

	fxE := newFixture(t, n, 512, gen)
	se, gotE := fxE.scan(t, pred, Config{Policy: Elastic})
	fxS := newFixture(t, n, 512, gen)
	ss, gotS := fxS.scan(t, pred, Config{Policy: SelectivityIncrease})

	if len(gotE) != len(gotS) {
		t.Fatalf("policies disagree on result size: %d vs %d", len(gotE), len(gotS))
	}
	e, si := se.Stats(), ss.Stats()
	if e.Shrinks == 0 {
		t.Error("elastic never shrank through the sparse tail")
	}
	if si.Shrinks != 0 {
		t.Error("selectivity-increase shrank (must be a ratchet)")
	}
	if e.PagesFetched*2 > si.PagesFetched {
		t.Errorf("elastic fetched %d pages vs SI %d: expected a large gap", e.PagesFetched, si.PagesFetched)
	}
}

func TestOptimizerDrivenTrigger(t *testing.T) {
	fx := newFixture(t, 2000, 512, func(i int64) int64 { return (i * 7919) % 2000 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 500} // 500 actual
	const estimate = 100
	s, got := fx.scan(t, pred, Config{
		Policy:        SelectivityIncrease,
		Trigger:       OptimizerDriven,
		EstimatedCard: estimate,
		Ordered:       true,
	})
	if len(got) != 500 {
		t.Fatalf("produced %d rows, want 500", len(got))
	}
	if st := s.Stats(); st.TriggeredAt != estimate {
		t.Errorf("TriggeredAt = %d, want %d", st.TriggeredAt, estimate)
	}
	// Order must hold across the morph boundary.
	for i := 1; i < len(got); i++ {
		if got[i].Int(1) < got[i-1].Int(1) {
			t.Fatalf("order violated at %d across morph", i)
		}
	}
}

func TestOptimizerDrivenNoTriggerBelowEstimate(t *testing.T) {
	fx := newFixture(t, 2000, 512, func(i int64) int64 { return (i * 7919) % 2000 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 50} // 50 actual
	s, got := fx.scan(t, pred, Config{
		Trigger:       OptimizerDriven,
		EstimatedCard: 100,
	})
	if len(got) != 50 {
		t.Fatalf("produced %d rows, want 50", len(got))
	}
	st := s.Stats()
	if st.TriggeredAt != -1 {
		t.Errorf("TriggeredAt = %d, want -1 (never morphs)", st.TriggeredAt)
	}
	if st.PagesFetched != 0 {
		t.Errorf("PagesFetched = %d in pure mode 0", st.PagesFetched)
	}
	if s.CurrentMode() != ModeIndex {
		t.Errorf("mode = %v, want index(0)", s.CurrentMode())
	}
}

func TestSLADrivenTriggerUsesCostModel(t *testing.T) {
	fx := newBigFixture(t, 50_000, func(i int64) int64 { return (i * 7919) % 50_000 })
	params := costmodel.Params{
		TupleSize: 80, PageSize: 8192, KeySize: 8,
		NumTuples: fx.file.NumTuples(),
		RandCost:  10, SeqCost: 1,
	}
	sla := 2 * params.FullScanCost() // the paper's Figure 7b setting
	wantTrigger := params.SLATriggerCard(sla)
	if wantTrigger <= 0 || wantTrigger >= fx.file.NumTuples() {
		t.Fatalf("degenerate trigger %d", wantTrigger)
	}
	pred := tuple.All(1)
	s, got := fx.scan(t, pred, Config{
		Policy:     Greedy, // the paper switches to Greedy on SLA violation
		Trigger:    SLADriven,
		SLABound:   sla,
		CostParams: params,
	})
	if int64(len(got)) != fx.file.NumTuples() {
		t.Fatalf("produced %d rows", len(got))
	}
	if st := s.Stats(); st.TriggeredAt != wantTrigger {
		t.Errorf("TriggeredAt = %d, want %d", st.TriggeredAt, wantTrigger)
	}
	// The worst case (100% selectivity) must respect the SLA bound,
	// with a little slack for effects outside the model (buffer-pool
	// evictions, region fragmentation).
	if io := fx.dev.Stats().IOTime; io > sla*1.1 {
		t.Errorf("I/O time %v exceeded SLA %v", io, sla)
	}
}

func TestResultCacheHitRateHighSelectivity(t *testing.T) {
	fx := newFixture(t, 2000, 512, func(i int64) int64 { return (i * 7919) % 2000 })
	s, _ := fx.scan(t, tuple.All(1), Config{Policy: Elastic, Ordered: true})
	st := s.Stats()
	if hr := st.CacheHitRate(); hr < 0.8 {
		t.Errorf("cache hit rate %v at full selectivity, want near 1", hr)
	}
	if st.CachePeakBytes == 0 || st.CachePeakTuples == 0 {
		t.Error("cache peaks not recorded")
	}
}

func TestResultCacheDrainsCompletely(t *testing.T) {
	fx := newFixture(t, 1000, 256, func(i int64) int64 { return (i * 37) % 250 })
	s, got := fx.scan(t, tuple.RangePred{Col: 1, Lo: 0, Hi: 250}, Config{Policy: Elastic, Ordered: true})
	if int64(len(got)) != fx.file.NumTuples() {
		t.Fatalf("produced %d rows", len(got))
	}
	if s.cache.size() != 0 {
		t.Errorf("result cache holds %d tuples after completion", s.cache.size())
	}
}

func TestMorphingAccuracyImprovesWithSelectivity(t *testing.T) {
	gen := func(i int64) int64 { return (i * 7919) % 10000 }
	acc := func(hi int64) float64 {
		fx := newFixture(t, 10000, 1024, gen)
		s, _ := fx.scan(t, tuple.RangePred{Col: 1, Lo: 0, Hi: hi}, Config{Policy: Elastic})
		return s.Stats().MorphingAccuracy()
	}
	low := acc(10)     // 0.1% selectivity
	high := acc(10000) // 100%
	if high < 0.999 {
		t.Errorf("morphing accuracy at 100%% = %v, want ~1", high)
	}
	if low >= high {
		t.Errorf("accuracy did not improve: low=%v high=%v", low, high)
	}
}

func TestBookkeepingMemorySmall(t *testing.T) {
	fx := newFixture(t, 10000, 512, func(i int64) int64 { return i })
	s, _ := fx.scan(t, tuple.RangePred{Col: 1, Lo: 0, Hi: 100}, Config{Policy: Elastic, Ordered: true})
	st := s.Stats()
	heapBytes := fx.file.NumPages() * 256
	if st.PageCacheBytes*100 > heapBytes {
		t.Errorf("page cache %d bytes for %d bytes of data: not <1%%", st.PageCacheBytes, heapBytes)
	}
}

func TestErrorPropagation(t *testing.T) {
	fx := newFixture(t, 1000, 256, func(i int64) int64 { return (i * 37) % 250 })
	s, err := NewSmoothScan(fx.file, fx.pool, fx.tree, tuple.All(1), Config{Policy: Elastic})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	fx.dev.FailAfter(5)
	var last error
	for {
		_, ok, err := s.Next()
		if err != nil {
			last = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(last, disk.ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", last)
	}
	fx.dev.FailAfter(-1)
}

// Property: Smooth Scan under every policy × trigger × order setting
// returns exactly the qualifying tuples, each once, ordered when
// requested — equivalent to a filtered full scan.
func TestSmoothScanEquivalenceProperty(t *testing.T) {
	f := func(seed int64, loRaw, width uint8, estRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := newFixture(t, 600, 48, func(i int64) int64 { return rng.Int63n(150) })
		lo := int64(loRaw) % 160
		hi := lo + int64(width)
		pred := tuple.RangePred{Col: 1, Lo: lo, Hi: hi}
		want := expected(fx.rows, pred)
		sortByKeyThenTID(want)

		params := costmodel.Params{
			TupleSize: 24, PageSize: 256, KeySize: 8,
			NumTuples: fx.file.NumTuples(), RandCost: 10, SeqCost: 1,
		}
		for _, policy := range []Policy{Greedy, SelectivityIncrease, Elastic} {
			for _, ordered := range []bool{false, true} {
				for _, trigger := range []Trigger{Eager, OptimizerDriven, SLADriven} {
					cfg := Config{Policy: policy, Trigger: trigger, Ordered: ordered}
					switch trigger {
					case OptimizerDriven:
						cfg.EstimatedCard = int64(estRaw)
					case SLADriven:
						cfg.CostParams = params
						cfg.SLABound = 1.5 * params.FullScanCost()
					}
					_, got := fx.scan(t, pred, cfg)
					if ordered {
						if !rowsEqual(got, want) {
							return false
						}
					} else {
						sortByKeyThenTID(got)
						if !rowsEqual(got, want) {
							return false
						}
					}
					fx.pool.Reset()
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
