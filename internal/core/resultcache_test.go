package core

import (
	"testing"
	"testing/quick"

	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

func TestResultCachePartitioning(t *testing.T) {
	// Bounds 10, 20 -> partitions (-inf,10), [10,20), [20,+inf).
	c := newResultCache([]int64{10, 20}, 2)
	if len(c.parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(c.parts))
	}
	cases := []struct {
		key  int64
		part int
	}{{-100, 0}, {0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {1 << 40, 2}}
	for _, cse := range cases {
		if got := c.partFor(cse.key); got != cse.part {
			t.Errorf("partFor(%d) = %d, want %d", cse.key, got, cse.part)
		}
	}
}

func TestResultCacheInsertTake(t *testing.T) {
	c := newResultCache([]int64{100}, 3)
	tid := heap.TID{Page: 1, Slot: 2}
	row := tuple.IntsRow(1, 2, 3)
	c.insert(50, tid, row)
	if c.size() != 1 || c.inserts != 1 {
		t.Fatalf("size=%d inserts=%d", c.size(), c.inserts)
	}
	if _, ok := c.take(50, heap.TID{Page: 9, Slot: 9}); ok {
		t.Error("took a tuple that was never inserted")
	}
	got, ok := c.take(50, tid)
	if !ok || !got.Equal(row) {
		t.Fatalf("take = %v, %v", got, ok)
	}
	if c.size() != 0 || c.hits != 1 {
		t.Errorf("after take: size=%d hits=%d", c.size(), c.hits)
	}
	if _, ok := c.take(50, tid); ok {
		t.Error("double take succeeded")
	}
}

func TestResultCacheDropBelow(t *testing.T) {
	c := newResultCache([]int64{10, 20, 30}, 1)
	c.insert(5, heap.TID{Page: 0, Slot: 0}, tuple.IntsRow(5))
	c.insert(15, heap.TID{Page: 0, Slot: 1}, tuple.IntsRow(15))
	c.insert(25, heap.TID{Page: 0, Slot: 2}, tuple.IntsRow(25))
	c.insert(35, heap.TID{Page: 0, Slot: 3}, tuple.IntsRow(35))
	if c.size() != 4 {
		t.Fatalf("size = %d", c.size())
	}
	// Advancing to key 20 drops partitions with hi <= 20: (-inf,10)
	// and [10,20).
	c.dropBelow(20)
	if c.size() != 2 {
		t.Errorf("size after dropBelow(20) = %d, want 2", c.size())
	}
	// The remaining tuples are still reachable.
	if _, ok := c.take(25, heap.TID{Page: 0, Slot: 2}); !ok {
		t.Error("tuple in live partition lost")
	}
	if _, ok := c.take(35, heap.TID{Page: 0, Slot: 3}); !ok {
		t.Error("tuple in last partition lost")
	}
	// dropBelow below every bound is a no-op.
	c.dropBelow(-1000)
}

func TestResultCacheDropBelowBoundaryKey(t *testing.T) {
	// A tuple whose key equals a partition bound belongs to the NEXT
	// partition and must survive dropBelow(bound).
	c := newResultCache([]int64{10}, 1)
	c.insert(10, heap.TID{Page: 0, Slot: 0}, tuple.IntsRow(10))
	c.dropBelow(10)
	if _, ok := c.take(10, heap.TID{Page: 0, Slot: 0}); !ok {
		t.Error("boundary-key tuple dropped prematurely")
	}
}

func TestResultCachePeaks(t *testing.T) {
	c := newResultCache(nil, 4) // single partition
	for i := int64(0); i < 10; i++ {
		c.insert(i, heap.TID{Page: 0, Slot: int32(i)}, tuple.IntsRow(i, 0, 0, 0))
	}
	for i := int64(0); i < 10; i++ {
		c.take(i, heap.TID{Page: 0, Slot: int32(i)})
	}
	if c.peakTuples != 10 {
		t.Errorf("peakTuples = %d", c.peakTuples)
	}
	if c.peakBytes != 10*c.rowBytes {
		t.Errorf("peakBytes = %d", c.peakBytes)
	}
	if c.size() != 0 || c.curBytes != 0 {
		t.Errorf("not drained: %d tuples %d bytes", c.size(), c.curBytes)
	}
}

// Property: the cache behaves like a map keyed by TID, regardless of
// partition layout, as long as dropBelow only advances.
func TestResultCacheMapEquivalenceProperty(t *testing.T) {
	f := func(ops []uint16, boundSeed uint8) bool {
		bounds := []int64{int64(boundSeed % 64), int64(boundSeed%64) + 40}
		c := newResultCache(bounds, 1)
		ref := map[heap.TID]int64{}
		for _, op := range ops {
			key := int64(op % 128)
			tid := heap.TID{Page: int64(op % 16), Slot: int32(op % 8)}
			if op%2 == 0 {
				if _, dup := ref[tid]; !dup {
					c.insert(key, tid, tuple.IntsRow(key))
					ref[tid] = key
				}
			} else {
				want, inRef := ref[tid]
				got, ok := c.take(want, tid)
				if inRef != ok {
					return false
				}
				if ok {
					if got.Int(0) != want {
						return false
					}
					delete(ref, tid)
				}
			}
		}
		return int(c.size()) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
