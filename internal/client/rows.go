package client

import (
	"context"
	"fmt"

	"smoothscan/internal/wire"
)

// Rows iterates a remote result stream. It mirrors the embedded
// smoothscan.Rows iterator (Next/Row/Col/Err/Close) over the wire's
// pull cursor: rows arrive in column-encoded batches, a fetch window
// at a time, so the server never runs unboundedly ahead of the
// consumer.
//
// A Rows is owned by a single goroutine, and its Conn can serve no
// other request until the stream is drained or closed. Close is safe
// at any point — mid-stream it cancels the server-side query (parallel
// scan workers exit promptly) — and safe after a server disconnect: a
// stream the server can no longer serve is simply over.
type Rows struct {
	c   *Conn
	ctx context.Context

	cols      []string
	fetchRows int

	flat  []int64 // current batch, row-major
	n     int     // rows in flat
	width int
	pos   int // next row to serve

	windowOpen bool // a Fetch was sent and its End not yet seen
	done       bool // terminal frame seen (End without More, or Error)
	closed     bool

	summary    wire.ExecSummary
	hasSummary bool

	err error
}

// Columns returns the names of the result columns, in output order.
func (r *Rows) Columns() []string {
	return append([]string(nil), r.cols...)
}

// Next advances to the next row; it returns false at the end of the
// stream or on error (check Err).
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.pos < r.n {
		r.pos++
		return true
	}
	if r.done {
		return false
	}
	return r.refill()
}

// refill pulls frames until a batch arrives or the stream terminates.
func (r *Rows) refill() bool {
	c := r.c
	for {
		if err := r.ctx.Err(); err != nil {
			r.err = err
			r.done = true
			r.abort()
			r.detach()
			return false
		}
		if !r.windowOpen {
			if err := c.send(wire.MsgFetch, wire.Fetch{MaxRows: uint32(r.fetchRows)}.Marshal()); err != nil {
				r.fatal(err)
				return false
			}
			r.windowOpen = true
		}
		typ, payload, err := c.recv()
		if err != nil {
			r.fatal(err)
			return false
		}
		switch typ {
		case wire.MsgBatch:
			flat, n, width, derr := wire.DecodeBatchPayload(payload, r.flat)
			if derr != nil {
				r.fatal(c.broken(derr))
				return false
			}
			if width != len(r.cols) {
				r.fatal(c.broken(fmt.Errorf("%w: batch width %d for %d columns", wire.ErrMalformed, width, len(r.cols))))
				return false
			}
			if n == 0 {
				continue
			}
			r.flat, r.n, r.width, r.pos = flat, n, width, 1
			return true
		case wire.MsgEnd:
			m, derr := wire.DecodeEnd(payload)
			if derr != nil {
				r.fatal(c.broken(derr))
				return false
			}
			r.windowOpen = false
			if m.More {
				continue
			}
			r.summary, r.hasSummary = m.Summary, true
			r.done = true
			r.detach()
			return false
		case wire.MsgError:
			m, derr := wire.DecodeError(payload)
			if derr != nil {
				r.fatal(c.broken(derr))
				return false
			}
			r.windowOpen = false
			r.err = m.Err()
			r.done = true
			if m.Class == wire.ClassIdle {
				c.broken(r.err)
			}
			r.detach()
			return false
		default:
			r.fatal(c.broken(fmt.Errorf("unexpected frame %#02x in result stream", typ)))
			return false
		}
	}
}

// fatal records a connection-level stream failure.
func (r *Rows) fatal(err error) {
	if r.err == nil {
		r.err = err
	}
	r.done = true
	r.detach()
}

// detach releases the connection for its next request.
func (r *Rows) detach() {
	c := r.c
	c.mu.Lock()
	if c.cur == r {
		c.cur = nil
	}
	c.mu.Unlock()
}

// Row returns the current row's values as a fresh slice.
func (r *Rows) Row() []int64 {
	out := make([]int64, r.width)
	r.CopyRow(out)
	return out
}

// CopyRow copies the current row's values into dst, returning the
// number of values copied; it allocates nothing.
func (r *Rows) CopyRow(dst []int64) int {
	if r.pos == 0 || r.pos > r.n {
		return 0
	}
	row := r.flat[(r.pos-1)*r.width : r.pos*r.width]
	return copy(dst, row)
}

// Col returns the current row's value for the named column, reporting
// false when the name is not a result column.
func (r *Rows) Col(name string) (int64, bool) {
	for i, c := range r.cols {
		if c == name {
			if r.pos == 0 || r.pos > r.n {
				return 0, false
			}
			return r.flat[(r.pos-1)*r.width+i], true
		}
	}
	return 0, false
}

// Err returns the first error encountered. Remote execution errors
// carry their engine class: errors.Is sees through to the same typed
// sentinels as an in-process run.
func (r *Rows) Err() error { return r.err }

// Summary returns the execution's closing statistics, available once
// the stream has been fully drained (Next returned false without
// error).
func (r *Rows) Summary() (wire.ExecSummary, bool) {
	return r.summary, r.hasSummary
}

// Close ends the stream. Mid-stream it sends a Cancel — the server
// cancels the query's context, so parallel workers exit promptly —
// and resynchronises the connection, leaving the Conn usable for the
// next request. Close is idempotent and never fails on a lost
// connection: a stream the server cannot serve anymore is already as
// closed as it gets.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if !r.done {
		r.done = true
		r.abort()
	}
	r.detach()
	return nil
}

// abort cancels the in-flight stream server-side: send Cancel, drain
// the open fetch window (frames already in flight), and consume the
// cancel acknowledgement. Any connection failure along the way just
// marks the connection broken — the stream is over either way.
func (r *Rows) abort() {
	c := r.c
	c.mu.Lock()
	dead := c.closed || c.err != nil
	c.mu.Unlock()
	if dead {
		return
	}
	if err := c.send(wire.MsgCancel, nil); err != nil {
		return
	}
	for r.windowOpen {
		typ, _, err := c.recv()
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgEnd, wire.MsgError:
			r.windowOpen = false
		}
	}
	typ, _, err := c.recv()
	if err != nil {
		return
	}
	if typ != wire.MsgOK {
		c.broken(fmt.Errorf("unexpected frame %#02x for cancel acknowledgement", typ))
	}
}
