// Package client is the SSWP client transport: one connection speaking
// the prepare → bind → execute → fetch lifecycle against an
// internal/server session. It depends only on the wire codec, so both
// the public ssclient package (which re-exports it behind the engine's
// builder surface) and the root package's remote shard driver can share
// one implementation without an import cycle through smoothscan.
//
// A Conn owns one connection and runs one request/response exchange at
// a time; it is not safe for concurrent use — give each goroutine its
// own Conn. Rows.Close and Stmt.Close are always safe to call,
// including after the server has disconnected: they release local state
// first and treat an unreachable server as already-closed rather than
// an error to propagate.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"smoothscan/internal/wire"
)

// Typed sentinels, matchable with errors.Is against any error a remote
// exchange returns. The messages carry the public package's name —
// ssclient re-exports these exact values as its own API.
var (
	// ErrConnLost marks a dead connection: the client can no longer
	// exchange frames and must be re-dialed.
	ErrConnLost = errors.New("ssclient: connection lost")
	// ErrBusy: a new request was issued while a Rows stream is open on
	// this connection. Drain or Close it first.
	ErrBusy = errors.New("ssclient: a result stream is open")
)

// DefaultFetchRows is the per-Fetch row budget Rows uses unless
// Conn.SetFetchRows overrides it.
const DefaultFetchRows = 4096

// handshakeTimeout bounds Dial's Hello/HelloOK exchange.
const handshakeTimeout = 10 * time.Second

// Conn is one protocol session. Not safe for concurrent use.
type Conn struct {
	conn      net.Conn
	mu        sync.Mutex
	err       error // sticky: once the connection failed, everything does
	closed    bool
	cur       *Rows
	fetchRows int
}

// Dial connects and performs the protocol handshake. A server at its
// connection limit answers with an overloaded Error frame, so the
// returned error satisfies errors.Is(err, wire.ErrOverloaded) rather
// than hanging or surfacing a bare I/O failure.
func Dial(addr string) (*Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: conn, fetchRows: DefaultFetchRows}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.Hello{Magic: wire.Magic, Version: wire.Version}.Marshal()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	conn.SetDeadline(time.Time{})
	switch typ {
	case wire.MsgHelloOK:
		if _, err := wire.DecodeHelloOK(payload); err != nil {
			conn.Close()
			return nil, err
		}
		return c, nil
	case wire.MsgError:
		conn.Close()
		m, derr := wire.DecodeError(payload)
		if derr != nil {
			return nil, derr
		}
		return nil, m.Err()
	default:
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected handshake frame %#02x", wire.ErrMalformed, typ)
	}
}

// SetFetchRows overrides the per-Fetch row budget of subsequent Rows
// (n <= 0 restores the default). Smaller windows trade throughput for
// finer cancellation granularity.
func (c *Conn) SetFetchRows(n int) {
	if n <= 0 {
		n = DefaultFetchRows
	}
	c.fetchRows = n
}

// Broken reports whether the connection has failed; a broken
// connection cannot recover and should be re-dialed.
func (c *Conn) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// Close closes the connection. Idempotent, and safe whatever state the
// connection is in.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.cur != nil {
		c.cur.closed = true
		c.cur = nil
	}
	return c.conn.Close()
}

// broken records a connection-fatal error and returns it. Caller holds
// c.mu or has exclusive use.
func (c *Conn) broken(err error) error {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %v", ErrConnLost, err)
		c.conn.Close()
	}
	return c.err
}

// usable rejects requests on a dead, closed or busy connection.
func (c *Conn) usable() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnLost
	}
	if c.err != nil {
		return c.err
	}
	if c.cur != nil && !c.cur.closed {
		return ErrBusy
	}
	return nil
}

// send writes one request frame.
func (c *Conn) send(typ byte, payload []byte) error {
	if err := wire.WriteFrame(c.conn, typ, payload); err != nil {
		return c.broken(err)
	}
	return nil
}

// recv reads one response frame.
func (c *Conn) recv() (byte, []byte, error) {
	typ, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return 0, nil, c.broken(err)
	}
	return typ, payload, nil
}

// roundTrip sends one request and reads its single response frame,
// translating an Error frame into a typed error.
func (c *Conn) roundTrip(reqTyp byte, payload []byte, wantTyp byte) ([]byte, error) {
	if err := c.send(reqTyp, payload); err != nil {
		return nil, err
	}
	typ, resp, err := c.recv()
	if err != nil {
		return nil, err
	}
	switch typ {
	case wantTyp:
		return resp, nil
	case wire.MsgError:
		m, derr := wire.DecodeError(resp)
		if derr != nil {
			return nil, c.broken(derr)
		}
		if m.Class == wire.ClassIdle {
			// A server-initiated close ends the session; no further
			// exchange can succeed on this connection.
			c.broken(m.Err())
		}
		return nil, m.Err()
	default:
		return nil, c.broken(fmt.Errorf("unexpected frame %#02x (wanted %#02x)", typ, wantTyp))
	}
}

// PrepareSpec compiles the query spec into a server-side statement.
// Structural errors (unknown tables or columns, bad argument types)
// surface here, as with DB.Prepare.
func (c *Conn) PrepareSpec(spec wire.QuerySpec) (*Stmt, error) {
	if err := c.usable(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(wire.MsgPrepare, wire.Prepare{Spec: spec}.Marshal(), wire.MsgPrepareOK)
	if err != nil {
		return nil, err
	}
	m, err := wire.DecodePrepareOK(resp)
	if err != nil {
		return nil, c.broken(err)
	}
	return &Stmt{c: c, id: m.StmtID, params: m.Params}, nil
}

// RunSpec executes the query spec ad hoc (literals inline) and opens a
// result stream. Parameterized specs must go through PrepareSpec.
func (c *Conn) RunSpec(ctx context.Context, spec wire.QuerySpec) (*Rows, error) {
	return c.openRows(ctx, wire.MsgQuery, wire.Query{Spec: spec}.Marshal())
}

// ServerStats fetches the server's counter snapshot.
func (c *Conn) ServerStats() (wire.ServerStats, error) {
	if err := c.usable(); err != nil {
		return wire.ServerStats{}, err
	}
	resp, err := c.roundTrip(wire.MsgStats, nil, wire.MsgStatsReply)
	if err != nil {
		return wire.ServerStats{}, err
	}
	st, err := wire.DecodeServerStats(resp)
	if err != nil {
		return wire.ServerStats{}, c.broken(err)
	}
	return st, nil
}

// Catalog fetches the server's table catalog: names, column order,
// indexed columns and row counts.
func (c *Conn) Catalog() ([]wire.TableSpec, error) {
	if err := c.usable(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(wire.MsgCatalog, nil, wire.MsgCatalogReply)
	if err != nil {
		return nil, err
	}
	m, err := wire.DecodeCatalogReply(resp)
	if err != nil {
		return nil, c.broken(err)
	}
	return m.Tables, nil
}

// SetFaultPolicy attaches a deterministic fault-injection policy to
// the server's device (rules apply to every space), or detaches any
// policy when rules is empty. The server must run with fault
// administration enabled; otherwise a bad-request error returns.
func (c *Conn) SetFaultPolicy(seed int64, rules ...wire.FaultRuleSpec) error {
	if err := c.usable(); err != nil {
		return err
	}
	m := wire.FaultCtl{Seed: seed, Rules: rules}
	_, err := c.roundTrip(wire.MsgFaultCtl, m.Marshal(), wire.MsgOK)
	return err
}

// ClearFaultPolicy detaches any fault-injection policy.
func (c *Conn) ClearFaultPolicy() error { return c.SetFaultPolicy(0) }

// ColdCache evicts the server's buffer pool so a following measurement
// window starts from the same cold state an in-process run would — the
// remote analog of DB.ColdCache. It shares the fault administration
// gate; a server without it enabled answers with a bad-request error.
func (c *Conn) ColdCache() error {
	if err := c.usable(); err != nil {
		return err
	}
	_, err := c.roundTrip(wire.MsgColdCache, nil, wire.MsgOK)
	return err
}

// Stmt is a remote prepared statement handle.
type Stmt struct {
	c      *Conn
	id     uint32
	params []string
	closed bool
}

// Params returns the statement's parameter names in first-use order.
func (s *Stmt) Params() []string {
	return append([]string(nil), s.params...)
}

// Run binds the parameters and executes the statement, opening a
// result stream. One stream may be open per Conn at a time.
func (s *Stmt) Run(ctx context.Context, b map[string]int64) (*Rows, error) {
	if s.closed {
		return nil, fmt.Errorf("ssclient: Run on a closed Stmt")
	}
	m := wire.Execute{StmtID: s.id}
	for name, val := range b {
		m.Binds = append(m.Binds, wire.BindKV{Name: name, Val: val})
	}
	return s.c.openRows(ctx, wire.MsgExecute, m.Marshal())
}

// Close drops the server-side statement handle. It is idempotent and
// safe after a server disconnect: a handle that cannot be reached is
// gone by definition, so Close only reports errors from a live,
// misbehaving exchange.
func (s *Stmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.c.usable(); err != nil {
		// Busy, broken or closed: the handle dies with the session;
		// nothing to deliver, nothing to report.
		return nil
	}
	_, err := s.c.roundTrip(wire.MsgCloseStmt, wire.CloseStmt{StmtID: s.id}.Marshal(), wire.MsgOK)
	if errors.Is(err, ErrConnLost) || errors.Is(err, wire.ErrSessionClosed) {
		return nil
	}
	return err
}

// openRows issues an Execute/Query request and materialises the
// ExecOK response into a Rows stream.
func (c *Conn) openRows(ctx context.Context, reqTyp byte, payload []byte) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.usable(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(reqTyp, payload, wire.MsgExecOK)
	if err != nil {
		return nil, err
	}
	m, err := wire.DecodeExecOK(resp)
	if err != nil {
		return nil, c.broken(err)
	}
	r := &Rows{c: c, ctx: ctx, cols: m.Cols, fetchRows: c.fetchRows}
	c.mu.Lock()
	c.cur = r
	c.mu.Unlock()
	return r, nil
}
