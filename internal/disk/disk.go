// Package disk implements a cost-accounting disk simulator.
//
// The Smooth Scan paper (Section V) models operator cost purely in terms
// of the number of random and sequential page I/Os, weighted by the
// device's random/sequential cost ratio (10:1 for the paper's HDD, 2:1
// for its SSD). This package reproduces that model: it stores pages in
// memory, classifies every access as random or sequential based on the
// previous physical position, and charges simulated time accordingly.
//
// A Device hosts any number of Spaces (independent page-addressed
// files, e.g. one per heap file or index). All I/O statistics —
// requests issued, random vs sequential accesses, pages and bytes
// transferred, simulated time — are tracked per device, matching the
// units the paper reports (Table II, Figures 4–11).
package disk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Profile describes the cost characteristics of a simulated device.
// Costs are in abstract cost units; by convention one sequential page
// read costs 1 unit.
type Profile struct {
	// Name identifies the profile in reports ("hdd", "ssd").
	Name string
	// RandCost is the cost of a page read that requires a seek.
	RandCost float64
	// SeqCost is the cost of a page read adjacent to the previous one.
	SeqCost float64
	// PageSize is the page size in bytes.
	PageSize int
}

// HDD mirrors the paper's hard-disk assumption: random accesses are an
// order of magnitude slower than sequential ones (Section V-A).
var HDD = Profile{Name: "hdd", RandCost: 10, SeqCost: 1, PageSize: 8192}

// SSD mirrors the paper's solid-state assumption: random accesses are
// twice as slow as sequential ones (Section VI-E).
var SSD = Profile{Name: "ssd", RandCost: 2, SeqCost: 1, PageSize: 8192}

// Stats aggregates all I/O and CPU accounting for a device.
type Stats struct {
	// Requests counts I/O requests issued. A multi-page run read
	// counts as a single request (this is the "#I/O Req." column of
	// Table II).
	Requests int64
	// RandomAccesses counts page reads charged at RandCost.
	RandomAccesses int64
	// SeqAccesses counts page reads charged at SeqCost (including
	// short-forward-skip reads, see SkippedPages).
	SeqAccesses int64
	// SkippedPages counts pages the head passed over (charged at
	// SeqCost each) during short forward skips: when the next read
	// lies a few pages ahead, streaming through the gap is cheaper
	// than a seek, and the device model picks the cheaper option.
	SkippedPages int64
	// PagesRead counts pages transferred from the device.
	PagesRead int64
	// PagesWritten counts pages transferred to the device.
	PagesWritten int64
	// BytesRead is PagesRead times the page size.
	BytesRead int64
	// IOTime is the simulated time spent on I/O, in cost units.
	IOTime float64
	// CPUTime is the simulated time spent on CPU work, in cost
	// units. Operators charge CPU through Device.ChargeCPU; keeping
	// the two clocks side by side lets the harness reproduce the
	// CPU-vs-I/O-wait breakdown of Figure 4.
	CPUTime float64
	// Faults counts reads failed by an injected fault (transient or
	// permanent). All four fault counters stay zero when no
	// FaultPolicy is attached.
	Faults int64
	// Corruptions counts pages returned with a corrupted payload.
	Corruptions int64
	// LatencySpikes counts latency-spike hits (reads that succeeded
	// but were charged extra simulated time).
	LatencySpikes int64
	// Retries counts retried reads, charged via ChargeRetryBackoff.
	Retries int64
}

// Time returns total simulated time (I/O plus CPU).
func (s Stats) Time() float64 { return s.IOTime + s.CPUTime }

// Sub returns the difference s minus t, field by field. It is used to
// compute per-query deltas from device-lifetime counters.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Requests:       s.Requests - t.Requests,
		RandomAccesses: s.RandomAccesses - t.RandomAccesses,
		SeqAccesses:    s.SeqAccesses - t.SeqAccesses,
		SkippedPages:   s.SkippedPages - t.SkippedPages,
		PagesRead:      s.PagesRead - t.PagesRead,
		PagesWritten:   s.PagesWritten - t.PagesWritten,
		BytesRead:      s.BytesRead - t.BytesRead,
		IOTime:         s.IOTime - t.IOTime,
		CPUTime:        s.CPUTime - t.CPUTime,
		Faults:         s.Faults - t.Faults,
		Corruptions:    s.Corruptions - t.Corruptions,
		LatencySpikes:  s.LatencySpikes - t.LatencySpikes,
		Retries:        s.Retries - t.Retries,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("req=%d rand=%d seq=%d pages=%d io=%.1f cpu=%.1f",
		s.Requests, s.RandomAccesses, s.SeqAccesses, s.PagesRead, s.IOTime, s.CPUTime)
}

// SpaceID identifies a page space (file) on a device.
type SpaceID int32

// ErrOutOfRange is returned when a read addresses a page beyond the end
// of its space.
var ErrOutOfRange = errors.New("disk: page out of range")

// ErrNoSpace is returned when an operation addresses an unknown space.
var ErrNoSpace = errors.New("disk: unknown space")

// ErrInjected is the error returned by reads once failure injection is
// armed; tests use it to verify error propagation through the stack.
var ErrInjected = errors.New("disk: injected I/O failure")

type space struct {
	pages [][]byte
}

// Device is a simulated disk. It is safe for concurrent use: page
// storage and the Stats counters are guarded by one mutex, and Stats
// always returns a consistent snapshot taken under that mutex.
//
// Random-vs-sequential classification is per Channel. The device owns
// a default channel that its own read methods use, so single-threaded
// callers see exactly the classic single-head behaviour; concurrent
// workers open one Channel each (NewChannel) so that interleaved
// requests from independent streams do not destroy each other's
// sequentiality — the model is a device with per-stream read-ahead
// state, which is what makes the random/sequential split meaningful
// under parallel scans.
type Device struct {
	mu      sync.Mutex
	profile Profile
	spaces  []*space
	stats   Stats

	// def is the device's default I/O channel, used by the Device-level
	// read methods.
	def Channel

	// failAfter, when >= 0, counts down on every page read; the read
	// that decrements it to below zero fails with ErrInjected.
	failAfter int64

	// faults is the attached fault policy, nil when injection is off.
	// Atomic so readers above the device (buffer pool, decoders) can
	// check Faulty() without taking the device mutex; the policy's own
	// state is still only touched under mu (in ReadRun).
	faults atomic.Pointer[FaultPolicy]
}

// NewDevice creates an empty device with the given profile.
func NewDevice(p Profile) *Device {
	if p.PageSize <= 0 {
		panic("disk: profile requires positive page size")
	}
	d := &Device{profile: p, failAfter: -1}
	d.def.dev = d
	return d
}

// Channel is an independent I/O stream on a device. Each channel keeps
// its own head position (lastSpace/lastPage), so the random-vs-
// sequential classification of its reads is unaffected by other
// channels' interleaved requests; all counters still accumulate into
// the shared device Stats, and a per-channel contribution snapshot is
// kept on the side.
//
// Channels obtained from NewChannel additionally defer CPU charges:
// ChargeCPU/ChargeCPUN accumulate into a channel-local meter with no
// locking, and FlushCPU folds the pending total into the device
// counters. A parallel scan gives each worker one channel and flushes
// when the worker finishes, so per-tuple CPU accounting never contends
// on the device mutex.
//
// A Channel must be used by one goroutine at a time.
type Channel struct {
	dev *Device

	// Head position for random-vs-sequential classification, guarded
	// by dev.mu (reads touch it together with the shared stats).
	lastSpace SpaceID
	lastPage  int64
	hasPos    bool

	// local is this channel's contribution to the device stats,
	// guarded by dev.mu.
	local Stats

	// deferred selects local CPU accumulation (worker channels) over
	// immediate charging (the device's default channel).
	deferred   bool
	pendingCPU float64
}

// NewChannel opens a fresh I/O stream on the device with no head
// position (its first read is classified random, like any cold stream)
// and deferred CPU accounting.
func (d *Device) NewChannel() *Channel {
	return &Channel{dev: d, deferred: true}
}

// DefaultChannel returns the device's built-in channel: the head
// position the Device-level read methods use, with immediate CPU
// charging. Single-stream callers share it.
func (d *Device) DefaultChannel() *Channel { return &d.def }

// Device returns the device the channel reads from.
func (c *Channel) Device() *Device { return c.dev }

// Profile returns the device's cost profile.
func (d *Device) Profile() Profile { return d.profile }

// PageSize returns the device page size in bytes.
func (d *Device) PageSize() int { return d.profile.PageSize }

// CreateSpace allocates a new, empty page space and returns its ID.
func (d *Device) CreateSpace() SpaceID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.spaces = append(d.spaces, &space{})
	return SpaceID(len(d.spaces) - 1)
}

// SpacePages returns the number of pages currently in the space.
func (d *Device) SpacePages(id SpaceID) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sp, err := d.space(id)
	if err != nil {
		return 0, err
	}
	return int64(len(sp.pages)), nil
}

func (d *Device) space(id SpaceID) (*space, error) {
	if id < 0 || int(id) >= len(d.spaces) {
		return nil, fmt.Errorf("%w: %d", ErrNoSpace, id)
	}
	return d.spaces[id], nil
}

// AppendPage appends a page to the space and returns its page number.
// Writes are charged sequentially; bulk loading is not the object of
// the paper's study, so write cost accounting is deliberately simple.
func (d *Device) AppendPage(id SpaceID, data []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sp, err := d.space(id)
	if err != nil {
		return 0, err
	}
	if len(data) != d.profile.PageSize {
		return 0, fmt.Errorf("disk: append of %d bytes, want page size %d", len(data), d.profile.PageSize)
	}
	page := make([]byte, d.profile.PageSize)
	copy(page, data)
	sp.pages = append(sp.pages, page)
	d.stats.PagesWritten++
	return int64(len(sp.pages) - 1), nil
}

// WritePage overwrites an existing page.
func (d *Device) WritePage(id SpaceID, pageNo int64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	sp, err := d.space(id)
	if err != nil {
		return err
	}
	if pageNo < 0 || pageNo >= int64(len(sp.pages)) {
		return fmt.Errorf("%w: space %d page %d", ErrOutOfRange, id, pageNo)
	}
	if len(data) != d.profile.PageSize {
		return fmt.Errorf("disk: write of %d bytes, want page size %d", len(data), d.profile.PageSize)
	}
	copy(sp.pages[pageNo], data)
	d.stats.PagesWritten++
	return nil
}

// ReadPage reads a single page through the device's default channel.
// It issues one I/O request, charged RandCost unless the page
// physically follows the previously accessed one, in which case
// SeqCost applies.
func (d *Device) ReadPage(id SpaceID, pageNo int64) ([]byte, error) {
	return d.def.ReadPage(id, pageNo)
}

// ReadRun reads n consecutive pages through the device's default
// channel (see Channel.ReadRun).
func (d *Device) ReadRun(id SpaceID, start, n int64) ([][]byte, error) {
	return d.def.ReadRun(id, start, n)
}

// ReadPage reads a single page on this channel; see Device.ReadPage.
func (c *Channel) ReadPage(id SpaceID, pageNo int64) ([]byte, error) {
	pages, err := c.ReadRun(id, pageNo, 1)
	if err != nil {
		return nil, err
	}
	return pages[0], nil
}

// ReadRun reads n consecutive pages starting at start as one I/O
// request: the first page is classified random or sequential against
// the channel's head position and the remaining n-1 pages are
// sequential. This models the flattened, prefetcher-friendly access
// pattern of Smooth Scan's Mode 2 and of Sort Scan.
//
// The returned slices alias device memory and must not be modified.
func (c *Channel) ReadRun(id SpaceID, start, n int64) ([][]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("disk: ReadRun of %d pages", n)
	}
	d := c.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	sp, err := d.space(id)
	if err != nil {
		return nil, err
	}
	if start < 0 || start+n > int64(len(sp.pages)) {
		return nil, fmt.Errorf("%w: space %d pages [%d,%d)", ErrOutOfRange, id, start, start+n)
	}
	if d.failAfter >= 0 {
		if d.failAfter < n {
			d.failAfter = -1
			return nil, ErrInjected
		}
		d.failAfter -= n
	}
	var dec faultDecision
	if fp := d.faults.Load(); fp != nil {
		dec = fp.evaluate(id, start, n)
		if dec.err != nil {
			// A failed read is counted but charged no transfer time:
			// the request never completed.
			var fd Stats
			fd.Faults++
			d.stats.add(fd)
			c.local.add(fd)
			return nil, dec.err
		}
	}

	var delta Stats
	delta.Requests++
	switch gap := start - (c.lastPage + 1); {
	case c.hasPos && c.lastSpace == id && gap == 0:
		// Head is already in position: pure sequential transfer.
		delta.SeqAccesses++
		delta.IOTime += d.profile.SeqCost
	case c.hasPos && c.lastSpace == id && gap > 0 &&
		float64(gap+1)*d.profile.SeqCost < d.profile.RandCost:
		// Short forward skip: streaming through the gap is cheaper
		// than seeking (shortest-positioning-time rule). The paper
		// relies on this when calling page-ordered patterns "nearly
		// sequential" (Sort Scan, Section II).
		delta.SeqAccesses++
		delta.SkippedPages += gap
		delta.IOTime += float64(gap+1) * d.profile.SeqCost
	default:
		delta.RandomAccesses++
		delta.IOTime += d.profile.RandCost
	}
	if n > 1 {
		delta.SeqAccesses += n - 1
		delta.IOTime += float64(n-1) * d.profile.SeqCost
	}
	delta.PagesRead += n
	delta.BytesRead += n * int64(d.profile.PageSize)
	delta.IOTime += dec.extraCost
	delta.LatencySpikes += dec.latency
	delta.Corruptions += int64(len(dec.corrupt))
	c.lastSpace, c.lastPage, c.hasPos = id, start+n-1, true
	d.stats.add(delta)
	c.local.add(delta)

	out := make([][]byte, n)
	for i := int64(0); i < n; i++ {
		out[i] = sp.pages[start+i]
	}
	for _, i := range dec.corrupt {
		// Corruption damages the returned copy, not the stored page;
		// re-reading can return clean data.
		out[i] = corruptCopy(out[i])
	}
	return out, nil
}

// ChargeSpill models an external-sort (or other out-of-core) spill on
// the device's default channel; see Channel.ChargeSpill.
func (d *Device) ChargeSpill(pages int64) { d.def.ChargeSpill(pages) }

// ChargeSpill models an external-sort (or other out-of-core) spill:
// pages are written to scratch space and read back once, both
// sequentially, as two requests. The channel's head position is
// invalidated — after a spill the stream's next data access seeks.
func (c *Channel) ChargeSpill(pages int64) {
	if pages <= 0 {
		return
	}
	d := c.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	var delta Stats
	delta.Requests += 2
	delta.SeqAccesses += 2 * pages
	delta.PagesWritten += pages
	delta.PagesRead += pages
	delta.BytesRead += pages * int64(d.profile.PageSize)
	delta.IOTime += 2 * float64(pages) * d.profile.SeqCost
	c.hasPos = false
	d.stats.add(delta)
	c.local.add(delta)
}

// ChargeCPU adds t cost units to the CPU clock. Operators use it to
// account for per-tuple predicate evaluation, sorting and hashing so
// that the harness can reproduce the paper's CPU/I-O breakdown.
func (d *Device) ChargeCPU(t float64) {
	d.mu.Lock()
	d.stats.CPUTime += t
	d.mu.Unlock()
}

// ChargeCPUN adds t cost units to the CPU clock n times under a single
// lock acquisition. It performs n individual floating-point additions,
// so the accumulated CPUTime is bit-identical to n successive
// ChargeCPU(t) calls — batched operators rely on this to keep the
// simulated cost of a query independent of execution granularity.
func (d *Device) ChargeCPUN(t float64, n int64) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	for i := int64(0); i < n; i++ {
		d.stats.CPUTime += t
	}
	d.mu.Unlock()
}

// ChargeCPU adds t cost units to the CPU clock via this channel: on a
// deferred (worker) channel it accumulates locally with no locking, on
// the device's default channel it charges immediately.
func (c *Channel) ChargeCPU(t float64) {
	if !c.deferred {
		c.dev.ChargeCPU(t)
		return
	}
	c.pendingCPU += t
}

// ChargeCPUN adds t cost units n times via this channel; like
// Device.ChargeCPUN it performs n individual additions, so the
// accumulated total is independent of batching granularity within the
// channel.
func (c *Channel) ChargeCPUN(t float64, n int64) {
	if !c.deferred {
		c.dev.ChargeCPUN(t, n)
		return
	}
	for i := int64(0); i < n; i++ {
		c.pendingCPU += t
	}
}

// FlushCPU folds the channel's pending deferred CPU charges into the
// device counters. A parallel scan calls it once per worker when the
// worker finishes; it is a no-op on non-deferred channels.
func (c *Channel) FlushCPU() {
	if c.pendingCPU == 0 {
		return
	}
	d := c.dev
	d.mu.Lock()
	d.stats.CPUTime += c.pendingCPU
	c.local.CPUTime += c.pendingCPU
	d.mu.Unlock()
	c.pendingCPU = 0
}

// Stats returns this channel's contribution to the device counters,
// including any not-yet-flushed deferred CPU. Reading it while the
// owning worker is still running requires external synchronization for
// the pending-CPU part.
func (c *Channel) Stats() Stats {
	c.dev.mu.Lock()
	st := c.local
	c.dev.mu.Unlock()
	st.CPUTime += c.pendingCPU
	return st
}

// add accumulates t into s field by field.
func (s *Stats) add(t Stats) {
	s.Requests += t.Requests
	s.RandomAccesses += t.RandomAccesses
	s.SeqAccesses += t.SeqAccesses
	s.SkippedPages += t.SkippedPages
	s.PagesRead += t.PagesRead
	s.PagesWritten += t.PagesWritten
	s.BytesRead += t.BytesRead
	s.IOTime += t.IOTime
	s.CPUTime += t.CPUTime
	s.Faults += t.Faults
	s.Corruptions += t.Corruptions
	s.LatencySpikes += t.LatencySpikes
	s.Retries += t.Retries
}

// Stats returns a snapshot of the device counters, taken under the
// device mutex so concurrent readers always observe a consistent state
// (no torn Requests-vs-IOTime pairs).
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters and forgets the default channel's
// head position, so the next access is classified random. The paper
// reports cold runs; the harness calls this (together with buffer-pool
// reset) between queries. Worker channels opened with NewChannel keep
// their positions — they are per-query-ephemeral and start cold anyway.
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.def.hasPos = false
	d.def.local = Stats{}
	d.mu.Unlock()
}

// FailAfter arms failure injection: the read that would transfer page
// number n+1 (counting from the call) fails with ErrInjected, after
// which injection disarms. FailAfter(-1) disarms immediately.
func (d *Device) FailAfter(n int64) {
	d.mu.Lock()
	d.failAfter = n
	d.mu.Unlock()
}
