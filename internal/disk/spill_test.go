package disk

import "testing"

func TestChargeSpillAccounting(t *testing.T) {
	d := NewDevice(Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 64})
	d.ChargeSpill(5)
	s := d.Stats()
	if s.Requests != 2 {
		t.Errorf("Requests = %d, want 2 (write pass + read pass)", s.Requests)
	}
	if s.PagesWritten != 5 || s.PagesRead != 5 {
		t.Errorf("transfer: wrote %d read %d, want 5/5", s.PagesWritten, s.PagesRead)
	}
	if s.SeqAccesses != 10 {
		t.Errorf("SeqAccesses = %d, want 10", s.SeqAccesses)
	}
	if s.IOTime != 10 {
		t.Errorf("IOTime = %v, want 10 (2 passes x 5 pages x seq)", s.IOTime)
	}
	// Zero or negative spills are no-ops.
	d.ChargeSpill(0)
	d.ChargeSpill(-3)
	if got := d.Stats(); got != s {
		t.Errorf("no-op spill changed stats: %+v", got)
	}
}

func TestChargeSpillInvalidatesHeadPosition(t *testing.T) {
	d := NewDevice(Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 64})
	sp := d.CreateSpace()
	for i := 0; i < 4; i++ {
		if _, err := d.AppendPage(sp, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	if _, err := d.ReadPage(sp, 0); err != nil {
		t.Fatal(err)
	}
	d.ChargeSpill(2)
	// After a spill the head is at the scratch area; the "adjacent"
	// page 1 must be charged as a seek.
	before := d.Stats().RandomAccesses
	if _, err := d.ReadPage(sp, 1); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().RandomAccesses; got != before+1 {
		t.Errorf("read after spill classified sequential (rand %d -> %d)", before, got)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Requests: 1, RandomAccesses: 2, SeqAccesses: 3, PagesRead: 5, IOTime: 23, CPUTime: 1.5}
	out := s.String()
	for _, want := range []string{"req=1", "rand=2", "seq=3", "pages=5", "io=23.0", "cpu=1.5"} {
		if !contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSpacePages(t *testing.T) {
	d := NewDevice(Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 64})
	sp := d.CreateSpace()
	if n, err := d.SpacePages(sp); err != nil || n != 0 {
		t.Errorf("empty space: %d, %v", n, err)
	}
	if _, err := d.AppendPage(sp, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if n, err := d.SpacePages(sp); err != nil || n != 1 {
		t.Errorf("after append: %d, %v", n, err)
	}
	if _, err := d.SpacePages(SpaceID(42)); err == nil {
		t.Error("unknown space accepted")
	}
}

func TestDefaultProfiles(t *testing.T) {
	if HDD.RandCost/HDD.SeqCost != 10 {
		t.Errorf("HDD ratio = %v, want 10 (paper Section V-A)", HDD.RandCost/HDD.SeqCost)
	}
	if SSD.RandCost/SSD.SeqCost != 2 {
		t.Errorf("SSD ratio = %v, want 2 (paper Section VI-E)", SSD.RandCost/SSD.SeqCost)
	}
	if HDD.PageSize != 8192 || SSD.PageSize != 8192 {
		t.Error("profiles must use the paper's 8KB pages")
	}
}

func TestNewDevicePanicsOnBadProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDevice accepted zero page size")
		}
	}()
	NewDevice(Profile{})
}
