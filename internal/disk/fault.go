// Fault injection. A FaultPolicy attached to a Device makes reads
// fail, slow down, or return corrupted payloads according to
// deterministic, seed-driven rules. Determinism matters more than
// realism here: a fault decision is a pure hash of (seed, space, page,
// attempt, rule), never a draw from a shared RNG stream, so a fault
// schedule is reproducible and — crucially — independent of goroutine
// interleaving. The chaos tests rely on this to compare a faulty run
// against a fault-free oracle.
package disk

import (
	"errors"
	"fmt"
)

// ErrPermanentFault is the error returned for reads hit by a
// FaultPermanent rule. Permanent faults are attempt-independent:
// retrying the same page fails the same way, which is what drives the
// planner's graceful-degradation fallback (index → smooth → full).
var ErrPermanentFault = errors.New("disk: permanent I/O failure")

// ErrPageCorrupt is returned when a page fails checksum verification.
// The device itself returns the corrupted payload silently (like real
// hardware); the layer that decodes the page detects the damage via
// VerifyChecksum and wraps this sentinel.
var ErrPageCorrupt = errors.New("disk: page checksum mismatch")

// IsTransient reports whether err is a fault that a retry can clear:
// an injected transient read error, or a corrupted payload (re-reading
// re-rolls the corruption decision). Permanent faults are not
// transient.
func IsTransient(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, ErrPageCorrupt)
}

// IsFault reports whether err originates from fault injection or
// integrity verification (transient, permanent, or corruption).
func IsFault(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, ErrPermanentFault) ||
		errors.Is(err, ErrPageCorrupt)
}

// FaultKind classifies what a FaultRule does to a read it hits.
type FaultKind int

const (
	// FaultTransient fails the read with ErrInjected; a retry re-rolls
	// (the decision hash includes the per-page attempt number), so
	// bounded retry recovers unless Rate is 1.
	FaultTransient FaultKind = iota
	// FaultPermanent fails the read with ErrPermanentFault on every
	// attempt (the decision ignores the attempt number).
	FaultPermanent
	// FaultLatency lets the read succeed but charges ExtraCost extra
	// simulated I/O time — a slow sector, not a failure.
	FaultLatency
	// FaultCorrupt lets the read "succeed" but returns a bit-flipped
	// copy of the page, detectable by checksum verification.
	FaultCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultLatency:
		return "latency"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// AnySpace makes a FaultRule match every space on the device.
const AnySpace SpaceID = -1

// FaultRule targets one kind of fault at a page range of one space.
type FaultRule struct {
	// Space selects the space the rule applies to; AnySpace matches all.
	Space SpaceID
	// PageLo and PageHi bound the targeted pages to [PageLo, PageHi);
	// PageHi == 0 means "to the end of the space".
	PageLo, PageHi int64
	// Kind is what happens to a read the rule hits.
	Kind FaultKind
	// Rate is the per-page hit probability in [0, 1]; 1 hits always.
	Rate float64
	// ExtraCost is the simulated I/O time a FaultLatency hit adds.
	ExtraCost float64
}

func (r FaultRule) matches(id SpaceID, page int64) bool {
	if r.Space != AnySpace && r.Space != id {
		return false
	}
	if page < r.PageLo {
		return false
	}
	return r.PageHi == 0 || page < r.PageHi
}

type faultKey struct {
	space SpaceID
	page  int64
}

// FaultPolicy is a set of FaultRules plus the seed that makes their
// decisions deterministic. Attach one with Device.SetFaultPolicy. The
// policy's mutable state (per-page attempt counters) is guarded by the
// owning device's mutex; do not share one policy across devices.
type FaultPolicy struct {
	seed     int64
	rules    []FaultRule
	attempts map[faultKey]uint64
}

// NewFaultPolicy builds a policy from rules, evaluated in order per
// page; the first error-kind rule that hits wins, while latency and
// corruption rules accumulate.
func NewFaultPolicy(seed int64, rules ...FaultRule) *FaultPolicy {
	return &FaultPolicy{
		seed:     seed,
		rules:    append([]FaultRule(nil), rules...),
		attempts: make(map[faultKey]uint64),
	}
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed
// avalanche hash.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// roll returns a uniform pseudo-random value in [0, 1) that is a pure
// function of (seed, rule, space, page, attempt).
func (p *FaultPolicy) roll(rule int, id SpaceID, page int64, attempt uint64) float64 {
	h := mix64(uint64(p.seed) + 0x9e3779b97f4a7c15)
	for _, v := range [...]uint64{uint64(rule), uint64(id), uint64(page), attempt} {
		h = mix64(h ^ (v + 0x9e3779b97f4a7c15))
	}
	return float64(h>>11) / (1 << 53)
}

// faultDecision is the outcome of evaluating a policy over one run
// read.
type faultDecision struct {
	// err, when non-nil, fails the whole run (first hit wins).
	err error
	// extraCost is the summed latency-spike cost to add to IOTime.
	extraCost float64
	// latency counts latency-spike hits.
	latency int64
	// corrupt lists run-relative indices of pages to return corrupted.
	corrupt []int64
}

// evaluate rolls every rule against every page of the run [start,
// start+n). Called under the device mutex. Each evaluated page
// consumes one attempt number, so a retried read (same pages, next
// attempt) re-rolls its transient and corruption decisions while
// permanent decisions stay fixed.
func (p *FaultPolicy) evaluate(id SpaceID, start, n int64) faultDecision {
	var dec faultDecision
	for i := int64(0); i < n; i++ {
		page := start + i
		key := faultKey{space: id, page: page}
		attempt := p.attempts[key]
		p.attempts[key] = attempt + 1
		for ri, rule := range p.rules {
			if !rule.matches(id, page) {
				continue
			}
			switch rule.Kind {
			case FaultTransient:
				if p.roll(ri, id, page, attempt) < rule.Rate {
					dec.err = fmt.Errorf("%w: space %d page %d (attempt %d)",
						ErrInjected, id, page, attempt)
					return dec
				}
			case FaultPermanent:
				// Attempt-independent: the page is dead, not flaky.
				if p.roll(ri, id, page, 0) < rule.Rate {
					dec.err = fmt.Errorf("%w: space %d page %d",
						ErrPermanentFault, id, page)
					return dec
				}
			case FaultLatency:
				if p.roll(ri, id, page, attempt) < rule.Rate {
					dec.extraCost += rule.ExtraCost
					dec.latency++
				}
			case FaultCorrupt:
				if p.roll(ri, id, page, attempt) < rule.Rate {
					dec.corrupt = append(dec.corrupt, i)
				}
			}
		}
	}
	return dec
}

// SetFaultPolicy attaches p to the device (nil detaches). With no
// policy attached every fault path is a single atomic load — reads
// behave exactly as without this file.
func (d *Device) SetFaultPolicy(p *FaultPolicy) {
	d.faults.Store(p)
}

// FaultPolicy returns the attached policy, or nil.
func (d *Device) FaultPolicy() *FaultPolicy {
	return d.faults.Load()
}

// Faulty reports whether a fault policy is attached. Readers that
// decode pages use it to decide whether checksum verification is
// worth the cycles.
func (d *Device) Faulty() bool {
	return d.faults.Load() != nil
}

// ChargeRetryBackoff charges the simulated-clock cost of backing off
// before retry number attempt+1 (zero-based): a linearly growing wait,
// modelled as attempt+1 random-access penalties, plus one Retries
// count. The buffer pool calls this between read attempts so retried
// queries get visibly slower, matching how a wall-clock backoff would
// show up in latency.
func (c *Channel) ChargeRetryBackoff(attempt int) {
	d := c.dev
	d.mu.Lock()
	var delta Stats
	delta.Retries++
	delta.IOTime += d.profile.RandCost * float64(attempt+1)
	d.stats.add(delta)
	c.local.add(delta)
	d.mu.Unlock()
}
