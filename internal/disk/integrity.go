// Page integrity. Every engine page format (heap pages, btree leaf and
// internal pages) reserves header bytes [8, 16) for a 64-bit FNV-1a
// checksum over the rest of the page. Writers stamp it unconditionally
// (StampChecksum); readers verify it only when the device has a fault
// policy attached, so the fault-free hot path pays nothing.
package disk

import "encoding/binary"

const (
	checksumOff = 8
	checksumEnd = 16
)

// PageChecksum computes the FNV-1a checksum of a page, skipping the
// checksum field itself.
func PageChecksum(page []byte) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, b := range page[:checksumOff] {
		h ^= uint64(b)
		h *= prime
	}
	for _, b := range page[checksumEnd:] {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// StampChecksum writes the page's checksum into header bytes [8, 16).
// Page writers call it immediately before handing the page to the
// device.
func StampChecksum(page []byte) {
	binary.LittleEndian.PutUint64(page[checksumOff:checksumEnd], PageChecksum(page))
}

// VerifyChecksum reports whether the page's stored checksum matches
// its content. A false return means the payload was damaged between
// stamping and reading — the caller should surface ErrPageCorrupt.
func VerifyChecksum(page []byte) bool {
	return binary.LittleEndian.Uint64(page[checksumOff:checksumEnd]) == PageChecksum(page)
}

// corruptCopy returns a damaged copy of page: two bytes flipped, one
// in the checksum field and one at the end of the payload, so
// VerifyChecksum always fails on it. The original device page is left
// intact — a re-read can return clean data.
func corruptCopy(page []byte) []byte {
	bad := make([]byte, len(page))
	copy(bad, page)
	bad[checksumOff] ^= 0xA5
	bad[len(bad)-1] ^= 0x5A
	return bad
}
