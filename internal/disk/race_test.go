package disk

import (
	"sync"
	"testing"
)

// TestStatsConcurrentSnapshot hammers a device with concurrent readers,
// CPU chargers and Stats snapshotters. Under -race it proves the
// counters are data-race free; in any mode it checks that the final
// totals are consistent (no lost updates) and that every snapshot is
// internally consistent (IOTime never behind what the observed request
// count implies is impossible, i.e. non-negative and monotone).
func TestStatsConcurrentSnapshot(t *testing.T) {
	dev := NewDevice(HDD)
	sp := dev.CreateSpace()
	page := make([]byte, dev.PageSize())
	const numPages = 64
	for i := 0; i < numPages; i++ {
		if _, err := dev.AppendPage(sp, page); err != nil {
			t.Fatal(err)
		}
	}
	dev.ResetStats()

	const (
		workers   = 8
		perWorker = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ch := dev.NewChannel()
			for i := 0; i < perWorker; i++ {
				if _, err := ch.ReadRun(sp, int64((w*7+i)%numPages), 1); err != nil {
					t.Error(err)
					return
				}
				ch.ChargeCPUN(0.001, 3)
			}
			ch.FlushCPU()
		}(w)
	}
	// Concurrent snapshotters: every observed snapshot must be
	// internally consistent.
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	for r := 0; r < 4; r++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			var lastPages int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := dev.Stats()
				if st.PagesRead < lastPages {
					t.Errorf("PagesRead went backwards: %d -> %d", lastPages, st.PagesRead)
					return
				}
				lastPages = st.PagesRead
				if st.RandomAccesses+st.SeqAccesses > st.PagesRead+st.SkippedPages {
					t.Errorf("torn snapshot: rand=%d seq=%d pages=%d skipped=%d",
						st.RandomAccesses, st.SeqAccesses, st.PagesRead, st.SkippedPages)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	st := dev.Stats()
	if want := int64(workers * perWorker); st.PagesRead != want {
		t.Errorf("PagesRead = %d, want %d (lost updates)", st.PagesRead, want)
	}
	wantCPU := float64(workers*perWorker) * 3 * 0.001
	if diff := st.CPUTime - wantCPU; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("CPUTime = %v, want %v", st.CPUTime, wantCPU)
	}
}

// TestChannelClassificationIndependence verifies that two interleaved
// sequential streams on separate channels are both classified
// sequential — the property that makes the random/sequential split
// meaningful under parallel scans — while the same interleaving on a
// single head would seek on every request.
func TestChannelClassificationIndependence(t *testing.T) {
	dev := NewDevice(HDD)
	sp := dev.CreateSpace()
	page := make([]byte, dev.PageSize())
	const numPages = 128
	for i := 0; i < numPages; i++ {
		if _, err := dev.AppendPage(sp, page); err != nil {
			t.Fatal(err)
		}
	}
	dev.ResetStats()

	a, b := dev.NewChannel(), dev.NewChannel()
	// Stream a walks pages [0,32), stream b walks [64,96), interleaved.
	for i := int64(0); i < 32; i++ {
		if _, err := a.ReadRun(sp, i, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := b.ReadRun(sp, 64+i, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := dev.Stats()
	if st.RandomAccesses != 2 {
		t.Errorf("RandomAccesses = %d, want 2 (one cold seek per stream)", st.RandomAccesses)
	}
	if st.SeqAccesses != 62 {
		t.Errorf("SeqAccesses = %d, want 62", st.SeqAccesses)
	}
	// Per-channel contributions sum to the device totals.
	sa, sb := a.Stats(), b.Stats()
	if sa.PagesRead+sb.PagesRead != st.PagesRead {
		t.Errorf("channel contributions %d+%d != device %d", sa.PagesRead, sb.PagesRead, st.PagesRead)
	}
	if sa.RandomAccesses != 1 || sb.RandomAccesses != 1 {
		t.Errorf("per-channel rand = %d/%d, want 1/1", sa.RandomAccesses, sb.RandomAccesses)
	}

	// The same interleaving through the single default head: every
	// request is a seek.
	dev.ResetStats()
	for i := int64(0); i < 32; i++ {
		if _, err := dev.ReadPage(sp, i); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.ReadPage(sp, 64+i); err != nil {
			t.Fatal(err)
		}
	}
	if st := dev.Stats(); st.RandomAccesses != 64 {
		t.Errorf("single-head interleaving: RandomAccesses = %d, want 64", st.RandomAccesses)
	}
}

// TestDeferredCPUFlush checks deferred channels charge nothing until
// FlushCPU and exactly their pending total at flush.
func TestDeferredCPUFlush(t *testing.T) {
	dev := NewDevice(HDD)
	ch := dev.NewChannel()
	ch.ChargeCPU(0.5)
	ch.ChargeCPUN(0.25, 2)
	if got := dev.Stats().CPUTime; got != 0 {
		t.Errorf("device CPUTime before flush = %v, want 0", got)
	}
	if got := ch.Stats().CPUTime; got != 1.0 {
		t.Errorf("channel pending CPUTime = %v, want 1.0", got)
	}
	ch.FlushCPU()
	if got := dev.Stats().CPUTime; got != 1.0 {
		t.Errorf("device CPUTime after flush = %v, want 1.0", got)
	}
	ch.FlushCPU() // idempotent
	if got := dev.Stats().CPUTime; got != 1.0 {
		t.Errorf("double flush changed CPUTime: %v", got)
	}
}
