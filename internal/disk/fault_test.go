package disk

import (
	"bytes"
	"errors"
	"testing"
)

// faultTestDevice builds a device with one 32-page space, every page
// stamped with a valid checksum so corruption tests can verify.
func faultTestDevice(t *testing.T) (*Device, SpaceID) {
	t.Helper()
	d := newTestDevice(t)
	sp := d.CreateSpace()
	for i := 0; i < 32; i++ {
		page := fill(byte(i), 64)
		StampChecksum(page)
		if _, err := d.AppendPage(sp, page); err != nil {
			t.Fatalf("AppendPage: %v", err)
		}
	}
	return d, sp
}

func TestFaultPolicyDeterministic(t *testing.T) {
	// Two devices with identical policies must fail on exactly the same
	// pages: decisions are pure hashes, not RNG-stream draws.
	var errsA, errsB []int
	for run := 0; run < 2; run++ {
		d, sp := faultTestDevice(t)
		d.SetFaultPolicy(NewFaultPolicy(42, FaultRule{
			Space: sp, Kind: FaultTransient, Rate: 0.3,
		}))
		for p := int64(0); p < 32; p++ {
			_, err := d.ReadPage(sp, p)
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("page %d: error %v, want ErrInjected", p, err)
				}
				if run == 0 {
					errsA = append(errsA, int(p))
				} else {
					errsB = append(errsB, int(p))
				}
			}
		}
	}
	if len(errsA) == 0 || len(errsA) == 32 {
		t.Fatalf("rate 0.3 over 32 pages hit %d times; want a strict subset", len(errsA))
	}
	if len(errsA) != len(errsB) {
		t.Fatalf("runs disagree: %v vs %v", errsA, errsB)
	}
	for i := range errsA {
		if errsA[i] != errsB[i] {
			t.Fatalf("runs disagree at %d: %v vs %v", i, errsA, errsB)
		}
	}
}

func TestFaultTransientReRollsPermanentDoesNot(t *testing.T) {
	d, sp := faultTestDevice(t)
	d.SetFaultPolicy(NewFaultPolicy(7, FaultRule{
		Space: sp, PageLo: 0, PageHi: 1, Kind: FaultTransient, Rate: 0.5,
	}))
	// A 0.5 transient rule re-rolls per attempt: over many attempts the
	// page must both fail and succeed at least once.
	var failed, succeeded bool
	for i := 0; i < 64; i++ {
		if _, err := d.ReadPage(sp, 0); err != nil {
			failed = true
		} else {
			succeeded = true
		}
	}
	if !failed || !succeeded {
		t.Fatalf("transient rate 0.5: failed=%v succeeded=%v; want both", failed, succeeded)
	}

	d2, sp2 := faultTestDevice(t)
	d2.SetFaultPolicy(NewFaultPolicy(7, FaultRule{
		Space: sp2, Kind: FaultPermanent, Rate: 0.5,
	}))
	// Permanent decisions ignore the attempt number: every retry of a
	// dead page fails, every retry of a healthy page succeeds.
	for p := int64(0); p < 32; p++ {
		_, first := d2.ReadPage(sp2, p)
		for i := 0; i < 4; i++ {
			_, again := d2.ReadPage(sp2, p)
			if (first == nil) != (again == nil) {
				t.Fatalf("page %d flipped between attempts: %v then %v", p, first, again)
			}
		}
		if first != nil && !errors.Is(first, ErrPermanentFault) {
			t.Fatalf("page %d: %v, want ErrPermanentFault", p, first)
		}
	}
}

func TestFaultCountersAndLatency(t *testing.T) {
	d, sp := faultTestDevice(t)
	d.SetFaultPolicy(NewFaultPolicy(1, FaultRule{
		Space: sp, Kind: FaultLatency, Rate: 1, ExtraCost: 100,
	}))
	base := d.Stats()
	if _, err := d.ReadRun(sp, 0, 4); err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	delta := d.Stats().Sub(base)
	if delta.LatencySpikes != 4 {
		t.Fatalf("LatencySpikes = %d, want 4", delta.LatencySpikes)
	}
	if want := 4 * 100.0; delta.IOTime < want {
		t.Fatalf("IOTime = %v, want at least %v of spike cost", delta.IOTime, want)
	}
	if delta.Faults != 0 || delta.Corruptions != 0 || delta.Retries != 0 {
		t.Fatalf("unexpected counters: %+v", delta)
	}

	d.SetFaultPolicy(NewFaultPolicy(1, FaultRule{
		Space: sp, Kind: FaultTransient, Rate: 1,
	}))
	base = d.Stats()
	if _, err := d.ReadPage(sp, 0); err == nil {
		t.Fatal("rate-1 transient rule did not fail the read")
	}
	delta = d.Stats().Sub(base)
	if delta.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", delta.Faults)
	}
	if delta.PagesRead != 0 {
		t.Fatalf("failed read transferred %d pages", delta.PagesRead)
	}
}

func TestFaultCorruptionDetectedAndDeviceIntact(t *testing.T) {
	d, sp := faultTestDevice(t)
	intact, err := d.ReadPage(sp, 3)
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]byte(nil), intact...)

	d.SetFaultPolicy(NewFaultPolicy(9, FaultRule{
		Space: sp, PageLo: 3, PageHi: 4, Kind: FaultCorrupt, Rate: 1,
	}))
	page, err := d.ReadPage(sp, 3)
	if err != nil {
		t.Fatalf("corrupted read errored: %v", err)
	}
	if VerifyChecksum(page) {
		t.Fatal("corrupted page passed checksum verification")
	}
	if bytes.Equal(page, keep) {
		t.Fatal("corrupt rule returned unmodified bytes")
	}
	base := d.Stats()
	if _, err := d.ReadPage(sp, 3); err != nil {
		t.Fatal(err)
	}
	if c := d.Stats().Sub(base).Corruptions; c != 1 {
		t.Fatalf("Corruptions delta = %d, want 1", c)
	}

	// The damage is applied to a copy: detaching the policy shows the
	// device's own bytes were never touched.
	d.SetFaultPolicy(nil)
	page, err = d.ReadPage(sp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, keep) {
		t.Fatal("device page mutated by corruption injection")
	}
	if !VerifyChecksum(page) {
		t.Fatal("intact page failed checksum verification")
	}
}

func TestChecksumRoundTripAndTamperDetection(t *testing.T) {
	page := fill(0xCD, 64)
	StampChecksum(page)
	if !VerifyChecksum(page) {
		t.Fatal("freshly stamped page failed verification")
	}
	// Flipping any byte outside the checksum field must be detected.
	for _, i := range []int{0, 7, 16, 40, 63} {
		page[i] ^= 1
		if VerifyChecksum(page) {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		page[i] ^= 1
	}
}

func TestFaultRuleScoping(t *testing.T) {
	d, sp := faultTestDevice(t)
	other := d.CreateSpace()
	page := fill(0xEE, 64)
	StampChecksum(page)
	if _, err := d.AppendPage(other, page); err != nil {
		t.Fatal(err)
	}
	d.SetFaultPolicy(NewFaultPolicy(3, FaultRule{
		Space: sp, PageLo: 10, PageHi: 20, Kind: FaultPermanent, Rate: 1,
	}))
	for p := int64(0); p < 32; p++ {
		_, err := d.ReadPage(sp, p)
		inRange := p >= 10 && p < 20
		if inRange && err == nil {
			t.Fatalf("page %d inside rule range read cleanly", p)
		}
		if !inRange && err != nil {
			t.Fatalf("page %d outside rule range failed: %v", p, err)
		}
	}
	if _, err := d.ReadPage(other, 0); err != nil {
		t.Fatalf("other space hit by space-scoped rule: %v", err)
	}

	d.SetFaultPolicy(NewFaultPolicy(3, FaultRule{
		Space: AnySpace, Kind: FaultPermanent, Rate: 1,
	}))
	if _, err := d.ReadPage(other, 0); err == nil {
		t.Fatal("AnySpace rule missed a space")
	}
}

func TestFaultErrorClassification(t *testing.T) {
	cases := []struct {
		err       error
		transient bool
		fault     bool
	}{
		{ErrInjected, true, true},
		{ErrPageCorrupt, true, true},
		{ErrPermanentFault, false, true},
		{ErrOutOfRange, false, false},
		{nil, false, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.transient)
		}
		if got := IsFault(c.err); got != c.fault {
			t.Errorf("IsFault(%v) = %v, want %v", c.err, got, c.fault)
		}
	}
}
