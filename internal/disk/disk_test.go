package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	return NewDevice(Profile{Name: "test", RandCost: 10, SeqCost: 1, PageSize: 64})
}

func fill(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestAppendAndReadRoundTrip(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	for i := 0; i < 10; i++ {
		no, err := d.AppendPage(sp, fill(byte(i), 64))
		if err != nil {
			t.Fatalf("AppendPage: %v", err)
		}
		if no != int64(i) {
			t.Fatalf("AppendPage returned page %d, want %d", no, i)
		}
	}
	for i := 0; i < 10; i++ {
		got, err := d.ReadPage(sp, int64(i))
		if err != nil {
			t.Fatalf("ReadPage(%d): %v", i, err)
		}
		if !bytes.Equal(got, fill(byte(i), 64)) {
			t.Errorf("page %d content mismatch", i)
		}
	}
}

func TestWritePage(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	if _, err := d.AppendPage(sp, fill(1, 64)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(sp, 0, fill(9, 64)); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got, err := d.ReadPage(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Errorf("read back %d, want 9", got[0])
	}
}

func TestWrongPageSizeRejected(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	if _, err := d.AppendPage(sp, make([]byte, 63)); err == nil {
		t.Error("AppendPage accepted short page")
	}
	if _, err := d.AppendPage(sp, fill(0, 64)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(sp, 0, make([]byte, 65)); err == nil {
		t.Error("WritePage accepted long page")
	}
}

func TestOutOfRangeAndUnknownSpace(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	if _, err := d.ReadPage(sp, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ReadPage empty space: err=%v, want ErrOutOfRange", err)
	}
	if _, err := d.ReadPage(SpaceID(99), 0); !errors.Is(err, ErrNoSpace) {
		t.Errorf("ReadPage unknown space: err=%v, want ErrNoSpace", err)
	}
	if _, err := d.AppendPage(SpaceID(99), fill(0, 64)); !errors.Is(err, ErrNoSpace) {
		t.Errorf("AppendPage unknown space: err=%v, want ErrNoSpace", err)
	}
	if err := d.WritePage(sp, 5, fill(0, 64)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("WritePage out of range: err=%v, want ErrOutOfRange", err)
	}
}

func TestSequentialClassification(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	for i := 0; i < 8; i++ {
		if _, err := d.AppendPage(sp, fill(byte(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()

	// First access is always random.
	if _, err := d.ReadPage(sp, 0); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.RandomAccesses != 1 || s.SeqAccesses != 0 {
		t.Fatalf("after first read: %+v", s)
	}
	// Adjacent next page: sequential.
	if _, err := d.ReadPage(sp, 1); err != nil {
		t.Fatal(err)
	}
	s = d.Stats()
	if s.RandomAccesses != 1 || s.SeqAccesses != 1 {
		t.Fatalf("after adjacent read: %+v", s)
	}
	// Short forward skip (gap 3, read-through cost 4 < seek cost 10):
	// classified sequential with 3 skipped pages.
	if _, err := d.ReadPage(sp, 5); err != nil {
		t.Fatal(err)
	}
	s = d.Stats()
	if s.RandomAccesses != 1 || s.SeqAccesses != 2 || s.SkippedPages != 3 {
		t.Fatalf("after short skip: %+v", s)
	}
	// Re-reading the same page is a seek backwards: random.
	if _, err := d.ReadPage(sp, 5); err != nil {
		t.Fatal(err)
	}
	if s = d.Stats(); s.RandomAccesses != 2 {
		t.Fatalf("after repeat read: %+v", s)
	}
	if want := 2*10.0 + 1 + 4; s.IOTime != want {
		t.Errorf("IOTime = %v, want %v", s.IOTime, want)
	}
}

func TestLongForwardJumpIsRandom(t *testing.T) {
	d := NewDevice(Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 64})
	sp := d.CreateSpace()
	for i := 0; i < 32; i++ {
		if _, err := d.AppendPage(sp, fill(byte(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	if _, err := d.ReadPage(sp, 0); err != nil {
		t.Fatal(err)
	}
	// Gap 19: read-through would cost 20 > 10, so the device seeks.
	if _, err := d.ReadPage(sp, 20); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.RandomAccesses != 2 || s.SkippedPages != 0 {
		t.Errorf("long jump misclassified: %+v", s)
	}
}

func TestSequentialAcrossSpacesIsRandom(t *testing.T) {
	d := newTestDevice(t)
	a, b := d.CreateSpace(), d.CreateSpace()
	if _, err := d.AppendPage(a, fill(0, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendPage(a, fill(1, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendPage(b, fill(2, 64)); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	if _, err := d.ReadPage(a, 0); err != nil {
		t.Fatal(err)
	}
	// Page 0 of a different space must not be treated as adjacent.
	if _, err := d.ReadPage(b, 0); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.RandomAccesses != 2 {
		t.Errorf("cross-space access classified sequential: %+v", s)
	}
}

func TestReadRunAccounting(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	for i := 0; i < 16; i++ {
		if _, err := d.AppendPage(sp, fill(byte(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()

	pages, err := d.ReadRun(sp, 4, 4)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if len(pages) != 4 || pages[0][0] != 4 || pages[3][0] != 7 {
		t.Fatalf("ReadRun returned wrong pages")
	}
	s := d.Stats()
	if s.Requests != 1 {
		t.Errorf("Requests = %d, want 1 (a run is one request)", s.Requests)
	}
	if s.RandomAccesses != 1 || s.SeqAccesses != 3 {
		t.Errorf("run accounting: %+v", s)
	}
	if s.PagesRead != 4 || s.BytesRead != 4*64 {
		t.Errorf("transfer accounting: %+v", s)
	}
	if want := 10 + 3.0; s.IOTime != want {
		t.Errorf("IOTime = %v, want %v", s.IOTime, want)
	}

	// A run starting right after the previous run is fully sequential.
	if _, err := d.ReadRun(sp, 8, 2); err != nil {
		t.Fatal(err)
	}
	s = d.Stats()
	if s.RandomAccesses != 1 || s.SeqAccesses != 5 {
		t.Errorf("adjacent run accounting: %+v", s)
	}
}

func TestReadRunBounds(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	if _, err := d.AppendPage(sp, fill(0, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadRun(sp, 0, 2); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("over-long run: err = %v, want ErrOutOfRange", err)
	}
	if _, err := d.ReadRun(sp, -1, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative start: err = %v, want ErrOutOfRange", err)
	}
	if _, err := d.ReadRun(sp, 0, 0); err == nil {
		t.Error("zero-length run accepted")
	}
}

func TestChargeCPUAndTime(t *testing.T) {
	d := newTestDevice(t)
	d.ChargeCPU(2.5)
	d.ChargeCPU(1.5)
	s := d.Stats()
	if s.CPUTime != 4 {
		t.Errorf("CPUTime = %v, want 4", s.CPUTime)
	}
	if s.Time() != 4 {
		t.Errorf("Time() = %v, want 4", s.Time())
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Requests: 10, RandomAccesses: 4, SeqAccesses: 6, PagesRead: 10, BytesRead: 640, IOTime: 46, CPUTime: 2}
	b := Stats{Requests: 4, RandomAccesses: 1, SeqAccesses: 3, PagesRead: 4, BytesRead: 256, IOTime: 13, CPUTime: 1}
	got := a.Sub(b)
	want := Stats{Requests: 6, RandomAccesses: 3, SeqAccesses: 3, PagesRead: 6, BytesRead: 384, IOTime: 33, CPUTime: 1}
	if got != want {
		t.Errorf("Sub = %+v, want %+v", got, want)
	}
}

func TestResetStatsForgetsPosition(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	for i := 0; i < 2; i++ {
		if _, err := d.AppendPage(sp, fill(byte(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ReadPage(sp, 0); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	// Without position reset, page 1 would be sequential.
	if _, err := d.ReadPage(sp, 1); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.RandomAccesses != 1 || s.SeqAccesses != 0 {
		t.Errorf("cold read after reset misclassified: %+v", s)
	}
}

func TestFailureInjection(t *testing.T) {
	d := newTestDevice(t)
	sp := d.CreateSpace()
	for i := 0; i < 4; i++ {
		if _, err := d.AppendPage(sp, fill(byte(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	d.FailAfter(2)
	if _, err := d.ReadRun(sp, 0, 2); err != nil {
		t.Fatalf("read within budget failed: %v", err)
	}
	if _, err := d.ReadPage(sp, 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Injection disarms after firing.
	if _, err := d.ReadPage(sp, 2); err != nil {
		t.Fatalf("read after injection disarmed failed: %v", err)
	}
	d.FailAfter(0)
	if _, err := d.ReadPage(sp, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("FailAfter(0): err = %v, want ErrInjected", err)
	}
}

// Property: for any access sequence, RandomAccesses+SeqAccesses equals
// PagesRead, IOTime equals the weighted sum, and BytesRead equals
// PagesRead*PageSize.
func TestAccountingInvariants(t *testing.T) {
	const numPages = 32
	f := func(seed []uint8) bool {
		d := newTestDevice(t)
		sp := d.CreateSpace()
		for i := 0; i < numPages; i++ {
			if _, err := d.AppendPage(sp, fill(byte(i), 64)); err != nil {
				return false
			}
		}
		d.ResetStats()
		for _, b := range seed {
			start := int64(b) % numPages
			n := int64(b)%4 + 1
			if start+n > numPages {
				n = numPages - start
			}
			if _, err := d.ReadRun(sp, start, n); err != nil {
				return false
			}
		}
		s := d.Stats()
		if s.RandomAccesses+s.SeqAccesses != s.PagesRead {
			return false
		}
		if s.BytesRead != s.PagesRead*64 {
			return false
		}
		want := float64(s.RandomAccesses)*10 + float64(s.SeqAccesses+s.SkippedPages)*1
		return s.IOTime == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
