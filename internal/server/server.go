// Package server is the serving side of the smoothscan wire protocol:
// it owns one embedded smoothscan.DB and exposes it to remote clients
// (package ssclient) over TCP. Each accepted connection becomes a
// session with its own prepared-statement table; queries from every
// session funnel through one shared admission gate, so a saturated
// server sheds load with a typed overloaded reject instead of queueing
// without bound.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"smoothscan"
	"smoothscan/internal/wire"
)

// Config bounds a Server. Zero values select the defaults; a negative
// limit disables that limit.
type Config struct {
	// MaxConns caps concurrently open sessions; a connection beyond it
	// is rejected at accept time with an overloaded Error frame, before
	// any handshake (default 64).
	MaxConns int
	// MaxStmtsPerSession caps each session's statement table; preparing
	// past it evicts the least recently executed statement, whose later
	// Execute fails with ErrStmtEvicted (default 32).
	MaxStmtsPerSession int
	// MaxInFlight caps queries executing across all sessions (default
	// 16). An Execute past the cap queues up to QueueDeadline, then is
	// rejected with an overloaded Error frame — backpressure with a
	// bounded wait, never an unbounded hang.
	MaxInFlight int
	// QueueDeadline is how long an Execute may wait for an admission
	// slot (default 2s).
	QueueDeadline time.Duration
	// IdleTimeout closes sessions that stay silent longer than this;
	// zero disables the idle reaper.
	IdleTimeout time.Duration
	// FetchRows is the row budget a Fetch with MaxRows == 0 gets
	// (default 4096).
	FetchRows int
	// FaultAdmin allows clients to attach fault-injection policies via
	// FaultCtl frames — the remote chaos harness. Off by default: fault
	// injection is an operator decision, not a client right.
	FaultAdmin bool
	// Logf, when set, receives one line per session-level event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.MaxConns == 0 {
		c.MaxConns = 64
	}
	if c.MaxStmtsPerSession == 0 {
		c.MaxStmtsPerSession = 32
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.QueueDeadline == 0 {
		c.QueueDeadline = 2 * time.Second
	}
	if c.FetchRows <= 0 {
		c.FetchRows = 4096
	}
}

// counters is the server's atomic counter block; Stats snapshots it.
type counters struct {
	sessionsOpen    atomic.Int64
	sessionsTotal   atomic.Int64
	connsRejected   atomic.Int64
	stmtsPrepared   atomic.Int64
	stmtsEvicted    atomic.Int64
	stmtsClosed     atomic.Int64
	queriesServed   atomic.Int64
	queriesFailed   atomic.Int64
	queriesRejected atomic.Int64
	cancels         atomic.Int64
	idleCloses      atomic.Int64
	rowsSent        atomic.Int64
	batchesSent     atomic.Int64
}

// Server serves one DB to remote sessions.
type Server struct {
	db  *smoothscan.DB
	cfg Config
	ctr counters

	// sem is the admission gate: one token per in-flight query.
	sem chan struct{}

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	closed   bool

	wg sync.WaitGroup
}

// New builds a Server over db. The DB stays usable in-process; remote
// sessions are just more readers of it.
func New(db *smoothscan.DB, cfg Config) *Server {
	cfg.fill()
	s := &Server{db: db, cfg: cfg, sessions: make(map[*session]struct{})}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s
}

// Start listens on addr ("host:port", ":0" for an ephemeral port) and
// accepts sessions in the background until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every session (in-flight queries are
// cancelled through their contexts) and waits for all of them to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	for ss := range s.sessions {
		ss.conn.Close()
	}
	s.mu.Unlock()
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.cfg.MaxConns > 0 && s.ctr.sessionsOpen.Load() >= int64(s.cfg.MaxConns) {
			// Reject at the handshake: the client's Dial reads this
			// frame instead of a HelloOK and surfaces ErrOverloaded —
			// load shedding must never look like a hang. Off the accept
			// loop: the client's Hello must be drained first (closing
			// before it lands turns the reject into a write error on
			// the client), and reading it must not stall new accepts.
			s.ctr.connsRejected.Add(1)
			s.wg.Add(1)
			go func(conn net.Conn) {
				defer s.wg.Done()
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(5 * time.Second))
				_, _, _ = wire.ReadFrame(conn)
				msg := wire.ErrorMsg{Class: wire.ClassOverloaded,
					Msg: fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns)}
				_ = wire.WriteFrame(conn, wire.MsgError, msg.Marshal())
			}(conn)
			continue
		}
		ss := newSession(s, conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.sessions[ss] = struct{}{}
		s.mu.Unlock()
		s.ctr.sessionsOpen.Add(1)
		s.ctr.sessionsTotal.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ss.run()
			s.mu.Lock()
			delete(s.sessions, ss)
			s.mu.Unlock()
			s.ctr.sessionsOpen.Add(-1)
		}()
	}
}

// admit takes an in-flight query token, waiting up to QueueDeadline.
// It returns wire.ErrOverloaded when the gate stays full past the
// deadline, and a release func on success.
func (s *Server) admit() (func(), error) {
	if s.sem == nil {
		return func() {}, nil
	}
	select {
	case s.sem <- struct{}{}:
	default:
		t := time.NewTimer(s.cfg.QueueDeadline)
		defer t.Stop()
		select {
		case s.sem <- struct{}{}:
		case <-t.C:
			s.ctr.queriesRejected.Add(1)
			return nil, fmt.Errorf("%w: %d queries in flight past the %s queue deadline",
				wire.ErrOverloaded, s.cfg.MaxInFlight, s.cfg.QueueDeadline)
		case <-s.ctx.Done():
			return nil, wire.ErrSessionClosed
		}
	}
	var once sync.Once
	return func() { once.Do(func() { <-s.sem }) }, nil
}

// Stats snapshots the server's counters plus the engine-side numbers a
// remote harness cannot read directly (simulated device time, plan
// cache traffic).
func (s *Server) Stats() wire.ServerStats {
	pc := s.db.PlanCacheStats()
	rc := s.db.ResultCacheStats()
	return wire.ServerStats{
		SessionsOpen:    s.ctr.sessionsOpen.Load(),
		SessionsTotal:   s.ctr.sessionsTotal.Load(),
		ConnsRejected:   s.ctr.connsRejected.Load(),
		StmtsPrepared:   s.ctr.stmtsPrepared.Load(),
		StmtsEvicted:    s.ctr.stmtsEvicted.Load(),
		StmtsClosed:     s.ctr.stmtsClosed.Load(),
		QueriesServed:   s.ctr.queriesServed.Load(),
		QueriesFailed:   s.ctr.queriesFailed.Load(),
		QueriesRejected: s.ctr.queriesRejected.Load(),
		Cancels:         s.ctr.cancels.Load(),
		IdleCloses:      s.ctr.idleCloses.Load(),
		RowsSent:        s.ctr.rowsSent.Load(),
		BatchesSent:     s.ctr.batchesSent.Load(),
		DeviceSimCost:   s.db.Stats().Time(),
		PlanCacheHits:   int64(pc.Hits),
		PlanCacheMisses: int64(pc.Misses),

		ResultCacheHits:        rc.Hits,
		ResultCacheMisses:      rc.Misses,
		ResultCacheInvalidated: rc.InvalidatedStale,
		ResultCacheEntries:     int64(rc.Entries),
		ResultCacheBytes:       rc.Bytes,
	}
}

// classify maps a server-side error to its wire class: the facade's
// structural sentinels first (unknown tables and columns are the
// client's mistake, not the engine's fault), then the engine taxonomy
// via wire.Classify.
func classify(err error) byte {
	switch {
	case errors.Is(err, smoothscan.ErrNoTable),
		errors.Is(err, smoothscan.ErrUnknownColumn),
		errors.Is(err, smoothscan.ErrNoIndex):
		return wire.ClassNotFound
	case errors.Is(err, smoothscan.ErrArgType),
		errors.Is(err, smoothscan.ErrNotSelected),
		errors.Is(err, smoothscan.ErrUnboundParam),
		errors.Is(err, smoothscan.ErrUnknownParam),
		errors.Is(err, wire.ErrMalformed):
		return wire.ClassBadRequest
	default:
		return wire.Classify(err)
	}
}
