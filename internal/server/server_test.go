package server_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"smoothscan"
	"smoothscan/internal/loadgen"
	"smoothscan/internal/server"
	"smoothscan/ssclient"
)

// startServer boots a server over a small loadgen table on an
// ephemeral port and tears it down with the test.
func startServer(t *testing.T, cfg server.Config) (addr string, db *smoothscan.DB) {
	t.Helper()
	db, err := loadgen.BuildDB(4000, 2000, 1, smoothscan.Options{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String(), db
}

func dial(t *testing.T, addr string) *ssclient.Client {
	t.Helper()
	c, err := ssclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// rangeQuery composes the standard probe query.
func rangeQuery(c *ssclient.Client, lo, hi any) *ssclient.Query {
	return c.Query(loadgen.Table).Where(loadgen.IndexedCol, ssclient.Between(lo, hi))
}

func drain(t *testing.T, rows *ssclient.Rows) int64 {
	t.Helper()
	var n int64
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return n
}

// TestStmtTableEviction prepares past the per-session limit and
// checks the least recently executed statement is the one evicted,
// failing its Execute with the typed ErrStmtEvicted (not a generic
// not-found).
func TestStmtTableEviction(t *testing.T) {
	addr, _ := startServer(t, server.Config{MaxStmtsPerSession: 2})
	c := dial(t, addr)

	prep := func() *ssclient.Stmt {
		s, err := c.Prepare(rangeQuery(c, ssclient.Param("lo"), ssclient.Param("hi")).Limit(ssclient.Param("n")))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := prep(), prep()
	// Touch s1 so s2 is the least recently executed when s3 arrives.
	rows, err := s1.Run(context.Background(), smoothscan.Bind{"lo": 0, "hi": 50, "n": 5})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, rows)
	s3 := prep()

	if _, err := s2.Run(context.Background(), smoothscan.Bind{"lo": 0, "hi": 50, "n": 5}); !errors.Is(err, ssclient.ErrStmtEvicted) {
		t.Fatalf("evicted stmt Run: %v, want ErrStmtEvicted", err)
	}
	// Survivors keep working.
	for _, s := range []*ssclient.Stmt{s1, s3} {
		rows, err := s.Run(context.Background(), smoothscan.Bind{"lo": 0, "hi": 50, "n": 5})
		if err != nil {
			t.Fatal(err)
		}
		drain(t, rows)
	}
}

// TestStmtDoubleClose closes a statement twice (both nil) and checks
// a closed handle's Execute is a typed not-found, while an unknown
// handle is never confused with an evicted one.
func TestStmtDoubleClose(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)
	s, err := c.Prepare(rangeQuery(c, ssclient.Param("lo"), ssclient.Param("hi")))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Run(context.Background(), smoothscan.Bind{"lo": 0, "hi": 10}); err == nil {
		t.Fatal("Run on a closed Stmt succeeded")
	}
}

// TestIdleTimeout lets a session go silent past the server's idle
// deadline and checks the server-initiated close surfaces as the
// typed ErrSessionClosed on the client's next request.
func TestIdleTimeout(t *testing.T) {
	addr, _ := startServer(t, server.Config{IdleTimeout: 150 * time.Millisecond})
	c := dial(t, addr)

	// An active session stays alive across requests.
	rows, err := rangeQuery(c, 0, 100).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	drain(t, rows)

	time.Sleep(400 * time.Millisecond)
	_, err = rangeQuery(c, 0, 100).Run(context.Background())
	if err == nil {
		t.Fatal("request after idle close succeeded")
	}
	if !errors.Is(err, ssclient.ErrSessionClosed) && !errors.Is(err, ssclient.ErrConnLost) {
		t.Fatalf("request after idle close: %v, want ErrSessionClosed or ErrConnLost", err)
	}
	if !c.Broken() {
		t.Fatal("client not marked broken after server-initiated close")
	}
}

// TestCancelMidStream opens a large parallel query, abandons it
// mid-stream, and checks (a) the connection resynchronises for the
// next query and (b) no server goroutines leak — the client Cancel
// must reach the in-flight query's context so parallel scan workers
// exit rather than block on a consumer that will never come.
func TestCancelMidStream(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)
	c.SetFetchRows(64) // small windows: plenty of stream left to cancel into

	base := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		rows, err := rangeQuery(c, 0, 2000).
			WithOptions(smoothscan.ScanOptions{Parallelism: 4}).
			Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("iteration %d: no rows before cancel: %v", i, rows.Err())
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("iteration %d: mid-stream Close: %v", i, err)
		}
		// The same connection serves the next query after the cancel.
		full, err := rangeQuery(c, 0, 50).Run(context.Background())
		if err != nil {
			t.Fatalf("iteration %d: query after cancel: %v", i, err)
		}
		drain(t, full)
	}
	// Parallel workers and session goroutines must wind down; poll
	// because exits are asynchronous to the client-visible protocol.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionControl saturates MaxInFlight and checks the excess
// query is rejected with the typed ErrOverloaded after the bounded
// queue deadline — a shed, not a hang — while the in-flight query is
// left to complete normally.
func TestAdmissionControl(t *testing.T) {
	addr, _ := startServer(t, server.Config{
		MaxInFlight:   1,
		QueueDeadline: 100 * time.Millisecond,
	})
	holder := dial(t, addr)
	waiter := dial(t, addr)

	// The holder's open cursor occupies the only admission slot. Small
	// fetch windows keep it open: with the default window the whole
	// result would stream in one Fetch and the slot free immediately.
	holder.SetFetchRows(64)
	rows, err := rangeQuery(holder, 0, 2000).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("holder got no rows: %v", rows.Err())
	}

	start := time.Now()
	_, err = rangeQuery(waiter, 0, 50).Run(context.Background())
	waited := time.Since(start)
	if !errors.Is(err, ssclient.ErrOverloaded) {
		t.Fatalf("overloaded Execute: %v, want ErrOverloaded", err)
	}
	if waited > 3*time.Second {
		t.Fatalf("reject took %v; admission control must shed, not hang", waited)
	}

	// The in-flight query is unaffected by the shed, and finishing it
	// frees the slot for the waiter.
	n := drain(t, rows)
	if n == 0 {
		t.Fatal("holder stream came back empty")
	}
	rows2, err := rangeQuery(waiter, 0, 50).Run(context.Background())
	if err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
	drain(t, rows2)
}

// TestConnLimit fills the connection budget and checks the next Dial
// fails typed with ErrOverloaded instead of hanging in a handshake.
func TestConnLimit(t *testing.T) {
	addr, _ := startServer(t, server.Config{MaxConns: 2})
	dial(t, addr)
	dial(t, addr)
	_, err := ssclient.Dial(addr)
	if !errors.Is(err, ssclient.ErrOverloaded) {
		t.Fatalf("Dial past MaxConns: %v, want ErrOverloaded", err)
	}
}

// TestCloseAfterServerShutdown checks the documented contract that
// Rows.Close and Stmt.Close are safe after the server is gone.
func TestCloseAfterServerShutdown(t *testing.T) {
	db, err := loadgen.BuildDB(2000, 1000, 1, smoothscan.Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := ssclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stmt, err := c.Prepare(rangeQuery(c, ssclient.Param("lo"), ssclient.Param("hi")))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Run(context.Background(), smoothscan.Bind{"lo": 0, "hi": 500})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows before shutdown: %v", rows.Err())
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The stream dies with the server; closing the carcasses is nil.
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Rows.Close after shutdown: %v", err)
	}
	if err := stmt.Close(); err != nil {
		t.Fatalf("Stmt.Close after shutdown: %v", err)
	}
	if _, err := stmt.Run(context.Background(), smoothscan.Bind{"lo": 0, "hi": 1}); err == nil {
		t.Fatal("Run against a closed server succeeded")
	}
}

// TestServerStats sanity-checks the counter snapshot a load driver
// reads for its remote measurements.
func TestServerStats(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)
	for i := int64(0); i < 3; i++ {
		rows, err := rangeQuery(c, i*10, i*10+50).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		drain(t, rows)
	}
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QueriesServed != 3 {
		t.Fatalf("QueriesServed = %d, want 3", st.QueriesServed)
	}
	if st.SessionsOpen != 1 || st.SessionsTotal != 1 {
		t.Fatalf("sessions open/total = %d/%d, want 1/1", st.SessionsOpen, st.SessionsTotal)
	}
	if st.DeviceSimCost <= 0 {
		t.Fatalf("DeviceSimCost = %v, want > 0", st.DeviceSimCost)
	}
}

// TestFaultAdminGate checks fault and cache administration are
// refused without the server-side opt-in, and work with it.
func TestFaultAdminGate(t *testing.T) {
	locked, _ := startServer(t, server.Config{})
	c := dial(t, locked)
	if err := c.SetFaultPolicy(1, ssclient.FaultRule{Kind: smoothscan.FaultTransient, Rate: 0.5}); err == nil {
		t.Fatal("SetFaultPolicy without -fault-admin succeeded")
	}
	if err := c.ColdCache(); err == nil {
		t.Fatal("ColdCache without -fault-admin succeeded")
	}

	open, _ := startServer(t, server.Config{FaultAdmin: true})
	ca := dial(t, open)
	if err := ca.SetFaultPolicy(1, ssclient.FaultRule{Kind: smoothscan.FaultTransient, Rate: 0.2}); err != nil {
		t.Fatalf("SetFaultPolicy: %v", err)
	}
	if err := ca.ColdCache(); err != nil {
		t.Fatalf("ColdCache: %v", err)
	}
	if err := ca.ClearFaultPolicy(); err != nil {
		t.Fatalf("ClearFaultPolicy: %v", err)
	}
	// Out-of-range rules are rejected before touching the device.
	if err := ca.SetFaultPolicy(1, ssclient.FaultRule{Kind: smoothscan.FaultKind(99), Rate: 0.5}); err == nil {
		t.Fatal("out-of-range fault kind accepted")
	}
	if err := ca.SetFaultPolicy(1, ssclient.FaultRule{Kind: smoothscan.FaultTransient, Rate: 1.5}); err == nil {
		t.Fatal("out-of-range fault rate accepted")
	}
}

// TestBadRequests drives protocol misuse paths and checks each gets a
// typed reject while the session stays usable.
func TestBadRequests(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	c := dial(t, addr)

	// Unknown table: a not-found reject, not a dropped connection.
	if _, err := c.Query("nope").Run(context.Background()); err == nil {
		t.Fatal("query on unknown table succeeded")
	}
	var re *ssclient.RemoteError
	_, err := c.Query("nope").Run(context.Background())
	if !errors.As(err, &re) {
		t.Fatalf("unknown table error is %T, want RemoteError", err)
	}

	// Unknown column, bad parameter binding.
	if _, err := rangeQuery(c, 0, 10).Select("ghost").Run(context.Background()); err == nil {
		t.Fatal("select of unknown column succeeded")
	}
	s, err := c.Prepare(rangeQuery(c, ssclient.Param("lo"), ssclient.Param("hi")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), smoothscan.Bind{"lo": 1}); err == nil {
		t.Fatal("run with unbound parameter succeeded")
	}

	// The session survived all of it.
	rows, err := rangeQuery(c, 0, 100).Run(context.Background())
	if err != nil {
		t.Fatalf("session unusable after rejects: %v", err)
	}
	drain(t, rows)
	if c.Broken() {
		t.Fatal("client marked broken by recoverable rejects")
	}
}

// TestQueueDeadlineIsBounded pins down the "reject, don't hang"
// property under a pile-up bigger than one waiter.
func TestQueueDeadlineIsBounded(t *testing.T) {
	addr, _ := startServer(t, server.Config{
		MaxInFlight:   1,
		QueueDeadline: 50 * time.Millisecond,
	})
	holder := dial(t, addr)
	holder.SetFetchRows(64) // keep the cursor (and its slot) open
	rows, err := rangeQuery(holder, 0, 2000).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("holder got no rows")
	}
	defer rows.Close()

	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			c, err := ssclient.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = rangeQuery(c, 0, 10).Run(context.Background())
			errs <- err
		}(i)
	}
	timeout := time.After(10 * time.Second)
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ssclient.ErrOverloaded) {
				t.Fatalf("waiter %d: %v, want ErrOverloaded", i, err)
			}
		case <-timeout:
			t.Fatal("waiters hung instead of being shed")
		}
	}
}
