package server

import (
	"fmt"

	"smoothscan"
	"smoothscan/internal/wire"
)

// buildQuery rebuilds the in-process builder chain from a wire
// QuerySpec. Semantic validation (unknown tables, columns, ambiguous
// conjuncts) stays with the builder and Prepare — the one place that
// owns it; this translation only maps shapes. A spec carrying an
// out-of-range kind byte lands in the builder's error channel via a
// poisoned predicate, so it surfaces through the same classified-error
// path as every other bad query.
func buildQuery(db *smoothscan.DB, spec *wire.QuerySpec) *smoothscan.Query {
	q := db.Query(spec.Table)
	for _, p := range spec.Preds {
		q = q.Where(p.Col, predOf(p))
	}
	for _, j := range spec.Joins {
		q = q.JoinWithOptions(j.Table, j.LeftCol, j.RightCol, scanOptionsOf(j.Opts))
	}
	if spec.HasSel {
		q = q.Select(spec.Select...)
	}
	if spec.HasAgg {
		aggs := make([]smoothscan.Agg, len(spec.Aggs))
		for i, a := range spec.Aggs {
			aggs[i] = aggOf(a)
		}
		q = q.GroupBy(spec.GroupCol, aggs...)
	}
	if spec.HasOrd {
		q = q.OrderBy(spec.OrderCol)
	}
	if spec.HasLim {
		q = q.Limit(argOf(spec.Limit))
	}
	return q.WithOptions(scanOptionsOf(spec.Opts))
}

// argOf maps a wire argument to a builder argument: a Param
// placeholder or an int64 literal.
func argOf(a wire.ArgSpec) any {
	if a.Param != "" {
		return smoothscan.Param(a.Param)
	}
	return a.Lit
}

// badPred poisons the builder chain with an argument-type error, the
// channel Query.Where already propagates.
func badPred(format string, args ...any) smoothscan.Pred {
	return smoothscan.Eq(fmt.Sprintf(format, args...))
}

func predOf(p wire.PredSpec) smoothscan.Pred {
	switch p.Kind {
	case wire.PredBetween:
		return smoothscan.Between(argOf(p.A), argOf(p.B))
	case wire.PredEq:
		return smoothscan.Eq(argOf(p.A))
	case wire.PredLt:
		return smoothscan.Lt(argOf(p.A))
	case wire.PredLe:
		return smoothscan.Le(argOf(p.A))
	case wire.PredGt:
		return smoothscan.Gt(argOf(p.A))
	case wire.PredGe:
		return smoothscan.Ge(argOf(p.A))
	default:
		return badPred("wire predicate kind %d", p.Kind)
	}
}

func aggOf(a wire.AggSpec) smoothscan.Agg {
	var agg smoothscan.Agg
	switch a.Kind {
	case wire.AggSum:
		agg = smoothscan.Sum(a.Col)
	case wire.AggCount:
		agg = smoothscan.Count()
	case wire.AggMin:
		agg = smoothscan.Min(a.Col)
	case wire.AggMax:
		agg = smoothscan.Max(a.Col)
	default:
		// No error channel on Agg itself; an impossible output name
		// routes the mistake into GroupBy's duplicate/unknown checks.
		agg = smoothscan.Count().As(fmt.Sprintf("bad-agg-kind-%d", a.Kind))
	}
	if a.As != "" {
		agg = agg.As(a.As)
	}
	return agg
}

func scanOptionsOf(o wire.OptsSpec) smoothscan.ScanOptions {
	return smoothscan.ScanOptions{
		Path:              smoothscan.AccessPath(o.Path),
		Policy:            smoothscan.Policy(o.Policy),
		Trigger:           smoothscan.Trigger(o.Trigger),
		Ordered:           o.Ordered,
		EstimatedRows:     o.EstimatedRows,
		SLABound:          o.SLABound,
		MaxRegionPages:    o.MaxRegionPages,
		ResultCacheBudget: o.ResultCacheBudget,
		Parallelism:       int(o.Parallelism),
	}
}
