package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"smoothscan"
	"smoothscan/internal/wire"
)

// batchRows caps one Batch frame; a Fetch window larger than this is
// served as several frames so no single frame outgrows the decoder's
// comfort zone.
const batchRows = 1024

// evictedCap bounds the evicted-ID memory a session keeps for
// distinguishing "evicted" from "never existed". Past it the set
// resets: ancient evicted handles then report not-found, which is the
// acceptable end of the precision.
const evictedCap = 65536

// frame is one decoded wire frame in flight from the reader goroutine
// to the session loop.
type frame struct {
	typ     byte
	payload []byte
}

// stmtEntry is one slot of the session's statement table; seq is the
// LRU clock (bumped on Prepare and Execute).
type stmtEntry struct {
	stmt *smoothscan.Stmt
	seq  uint64
}

// cursor is the session's one open result stream.
type cursor struct {
	rows    *smoothscan.Rows
	cancel  context.CancelFunc
	release func()
	width   int
	flat    []int64 // reused batch buffer, batchRows*width
}

// session serves one connection. Two goroutines cooperate: the reader
// decodes frames off the wire — handling Cancel immediately, so an
// in-flight query's context is cancelled even while the session loop
// is busy streaming its result — and the session loop owns all other
// state and every write.
type session struct {
	srv  *Server
	conn net.Conn
	bw   *bufio.Writer

	inbox chan frame
	ctx   context.Context // server lifetime; sessions die with it

	// curMu guards curCancel, the only state the reader goroutine
	// touches besides the inbox.
	curMu     sync.Mutex
	curCancel context.CancelFunc

	stmts   map[uint32]*stmtEntry
	evicted map[uint32]struct{}
	nextID  uint32
	seq     uint64

	cur *cursor
}

func newSession(s *Server, conn net.Conn) *session {
	return &session{
		srv:     s,
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		inbox:   make(chan frame, 4),
		ctx:     s.ctx,
		stmts:   make(map[uint32]*stmtEntry),
		evicted: make(map[uint32]struct{}),
	}
}

// readLoop decodes frames until the connection dies, forwarding them
// to the session loop. Cancel frames additionally fire the in-flight
// query's context right here, before the forward, so parallel scan
// workers start exiting while the session loop is still mid-stream.
func (ss *session) readLoop() {
	defer close(ss.inbox)
	for {
		typ, payload, err := wire.ReadFrame(ss.conn)
		if err != nil {
			return
		}
		if typ == wire.MsgCancel {
			ss.curMu.Lock()
			if ss.curCancel != nil {
				ss.curCancel()
			}
			ss.curMu.Unlock()
		}
		select {
		case ss.inbox <- frame{typ: typ, payload: payload}:
		case <-ss.ctx.Done():
			return
		}
	}
}

// setCancel publishes (or clears) the in-flight query's cancel func
// for the reader goroutine.
func (ss *session) setCancel(fn context.CancelFunc) {
	ss.curMu.Lock()
	ss.curCancel = fn
	ss.curMu.Unlock()
}

// send writes one frame and flushes it; a false return means the
// connection is dead and the session must exit.
func (ss *session) send(typ byte, payload []byte) bool {
	if err := wire.WriteFrame(ss.bw, typ, payload); err != nil {
		return false
	}
	return ss.bw.Flush() == nil
}

// sendErr sends a typed Error frame.
func (ss *session) sendErr(class byte, format string, args ...any) bool {
	m := wire.ErrorMsg{Class: class, Msg: fmt.Sprintf(format, args...)}
	return ss.send(wire.MsgError, m.Marshal())
}

// fail classifies err into an Error frame.
func (ss *session) fail(err error) bool {
	return ss.sendErr(classify(err), "%s", err.Error())
}

// nextFrame waits for the next request, the idle timeout, or server
// shutdown.
func (ss *session) nextFrame() (frame, bool) {
	var idleC <-chan time.Time
	if d := ss.srv.cfg.IdleTimeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		idleC = t.C
	}
	select {
	case fr, ok := <-ss.inbox:
		return fr, ok
	case <-idleC:
		ss.srv.ctr.idleCloses.Add(1)
		ss.sendErr(wire.ClassIdle, "session closed: idle for %s", ss.srv.cfg.IdleTimeout)
		return frame{}, false
	case <-ss.ctx.Done():
		ss.sendErr(wire.ClassIdle, "session closed: server shutting down")
		return frame{}, false
	}
}

func (ss *session) run() {
	go ss.readLoop()
	defer func() {
		ss.closeCursor()
		ss.conn.Close()
		// Unblock the reader if it is parked on the inbox send.
		for range ss.inbox {
		}
	}()

	// Handshake: the first frame must be a version-matched Hello.
	fr, ok := ss.nextFrame()
	if !ok {
		return
	}
	hello, err := wire.DecodeHello(fr.payload)
	if fr.typ != wire.MsgHello || err != nil || hello.Magic != wire.Magic {
		ss.sendErr(wire.ClassBadRequest, "expected Hello")
		return
	}
	if hello.Version != wire.Version {
		ss.sendErr(wire.ClassBadRequest, "protocol version %d not supported (server speaks %d)",
			hello.Version, wire.Version)
		return
	}
	if !ss.send(wire.MsgHelloOK, wire.HelloOK{Version: wire.Version}.Marshal()) {
		return
	}

	for {
		fr, ok := ss.nextFrame()
		if !ok {
			return
		}
		if !ss.handle(fr) {
			return
		}
	}
}

// handle dispatches one request frame; a false return ends the session.
func (ss *session) handle(fr frame) bool {
	switch fr.typ {
	case wire.MsgPrepare:
		m, err := wire.DecodePrepare(fr.payload)
		if err != nil {
			return ss.fail(err)
		}
		return ss.handlePrepare(&m.Spec)
	case wire.MsgExecute:
		m, err := wire.DecodeExecute(fr.payload)
		if err != nil {
			return ss.fail(err)
		}
		return ss.handleExecute(m)
	case wire.MsgQuery:
		m, err := wire.DecodeQuery(fr.payload)
		if err != nil {
			return ss.fail(err)
		}
		return ss.handleQuery(&m.Spec)
	case wire.MsgFetch:
		m, err := wire.DecodeFetch(fr.payload)
		if err != nil {
			return ss.fail(err)
		}
		return ss.handleFetch(int(m.MaxRows))
	case wire.MsgCloseStmt:
		m, err := wire.DecodeCloseStmt(fr.payload)
		if err != nil {
			return ss.fail(err)
		}
		if _, present := ss.stmts[m.StmtID]; present {
			delete(ss.stmts, m.StmtID)
			ss.srv.ctr.stmtsClosed.Add(1)
		}
		// Closing an unknown, evicted or already-closed handle is a
		// no-op by contract: the client may be racing an eviction.
		return ss.send(wire.MsgOK, nil)
	case wire.MsgCancel:
		// The reader already fired the context; here the cursor (if
		// any) is torn down and the cancel acknowledged, giving the
		// client a deterministic frame to resynchronise on.
		ss.srv.ctr.cancels.Add(1)
		ss.closeCursor()
		return ss.send(wire.MsgOK, nil)
	case wire.MsgStats:
		return ss.send(wire.MsgStatsReply, ss.srv.Stats().Marshal())
	case wire.MsgCatalog:
		return ss.handleCatalog()
	case wire.MsgFaultCtl:
		m, err := wire.DecodeFaultCtl(fr.payload)
		if err != nil {
			return ss.fail(err)
		}
		return ss.handleFaultCtl(m)
	case wire.MsgColdCache:
		return ss.handleColdCache()
	case wire.MsgHello:
		return ss.sendErr(wire.ClassBadRequest, "duplicate Hello")
	default:
		return ss.sendErr(wire.ClassBadRequest, "unexpected message %#02x", fr.typ)
	}
}

func (ss *session) handlePrepare(spec *wire.QuerySpec) bool {
	stmt, err := ss.srv.db.Prepare(buildQuery(ss.srv.db, spec))
	if err != nil {
		return ss.fail(err)
	}
	if max := ss.srv.cfg.MaxStmtsPerSession; max > 0 && len(ss.stmts) >= max {
		// Evict the least recently executed statement to make room.
		var victim uint32
		first := true
		for id, e := range ss.stmts {
			if first || e.seq < ss.stmts[victim].seq {
				victim, first = id, false
			}
		}
		delete(ss.stmts, victim)
		if len(ss.evicted) >= evictedCap {
			ss.evicted = make(map[uint32]struct{})
		}
		ss.evicted[victim] = struct{}{}
		ss.srv.ctr.stmtsEvicted.Add(1)
	}
	id := ss.nextID
	ss.nextID++
	ss.seq++
	ss.stmts[id] = &stmtEntry{stmt: stmt, seq: ss.seq}
	ss.srv.ctr.stmtsPrepared.Add(1)
	return ss.send(wire.MsgPrepareOK, wire.PrepareOK{StmtID: id, Params: stmt.Params()}.Marshal())
}

func (ss *session) handleExecute(m wire.Execute) bool {
	if ss.cur != nil {
		return ss.sendErr(wire.ClassBadRequest, "a cursor is already open on this session")
	}
	entry, ok := ss.stmts[m.StmtID]
	if !ok {
		if _, was := ss.evicted[m.StmtID]; was {
			return ss.sendErr(wire.ClassEvicted,
				"statement %d was evicted (per-session limit %d); re-Prepare",
				m.StmtID, ss.srv.cfg.MaxStmtsPerSession)
		}
		return ss.sendErr(wire.ClassNotFound, "no statement %d on this session", m.StmtID)
	}
	ss.seq++
	entry.seq = ss.seq
	bind := make(smoothscan.Bind, len(m.Binds))
	for _, b := range m.Binds {
		bind[b.Name] = b.Val
	}
	return ss.openCursor(func(ctx context.Context) (*smoothscan.Rows, error) {
		return entry.stmt.Run(ctx, bind)
	})
}

func (ss *session) handleQuery(spec *wire.QuerySpec) bool {
	if ss.cur != nil {
		return ss.sendErr(wire.ClassBadRequest, "a cursor is already open on this session")
	}
	return ss.openCursor(func(ctx context.Context) (*smoothscan.Rows, error) {
		return buildQuery(ss.srv.db, spec).Run(ctx)
	})
}

// openCursor admits the query, runs it, and opens the session's
// cursor, replying ExecOK with the result columns.
func (ss *session) openCursor(run func(context.Context) (*smoothscan.Rows, error)) bool {
	release, err := ss.srv.admit()
	if err != nil {
		return ss.fail(err)
	}
	ctx, cancel := context.WithCancel(ss.ctx)
	ss.setCancel(cancel)
	rows, err := run(ctx)
	if err != nil {
		ss.setCancel(nil)
		cancel()
		release()
		ss.srv.ctr.queriesFailed.Add(1)
		return ss.fail(err)
	}
	cols := rows.Columns()
	ss.cur = &cursor{
		rows:    rows,
		cancel:  cancel,
		release: release,
		width:   len(cols),
		flat:    make([]int64, batchRows*len(cols)),
	}
	return ss.send(wire.MsgExecOK, wire.ExecOK{Cols: cols}.Marshal())
}

// closeCursor tears the open cursor down: cancel the query context,
// close the Rows (stopping parallel workers), release the admission
// token. Idempotent.
func (ss *session) closeCursor() {
	c := ss.cur
	if c == nil {
		return
	}
	ss.cur = nil
	ss.setCancel(nil)
	c.cancel()
	_ = c.rows.Close()
	c.release()
}

// handleFetch streams up to maxRows rows of the open cursor as Batch
// frames, ending the window with End (More when the budget filled
// before the stream ended) or a classified Error.
func (ss *session) handleFetch(maxRows int) bool {
	c := ss.cur
	if c == nil {
		return ss.sendErr(wire.ClassBadRequest, "no open cursor (Execute or Query first)")
	}
	if maxRows <= 0 {
		maxRows = ss.srv.cfg.FetchRows
	}
	sent := 0
	for sent < maxRows {
		chunk := maxRows - sent
		if chunk > batchRows {
			chunk = batchRows
		}
		n := 0
		for n < chunk && c.rows.Next() {
			c.rows.CopyRow(c.flat[n*c.width : (n+1)*c.width])
			n++
		}
		if n > 0 {
			var e wire.Encoder
			e.AppendBatch(c.flat, n, c.width)
			if !ss.send(wire.MsgBatch, e.B) {
				return false
			}
			ss.srv.ctr.rowsSent.Add(int64(n))
			ss.srv.ctr.batchesSent.Add(1)
			sent += n
		}
		if n < chunk {
			// Stream ended (or failed) inside this chunk.
			if err := c.rows.Err(); err != nil {
				ss.srv.ctr.queriesFailed.Add(1)
				ok := ss.fail(err)
				ss.closeCursor()
				return ok
			}
			if err := c.rows.Close(); err != nil {
				ss.srv.ctr.queriesFailed.Add(1)
				ok := ss.fail(err)
				ss.closeCursor()
				return ok
			}
			st := c.rows.ExecStats()
			end := wire.End{Summary: wire.ExecSummary{
				Rows:             st.RowsReturned,
				Retries:          st.Retries,
				FaultsSeen:       st.FaultsSeen,
				PlanCacheHit:     st.PlanCacheHit,
				Degraded:         st.Degraded,
				IO:               st.IO,
				ResultCacheHit:   st.ResultCache.Hit,
				ResultCacheBytes: st.ResultCache.Bytes,
				ResultCacheAgeNs: int64(st.ResultCache.Age),
			}}
			ss.srv.ctr.queriesServed.Add(1)
			ok := ss.send(wire.MsgEnd, end.Marshal())
			ss.closeCursor()
			return ok
		}
	}
	// Window filled; the cursor stays open for the next Fetch.
	return ss.send(wire.MsgEnd, wire.End{More: true}.Marshal())
}

// handleCatalog answers with the server's table catalog so a sharding
// coordinator can mirror the schema without sharing the data load.
func (ss *session) handleCatalog() bool {
	var m wire.CatalogReply
	for _, t := range ss.srv.db.Tables() {
		m.Tables = append(m.Tables, wire.TableSpec{
			Name:    t.Name,
			Cols:    t.Columns,
			Indexed: t.Indexed,
			Rows:    t.Rows,
		})
	}
	return ss.send(wire.MsgCatalogReply, m.Marshal())
}

// handleColdCache evicts the buffer pool so a remote measurement
// window starts from the same cold state an in-process run would.
// Like fault administration it is a test-rig control, and shares its
// gate: an open benchmark harness is fine, an open eviction endpoint
// on a shared server is not.
func (ss *session) handleColdCache() bool {
	if !ss.srv.cfg.FaultAdmin {
		return ss.sendErr(wire.ClassBadRequest, "cache administration is disabled on this server (-fault-admin)")
	}
	if ss.cur != nil {
		return ss.sendErr(wire.ClassBadRequest, "ColdCache while a cursor is open")
	}
	if err := ss.srv.db.ColdCache(); err != nil {
		return ss.fail(err)
	}
	return ss.send(wire.MsgOK, nil)
}

func (ss *session) handleFaultCtl(m wire.FaultCtl) bool {
	if !ss.srv.cfg.FaultAdmin {
		return ss.sendErr(wire.ClassBadRequest, "fault administration is disabled on this server (-fault-admin)")
	}
	if len(m.Rules) == 0 {
		ss.srv.db.SetFaultPolicy(nil)
		return ss.send(wire.MsgOK, nil)
	}
	rules := make([]smoothscan.FaultRule, len(m.Rules))
	for i, r := range m.Rules {
		if r.Kind > byte(smoothscan.FaultCorrupt) || r.Rate < 0 || r.Rate > 1 {
			return ss.sendErr(wire.ClassBadRequest, "fault rule %d: kind %d rate %g out of range", i, r.Kind, r.Rate)
		}
		rules[i] = smoothscan.FaultRule{
			Space:     smoothscan.AnySpace,
			Kind:      smoothscan.FaultKind(r.Kind),
			Rate:      r.Rate,
			ExtraCost: float64(r.ExtraCost),
		}
	}
	ss.srv.db.SetFaultPolicy(smoothscan.NewFaultPolicy(m.Seed, rules...))
	return ss.send(wire.MsgOK, nil)
}
