package bufferpool

import (
	"errors"
	"testing"
	"testing/quick"

	"smoothscan/internal/disk"
)

func newDev(t *testing.T, numPages int) (*disk.Device, disk.SpaceID) {
	t.Helper()
	d := disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 64})
	sp := d.CreateSpace()
	for i := 0; i < numPages; i++ {
		page := make([]byte, 64)
		page[0] = byte(i)
		if _, err := d.AppendPage(sp, page); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	return d, sp
}

func TestGetCachesPages(t *testing.T) {
	d, sp := newDev(t, 4)
	p := New(d, 4)
	for i := 0; i < 2; i++ {
		data, err := p.Get(sp, 1)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != 1 {
			t.Fatalf("wrong page content %d", data[0])
		}
	}
	if s := p.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", s)
	}
	if ds := d.Stats(); ds.PagesRead != 1 {
		t.Errorf("device read %d pages, want 1", ds.PagesRead)
	}
	if !p.Contains(sp, 1) || p.Contains(sp, 0) {
		t.Error("Contains wrong")
	}
}

func TestClockEviction(t *testing.T) {
	d, sp := newDev(t, 8)
	p := New(d, 2)
	mustGet := func(page int64) {
		t.Helper()
		if _, err := p.Get(sp, page); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(0)
	mustGet(1)
	mustGet(2) // evicts one of {0,1}
	s := p.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if p.Contains(sp, 0) && p.Contains(sp, 1) {
		t.Error("no page was actually evicted")
	}
	if !p.Contains(sp, 2) {
		t.Error("newly read page not cached")
	}
}

func TestClockSecondChance(t *testing.T) {
	d, sp := newDev(t, 8)
	p := New(d, 3)
	for _, pg := range []int64{0, 1, 2} {
		if _, err := p.Get(sp, pg); err != nil {
			t.Fatal(err)
		}
	}
	// Inserting page 3 sweeps all ref bits (all set) and evicts page 0.
	if _, err := p.Get(sp, 3); err != nil {
		t.Fatal(err)
	}
	if p.Contains(sp, 0) {
		t.Fatal("full sweep should have evicted page 0")
	}
	// Now ref bits are clear except page 3's. Touch page 1 to set its
	// ref bit; inserting page 4 must then skip page 1 (second chance)
	// and evict page 2 instead.
	if _, err := p.Get(sp, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(sp, 4); err != nil {
		t.Fatal(err)
	}
	if !p.Contains(sp, 1) {
		t.Error("recently referenced page evicted despite second chance")
	}
	if p.Contains(sp, 2) {
		t.Error("unreferenced page 2 survived")
	}
}

func TestGetRunSingleRequest(t *testing.T) {
	d, sp := newDev(t, 16)
	p := New(d, 16)
	pages, err := p.GetRun(sp, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 4 || pages[0][0] != 4 || pages[3][0] != 7 {
		t.Fatal("wrong pages returned")
	}
	if ds := d.Stats(); ds.Requests != 1 || ds.PagesRead != 4 {
		t.Errorf("device stats %+v, want 1 request 4 pages", ds)
	}
	// All four pages are now cached.
	d.ResetStats()
	if _, err := p.GetRun(sp, 4, 4, nil); err != nil {
		t.Fatal(err)
	}
	if ds := d.Stats(); ds.Requests != 0 {
		t.Errorf("cached run hit device: %+v", ds)
	}
}

func TestGetRunSkipsCachedStretches(t *testing.T) {
	d, sp := newDev(t, 16)
	p := New(d, 16)
	if _, err := p.Get(sp, 6); err != nil { // cache the middle page
		t.Fatal(err)
	}
	d.ResetStats()
	if _, err := p.GetRun(sp, 4, 5, nil); err != nil { // pages 4..8, 6 cached
		t.Fatal(err)
	}
	ds := d.Stats()
	if ds.Requests != 2 {
		t.Errorf("requests = %d, want 2 (runs [4,5] and [7,8])", ds.Requests)
	}
	if ds.PagesRead != 4 {
		t.Errorf("pages read = %d, want 4", ds.PagesRead)
	}
	if s := p.Stats(); s.Hits != 1 || s.Misses != 5 { // 1 earlier miss + 4 run misses; hit on 6
		t.Errorf("pool stats = %+v", s)
	}
}

func TestGetRunValidation(t *testing.T) {
	d, sp := newDev(t, 4)
	p := New(d, 4)
	if _, err := p.GetRun(sp, 0, 0, nil); err == nil {
		t.Error("zero-length run accepted")
	}
	if _, err := p.GetRun(sp, 2, 10, nil); err == nil {
		t.Error("out-of-range run accepted")
	}
}

func TestErrorPropagation(t *testing.T) {
	d, sp := newDev(t, 4)
	p := New(d, 4)
	d.FailAfter(0)
	if _, err := p.Get(sp, 0); !errors.Is(err, disk.ErrInjected) {
		t.Errorf("Get err = %v, want ErrInjected", err)
	}
	d.FailAfter(0)
	if _, err := p.GetRun(sp, 0, 2, nil); !errors.Is(err, disk.ErrInjected) {
		t.Errorf("GetRun err = %v, want ErrInjected", err)
	}
}

func TestResetColdCache(t *testing.T) {
	d, sp := newDev(t, 4)
	p := New(d, 4)
	if _, err := p.Get(sp, 0); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.Contains(sp, 0) {
		t.Error("page survived Reset")
	}
	if s := p.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset: %+v", s)
	}
	d.ResetStats()
	if _, err := p.Get(sp, 0); err != nil {
		t.Fatal(err)
	}
	if ds := d.Stats(); ds.PagesRead != 1 {
		t.Error("read after Reset did not hit device")
	}
}

func TestInvalidateSpace(t *testing.T) {
	d, sp := newDev(t, 4)
	sp2 := d.CreateSpace()
	page := make([]byte, 64)
	if _, err := d.AppendPage(sp2, page); err != nil {
		t.Fatal(err)
	}
	p := New(d, 8)
	if _, err := p.Get(sp, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(sp2, 0); err != nil {
		t.Fatal(err)
	}
	p.InvalidateSpace(sp)
	if p.Contains(sp, 0) {
		t.Error("invalidated page still cached")
	}
	if !p.Contains(sp2, 0) {
		t.Error("unrelated space invalidated")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty HitRate not 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

// Property: under any access pattern, the pool never holds more than
// capacity pages, and every Get returns the correct page content.
func TestPoolInvariants(t *testing.T) {
	const numPages = 32
	f := func(accesses []uint8, capSeed uint8) bool {
		capacity := int(capSeed)%8 + 1
		d := disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 64})
		sp := d.CreateSpace()
		for i := 0; i < numPages; i++ {
			page := make([]byte, 64)
			page[0] = byte(i)
			if _, err := d.AppendPage(sp, page); err != nil {
				return false
			}
		}
		p := New(d, capacity)
		cached := 0
		for _, a := range accesses {
			pageNo := int64(a) % numPages
			data, err := p.Get(sp, pageNo)
			if err != nil || data[0] != byte(pageNo) {
				return false
			}
			cached = 0
			for i := int64(0); i < numPages; i++ {
				if p.Contains(sp, i) {
					cached++
				}
			}
			if cached > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
