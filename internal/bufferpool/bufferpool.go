// Package bufferpool implements a clock-sweep page cache over a
// simulated disk device.
//
// All query-time page reads in the engine go through a Pool so that
// repeated accesses to a cached page cost no I/O — the effect the
// paper's Index Scan suffers from only partially (the buffer pool
// cannot hold the whole table, so repeated accesses at scale still hit
// the disk). The paper evaluates cold runs; Reset restores that state
// between queries.
//
// Pages are immutable at query time (the engine is bulk-load-then-read,
// like the paper's experiments), so frames hold read-only aliases of
// device memory and eviction never writes back.
package bufferpool

import (
	"fmt"

	"smoothscan/internal/disk"
)

// Stats holds cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns hits / (hits+misses), or 0 when no accesses occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type key struct {
	space disk.SpaceID
	page  int64
}

type frame struct {
	key  key
	data []byte
	ref  bool // clock reference bit
	used bool // slot occupied
}

// Pool is a fixed-capacity page cache. It is not safe for concurrent
// use; the engine executes queries single-threaded, as PostgreSQL 9.2
// does per backend.
type Pool struct {
	dev      *disk.Device
	capacity int
	frames   []frame
	table    map[key]int // key -> frame index
	hand     int
	stats    Stats
}

// New creates a pool of capacity pages over the device. Capacity must
// be positive.
func New(dev *disk.Device, capacity int) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("bufferpool: capacity %d", capacity))
	}
	return &Pool{
		dev:      dev,
		capacity: capacity,
		frames:   make([]frame, capacity),
		table:    make(map[key]int, capacity),
	}
}

// Device returns the underlying device.
func (p *Pool) Device() *disk.Device { return p.dev }

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Stats returns a snapshot of the cache counters.
func (p *Pool) Stats() Stats { return p.stats }

// Contains reports whether the page is currently cached, without
// touching reference bits or counters.
func (p *Pool) Contains(space disk.SpaceID, pageNo int64) bool {
	_, ok := p.table[key{space, pageNo}]
	return ok
}

// Get returns the page, reading it from the device on a miss. The
// returned slice is read-only.
func (p *Pool) Get(space disk.SpaceID, pageNo int64) ([]byte, error) {
	k := key{space, pageNo}
	if idx, ok := p.table[k]; ok {
		p.stats.Hits++
		p.frames[idx].ref = true
		return p.frames[idx].data, nil
	}
	p.stats.Misses++
	data, err := p.dev.ReadPage(space, pageNo)
	if err != nil {
		return nil, err
	}
	p.insert(k, data)
	return data, nil
}

// GetRun returns n consecutive pages starting at start, reading
// contiguous uncached stretches from the device as single run requests.
// This is the read primitive behind Smooth Scan's flattening mode and
// Sort Scan's sorted fetch: a morphing region of pages costs one seek
// plus sequential transfers, and pages already cached cost nothing.
//
// scratch, when non-nil, is reused as the backing array of the returned
// slice if it has the capacity; hot scan loops pass the previous result
// back in to avoid a per-run allocation. Pass nil when unsure.
func (p *Pool) GetRun(space disk.SpaceID, start, n int64, scratch [][]byte) ([][]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bufferpool: GetRun of %d pages", n)
	}
	var out [][]byte
	if int64(cap(scratch)) >= n {
		out = scratch[:n]
		// Drop stale page pointers beyond this run so the scratch tail
		// cannot pin evicted page buffers for the scan's lifetime.
		clear(scratch[n:cap(scratch)])
	} else {
		out = make([][]byte, n)
	}
	var runStart int64 = -1 // start of the current uncached stretch
	flush := func(end int64) error {
		if runStart < 0 {
			return nil
		}
		pages, err := p.dev.ReadRun(space, runStart, end-runStart)
		if err != nil {
			return err
		}
		for i, data := range pages {
			pageNo := runStart + int64(i)
			p.insert(key{space, pageNo}, data)
			out[pageNo-start] = data
		}
		runStart = -1
		return nil
	}
	for pageNo := start; pageNo < start+n; pageNo++ {
		if idx, ok := p.table[key{space, pageNo}]; ok {
			p.stats.Hits++
			p.frames[idx].ref = true
			out[pageNo-start] = p.frames[idx].data
			if err := flush(pageNo); err != nil {
				return nil, err
			}
			continue
		}
		p.stats.Misses++
		if runStart < 0 {
			runStart = pageNo
		}
	}
	if err := flush(start + n); err != nil {
		return nil, err
	}
	return out, nil
}

// insert places a page into a frame, evicting via clock sweep if full.
func (p *Pool) insert(k key, data []byte) {
	if idx, ok := p.table[k]; ok { // already present (raced via GetRun)
		p.frames[idx].data = data
		p.frames[idx].ref = true
		return
	}
	for {
		f := &p.frames[p.hand]
		slot := p.hand
		p.hand = (p.hand + 1) % p.capacity
		if !f.used {
			*f = frame{key: k, data: data, ref: true, used: true}
			p.table[k] = slot
			return
		}
		if f.ref {
			f.ref = false
			continue
		}
		delete(p.table, f.key)
		p.stats.Evictions++
		*f = frame{key: k, data: data, ref: true, used: true}
		p.table[k] = slot
		return
	}
}

// Reset empties the cache and zeroes its counters, simulating the cold
// buffer cache the paper starts every measured query with. The frame
// array and the lookup map are cleared in place and reused, so a
// benchmark resetting between queries does not churn the allocator.
func (p *Pool) Reset() {
	for i := range p.frames {
		p.frames[i] = frame{}
	}
	clear(p.table)
	p.hand = 0
	p.stats = Stats{}
}

// InvalidatePage drops one cached page, if present; callers must
// invoke it after an in-place page write (heap inserts).
func (p *Pool) InvalidatePage(space disk.SpaceID, pageNo int64) {
	k := key{space, pageNo}
	if idx, ok := p.table[k]; ok {
		p.frames[idx] = frame{}
		delete(p.table, k)
	}
}

// InvalidateSpace drops every cached page of the space; callers must
// invoke it after writing to a space outside the pool (bulk loads).
func (p *Pool) InvalidateSpace(space disk.SpaceID) {
	for k, idx := range p.table {
		if k.space == space {
			p.frames[idx] = frame{}
			delete(p.table, k)
		}
	}
}
