// Package bufferpool implements a clock-sweep page cache over a
// simulated disk device.
//
// All query-time page reads in the engine go through a Pool so that
// repeated accesses to a cached page cost no I/O — the effect the
// paper's Index Scan suffers from only partially (the buffer pool
// cannot hold the whole table, so repeated accesses at scale still hit
// the disk). The paper evaluates cold runs; Reset restores that state
// between queries.
//
// Pages are immutable at query time (the engine is bulk-load-then-read,
// like the paper's experiments), so frames hold read-only aliases of
// device memory and eviction never writes back.
//
// A Pool is safe for concurrent use: the frame table is guarded by one
// mutex shared by every view of the pool. A Pool value is itself a
// lightweight view — View returns a new handle over the same cache
// whose reads go through a private disk.Channel, so each parallel scan
// worker keeps its own random-vs-sequential head position and its own
// deferred CPU meter while sharing every cached page.
package bufferpool

import (
	"fmt"
	"sync"

	"smoothscan/internal/disk"
)

// Stats holds cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns hits / (hits+misses), or 0 when no accesses occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type key struct {
	space disk.SpaceID
	page  int64
}

type frame struct {
	key  key
	data []byte
	ref  bool // clock reference bit
	used bool // slot occupied
}

// state is the cache shared by every view of a Pool.
type state struct {
	mu       sync.Mutex
	dev      *disk.Device
	capacity int
	frames   []frame
	table    map[key]int // key -> frame index
	hand     int
	stats    Stats
}

// Pool is a view of a fixed-capacity page cache: the cache itself is
// shared with every other view, while the I/O channel is private to
// this view. The Pool returned by New reads through the device's
// default channel (classic single-stream behaviour); views created
// with View read through fresh channels.
type Pool struct {
	st *state
	ch *disk.Channel
}

// New creates a pool of capacity pages over the device. Capacity must
// be positive.
func New(dev *disk.Device, capacity int) *Pool {
	if capacity <= 0 {
		// Invariant, not an error return: every caller either passes a
		// compile-time constant or validates user input first (the
		// facade's Open rejects PoolPages < 1 before reaching here).
		panic(fmt.Sprintf("bufferpool: capacity %d", capacity))
	}
	return &Pool{
		st: &state{
			dev:      dev,
			capacity: capacity,
			frames:   make([]frame, capacity),
			table:    make(map[key]int, capacity),
		},
		ch: dev.DefaultChannel(),
	}
}

// View returns a new handle over the same shared cache whose device
// reads go through a private disk.Channel (fresh head position,
// deferred CPU accounting). Parallel scan workers each take one view;
// the caller must flush the view (FlushCPU) when the worker finishes.
func (p *Pool) View() *Pool {
	return &Pool{st: p.st, ch: p.st.dev.NewChannel()}
}

// Device returns the underlying device.
func (p *Pool) Device() *disk.Device { return p.st.dev }

// Channel returns the disk channel this view reads through.
func (p *Pool) Channel() *disk.Channel { return p.ch }

// FlushCPU folds the view's deferred CPU charges into the device
// counters (no-op for the default view, which charges immediately).
func (p *Pool) FlushCPU() { p.ch.FlushCPU() }

// ChargeCPU charges t CPU cost units through the view's channel.
// Operators charge through their pool view so that a parallel worker's
// per-tuple accounting stays off the device mutex.
func (p *Pool) ChargeCPU(t float64) { p.ch.ChargeCPU(t) }

// ChargeCPUN charges t CPU cost units n times through the view's
// channel (n individual additions, like disk.Device.ChargeCPUN).
func (p *Pool) ChargeCPUN(t float64, n int64) { p.ch.ChargeCPUN(t, n) }

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.st.capacity }

// Stats returns a snapshot of the cache counters.
func (p *Pool) Stats() Stats {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	return p.st.stats
}

// Contains reports whether the page is currently cached, without
// touching reference bits or counters.
func (p *Pool) Contains(space disk.SpaceID, pageNo int64) bool {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	_, ok := p.st.table[key{space, pageNo}]
	return ok
}

// Get returns the page, reading it from the device on a miss. The
// returned slice is read-only.
//
// The pool mutex is released during the device read so concurrent
// views overlap their page fetches; two views missing the same page
// may both read it (a benign duplicate charge — insert tolerates the
// race), and a single-threaded caller sees exactly the classic probe,
// read, insert sequence.
func (p *Pool) Get(space disk.SpaceID, pageNo int64) ([]byte, error) {
	st := p.st
	k := key{space, pageNo}
	st.mu.Lock()
	if idx, ok := st.table[k]; ok {
		st.stats.Hits++
		st.frames[idx].ref = true
		data := st.frames[idx].data
		st.mu.Unlock()
		return data, nil
	}
	st.stats.Misses++
	st.mu.Unlock()
	data, err := p.readPage(space, pageNo)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.insert(k, data)
	st.mu.Unlock()
	return data, nil
}

// GetRun returns n consecutive pages starting at start, reading
// contiguous uncached stretches from the device as single run requests.
// This is the read primitive behind Smooth Scan's flattening mode and
// Sort Scan's sorted fetch: a morphing region of pages costs one seek
// plus sequential transfers, and pages already cached cost nothing.
//
// scratch, when non-nil, is reused as the backing array of the returned
// slice if it has the capacity; hot scan loops pass the previous result
// back in to avoid a per-run allocation. Pass nil when unsure.
func (p *Pool) GetRun(space disk.SpaceID, start, n int64, scratch [][]byte) ([][]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bufferpool: GetRun of %d pages", n)
	}
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	var out [][]byte
	if int64(cap(scratch)) >= n {
		out = scratch[:n]
		// Drop stale page pointers beyond this run so the scratch tail
		// cannot pin evicted page buffers for the scan's lifetime.
		clear(scratch[n:cap(scratch)])
	} else {
		out = make([][]byte, n)
	}
	var runStart int64 = -1 // start of the current uncached stretch
	flush := func(end int64) error {
		if runStart < 0 {
			return nil
		}
		// Read the stretch with the pool unlocked so concurrent views
		// overlap their device requests; re-lock for frame insertion
		// (and for the caller's loop). insert tolerates pages raced in
		// by another view meanwhile, and a single-threaded caller sees
		// the classic probe/read/insert order unchanged.
		st.mu.Unlock()
		pages, err := p.readRun(space, runStart, end-runStart)
		st.mu.Lock()
		if err != nil {
			return err
		}
		for i, data := range pages {
			pageNo := runStart + int64(i)
			st.insert(key{space, pageNo}, data)
			out[pageNo-start] = data
		}
		runStart = -1
		return nil
	}
	for pageNo := start; pageNo < start+n; pageNo++ {
		if idx, ok := st.table[key{space, pageNo}]; ok {
			st.stats.Hits++
			st.frames[idx].ref = true
			out[pageNo-start] = st.frames[idx].data
			if err := flush(pageNo); err != nil {
				return nil, err
			}
			continue
		}
		st.stats.Misses++
		if runStart < 0 {
			runStart = pageNo
		}
	}
	if err := flush(start + n); err != nil {
		return nil, err
	}
	return out, nil
}

// MaxReadRetries bounds the attempts the pool makes per page read when
// a fault policy is active. Transient-fault and corruption decisions
// re-roll per attempt, so bounded per-page retry recovers unless the
// fault rate is 1 (or the fault is permanent, which is never retried).
const MaxReadRetries = 4

// readRun is the pool's device-read primitive: ch.ReadRun plus, when a
// fault policy is attached, checksum verification of every returned
// page and bounded retry with simulated-clock backoff for transient
// faults. Corrupted or failed reads never reach the frame table — the
// callers insert only pages this function returned, so a later retry
// re-reads the device rather than serving damaged bytes from cache.
// With no policy attached this is exactly ch.ReadRun.
//
// Retry is page-granular: when a multi-page run hits a transient fault
// or a corrupted page, the run is re-read page by page, each page with
// its own bounded retry. Re-issuing the whole run would make recovery
// LESS likely the longer the run — at per-page fault rate r a fresh
// n-page attempt fails somewhere with probability 1-(1-r)^n, so long
// runs would fail almost every attempt — whereas real storage re-reads
// the flaky sector, not the whole transfer. The split costs the same
// simulated I/O time as the run (head position makes the follow-on
// pages sequential) plus the backoff charges of the retried pages.
func (p *Pool) readRun(space disk.SpaceID, start, n int64) ([][]byte, error) {
	if !p.st.dev.Faulty() {
		return p.ch.ReadRun(space, start, n)
	}
	if n == 1 {
		page, err := p.readPageRetried(space, start)
		if err != nil {
			return nil, err
		}
		return [][]byte{page}, nil
	}
	pages, err := p.readVerified(space, start, n)
	if err == nil {
		return pages, nil
	}
	if !disk.IsTransient(err) {
		return nil, err
	}
	p.ch.ChargeRetryBackoff(0)
	out := make([][]byte, n)
	for i := int64(0); i < n; i++ {
		page, perr := p.readPageRetried(space, start+i)
		if perr != nil {
			return nil, perr
		}
		out[i] = page
	}
	return out, nil
}

// readVerified is one read attempt: ch.ReadRun plus checksum
// verification of every returned page.
func (p *Pool) readVerified(space disk.SpaceID, start, n int64) ([][]byte, error) {
	pages, err := p.ch.ReadRun(space, start, n)
	if err != nil {
		return nil, err
	}
	if err := verifyRun(space, start, pages); err != nil {
		return nil, err
	}
	return pages, nil
}

// readPageRetried reads one page with bounded retry; each retry
// charges backoff time and re-rolls the page's fault decisions.
func (p *Pool) readPageRetried(space disk.SpaceID, pageNo int64) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		pages, err := p.readVerified(space, pageNo, 1)
		if err == nil {
			return pages[0], nil
		}
		if attempt+1 >= MaxReadRetries || !disk.IsTransient(err) {
			return nil, err
		}
		p.ch.ChargeRetryBackoff(attempt)
	}
}

func (p *Pool) readPage(space disk.SpaceID, pageNo int64) ([]byte, error) {
	pages, err := p.readRun(space, pageNo, 1)
	if err != nil {
		return nil, err
	}
	return pages[0], nil
}

// verifyRun checks every page of a run against its stored checksum.
func verifyRun(space disk.SpaceID, start int64, pages [][]byte) error {
	for i, page := range pages {
		if !disk.VerifyChecksum(page) {
			return fmt.Errorf("%w: space %d page %d", disk.ErrPageCorrupt, space, start+int64(i))
		}
	}
	return nil
}

// insert places a page into a frame, evicting via clock sweep if full.
// Callers hold st.mu.
func (st *state) insert(k key, data []byte) {
	if idx, ok := st.table[k]; ok { // already present (raced via GetRun)
		st.frames[idx].data = data
		st.frames[idx].ref = true
		return
	}
	for {
		f := &st.frames[st.hand]
		slot := st.hand
		st.hand = (st.hand + 1) % st.capacity
		if !f.used {
			*f = frame{key: k, data: data, ref: true, used: true}
			st.table[k] = slot
			return
		}
		if f.ref {
			f.ref = false
			continue
		}
		delete(st.table, f.key)
		st.stats.Evictions++
		*f = frame{key: k, data: data, ref: true, used: true}
		st.table[k] = slot
		return
	}
}

// Reset empties the cache and zeroes its counters, simulating the cold
// buffer cache the paper starts every measured query with. The frame
// array and the lookup map are cleared in place and reused, so a
// benchmark resetting between queries does not churn the allocator.
//
// Reset is not safe to run while other views are scanning; the facade
// guards its ColdCache entry point against open scans.
func (p *Pool) Reset() {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range st.frames {
		st.frames[i] = frame{}
	}
	clear(st.table)
	st.hand = 0
	st.stats = Stats{}
}

// InvalidatePage drops one cached page, if present; callers must
// invoke it after an in-place page write (heap inserts).
func (p *Pool) InvalidatePage(space disk.SpaceID, pageNo int64) {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	k := key{space, pageNo}
	if idx, ok := st.table[k]; ok {
		st.frames[idx] = frame{}
		delete(st.table, k)
	}
}

// InvalidateSpace drops every cached page of the space; callers must
// invoke it after writing to a space outside the pool (bulk loads).
func (p *Pool) InvalidateSpace(space disk.SpaceID) {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for k, idx := range st.table {
		if k.space == space {
			st.frames[idx] = frame{}
			delete(st.table, k)
		}
	}
}
