package plan

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of a Cache's accounting.
type CacheStats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// pushed out by capacity pressure.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Entries is the current population, Capacity the configured bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// Cache is a mutex-guarded LRU keyed by canonical shape strings. It
// stores opaque values (the facade stores compiled plan templates) and
// is safe for concurrent use; a Get refreshes recency, a Put on a full
// cache evicts the least recently used entry.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits, misses, evictions uint64
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key string
	val any
}

// NewCache creates a cache bounded to capacity entries. Capacity must
// be positive — a disabled cache is represented by no cache at all.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value and refreshes its recency.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or refreshes) a value, evicting the LRU entry when the
// cache is full.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
	}
}
