// Plan templates: the structural half of the prepare → bind → execute
// query lifecycle.
//
// A Template captures everything about a query that does NOT depend on
// the constant values of its predicates: which tables it reads, which
// column each conjunct lands on, the join tree shape and its resolved
// join columns, the projection/grouping/ordering schemas. Building one
// does the expensive work — name resolution, schema construction,
// conjunct routing — exactly once; it can then be cached DB-wide (see
// Cache) and shared by any number of executions.
//
// The constants live outside the template as bind-time Values: each
// predicate bound references either a positional literal slot (filled
// from the query that produced the canonical shape) or a named
// parameter (filled from an explicit bind set). FoldRange applies the
// comparison semantics (Eq, Lt, …) to the resolved scalars at bind
// time, reproducing exactly what the literal constructors compute
// eagerly — so a bound execution is value-for-value identical to the
// equivalent literal query.
//
// Everything estimate-sensitive — driving-conjunct choice, access-path
// selection, hash-join build side, parallelism clamping — is
// deliberately NOT in the template: the facade re-decides it at every
// bind from the then-current statistics, which is what lets one
// prepared statement flip its driving index between two bind sets.
package plan

import (
	"math"

	"smoothscan/internal/exec"
	"smoothscan/internal/tuple"
)

// Value is a bind-time scalar source: a named parameter, or a
// positional literal slot filled from the query that was canonicalised
// into the template's shape key.
type Value struct {
	// Param is the parameter name; empty for a literal slot.
	Param string
	// Slot indexes the execution's literal vector when Param is empty.
	Slot int
}

// PredKind selects the comparison semantics a predicate's bound
// scalars fold into (mirroring the facade's Pred constructors).
type PredKind int

// Predicate kinds.
const (
	// KindBetween matches lo <= v < hi (two bound scalars).
	KindBetween PredKind = iota
	// KindEq matches v == x.
	KindEq
	// KindLt matches v < x.
	KindLt
	// KindLe matches v <= x.
	KindLe
	// KindGt matches v > x.
	KindGt
	// KindGe matches v >= x.
	KindGe
)

// NumArgs returns how many bound scalars the kind folds (Between takes
// two, the comparisons one).
func (k PredKind) NumArgs() int {
	if k == KindBetween {
		return 2
	}
	return 1
}

// FoldRange folds the kind's bound scalars into a half-open [lo, hi)
// range, with exactly the math.MaxInt64 edge handling of the eager
// literal constructors (an Eq/Gt of MaxInt64 matches nothing, a Le of
// it saturates). b is ignored except for KindBetween.
func FoldRange(k PredKind, a, b int64) (lo, hi int64) {
	switch k {
	case KindBetween:
		return a, b
	case KindEq:
		if a == math.MaxInt64 {
			return a, a
		}
		return a, a + 1
	case KindLt:
		return math.MinInt64, a
	case KindLe:
		if a == math.MaxInt64 {
			return math.MinInt64, a
		}
		return math.MinInt64, a + 1
	case KindGt:
		if a == math.MaxInt64 {
			return a, a
		}
		return a + 1, math.MaxInt64
	case KindGe:
		return a, math.MaxInt64
	default:
		return 0, 0
	}
}

// CondT is one conjunct routed to a table input, its column resolved
// against that table's schema.
type CondT struct {
	// Col is the column index in the owning input's base schema.
	Col int
	// Name is the column name (plan rendering, driving-pick by index).
	Name string
	// Kind selects the fold semantics.
	Kind PredKind
	// A and B are the bound scalars (B only for KindBetween).
	A, B Value
}

// AccessT is the structural slice of one table input: its schema and
// the conjuncts routed to it, grouped per column. Which conjunct
// drives the scan, the access path and the parallelism are bind-time
// decisions and live outside the template.
type AccessT struct {
	// Table names the input's table.
	Table string
	// Schema is the table's row schema.
	Schema *tuple.Schema
	// Conds are the conjuncts routed to this input, in Where order.
	Conds []CondT
	// Merged groups Conds indices per column, groups in first-mention
	// order — the ranges of one group intersect into one predicate at
	// bind time.
	Merged [][]int
}

// JoinT is one stage of the left-deep join tree with its equi-join
// columns resolved. Algorithm and build side are bind-time decisions.
type JoinT struct {
	// LeftCol indexes the accumulated left schema, RightCol the right
	// input's base schema.
	LeftCol, RightCol int
	// LeftName / RightName are the resolved column names.
	LeftName, RightName string
	// Joined is the stage's output schema (left ++ right with collision
	// renaming), precomputed so bind never rebuilds schemas.
	Joined *tuple.Schema
}

// Template is the compiled structure of a query: the outcome of the
// prepare phase, immutable once built, safe to share across
// goroutines and executions.
type Template struct {
	// Inputs are the base-table accesses, driving table first.
	Inputs []AccessT
	// Joins holds len(Inputs)-1 stages of the left-deep join tree.
	Joins []JoinT
	// Base is the scan/join output schema (Inputs[0].Schema when there
	// are no joins, the last Joined otherwise).
	Base *tuple.Schema
	// SelIdx projects Base onto the Select list (nil = no projection);
	// SelSchema is the projected schema (== Base when SelIdx is nil).
	SelIdx    []int
	SelSchema *tuple.Schema
	// GroupIdx is the grouping column in SelSchema; -1 = no grouping.
	GroupIdx  int
	AggSpecs  []exec.AggSpec
	AggSchema *tuple.Schema
	// OrderIdx is the ORDER BY column in the pre-sort schema; -1 = no
	// ordering. OrderName is its column name (the bind phase compares
	// it against the bind-chosen driving column to elide the sort).
	OrderIdx  int
	OrderName string
	// FreeOrderCol names the column whose native scan order would
	// satisfy the ORDER BY for free on the driving input ("" = none).
	FreeOrderCol string
	// HasLim / Limit carry the LIMIT clause; the count is a bind-time
	// Value like any other constant.
	HasLim bool
	Limit  Value
	// Out is the final output schema.
	Out *tuple.Schema
	// Params lists the distinct named parameters in first-use order.
	Params []string
	// Slots is the length of the positional literal vector.
	Slots int
}

// HasParam reports whether name is one of the template's parameters.
func (t *Template) HasParam(name string) bool {
	for _, p := range t.Params {
		if p == name {
			return true
		}
	}
	return false
}
