package plan

import (
	"fmt"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/tuple"
)

// ScanTemplate is the plan layer's compile-once/bind-many surface for
// a single table access: a ScanSpec whose structure (path, index,
// residuals, parallelism) is validated up front, leaving only the
// driving predicate to be bound per execution. Internal callers that
// cannot reach the public prepared-statement facade (the TPC-H plans
// and the concurrency harness live beneath it) share the lifecycle
// through this type instead: validate once, then bind a fresh operator
// tree per query with zero re-validation and zero device I/O.
//
// A ScanTemplate is immutable and safe for concurrent Bind calls; each
// Bind constructs an independent operator tree (operators themselves
// are single-use and stateful).
type ScanTemplate struct {
	spec ScanSpec
}

// NewScanTemplate validates the spec's structure — known access path,
// index present for the paths that need one — and captures it. The
// spec's Pred is ignored; it is supplied per Bind.
func NewScanTemplate(spec ScanSpec) (*ScanTemplate, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	return &ScanTemplate{spec: spec}, nil
}

// validateSpec performs Build's structural checks without building.
func validateSpec(spec ScanSpec) error {
	switch spec.Path {
	case PathFull:
		return nil
	case PathIndex, PathSort, PathSwitch, PathSmooth:
		if spec.Tree == nil {
			return fmt.Errorf("%w: %s", ErrNeedsIndex, spec.Path)
		}
		return nil
	default:
		return fmt.Errorf("plan: unknown access path %d", int(spec.Path))
	}
}

// Bind constructs the operator tree for one execution of the template
// with the given driving predicate.
func (t *ScanTemplate) Bind(pred tuple.RangePred) (*Scan, error) {
	spec := t.spec
	spec.Pred = pred
	return Build(spec)
}

// BindOn is Bind with a caller-supplied buffer pool (or pool view) —
// concurrent clients sharing one template each bind through their own
// view so CPU accounting stays per-client.
func (t *ScanTemplate) BindOn(pool *bufferpool.Pool, pred tuple.RangePred) (*Scan, error) {
	spec := t.spec
	spec.Pool = pool
	spec.Pred = pred
	return Build(spec)
}
