package plan

import (
	"context"
	"errors"
	"testing"

	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// buildTable loads n rows (id, val) with val = i % domain and a
// secondary index on val.
func buildTable(t *testing.T, n, domain int64) (*heap.File, *btree.Tree, *bufferpool.Pool) {
	t.Helper()
	dev := disk.NewDevice(disk.HDD)
	file, err := heap.Create(dev, tuple.Ints(2))
	if err != nil {
		t.Fatal(err)
	}
	b := file.NewBuilder()
	for i := int64(0); i < n; i++ {
		if err := b.Append(tuple.IntsRow(i, i%domain)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	tree, err := btree.BuildOnColumn(dev, file, 1)
	if err != nil {
		t.Fatal(err)
	}
	return file, tree, bufferpool.New(dev, 256)
}

func TestBuildPathsAgree(t *testing.T) {
	file, tree, pool := buildTable(t, 20_000, 500)
	pred := tuple.RangePred{Col: 1, Lo: 100, Hi: 200}
	want := int64(0)
	for _, spec := range []ScanSpec{
		{File: file, Pool: pool, Pred: pred, Path: PathFull},
		{File: file, Pool: pool, Tree: tree, Pred: pred, Path: PathIndex},
		{File: file, Pool: pool, Tree: tree, Pred: pred, Path: PathSort},
		{File: file, Pool: pool, Tree: tree, Pred: pred, Path: PathSwitch, SwitchThreshold: 50},
		{File: file, Pool: pool, Tree: tree, Pred: pred, Path: PathSmooth},
		{File: file, Pool: pool, Tree: tree, Pred: pred, Path: PathSmooth, Parallelism: 4},
		{File: file, Pool: pool, Pred: pred, Path: PathFull, Parallelism: 4},
	} {
		built, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Path, err)
		}
		n, err := exec.Count(built.Op)
		if err != nil {
			t.Fatalf("%s: %v", spec.Path, err)
		}
		if want == 0 {
			want = n
		}
		if n != want {
			t.Errorf("%s (par=%d) produced %d rows, want %d", spec.Path, spec.Parallelism, n, want)
		}
		if spec.Path == PathSmooth && spec.Parallelism <= 1 && built.Smooth == nil {
			t.Error("serial smooth scan did not expose its operator")
		}
		if spec.Path == PathSmooth && spec.Parallelism > 1 && len(built.Workers) != 4 {
			t.Errorf("parallel smooth exposed %d workers", len(built.Workers))
		}
	}
}

func TestBuildResidualPlacement(t *testing.T) {
	file, tree, pool := buildTable(t, 10_000, 500)
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 500}
	residual := []tuple.RangePred{{Col: 0, Lo: 0, Hi: 1000}}

	for _, tc := range []struct {
		spec ScanSpec
		want bool
	}{
		{ScanSpec{File: file, Pool: pool, Pred: pred, Residual: residual, Path: PathFull}, true},
		{ScanSpec{File: file, Pool: pool, Tree: tree, Pred: pred, Residual: residual, Path: PathSmooth}, true},
		{ScanSpec{File: file, Pool: pool, Tree: tree, Pred: pred, Residual: residual, Path: PathSmooth, Smooth: smoothOrdered()}, false},
		{ScanSpec{File: file, Pool: pool, Tree: tree, Pred: pred, Residual: residual, Path: PathIndex}, false},
	} {
		built, err := Build(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		if built.ResidualPushed != tc.want {
			t.Errorf("%s (ordered=%v): ResidualPushed = %v, want %v",
				tc.spec.Path, tc.spec.Smooth.Ordered, built.ResidualPushed, tc.want)
		}
		n, err := exec.Count(built.Op)
		if err != nil {
			t.Fatal(err)
		}
		if built.ResidualPushed && n != 1000 {
			t.Errorf("%s: pushed residual produced %d rows, want 1000", tc.spec.Path, n)
		}
		if !built.ResidualPushed && n != 10_000 {
			t.Errorf("%s: unpushed residual produced %d rows, want 10000 (caller filters)", tc.spec.Path, n)
		}
	}
}

func TestBuildNeedsIndex(t *testing.T) {
	file, _, pool := buildTable(t, 1_000, 10)
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 5}
	for _, p := range []Path{PathSmooth, PathIndex, PathSort, PathSwitch} {
		if _, err := Build(ScanSpec{File: file, Pool: pool, Pred: pred, Path: p}); !errors.Is(err, ErrNeedsIndex) {
			t.Errorf("%s without index: %v, want ErrNeedsIndex", p, err)
		}
	}
	if _, err := Build(ScanSpec{File: file, Pool: pool, Pred: pred, Path: Path(99)}); err == nil {
		t.Error("unknown path accepted")
	}
}

func TestBuildParallelCancellation(t *testing.T) {
	file, tree, pool := buildTable(t, 40_000, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	built, err := Build(ScanSpec{
		File: file, Pool: pool, Tree: tree,
		Pred:        tuple.RangePred{Col: 1, Lo: 0, Hi: 1000},
		Path:        PathSmooth,
		Parallelism: 4,
		Ctx:         ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Op.Open(); err != nil {
		t.Fatal(err)
	}
	b := tuple.NewBatchFor(file.Schema(), 64)
	if _, err := exec.NextBatch(built.Op, b); err != nil {
		t.Fatal(err)
	}
	cancel()
	for i := 0; i < 1000; i++ {
		n, err := exec.NextBatch(built.Op, b)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("NextBatch error = %v, want context.Canceled", err)
			}
			break
		}
		if n == 0 {
			t.Fatal("scan ended cleanly despite cancellation")
		}
	}
	if err := built.Op.Close(); err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("Close = %v", err)
	}
}

func smoothOrdered() core.Config {
	return core.Config{Ordered: true}
}
