package plan

import (
	"math"
	"testing"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/tuple"
	"smoothscan/internal/workload"
)

// TestFoldRange pins the bind-time fold against the eager literal
// semantics, including the MaxInt64 edges the facade constructors
// handle specially.
func TestFoldRange(t *testing.T) {
	max := int64(math.MaxInt64)
	min := int64(math.MinInt64)
	cases := []struct {
		name   string
		kind   PredKind
		a, b   int64
		lo, hi int64
	}{
		{"between", KindBetween, 3, 9, 3, 9},
		{"eq", KindEq, 5, 0, 5, 6},
		{"eq-max", KindEq, max, 0, max, max}, // unrepresentable: empty
		{"lt", KindLt, 7, 0, min, 7},
		{"le", KindLe, 7, 0, min, 8},
		{"le-max", KindLe, max, 0, min, max},
		{"gt", KindGt, 7, 0, 8, max},
		{"gt-max", KindGt, max, 0, max, max}, // matches nothing
		{"ge", KindGe, 7, 0, 7, max},
	}
	for _, c := range cases {
		lo, hi := FoldRange(c.kind, c.a, c.b)
		if lo != c.lo || hi != c.hi {
			t.Errorf("%s: FoldRange = [%d,%d), want [%d,%d)", c.name, lo, hi, c.lo, c.hi)
		}
	}
	if n := KindBetween.NumArgs(); n != 2 {
		t.Errorf("between takes %d args", n)
	}
	if n := KindEq.NumArgs(); n != 1 {
		t.Errorf("eq takes %d args", n)
	}
}

// TestCacheLRU covers hit/miss/eviction accounting and recency.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now LRU; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("evicted entry still present")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Errorf("recency-refreshed entry evicted: %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Refreshing an existing key must not evict.
	c.Put("a", 10)
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Errorf("Put refresh lost: %v", v)
	}
	if got := c.Stats().Entries; got != 2 {
		t.Errorf("entries after refresh = %d", got)
	}
}

// TestScanTemplateBindMatchesBuild: binding predicates through a
// validated template yields the same rows and simulated cost as fresh
// Build calls.
func TestScanTemplateBindMatchesBuild(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 20_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, int(tab.File.NumPages())+16)
	spec := ScanSpec{File: tab.File, Pool: pool, Tree: tab.Index, Path: PathSmooth}
	tm, err := NewScanTemplate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int64{50, 500, 5_000} {
		pred := tuple.RangePred{Col: tab.IndexCol, Lo: 100, Hi: 100 + width}

		pool.Reset()
		dev.ResetStats()
		spec.Pred = pred
		direct, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		nDirect, err := exec.Count(direct.Op)
		if err != nil {
			t.Fatal(err)
		}
		costDirect := dev.Stats().Time()

		pool.Reset()
		dev.ResetStats()
		bound, err := tm.Bind(pred)
		if err != nil {
			t.Fatal(err)
		}
		nBound, err := exec.Count(bound.Op)
		if err != nil {
			t.Fatal(err)
		}
		if nBound != nDirect {
			t.Errorf("width %d: template bind produced %d rows, direct build %d", width, nBound, nDirect)
		}
		if got := dev.Stats().Time(); got != costDirect {
			t.Errorf("width %d: template bind cost %.3f, direct build %.3f", width, got, costDirect)
		}
	}
}

// TestScanTemplateValidates: structural errors surface at template
// construction, not at bind.
func TestScanTemplateValidates(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 1_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, 64)
	if _, err := NewScanTemplate(ScanSpec{File: tab.File, Pool: pool, Path: PathIndex}); err == nil {
		t.Error("index path without a tree accepted")
	}
	if _, err := NewScanTemplate(ScanSpec{File: tab.File, Pool: pool, Path: Path(99)}); err == nil {
		t.Error("unknown path accepted")
	}
	if _, err := NewScanTemplate(ScanSpec{File: tab.File, Pool: pool, Path: PathFull}); err != nil {
		t.Errorf("full scan template refused: %v", err)
	}
}
