// Package plan is the engine's plan-construction layer: it turns a
// declarative scan specification — table, driving predicate, residual
// conjuncts, access path, morphing configuration, parallelism — into
// the batched exec operator tree that executes it (serial Smooth /
// Full / Index / Sort / Switch scans, or the page-sharded parallel
// subsystem with its fan-in or ordered merge).
//
// Every workload in the repository goes through this one constructor:
// the public Query builder and DB.Scan facade, the TPC-H query plans,
// and the concurrency harness. The optimizer (internal/optimizer)
// decides *which* spec to build; this package owns *how* a spec
// becomes operators, so access-path construction has exactly one home.
package plan

import (
	"context"
	"fmt"

	"smoothscan/internal/access"
	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/heap"
	"smoothscan/internal/parallel"
	"smoothscan/internal/tuple"
)

// Path selects the access-path operator family.
type Path int

// Access paths a ScanSpec can request.
const (
	// PathSmooth is the adaptive Smooth Scan.
	PathSmooth Path = iota
	// PathFull is a sequential full table scan.
	PathFull
	// PathIndex is a classic non-clustered index scan.
	PathIndex
	// PathSort is a sort scan (bitmap heap scan).
	PathSort
	// PathSwitch is the binary-switching adaptive baseline.
	PathSwitch
)

func (p Path) String() string {
	switch p {
	case PathSmooth:
		return "smooth-scan"
	case PathFull:
		return "full-scan"
	case PathIndex:
		return "index-scan"
	case PathSort:
		return "sort-scan"
	case PathSwitch:
		return "switch-scan"
	default:
		return fmt.Sprintf("Path(%d)", int(p))
	}
}

// ScanSpec describes one table access declaratively.
type ScanSpec struct {
	// File is the heap file to scan.
	File *heap.File
	// Pool is the buffer pool; parallel builds derive one private view
	// per worker from it.
	Pool *bufferpool.Pool
	// Tree is the secondary index on Pred.Col; required by every path
	// except PathFull.
	Tree *btree.Tree
	// Pred is the driving range predicate.
	Pred tuple.RangePred
	// Residual holds extra conjunctive predicates. Paths that support
	// it (full scan; unordered Smooth Scan) evaluate them inside the
	// page decode so non-matching rows are never materialised; for the
	// rest the caller must filter above the scan — Build reports which
	// through Scan.ResidualPushed.
	Residual []tuple.RangePred
	// Path selects the access path.
	Path Path
	// Smooth is the Smooth Scan configuration (policy, trigger,
	// ordering, estimates, budgets) for PathSmooth.
	Smooth core.Config
	// Ordered requests index-key output order from PathSort (the
	// other paths take it from Smooth.Ordered or deliver it natively).
	Ordered bool
	// SwitchThreshold is PathSwitch's result-count switch point.
	SwitchThreshold int64
	// Parallelism is the worker count; values <= 1 build the classic
	// serial operator. Only PathSmooth and PathFull parallelise.
	Parallelism int
	// Ctx cancels a parallel scan between batches; nil means no
	// cancellation. Serial operators are cancelled by their driver
	// (the facade checks per batch refill).
	Ctx context.Context
}

// Scan is a built table access.
type Scan struct {
	// Op is the root operator (the scan itself, or the parallel merge).
	Op exec.Operator
	// Smooth is the serial Smooth Scan operator (nil otherwise).
	Smooth *core.SmoothScan
	// Workers holds the per-shard Smooth Scans of a parallel smooth
	// build (nil otherwise).
	Workers []*core.SmoothScan
	// ResidualPushed reports whether Spec.Residual was evaluated
	// inside the scan; when false the caller must apply the residual
	// conjuncts itself (e.g. with exec.Filter).
	ResidualPushed bool
}

// ErrNeedsIndex is wrapped by Build when the requested path requires a
// secondary index on the predicate column and none was given.
var ErrNeedsIndex = fmt.Errorf("plan: access path requires an index")

// Build constructs the operator tree for the spec.
func Build(spec ScanSpec) (*Scan, error) {
	par := spec.Parallelism
	if int64(par) > spec.File.NumPages() {
		par = int(spec.File.NumPages())
	}
	switch spec.Path {
	case PathFull:
		if par > 1 {
			op, err := parallelFull(spec, par)
			if err != nil {
				return nil, err
			}
			return &Scan{Op: op, ResidualPushed: true}, nil
		}
		fs := access.NewFullScan(spec.File, spec.Pool, spec.Pred)
		fs.SetResidual(spec.Residual)
		return &Scan{Op: fs, ResidualPushed: true}, nil
	case PathIndex:
		if spec.Tree == nil {
			return nil, fmt.Errorf("%w: %s", ErrNeedsIndex, spec.Path)
		}
		return &Scan{Op: access.NewIndexScan(spec.File, spec.Pool, spec.Tree, spec.Pred)}, nil
	case PathSort:
		if spec.Tree == nil {
			return nil, fmt.Errorf("%w: %s", ErrNeedsIndex, spec.Path)
		}
		return &Scan{Op: access.NewSortScan(spec.File, spec.Pool, spec.Tree, spec.Pred, spec.Ordered)}, nil
	case PathSwitch:
		if spec.Tree == nil {
			return nil, fmt.Errorf("%w: %s", ErrNeedsIndex, spec.Path)
		}
		return &Scan{Op: access.NewSwitchScan(spec.File, spec.Pool, spec.Tree, spec.Pred, spec.SwitchThreshold)}, nil
	case PathSmooth:
		if spec.Tree == nil {
			return nil, fmt.Errorf("%w: %s", ErrNeedsIndex, spec.Path)
		}
		cfg := spec.Smooth
		pushed := !cfg.Ordered
		if pushed {
			cfg.Residual = spec.Residual
		}
		if par > 1 {
			op, workers, err := parallelSmooth(spec, cfg, par)
			if err != nil {
				return nil, err
			}
			return &Scan{Op: op, Workers: workers, ResidualPushed: pushed}, nil
		}
		ss, err := core.NewSmoothScan(spec.File, spec.Pool, spec.Tree, spec.Pred, cfg)
		if err != nil {
			return nil, err
		}
		return &Scan{Op: ss, Smooth: ss, ResidualPushed: pushed}, nil
	default:
		return nil, fmt.Errorf("plan: unknown access path %d", int(spec.Path))
	}
}

// parallelSmooth builds one independently-morphing Smooth Scan per
// disjoint heap page shard and merges them: an unordered fan-in, or —
// when base.Ordered — a k-way merge reproducing the serial (key, TID)
// output order. Each shard runs the query's base config with its page
// bounds set and the whole-query knobs (cardinality estimate, SLA
// bound, Result Cache budget) split evenly across the shards.
func parallelSmooth(spec ScanSpec, base core.Config, par int) (*parallel.Scan, []*core.SmoothScan, error) {
	shards := parallel.PartitionPages(spec.File.NumPages(), par)
	n := int64(len(shards))
	workers := make([]parallel.Worker, len(shards))
	smooths := make([]*core.SmoothScan, len(shards))
	for i, sh := range shards {
		view := spec.Pool.View()
		cfg := base
		cfg.EstimatedCard = (base.EstimatedCard + n - 1) / n
		cfg.SLABound = base.SLABound / float64(n)
		cfg.ResultCacheBudget = splitBudget(base.ResultCacheBudget, n)
		cfg.PageLo = sh.PageLo
		cfg.PageHi = sh.PageHi
		ss, err := core.NewSmoothScan(spec.File, view, spec.Tree, spec.Pred, cfg)
		if err != nil {
			return nil, nil, err
		}
		smooths[i] = ss
		workers[i] = parallel.Worker{Op: ss, Flush: view.FlushCPU}
	}
	op, err := parallel.NewScan(workers, parallel.Options{
		Schema:  spec.File.Schema(),
		Ordered: base.Ordered,
		KeyCol:  spec.Pred.Col,
		Ctx:     spec.Ctx,
	})
	if err != nil {
		return nil, nil, err
	}
	return op, smooths, nil
}

// parallelFull builds one full-scan worker per disjoint heap page
// shard, merged through an unordered fan-in.
func parallelFull(spec ScanSpec, par int) (*parallel.Scan, error) {
	shards := parallel.PartitionPages(spec.File.NumPages(), par)
	workers := make([]parallel.Worker, len(shards))
	for i, sh := range shards {
		view := spec.Pool.View()
		fs := access.NewFullScanRange(spec.File, view, spec.Pred, sh.PageLo, sh.PageHi)
		fs.SetResidual(spec.Residual)
		workers[i] = parallel.Worker{Op: fs, Flush: view.FlushCPU}
	}
	return parallel.NewScan(workers, parallel.Options{Schema: spec.File.Schema(), Ctx: spec.Ctx})
}

// JoinAlgo selects the join operator family.
type JoinAlgo int

// Join algorithms a JoinSpec can request.
const (
	// JoinHash is the batched build/probe hash equi-join.
	JoinHash JoinAlgo = iota
	// JoinMerge is the batched merge equi-join; both inputs must
	// arrive sorted ascending on their join columns.
	JoinMerge
)

func (a JoinAlgo) String() string {
	switch a {
	case JoinHash:
		return "hash"
	case JoinMerge:
		return "merge"
	default:
		return fmt.Sprintf("JoinAlgo(%d)", int(a))
	}
}

// JoinSpec describes one equi-join over two built inputs. Like
// ScanSpec it is declarative: the optimizer decides build side and
// algorithm, BuildJoin owns how the spec becomes an operator.
type JoinSpec struct {
	// Left and Right are the join inputs (scans, or earlier joins of a
	// left-deep tree). The output schema is always Left ++ Right.
	Left, Right exec.Operator
	// LeftCol / RightCol are the equi-join columns in each input's
	// schema.
	LeftCol, RightCol int
	// Algo selects hash or merge.
	Algo JoinAlgo
	// BuildLeft drains the left input into the hash table instead of
	// the right (JoinHash only; the planner puts the smaller estimated
	// input on the build side).
	BuildLeft bool
	// Dev accounts the join's CPU charges; nil skips accounting.
	Dev *disk.Device
}

// BuildJoin constructs the batched join operator for the spec. The
// returned operator also implements exec.JoinStatser.
func BuildJoin(spec JoinSpec) (exec.BatchOperator, error) {
	if spec.Left == nil || spec.Right == nil {
		return nil, fmt.Errorf("plan: join requires two inputs")
	}
	lw := spec.Left.Schema().NumCols()
	rw := spec.Right.Schema().NumCols()
	if spec.LeftCol < 0 || spec.LeftCol >= lw {
		return nil, fmt.Errorf("plan: join left column %d outside schema %s", spec.LeftCol, spec.Left.Schema())
	}
	if spec.RightCol < 0 || spec.RightCol >= rw {
		return nil, fmt.Errorf("plan: join right column %d outside schema %s", spec.RightCol, spec.Right.Schema())
	}
	switch spec.Algo {
	case JoinHash:
		return exec.NewHashJoinBatch(spec.Left, spec.Right, spec.Dev, spec.LeftCol, spec.RightCol, spec.BuildLeft), nil
	case JoinMerge:
		return exec.NewMergeJoinBatch(spec.Left, spec.Right, spec.Dev, spec.LeftCol, spec.RightCol), nil
	default:
		return nil, fmt.Errorf("plan: unknown join algorithm %d", int(spec.Algo))
	}
}

// splitBudget divides a byte budget across n workers, keeping a
// non-zero per-worker slice whenever the whole budget was non-zero.
func splitBudget(budget, n int64) int64 {
	if budget <= 0 {
		return 0
	}
	per := budget / n
	if per < 1 {
		per = 1
	}
	return per
}
