package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"smoothscan/internal/disk"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xab}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %#02x, want %#02x", i, typ, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want EOF", err)
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	// A forged length field must be rejected before any allocation of
	// that size happens.
	hdr := []byte{0xff, 0xff, 0xff, 0xff, MsgBatch}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized frame: %v, want ErrMalformed", err)
	}
	// Zero length is malformed too: every frame carries at least a type.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-length frame: %v, want ErrMalformed", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	spec := QuerySpec{
		Table: "items",
		Preds: []PredSpec{
			{Col: "i_date", Kind: PredBetween, A: ArgSpec{Lit: 10}, B: ArgSpec{Param: "hi"}},
			{Col: "i_qty", Kind: PredGe, A: ArgSpec{Lit: -3}},
		},
		Joins:    []JoinSpec{{Table: "orders", LeftCol: "i_order", RightCol: "o_id", Opts: OptsSpec{Path: 2}}},
		Select:   []string{"i_id", "o_id"},
		HasSel:   true,
		GroupCol: "o_pri",
		Aggs:     []AggSpec{{Kind: AggSum, Col: "i_qty", As: "total"}, {Kind: AggCount}},
		HasAgg:   true,
		OrderCol: "o_pri",
		HasOrd:   true,
		Limit:    ArgSpec{Lit: 100},
		HasLim:   true,
		Opts:     OptsSpec{Path: 1, Ordered: true, EstimatedRows: 5, SLABound: 1.5, Parallelism: 4},
	}
	cases := []struct {
		name    string
		marshal []byte
		decode  func([]byte) (any, error)
		want    any
	}{
		{"hello", Hello{Magic: Magic, Version: Version}.Marshal(),
			func(p []byte) (any, error) { return DecodeHello(p) }, Hello{Magic: Magic, Version: Version}},
		{"hellook", HelloOK{Version: 7}.Marshal(),
			func(p []byte) (any, error) { return DecodeHelloOK(p) }, HelloOK{Version: 7}},
		{"prepare", Prepare{Spec: spec}.Marshal(),
			func(p []byte) (any, error) { return DecodePrepare(p) }, Prepare{Spec: spec}},
		{"query", Query{Spec: spec}.Marshal(),
			func(p []byte) (any, error) { return DecodeQuery(p) }, Query{Spec: spec}},
		{"prepareok", PrepareOK{StmtID: 9, Params: []string{"lo", "hi"}}.Marshal(),
			func(p []byte) (any, error) { return DecodePrepareOK(p) }, PrepareOK{StmtID: 9, Params: []string{"lo", "hi"}}},
		{"execute", Execute{StmtID: 3, Binds: []BindKV{{Name: "lo", Val: -9}, {Name: "hi", Val: math.MaxInt64}}}.Marshal(),
			func(p []byte) (any, error) { return DecodeExecute(p) },
			Execute{StmtID: 3, Binds: []BindKV{{Name: "lo", Val: -9}, {Name: "hi", Val: math.MaxInt64}}}},
		{"execok", ExecOK{Cols: []string{"a", "b"}}.Marshal(),
			func(p []byte) (any, error) { return DecodeExecOK(p) }, ExecOK{Cols: []string{"a", "b"}}},
		{"fetch", Fetch{MaxRows: 512}.Marshal(),
			func(p []byte) (any, error) { return DecodeFetch(p) }, Fetch{MaxRows: 512}},
		{"end-more", End{More: true}.Marshal(),
			func(p []byte) (any, error) { return DecodeEnd(p) }, End{More: true}},
		{"end-summary", End{Summary: ExecSummary{Rows: 4, Retries: 1, FaultsSeen: 2, PlanCacheHit: true, Degraded: []string{"parallel->serial"}}}.Marshal(),
			func(p []byte) (any, error) { return DecodeEnd(p) },
			End{Summary: ExecSummary{Rows: 4, Retries: 1, FaultsSeen: 2, PlanCacheHit: true, Degraded: []string{"parallel->serial"}}}},
		{"error", ErrorMsg{Class: ClassCorrupt, Msg: "page 7"}.Marshal(),
			func(p []byte) (any, error) { return DecodeError(p) }, ErrorMsg{Class: ClassCorrupt, Msg: "page 7"}},
		{"closestmt", CloseStmt{StmtID: 12}.Marshal(),
			func(p []byte) (any, error) { return DecodeCloseStmt(p) }, CloseStmt{StmtID: 12}},
		{"stats", ServerStats{SessionsOpen: 1, QueriesServed: 2, RowsSent: 3, DeviceSimCost: 4.5, PlanCacheHits: 6}.Marshal(),
			func(p []byte) (any, error) { return DecodeServerStats(p) },
			ServerStats{SessionsOpen: 1, QueriesServed: 2, RowsSent: 3, DeviceSimCost: 4.5, PlanCacheHits: 6}},
		{"faultctl", FaultCtl{Seed: -5, Rules: []FaultRuleSpec{{Kind: 2, Rate: 0.25, ExtraCost: 50}}}.Marshal(),
			func(p []byte) (any, error) { return DecodeFaultCtl(p) },
			FaultCtl{Seed: -5, Rules: []FaultRuleSpec{{Kind: 2, Rate: 0.25, ExtraCost: 50}}}},
	}
	for _, tc := range cases {
		got, err := tc.decode(tc.marshal)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s: round trip mismatch:\n got  %+v\n want %+v", tc.name, got, tc.want)
		}
		// Trailing garbage after a well-formed message is malformed.
		if _, err := tc.decode(append(append([]byte{}, tc.marshal...), 0x00)); err == nil {
			t.Fatalf("%s: trailing byte accepted", tc.name)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	for _, tc := range []struct{ rows, width int }{
		{0, 3}, {1, 1}, {7, 4}, {1024, 10}, {65536, 1},
	} {
		flat := make([]int64, tc.rows*tc.width)
		for i := range flat {
			// Mixed magnitudes and signs exercise the zigzag coding.
			flat[i] = int64((i*2654435761)%1000) - 500
		}
		if tc.rows > 0 {
			flat[0] = math.MinInt64
			flat[len(flat)-1] = math.MaxInt64
		}
		var e Encoder
		e.AppendBatch(flat, tc.rows, tc.width)
		got, rows, width, err := DecodeBatchPayload(e.B, nil)
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.rows, tc.width, err)
		}
		if rows != tc.rows || width != tc.width {
			t.Fatalf("%dx%d: decoded %dx%d", tc.rows, tc.width, rows, width)
		}
		if len(flat) > 0 && !reflect.DeepEqual(got[:rows*width], flat) {
			t.Fatalf("%dx%d: payload mismatch", tc.rows, tc.width)
		}
	}
}

func TestBatchDecodeBounds(t *testing.T) {
	var e Encoder
	e.Uvarint(uint64(maxBatchRows + 1))
	e.Uvarint(1)
	if _, _, _, err := DecodeBatchPayload(e.B, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized rows: %v, want ErrMalformed", err)
	}
	e = Encoder{}
	e.Uvarint(16) // claims 16 rows x 1 col, but carries no cells
	e.Uvarint(1)
	if _, _, _, err := DecodeBatchPayload(e.B, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated cells: %v, want ErrMalformed", err)
	}
}

func TestErrorClassPreservation(t *testing.T) {
	cases := []struct {
		class    byte
		sentinel error
	}{
		{ClassTransient, disk.ErrInjected},
		{ClassPermanent, disk.ErrPermanentFault},
		{ClassCorrupt, disk.ErrPageCorrupt},
		{ClassCancelled, context.Canceled},
		{ClassOverloaded, ErrOverloaded},
		{ClassEvicted, ErrStmtEvicted},
		{ClassIdle, ErrSessionClosed},
	}
	for _, tc := range cases {
		err := ErrorMsg{Class: tc.class, Msg: "x"}.Err()
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("class %s does not unwrap to %v", ClassName(tc.class), tc.sentinel)
		}
		// The class must survive a classify round trip: server-side
		// Classify of the sentinel yields the class the frame carried.
		if got := Classify(err); got != tc.class {
			t.Errorf("Classify(%v) = %s, want %s", err, ClassName(got), ClassName(tc.class))
		}
	}
	// Transient injected faults must be recognisable through wrapping,
	// the property client-side retry loops depend on.
	remote := ErrorMsg{Class: ClassTransient, Msg: "injected"}.Err()
	if !disk.IsTransient(remote) {
		t.Fatal("remote transient fault not recognised by disk.IsTransient")
	}
	if disk.IsTransient(ErrorMsg{Class: ClassPermanent, Msg: "x"}.Err()) {
		t.Fatal("remote permanent fault misclassified as transient")
	}
}
