package wire

// QuerySpec is a query's structure serialised for the wire: the same
// shape the smoothscan.Query builder composes — driving table, joins,
// conjunctive predicates, projection, grouping, ordering, limit, scan
// options — with every argument either an inline literal or a named
// parameter placeholder. The server rebuilds the in-process builder
// chain from it; all semantic validation (unknown tables and columns,
// ambiguous conjuncts) happens there, in the one place that owns it.

// Decode caps: a spec announcing more elements than these is malformed.
// They are far above anything the builder API can express usefully and
// exist only to bound decoder allocations.
const (
	maxPreds   = 256
	maxJoins   = 16
	maxSelCols = 512
	maxAggs    = 64
	maxParams  = 256
	maxRules   = 64
	maxTables  = 256
)

// Predicate comparison kinds (the wire's own numbering, decoupled from
// the planner's).
const (
	PredBetween byte = 0 // lo <= v < hi (two arguments)
	PredEq      byte = 1
	PredLt      byte = 2
	PredLe      byte = 3
	PredGt      byte = 4
	PredGe      byte = 5
)

// Aggregate kinds for GroupBy.
const (
	AggSum   byte = 0
	AggCount byte = 1
	AggMin   byte = 2
	AggMax   byte = 3
)

// ArgSpec is one predicate or limit argument: a named parameter when
// Param is non-empty, the literal Lit otherwise.
type ArgSpec struct {
	Param string
	Lit   int64
}

// PredSpec is one Where conjunct.
type PredSpec struct {
	Col  string
	Kind byte
	A, B ArgSpec // B only meaningful for PredBetween
}

// OptsSpec mirrors smoothscan.ScanOptions field for field.
type OptsSpec struct {
	Path              byte
	Policy            byte
	Trigger           byte
	Ordered           bool
	EstimatedRows     int64
	SLABound          float64
	MaxRegionPages    int64
	ResultCacheBudget int64
	Parallelism       int32
}

// JoinSpec is one Join clause; Opts configures the joined table's
// access path (JoinWithOptions).
type JoinSpec struct {
	Table    string
	LeftCol  string
	RightCol string
	Opts     OptsSpec
}

// AggSpec is one GroupBy aggregate.
type AggSpec struct {
	Kind byte
	Col  string // empty for AggCount
	As   string // output column override; empty = constructor default
}

// QuerySpec carries a whole query structure.
type QuerySpec struct {
	Table    string
	Preds    []PredSpec
	Joins    []JoinSpec
	Select   []string
	HasSel   bool
	GroupCol string
	Aggs     []AggSpec
	HasAgg   bool
	OrderCol string
	HasOrd   bool
	Limit    ArgSpec
	HasLim   bool
	Opts     OptsSpec
}

func (e *Encoder) arg(a ArgSpec) {
	e.Str(a.Param)
	if a.Param == "" {
		e.Varint(a.Lit)
	}
}

func (d *Decoder) arg() ArgSpec {
	var a ArgSpec
	a.Param = d.Str()
	if a.Param == "" {
		a.Lit = d.Varint()
	}
	return a
}

func (e *Encoder) opts(o OptsSpec) {
	e.U8(o.Path)
	e.U8(o.Policy)
	e.U8(o.Trigger)
	e.Bool(o.Ordered)
	e.Varint(o.EstimatedRows)
	e.F64(o.SLABound)
	e.Varint(o.MaxRegionPages)
	e.Varint(o.ResultCacheBudget)
	e.Varint(int64(o.Parallelism))
}

func (d *Decoder) optsSpec() OptsSpec {
	var o OptsSpec
	o.Path = d.U8()
	o.Policy = d.U8()
	o.Trigger = d.U8()
	o.Ordered = d.Bool()
	o.EstimatedRows = d.Varint()
	o.SLABound = d.F64()
	o.MaxRegionPages = d.Varint()
	o.ResultCacheBudget = d.Varint()
	o.Parallelism = int32(d.Varint())
	return o
}

// AppendSpec serialises the spec into the encoder.
func (e *Encoder) AppendSpec(q *QuerySpec) {
	e.Str(q.Table)
	e.Uvarint(uint64(len(q.Preds)))
	for _, p := range q.Preds {
		e.Str(p.Col)
		e.U8(p.Kind)
		e.arg(p.A)
		if p.Kind == PredBetween {
			e.arg(p.B)
		}
	}
	e.Uvarint(uint64(len(q.Joins)))
	for _, j := range q.Joins {
		e.Str(j.Table)
		e.Str(j.LeftCol)
		e.Str(j.RightCol)
		e.opts(j.Opts)
	}
	e.Bool(q.HasSel)
	if q.HasSel {
		e.Uvarint(uint64(len(q.Select)))
		for _, c := range q.Select {
			e.Str(c)
		}
	}
	e.Bool(q.HasAgg)
	if q.HasAgg {
		e.Str(q.GroupCol)
		e.Uvarint(uint64(len(q.Aggs)))
		for _, a := range q.Aggs {
			e.U8(a.Kind)
			e.Str(a.Col)
			e.Str(a.As)
		}
	}
	e.Bool(q.HasOrd)
	if q.HasOrd {
		e.Str(q.OrderCol)
	}
	e.Bool(q.HasLim)
	if q.HasLim {
		e.arg(q.Limit)
	}
	e.opts(q.Opts)
}

// DecodeSpec reads a QuerySpec from the decoder.
func (d *Decoder) DecodeSpec() QuerySpec {
	var q QuerySpec
	q.Table = d.Str()
	if n := d.Count(maxPreds, "pred"); n > 0 {
		q.Preds = make([]PredSpec, 0, n)
		for i := 0; i < n && d.Err == nil; i++ {
			var p PredSpec
			p.Col = d.Str()
			p.Kind = d.U8()
			p.A = d.arg()
			if p.Kind == PredBetween {
				p.B = d.arg()
			}
			q.Preds = append(q.Preds, p)
		}
	}
	if n := d.Count(maxJoins, "join"); n > 0 {
		q.Joins = make([]JoinSpec, 0, n)
		for i := 0; i < n && d.Err == nil; i++ {
			var j JoinSpec
			j.Table = d.Str()
			j.LeftCol = d.Str()
			j.RightCol = d.Str()
			j.Opts = d.optsSpec()
			q.Joins = append(q.Joins, j)
		}
	}
	if q.HasSel = d.Bool(); q.HasSel {
		n := d.Count(maxSelCols, "select")
		q.Select = make([]string, 0, n)
		for i := 0; i < n && d.Err == nil; i++ {
			q.Select = append(q.Select, d.Str())
		}
	}
	if q.HasAgg = d.Bool(); q.HasAgg {
		q.GroupCol = d.Str()
		n := d.Count(maxAggs, "agg")
		q.Aggs = make([]AggSpec, 0, n)
		for i := 0; i < n && d.Err == nil; i++ {
			var a AggSpec
			a.Kind = d.U8()
			a.Col = d.Str()
			a.As = d.Str()
			q.Aggs = append(q.Aggs, a)
		}
	}
	if q.HasOrd = d.Bool(); q.HasOrd {
		q.OrderCol = d.Str()
	}
	if q.HasLim = d.Bool(); q.HasLim {
		q.Limit = d.arg()
	}
	q.Opts = d.optsSpec()
	return q
}
