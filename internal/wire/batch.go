package wire

// Batch frame codec. Result rows travel column-major: for each output
// column, its values across the batch's rows are delta-encoded
// (consecutive differences, zigzag-varint). Sorted or clustered columns
// — ids, group keys, anything an index scan emits in order — collapse
// to one or two bytes per value; the worst case degrades to plain
// varints. The flat row-major []int64 the engine hands us is strided in
// place, no transpose buffer.

// Batch decode bounds. A frame announcing more is malformed — the
// limits keep a forged header from turning into a giant allocation.
const (
	maxBatchWidth = 4096
	maxBatchRows  = 65536
	maxBatchCells = 1 << 22
)

// AppendBatch serialises nRows rows of width columns from the row-major
// flat slice (len >= nRows*width) as a Batch payload.
func (e *Encoder) AppendBatch(flat []int64, nRows, width int) {
	e.Uvarint(uint64(nRows))
	e.Uvarint(uint64(width))
	for c := 0; c < width; c++ {
		prev := int64(0)
		for r := 0; r < nRows; r++ {
			v := flat[r*width+c]
			e.Varint(v - prev)
			prev = v
		}
	}
}

// DecodeBatchPayload parses a Batch payload into a row-major flat
// slice, reusing buf's backing array when it is large enough. It
// returns the flat values, the row count, and the column width.
func DecodeBatchPayload(p []byte, buf []int64) ([]int64, int, int, error) {
	d := NewDecoder(p)
	nRows := int(d.Uvarint())
	width := int(d.Uvarint())
	if d.Err != nil {
		return nil, 0, 0, d.Err
	}
	if nRows < 0 || width < 0 || nRows > maxBatchRows || width > maxBatchWidth || nRows*width > maxBatchCells {
		return nil, 0, 0, ErrMalformed
	}
	// Each varint is at least one byte; a frame shorter than the cell
	// count is malformed without decoding a thing.
	if d.Rem() < nRows*width {
		return nil, 0, 0, ErrMalformed
	}
	n := nRows * width
	var flat []int64
	if cap(buf) >= n {
		flat = buf[:n]
	} else {
		flat = make([]int64, n)
	}
	for c := 0; c < width; c++ {
		prev := int64(0)
		for r := 0; r < nRows; r++ {
			prev += d.Varint()
			flat[r*width+c] = prev
		}
	}
	if err := d.Finish(); err != nil {
		return nil, 0, 0, err
	}
	return flat, nRows, width, nil
}
