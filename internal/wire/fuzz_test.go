package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeMessage drives every payload decoder with arbitrary bytes.
// The contract under test: whatever arrives, decoding returns a value
// or an error — it never panics, and it never allocates proportionally
// to a forged length field (the Count/bounds checks fail first).
func FuzzDecodeMessage(f *testing.F) {
	spec := QuerySpec{
		Table:  "t",
		Preds:  []PredSpec{{Col: "val", Kind: PredBetween, A: ArgSpec{Lit: 1}, B: ArgSpec{Param: "hi"}}},
		Joins:  []JoinSpec{{Table: "d", LeftCol: "val", RightCol: "d_id"}},
		Aggs:   []AggSpec{{Kind: AggSum, Col: "val", As: "s"}},
		HasAgg: true, GroupCol: "g",
		Limit: ArgSpec{Lit: 10}, HasLim: true,
		Opts: OptsSpec{Path: 1, Parallelism: 2},
	}
	var batch Encoder
	batch.AppendBatch([]int64{1, -2, 3, 4, -5, 6}, 2, 3)
	seeds := []struct {
		typ     byte
		payload []byte
	}{
		{MsgHello, Hello{Magic: Magic, Version: Version}.Marshal()},
		{MsgHelloOK, HelloOK{Version: 1}.Marshal()},
		{MsgPrepare, Prepare{Spec: spec}.Marshal()},
		{MsgPrepareOK, PrepareOK{StmtID: 1, Params: []string{"hi"}}.Marshal()},
		{MsgExecute, Execute{StmtID: 1, Binds: []BindKV{{Name: "hi", Val: 42}}}.Marshal()},
		{MsgExecOK, ExecOK{Cols: []string{"id", "val"}}.Marshal()},
		{MsgFetch, Fetch{MaxRows: 1024}.Marshal()},
		{MsgBatch, batch.B},
		{MsgEnd, End{More: true}.Marshal()},
		{MsgEnd, End{Summary: ExecSummary{Rows: 2, PlanCacheHit: true, Degraded: []string{"a"}}}.Marshal()},
		{MsgError, ErrorMsg{Class: ClassTransient, Msg: "injected"}.Marshal()},
		{MsgCloseStmt, CloseStmt{StmtID: 1}.Marshal()},
		{MsgOK, nil},
		{MsgQuery, Query{Spec: spec}.Marshal()},
		{MsgStatsReply, ServerStats{QueriesServed: 1}.Marshal()},
		{MsgFaultCtl, FaultCtl{Seed: 1, Rules: []FaultRuleSpec{{Kind: 0, Rate: 0.5}}}.Marshal()},
	}
	for _, s := range seeds {
		f.Add(s.typ, s.payload)
	}
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		v, err := DecodeMessage(typ, payload)
		if err != nil {
			return
		}
		// A payload that decoded must re-decode to the same result:
		// decoding is deterministic and does not retain the input.
		clone := append([]byte(nil), payload...)
		if _, err2 := DecodeMessage(typ, clone); err2 != nil {
			t.Fatalf("decode succeeded then failed on identical bytes: %v (value %T)", err2, v)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the framing layer;
// headers announcing absurd lengths must fail without allocating.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgOK, nil)
	WriteFrame(&buf, MsgFetch, Fetch{MaxRows: 16}.Marshal())
	f.Add(buf.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(payload)+1 > MaxFrame {
				t.Fatalf("frame type %#02x exceeds MaxFrame with %d payload bytes", typ, len(payload))
			}
		}
	})
}
