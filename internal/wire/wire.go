// Package wire is the smoothscan wire protocol: a small length-prefixed
// binary framing carrying the prepare → bind → execute query lifecycle
// between a remote client (package ssclient) and the serving subsystem
// (internal/server, cmd/ssserver).
//
// # Framing
//
// Every frame is
//
//	| u32 big-endian length | u8 message type | payload (length-1 bytes) |
//
// where length counts the type byte plus the payload and is bounded by
// MaxFrame. Payloads are encoded with unsigned/zigzag varints and
// length-prefixed strings (Encoder/Decoder); result rows travel as
// column-major delta-varint batches (AppendBatch/DecodeBatchPayload),
// mirroring tuple.Batch as the engine's unit of vectorized execution.
//
// # Error model
//
// Errors cross the wire as Error frames carrying a Class byte plus a
// human-readable message. The classes preserve the engine's typed error
// taxonomy (fault injection, admission control, cancellation):
// RemoteError unwraps to the same sentinels the in-process engine
// returns, so errors.Is — and therefore smoothscan.IsTransientFault /
// IsFaultError — give the same answers for a remote execution as for a
// local one.
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"smoothscan/internal/disk"
)

// Protocol constants.
const (
	// Magic opens the Hello message: "SSWP" (SmoothScan Wire Protocol).
	Magic uint32 = 0x53535750
	// Version is the protocol revision; the server rejects a Hello
	// carrying a different major version.
	Version uint32 = 1
	// MaxFrame bounds a frame's length field; a peer announcing more is
	// malformed and the connection is dropped.
	MaxFrame = 16 << 20
)

// Message types. The request/response pairing is strict per session:
// the client writes one request and reads frames until the terminal
// response; only Cancel may be injected while a response stream is in
// flight.
const (
	MsgHello        byte = 0x01 // client → server: handshake
	MsgHelloOK      byte = 0x02 // server → client: handshake accepted
	MsgPrepare      byte = 0x03 // client: compile a QuerySpec into a server-side Stmt
	MsgPrepareOK    byte = 0x04 // server: statement handle + parameter names
	MsgExecute      byte = 0x05 // client: bind + execute a prepared statement
	MsgExecOK       byte = 0x06 // server: cursor opened, result columns follow
	MsgFetch        byte = 0x07 // client: pull up to MaxRows rows from the cursor
	MsgBatch        byte = 0x08 // server: one column-encoded row batch
	MsgEnd          byte = 0x09 // server: fetch window done (More) or stream complete (summary)
	MsgError        byte = 0x0a // server: typed error, terminates the current command
	MsgCloseStmt    byte = 0x0b // client: drop a statement handle (idempotent)
	MsgOK           byte = 0x0c // server: generic success
	MsgCancel       byte = 0x0d // client: cancel the open cursor (also valid mid-stream)
	MsgQuery        byte = 0x0e // client: ad-hoc execute (literals inline, no handle)
	MsgStats        byte = 0x0f // client: server counters snapshot
	MsgStatsReply   byte = 0x10 // server: ServerStats
	MsgFaultCtl     byte = 0x11 // client: attach/clear a fault-injection policy (admin)
	MsgColdCache    byte = 0x12 // client: evict the server's buffer pool (admin; benchmarking)
	MsgCatalog      byte = 0x13 // client: request the server's table catalog
	MsgCatalogReply byte = 0x14 // server: CatalogReply (table names, columns, indexes, row counts)
)

// Error classes carried by Error frames. Class* values preserve the
// engine's error taxonomy across the wire; see RemoteError.Unwrap for
// the sentinel each class resolves to.
const (
	ClassInternal   byte = 0x00 // unclassified server-side failure
	ClassBadRequest byte = 0x01 // malformed or out-of-protocol request
	ClassNotFound   byte = 0x02 // unknown table/column/statement
	ClassOverloaded byte = 0x03 // admission control rejected (ErrOverloaded)
	ClassCancelled  byte = 0x04 // query cancelled (context.Canceled)
	ClassIdle       byte = 0x05 // server closed the session (idle timeout / shutdown)
	ClassTransient  byte = 0x06 // injected transient fault (retry can succeed)
	ClassPermanent  byte = 0x07 // injected permanent fault
	ClassCorrupt    byte = 0x08 // page checksum mismatch
	ClassEvicted    byte = 0x09 // statement evicted from the session table (ErrStmtEvicted)
)

// Typed sentinels for conditions born on the wire layer itself. The
// engine-fault classes map to internal/disk's sentinels instead, so the
// public smoothscan.Err* aliases match remote errors too.
var (
	// ErrOverloaded is the admission-control reject: the server refused
	// the connection or query because a configured limit (connections,
	// in-flight queries past the queue deadline) was reached. Back off
	// and retry; the server is shedding load, not failing.
	ErrOverloaded = errors.New("wire: server overloaded")
	// ErrStmtEvicted marks an Execute of a statement handle the server
	// evicted from the session's statement table (per-session limit,
	// least recently used first). Re-Prepare to continue.
	ErrStmtEvicted = errors.New("wire: prepared statement evicted")
	// ErrSessionClosed marks a server-initiated session close: idle
	// timeout or server shutdown.
	ErrSessionClosed = errors.New("wire: session closed by server")
	// ErrMalformed marks a frame or payload that does not decode; the
	// receiver drops the connection.
	ErrMalformed = errors.New("wire: malformed frame")
)

// classSentinel maps an error class to the sentinel RemoteError
// unwraps to, nil for classes with no sentinel (internal, bad request,
// not found — the message is the information there).
func classSentinel(class byte) error {
	switch class {
	case ClassOverloaded:
		return ErrOverloaded
	case ClassCancelled:
		return context.Canceled
	case ClassIdle:
		return ErrSessionClosed
	case ClassTransient:
		return disk.ErrInjected
	case ClassPermanent:
		return disk.ErrPermanentFault
	case ClassCorrupt:
		return disk.ErrPageCorrupt
	case ClassEvicted:
		return ErrStmtEvicted
	default:
		return nil
	}
}

// ClassName renders an error class for messages and logs.
func ClassName(class byte) string {
	switch class {
	case ClassInternal:
		return "internal"
	case ClassBadRequest:
		return "bad-request"
	case ClassNotFound:
		return "not-found"
	case ClassOverloaded:
		return "overloaded"
	case ClassCancelled:
		return "cancelled"
	case ClassIdle:
		return "session-closed"
	case ClassTransient:
		return "transient-fault"
	case ClassPermanent:
		return "permanent-fault"
	case ClassCorrupt:
		return "page-corrupt"
	case ClassEvicted:
		return "stmt-evicted"
	default:
		return fmt.Sprintf("class-%#02x", class)
	}
}

// RemoteError is an Error frame materialised client-side. It unwraps
// to the typed sentinel its class preserves — an injected transient
// fault that crossed the wire still satisfies
// smoothscan.IsTransientFault, an admission reject satisfies
// errors.Is(err, ErrOverloaded), and so on.
type RemoteError struct {
	Class byte
	Msg   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote (%s): %s", ClassName(e.Class), e.Msg)
}

func (e *RemoteError) Unwrap() error { return classSentinel(e.Class) }

// Classify maps a server-side execution error to the wire class that
// preserves its type for the client. Order matters: corruption and
// permanence are checked before the broader transient predicate.
func Classify(err error) byte {
	switch {
	case err == nil:
		return ClassInternal
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return ClassCancelled
	case errors.Is(err, disk.ErrPageCorrupt):
		return ClassCorrupt
	case errors.Is(err, disk.ErrPermanentFault):
		return ClassPermanent
	case disk.IsTransient(err):
		return ClassTransient
	case errors.Is(err, ErrOverloaded):
		return ClassOverloaded
	case errors.Is(err, ErrStmtEvicted):
		return ClassEvicted
	case errors.Is(err, ErrSessionClosed):
		return ClassIdle
	default:
		return ClassInternal
	}
}

// WriteFrame writes one frame: length, type byte, payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrMalformed, len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, returning its type and payload. Frames
// longer than MaxFrame (or shorter than the type byte) are malformed:
// the caller must drop the connection, since the stream can no longer
// be resynchronised.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: frame length %d", ErrMalformed, n)
	}
	if _, err = io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, err
	}
	typ = hdr[4]
	if n == 1 {
		return typ, nil, nil
	}
	payload = make([]byte, n-1)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// Encoder appends varint-based primitives to a byte slice. The zero
// value is ready to use; B is the accumulated payload.
type Encoder struct {
	B []byte
}

// U8 appends one byte.
func (e *Encoder) U8(v byte) { e.B = append(e.B, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.B = binary.AppendUvarint(e.B, v)
}

// Varint appends a zigzag-encoded signed varint.
func (e *Encoder) Varint(v int64) {
	e.B = binary.AppendVarint(e.B, v)
}

// F64 appends a float64 as its IEEE-754 bits, little-endian.
func (e *Encoder) F64(v float64) {
	e.B = binary.LittleEndian.AppendUint64(e.B, math.Float64bits(v))
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.B = append(e.B, s...)
}

// Decoder consumes the primitives Encoder writes, accumulating the
// first error instead of panicking: adversarial payloads (the fuzz
// tests feed them directly) surface as Err, never as a crash.
type Decoder struct {
	b   []byte
	off int
	Err error
}

// NewDecoder decodes the given payload.
func NewDecoder(p []byte) *Decoder { return &Decoder{b: p} }

// fail records the first decode error.
func (d *Decoder) fail(what string) {
	if d.Err == nil {
		d.Err = fmt.Errorf("%w: %s at offset %d", ErrMalformed, what, d.off)
	}
}

// Rem returns the number of unconsumed bytes.
func (d *Decoder) Rem() int { return len(d.b) - d.off }

// U8 reads one byte.
func (d *Decoder) U8() byte {
	if d.Err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Bool reads a one-byte bool; any nonzero byte is true.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.Err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.Err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// F64 reads a float64 from its IEEE-754 bits.
func (d *Decoder) F64() float64 {
	if d.Err != nil {
		return 0
	}
	if d.Rem() < 8 {
		d.fail("truncated f64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

// Str reads a length-prefixed string, bounds-checked against the
// remaining payload so a hostile length cannot force a huge allocation.
func (d *Decoder) Str() string {
	n := d.Uvarint()
	if d.Err != nil {
		return ""
	}
	if n > uint64(d.Rem()) {
		d.fail("string length exceeds payload")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Count reads a collection count and validates it against both a
// protocol cap and the remaining bytes (each element costs at least
// one byte), so a forged count cannot pre-allocate unbounded memory.
func (d *Decoder) Count(max int, what string) int {
	n := d.Uvarint()
	if d.Err != nil {
		return 0
	}
	if n > uint64(max) || n > uint64(d.Rem()) {
		d.fail(what + " count out of range")
		return 0
	}
	return int(n)
}

// Finish returns the accumulated decode error, flagging trailing
// garbage after a structurally valid payload.
func (d *Decoder) Finish() error {
	if d.Err != nil {
		return d.Err
	}
	if d.Rem() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, d.Rem())
	}
	return nil
}
