package wire

import "smoothscan/internal/disk"

// Message payload structs and their codecs. Each message type has a
// Marshal (payload bytes) and a Decode<Name> (payload → struct) pair;
// DecodeMessage dispatches on the frame type for consumers (and the
// fuzz harness) that want one entry point.

// Hello opens a session.
type Hello struct {
	Magic   uint32
	Version uint32
}

// Marshal serialises the message payload.
func (m Hello) Marshal() []byte {
	var e Encoder
	e.Uvarint(uint64(m.Magic))
	e.Uvarint(uint64(m.Version))
	return e.B
}

// DecodeHello parses a Hello payload.
func DecodeHello(p []byte) (Hello, error) {
	d := NewDecoder(p)
	m := Hello{Magic: uint32(d.Uvarint()), Version: uint32(d.Uvarint())}
	return m, d.Finish()
}

// HelloOK accepts a session.
type HelloOK struct {
	Version uint32
}

// Marshal serialises the message payload.
func (m HelloOK) Marshal() []byte {
	var e Encoder
	e.Uvarint(uint64(m.Version))
	return e.B
}

// DecodeHelloOK parses a HelloOK payload.
func DecodeHelloOK(p []byte) (HelloOK, error) {
	d := NewDecoder(p)
	m := HelloOK{Version: uint32(d.Uvarint())}
	return m, d.Finish()
}

// Prepare compiles a query structure into a server-side statement.
type Prepare struct {
	Spec QuerySpec
}

// Marshal serialises the message payload.
func (m Prepare) Marshal() []byte {
	var e Encoder
	e.AppendSpec(&m.Spec)
	return e.B
}

// DecodePrepare parses a Prepare payload.
func DecodePrepare(p []byte) (Prepare, error) {
	d := NewDecoder(p)
	m := Prepare{Spec: d.DecodeSpec()}
	return m, d.Finish()
}

// PrepareOK returns the statement handle and its parameter names, in
// first-use order (smoothscan.Stmt.Params).
type PrepareOK struct {
	StmtID uint32
	Params []string
}

// Marshal serialises the message payload.
func (m PrepareOK) Marshal() []byte {
	var e Encoder
	e.Uvarint(uint64(m.StmtID))
	e.Uvarint(uint64(len(m.Params)))
	for _, p := range m.Params {
		e.Str(p)
	}
	return e.B
}

// DecodePrepareOK parses a PrepareOK payload.
func DecodePrepareOK(p []byte) (PrepareOK, error) {
	d := NewDecoder(p)
	var m PrepareOK
	m.StmtID = uint32(d.Uvarint())
	n := d.Count(maxParams, "param")
	m.Params = make([]string, 0, n)
	for i := 0; i < n && d.Err == nil; i++ {
		m.Params = append(m.Params, d.Str())
	}
	return m, d.Finish()
}

// BindKV is one bound parameter of an Execute.
type BindKV struct {
	Name string
	Val  int64
}

// Execute binds and runs a prepared statement, opening the session's
// cursor.
type Execute struct {
	StmtID uint32
	Binds  []BindKV
}

// Marshal serialises the message payload.
func (m Execute) Marshal() []byte {
	var e Encoder
	e.Uvarint(uint64(m.StmtID))
	e.Uvarint(uint64(len(m.Binds)))
	for _, b := range m.Binds {
		e.Str(b.Name)
		e.Varint(b.Val)
	}
	return e.B
}

// DecodeExecute parses an Execute payload.
func DecodeExecute(p []byte) (Execute, error) {
	d := NewDecoder(p)
	var m Execute
	m.StmtID = uint32(d.Uvarint())
	n := d.Count(maxParams, "bind")
	m.Binds = make([]BindKV, 0, n)
	for i := 0; i < n && d.Err == nil; i++ {
		m.Binds = append(m.Binds, BindKV{Name: d.Str(), Val: d.Varint()})
	}
	return m, d.Finish()
}

// Query executes an ad-hoc query (literals inline) without a prepared
// handle; the server still routes it through its plan cache.
type Query struct {
	Spec QuerySpec
}

// Marshal serialises the message payload.
func (m Query) Marshal() []byte {
	var e Encoder
	e.AppendSpec(&m.Spec)
	return e.B
}

// DecodeQuery parses a Query payload.
func DecodeQuery(p []byte) (Query, error) {
	d := NewDecoder(p)
	m := Query{Spec: d.DecodeSpec()}
	return m, d.Finish()
}

// ExecOK opens the result stream: the cursor exists and these are its
// output columns.
type ExecOK struct {
	Cols []string
}

// Marshal serialises the message payload.
func (m ExecOK) Marshal() []byte {
	var e Encoder
	e.Uvarint(uint64(len(m.Cols)))
	for _, c := range m.Cols {
		e.Str(c)
	}
	return e.B
}

// DecodeExecOK parses an ExecOK payload.
func DecodeExecOK(p []byte) (ExecOK, error) {
	d := NewDecoder(p)
	var m ExecOK
	n := d.Count(maxSelCols, "col")
	m.Cols = make([]string, 0, n)
	for i := 0; i < n && d.Err == nil; i++ {
		m.Cols = append(m.Cols, d.Str())
	}
	return m, d.Finish()
}

// Fetch pulls up to MaxRows rows from the open cursor. The server
// answers with zero or more Batch frames followed by one End.
type Fetch struct {
	MaxRows uint32
}

// Marshal serialises the message payload.
func (m Fetch) Marshal() []byte {
	var e Encoder
	e.Uvarint(uint64(m.MaxRows))
	return e.B
}

// DecodeFetch parses a Fetch payload.
func DecodeFetch(p []byte) (Fetch, error) {
	d := NewDecoder(p)
	m := Fetch{MaxRows: uint32(d.Uvarint())}
	return m, d.Finish()
}

// ExecSummary is the execution's closing statistics, the remote
// projection of smoothscan.ExecStats: row count, fault-recovery
// counters, the degradation ladder taken, and plan-cache reuse.
type ExecSummary struct {
	Rows         int64
	Retries      int64
	FaultsSeen   int64
	PlanCacheHit bool
	Degraded     []string
	// IO is the execution's device-side I/O delta, so a remote shard
	// driver can surface per-shard IOStats exactly as an in-process
	// shard does (ExecStats.Shards, ssload balance reporting).
	IO disk.Stats
	// Result-cache interaction of the execution, mirroring
	// smoothscan.ResultCacheExec: whether the server served the stream
	// from its result-cache tier (zero device I/O), the served entry's
	// accounted size, and its age in nanoseconds.
	ResultCacheHit   bool
	ResultCacheBytes int64
	ResultCacheAgeNs int64
}

// End closes a fetch window. More means the cursor has (or may have)
// further rows — issue another Fetch; otherwise the stream is complete
// and Summary is populated, the cursor closed server-side.
type End struct {
	More    bool
	Summary ExecSummary
}

// Marshal serialises the message payload.
func (m End) Marshal() []byte {
	var e Encoder
	e.Bool(m.More)
	if !m.More {
		e.Varint(m.Summary.Rows)
		e.Varint(m.Summary.Retries)
		e.Varint(m.Summary.FaultsSeen)
		e.Bool(m.Summary.PlanCacheHit)
		e.Uvarint(uint64(len(m.Summary.Degraded)))
		for _, s := range m.Summary.Degraded {
			e.Str(s)
		}
		appendIOStats(&e, m.Summary.IO)
		e.Bool(m.Summary.ResultCacheHit)
		e.Varint(m.Summary.ResultCacheBytes)
		e.Varint(m.Summary.ResultCacheAgeNs)
	}
	return e.B
}

// appendIOStats encodes a disk.Stats block field by field.
func appendIOStats(e *Encoder, st disk.Stats) {
	e.Varint(st.Requests)
	e.Varint(st.RandomAccesses)
	e.Varint(st.SeqAccesses)
	e.Varint(st.SkippedPages)
	e.Varint(st.PagesRead)
	e.Varint(st.PagesWritten)
	e.Varint(st.BytesRead)
	e.F64(st.IOTime)
	e.F64(st.CPUTime)
	e.Varint(st.Faults)
	e.Varint(st.Corruptions)
	e.Varint(st.LatencySpikes)
	e.Varint(st.Retries)
}

// decodeIOStats decodes the disk.Stats block appendIOStats writes.
func decodeIOStats(d *Decoder) disk.Stats {
	var st disk.Stats
	st.Requests = d.Varint()
	st.RandomAccesses = d.Varint()
	st.SeqAccesses = d.Varint()
	st.SkippedPages = d.Varint()
	st.PagesRead = d.Varint()
	st.PagesWritten = d.Varint()
	st.BytesRead = d.Varint()
	st.IOTime = d.F64()
	st.CPUTime = d.F64()
	st.Faults = d.Varint()
	st.Corruptions = d.Varint()
	st.LatencySpikes = d.Varint()
	st.Retries = d.Varint()
	return st
}

// DecodeEnd parses an End payload.
func DecodeEnd(p []byte) (End, error) {
	d := NewDecoder(p)
	var m End
	if m.More = d.Bool(); !m.More {
		m.Summary.Rows = d.Varint()
		m.Summary.Retries = d.Varint()
		m.Summary.FaultsSeen = d.Varint()
		m.Summary.PlanCacheHit = d.Bool()
		n := d.Count(maxParams, "degraded")
		for i := 0; i < n && d.Err == nil; i++ {
			m.Summary.Degraded = append(m.Summary.Degraded, d.Str())
		}
		m.Summary.IO = decodeIOStats(d)
		m.Summary.ResultCacheHit = d.Bool()
		m.Summary.ResultCacheBytes = d.Varint()
		m.Summary.ResultCacheAgeNs = d.Varint()
	}
	return m, d.Finish()
}

// ErrorMsg is the typed error frame.
type ErrorMsg struct {
	Class byte
	Msg   string
}

// Marshal serialises the message payload.
func (m ErrorMsg) Marshal() []byte {
	var e Encoder
	e.U8(m.Class)
	e.Str(m.Msg)
	return e.B
}

// DecodeError parses an Error payload.
func DecodeError(p []byte) (ErrorMsg, error) {
	d := NewDecoder(p)
	m := ErrorMsg{Class: d.U8(), Msg: d.Str()}
	return m, d.Finish()
}

// Err converts the frame to the client-side error value.
func (m ErrorMsg) Err() error { return &RemoteError{Class: m.Class, Msg: m.Msg} }

// CloseStmt drops a statement handle. Closing an unknown or already
// closed handle succeeds (idempotent).
type CloseStmt struct {
	StmtID uint32
}

// Marshal serialises the message payload.
func (m CloseStmt) Marshal() []byte {
	var e Encoder
	e.Uvarint(uint64(m.StmtID))
	return e.B
}

// DecodeCloseStmt parses a CloseStmt payload.
func DecodeCloseStmt(p []byte) (CloseStmt, error) {
	d := NewDecoder(p)
	m := CloseStmt{StmtID: uint32(d.Uvarint())}
	return m, d.Finish()
}

// ServerStats is the server's counter snapshot, served to clients via
// the Stats message — the wire-layer counterpart of ExecStats for
// whole-server observability.
type ServerStats struct {
	// SessionsOpen / SessionsTotal count live and lifetime sessions.
	SessionsOpen  int64
	SessionsTotal int64
	// ConnsRejected counts connections refused at the limit.
	ConnsRejected int64
	// Statement-table traffic across all sessions.
	StmtsPrepared int64
	StmtsEvicted  int64
	StmtsClosed   int64
	// Query admission and completion.
	QueriesServed   int64 // streams that completed (End with summary)
	QueriesFailed   int64 // streams that ended in an Error frame
	QueriesRejected int64 // admission-control rejects (queue deadline)
	Cancels         int64 // Cancel messages honoured
	IdleCloses      int64 // sessions closed by the idle timeout
	// Result traffic.
	RowsSent    int64
	BatchesSent int64
	// Engine-side observability forwarded for remote harnesses: the
	// simulated-device time total and the DB plan-cache counters.
	DeviceSimCost   float64
	PlanCacheHits   int64
	PlanCacheMisses int64
	// Result-cache tier counters of the server's DB (zero when the
	// server runs with the tier disabled): lookup traffic, entries
	// dropped by write invalidation, and the tier's current footprint.
	ResultCacheHits        int64
	ResultCacheMisses      int64
	ResultCacheInvalidated int64
	ResultCacheEntries     int64
	ResultCacheBytes       int64
}

// Marshal serialises the message payload.
func (m ServerStats) Marshal() []byte {
	var e Encoder
	e.Varint(m.SessionsOpen)
	e.Varint(m.SessionsTotal)
	e.Varint(m.ConnsRejected)
	e.Varint(m.StmtsPrepared)
	e.Varint(m.StmtsEvicted)
	e.Varint(m.StmtsClosed)
	e.Varint(m.QueriesServed)
	e.Varint(m.QueriesFailed)
	e.Varint(m.QueriesRejected)
	e.Varint(m.Cancels)
	e.Varint(m.IdleCloses)
	e.Varint(m.RowsSent)
	e.Varint(m.BatchesSent)
	e.F64(m.DeviceSimCost)
	e.Varint(m.PlanCacheHits)
	e.Varint(m.PlanCacheMisses)
	e.Varint(m.ResultCacheHits)
	e.Varint(m.ResultCacheMisses)
	e.Varint(m.ResultCacheInvalidated)
	e.Varint(m.ResultCacheEntries)
	e.Varint(m.ResultCacheBytes)
	return e.B
}

// DecodeServerStats parses a StatsReply payload.
func DecodeServerStats(p []byte) (ServerStats, error) {
	d := NewDecoder(p)
	var m ServerStats
	m.SessionsOpen = d.Varint()
	m.SessionsTotal = d.Varint()
	m.ConnsRejected = d.Varint()
	m.StmtsPrepared = d.Varint()
	m.StmtsEvicted = d.Varint()
	m.StmtsClosed = d.Varint()
	m.QueriesServed = d.Varint()
	m.QueriesFailed = d.Varint()
	m.QueriesRejected = d.Varint()
	m.Cancels = d.Varint()
	m.IdleCloses = d.Varint()
	m.RowsSent = d.Varint()
	m.BatchesSent = d.Varint()
	m.DeviceSimCost = d.F64()
	m.PlanCacheHits = d.Varint()
	m.PlanCacheMisses = d.Varint()
	m.ResultCacheHits = d.Varint()
	m.ResultCacheMisses = d.Varint()
	m.ResultCacheInvalidated = d.Varint()
	m.ResultCacheEntries = d.Varint()
	m.ResultCacheBytes = d.Varint()
	return m, d.Finish()
}

// FaultRuleSpec is one fault-injection rule of a FaultCtl message; it
// always targets every space (the remote chaos harness's usage).
type FaultRuleSpec struct {
	Kind      byte // FaultTransient=0, FaultPermanent=1, FaultLatency=2, FaultCorrupt=3
	Rate      float64
	ExtraCost int64
}

// FaultCtl attaches a deterministic fault-injection policy to the
// server's device (admin operation, gated by server configuration).
// Empty Rules detaches any policy.
type FaultCtl struct {
	Seed  int64
	Rules []FaultRuleSpec
}

// Marshal serialises the message payload.
func (m FaultCtl) Marshal() []byte {
	var e Encoder
	e.Varint(m.Seed)
	e.Uvarint(uint64(len(m.Rules)))
	for _, r := range m.Rules {
		e.U8(r.Kind)
		e.F64(r.Rate)
		e.Varint(r.ExtraCost)
	}
	return e.B
}

// DecodeFaultCtl parses a FaultCtl payload.
func DecodeFaultCtl(p []byte) (FaultCtl, error) {
	d := NewDecoder(p)
	var m FaultCtl
	m.Seed = d.Varint()
	n := d.Count(maxRules, "rule")
	m.Rules = make([]FaultRuleSpec, 0, n)
	for i := 0; i < n && d.Err == nil; i++ {
		m.Rules = append(m.Rules, FaultRuleSpec{Kind: d.U8(), Rate: d.F64(), ExtraCost: d.Varint()})
	}
	return m, d.Finish()
}

// TableSpec describes one table in a Catalog reply: name, column order,
// indexed columns, and the loaded row count — enough for a coordinator
// to mirror the remote schema and drive planning against it.
type TableSpec struct {
	Name    string
	Cols    []string
	Indexed []string
	Rows    int64
}

// CatalogReply answers a Catalog request with the server's tables.
type CatalogReply struct {
	Tables []TableSpec
}

// Marshal serialises the message payload.
func (m CatalogReply) Marshal() []byte {
	var e Encoder
	e.Uvarint(uint64(len(m.Tables)))
	for _, t := range m.Tables {
		e.Str(t.Name)
		e.Uvarint(uint64(len(t.Cols)))
		for _, c := range t.Cols {
			e.Str(c)
		}
		e.Uvarint(uint64(len(t.Indexed)))
		for _, c := range t.Indexed {
			e.Str(c)
		}
		e.Varint(t.Rows)
	}
	return e.B
}

// DecodeCatalogReply parses a CatalogReply payload.
func DecodeCatalogReply(p []byte) (CatalogReply, error) {
	d := NewDecoder(p)
	var m CatalogReply
	nt := d.Count(maxTables, "table")
	m.Tables = make([]TableSpec, 0, nt)
	for i := 0; i < nt && d.Err == nil; i++ {
		var t TableSpec
		t.Name = d.Str()
		nc := d.Count(maxSelCols, "col")
		t.Cols = make([]string, 0, nc)
		for j := 0; j < nc && d.Err == nil; j++ {
			t.Cols = append(t.Cols, d.Str())
		}
		ni := d.Count(maxSelCols, "indexed col")
		t.Indexed = make([]string, 0, ni)
		for j := 0; j < ni && d.Err == nil; j++ {
			t.Indexed = append(t.Indexed, d.Str())
		}
		t.Rows = d.Varint()
		m.Tables = append(m.Tables, t)
	}
	return m, d.Finish()
}

// DecodeMessage decodes any frame by type, returning the typed message
// struct. Frames with no payload structure (OK, Cancel, Stats) return
// nil. It is the single entry point the fuzz harness drives: whatever
// the bytes, the result is a value or an error — never a panic, never
// an allocation proportional to a forged length field.
func DecodeMessage(typ byte, payload []byte) (any, error) {
	switch typ {
	case MsgHello:
		return DecodeHello(payload)
	case MsgHelloOK:
		return DecodeHelloOK(payload)
	case MsgPrepare:
		return DecodePrepare(payload)
	case MsgPrepareOK:
		return DecodePrepareOK(payload)
	case MsgExecute:
		return DecodeExecute(payload)
	case MsgExecOK:
		return DecodeExecOK(payload)
	case MsgFetch:
		return DecodeFetch(payload)
	case MsgBatch:
		flat, rows, width, err := DecodeBatchPayload(payload, nil)
		if err != nil {
			return nil, err
		}
		return BatchFrame{Flat: flat, Rows: rows, Width: width}, nil
	case MsgEnd:
		return DecodeEnd(payload)
	case MsgError:
		return DecodeError(payload)
	case MsgCloseStmt:
		return DecodeCloseStmt(payload)
	case MsgOK, MsgCancel, MsgStats, MsgColdCache, MsgCatalog:
		if len(payload) != 0 {
			return nil, NewDecoder(payload).Finish()
		}
		return nil, nil
	case MsgQuery:
		return DecodeQuery(payload)
	case MsgStatsReply:
		return DecodeServerStats(payload)
	case MsgFaultCtl:
		return DecodeFaultCtl(payload)
	case MsgCatalogReply:
		return DecodeCatalogReply(payload)
	default:
		return nil, &RemoteError{Class: ClassBadRequest, Msg: "unknown message type"}
	}
}

// BatchFrame is DecodeMessage's materialisation of a Batch frame.
type BatchFrame struct {
	Flat  []int64
	Rows  int
	Width int
}
