package heap

import (
	"testing"

	"smoothscan/internal/disk"
	"smoothscan/internal/tuple"
)

// buildFile loads numRows 3-column rows (i, 7*i, i%5) on 256-byte
// pages (10 tuples per page) and returns the file plus the rows.
func buildFile(t *testing.T, numRows int64) (*File, []tuple.Row) {
	t.Helper()
	dev := disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 256})
	f, err := Create(dev, tuple.Ints(3))
	if err != nil {
		t.Fatal(err)
	}
	b := f.NewBuilder()
	var rows []tuple.Row
	for i := int64(0); i < numRows; i++ {
		r := tuple.IntsRow(i, 7*i, i%5)
		rows = append(rows, r)
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return f, rows
}

// rawPage reads a page without a buffer pool.
func rawPage(t *testing.T, f *File, pageNo int64) []byte {
	t.Helper()
	page, err := f.dev.ReadPage(f.space, pageNo)
	if err != nil {
		t.Fatal(err)
	}
	return page
}

// TestDecodeBatchMatchesDecodeRow checks slot-for-slot equivalence of
// the batched and per-slot decoders on both full pages and the partial
// final page.
func TestDecodeBatchMatchesDecodeRow(t *testing.T) {
	f, _ := buildFile(t, 25) // 10+10+5: two full pages, one partial
	if f.NumPages() != 3 {
		t.Fatalf("pages = %d, want 3", f.NumPages())
	}
	batch := tuple.NewGrowableBatch(3)
	for pageNo := int64(0); pageNo < f.NumPages(); pageNo++ {
		page := rawPage(t, f, pageNo)
		count := PageTupleCount(page)
		batch.Reset()
		if next := f.DecodeBatch(page, 0, count, batch); next != count {
			t.Fatalf("page %d: DecodeBatch stopped at %d of %d", pageNo, next, count)
		}
		if batch.Len() != count {
			t.Fatalf("page %d: batch has %d rows, want %d", pageNo, batch.Len(), count)
		}
		for s := 0; s < count; s++ {
			want := f.DecodeRow(page, s, nil)
			if !batch.Row(s).Equal(want) {
				t.Errorf("page %d slot %d: batch %v != row %v", pageNo, s, batch.Row(s), want)
			}
		}
	}
}

// TestDecodeBatchPartialFill checks that a capacity-bounded batch stops
// mid-page and resumes exactly where it left off.
func TestDecodeBatchPartialFill(t *testing.T) {
	f, rows := buildFile(t, 10)
	page := rawPage(t, f, 0)
	b := tuple.NewBatchFor(f.Schema(), 4)
	next := f.DecodeBatch(page, 0, PageTupleCount(page), b)
	if next != 4 || b.Len() != 4 {
		t.Fatalf("first fill: next=%d len=%d, want 4/4", next, b.Len())
	}
	b.Reset()
	next = f.DecodeBatch(page, next, PageTupleCount(page), b)
	if next != 8 || b.Len() != 4 {
		t.Fatalf("second fill: next=%d len=%d, want 8/4", next, b.Len())
	}
	if !b.Row(0).Equal(rows[4]) {
		t.Errorf("resume decoded %v, want %v", b.Row(0), rows[4])
	}
}

// TestDecodeBatchMatching checks the predicate-pushdown decoder against
// a straight per-slot decode + predicate loop, with and without a veto.
func TestDecodeBatchMatching(t *testing.T) {
	f, rows := buildFile(t, 25)
	pred := tuple.RangePred{Col: 1, Lo: 21, Hi: 120} // 7*i in [21,120) => i in [3,18)
	got := tuple.NewGrowableBatch(3)
	examinedTotal := 0
	for pageNo := int64(0); pageNo < f.NumPages(); pageNo++ {
		page := rawPage(t, f, pageNo)
		count := PageTupleCount(page)
		next, examined := f.DecodeBatchMatching(page, 0, count, pred, nil, nil, got)
		if next != count || examined != count {
			t.Fatalf("page %d: next=%d examined=%d, want %d", pageNo, next, examined, count)
		}
		examinedTotal += examined
	}
	if examinedTotal != 25 {
		t.Fatalf("examined %d slots, want 25", examinedTotal)
	}
	var want []tuple.Row
	for _, r := range rows {
		if pred.Matches(r) {
			want = append(want, r)
		}
	}
	if got.Len() != len(want) {
		t.Fatalf("matched %d rows, want %d", got.Len(), len(want))
	}
	for i := range want {
		if !got.Row(i).Equal(want[i]) {
			t.Errorf("match %d = %v, want %v", i, got.Row(i), want[i])
		}
	}

	// Veto every even row number via keep.
	got.Reset()
	page := rawPage(t, f, 0)
	f.DecodeBatchMatching(page, 0, PageTupleCount(page), tuple.All(0), nil,
		func(slot int) bool { return slot%2 == 1 }, got)
	if got.Len() != 5 {
		t.Fatalf("veto kept %d rows, want 5", got.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Row(i).Int(0)%2 != 1 {
			t.Errorf("veto let through row %v", got.Row(i))
		}
	}
}

// TestDecodeBatchMatchingStopsWhenFull checks the early-exit contract:
// the slot that fills the batch is counted as examined, later slots are
// not.
func TestDecodeBatchMatchingStopsWhenFull(t *testing.T) {
	f, _ := buildFile(t, 10)
	page := rawPage(t, f, 0)
	b := tuple.NewBatchFor(f.Schema(), 3)
	next, examined := f.DecodeBatchMatching(page, 0, PageTupleCount(page), tuple.All(0), nil, nil, b)
	if b.Len() != 3 || next != 3 || examined != 3 {
		t.Fatalf("len=%d next=%d examined=%d, want 3/3/3", b.Len(), next, examined)
	}
	// Resume from slot 3 with room for the rest.
	big := tuple.NewBatchFor(f.Schema(), 100)
	next, examined = f.DecodeBatchMatching(page, next, PageTupleCount(page), tuple.All(0), nil, nil, big)
	if big.Len() != 7 || next != 10 || examined != 7 {
		t.Fatalf("resume: len=%d next=%d examined=%d, want 7/10/7", big.Len(), next, examined)
	}
}

// TestColInt checks the single-column fast path against full decode.
func TestColInt(t *testing.T) {
	f, rows := buildFile(t, 25)
	for pageNo := int64(0); pageNo < f.NumPages(); pageNo++ {
		page := rawPage(t, f, pageNo)
		for s := 0; s < PageTupleCount(page); s++ {
			r := rows[pageNo*int64(f.TuplesPerPage())+int64(s)]
			for c := 0; c < 3; c++ {
				if got := f.ColInt(page, s, c); got != r.Int(c) {
					t.Errorf("page %d slot %d col %d = %d, want %d", pageNo, s, c, got, r.Int(c))
				}
			}
		}
	}
}
