package heap

import (
	"testing"
	"testing/quick"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/tuple"
)

func testDevice() *disk.Device {
	return disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 256})
}

func loadRows(t *testing.T, dev *disk.Device, schema *tuple.Schema, rows []tuple.Row) *File {
	t.Helper()
	f, err := Create(dev, schema)
	if err != nil {
		t.Fatal(err)
	}
	b := f.NewBuilder()
	for _, r := range rows {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCreateRejectsOversizedTuples(t *testing.T) {
	dev := testDevice() // 256-byte pages, 240 usable
	if _, err := Create(dev, tuple.Ints(31)); err == nil {
		t.Error("oversized tuple accepted")
	}
	f, err := Create(dev, tuple.Ints(30))
	if err != nil {
		t.Fatalf("240-byte tuple rejected: %v", err)
	}
	if f.TuplesPerPage() != 1 {
		t.Errorf("TuplesPerPage = %d, want 1", f.TuplesPerPage())
	}
}

func TestTuplesPerPage(t *testing.T) {
	dev := testDevice()
	f, err := Create(dev, tuple.Ints(3)) // 24-byte tuples, (256-16)/24 = 10
	if err != nil {
		t.Fatal(err)
	}
	if f.TuplesPerPage() != 10 {
		t.Errorf("TuplesPerPage = %d, want 10", f.TuplesPerPage())
	}
}

func TestBuildAndReadBack(t *testing.T) {
	dev := testDevice()
	schema := tuple.Ints(3)
	var rows []tuple.Row
	for i := int64(0); i < 25; i++ { // 2.5 pages at 10 tuples/page
		rows = append(rows, tuple.IntsRow(i, i*2, -i))
	}
	f := loadRows(t, dev, schema, rows)

	if f.NumTuples() != 25 {
		t.Errorf("NumTuples = %d", f.NumTuples())
	}
	if f.NumPages() != 3 {
		t.Errorf("NumPages = %d", f.NumPages())
	}

	pool := bufferpool.New(dev, 8)
	for i := int64(0); i < 25; i++ {
		got, err := f.RowAt(pool, f.TIDOf(i))
		if err != nil {
			t.Fatalf("RowAt(%d): %v", i, err)
		}
		if !got.Equal(rows[i]) {
			t.Errorf("row %d = %v, want %v", i, got, rows[i])
		}
	}
}

func TestPartialLastPage(t *testing.T) {
	dev := testDevice()
	f := loadRows(t, dev, tuple.Ints(3), []tuple.Row{tuple.IntsRow(7, 8, 9)})
	pool := bufferpool.New(dev, 2)
	page, err := f.GetPage(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if PageTupleCount(page) != 1 {
		t.Errorf("PageTupleCount = %d, want 1", PageTupleCount(page))
	}
	if _, err := f.RowAt(pool, TID{Page: 0, Slot: 5}); err == nil {
		t.Error("read of empty slot succeeded")
	}
}

func TestAppendWrongWidth(t *testing.T) {
	dev := testDevice()
	f, err := Create(dev, tuple.Ints(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.NewBuilder().Append(tuple.IntsRow(1, 2)); err == nil {
		t.Error("wrong-width row accepted")
	}
}

func TestGetPageBounds(t *testing.T) {
	dev := testDevice()
	f := loadRows(t, dev, tuple.Ints(3), []tuple.Row{tuple.IntsRow(1, 2, 3)})
	pool := bufferpool.New(dev, 2)
	if _, err := f.GetPage(pool, 1); err == nil {
		t.Error("out-of-range page read succeeded")
	}
	if _, err := f.GetPage(pool, -1); err == nil {
		t.Error("negative page read succeeded")
	}
	if _, err := f.GetRun(pool, 0, 2, nil); err == nil {
		t.Error("out-of-range run succeeded")
	}
}

func TestTIDOrdering(t *testing.T) {
	cases := []struct {
		a, b TID
		want bool
	}{
		{TID{0, 0}, TID{0, 1}, true},
		{TID{0, 5}, TID{1, 0}, true},
		{TID{1, 0}, TID{0, 5}, false},
		{TID{1, 1}, TID{1, 1}, false},
	}
	for _, c := range cases {
		if c.a.Less(c.b) != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, !c.want, c.want)
		}
	}
}

func TestTIDOf(t *testing.T) {
	dev := testDevice()
	f, err := Create(dev, tuple.Ints(3)) // 10 tuples/page
	if err != nil {
		t.Fatal(err)
	}
	if got := f.TIDOf(0); got != (TID{0, 0}) {
		t.Errorf("TIDOf(0) = %v", got)
	}
	if got := f.TIDOf(25); got != (TID{2, 5}) {
		t.Errorf("TIDOf(25) = %v", got)
	}
}

func TestGetRunDecoding(t *testing.T) {
	dev := testDevice()
	var rows []tuple.Row
	for i := int64(0); i < 30; i++ {
		rows = append(rows, tuple.IntsRow(i, 0, 0))
	}
	f := loadRows(t, dev, tuple.Ints(3), rows)
	pool := bufferpool.New(dev, 8)
	pages, err := f.GetRun(pool, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := f.DecodeRow(pages[0], 0, nil)
	if first.Int(0) != 10 {
		t.Errorf("first row of page 1 = %d, want 10", first.Int(0))
	}
	last := f.DecodeRow(pages[1], 9, nil)
	if last.Int(0) != 29 {
		t.Errorf("last row of page 2 = %d, want 29", last.Int(0))
	}
}

// Property: any sequence of rows round-trips through build + read in
// load order, across page boundaries, with mixed int/float columns.
func TestHeapRoundTripProperty(t *testing.T) {
	schema := tuple.MustSchema(
		tuple.Column{Name: "a", Type: tuple.Int64},
		tuple.Column{Name: "b", Type: tuple.Float64},
	)
	f := func(ints []int64, floats []float64) bool {
		n := len(ints)
		if len(floats) < n {
			n = len(floats)
		}
		dev := testDevice()
		file, err := Create(dev, schema)
		if err != nil {
			return false
		}
		b := file.NewBuilder()
		for i := 0; i < n; i++ {
			r := tuple.NewRow(schema)
			r.SetInt(0, ints[i])
			r.SetFloat(1, floats[i])
			if err := b.Append(r); err != nil {
				return false
			}
		}
		if err := b.Flush(); err != nil {
			return false
		}
		if file.NumTuples() != int64(n) {
			return false
		}
		pool := bufferpool.New(dev, 4)
		for i := 0; i < n; i++ {
			got, err := file.RowAt(pool, file.TIDOf(int64(i)))
			if err != nil {
				return false
			}
			want := tuple.NewRow(schema)
			want.SetInt(0, ints[i])
			want.SetFloat(1, floats[i])
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
