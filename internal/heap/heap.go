// Package heap implements heap files: unordered tables stored as
// fixed-layout pages on a simulated disk.
//
// Pages follow a simple slotted layout specialised for fixed-width
// tuples: a 16-byte header (tuple count, tuple size) followed by
// densely packed tuple slots. With the default 8 KB pages and the
// paper's 10-integer (80-byte) tuples this yields 102 tuples per page,
// the same order as the paper's "120 tuples per page" figure.
//
// A tuple is addressed by a TID (page number, slot), exactly what a
// non-clustered index leaf stores.
package heap

import (
	"encoding/binary"
	"fmt"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/tuple"
)

// headerSize is the per-page header: uint32 count, uint32 tuple size,
// then the page checksum in bytes [8, 16) (see disk.StampChecksum).
const headerSize = 16

// TID identifies a tuple in a heap file.
type TID struct {
	Page int64
	Slot int32
}

// Less orders TIDs by (page, slot), the physical order on disk.
func (t TID) Less(o TID) bool {
	if t.Page != o.Page {
		return t.Page < o.Page
	}
	return t.Slot < o.Slot
}

func (t TID) String() string { return fmt.Sprintf("(%d,%d)", t.Page, t.Slot) }

// File is a heap file: a sequence of pages in one disk space.
type File struct {
	dev           *disk.Device
	space         disk.SpaceID
	schema        *tuple.Schema
	tuplesPerPage int
	numPages      int64
	numTuples     int64
}

// Create allocates an empty heap file for the schema on the device.
func Create(dev *disk.Device, schema *tuple.Schema) (*File, error) {
	tpp := (dev.PageSize() - headerSize) / schema.TupleSize()
	if tpp < 1 {
		return nil, fmt.Errorf("heap: tuple size %d does not fit page size %d", schema.TupleSize(), dev.PageSize())
	}
	return &File{
		dev:           dev,
		space:         dev.CreateSpace(),
		schema:        schema,
		tuplesPerPage: tpp,
	}, nil
}

// Schema returns the file's schema.
func (f *File) Schema() *tuple.Schema { return f.schema }

// Space returns the disk space holding the file's pages.
func (f *File) Space() disk.SpaceID { return f.space }

// NumPages returns the number of pages in the file.
func (f *File) NumPages() int64 { return f.numPages }

// NumTuples returns the number of tuples in the file.
func (f *File) NumTuples() int64 { return f.numTuples }

// TuplesPerPage returns the fixed per-page capacity.
func (f *File) TuplesPerPage() int { return f.tuplesPerPage }

// Builder accumulates rows and writes full pages to the device. Bulk
// loading mirrors the paper's setup phase and is not part of any
// measured experiment.
type Builder struct {
	file *File
	page []byte
	n    int
}

// NewBuilder starts bulk-loading into the file. Loading must finish
// with Flush before the file is read.
func (f *File) NewBuilder() *Builder {
	return &Builder{file: f, page: make([]byte, f.dev.PageSize())}
}

// Append adds one row. The row must match the file schema width.
func (b *Builder) Append(r tuple.Row) error {
	f := b.file
	if len(r) != f.schema.NumCols() {
		return fmt.Errorf("heap: row has %d columns, schema has %d", len(r), f.schema.NumCols())
	}
	off := headerSize + b.n*f.schema.TupleSize()
	for _, v := range r {
		binary.LittleEndian.PutUint64(b.page[off:], v)
		off += 8
	}
	b.n++
	if b.n == f.tuplesPerPage {
		return b.flushPage()
	}
	return nil
}

func (b *Builder) flushPage() error {
	f := b.file
	binary.LittleEndian.PutUint32(b.page[0:], uint32(b.n))
	binary.LittleEndian.PutUint32(b.page[4:], uint32(f.schema.TupleSize()))
	disk.StampChecksum(b.page)
	if _, err := f.dev.AppendPage(f.space, b.page); err != nil {
		return err
	}
	f.numPages++
	f.numTuples += int64(b.n)
	b.n = 0
	for i := range b.page {
		b.page[i] = 0
	}
	return nil
}

// Flush writes any partially filled final page.
func (b *Builder) Flush() error {
	if b.n == 0 {
		return nil
	}
	return b.flushPage()
}

// Insert appends one row to the file after bulk loading, rewriting the
// last page if it has room or appending a new one. It returns the new
// tuple's TID. Callers that read through a buffer pool must invalidate
// the affected page (bufferpool.InvalidatePage).
func (f *File) Insert(r tuple.Row) (TID, error) {
	if len(r) != f.schema.NumCols() {
		return TID{}, fmt.Errorf("heap: row has %d columns, schema has %d", len(r), f.schema.NumCols())
	}
	encode := func(page []byte, slot int) {
		off := headerSize + slot*f.schema.TupleSize()
		for _, v := range r {
			binary.LittleEndian.PutUint64(page[off:], v)
			off += 8
		}
	}
	if f.numPages > 0 {
		last := f.numPages - 1
		page, err := f.dev.ReadPage(f.space, last)
		if err != nil {
			return TID{}, err
		}
		if f.dev.Faulty() && !disk.VerifyChecksum(page) {
			return TID{}, fmt.Errorf("%w: heap space %d page %d", disk.ErrPageCorrupt, f.space, last)
		}
		count := PageTupleCount(page)
		if count < f.tuplesPerPage {
			buf := make([]byte, len(page))
			copy(buf, page)
			encode(buf, count)
			binary.LittleEndian.PutUint32(buf[0:], uint32(count+1))
			disk.StampChecksum(buf)
			if err := f.dev.WritePage(f.space, last, buf); err != nil {
				return TID{}, err
			}
			f.numTuples++
			return TID{Page: last, Slot: int32(count)}, nil
		}
	}
	buf := make([]byte, f.dev.PageSize())
	encode(buf, 0)
	binary.LittleEndian.PutUint32(buf[0:], 1)
	binary.LittleEndian.PutUint32(buf[4:], uint32(f.schema.TupleSize()))
	disk.StampChecksum(buf)
	pageNo, err := f.dev.AppendPage(f.space, buf)
	if err != nil {
		return TID{}, err
	}
	f.numPages++
	f.numTuples++
	return TID{Page: pageNo, Slot: 0}, nil
}

// PageTupleCount returns the number of tuples stored in a raw page.
func PageTupleCount(page []byte) int {
	return int(binary.LittleEndian.Uint32(page[0:]))
}

// DecodeRow decodes slot s of a raw page into dst (allocating when dst
// is nil) and returns it. The caller must ensure s < PageTupleCount.
func (f *File) DecodeRow(page []byte, s int, dst tuple.Row) tuple.Row {
	n := f.schema.NumCols()
	if dst == nil {
		dst = make(tuple.Row, n)
	}
	off := headerSize + s*f.schema.TupleSize()
	for i := 0; i < n; i++ {
		dst[i] = binary.LittleEndian.Uint64(page[off:])
		off += 8
	}
	return dst
}

// ColInt returns column col of slot s as an int64 without decoding the
// rest of the row — the predicate fast path of the batched scans.
func (f *File) ColInt(page []byte, s, col int) int64 {
	return int64(binary.LittleEndian.Uint64(page[headerSize+s*f.schema.TupleSize()+8*col:]))
}

// DecodeBatch decodes slots [lo, hi) of a raw page into dst, appending
// one batch row per slot, and stops early when dst fills. It returns
// the first slot not decoded (hi when every slot fit). The caller must
// ensure hi <= PageTupleCount and that dst's width matches the schema.
func (f *File) DecodeBatch(page []byte, lo, hi int, dst *tuple.Batch) int {
	size := f.schema.TupleSize()
	off := headerSize + lo*size
	s := lo
	for ; s < hi; s++ {
		slot := dst.AppendSlotRaw()
		if slot == nil {
			break
		}
		for i := range slot {
			slot[i] = binary.LittleEndian.Uint64(page[off:])
			off += 8
		}
	}
	return s
}

// DecodeBatchMatching examines slots [lo, hi) of a raw page in order,
// appending to dst the rows whose pred column satisfies pred (and, for
// slots that pass pred, every residual predicate), and stops as soon as
// dst fills. The optional keep callback can veto a slot whose
// predicates matched (used to suppress already-produced tuples). Only
// the predicate columns are read for non-qualifying slots, so the scan
// path never materialises rows it will not return — this is where a
// multi-predicate plan's residual conjuncts are pushed down.
//
// It returns the first slot not examined (hi when the page was
// exhausted) and the number of slots examined, which is what operators
// charge per-tuple CPU for. Residual checks piggyback on the same
// per-slot examination charge: evaluating an extra column of an
// already-resident page costs no additional simulated I/O or CPU.
func (f *File) DecodeBatchMatching(page []byte, lo, hi int, pred tuple.RangePred, residual []tuple.RangePred, keep func(slot int) bool, dst *tuple.Batch) (next, examined int) {
	size := f.schema.TupleSize()
	predOff := headerSize + lo*size + 8*pred.Col
	s := lo
	for ; s < hi; s++ {
		if dst.Full() {
			break
		}
		v := int64(binary.LittleEndian.Uint64(page[predOff:]))
		predOff += size
		if v >= pred.Lo && v < pred.Hi &&
			(residual == nil || f.slotMatchesAll(page, s, residual)) &&
			(keep == nil || keep(s)) {
			f.DecodeRow(page, s, dst.AppendSlotRaw())
		}
	}
	return s, s - lo
}

// slotMatchesAll evaluates a conjunction of range predicates against
// slot s, reading only the referenced columns.
func (f *File) slotMatchesAll(page []byte, s int, preds []tuple.RangePred) bool {
	base := headerSize + s*f.schema.TupleSize()
	for _, p := range preds {
		v := int64(binary.LittleEndian.Uint64(page[base+8*p.Col:]))
		if v < p.Lo || v >= p.Hi {
			return false
		}
	}
	return true
}

// GetPage reads a heap page through the buffer pool.
func (f *File) GetPage(pool *bufferpool.Pool, pageNo int64) ([]byte, error) {
	if pageNo < 0 || pageNo >= f.numPages {
		return nil, fmt.Errorf("%w: heap page %d of %d", disk.ErrOutOfRange, pageNo, f.numPages)
	}
	return pool.Get(f.space, pageNo)
}

// GetRun reads n consecutive heap pages through the buffer pool as a
// flattened (mostly sequential) access. scratch, when non-nil, is
// reused as the backing array of the result (see bufferpool.GetRun).
func (f *File) GetRun(pool *bufferpool.Pool, start, n int64, scratch [][]byte) ([][]byte, error) {
	if start < 0 || start+n > f.numPages {
		return nil, fmt.Errorf("%w: heap pages [%d,%d) of %d", disk.ErrOutOfRange, start, start+n, f.numPages)
	}
	return pool.GetRun(f.space, start, n, scratch)
}

// DecodeRowAt fetches the tuple addressed by tid through the buffer
// pool, decoding it into dst (allocating when dst is nil) — the shared
// TID-to-row path of RowAt and the batched index-driven scans. On
// error dst's contents are undefined.
func (f *File) DecodeRowAt(pool *bufferpool.Pool, tid TID, dst tuple.Row) (tuple.Row, error) {
	page, err := f.GetPage(pool, tid.Page)
	if err != nil {
		return nil, err
	}
	if int(tid.Slot) >= PageTupleCount(page) {
		return nil, fmt.Errorf("heap: slot %d out of range on page %d", tid.Slot, tid.Page)
	}
	return f.DecodeRow(page, int(tid.Slot), dst), nil
}

// RowAt fetches the tuple addressed by tid through the buffer pool.
func (f *File) RowAt(pool *bufferpool.Pool, tid TID) (tuple.Row, error) {
	return f.DecodeRowAt(pool, tid, nil)
}

// TIDOf returns the TID a row number (0-based load order) maps to.
// Bulk loading is strictly append-only, so row i lives at page
// i/tuplesPerPage, slot i%tuplesPerPage.
func (f *File) TIDOf(rowNo int64) TID {
	return TID{Page: rowNo / int64(f.tuplesPerPage), Slot: int32(rowNo % int64(f.tuplesPerPage))}
}
