package heap

import (
	"testing"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/tuple"
)

func TestInsertIntoPartialPage(t *testing.T) {
	dev := testDevice()
	f := loadRows(t, dev, tuple.Ints(3), []tuple.Row{tuple.IntsRow(0, 0, 0)}) // 1 of 10 slots used
	tid, err := f.Insert(tuple.IntsRow(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if tid != (TID{Page: 0, Slot: 1}) {
		t.Errorf("TID = %v, want (0,1)", tid)
	}
	if f.NumTuples() != 2 || f.NumPages() != 1 {
		t.Errorf("counts: %d tuples %d pages", f.NumTuples(), f.NumPages())
	}
	pool := bufferpool.New(dev, 4)
	row, err := f.RowAt(pool, tid)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Equal(tuple.IntsRow(1, 2, 3)) {
		t.Errorf("read back %v", row)
	}
	// The original row is untouched.
	first, err := f.RowAt(pool, TID{Page: 0, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(tuple.IntsRow(0, 0, 0)) {
		t.Errorf("first row corrupted: %v", first)
	}
}

func TestInsertAppendsNewPageWhenFull(t *testing.T) {
	dev := testDevice()
	var rows []tuple.Row
	for i := int64(0); i < 10; i++ { // exactly one full page
		rows = append(rows, tuple.IntsRow(i, 0, 0))
	}
	f := loadRows(t, dev, tuple.Ints(3), rows)
	tid, err := f.Insert(tuple.IntsRow(99, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tid != (TID{Page: 1, Slot: 0}) {
		t.Errorf("TID = %v, want (1,0)", tid)
	}
	if f.NumPages() != 2 {
		t.Errorf("NumPages = %d", f.NumPages())
	}
}

func TestInsertIntoEmptyFile(t *testing.T) {
	dev := testDevice()
	f, err := Create(dev, tuple.Ints(3))
	if err != nil {
		t.Fatal(err)
	}
	tid, err := f.Insert(tuple.IntsRow(7, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	if tid != (TID{Page: 0, Slot: 0}) {
		t.Errorf("TID = %v", tid)
	}
	if f.NumTuples() != 1 || f.NumPages() != 1 {
		t.Errorf("counts: %d/%d", f.NumTuples(), f.NumPages())
	}
}

func TestInsertWrongWidth(t *testing.T) {
	dev := testDevice()
	f, err := Create(dev, tuple.Ints(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Insert(tuple.IntsRow(1)); err == nil {
		t.Error("wrong-width insert accepted")
	}
}

func TestInsertManySpansPages(t *testing.T) {
	dev := testDevice()
	f, err := Create(dev, tuple.Ints(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 57
	for i := int64(0); i < n; i++ {
		if _, err := f.Insert(tuple.IntsRow(i, i*2, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if f.NumTuples() != n {
		t.Fatalf("NumTuples = %d", f.NumTuples())
	}
	if f.NumPages() != 6 { // ceil(57/10)
		t.Errorf("NumPages = %d, want 6", f.NumPages())
	}
	pool := bufferpool.New(dev, 8)
	for i := int64(0); i < n; i++ {
		row, err := f.RowAt(pool, f.TIDOf(i))
		if err != nil {
			t.Fatal(err)
		}
		if row.Int(0) != i || row.Int(1) != i*2 {
			t.Fatalf("row %d = %v", i, row)
		}
	}
}
