// Package shard implements horizontal table partitioning: the routing
// and pruning arithmetic behind the ShardedDB facade. A Partitioning
// maps each value of one integer column to exactly one of N shards —
// by hash (load balance) or by contiguous value range (locality plus
// range pruning) — and, given a query's folded [lo, hi) predicate on
// that column, computes the subset of shards that can possibly hold
// matching rows. Pruned shards are never opened, so they incur zero
// device I/O; the facade's tests pin that property.
//
// The package is deliberately pure arithmetic — no devices, no
// operators — so the same Partitioning can later route to remote
// shards over the wire protocol exactly as it routes in-process.
package shard

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Scheme selects how values map to shards.
type Scheme int

const (
	// Hash routes each value by a fixed 64-bit mixer modulo N. Ranges
	// wider than a few values touch every shard (no range pruning),
	// but skewed insert orders still balance.
	Hash Scheme = iota
	// Range routes by binary search over N-1 ascending split bounds:
	// shard 0 owns (-inf, Bounds[0]), shard i owns
	// [Bounds[i-1], Bounds[i]), shard N-1 owns [Bounds[N-2], +inf).
	// Range predicates on the partition column prune to the owning
	// contiguous shard run.
	Range
)

func (s Scheme) String() string {
	switch s {
	case Hash:
		return "hash"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Partitioning describes one table's horizontal split: the partition
// column, the scheme, the shard count, and (for Range) the split
// bounds. It is immutable after Validate.
type Partitioning struct {
	// Column is the partition column's name; it must exist on the
	// table and is the only column routing and pruning consult.
	Column string
	// Scheme is Hash or Range.
	Scheme Scheme
	// N is the shard count (>= 1).
	N int
	// Bounds holds the N-1 strictly ascending split points of a Range
	// partitioning; it must be empty for Hash.
	Bounds []int64
}

// Validate checks the partitioning's internal consistency.
func (p Partitioning) Validate() error {
	if p.Column == "" {
		return fmt.Errorf("shard: partitioning requires a column")
	}
	if p.N < 1 {
		return fmt.Errorf("shard: shard count %d (want >= 1)", p.N)
	}
	switch p.Scheme {
	case Hash:
		if len(p.Bounds) != 0 {
			return fmt.Errorf("shard: hash partitioning takes no bounds (got %d)", len(p.Bounds))
		}
	case Range:
		if len(p.Bounds) != p.N-1 {
			return fmt.Errorf("shard: range partitioning over %d shards needs %d bounds, got %d", p.N, p.N-1, len(p.Bounds))
		}
		for i := 1; i < len(p.Bounds); i++ {
			if p.Bounds[i] <= p.Bounds[i-1] {
				return fmt.Errorf("shard: range bounds must be strictly ascending (bounds[%d]=%d <= bounds[%d]=%d)", i, p.Bounds[i], i-1, p.Bounds[i-1])
			}
		}
	default:
		return fmt.Errorf("shard: unknown scheme %d", int(p.Scheme))
	}
	return nil
}

// mix64 is the SplitMix64 finalizer: a full-avalanche 64-bit mixer, so
// dense sequential keys spread uniformly across shards.
func mix64(v int64) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Route returns the shard owning partition-column value v.
func (p Partitioning) Route(v int64) int {
	if p.N <= 1 {
		return 0
	}
	if p.Scheme == Hash {
		return int(mix64(v) % uint64(p.N))
	}
	// First bound strictly greater than v; v lands in that split.
	return sort.Search(len(p.Bounds), func(i int) bool { return v < p.Bounds[i] })
}

// maxHashEnum bounds the range width up to which hash pruning
// enumerates individual values instead of giving up and fanning out to
// every shard. Point lookups (width 1) always prune to one shard.
const maxHashEnum = 64

// Prune returns the ascending shard indexes that can hold values of
// the half-open range [lo, hi) on the partition column. An empty range
// returns nil — the contradiction short-circuit: no shard runs at all.
func (p Partitioning) Prune(lo, hi int64) []int {
	if hi <= lo {
		return nil
	}
	if p.N <= 1 {
		return []int{0}
	}
	if p.Scheme == Range {
		first := p.Route(lo)
		last := p.Route(hi - 1)
		out := make([]int, 0, last-first+1)
		for i := first; i <= last; i++ {
			out = append(out, i)
		}
		return out
	}
	// Hash: narrow ranges enumerate their values; wide ones hit all
	// shards (a hash scatters any interval).
	width := uint64(hi) - uint64(lo) // two's-complement safe
	if width <= maxHashEnum {
		seen := make(map[int]bool, p.N)
		out := make([]int, 0, p.N)
		for v := lo; ; v++ {
			s := p.Route(v)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
			if v == hi-1 || len(out) == p.N {
				break
			}
		}
		sort.Ints(out)
		return out
	}
	out := make([]int, p.N)
	for i := range out {
		out[i] = i
	}
	return out
}

// CoPartitioned reports whether two partitionings place equal
// partition-key values on the same shard index — the condition for
// partition-wise joins. Column names may differ (they belong to
// different tables); what must agree is the value-to-shard map: same
// scheme, same N, and identical bounds for Range. Any two single-shard
// partitionings are trivially co-partitioned.
func (p Partitioning) CoPartitioned(o Partitioning) bool {
	if p.N != o.N {
		return false
	}
	if p.N == 1 {
		return true
	}
	if p.Scheme != o.Scheme {
		return false
	}
	if p.Scheme == Range {
		if len(p.Bounds) != len(o.Bounds) {
			return false
		}
		for i := range p.Bounds {
			if p.Bounds[i] != o.Bounds[i] {
				return false
			}
		}
	}
	return true
}

// Describe renders the partitioning for Explain headers:
// "hash(val) % 4" or "range(val): (-inf,100) [100,200) [200,+inf)".
func (p Partitioning) Describe() string {
	if p.Scheme == Hash {
		return fmt.Sprintf("hash(%s) %% %d", p.Column, p.N)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "range(%s):", p.Column)
	for i := 0; i < p.N; i++ {
		b.WriteByte(' ')
		b.WriteString(p.DescribeShard(i))
	}
	return b.String()
}

// DescribeShard renders one shard's ownership, e.g. "[100,200)" for a
// Range split or "h%4=2" for Hash.
func (p Partitioning) DescribeShard(i int) string {
	if p.Scheme == Hash {
		return fmt.Sprintf("h%%%d=%d", p.N, i)
	}
	lo, hi := "-inf", "+inf"
	ob := "["
	if i > 0 {
		lo = fmt.Sprintf("%d", p.Bounds[i-1])
	} else {
		ob = "("
	}
	if i < len(p.Bounds) {
		hi = fmt.Sprintf("%d", p.Bounds[i])
	}
	return ob + lo + "," + hi + ")"
}

// EqualWidthBounds computes N-1 split points dividing [lo, hi) into N
// near-equal-width ranges — the convenient constructor for uniformly
// distributed partition columns (the load generator and the harness
// use it).
func EqualWidthBounds(lo, hi int64, n int) []int64 {
	if n <= 1 || hi <= lo {
		return nil
	}
	width := (hi - lo) / int64(n)
	if width < 1 {
		width = 1
	}
	bounds := make([]int64, 0, n-1)
	prev := int64(math.MinInt64)
	for i := 1; i < n; i++ {
		b := lo + int64(i)*width
		if b <= prev || b >= hi {
			break
		}
		bounds = append(bounds, b)
		prev = b
	}
	return bounds
}
