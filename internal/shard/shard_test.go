package shard

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Partitioning
		ok   bool
	}{
		{"hash-ok", Partitioning{Column: "v", Scheme: Hash, N: 4}, true},
		{"range-ok", Partitioning{Column: "v", Scheme: Range, N: 3, Bounds: []int64{10, 20}}, true},
		{"single", Partitioning{Column: "v", Scheme: Hash, N: 1}, true},
		{"no-column", Partitioning{Scheme: Hash, N: 2}, false},
		{"zero-shards", Partitioning{Column: "v", Scheme: Hash, N: 0}, false},
		{"hash-bounds", Partitioning{Column: "v", Scheme: Hash, N: 2, Bounds: []int64{5}}, false},
		{"range-missing-bounds", Partitioning{Column: "v", Scheme: Range, N: 3, Bounds: []int64{10}}, false},
		{"range-unsorted", Partitioning{Column: "v", Scheme: Range, N: 3, Bounds: []int64{20, 10}}, false},
		{"range-dup", Partitioning{Column: "v", Scheme: Range, N: 3, Bounds: []int64{10, 10}}, false},
		{"bad-scheme", Partitioning{Column: "v", Scheme: Scheme(9), N: 2, Bounds: []int64{1}}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRangeRoute(t *testing.T) {
	p := Partitioning{Column: "v", Scheme: Range, N: 4, Bounds: []int64{0, 100, 200}}
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0},
		{0, 1}, {99, 1},
		{100, 2}, {199, 2},
		{200, 3}, {math.MaxInt64, 3},
	}
	for _, c := range cases {
		if got := p.Route(c.v); got != c.want {
			t.Errorf("Route(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHashRouteDeterministicAndBalanced(t *testing.T) {
	p := Partitioning{Column: "v", Scheme: Hash, N: 7}
	counts := make([]int, p.N)
	for v := int64(0); v < 70_000; v++ {
		s := p.Route(v)
		if s != p.Route(v) {
			t.Fatalf("Route(%d) not deterministic", v)
		}
		if s < 0 || s >= p.N {
			t.Fatalf("Route(%d) = %d out of range", v, s)
		}
		counts[s]++
	}
	// Dense sequential keys must spread: every shard within 20% of
	// the uniform share.
	want := 70_000 / p.N
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("shard %d holds %d of 70000 (uniform share %d): hash does not balance", i, c, want)
		}
	}
}

func TestRangePrune(t *testing.T) {
	p := Partitioning{Column: "v", Scheme: Range, N: 4, Bounds: []int64{100, 200, 300}}
	cases := []struct {
		lo, hi int64
		want   []int
	}{
		{150, 160, []int{1}},                              // inside one shard
		{50, 250, []int{0, 1, 2}},                         // spans three
		{math.MinInt64, math.MaxInt64, []int{0, 1, 2, 3}}, // unbounded
		{300, 301, []int{3}},                              // last shard point
		{10, 10, nil},                                     // empty range
		{20, 10, nil},                                     // contradiction
		{100, 101, []int{1}},                              // boundary value
		{99, 100, []int{0}},                               // just below boundary
	}
	for _, c := range cases {
		got := p.Prune(c.lo, c.hi)
		if !equalInts(got, c.want) {
			t.Errorf("Prune(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestHashPrune(t *testing.T) {
	p := Partitioning{Column: "v", Scheme: Hash, N: 4}
	// Point lookup prunes to the owning shard.
	if got := p.Prune(42, 43); len(got) != 1 || got[0] != p.Route(42) {
		t.Errorf("point Prune = %v, want [%d]", got, p.Route(42))
	}
	// Empty range prunes everything.
	if got := p.Prune(5, 5); got != nil {
		t.Errorf("empty Prune = %v, want nil", got)
	}
	// A narrow range enumerates: the result covers exactly the routed
	// shards of its values.
	got := p.Prune(0, 10)
	want := map[int]bool{}
	for v := int64(0); v < 10; v++ {
		want[p.Route(v)] = true
	}
	if len(got) != len(want) {
		t.Errorf("narrow Prune = %v, want the %d shards of values 0..9", got, len(want))
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("narrow Prune includes shard %d which owns none of 0..9", s)
		}
	}
	// A wide range fans out to every shard.
	if got := p.Prune(0, 1_000_000); len(got) != p.N {
		t.Errorf("wide Prune = %v, want all %d shards", got, p.N)
	}
	// Full-domain ranges must not overflow.
	if got := p.Prune(math.MinInt64, math.MaxInt64); len(got) != p.N {
		t.Errorf("full-domain Prune = %v, want all %d shards", got, p.N)
	}
}

func TestCoPartitioned(t *testing.T) {
	h4 := Partitioning{Column: "a", Scheme: Hash, N: 4}
	h4b := Partitioning{Column: "b", Scheme: Hash, N: 4}
	h8 := Partitioning{Column: "a", Scheme: Hash, N: 8}
	r4 := Partitioning{Column: "a", Scheme: Range, N: 4, Bounds: []int64{1, 2, 3}}
	r4same := Partitioning{Column: "c", Scheme: Range, N: 4, Bounds: []int64{1, 2, 3}}
	r4diff := Partitioning{Column: "c", Scheme: Range, N: 4, Bounds: []int64{1, 2, 4}}
	one := Partitioning{Column: "a", Scheme: Hash, N: 1}
	oneR := Partitioning{Column: "b", Scheme: Range, N: 1}

	if !h4.CoPartitioned(h4b) {
		t.Error("same hash scheme+N with different column names must co-partition")
	}
	if h4.CoPartitioned(h8) {
		t.Error("different N must not co-partition")
	}
	if h4.CoPartitioned(r4) {
		t.Error("hash vs range must not co-partition")
	}
	if !r4.CoPartitioned(r4same) {
		t.Error("identical range bounds must co-partition")
	}
	if r4.CoPartitioned(r4diff) {
		t.Error("different range bounds must not co-partition")
	}
	if !one.CoPartitioned(oneR) {
		t.Error("any two single-shard partitionings are co-partitioned")
	}
}

func TestEqualWidthBounds(t *testing.T) {
	b := EqualWidthBounds(0, 400, 4)
	if len(b) != 3 || b[0] != 100 || b[1] != 200 || b[2] != 300 {
		t.Errorf("EqualWidthBounds(0,400,4) = %v", b)
	}
	if b := EqualWidthBounds(0, 400, 1); b != nil {
		t.Errorf("n=1 wants nil bounds, got %v", b)
	}
	// Route with these bounds spreads a uniform domain evenly.
	p := Partitioning{Column: "v", Scheme: Range, N: 4, Bounds: EqualWidthBounds(0, 400, 4)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for v := int64(0); v < 400; v++ {
		counts[p.Route(v)]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("shard %d owns %d of 400 values, want 100", i, c)
		}
	}
}

func TestDescribe(t *testing.T) {
	h := Partitioning{Column: "val", Scheme: Hash, N: 4}
	if got := h.Describe(); got != "hash(val) % 4" {
		t.Errorf("hash Describe = %q", got)
	}
	r := Partitioning{Column: "val", Scheme: Range, N: 3, Bounds: []int64{100, 200}}
	if got := r.Describe(); got != "range(val): (-inf,100) [100,200) [200,+inf)" {
		t.Errorf("range Describe = %q", got)
	}
	if got := r.DescribeShard(1); got != "[100,200)" {
		t.Errorf("DescribeShard(1) = %q", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
