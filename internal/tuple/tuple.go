// Package tuple defines schemas, rows and predicates shared by the
// storage engine and the query executor.
//
// Rows are fixed-width: every column occupies 8 bytes on disk and is
// either a signed 64-bit integer or a 64-bit float. This matches the
// micro-benchmark of the paper (tables of 10 integer columns, 64-byte
// tuples) and is sufficient for the TPC-H-like workload, where dates
// are day numbers and monetary values are cents.
package tuple

import (
	"fmt"
	"math"
	"strings"
)

// ColType is the type of a column.
type ColType uint8

// Supported column types.
const (
	Int64 ColType = iota
	Float64
)

func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// and non-empty.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("tuple: schema requires at least one column")
	}
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("tuple: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate column name %q", c.Name)
		}
		if c.Type != Int64 && c.Type != Float64 {
			return nil, fmt.Errorf("tuple: column %q has unknown type %d", c.Name, c.Type)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// known schemas in tests, examples and the workload generators.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Ints builds a schema of n Int64 columns named c1..cn, the layout of
// the paper's micro-benchmark table.
func Ints(n int) *Schema {
	cols := make([]Column, n)
	for i := range cols {
		cols[i] = Column{Name: fmt.Sprintf("c%d", i+1), Type: Int64}
	}
	return MustSchema(cols...)
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// TupleSize returns the on-disk size of one row in bytes.
func (s *Schema) TupleSize() int { return 8 * len(s.cols) }

// Concat returns a schema holding s's columns followed by t's, with
// t's names prefixed when they would collide. Used by joins. It
// panics when the rename still collides; planners that must reject
// such chains gracefully use ConcatChecked.
func (s *Schema) Concat(t *Schema) *Schema {
	out, err := s.ConcatChecked(t)
	if err != nil {
		panic(err)
	}
	return out
}

// ConcatChecked is Concat with the rename collision reported as an
// error instead of a panic: a right column whose "r."-prefixed name
// still clashes (e.g. a three-way join over one column name) cannot
// be represented. It is the single definition of the join output
// schema — the plan layer and the join operators must agree on it
// exactly, or column resolution would silently read wrong columns.
func (s *Schema) ConcatChecked(t *Schema) (*Schema, error) {
	cols := s.Columns()
	for _, c := range t.cols {
		name := c.Name
		for _, have := range cols {
			if have.Name == name {
				name = "r." + name
				break
			}
		}
		cols = append(cols, Column{Name: name, Type: c.Type})
	}
	return NewSchema(cols...)
}

func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Row is one tuple. Each element holds the raw 8-byte representation
// of its column: int64 values directly, float64 values as IEEE bits.
type Row []uint64

// NewRow allocates a zero row for the schema.
func NewRow(s *Schema) Row { return make(Row, s.NumCols()) }

// Int returns column i as an int64.
func (r Row) Int(i int) int64 { return int64(r[i]) }

// SetInt stores an int64 into column i.
func (r Row) SetInt(i int, v int64) { r[i] = uint64(v) }

// Float returns column i as a float64.
func (r Row) Float(i int) float64 { return math.Float64frombits(r[i]) }

// SetFloat stores a float64 into column i.
func (r Row) SetFloat(i int, v float64) { r[i] = math.Float64bits(v) }

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Concat returns a new row holding r followed by t.
func (r Row) Concat(t Row) Row {
	out := make(Row, 0, len(r)+len(t))
	out = append(out, r...)
	return append(out, t...)
}

// IntsRow builds a row from int64 values.
func IntsRow(vals ...int64) Row {
	r := make(Row, len(vals))
	for i, v := range vals {
		r[i] = uint64(v)
	}
	return r
}

// Equal reports whether two rows are bitwise identical.
func (r Row) Equal(t Row) bool {
	if len(r) != len(t) {
		return false
	}
	for i := range r {
		if r[i] != t[i] {
			return false
		}
	}
	return true
}

// RangePred is an inclusive-exclusive range predicate on an integer
// column: Lo <= col < Hi. It is the shape of the paper's stress query
// ("where c2 >= 0 and c2 < X").
type RangePred struct {
	Col int
	Lo  int64 // inclusive
	Hi  int64 // exclusive
}

// Matches reports whether the row satisfies the predicate.
func (p RangePred) Matches(r Row) bool {
	v := r.Int(p.Col)
	return v >= p.Lo && v < p.Hi
}

// All returns a predicate matching every value of the column.
func All(col int) RangePred {
	return RangePred{Col: col, Lo: math.MinInt64, Hi: math.MaxInt64}
}

// Empty reports whether the predicate matches no value at all.
func (p RangePred) Empty() bool { return p.Hi <= p.Lo }

// Intersect returns the conjunction of two predicates on the same
// column: the overlap of their ranges (possibly empty).
func (p RangePred) Intersect(q RangePred) RangePred {
	out := p
	if q.Lo > out.Lo {
		out.Lo = q.Lo
	}
	if q.Hi < out.Hi {
		out.Hi = q.Hi
	}
	return out
}

// MatchesAll reports whether the row satisfies every predicate of the
// conjunction.
func MatchesAll(preds []RangePred, r Row) bool {
	for _, p := range preds {
		if !p.Matches(r) {
			return false
		}
	}
	return true
}

func (p RangePred) String() string {
	return fmt.Sprintf("%d <= c[%d] < %d", p.Lo, p.Col, p.Hi)
}
