package tuple

import "testing"

func TestBatchFixedCapacityOverflow(t *testing.T) {
	b := NewBatch(2, 3)
	if b.Width() != 2 || b.Cap() != 3 || b.Len() != 0 || b.Full() {
		t.Fatalf("fresh batch: width=%d cap=%d len=%d full=%v", b.Width(), b.Cap(), b.Len(), b.Full())
	}
	for i := 0; i < 3; i++ {
		if !b.Append(IntsRow(int64(i), int64(10*i))) {
			t.Fatalf("append %d refused below capacity", i)
		}
	}
	if !b.Full() || b.Len() != 3 {
		t.Fatalf("after 3 appends: len=%d full=%v", b.Len(), b.Full())
	}
	if b.Append(IntsRow(9, 9)) {
		t.Fatal("append succeeded on a full batch")
	}
	if b.AppendSlot() != nil || b.AppendSlotRaw() != nil {
		t.Fatal("AppendSlot on a full batch must return nil")
	}
	for i := 0; i < 3; i++ {
		if got := b.Row(i).Int(0); got != int64(i) {
			t.Errorf("row %d col 0 = %d, want %d", i, got, i)
		}
	}
}

func TestBatchResetReusesBacking(t *testing.T) {
	b := NewBatch(2, 4)
	b.Append(IntsRow(1, 2))
	b.Append(IntsRow(3, 4))
	b.Reset()
	if b.Len() != 0 || b.Full() {
		t.Fatalf("after reset: len=%d full=%v", b.Len(), b.Full())
	}
	// Refill and verify no stale data leaks through AppendSlot's zeroing.
	slot := b.AppendSlot()
	if slot[0] != 0 || slot[1] != 0 {
		t.Fatalf("AppendSlot after reset not zeroed: %v", slot)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for !b.Full() {
			b.AppendSlot()
		}
	})
	if allocs != 0 {
		t.Errorf("reset+refill allocated %.1f times per run, want 0", allocs)
	}
}

func TestBatchGrowable(t *testing.T) {
	b := NewGrowableBatch(3)
	if b.Cap() != 0 {
		t.Fatalf("growable cap = %d, want 0", b.Cap())
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if b.Full() {
			t.Fatal("growable batch reported full")
		}
		r := b.AppendSlot()
		r.SetInt(0, int64(i))
	}
	if b.Len() != n {
		t.Fatalf("len = %d, want %d", b.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		if got := b.Row(i).Int(0); got != int64(i) {
			t.Errorf("row %d = %d, want %d", i, got, i)
		}
	}
}

func TestBatchFillLimit(t *testing.T) {
	b := NewBatch(1, 8)
	b.SetFillLimit(3)
	for b.AppendSlot() != nil {
	}
	if b.Len() != 3 || !b.Full() {
		t.Fatalf("with fill limit 3: len=%d full=%v", b.Len(), b.Full())
	}
	b.Reset()
	if !b.Append(IntsRow(1)) || !b.Append(IntsRow(2)) || !b.Append(IntsRow(3)) || b.Append(IntsRow(4)) {
		t.Fatal("fill limit did not survive Reset")
	}
	b.SetFillLimit(0)
	if b.Full() {
		t.Fatal("clearing the fill limit should reopen the batch")
	}
	b.SetFillLimit(99) // clamps to capacity
	b.Reset()
	for b.AppendSlot() != nil {
	}
	if b.Len() != 8 {
		t.Fatalf("fill limit beyond capacity: len=%d, want 8", b.Len())
	}
}

func TestBatchAppendRows(t *testing.T) {
	src := NewGrowableBatch(2)
	for i := 0; i < 10; i++ {
		src.Append(IntsRow(int64(i), int64(-i)))
	}
	dst := NewBatch(2, 4)
	if n := dst.AppendRows(src, 3, 7); n != 4 {
		t.Fatalf("AppendRows copied %d, want 4 (capacity-bounded)", n)
	}
	for i := 0; i < 4; i++ {
		if got := dst.Row(i).Int(0); got != int64(3+i) {
			t.Errorf("dst row %d = %d, want %d", i, got, 3+i)
		}
	}
	dst.Reset()
	if n := dst.AppendRows(src, 8, 2); n != 2 {
		t.Fatalf("AppendRows copied %d, want 2", n)
	}
	if n := dst.AppendRows(src, 0, 0); n != 0 {
		t.Fatalf("empty AppendRows copied %d", n)
	}
}

func TestBatchTruncateAndFilter(t *testing.T) {
	b := NewGrowableBatch(1)
	for i := 0; i < 10; i++ {
		b.Append(IntsRow(int64(i)))
	}
	b.Filter(func(r Row) bool { return r.Int(0)%2 == 0 })
	if b.Len() != 5 {
		t.Fatalf("after filter len = %d, want 5", b.Len())
	}
	for i := 0; i < 5; i++ {
		if got := b.Row(i).Int(0); got != int64(2*i) {
			t.Errorf("filtered row %d = %d, want %d", i, got, 2*i)
		}
	}
	b.Truncate(2)
	if b.Len() != 2 {
		t.Fatalf("after truncate len = %d, want 2", b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("truncate beyond length did not panic")
		}
	}()
	b.Truncate(3)
}

func TestBatchSortByIntCol(t *testing.T) {
	b := NewGrowableBatch(2)
	// Duplicate keys with distinct payloads check stability.
	in := [][2]int64{{3, 0}, {1, 1}, {3, 2}, {2, 3}, {1, 4}, {3, 5}}
	for _, p := range in {
		b.Append(IntsRow(p[0], p[1]))
	}
	b.SortByIntCol(0)
	want := [][2]int64{{1, 1}, {1, 4}, {2, 3}, {3, 0}, {3, 2}, {3, 5}}
	for i, p := range want {
		got := b.Row(i)
		if got.Int(0) != p[0] || got.Int(1) != p[1] {
			t.Errorf("sorted row %d = (%d,%d), want (%d,%d)", i, got.Int(0), got.Int(1), p[0], p[1])
		}
	}
}
