package tuple

import (
	"strings"
	"testing"
)

func TestColTypeString(t *testing.T) {
	if Int64.String() != "int64" || Float64.String() != "float64" {
		t.Errorf("type names: %v %v", Int64, Float64)
	}
	if !strings.Contains(ColType(7).String(), "7") {
		t.Errorf("unknown type: %v", ColType(7))
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: Int64}, Column{Name: "b", Type: Float64})
	got := s.String()
	if got != "(a int64, b float64)" {
		t.Errorf("Schema.String() = %q", got)
	}
}

func TestRangePredString(t *testing.T) {
	p := RangePred{Col: 2, Lo: 5, Hi: 9}
	got := p.String()
	if !strings.Contains(got, "5") || !strings.Contains(got, "9") || !strings.Contains(got, "2") {
		t.Errorf("RangePred.String() = %q", got)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema accepted invalid schema")
		}
	}()
	MustSchema()
}

func TestColumnsReturnsCopy(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: Int64})
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Col(0).Name != "a" {
		t.Error("Columns() exposed internal state")
	}
}
