package tuple

import "sort"

// Batch is a block of fixed-width rows stored back to back in one flat
// []uint64, the unit of the engine's vectorized execution path. A batch
// created with NewBatch has a fixed row capacity and never reallocates:
// producers decode rows directly into slots returned by AppendSlot, so
// moving a tuple through the pipeline costs no allocation. A batch
// created with NewGrowableBatch instead grows amortised without bound;
// the engine uses that form for internal staging buffers (for example
// the Smooth Scan region queue) that are reused across refills.
//
// Rows obtained from Row and AppendSlot are views into the backing
// slice: they are valid until the next Reset (or, for growable batches,
// the next growth-triggering append). Callers that retain rows beyond
// that must copy them (Row.Clone).
type Batch struct {
	width   int
	maxRows int // 0 = growable without bound
	maxFill int // 0 = no soft cap; else Full() at maxFill rows
	n       int
	data    []uint64
}

// NewBatch creates a fixed-capacity batch of capacity rows of width
// columns. The backing array is allocated once, up front.
//
// The panics below (and in NewGrowableBatch, AppendRows, Append and
// Truncate) guard engine invariants, not user input: widths come from
// schemas NewSchema already validated as non-empty, and capacities are
// compile-time constants (exec.DefaultBatchSize) — no public API call
// can reach them with bad values. Faults from user input or the device
// surface as typed errors instead.
func NewBatch(width, capacity int) *Batch {
	if width < 1 {
		panic("tuple: batch width < 1")
	}
	if capacity < 1 {
		panic("tuple: batch capacity < 1")
	}
	return &Batch{width: width, maxRows: capacity, data: make([]uint64, 0, width*capacity)}
}

// NewBatchFor is NewBatch for rows of the given schema.
func NewBatchFor(s *Schema, capacity int) *Batch { return NewBatch(s.NumCols(), capacity) }

// NewGrowableBatch creates an unbounded batch of the given width. It
// grows amortised on append and keeps its backing array across Resets.
func NewGrowableBatch(width int) *Batch {
	if width < 1 {
		panic("tuple: batch width < 1")
	}
	return &Batch{width: width}
}

// Width returns the number of columns per row.
func (b *Batch) Width() int { return b.width }

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return b.n }

// Cap returns the fixed row capacity, or 0 for a growable batch.
func (b *Batch) Cap() int { return b.maxRows }

// Full reports whether another row can be appended. Growable batches
// are never full unless a fill limit is set.
func (b *Batch) Full() bool {
	if b.maxFill > 0 && b.n >= b.maxFill {
		return true
	}
	return b.maxRows > 0 && b.n >= b.maxRows
}

// SetFillLimit caps the batch at n rows for subsequent fills — Full
// reports true and AppendSlot refuses once Len reaches n — without
// shrinking the allocation. Zero removes the limit. The limit survives
// Reset; operators such as Limit use it to stop a producer from
// overrunning the rows still wanted.
func (b *Batch) SetFillLimit(n int) {
	if n < 0 {
		n = 0
	}
	if b.maxRows > 0 && n > b.maxRows {
		n = b.maxRows
	}
	b.maxFill = n
}

// FillLimit returns the current fill limit, 0 when none is set.
// Operators that tighten the limit temporarily (e.g. Limit) save it
// and restore it when done.
func (b *Batch) FillLimit() int { return b.maxFill }

// FillCap returns the effective row capacity of the current fill: the
// smaller of the fixed capacity and the fill limit, or 0 when the
// batch is unbounded.
func (b *Batch) FillCap() int {
	if b.maxFill > 0 && (b.maxRows == 0 || b.maxFill < b.maxRows) {
		return b.maxFill
	}
	return b.maxRows
}

// Reset empties the batch, keeping the backing array for reuse.
func (b *Batch) Reset() {
	b.n = 0
	b.data = b.data[:0]
}

// Row returns the i-th row as a view into the batch.
func (b *Batch) Row(i int) Row {
	return Row(b.data[i*b.width : (i+1)*b.width : (i+1)*b.width])
}

// AppendSlot appends one zeroed row and returns it for the caller to
// fill in place. It returns nil when the batch is full.
func (b *Batch) AppendSlot() Row {
	row := b.AppendSlotRaw()
	for i := range row {
		row[i] = 0
	}
	return row
}

// AppendSlotRaw is AppendSlot without the zeroing: the returned row's
// contents are undefined and the caller must overwrite every column.
// Decoders that fill whole rows (heap.DecodeBatch and friends) use it
// to skip a pointless clear on the hot path.
func (b *Batch) AppendSlotRaw() Row {
	if b.Full() {
		return nil
	}
	need := (b.n + 1) * b.width
	if cap(b.data) < need {
		grown := make([]uint64, need, 2*need)
		copy(grown, b.data)
		b.data = grown
	} else {
		b.data = b.data[:need]
	}
	b.n++
	return b.Row(b.n - 1)
}

// AppendRows copies rows [from, from+n) of src into b as one flat
// copy, stopping early when b fills; it returns the number of rows
// copied. The widths must match.
func (b *Batch) AppendRows(src *Batch, from, n int) int {
	if src.width != b.width {
		panic("tuple: batch width mismatch")
	}
	max := b.FillCap()
	if max > 0 && n > max-b.n {
		n = max - b.n
	}
	if n <= 0 {
		return 0
	}
	need := (b.n + n) * b.width
	if cap(b.data) < need {
		grown := make([]uint64, need, 2*need)
		copy(grown, b.data)
		b.data = grown
	} else {
		b.data = b.data[:need]
	}
	copy(b.data[b.n*b.width:], src.data[from*src.width:(from+n)*src.width])
	b.n += n
	return n
}

// Append copies the row into the batch; it reports false (and appends
// nothing) when the batch is full. It panics if the row width does not
// match, like AppendRows.
func (b *Batch) Append(r Row) bool {
	if len(r) != b.width {
		panic("tuple: batch row width mismatch")
	}
	slot := b.AppendSlot()
	if slot == nil {
		return false
	}
	copy(slot, r)
	return true
}

// TrySwap moves o's rows into b (and b's backing array into o) by
// exchanging the flat arrays — an O(1) alternative to AppendRows for
// exchange pipelines handing full batches across goroutines. It
// requires equal widths and succeeds only when b is empty and can hold
// o's rows within its capacity and fill limit; it reports whether the
// swap happened (callers fall back to copying when it did not).
func (b *Batch) TrySwap(o *Batch) bool {
	if b.width != o.width || b.n != 0 {
		return false
	}
	if fc := b.FillCap(); fc > 0 && o.n > fc {
		return false
	}
	b.data, o.data = o.data, b.data[:0]
	b.n, o.n = o.n, 0
	return true
}

// Truncate drops rows beyond the first n. It panics if n exceeds Len.
func (b *Batch) Truncate(n int) {
	if n > b.n {
		panic("tuple: batch truncate beyond length")
	}
	b.n = n
	b.data = b.data[:n*b.width]
}

// Filter compacts the batch in place, keeping only rows for which keep
// returns true, preserving order.
func (b *Batch) Filter(keep func(Row) bool) {
	out := 0
	for i := 0; i < b.n; i++ {
		row := b.Row(i)
		if !keep(row) {
			continue
		}
		if out != i {
			copy(b.Row(out), row)
		}
		out++
	}
	b.Truncate(out)
}

// batchByCol implements a stable in-place sort of a batch by an integer
// column, swapping row contents through a scratch row.
type batchByCol struct {
	b   *Batch
	col int
	tmp Row
}

func (s batchByCol) Len() int           { return s.b.n }
func (s batchByCol) Less(i, j int) bool { return s.b.Row(i).Int(s.col) < s.b.Row(j).Int(s.col) }
func (s batchByCol) Swap(i, j int) {
	ri, rj := s.b.Row(i), s.b.Row(j)
	copy(s.tmp, ri)
	copy(ri, rj)
	copy(rj, s.tmp)
}

// SortByIntCol stably sorts the batch's rows in place by the integer
// column col, ascending. Stability makes the result identical to a
// sort.SliceStable over materialised rows.
func (b *Batch) SortByIntCol(col int) {
	sort.Stable(batchByCol{b: b, col: col, tmp: make(Row, b.width)})
}
