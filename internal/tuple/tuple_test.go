package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Column{Name: "", Type: Int64}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "a", Type: Int64}); err == nil {
		t.Error("duplicate column name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: ColType(99)}); err == nil {
		t.Error("unknown column type accepted")
	}
	s, err := NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "b", Type: Float64})
	if err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if s.NumCols() != 2 || s.TupleSize() != 16 {
		t.Errorf("NumCols=%d TupleSize=%d", s.NumCols(), s.TupleSize())
	}
}

func TestIntsSchema(t *testing.T) {
	s := Ints(10)
	if s.NumCols() != 10 {
		t.Fatalf("NumCols = %d", s.NumCols())
	}
	if s.TupleSize() != 80 {
		t.Errorf("TupleSize = %d, want 80", s.TupleSize())
	}
	if s.ColIndex("c2") != 1 {
		t.Errorf("ColIndex(c2) = %d, want 1", s.ColIndex("c2"))
	}
	if s.ColIndex("missing") != -1 {
		t.Errorf("ColIndex(missing) = %d, want -1", s.ColIndex("missing"))
	}
	if s.Col(0).Name != "c1" || s.Col(9).Name != "c10" {
		t.Errorf("column names: %v", s.Columns())
	}
}

func TestConcatSchemaRenamesCollisions(t *testing.T) {
	a := MustSchema(Column{Name: "k", Type: Int64}, Column{Name: "v", Type: Int64})
	b := MustSchema(Column{Name: "k", Type: Int64}, Column{Name: "w", Type: Int64})
	c := a.Concat(b)
	if c.NumCols() != 4 {
		t.Fatalf("NumCols = %d", c.NumCols())
	}
	if c.ColIndex("r.k") != 2 {
		t.Errorf("collision not renamed: %v", c)
	}
	if c.ColIndex("w") != 3 {
		t.Errorf("non-colliding name changed: %v", c)
	}
}

func TestRowAccessors(t *testing.T) {
	s := MustSchema(Column{Name: "i", Type: Int64}, Column{Name: "f", Type: Float64})
	r := NewRow(s)
	r.SetInt(0, -42)
	r.SetFloat(1, 3.25)
	if r.Int(0) != -42 {
		t.Errorf("Int = %d", r.Int(0))
	}
	if r.Float(1) != 3.25 {
		t.Errorf("Float = %v", r.Float(1))
	}
}

func TestRowCloneIsIndependent(t *testing.T) {
	r := IntsRow(1, 2, 3)
	c := r.Clone()
	c.SetInt(0, 99)
	if r.Int(0) != 1 {
		t.Error("Clone aliases original")
	}
	if !r.Equal(IntsRow(1, 2, 3)) {
		t.Error("Equal failed on identical rows")
	}
	if r.Equal(c) || r.Equal(IntsRow(1, 2)) {
		t.Error("Equal true for different rows")
	}
}

func TestRowConcat(t *testing.T) {
	got := IntsRow(1, 2).Concat(IntsRow(3))
	if !got.Equal(IntsRow(1, 2, 3)) {
		t.Errorf("Concat = %v", got)
	}
}

func TestRangePred(t *testing.T) {
	p := RangePred{Col: 1, Lo: 10, Hi: 20}
	cases := []struct {
		v    int64
		want bool
	}{{9, false}, {10, true}, {15, true}, {19, true}, {20, false}, {-5, false}}
	for _, c := range cases {
		r := IntsRow(0, c.v)
		if p.Matches(r) != c.want {
			t.Errorf("Matches(%d) = %v, want %v", c.v, !c.want, c.want)
		}
	}
}

func TestAllPredicate(t *testing.T) {
	p := All(0)
	for _, v := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64 - 1} {
		if !p.Matches(IntsRow(v)) {
			t.Errorf("All(0) rejected %d", v)
		}
	}
	// Hi is exclusive, so MaxInt64 itself is excluded; acceptable for
	// generated data, which never uses MaxInt64.
	if p.Matches(IntsRow(math.MaxInt64)) {
		t.Log("All matches MaxInt64 (unexpected but harmless)")
	}
}

// Property: int64 and float64 round-trip through the raw representation.
func TestRowRoundTripProperty(t *testing.T) {
	fInt := func(v int64) bool {
		r := make(Row, 1)
		r.SetInt(0, v)
		return r.Int(0) == v
	}
	if err := quick.Check(fInt, nil); err != nil {
		t.Error(err)
	}
	fFloat := func(v float64) bool {
		r := make(Row, 1)
		r.SetFloat(0, v)
		got := r.Float(0)
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(fFloat, nil); err != nil {
		t.Error(err)
	}
}

// Property: RangePred.Matches agrees with the direct comparison.
func TestRangePredProperty(t *testing.T) {
	f := func(v, lo, hi int64) bool {
		p := RangePred{Col: 0, Lo: lo, Hi: hi}
		return p.Matches(IntsRow(v)) == (v >= lo && v < hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
