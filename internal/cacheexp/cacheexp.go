// Package cacheexp is the result-cache experiment of the ssbench
// suite: a deterministic first-run / repeat / invalidate / re-repeat
// sweep over the micro-benchmark table with the semantic result-cache
// tier on (docs/CACHING.md), reporting simulated device cost only, so
// its rows can live in the byte-diffed ssbench golden.
//
// The table shows the tier's contract in numbers: a repeat of a cached
// query performs zero device I/O (io-req, pages and time all 0), an
// Insert bumps the table's epoch so the next run misses, re-executes
// and re-caches, and the repeat after that is served from memory
// again. The sweep runs both the local DB tier and the sharded
// coordinator tier above scatter-gather.
//
// Like internal/shardexp it lives outside internal/harness because it
// drives the public facade, and is imported only by cmd/ssbench.
package cacheexp

import (
	"fmt"

	"smoothscan"
	"smoothscan/internal/harness"
	"smoothscan/internal/loadgen"
)

// ID is the experiment identifier cmd/ssbench dispatches on.
const ID = "cache"

// Config holds the experiment's scale knobs; zero values get defaults
// matching the shardexp scale.
type Config struct {
	Rows int64
	Pool int
	Seed int64
}

func (c *Config) defaults() {
	if c.Rows == 0 {
		c.Rows = 24_000
	}
	if c.Pool == 0 {
		c.Pool = 256
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// engine is the slice of the smoothscan surface the sweep needs; both
// *DB and *ShardedDB satisfy it.
type engine interface {
	smoothscan.Engine
	ColdCache() error
	Insert(table string, vals ...int64) error
}

// Run executes the sweep: for the local and the 2-way sharded engine,
// a predicate covering ~1/8, 1/2 and all of the domain runs four
// times — cold (stores), repeat (served from cache), after an Insert
// (epoch invalidation forces a re-execute), repeat again (re-cached).
// Every number is simulated, so the table is byte-stable.
func Run(cfg Config) (*harness.Table, error) {
	cfg.defaults()
	domain := cfg.Rows // like loadgen's micro shape: val uniform over ~rows
	opts := smoothscan.Options{PoolPages: cfg.Pool, ResultCacheBytes: 16 << 20}
	t := &harness.Table{
		ID:     ID,
		Title:  "Semantic result cache: first run x repeat x write invalidation (simulated cost)",
		Header: []string{"engine", "sel", "run", "rows", "cached", "io-req", "pages", "time"},
		Notes: []string{
			"a repeat of a cached query is served from memory: io-req, pages and time are all zero",
			"an Insert bumps the table epoch, so the next run re-executes (warm pool) and re-caches",
			"the sharded engine caches at the coordinator, above scatter-gather",
		},
	}
	sels := []struct {
		name string
		frac float64
	}{
		{"narrow", 0.125},
		{"half", 0.5},
		{"full", 1.0},
	}
	engines := []struct {
		name string
		open func() (engine, error)
	}{
		{"local", func() (engine, error) {
			return loadgen.BuildDB(cfg.Rows, domain, cfg.Seed, opts)
		}},
		{"sharded2", func() (engine, error) {
			return loadgen.BuildShardedDB(cfg.Rows, domain, cfg.Seed, 2, opts)
		}},
	}
	for _, eng := range engines {
		e, err := eng.open()
		if err != nil {
			return nil, err
		}
		// One deterministic insert row per invalidation step; ids start
		// past the generated range.
		nextID := cfg.Rows
		for _, sel := range sels {
			width := int64(float64(domain) * sel.frac)
			// ColdCache purges the buffer pool and the result-cache
			// tier, so each selectivity's "first" run is a true cold
			// start regardless of sweep order.
			if err := e.ColdCache(); err != nil {
				return nil, err
			}
			step := func(run string) error {
				rows, err := e.Table(loadgen.Table).
					Where(loadgen.IndexedCol, smoothscan.Between(0, width)).
					Run(nil)
				if err != nil {
					return err
				}
				var count int64
				for rows.Next() {
					count++
				}
				if err := rows.Err(); err != nil {
					rows.Close()
					return err
				}
				if err := rows.Close(); err != nil {
					return err
				}
				es := rows.ExecStats()
				cached := "no"
				if es.ResultCache.Hit {
					cached = "yes"
				}
				t.Rows = append(t.Rows, []string{
					eng.name,
					sel.name,
					run,
					fmt.Sprintf("%d", count),
					cached,
					fmt.Sprintf("%d", es.IO.Requests),
					fmt.Sprintf("%d", es.IO.PagesRead),
					fmt.Sprintf("%.1f", es.IO.Time()),
				})
				return nil
			}
			if err := step("first"); err != nil {
				return nil, err
			}
			if err := step("repeat"); err != nil {
				return nil, err
			}
			// The inserted row's val lands inside every predicate range,
			// but invalidation is epoch-driven: any write to the table
			// would force the re-execute.
			vals := make([]int64, 10)
			vals[0] = nextID
			nextID++
			vals[1] = width / 2
			if err := e.Insert(loadgen.Table, vals...); err != nil {
				return nil, err
			}
			if err := step("after-insert"); err != nil {
				return nil, err
			}
			if err := step("repeat-2"); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
