package access

import (
	"fmt"
	"testing"

	"smoothscan/internal/tuple"
)

// batchOperator is the vectorized protocol shape (mirrors
// exec.BatchOperator without importing exec).
type batchOperator interface {
	operator
	Schema() *tuple.Schema
	NextBatch(b *tuple.Batch) (int, error)
}

// drainBatch runs a batch operator to completion with the given batch
// capacity, cloning rows out.
func drainBatch(t *testing.T, op batchOperator, batchCap int) []tuple.Row {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	b := tuple.NewBatchFor(op.Schema(), batchCap)
	var out []tuple.Row
	for {
		n, err := op.NextBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			out = append(out, b.Row(i).Clone())
		}
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchedAccessPathEquivalence checks, for every traditional access
// path, that batched execution returns exactly the per-tuple rows in
// the same order and leaves bit-identical device statistics (I/O
// requests, random/sequential split, simulated I/O and CPU time).
func TestBatchedAccessPathEquivalence(t *testing.T) {
	const numRows = 500
	gen := func(i int64) int64 { return (i * 89) % numRows }
	preds := map[string]tuple.RangePred{
		"narrow": {Col: 1, Lo: 10, Hi: 35},
		"wide":   {Col: 1, Lo: 0, Hi: 400},
		"all":    {Col: 1, Lo: 0, Hi: numRows},
	}
	paths := map[string]func(fx *fixture, pred tuple.RangePred) batchOperator{
		"full": func(fx *fixture, pred tuple.RangePred) batchOperator { return NewFullScan(fx.file, fx.pool, pred) },
		"index": func(fx *fixture, pred tuple.RangePred) batchOperator {
			return NewIndexScan(fx.file, fx.pool, fx.tree, pred)
		},
		"sort": func(fx *fixture, pred tuple.RangePred) batchOperator {
			return NewSortScan(fx.file, fx.pool, fx.tree, pred, true)
		},
		"switch": func(fx *fixture, pred tuple.RangePred) batchOperator {
			return NewSwitchScan(fx.file, fx.pool, fx.tree, pred, 20)
		},
	}
	for pathName, mk := range paths {
		for predName, pred := range preds {
			for _, batchCap := range []int{1, 9, 128} {
				name := fmt.Sprintf("%s/%s/batch=%d", pathName, predName, batchCap)
				t.Run(name, func(t *testing.T) {
					fxA := newFixture(t, numRows, 24, gen)
					want := drain(t, mk(fxA, pred))

					fxB := newFixture(t, numRows, 24, gen)
					got := drainBatch(t, mk(fxB, pred), batchCap)

					if !rowsEqual(want, got) {
						t.Fatalf("rows differ: per-tuple %d, batched %d", len(want), len(got))
					}
					if sa, sb := fxA.dev.Stats(), fxB.dev.Stats(); sa != sb {
						t.Errorf("device stats differ:\n per-tuple: %+v\n batched:   %+v", sa, sb)
					}
				})
			}
		}
	}
}
