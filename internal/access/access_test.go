package access

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// fixture bundles a loaded table with a secondary index on column 1
// ("c2"), mirroring the paper's micro-benchmark.
type fixture struct {
	dev  *disk.Device
	pool *bufferpool.Pool
	file *heap.File
	tree *btree.Tree
	rows []tuple.Row
}

// newFixture loads numRows 3-column rows where c1 is the row number
// and c2 = gen(i); the index is built on c2.
func newFixture(t *testing.T, numRows int64, poolPages int, gen func(i int64) int64) *fixture {
	t.Helper()
	dev := disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 256})
	schema := tuple.Ints(3) // 24-byte tuples -> 10 per page
	file, err := heap.Create(dev, schema)
	if err != nil {
		t.Fatal(err)
	}
	b := file.NewBuilder()
	var rows []tuple.Row
	for i := int64(0); i < numRows; i++ {
		r := tuple.IntsRow(i, gen(i), i%3)
		rows = append(rows, r)
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	tree, err := btree.BuildOnColumn(dev, file, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	return &fixture{dev: dev, pool: bufferpool.New(dev, poolPages), file: file, tree: tree, rows: rows}
}

type operator interface {
	Open() error
	Next() (tuple.Row, bool, error)
	Close() error
}

func drain(t *testing.T, op operator) []tuple.Row {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	var out []tuple.Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, row)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func expected(rows []tuple.Row, pred tuple.RangePred) []tuple.Row {
	var out []tuple.Row
	for _, r := range rows {
		if pred.Matches(r) {
			out = append(out, r)
		}
	}
	return out
}

// sortByKeyThenTID orders rows by (c2, c1): c1 is the load order, so
// ties in the key resolve in TID order, matching the index.
func sortByKeyThenTID(rows []tuple.Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Int(1) != rows[j].Int(1) {
			return rows[i].Int(1) < rows[j].Int(1)
		}
		return rows[i].Int(0) < rows[j].Int(0)
	})
}

func rowsEqual(a, b []tuple.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestFullScanReturnsAllMatches(t *testing.T) {
	fx := newFixture(t, 500, 64, func(i int64) int64 { return i % 100 })
	pred := tuple.RangePred{Col: 1, Lo: 10, Hi: 20}
	got := drain(t, NewFullScan(fx.file, fx.pool, pred))
	want := expected(fx.rows, pred)
	if !rowsEqual(got, want) {
		t.Errorf("full scan: %d rows, want %d", len(got), len(want))
	}
}

func TestFullScanIsSequential(t *testing.T) {
	fx := newFixture(t, 1000, 256, func(i int64) int64 { return i })
	drain(t, NewFullScan(fx.file, fx.pool, tuple.All(1)))
	s := fx.dev.Stats()
	if s.PagesRead != fx.file.NumPages() {
		t.Errorf("pages read = %d, want %d", s.PagesRead, fx.file.NumPages())
	}
	if s.RandomAccesses != 1 {
		t.Errorf("random accesses = %d, want 1 (initial seek only)", s.RandomAccesses)
	}
	// Chunked requests: ceil(pages/16).
	wantReq := (fx.file.NumPages() + 15) / 16
	if s.Requests != wantReq {
		t.Errorf("requests = %d, want %d", s.Requests, wantReq)
	}
}

func TestFullScanCostIndependentOfSelectivity(t *testing.T) {
	fx := newFixture(t, 1000, 256, func(i int64) int64 { return i })
	drain(t, NewFullScan(fx.file, fx.pool, tuple.RangePred{Col: 1, Lo: 0, Hi: 1}))
	lowIO := fx.dev.Stats().IOTime
	fx.pool.Reset()
	fx.dev.ResetStats()
	drain(t, NewFullScan(fx.file, fx.pool, tuple.All(1)))
	highIO := fx.dev.Stats().IOTime
	if lowIO != highIO {
		t.Errorf("full scan I/O depends on selectivity: %v vs %v", lowIO, highIO)
	}
}

func TestIndexScanOrderAndContent(t *testing.T) {
	fx := newFixture(t, 500, 64, func(i int64) int64 { return (i * 37) % 100 })
	pred := tuple.RangePred{Col: 1, Lo: 25, Hi: 75}
	got := drain(t, NewIndexScan(fx.file, fx.pool, fx.tree, pred))
	want := expected(fx.rows, pred)
	sortByKeyThenTID(want)
	if !rowsEqual(got, want) {
		t.Fatalf("index scan mismatch: %d rows, want %d", len(got), len(want))
	}
}

func TestIndexScanRandomIOGrowsWithSelectivity(t *testing.T) {
	fx := newFixture(t, 2000, 16, func(i int64) int64 { return (i * 7919) % 2000 })
	drain(t, NewIndexScan(fx.file, fx.pool, fx.tree, tuple.RangePred{Col: 1, Lo: 0, Hi: 20}))
	low := fx.dev.Stats().RandomAccesses
	fx.pool.Reset()
	fx.dev.ResetStats()
	drain(t, NewIndexScan(fx.file, fx.pool, fx.tree, tuple.RangePred{Col: 1, Lo: 0, Hi: 2000}))
	high := fx.dev.Stats().RandomAccesses
	if high <= low*10 {
		t.Errorf("index scan random I/O did not blow up: low=%d high=%d", low, high)
	}
}

func TestIndexScanRevisitsPages(t *testing.T) {
	// Scattered key -> every probe lands on a "random" page; with a
	// tiny pool, pages are fetched again and again.
	fx := newFixture(t, 2000, 4, func(i int64) int64 { return (i * 7919) % 2000 })
	drain(t, NewIndexScan(fx.file, fx.pool, fx.tree, tuple.All(1)))
	s := fx.dev.Stats()
	if s.PagesRead <= fx.file.NumPages() {
		t.Errorf("expected repeated page reads: read %d of %d pages", s.PagesRead, fx.file.NumPages())
	}
}

func TestSortScanContentUnordered(t *testing.T) {
	fx := newFixture(t, 500, 64, func(i int64) int64 { return (i * 37) % 100 })
	pred := tuple.RangePred{Col: 1, Lo: 25, Hi: 75}
	got := drain(t, NewSortScan(fx.file, fx.pool, fx.tree, pred, false))
	want := expected(fx.rows, pred) // physical order: sort scan fetches in page order
	if !rowsEqual(got, want) {
		t.Fatalf("sort scan mismatch: got %d rows, want %d", len(got), len(want))
	}
}

func TestSortScanOrderedRestoresKeyOrder(t *testing.T) {
	fx := newFixture(t, 500, 64, func(i int64) int64 { return (i * 37) % 100 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 100}
	got := drain(t, NewSortScan(fx.file, fx.pool, fx.tree, pred, true))
	for i := 1; i < len(got); i++ {
		if got[i].Int(1) < got[i-1].Int(1) {
			t.Fatalf("ordered sort scan out of order at %d", i)
		}
	}
	if len(got) != 500 {
		t.Errorf("len = %d", len(got))
	}
}

func TestSortScanFetchesOnlyResultPagesOnce(t *testing.T) {
	fx := newFixture(t, 2000, 512, func(i int64) int64 { return i })
	// Keys equal row numbers: range [0,100) lives on pages 0..9.
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 100}
	drain(t, NewSortScan(fx.file, fx.pool, fx.tree, pred, false))
	s := fx.dev.Stats()
	// 10 heap pages + index descent + result leaf pages; far below
	// the full table (200 pages).
	if s.PagesRead > 30 {
		t.Errorf("sort scan read %d pages for a 10-page result", s.PagesRead)
	}
}

func TestSwitchScanNoSwitchBelowThreshold(t *testing.T) {
	fx := newFixture(t, 500, 64, func(i int64) int64 { return (i * 37) % 100 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 10} // ~50 tuples
	op := NewSwitchScan(fx.file, fx.pool, fx.tree, pred, 100)
	got := drain(t, op)
	if op.Switched() {
		t.Error("switched below threshold")
	}
	want := expected(fx.rows, pred)
	sortByKeyThenTID(want)
	if !rowsEqual(got, want) {
		t.Errorf("content mismatch: %d vs %d", len(got), len(want))
	}
}

func TestSwitchScanSwitchesAndDeduplicates(t *testing.T) {
	fx := newFixture(t, 500, 64, func(i int64) int64 { return (i * 37) % 100 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 50} // ~250 tuples
	op := NewSwitchScan(fx.file, fx.pool, fx.tree, pred, 20)
	got := drain(t, op)
	if !op.Switched() {
		t.Fatal("did not switch above threshold")
	}
	want := expected(fx.rows, pred)
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d (duplicates or losses)", len(got), len(want))
	}
	// Same multiset: compare after normalising order by (c2, c1).
	sortByKeyThenTID(got)
	sortByKeyThenTID(want)
	if !rowsEqual(got, want) {
		t.Error("switch scan multiset mismatch")
	}
}

func TestSwitchScanCliffCost(t *testing.T) {
	// Crossing the threshold by one tuple must cost roughly one extra
	// full scan — the performance cliff of Figure 11.
	fx := newFixture(t, 2000, 64, func(i int64) int64 { return (i * 7919) % 2000 })
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 21} // 21 matches
	run := func(threshold int64) float64 {
		fx.pool.Reset()
		fx.dev.ResetStats()
		drain(t, NewSwitchScan(fx.file, fx.pool, fx.tree, pred, threshold))
		return fx.dev.Stats().IOTime
	}
	below := run(21)                          // no switch
	above := run(20)                          // switches on the 21st tuple
	fullScanIO := float64(fx.file.NumPages()) // seq cost 1/page
	if above-below < fullScanIO*0.8 {
		t.Errorf("no cliff: below=%v above=%v fullscan=%v", below, above, fullScanIO)
	}
}

func TestOperatorsNotOpen(t *testing.T) {
	fx := newFixture(t, 50, 16, func(i int64) int64 { return i })
	pred := tuple.All(1)
	ops := []operator{
		NewFullScan(fx.file, fx.pool, pred),
		NewIndexScan(fx.file, fx.pool, fx.tree, pred),
		NewSortScan(fx.file, fx.pool, fx.tree, pred, false),
		NewSwitchScan(fx.file, fx.pool, fx.tree, pred, 10),
	}
	for i, op := range ops {
		if _, _, err := op.Next(); !errors.Is(err, ErrClosed) {
			t.Errorf("op %d Next before Open: err = %v, want ErrClosed", i, err)
		}
	}
}

func TestErrorPropagationThroughScans(t *testing.T) {
	fx := newFixture(t, 500, 64, func(i int64) int64 { return i })
	pred := tuple.All(1)
	builders := []func() operator{
		func() operator { return NewFullScan(fx.file, fx.pool, pred) },
		func() operator { return NewIndexScan(fx.file, fx.pool, fx.tree, pred) },
		func() operator { return NewSwitchScan(fx.file, fx.pool, fx.tree, pred, 5) },
	}
	for i, build := range builders {
		fx.pool.Reset()
		op := build()
		if err := op.Open(); err != nil {
			t.Fatalf("op %d open: %v", i, err)
		}
		fx.dev.FailAfter(3)
		var err error
		for err == nil {
			_, ok, e := op.Next()
			if !ok && e == nil {
				t.Fatalf("op %d finished despite injected failure", i)
			}
			err = e
		}
		if !errors.Is(err, disk.ErrInjected) {
			t.Errorf("op %d error = %v, want ErrInjected", i, err)
		}
		fx.dev.FailAfter(-1)
		op.Close()
	}
	// SortScan fails in Open (blocking).
	fx.pool.Reset()
	ss := NewSortScan(fx.file, fx.pool, fx.tree, pred, false)
	fx.dev.FailAfter(3)
	if err := ss.Open(); !errors.Is(err, disk.ErrInjected) {
		t.Errorf("sort scan open error = %v, want ErrInjected", err)
	}
	fx.dev.FailAfter(-1)
}

// Property: all four access paths return the same multiset of rows for
// random predicates and data distributions.
func TestAccessPathEquivalenceProperty(t *testing.T) {
	f := func(seed int64, loRaw, width uint8, threshRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fx := newFixture(t, 400, 32, func(i int64) int64 { return rng.Int63n(100) })
		lo := int64(loRaw) % 110
		hi := lo + int64(width)%60
		pred := tuple.RangePred{Col: 1, Lo: lo, Hi: hi}
		threshold := int64(threshRaw)

		want := expected(fx.rows, pred)
		sortByKeyThenTID(want)

		normalise := func(rows []tuple.Row) []tuple.Row {
			sortByKeyThenTID(rows)
			return rows
		}
		paths := []operator{
			NewFullScan(fx.file, fx.pool, pred),
			NewIndexScan(fx.file, fx.pool, fx.tree, pred),
			NewSortScan(fx.file, fx.pool, fx.tree, pred, true),
			NewSwitchScan(fx.file, fx.pool, fx.tree, pred, threshold),
		}
		for _, op := range paths {
			got := normalise(drain(t, op))
			if !rowsEqual(got, want) {
				return false
			}
			fx.pool.Reset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
