// Package access implements the traditional access-path operators the
// paper compares against (Section II): Full Table Scan, (non-clustered)
// Index Scan and Sort Scan (PostgreSQL's bitmap heap scan), plus the
// straw-man adaptive Switch Scan of Sections III and VI-F.
//
// All operators follow the Volcano iterator protocol (Open/Next/Close)
// and therefore compose with the executor in internal/exec and with the
// Smooth Scan operator in internal/core, which shares the same shape.
package access

import (
	"errors"
	"fmt"
	"sort"

	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/heap"
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// ErrClosed is returned by Next after Close or before Open.
var ErrClosed = errors.New("access: operator is not open")

// fullScanChunk is the number of pages a full scan requests per I/O,
// modelling OS/DBMS read-ahead (16 × 8 KB = 128 KB requests).
const fullScanChunk = 16

// FullScan reads every page of the table sequentially and returns the
// tuples matching the predicate, in physical (load) order. Its I/O
// cost is independent of selectivity (Eq. 10).
type FullScan struct {
	file *heap.File
	pool *bufferpool.Pool
	pred tuple.RangePred
	// residual holds extra conjunctive predicates pushed into the page
	// decode (heap.DecodeBatchMatching): slots failing any of them are
	// examined but never materialised. Nil for single-predicate scans.
	residual []tuple.RangePred
	// pageLo/pageHi bound the scan to heap pages [pageLo, pageHi) — a
	// parallel scan's shard; NewFullScan covers the whole file.
	pageLo, pageHi int64

	open    bool
	pageNo  int64    // next page number to request
	pages   [][]byte // current chunk
	runBuf  [][]byte // scratch backing for pages, reused across chunks
	pageIdx int      // index into pages
	slot    int      // next slot in current page
	row     tuple.Row
}

// NewFullScan creates a full scan of file with the given predicate.
func NewFullScan(file *heap.File, pool *bufferpool.Pool, pred tuple.RangePred) *FullScan {
	return NewFullScanRange(file, pool, pred, 0, file.NumPages())
}

// NewFullScanRange creates a full scan restricted to heap pages
// [pageLo, pageHi) — one shard of a parallel full scan. Shards are
// disjoint, so every tuple of the file is produced by exactly one of
// the shard scans covering it.
func NewFullScanRange(file *heap.File, pool *bufferpool.Pool, pred tuple.RangePred, pageLo, pageHi int64) *FullScan {
	if pageLo < 0 {
		pageLo = 0
	}
	if pageHi > file.NumPages() {
		pageHi = file.NumPages()
	}
	return &FullScan{file: file, pool: pool, pred: pred, pageLo: pageLo, pageHi: pageHi}
}

// SetResidual attaches extra conjunctive predicates evaluated inside
// the page decode, so rows failing them are never materialised. Call
// before Open.
func (s *FullScan) SetResidual(preds []tuple.RangePred) { s.residual = preds }

// Schema returns the table schema.
func (s *FullScan) Schema() *tuple.Schema { return s.file.Schema() }

// Open prepares the scan.
func (s *FullScan) Open() error {
	s.open = true
	s.pageNo = s.pageLo
	s.pages = nil
	s.pageIdx = 0
	s.slot = 0
	s.row = tuple.NewRow(s.file.Schema())
	return nil
}

// nextChunk requests the next read-ahead chunk of pages; it reports
// false when the table is exhausted.
func (s *FullScan) nextChunk() (bool, error) {
	if s.pageNo >= s.pageHi {
		return false, nil
	}
	n := min64(fullScanChunk, s.pageHi-s.pageNo)
	pages, err := s.file.GetRun(s.pool, s.pageNo, n, s.runBuf)
	if err != nil {
		return false, fmt.Errorf("full scan: %w", err)
	}
	s.pages = pages
	s.runBuf = pages
	s.pageIdx = 0
	s.slot = 0
	s.pageNo += n
	return true, nil
}

// Next returns the next matching tuple.
func (s *FullScan) Next() (tuple.Row, bool, error) {
	if !s.open {
		return nil, false, ErrClosed
	}
	for {
		if s.pageIdx >= len(s.pages) {
			ok, err := s.nextChunk()
			if err != nil || !ok {
				return nil, false, err
			}
		}
		page := s.pages[s.pageIdx]
		count := heap.PageTupleCount(page)
		for s.slot < count {
			s.row = s.file.DecodeRow(page, s.slot, s.row)
			s.slot++
			s.pool.ChargeCPU(simcost.Tuple)
			if s.pred.Matches(s.row) && tuple.MatchesAll(s.residual, s.row) {
				return s.row.Clone(), true, nil
			}
		}
		s.pageIdx++
		s.slot = 0
	}
}

// NextBatch fills out with the next matching tuples, decoding whole
// pages at a time directly into the caller's batch.
func (s *FullScan) NextBatch(out *tuple.Batch) (int, error) {
	if !s.open {
		return 0, ErrClosed
	}
	out.Reset()
	return s.fillBatch(out, nil)
}

// fillBatch appends matching tuples to out until it fills or the table
// is exhausted. keep, when non-nil, can veto a slot of the current
// page after the predicate matched (SwitchScan's duplicate
// suppression); it receives the page number and slot.
func (s *FullScan) fillBatch(out *tuple.Batch, keep func(pageNo int64, slot int) bool) (int, error) {
	for !out.Full() {
		if s.pageIdx >= len(s.pages) {
			ok, err := s.nextChunk()
			if err != nil {
				return 0, err
			}
			if !ok {
				break
			}
		}
		page := s.pages[s.pageIdx]
		count := heap.PageTupleCount(page)
		var slotKeep func(slot int) bool
		if keep != nil {
			pageNo := s.pageNo - int64(len(s.pages)) + int64(s.pageIdx)
			slotKeep = func(slot int) bool { return keep(pageNo, slot) }
		}
		next, examined := s.file.DecodeBatchMatching(page, s.slot, count, s.pred, s.residual, slotKeep, out)
		s.pool.ChargeCPUN(simcost.Tuple, int64(examined))
		s.slot = next
		if next >= count {
			s.pageIdx++
			s.slot = 0
		}
	}
	return out.Len(), nil
}

// Close releases the scan.
func (s *FullScan) Close() error {
	s.open = false
	s.pages = nil
	return nil
}

// IndexScan traverses the secondary index once and fetches each
// qualifying tuple from the heap by its TID — a random access per
// look-up, possibly revisiting pages (Eq. 11). Output is in index-key
// order.
type IndexScan struct {
	file *heap.File
	pool *bufferpool.Pool
	tree *btree.Tree
	pred tuple.RangePred

	open bool
	done bool // key range exhausted; latched so repeated pulls do no I/O
	it   *btree.Iter
}

// NewIndexScan creates an index scan. The predicate column must be the
// column the tree indexes; the caller (optimizer or test) guarantees
// this, as PostgreSQL's planner does.
func NewIndexScan(file *heap.File, pool *bufferpool.Pool, tree *btree.Tree, pred tuple.RangePred) *IndexScan {
	return &IndexScan{file: file, pool: pool, tree: tree, pred: pred}
}

// Schema returns the table schema.
func (s *IndexScan) Schema() *tuple.Schema { return s.file.Schema() }

// Open descends the tree to the first qualifying entry.
func (s *IndexScan) Open() error {
	it, err := s.tree.SeekGE(s.pool, s.pred.Lo)
	if err != nil {
		return fmt.Errorf("index scan: %w", err)
	}
	s.it = it
	s.open = true
	s.done = false
	return nil
}

// Next returns the next matching tuple in key order.
func (s *IndexScan) Next() (tuple.Row, bool, error) {
	if !s.open {
		return nil, false, ErrClosed
	}
	if s.done {
		return nil, false, nil
	}
	e, ok, err := s.it.Next()
	if err != nil {
		return nil, false, fmt.Errorf("index scan: %w", err)
	}
	if !ok || e.Key >= s.pred.Hi {
		s.done = true
		return nil, false, nil
	}
	row, err := s.file.RowAt(s.pool, e.TID)
	if err != nil {
		return nil, false, fmt.Errorf("index scan: %w", err)
	}
	s.pool.Device().ChargeCPU(simcost.Tuple)
	return row, true, nil
}

// NextBatch fills out with the next matching tuples in key order. Each
// tuple still costs its own (possibly random) heap access — batching
// cannot change the index scan's I/O pattern — but rows are decoded
// straight into the caller's batch with no per-tuple allocation.
func (s *IndexScan) NextBatch(out *tuple.Batch) (int, error) {
	if !s.open {
		return 0, ErrClosed
	}
	out.Reset()
	dev := s.pool.Device()
	for !out.Full() && !s.done {
		e, ok, err := s.it.Next()
		if err != nil {
			return 0, fmt.Errorf("index scan: %w", err)
		}
		if !ok || e.Key >= s.pred.Hi {
			s.done = true
			break
		}
		if _, err := s.file.DecodeRowAt(s.pool, e.TID, out.AppendSlotRaw()); err != nil {
			return 0, fmt.Errorf("index scan: %w", err)
		}
		dev.ChargeCPU(simcost.Tuple)
	}
	return out.Len(), nil
}

// Close releases the scan.
func (s *IndexScan) Close() error {
	s.open = false
	s.it = nil
	return nil
}

// SortScan is PostgreSQL's bitmap heap scan (Section II): it first
// collects the TIDs of all qualifying tuples from the index, sorts
// them in heap-page order, then fetches the result pages with a nearly
// sequential pattern. It is a blocking operator; when the plan needs
// the index order (ORDER BY), a posterior sort of the results is
// required and charged.
type SortScan struct {
	file       *heap.File
	pool       *bufferpool.Pool
	tree       *btree.Tree
	pred       tuple.RangePred
	orderByKey bool
	memBytes   int64 // 0 = unlimited

	open    bool
	results *tuple.Batch // flat materialised result, reused across reopens
	runBuf  [][]byte
	pos     int
}

// NewSortScan creates a sort scan; orderByKey adds the posterior sort
// that restores index-key order.
func NewSortScan(file *heap.File, pool *bufferpool.Pool, tree *btree.Tree, pred tuple.RangePred, orderByKey bool) *SortScan {
	return &SortScan{file: file, pool: pool, tree: tree, pred: pred, orderByKey: orderByKey}
}

// SetMemoryBudget bounds the memory available to the scan's sorting
// phases; beyond it, sorts spill with two sequential passes over the
// spilled data (external merge sort). Zero means unlimited.
func (s *SortScan) SetMemoryBudget(bytes int64) { s.memBytes = bytes }

// chargeSpill charges an external sort of dataBytes against the
// budget.
func (s *SortScan) chargeSpill(dataBytes int64) {
	if s.memBytes <= 0 || dataBytes <= s.memBytes {
		return
	}
	dev := s.pool.Device()
	pages := (dataBytes + int64(dev.PageSize()) - 1) / int64(dev.PageSize())
	dev.ChargeSpill(pages)
}

// Schema returns the table schema.
func (s *SortScan) Schema() *tuple.Schema { return s.file.Schema() }

// Open materialises the result (the blocking phase).
func (s *SortScan) Open() error {
	dev := s.pool.Device()
	it, err := s.tree.SeekGE(s.pool, s.pred.Lo)
	if err != nil {
		return fmt.Errorf("sort scan: %w", err)
	}
	var tids []heap.TID
	for {
		e, ok, err := it.Next()
		if err != nil {
			return fmt.Errorf("sort scan: %w", err)
		}
		if !ok || e.Key >= s.pred.Hi {
			break
		}
		tids = append(tids, e.TID)
	}
	// Pre-sort of TIDs in increasing heap-page order. TIDs are 20
	// bytes in the on-disk representation.
	dev.ChargeCPU(simcost.SortCost(len(tids)))
	s.chargeSpill(int64(len(tids)) * 20)
	sort.Slice(tids, func(i, j int) bool { return tids[i].Less(tids[j]) })

	// Fetch result pages grouped into maximal adjacent runs, decoding
	// straight into the flat result batch.
	if s.results == nil {
		s.results = tuple.NewGrowableBatch(s.file.Schema().NumCols())
	}
	s.results.Reset()
	for i := 0; i < len(tids); {
		runStart := tids[i].Page
		runEnd := runStart + 1
		j := i
		for j < len(tids) && tids[j].Page-runEnd <= 0 {
			if tids[j].Page >= runEnd {
				runEnd = tids[j].Page + 1
			}
			j++
		}
		pages, err := s.file.GetRun(s.pool, runStart, runEnd-runStart, s.runBuf)
		if err != nil {
			return fmt.Errorf("sort scan: %w", err)
		}
		s.runBuf = pages
		dev.ChargeCPUN(simcost.Tuple, int64(j-i))
		for ; i < j; i++ {
			page := pages[tids[i].Page-runStart]
			s.file.DecodeRow(page, int(tids[i].Slot), s.results.AppendSlotRaw())
		}
	}
	// Posterior sort restoring the interesting order, if required.
	if s.orderByKey {
		dev.ChargeCPU(simcost.SortCost(s.results.Len()))
		s.chargeSpill(int64(s.results.Len()) * int64(s.file.Schema().TupleSize()))
		s.results.SortByIntCol(s.pred.Col)
	}
	s.pos = 0
	s.open = true
	return nil
}

// Next streams the materialised result. Rows are copies owned by the
// caller.
func (s *SortScan) Next() (tuple.Row, bool, error) {
	if !s.open {
		return nil, false, ErrClosed
	}
	if s.pos >= s.results.Len() {
		return nil, false, nil
	}
	row := s.results.Row(s.pos).Clone()
	s.pos++
	return row, true, nil
}

// NextBatch streams the materialised result in blocks.
func (s *SortScan) NextBatch(out *tuple.Batch) (int, error) {
	if !s.open {
		return 0, ErrClosed
	}
	out.Reset()
	s.pos += out.AppendRows(s.results, s.pos, s.results.Len()-s.pos)
	return out.Len(), nil
}

// Close releases the scan; the materialised buffer is kept for reuse
// by a later Open.
func (s *SortScan) Close() error {
	s.open = false
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
