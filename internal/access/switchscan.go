package access

import (
	"fmt"

	"smoothscan/internal/bitmap"
	"smoothscan/internal/btree"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/heap"
	"smoothscan/internal/simcost"
	"smoothscan/internal/tuple"
)

// SwitchScan is the straw-man adaptive access path of Sections III and
// VI-F: it runs a classic index scan while monitoring the result
// cardinality and, the moment the cardinality exceeds the (optimizer's)
// estimate, abandons the index and restarts as a full table scan.
//
// Tuples already produced through the index are remembered in a Tuple
// ID bitmap so the full-scan phase does not duplicate them. The binary
// switch is exactly what produces the performance cliff of Figure 11:
// producing one tuple past the threshold costs an entire full scan on
// top of the index work already done.
type SwitchScan struct {
	file      *heap.File
	pool      *bufferpool.Pool
	tree      *btree.Tree
	pred      tuple.RangePred
	threshold int64

	open     bool
	done     bool // index phase hit the key bound; latched
	switched bool
	produced int64
	seen     *bitmap.Bitmap // TIDs produced during the index phase
	it       *btree.Iter
	full     *FullScan
}

// NewSwitchScan creates a switch scan that abandons the index once
// more than threshold tuples have been produced. The threshold plays
// the role of the optimizer's cardinality estimate.
func NewSwitchScan(file *heap.File, pool *bufferpool.Pool, tree *btree.Tree, pred tuple.RangePred, threshold int64) *SwitchScan {
	return &SwitchScan{file: file, pool: pool, tree: tree, pred: pred, threshold: threshold}
}

// Schema returns the table schema.
func (s *SwitchScan) Schema() *tuple.Schema { return s.file.Schema() }

// Switched reports whether the operator has performed its binary
// switch to a full scan.
func (s *SwitchScan) Switched() bool { return s.switched }

// Open starts the index phase.
func (s *SwitchScan) Open() error {
	it, err := s.tree.SeekGE(s.pool, s.pred.Lo)
	if err != nil {
		return fmt.Errorf("switch scan: %w", err)
	}
	s.it = it
	s.open = true
	s.done = false
	s.switched = false
	s.produced = 0
	s.seen = bitmap.New(s.file.NumTuples())
	return nil
}

func (s *SwitchScan) tidBit(tid heap.TID) int64 {
	return tid.Page*int64(s.file.TuplesPerPage()) + int64(tid.Slot)
}

// Next returns the next matching tuple: index-ordered until the
// switch, physical order afterwards.
func (s *SwitchScan) Next() (tuple.Row, bool, error) {
	if !s.open {
		return nil, false, ErrClosed
	}
	if !s.switched {
		if s.done {
			return nil, false, nil
		}
		e, ok, err := s.it.Next()
		if err != nil {
			return nil, false, fmt.Errorf("switch scan: %w", err)
		}
		if !ok || e.Key >= s.pred.Hi {
			s.done = true
			return nil, false, nil
		}
		if s.produced < s.threshold {
			row, err := s.file.RowAt(s.pool, e.TID)
			if err != nil {
				return nil, false, fmt.Errorf("switch scan: %w", err)
			}
			s.pool.Device().ChargeCPU(simcost.Tuple)
			s.produced++
			s.seen.Set(s.tidBit(e.TID))
			return row, true, nil
		}
		// The estimate is violated: switch before producing this
		// tuple. All remaining results come from a fresh full scan;
		// already-produced tuples are filtered through the bitmap.
		s.switched = true
		s.it = nil
		s.full = NewFullScan(s.file, s.pool, s.pred)
		if err := s.full.Open(); err != nil {
			return nil, false, fmt.Errorf("switch scan: %w", err)
		}
	}
	for {
		row, ok, err := s.full.Next()
		if err != nil || !ok {
			return nil, ok, err
		}
		// Recover the TID from the full scan position: FullScan
		// produces tuples in strict load order, so we track it with a
		// running row number. See fullScanTID below.
		tid, err := s.full.currentTID()
		if err != nil {
			return nil, false, fmt.Errorf("switch scan: %w", err)
		}
		if s.seen.Get(s.tidBit(tid)) {
			continue // produced during the index phase
		}
		return row, true, nil
	}
}

// NextBatch fills out with the next matching tuples: index-ordered
// until the switch, physical order afterwards. The full-scan phase
// decodes qualifying pages directly into the batch, vetoing tuples
// already produced through the index via the Tuple ID bitmap.
func (s *SwitchScan) NextBatch(out *tuple.Batch) (int, error) {
	if !s.open {
		return 0, ErrClosed
	}
	out.Reset()
	dev := s.pool.Device()
	for !out.Full() && !s.switched {
		if s.done {
			return out.Len(), nil
		}
		e, ok, err := s.it.Next()
		if err != nil {
			return 0, fmt.Errorf("switch scan: %w", err)
		}
		if !ok || e.Key >= s.pred.Hi {
			s.done = true
			return out.Len(), nil
		}
		if s.produced < s.threshold {
			if _, err := s.file.DecodeRowAt(s.pool, e.TID, out.AppendSlotRaw()); err != nil {
				return 0, fmt.Errorf("switch scan: %w", err)
			}
			dev.ChargeCPU(simcost.Tuple)
			s.produced++
			s.seen.Set(s.tidBit(e.TID))
			continue
		}
		s.switched = true
		s.it = nil
		s.full = NewFullScan(s.file, s.pool, s.pred)
		if err := s.full.Open(); err != nil {
			return 0, fmt.Errorf("switch scan: %w", err)
		}
	}
	if !s.switched {
		return out.Len(), nil
	}
	// Full-scan phase: FullScan's batch loop with the Tuple ID bitmap
	// vetoing tuples already produced through the index.
	if _, err := s.full.fillBatch(out, func(pageNo int64, slot int) bool {
		return !s.seen.Get(s.tidBit(heap.TID{Page: pageNo, Slot: int32(slot)}))
	}); err != nil {
		return 0, fmt.Errorf("switch scan: %w", err)
	}
	return out.Len(), nil
}

// Close releases the scan.
func (s *SwitchScan) Close() error {
	s.open = false
	s.it = nil
	if s.full != nil {
		err := s.full.Close()
		s.full = nil
		return err
	}
	return nil
}

// currentTID returns the TID of the tuple most recently returned by
// Next. FullScan walks pages and slots in order; the last decoded
// position is (pageNo-len(pages)+pageIdx, slot-1) in its state.
func (s *FullScan) currentTID() (heap.TID, error) {
	if s.pageIdx >= len(s.pages) || s.slot == 0 {
		return heap.TID{}, fmt.Errorf("access: no current tuple")
	}
	page := s.pageNo - int64(len(s.pages)) + int64(s.pageIdx)
	return heap.TID{Page: page, Slot: int32(s.slot - 1)}, nil
}
