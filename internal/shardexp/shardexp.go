// Package shardexp is the scatter-gather experiment of the ssbench
// suite: a deterministic sweep of shard count × pruning selectivity ×
// gather mode over the micro-benchmark table, reporting simulated
// device cost only (no wall clock), so its rows can live in the
// byte-diffed ssbench golden.
//
// It lives outside internal/harness because it drives the public
// sharded facade: harness cannot import the root package (the root's
// in-package benchmarks import harness), while this package — imported
// only by cmd/ssbench — can.
package shardexp

import (
	"fmt"

	"smoothscan"
	"smoothscan/internal/harness"
	"smoothscan/internal/loadgen"
)

// ID is the experiment identifier cmd/ssbench dispatches on.
const ID = "shard"

// Config holds the experiment's scale knobs; zero values get defaults
// sized so the sweep stays fast while every shard spans multiple heap
// pages.
type Config struct {
	Rows int64
	Pool int
	Seed int64
}

func (c *Config) defaults() {
	if c.Rows == 0 {
		c.Rows = 24_000
	}
	if c.Pool == 0 {
		c.Pool = 256
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Run executes the sweep: for N ∈ {1, 2, 4} range-partitioned shards,
// a predicate covering ~1/8, 1/2 and all of the domain, gathered
// unordered and through the ordered merge. Every number is simulated
// (per-shard device deltas summed), so the table is byte-stable.
func Run(cfg Config) (*harness.Table, error) {
	cfg.defaults()
	domain := cfg.Rows // like loadgen's micro shape: val uniform over ~rows
	t := &harness.Table{
		ID:     ID,
		Title:  "Sharded scatter-gather: shard count x pruning selectivity x gather mode (simulated cost)",
		Header: []string{"shards", "sel", "gather", "rows", "active", "pruned", "io-req", "pages", "time"},
		Notes: []string{
			"pruned shards perform zero device I/O: the narrow predicate pays for one shard only",
			"time is the sum of per-shard device deltas; the coordinator merge charges nothing",
		},
	}
	sels := []struct {
		name string
		frac float64
	}{
		{"narrow", 0.125},
		{"half", 0.5},
		{"full", 1.0},
	}
	for _, n := range []int{1, 2, 4} {
		s, err := loadgen.BuildShardedDB(cfg.Rows, domain, cfg.Seed, n, smoothscan.Options{PoolPages: cfg.Pool})
		if err != nil {
			return nil, err
		}
		for _, sel := range sels {
			width := int64(float64(domain) * sel.frac)
			for _, ordered := range []bool{false, true} {
				if err := s.ColdCache(); err != nil {
					return nil, err
				}
				q := s.Query(loadgen.Table).Where(loadgen.IndexedCol, smoothscan.Between(0, width))
				gather := "unordered"
				if ordered {
					gather = "ordered"
					q = q.OrderBy(loadgen.IndexedCol)
				}
				rows, err := q.Run(nil)
				if err != nil {
					return nil, err
				}
				var count int64
				for rows.Next() {
					count++
				}
				if err := rows.Err(); err != nil {
					rows.Close()
					return nil, err
				}
				if err := rows.Close(); err != nil {
					return nil, err
				}
				es := rows.ExecStats()
				active, pruned := 0, 0
				for _, sh := range es.Shards {
					if sh.Pruned {
						pruned++
					} else {
						active++
					}
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", n),
					sel.name,
					gather,
					fmt.Sprintf("%d", count),
					fmt.Sprintf("%d", active),
					fmt.Sprintf("%d", pruned),
					fmt.Sprintf("%d", es.IO.Requests),
					fmt.Sprintf("%d", es.IO.PagesRead),
					fmt.Sprintf("%.1f", es.IO.Time()),
				})
			}
		}
	}
	return t, nil
}
