package tpch

import (
	"testing"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/tuple"
)

// q3Oracle recomputes Q3's join row count per-tuple from full drains
// of both tables.
func q3Oracle(t *testing.T, db *DB, pool *bufferpool.Pool, lineSel, orderSel float64) int64 {
	t.Helper()
	lpred := db.ShipdatePred(lineSel)
	opred := db.OrderDatePred(orderSel)
	liScan, err := db.ScanLineitem(pool, lpred, ScanSpec{Path: PathFull})
	if err != nil {
		t.Fatal(err)
	}
	lines, err := exec.Drain(liScan)
	if err != nil {
		t.Fatal(err)
	}
	orders, err := exec.Drain(newOrdersScan(t, db, pool, opred))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[int64]int64{}
	for _, o := range orders {
		byKey[o.Int(OOrderkey)]++
	}
	var n int64
	for _, l := range lines {
		n += byKey[l.Int(LOrderkey)]
	}
	return n
}

func newOrdersScan(t *testing.T, db *DB, pool *bufferpool.Pool, pred tuple.RangePred) exec.Operator {
	t.Helper()
	op, err := db.ScanOrders(pool, pred)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestQ3AgainstOracle(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	db, err := Gen(dev, Config{NumOrders: 1_500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, 256)
	for _, sel := range []struct{ l, o float64 }{
		{0, 0.5}, {0.02, 0.3}, {0.3, 1}, {1, 0}, {0.5, 0.5},
	} {
		want := q3Oracle(t, db, pool, sel.l, sel.o)
		for _, path := range []Path{PathFull, PathSmooth, PathIndex} {
			pool.Reset()
			dev.ResetStats()
			res, js, err := db.Q3(pool, ScanSpec{Path: path, Smooth: DefaultSmooth()}, sel.l, sel.o)
			if err != nil {
				t.Fatal(err)
			}
			if js.OutputRows != want {
				t.Errorf("l=%.2f o=%.2f %s: join output %d, oracle %d", sel.l, sel.o, path, js.OutputRows, want)
			}
			// The aggregate has at most 5 priority groups.
			if res.Rows > 5 {
				t.Errorf("Q3 produced %d groups", res.Rows)
			}
			if want > 0 && res.Rows == 0 {
				t.Errorf("Q3 produced no groups for %d join rows", want)
			}
		}
	}
}

// TestQ3Deterministic pins that two runs on identically generated
// databases agree exactly (the property the ssbench golden relies on).
func TestQ3Deterministic(t *testing.T) {
	runOnce := func() (int64, float64) {
		dev := disk.NewDevice(disk.HDD)
		db, err := Gen(dev, Config{NumOrders: 1_000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		pool := bufferpool.New(dev, 128)
		_, js, err := db.Q3(pool, ScanSpec{Path: PathSmooth, Smooth: DefaultSmooth()}, 0.1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return js.OutputRows, dev.Stats().Time()
	}
	r1, t1 := runOnce()
	r2, t2 := runOnce()
	if r1 != r2 || t1 != t2 {
		t.Errorf("Q3 not deterministic: (%d, %v) vs (%d, %v)", r1, t1, r2, t2)
	}
	if r1 == 0 {
		t.Error("Q3 joined zero rows at 10% x 50% selectivity")
	}
}
