package tpch

import (
	"fmt"

	"smoothscan/internal/access"
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/exec"
	"smoothscan/internal/tuple"
)

// Q12 is the shipping-modes-and-order-priority query — the paper's
// headline Figure 1 casualty: after tuning, DBMS-X underestimates the
// qualifying LINEITEM cardinality so badly that it flips the plan to a
// nested-loop join driven by index look-ups, and the query goes from a
// minute to eleven hours (a factor of ~400).
//
// This file reproduces the mechanism at the plan level. The query
// joins LINEITEM (receipt dates in a ~60%-selectivity window) with
// ORDERS and counts lines per order priority. Three physical plans:
//
//   - Q12PlanHash — the sane original: scan LINEITEM once, hash-join
//     ORDERS. Cost is two sequential scans.
//   - Q12PlanTunedINLJ — the tuned regression: an index scan drives
//     LINEITEM through the shipdate index (the optimizer believed the
//     window was tiny), probing ORDERS per tuple. Because index order
//     decorrelates from physical order, both the LINEITEM accesses and
//     the ORDERS probes are random: the "table look-up" blow-up.
//   - Q12PlanSmooth — the same plan shape with Smooth Scan as the
//     LINEITEM access path and the §IV-B morphing inner for ORDERS:
//     no re-optimization, yet near-original performance.
type Q12Plan int

// Q12 physical plans.
const (
	Q12PlanHash Q12Plan = iota
	Q12PlanTunedINLJ
	Q12PlanSmooth
)

func (p Q12Plan) String() string {
	switch p {
	case Q12PlanHash:
		return "hash-join (original)"
	case Q12PlanTunedINLJ:
		return "index-scan + INLJ (tuned)"
	case Q12PlanSmooth:
		return "smooth-scan + morphing INLJ"
	default:
		return fmt.Sprintf("Q12Plan(%d)", int(p))
	}
}

// Q12 runs the query under the chosen physical plan. All plans return
// the identical result.
func (db *DB) Q12(pool *bufferpool.Pool, plan Q12Plan) (QueryResult, error) {
	pred := db.ShipdatePred(0.60)
	priCol := lineitemCols + OOrderpriority

	buildAgg := func(joined exec.Operator) exec.Operator {
		keyed := exec.NewProject(joined, tuple.Ints(1), func(r tuple.Row) tuple.Row {
			return tuple.IntsRow(r.Int(priCol))
		})
		return exec.NewHashAgg(keyed, db.Dev, 0, []exec.AggSpec{
			{Name: "line_count", Col: 0, Kind: exec.AggCount},
		})
	}

	switch plan {
	case Q12PlanHash:
		scan, err := db.ScanLineitem(pool, pred, ScanSpec{Path: PathFull})
		if err != nil {
			return QueryResult{}, err
		}
		orders := access.NewFullScan(db.Orders.File, pool, tuple.All(OOrderkey))
		join := exec.NewHashJoin(scan, orders, db.Dev, LOrderkey, OOrderkey)
		return run(buildAgg(join))
	case Q12PlanTunedINLJ:
		scan, err := db.ScanLineitem(pool, pred, ScanSpec{Path: PathIndex})
		if err != nil {
			return QueryResult{}, err
		}
		join := exec.NewIndexNestedLoopJoin(scan, exec.NewIndexLookup(db.Orders.File, pool, db.Orders.PK), db.Dev, LOrderkey)
		return run(buildAgg(join))
	case Q12PlanSmooth:
		scan, err := db.ScanLineitem(pool, pred, ScanSpec{Path: PathSmooth, Smooth: DefaultSmooth()})
		if err != nil {
			return QueryResult{}, err
		}
		join := exec.NewIndexNestedLoopJoin(scan, exec.NewMorphingLookup(db.Orders.File, pool, db.Orders.PK, OOrderkey), db.Dev, LOrderkey)
		return run(buildAgg(join))
	default:
		return QueryResult{}, fmt.Errorf("tpch: unknown Q12 plan %d", plan)
	}
}
