package tpch

import "testing"

func TestQ12PlansAgree(t *testing.T) {
	db := genDB(t, 1200)
	var want QueryResult
	for i, plan := range []Q12Plan{Q12PlanHash, Q12PlanTunedINLJ, Q12PlanSmooth} {
		pool := newPool(db)
		got, err := db.Q12(pool, plan)
		if err != nil {
			t.Fatalf("%v: %v", plan, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%v: result %+v, want %+v", plan, got, want)
		}
	}
	if _, err := db.Q12(newPool(db), Q12Plan(9)); err == nil {
		t.Error("unknown plan accepted")
	}
}

func TestQ12RegressionAndRescue(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := genDB(t, 6000)
	measure := func(plan Q12Plan) float64 {
		pool := newPool(db)
		db.Dev.ResetStats()
		if _, err := db.Q12(pool, plan); err != nil {
			t.Fatal(err)
		}
		return db.Dev.Stats().Time()
	}
	original := measure(Q12PlanHash)
	tuned := measure(Q12PlanTunedINLJ)
	smooth := measure(Q12PlanSmooth)

	// The paper's Q12: tuned regresses by orders of magnitude.
	if tuned < 20*original {
		t.Errorf("tuned plan regression only %.1fx (tuned=%v original=%v)", tuned/original, tuned, original)
	}
	// Smooth Scan + morphing inner rescues the plan without
	// re-optimization: within a small factor of the original.
	if smooth > 4*original {
		t.Errorf("smooth rescue insufficient: smooth=%v original=%v", smooth, original)
	}
	if tuned < 5*smooth {
		t.Errorf("smooth (%v) should beat tuned (%v) decisively", smooth, tuned)
	}
}
